// Constrained placement: the Conclusion's extensions in action. A replicated
// storage service wants (a) its two replicas on different physical hosts
// (fault tolerance), (b) its cache next to the frontend (latency), and (c)
// the ingest task pinned where the data lives. Choreo honours all three
// while still optimizing the network; we show the cost of each constraint.

#include <iostream>

#include "cloud/cloud.h"
#include "measure/throughput_matrix.h"
#include "place/greedy.h"
#include "place/rate_model.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace choreo;
  using units::gigabytes;

  cloud::ProviderProfile profile = cloud::ec2_2013();
  profile.colocate_prob = 0.35;  // a fleet with some same-host VM pairs
  cloud::Cloud cloud(profile, 19);
  const auto vms = cloud.allocate_vms(8);

  measure::MeasurementPlan plan;
  plan.train.bursts = 10;
  plan.train.burst_length = 200;
  const place::ClusterView view = measure::measured_cluster_view(cloud, vms, plan, 1);

  // The service: frontend(0), cache(1), replica-A(2), replica-B(3),
  // ingest(4). Heavy frontend<->cache chatter, writes fan to both replicas,
  // ingest streams into replica-A.
  place::Application app;
  app.name = "storage-service";
  app.cpu_demand = {2.0, 1.0, 1.5, 1.5, 1.0};
  app.traffic_bytes = DoubleMatrix(5, 5, 0.0);
  app.traffic_bytes(0, 1) = gigabytes(3.0);
  app.traffic_bytes(1, 0) = gigabytes(2.0);
  app.traffic_bytes(0, 2) = gigabytes(1.0);
  app.traffic_bytes(0, 3) = gigabytes(1.0);
  app.traffic_bytes(4, 2) = gigabytes(2.5);

  place::GreedyPlacer greedy(place::RateModel::Hose);
  Table t({"scenario", "placement (machine per task)", "est. completion (s)"});

  const auto report = [&](const std::string& name) {
    place::ClusterState state(view);
    try {
      const place::Placement p = greedy.place(app, state);
      std::string where;
      for (std::size_t i = 0; i < p.machine_of_task.size(); ++i) {
        if (i) where += ',';
        where += std::to_string(p.machine_of_task[i]);
      }
      t.add_row({name, where,
                 fmt(place::estimate_completion_s(app, p, view, place::RateModel::Hose), 1)});
    } catch (const place::PlacementError& e) {
      t.add_row({name, std::string("infeasible: ") + e.what(), "-"});
    }
  };

  report("unconstrained");

  app.constraints.separate.emplace_back(2, 3);  // replicas on distinct hosts
  report("+ separate(replicaA, replicaB)");

  app.constraints.latency.push_back({0, 1, 2});  // cache within the rack
  report("+ latency(frontend, cache) <= 2 hops");

  app.constraints.pinned[4] = 0;  // ingest pinned to the data VM
  report("+ pin(ingest -> vm0)");

  std::cout << t.to_string();
  std::cout << "\nEach requirement shrinks the feasible set, so for an *optimal* placer\n"
               "the completion estimate could only grow down the table. The greedy\n"
               "algorithm is not optimal (Fig 9), so a constraint occasionally steers\n"
               "it into a better region — but hard requirements like pinning usually\n"
               "show their price clearly.\n";
  return 0;
}

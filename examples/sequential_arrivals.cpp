// Online scenario (§2.4, §6.3): applications arrive over time. Choreo
// re-measures before each placement, accounts for the transfers of
// applications still running, periodically re-evaluates the whole layout,
// and migrates when the estimated gain beats the migration cost.

#include <iostream>

#include "core/choreo.h"
#include "place/rate_model.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/trace.h"

int main() {
  using namespace choreo;

  cloud::Cloud cloud(cloud::ec2_2013(), 61);
  const auto vms = cloud.allocate_vms(10);

  core::ChoreoConfig config;
  config.plan.train.bursts = 10;
  config.plan.train.burst_length = 200;
  config.rate_model = place::RateModel::Hose;
  config.reevaluate_period_s = 300.0;       // T = 5 minutes
  config.migration_cost_per_task_s = 5.0;   // cheap-ish migration
  core::Choreo choreo(cloud, vms, config);

  const double wall = choreo.measure_network(1);
  std::cout << "initial measurement phase: " << fmt(wall, 0) << " s wall clock\n\n";

  // Applications arrive from the trace.
  const workload::HpCloudTrace trace(4, workload::TraceConfig{});
  Rng rng(9);
  const auto apps = trace.sample_sequence(rng, 4, /*mean_gap_s=*/60.0);

  Table t({"t (s)", "event", "detail"});
  std::vector<core::Choreo::AppHandle> handles;
  std::vector<place::Placement> final_placements(apps.size());
  std::vector<double> est_finish;
  std::uint64_t epoch = 2;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const place::Application& app = apps[a];
    // Applications whose estimated completion predates this arrival have
    // finished: release their VMs (the tenant tears the tasks down).
    for (std::size_t prev = 0; prev < handles.size(); ++prev) {
      if (handles[prev] != 0 && est_finish[prev] <= app.arrival_s) {
        final_placements[prev] = choreo.placement_of(handles[prev]);
        choreo.remove_application(handles[prev]);
        handles[prev] = 0;
        t.add_row({fmt(est_finish[prev], 0), "departure: " + apps[prev].name,
                   "resources released"});
      }
    }
    // Re-measure on each arrival (the network may have shifted).
    choreo.measure_network(epoch++);
    const auto handle = choreo.place_application(app);
    handles.push_back(handle);
    const place::Placement& p = choreo.placement_of(handle);
    est_finish.push_back(app.arrival_s +
                         place::estimate_completion_s(app, p, choreo.view(),
                                                      config.rate_model));
    std::string where;
    for (std::size_t i = 0; i < p.machine_of_task.size(); ++i) {
      if (i) where += ',';
      where += std::to_string(p.machine_of_task[i]);
    }
    t.add_row({fmt(app.arrival_s, 0), "arrival: " + app.name + " (" +
                                          std::to_string(app.task_count()) + " tasks)",
               "placed on [" + where + "]"});
  }

  // Periodic re-evaluation (§2.4): "every T minutes, Choreo re-evaluates its
  // placement of the existing applications, and migrates tasks if necessary".
  const auto report = choreo.reevaluate(epoch++);
  t.add_row({fmt(config.reevaluate_period_s, 0), "re-evaluation",
             report.adopted
                 ? "migrated " + std::to_string(report.tasks_migrated) + " tasks, est. gain " +
                       fmt(report.estimated_gain_s, 1) + " s vs cost " +
                       fmt(report.migration_cost_s, 1) + " s"
                 : "kept current placement (gain " + fmt(report.estimated_gain_s, 1) +
                       " s <= cost " + fmt(report.migration_cost_s, 1) + " s)"});
  std::cout << t.to_string() << "\n";

  // Execute everything with arrival offsets and report per-app runtimes.
  for (std::size_t a = 0; a < apps.size(); ++a) {
    if (handles[a] != 0) final_placements[a] = choreo.placement_of(handles[a]);
  }
  std::vector<cloud::Cloud::Transfer> transfers;
  std::vector<std::pair<std::size_t, std::size_t>> owner;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const auto batch =
        choreo.transfers_for(apps[a], final_placements[a], apps[a].arrival_s);
    for (const auto& tr : batch) {
      transfers.push_back(tr);
      owner.emplace_back(a, transfers.size() - 1);
    }
  }
  const auto result = cloud.execute(transfers, epoch);
  std::vector<double> finish(apps.size(), 0.0);
  for (const auto& [a, idx] : owner) {
    finish[a] = std::max(finish[a], result.completion_s[idx]);
  }
  Table rt({"app", "arrival (s)", "finish (s)", "runtime (s)"});
  for (std::size_t a = 0; a < apps.size(); ++a) {
    rt.add_row({apps[a].name, fmt(apps[a].arrival_s, 0), fmt(finish[a], 1),
                fmt(finish[a] - apps[a].arrival_s, 1)});
  }
  std::cout << rt.to_string();
  return 0;
}

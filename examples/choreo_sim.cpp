// choreo_sim: the repository's experiment driver. Spin up an emulated
// provider, rent VMs, measure, place a workload with any algorithm, execute
// it, and print the outcome — everything the fig10 benches do, but
// parameterized from the command line so new scenarios need no recompile.
//
//   choreo_sim --provider ec2 --vms 10 --apps 2 --algorithm greedy --seed 7
//   choreo_sim --mode sequence --apps 4 --algorithm round-robin
//   choreo_sim --help

#include <iostream>
#include <memory>

#include "core/controller.h"
#include "measure/throughput_matrix.h"
#include "place/baselines.h"
#include "place/greedy.h"
#include "place/ilp.h"
#include "util/args.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/trace.h"

namespace {

using namespace choreo;

std::unique_ptr<place::Placer> make_placer(const std::string& name,
                                           place::RateModel model, std::uint64_t seed) {
  if (name == "greedy") return std::make_unique<place::GreedyPlacer>(model);
  if (name == "random") return std::make_unique<place::RandomPlacer>(seed);
  if (name == "round-robin") return std::make_unique<place::RoundRobinPlacer>();
  if (name == "min-machines") return std::make_unique<place::MinMachinesPlacer>();
  if (name == "ilp") return std::make_unique<place::IlpPlacer>(model);
  throw PreconditionError("unknown algorithm: " + name +
                          " (greedy|random|round-robin|min-machines|ilp)");
}

cloud::ProviderProfile make_profile(const std::string& name) {
  if (name == "ec2") return cloud::ec2_2013();
  if (name == "ec2-2012") return cloud::ec2_2012();
  if (name == "rackspace") return cloud::rackspace();
  throw PreconditionError("unknown provider: " + name + " (ec2|ec2-2012|rackspace)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace choreo;

  Args args;
  args.add_option("provider", "ec2", "cloud model: ec2 | ec2-2012 | rackspace");
  args.add_option("vms", "10", "VMs to rent");
  args.add_option("apps", "2", "applications to place");
  args.add_option("mode", "batch", "batch (combine & place at once) | sequence");
  args.add_option("algorithm", "greedy",
                  "greedy | random | round-robin | min-machines | ilp");
  args.add_option("rate-model", "hose", "hose | pipe (for greedy/ilp)");
  args.add_option("seed", "1", "experiment seed");
  args.add_option("mean-gap", "60", "sequence mode: mean inter-arrival gap (s)");
  args.add_flag("truth", "place on ground-truth rates instead of packet trains");
  args.add_flag("help", "show this help");

  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << args.usage("choreo_sim");
    return 2;
  }
  if (args.get_flag("help")) {
    std::cout << args.usage("choreo_sim");
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto n_vms = static_cast<std::size_t>(args.get_int("vms"));
  const auto n_apps = static_cast<std::size_t>(args.get_int("apps"));
  const place::RateModel model =
      args.get("rate-model") == "pipe" ? place::RateModel::Pipe : place::RateModel::Hose;

  cloud::Cloud cloud(make_profile(args.get("provider")), seed);
  const auto vms = cloud.allocate_vms(n_vms);
  std::cout << "provider " << cloud.profile().name << ", " << n_vms << " VMs, seed "
            << seed << "\n";

  // Workload from the synthetic HP-Cloud trace.
  const workload::HpCloudTrace trace(seed * 7 + 5, workload::TraceConfig{});
  Rng rng(seed * 11 + 3);

  // Measurement (or ground truth with --truth).
  measure::MeasurementPlan plan;
  plan.train.bursts = 10;
  plan.train.burst_length = args.get("provider") == "rackspace" ? 2000 : 200;
  const place::ClusterView view =
      args.get_flag("truth") ? measure::true_cluster_view(cloud, vms, seed)
                             : measure::measured_cluster_view(cloud, vms, plan, seed);

  const auto placer = make_placer(args.get("algorithm"), model, seed);

  if (args.get("mode") == "batch") {
    const place::Application combined = place::combine(trace.sample_batch(rng, n_apps));
    place::ClusterState state(view);
    const place::Placement placement = placer->place(combined, state);

    Table t({"task", "machine", "cpu"});
    for (std::size_t i = 0; i < combined.task_count(); ++i) {
      t.add_row({std::to_string(i), std::to_string(placement.machine_of_task[i]),
                 fmt(combined.cpu_demand[i], 1)});
    }
    std::cout << t.to_string();

    std::vector<cloud::Cloud::Transfer> transfers;
    for (std::size_t i = 0; i < combined.task_count(); ++i) {
      for (std::size_t j = 0; j < combined.task_count(); ++j) {
        const double b = combined.traffic_bytes(i, j);
        if (b <= 0.0) continue;
        transfers.push_back({vms[placement.machine_of_task[i]],
                             vms[placement.machine_of_task[j]], b, 0.0});
      }
    }
    const double est = place::estimate_completion_s(combined, placement, view, model);
    std::cout << "estimated completion: " << fmt(est, 2) << " s\n";
    if (!transfers.empty()) {
      const auto result = cloud.execute(transfers, seed + 1);
      std::cout << "executed completion:  " << fmt(result.makespan_s, 2) << " s ("
                << transfers.size() << " transfers)\n";
    }
    return 0;
  }

  if (args.get("mode") == "sequence") {
    auto apps = trace.sample_sequence(rng, n_apps, args.get_double("mean-gap"));
    core::ControllerConfig config;
    config.choreo.plan = plan;
    config.choreo.rate_model = model;
    config.choreo.use_measured_view = !args.get_flag("truth");
    core::Controller controller(cloud, vms, config);
    const core::SessionLog log = controller.run(apps);

    Table t({"t (s)", "event", "detail"});
    for (const core::SessionEvent& e : log.events) {
      t.add_row({fmt(e.time_s, 0), e.kind, e.detail});
    }
    std::cout << t.to_string();
    std::cout << "total runtime (sum over apps): " << fmt(log.total_runtime_s, 1)
              << " s; re-evaluations: " << log.reevaluations << " ("
              << log.reevaluations_adopted << " adopted, " << log.tasks_migrated
              << " tasks migrated)\n";
    return 0;
  }

  std::cerr << "unknown --mode " << args.get("mode") << "\n" << args.usage("choreo_sim");
  return 2;
}

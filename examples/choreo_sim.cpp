// choreo_sim: the repository's experiment driver. Spin up an emulated
// provider, rent VMs, measure, place a workload with any algorithm, execute
// it, and print the outcome — everything the fig10 benches do, but
// parameterized from the command line so new scenarios need no recompile.
//
//   choreo_sim --provider ec2 --vms 10 --apps 2 --algorithm greedy --seed 7
//   choreo_sim --mode sequence --apps 4 --algorithm round-robin
//   choreo_sim --mode session --tenants 3 --vms 8 --duration-hours 12 --bursty
//   choreo_sim --mode session --tenants 8 --threads 4   # sharded, same output
//   choreo_sim --mode agents --vms 20 --cycles 8 --loss 0.2 --crash-rate 0.02
//   choreo_sim --mode session --agents --batch --trace=trace.json --metrics=m.json
//   choreo_sim --help
//
// --trace=PATH writes a Chrome trace-event JSON (load it at ui.perfetto.dev)
// with one lane per tenant; --metrics=PATH dumps the obs registry snapshot.
// Either flag also runs an executed-transfer spot check after a session so
// the trace covers the flowsim plane end to end.
//
// --mode session drives the discrete-event core::SessionRuntime: N tenants
// on disjoint VM slices of one cloud, each streaming a diurnal trace
// workload (optionally MMPP-bursty), interleaved on a shared clock — a
// manual scenario harness for the control plane.
//
// --mode agents drives the distributed measurement plane: one host agent
// per VM reporting to a ClusterAgent over a simulated transport whose
// fault profile (--loss / --duplicate / --delay-max / --crash-rate) is set
// from the command line, with a per-cycle view of what survived the wire.

#include <iostream>
#include <memory>

#include "agent/options.h"
#include "agent/plane.h"
#include "core/controller.h"
#include "core/sharded.h"
#include "measure/throughput_matrix.h"
#include "obs/observer.h"
#include "place/baselines.h"
#include "place/greedy.h"
#include "place/ilp.h"
#include "util/args.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/stream.h"
#include "workload/trace.h"

namespace {

using namespace choreo;

std::unique_ptr<place::Placer> make_placer(const std::string& name,
                                           place::RateModel model, std::uint64_t seed) {
  if (name == "greedy") return std::make_unique<place::GreedyPlacer>(model);
  if (name == "random") return std::make_unique<place::RandomPlacer>(seed);
  if (name == "round-robin") return std::make_unique<place::RoundRobinPlacer>();
  if (name == "min-machines") return std::make_unique<place::MinMachinesPlacer>();
  if (name == "ilp") return std::make_unique<place::IlpPlacer>(model);
  throw PreconditionError("unknown algorithm: " + name +
                          " (greedy|random|round-robin|min-machines|ilp)");
}

cloud::ProviderProfile make_profile(const std::string& name) {
  if (name == "ec2") return cloud::ec2_2013();
  if (name == "ec2-2012") return cloud::ec2_2012();
  if (name == "rackspace") return cloud::rackspace();
  throw PreconditionError("unknown provider: " + name + " (ec2|ec2-2012|rackspace)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace choreo;

  Args args;
  args.add_option("provider", "ec2", "cloud model: ec2 | ec2-2012 | rackspace");
  args.add_option("vms", "10", "VMs to rent (per tenant in session mode)");
  args.add_option("apps", "2", "applications to place");
  args.add_option("mode", "batch",
                  "batch (combine & place at once) | sequence | session | agents");
  args.add_option("algorithm", "greedy",
                  "greedy | random | round-robin | min-machines | ilp");
  args.add_option("rate-model", "hose", "hose | pipe (for greedy/ilp)");
  args.add_option("seed", "1", "experiment seed");
  args.add_option("mean-gap", "60", "sequence mode: mean inter-arrival gap (s)");
  args.add_option("tenants", "2", "session mode: tenants sharing the cloud");
  args.add_option("duration-hours", "6", "session mode: trace length per tenant");
  args.add_option("apps-per-day", "48", "session mode: per-tenant arrival rate");
  args.add_option("threads", "1",
                  "session mode: worker threads for the sharded control "
                  "plane (1 = single-threaded oracle path; output is "
                  "identical either way)");
  args.add_option("shards", "0",
                  "session mode: tenant shards (0 = one per thread); only "
                  "meaningful with --threads > 1");
  args.add_option("cycles", "8", "agents mode: measurement cycles to run");
  args.add_option("loss", "0", "agents mode: per-message loss probability");
  args.add_option("duplicate", "0", "agents mode: per-message duplicate probability");
  args.add_option("delay-max", "0", "agents mode: max delivery delay (cycles)");
  args.add_option("crash-rate", "0", "agents mode: per-agent crash probability/cycle");
  args.add_option("report-budget", "0",
                  "agents mode: max samples per StatsReport (0 = unlimited)");
  args.add_option("trace", "",
                  "write a Chrome trace-event JSON of the run to this path "
                  "(open in Perfetto)");
  args.add_option("metrics", "",
                  "write the metrics-registry snapshot JSON to this path");
  args.add_flag("agents",
                "session mode: measure through the distributed agent plane "
                "(--loss/--crash-rate etc. apply per tenant)");
  args.add_flag("batch",
                "session mode: batched joint placement of queued arrivals");
  args.add_flag("bursty", "session mode: MMPP-modulate the arrival process");
  args.add_flag("forecast",
                "enable the forecast plane: predictability-driven refresh + "
                "uncertainty-discounted placement rates");
  args.add_flag("truth", "place on ground-truth rates instead of packet trains");
  args.add_flag("help", "show this help");

  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << args.usage("choreo_sim");
    return 2;
  }
  if (args.get_flag("help")) {
    std::cout << args.usage("choreo_sim");
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto n_vms = static_cast<std::size_t>(args.get_int("vms"));
  const auto n_apps = static_cast<std::size_t>(args.get_int("apps"));
  const place::RateModel model =
      args.get("rate-model") == "pipe" ? place::RateModel::Pipe : place::RateModel::Hose;

  cloud::Cloud cloud(make_profile(args.get("provider")), seed);
  const auto vms = cloud.allocate_vms(n_vms);
  std::cout << "provider " << cloud.profile().name << ", " << n_vms << " VMs, seed "
            << seed << "\n";

  // Observability plane: a sharded registry (counter totals merge
  // deterministically) and/or a ring-buffered tracer, attached to every
  // plane the chosen mode drives. Lane 0 is the driver; tenants get their
  // own lanes below.
  constexpr std::uint32_t kObsShards = 16;
  const std::string trace_path = args.get("trace");
  const std::string metrics_path = args.get("metrics");
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::Tracer> tracer;
  obs::Observer obsv;
  if (!metrics_path.empty()) {
    registry = std::make_unique<obs::Registry>(kObsShards);
    obsv.metrics = registry.get();
  }
  if (!trace_path.empty()) {
    tracer = std::make_unique<obs::Tracer>(std::size_t{1} << 18);
    tracer->set_lane_name(0, "driver");
    obsv.tracer = tracer.get();
  }
  if (obsv.enabled()) cloud.set_observer(obsv);
  const auto write_obs = [&] {
    if (registry) registry->snapshot().write_json(metrics_path);
    if (tracer) tracer->write_json(trace_path);
  };

  measure::MeasurementPlan plan;
  plan.train.bursts = 10;
  plan.train.burst_length = args.get("provider") == "rackspace" ? 2000 : 200;

  if (args.get("mode") == "batch") {
    // Workload from the synthetic HP-Cloud trace; measurement (or ground
    // truth with --truth) up front, placement by the chosen algorithm.
    const workload::HpCloudTrace trace(seed * 7 + 5, workload::TraceConfig{});
    Rng rng(seed * 11 + 3);
    const place::ClusterView view =
        args.get_flag("truth") ? measure::true_cluster_view(cloud, vms, seed)
                               : measure::measured_cluster_view(cloud, vms, plan, seed);
    const auto placer = make_placer(args.get("algorithm"), model, seed);
    const place::Application combined = place::combine(trace.sample_batch(rng, n_apps));
    place::ClusterState state(view);
    const place::Placement placement = placer->place(combined, state);

    Table t({"task", "machine", "cpu"});
    for (std::size_t i = 0; i < combined.task_count(); ++i) {
      t.add_row({std::to_string(i), std::to_string(placement.machine_of_task[i]),
                 fmt(combined.cpu_demand[i], 1)});
    }
    std::cout << t.to_string();

    std::vector<cloud::Cloud::Transfer> transfers;
    for (std::size_t i = 0; i < combined.task_count(); ++i) {
      for (std::size_t j = 0; j < combined.task_count(); ++j) {
        const double b = combined.traffic_bytes(i, j);
        if (b <= 0.0) continue;
        transfers.push_back({vms[placement.machine_of_task[i]],
                             vms[placement.machine_of_task[j]], b, 0.0});
      }
    }
    const double est = place::estimate_completion_s(combined, placement, view, model);
    std::cout << "estimated completion: " << fmt(est, 2) << " s\n";
    if (!transfers.empty()) {
      const auto result = cloud.execute(transfers, seed + 1);
      std::cout << "executed completion:  " << fmt(result.makespan_s, 2) << " s ("
                << transfers.size() << " transfers)\n";
    }
    write_obs();
    return 0;
  }

  // The per-pair refresh mix a session spent its probes on (and saved them
  // with): the Choreo::last_measure() counters summed over every cycle.
  const auto print_probe_mix = [](const core::SessionLog& log) {
    std::cout << "probe mix: " << log.pairs_probed << " probed ("
              << log.pairs_volatile << " volatile, " << log.pairs_unpredictable
              << " unpredictable, " << log.pairs_changepoint
              << " change-point); " << log.pairs_predictable
              << " skipped on forecasts, " << log.pairs_predicted
              << " view entries predicted\n";
  };

  if (args.get("mode") == "sequence") {
    const workload::HpCloudTrace trace(seed * 7 + 5, workload::TraceConfig{});
    Rng rng(seed * 11 + 3);
    auto apps = trace.sample_sequence(rng, n_apps, args.get_double("mean-gap"));
    core::ControllerConfig config;
    config.choreo.plan = plan;
    config.choreo.rate_model = model;
    config.choreo.use_measured_view = !args.get_flag("truth");
    config.choreo.forecast.enabled = args.get_flag("forecast");
    config.choreo.obs = obsv.with_lane(1, 1 % kObsShards);
    if (tracer) tracer->set_lane_name(1, "controller");
    core::Controller controller(cloud, vms, config);
    const core::SessionLog log = controller.run(apps);

    Table t({"t (s)", "event", "detail"});
    for (const core::SessionEvent& e : log.events) {
      t.add_row({fmt(e.time_s, 0), core::to_string(e.kind), log.detail(e)});
    }
    std::cout << t.to_string();
    std::cout << "total runtime (sum over apps): " << fmt(log.total_runtime_s, 1)
              << " s; re-evaluations: " << log.reevaluations << " ("
              << log.reevaluations_adopted << " adopted, " << log.tasks_migrated
              << " tasks migrated)\n";
    print_probe_mix(log);
    write_obs();
    return 0;
  }

  if (args.get("mode") == "session") {
    const auto n_tenants = static_cast<std::size_t>(args.get_int("tenants"));
    workload::TraceConfig trace_cfg;
    trace_cfg.duration_hours = args.get_double("duration-hours");
    trace_cfg.apps_per_day = args.get_double("apps-per-day");
    trace_cfg.gen.min_tasks = 3;
    trace_cfg.gen.max_tasks = 6;
    trace_cfg.gen.max_cpu = 2.0;

    // Per-tenant workload streams: a diurnal trace, optionally re-timed by
    // the MMPP burstiness modulator. Streams must outlive the session.
    std::vector<std::unique_ptr<workload::ArrivalStream>> streams;
    std::vector<core::TenantSpec> tenants;
    for (std::size_t i = 0; i < n_tenants; ++i) {
      auto trace_stream = std::make_unique<workload::TraceArrivalStream>(
          seed * 1000 + i, trace_cfg);
      workload::ArrivalStream* source = trace_stream.get();
      streams.push_back(std::move(trace_stream));
      if (args.get_flag("bursty")) {
        // Calm/burst states scaled to the configured arrival rate, so
        // --apps-per-day still governs the long-run average under --bursty.
        workload::MmppArrivalStream::Config mmpp;
        const double base_rate_per_s = trace_cfg.apps_per_day / 86400.0;
        mmpp.rate_per_s = {0.5 * base_rate_per_s, 3.0 * base_rate_per_s};
        mmpp.mean_sojourn_s = {1800.0, 300.0};
        mmpp.duration_s = trace_cfg.duration_hours * 3600.0;
        streams.push_back(std::make_unique<workload::MmppArrivalStream>(
            *source, seed * 2000 + i, mmpp));
        source = streams.back().get();
      }
      core::TenantSpec spec;
      spec.name = "tenant" + std::to_string(i);
      spec.vms = (i == 0) ? vms : cloud.allocate_vms(n_vms);
      spec.config.choreo.plan = plan;
      spec.config.choreo.rate_model = model;
      spec.config.choreo.use_measured_view = !args.get_flag("truth");
      spec.config.choreo.forecast.enabled = args.get_flag("forecast");
      if (args.get_flag("batch")) spec.config.batch.enabled = true;
      if (args.get_flag("agents")) {
        spec.config.agents.enabled = true;
        spec.config.agents.transport.seed = seed * 17 + 3 + i;
        spec.config.agents.transport.fault.loss = args.get_double("loss");
        spec.config.agents.transport.fault.duplicate = args.get_double("duplicate");
        spec.config.agents.transport.fault.delay_max_cycles =
            static_cast<std::uint32_t>(args.get_int("delay-max"));
        spec.config.agents.crash_rate = args.get_double("crash-rate");
        spec.config.agents.crash_seed = seed + 11 + i;
      }
      const auto lane = static_cast<std::uint32_t>(1 + i);
      spec.config.choreo.obs = obsv.with_lane(lane, lane % kObsShards);
      if (tracer) tracer->set_lane_name(lane, "tenant" + std::to_string(i));
      spec.stream = source;
      tenants.push_back(std::move(spec));
    }

    // --threads 1 (the default) keeps the single-threaded oracle path;
    // anything higher routes through the sharded control plane, whose
    // output is bit-identical for any shard/thread count.
    const auto n_threads = static_cast<unsigned>(args.get_int("threads"));
    core::MultiTenantLog result;
    std::vector<core::SessionRuntime::Stats> tenant_stats;
    if (n_threads <= 1) {
      core::MultiTenantSession session(cloud, std::move(tenants));
      result = session.run();
      tenant_stats = session.tenant_stats();
    } else {
      core::ShardedOptions sharded;
      sharded.threads = n_threads;
      sharded.shards = static_cast<std::size_t>(args.get_int("shards"));
      sharded.obs = obsv;
      core::ShardedSession session(cloud, std::move(tenants), sharded);
      result = session.run();
      tenant_stats = session.tenant_stats();
      std::cout << "sharded control plane: " << session.stats().shards
                << " shards, " << session.stats().threads << " threads, "
                << session.stats().epoch_grants << " epoch grants\n";
    }

    Table t({"tenant", "apps", "rejected", "reevals (adopted)", "migrated",
             "runtime sum (s)", "measure wall (s)", "probes"});
    for (std::size_t i = 0; i < result.tenants.size(); ++i) {
      const core::SessionLog& log = result.tenants[i];
      t.add_row({"tenant" + std::to_string(i), std::to_string(log.apps.size()),
                 std::to_string(log.rejected),
                 std::to_string(log.reevaluations) + " (" +
                     std::to_string(log.reevaluations_adopted) + ")",
                 std::to_string(log.tasks_migrated), fmt(log.total_runtime_s, 1),
                 fmt(log.measurement_wall_s, 1), std::to_string(log.pairs_probed)});
    }
    const core::SessionLog& agg = result.aggregate;
    t.add_row({"aggregate", std::to_string(agg.apps.size()),
               std::to_string(agg.rejected),
               std::to_string(agg.reevaluations) + " (" +
                   std::to_string(agg.reevaluations_adopted) + ")",
               std::to_string(agg.tasks_migrated), fmt(agg.total_runtime_s, 1),
               fmt(agg.measurement_wall_s, 1), std::to_string(agg.pairs_probed)});
    std::cout << t.to_string();

    std::uint64_t events = 0;
    std::size_t peak_state = 0;
    for (const core::SessionRuntime::Stats& s : tenant_stats) {
      events += s.events_processed;
      peak_state += s.peak_queue + s.peak_in_flight + s.peak_waiting;
    }
    std::cout << "aggregate events: " << agg.events.size() << " merged, " << events
              << " processed; peak runtime state (events+apps): " << peak_state
              << "\n";
    print_probe_mix(agg);

    if (obsv.enabled()) {
      // Executed-transfer spot check: place a small sampled batch on ground
      // truth and run its transfers through the fluid simulator — the
      // estimated-vs-executed cross-check, and the reason a traced session
      // also covers the flowsim plane.
      const workload::HpCloudTrace trace(seed * 7 + 5, workload::TraceConfig{});
      Rng rng(seed * 11 + 3);
      const place::ClusterView view = measure::true_cluster_view(cloud, vms, seed);
      place::GreedyPlacer greedy(model);
      // Step the batch down until the joint application fits the fleet.
      for (std::size_t batch = 3; batch >= 1; --batch) {
        const place::Application combined =
            place::combine(trace.sample_batch(rng, batch));
        place::ClusterState state(view);
        place::Placement placement;
        try {
          placement = greedy.place(combined, state);
        } catch (const place::PlacementError&) {
          continue;
        }
        std::vector<cloud::Cloud::Transfer> transfers;
        for (std::size_t i = 0; i < combined.task_count(); ++i) {
          for (std::size_t j = 0; j < combined.task_count(); ++j) {
            const double b = combined.traffic_bytes(i, j);
            if (b <= 0.0) continue;
            transfers.push_back({vms[placement.machine_of_task[i]],
                                 vms[placement.machine_of_task[j]], b, 0.0});
          }
        }
        if (transfers.empty()) continue;
        const double est =
            place::estimate_completion_s(combined, placement, view, model);
        const auto exec = cloud.execute(transfers, seed + 1);
        std::cout << "flowsim spot-check: estimated " << fmt(est, 2)
                  << " s, executed " << fmt(exec.makespan_s, 2) << " s ("
                  << transfers.size() << " transfers)\n";
        break;
      }
    }
    write_obs();
    return 0;
  }

  if (args.get("mode") == "agents") {
    agent::AgentOptions opts;
    opts.enabled = true;
    opts.transport.seed = seed * 17 + 3;
    opts.transport.fault.loss = args.get_double("loss");
    opts.transport.fault.duplicate = args.get_double("duplicate");
    opts.transport.fault.delay_max_cycles =
        static_cast<std::uint32_t>(args.get_int("delay-max"));
    opts.crash_rate = args.get_double("crash-rate");
    opts.crash_seed = seed + 11;
    opts.max_samples_per_report = static_cast<std::size_t>(args.get_int("report-budget"));

    measure::RefreshPolicy refresh;
    forecast::ForecastOptions forecast;
    forecast.enabled = args.get_flag("forecast");
    agent::AgentPlane plane(cloud, vms, plan, refresh, forecast, opts, model);
    if (obsv.enabled()) plane.set_observer(obsv);

    const auto n_cycles = static_cast<std::uint64_t>(args.get_int("cycles"));
    Table t({"epoch", "planned", "probed", "missing", "defaulted", "reports",
             "wall (s)"});
    for (std::uint64_t epoch = 1; epoch <= n_cycles; ++epoch) {
      const agent::ClusterAgent::CycleReport rep = plane.run_cycle(epoch);
      t.add_row({std::to_string(epoch), std::to_string(rep.pairs_planned),
                 std::to_string(rep.pairs_probed), std::to_string(rep.pairs_missing),
                 std::to_string(rep.pairs_defaulted),
                 std::to_string(rep.reports_integrated), fmt(rep.wall_time_s, 1)});
    }
    std::cout << t.to_string();

    const agent::AgentPlane::Stats s = plane.stats();
    std::cout << "transport: " << s.transport.sent << " sent, "
              << s.transport.delivered << " delivered, " << s.transport.dropped
              << " dropped, " << s.transport.duplicated << " duplicated, "
              << s.transport.delayed << " delayed ("
              << fmt(static_cast<double>(s.transport.bytes_sent) / 1e6, 2)
              << " MB on the wire)\n";
    std::cout << "agents: " << s.reports_sent << " reports ("
              << s.retransmits << " retransmits, " << s.samples_deferred
              << " samples deferred), " << s.crashes << " crashes, " << s.restarts
              << " restarts; controller dropped " << s.cluster.duplicates_dropped
              << " duplicates, " << s.cluster.stale_generation_dropped
              << " stale-generation reports, re-synced " << s.cluster.resyncs
              << " incarnations\n";
    write_obs();
    return 0;
  }

  std::cerr << "unknown --mode " << args.get("mode") << "\n" << args.usage("choreo_sim");
  return 2;
}

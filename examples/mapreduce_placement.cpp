// MapReduce shuffle placement: the paper's motivating workload class (§1).
// A job with skewed shuffle traffic is placed on an EC2-like cloud by all
// four algorithms; we print the placements side by side, the network time of
// the shuffle under each, and demonstrate the §7.1 caveat that a perfectly
// UNIFORM shuffle leaves Choreo little to exploit.

#include <iostream>

#include "cloud/cloud.h"
#include "measure/throughput_matrix.h"
#include "place/baselines.h"
#include "place/greedy.h"
#include "place/rate_model.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/generator.h"

namespace {

using namespace choreo;

double run_with(cloud::Cloud& cloud, const std::vector<cloud::VmId>& vms,
                const place::Application& app, place::Placer& placer,
                const place::ClusterView& view, std::uint64_t epoch) {
  place::ClusterState state(view);
  const place::Placement p = placer.place(app, state);
  std::vector<cloud::Cloud::Transfer> transfers;
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    for (std::size_t j = 0; j < app.task_count(); ++j) {
      if (app.traffic_bytes(i, j) <= 0.0) continue;
      transfers.push_back({vms[p.machine_of_task[i]], vms[p.machine_of_task[j]],
                           app.traffic_bytes(i, j), 0.0});
    }
  }
  if (transfers.empty()) return 0.0;
  return cloud.execute(transfers, epoch).makespan_s;
}

void compare(cloud::Cloud& cloud, const std::vector<cloud::VmId>& vms,
             const place::Application& app, const place::ClusterView& view,
             const char* title) {
  place::GreedyPlacer choreo_placer(place::RateModel::Hose);
  place::RandomPlacer random(7);
  place::RoundRobinPlacer rr;
  place::MinMachinesPlacer mm;

  Table t({"algorithm", "shuffle time (s)", "vs choreo"});
  const double t0 = run_with(cloud, vms, app, choreo_placer, view, 11);
  t.add_row({"choreo (greedy, hose)", fmt(t0, 2), "-"});
  for (auto* placer : std::initializer_list<place::Placer*>{&random, &rr, &mm}) {
    const double ta = run_with(cloud, vms, app, *placer, view, 11);
    t.add_row({placer->name(), fmt(ta, 2),
               ta > 0 ? fmt((ta - t0) / ta * 100.0, 1) + "% slower-> faster w/ choreo"
                      : "-"});
  }
  std::cout << title << "\n" << t.to_string() << "\n";
}

}  // namespace

int main() {
  using namespace choreo;

  cloud::Cloud cloud(cloud::ec2_2013(), 23);
  const auto vms = cloud.allocate_vms(10);

  measure::MeasurementPlan plan;
  plan.train.bursts = 10;
  plan.train.burst_length = 200;
  const place::ClusterView view = measure::measured_cluster_view(cloud, vms, plan, 1);

  // A skewed MapReduce job: 6 maps, 3 reducers, reducer 0 is hot.
  Rng rng(5);
  workload::GeneratorConfig gen;
  gen.min_tasks = 9;
  gen.max_tasks = 9;
  gen.max_cpu = 2.0;
  gen.max_shuffle_skew = 1.0;
  const place::Application skewed = workload::generate_app(rng, workload::Pattern::MapReduce, gen);
  compare(cloud, vms, skewed, view, "--- skewed shuffle (Choreo's sweet spot) ---");

  // The same job shape with a perfectly uniform shuffle and CPU-heavy tasks
  // (one per machine, so nobody can co-locate): §7.1's "applications that
  // have relatively uniform bandwidth usage would not see much improvement
  // ... because every pair of VMs uses roughly the same amount of
  // bandwidth, it does not help to put the 'largest' pair on the fastest
  // link".
  gen.max_shuffle_skew = 0.0;
  gen.min_cpu = 3.0;
  gen.max_cpu = 4.0;
  const place::Application uniform =
      workload::generate_app(rng, workload::Pattern::MapReduce, gen);
  compare(cloud, vms, uniform, view, "--- uniform shuffle (little for Choreo to exploit) ---");
  return 0;
}

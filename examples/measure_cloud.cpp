// Measurement study: point Choreo's measurement subsystem at a cloud and
// print everything a tenant can learn without provider cooperation (§3-4):
//   * the pairwise throughput matrix from packet trains,
//   * co-location groups and hop counts from traceroute,
//   * cross-traffic estimates on the busiest paths,
//   * bottleneck location / hose-model detection probes,
//   * a packet-train calibration sweep (which train parameters to trust).
//
// Usage: measure_cloud [ec2|ec2-2012|rackspace] [vms] [seed]

#include <cstdlib>
#include <iostream>
#include <string>

#include "measure/bottleneck.h"
#include "measure/calibration.h"
#include "measure/cross_traffic.h"
#include "measure/throughput_matrix.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace choreo;
  using units::to_mbps;

  const std::string provider = argc > 1 ? argv[1] : "ec2";
  const std::size_t n_vms = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;

  cloud::ProviderProfile profile;
  if (provider == "rackspace") {
    profile = cloud::rackspace();
  } else if (provider == "ec2-2012") {
    profile = cloud::ec2_2012();
  } else {
    profile = cloud::ec2_2013();
  }
  std::cout << "provider: " << profile.name << ", VMs: " << n_vms << ", seed: " << seed
            << "\n\n";

  cloud::Cloud cloud(profile, seed);
  const auto vms = cloud.allocate_vms(n_vms);

  // --- pairwise throughput via packet trains ---
  measure::MeasurementPlan plan;
  plan.train.bursts = 10;
  plan.train.burst_length = profile.name == "rackspace" ? 2000 : 200;
  plan.workers = 4;  // one round's trains run concurrently (§4.1)
  const measure::MatrixResult matrix = measure::measure_rate_matrix(cloud, vms, plan, 1);
  std::cout << "pairwise TCP throughput estimates (Mbit/s), " << matrix.pairs_measured
            << " pairs in " << matrix.rounds << " conflict-free rounds, "
            << fmt(matrix.wall_time_s, 0) << " s wall clock:\n";
  {
    std::vector<std::string> headers{"src\\dst"};
    for (std::size_t j = 0; j < n_vms; ++j) headers.push_back("vm" + std::to_string(j));
    Table t(headers);
    for (std::size_t i = 0; i < n_vms; ++i) {
      std::vector<std::string> row{"vm" + std::to_string(i)};
      for (std::size_t j = 0; j < n_vms; ++j) {
        row.push_back(i == j ? "-" : fmt(to_mbps(matrix.rate_bps(i, j)), 0));
      }
      t.add_row(row);
    }
    std::cout << t.to_string() << "\n";
  }

  // --- incremental refresh: keeping the view fresh without re-probing ---
  {
    measure::ViewCache cache;
    measure::RefreshPolicy policy;
    policy.max_age_epochs = 4;
    const auto full = measure::refresh_cluster_view(cloud, vms, plan, 1, cache, policy);
    // A few paths looked off (an operator flag, a failed transfer): drop
    // just those estimates and refresh. Disjoint pairs share rounds, so the
    // re-probe is cheap; everything else carries over from epoch 1.
    cache.invalidate(0, 1);
    cache.invalidate(1, 0);
    cache.invalidate(2, n_vms - 1);
    const auto incr = measure::refresh_cluster_view(cloud, vms, plan, 3, cache, policy);
    std::cout << "incremental refresh of 3 flagged paths: " << incr.pairs_probed << "/"
              << full.pairs_probed << " pairs re-probed in " << incr.rounds
              << " round(s), modeled wall clock " << fmt(incr.wall_time_s, 0) << " s vs "
              << fmt(full.wall_time_s, 0) << " s for a full sweep\n\n";
  }

  // --- traceroute topology hints ---
  std::cout << "traceroute hop counts:\n";
  {
    Table t({"pair", "hops", "interpretation"});
    for (std::size_t i = 0; i < n_vms; ++i) {
      for (std::size_t j = i + 1; j < n_vms; ++j) {
        const std::size_t hops = cloud.traceroute_hops(vms[i], vms[j]);
        std::string meaning;
        switch (hops) {
          case 1: meaning = "same physical machine"; break;
          case 2: meaning = "same rack"; break;
          case 4: meaning = "same pod (via aggregation)"; break;
          case 6: meaning = "same region (via core)"; break;
          case 8: meaning = "across regions"; break;
          default: meaning = "?";
        }
        t.add_row({"vm" + std::to_string(i) + " <-> vm" + std::to_string(j),
                   std::to_string(hops), meaning});
      }
    }
    std::cout << t.to_string() << "\n";
  }

  // --- cross traffic on the slowest path ---
  {
    std::size_t worst_i = 0, worst_j = 1;
    double worst = 1e30;
    for (std::size_t i = 0; i < n_vms; ++i) {
      for (std::size_t j = 0; j < n_vms; ++j) {
        if (i != j && matrix.rate_bps(i, j) < worst) {
          worst = matrix.rate_bps(i, j);
          worst_i = i;
          worst_j = j;
        }
      }
    }
    const auto series = measure::measure_cross_traffic(
        cloud, vms[worst_i], vms[worst_j], /*path_rate=*/matrix.rate_bps(worst_i, worst_j),
        /*duration=*/5.0, /*interval=*/0.01, /*epoch=*/3);
    double c_mean = 0.0;
    for (double c : series) c_mean += c;
    c_mean /= static_cast<double>(series.size());
    std::cout << "cross traffic on slowest path vm" << worst_i << "->vm" << worst_j
              << ": c = " << fmt(c_mean, 2)
              << " equivalent backlogged connections (0 = path to ourselves)\n\n";
  }

  // --- bottleneck location ---
  if (n_vms >= 4) {
    const auto report = measure::locate_bottlenecks(cloud, vms, 5, 3.0, seed + 9, 50);
    std::cout << "bottleneck probes: same-source interfering "
              << report.same_source_interfering << "/" << report.same_source_probes
              << ", disjoint interfering " << report.disjoint_interfering << "/"
              << report.disjoint_probes << "\n";
    std::cout << "  => source bottleneck: " << (report.source_bottleneck ? "yes" : "no")
              << ", hose model: " << (report.hose_model ? "yes" : "no")
              << " (sum ratio " << fmt(report.mean_same_source_sum_ratio, 2) << ")\n\n";
  }

  // --- calibration sweep (small) ---
  measure::CalibrationConfig cal;
  cal.burst_counts = {10};
  cal.burst_lengths = {100, 500, 2000};
  cal.max_paths = 6;
  const auto points = measure::calibrate_trains(cloud, vms, cal, 200);
  Table t({"bursts", "burst length", "mean error vs netperf"});
  for (const auto& p : points) {
    t.add_row({std::to_string(p.bursts), std::to_string(p.burst_length),
               fmt_pct(p.mean_rel_error)});
  }
  std::cout << "packet-train calibration:\n" << t.to_string();
  return 0;
}

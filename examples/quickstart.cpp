// Quickstart: the complete Choreo loop in ~60 lines.
//
//   1. rent VMs on an (emulated) cloud,
//   2. measure the network with packet trains + traceroute,
//   3. profile an application into a traffic matrix,
//   4. place it with the greedy network-aware algorithm,
//   5. run the transfers and compare against a random placement.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart

#include <iostream>

#include "cloud/cloud.h"
#include "core/choreo.h"
#include "core/profiler.h"
#include "place/baselines.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace choreo;

  // 1. A tenant rents 8 VMs on an EC2-like cloud.
  cloud::Cloud cloud(cloud::ec2_2013(), /*seed=*/7);
  const std::vector<cloud::VmId> vms = cloud.allocate_vms(8);

  // 2. Choreo measures the inter-VM network (§3): packet trains on every
  //    ordered pair, co-location from traceroute.
  core::ChoreoConfig config;
  config.plan.train.bursts = 10;      // the §4.1 EC2 calibration
  config.plan.train.burst_length = 200;
  core::Choreo choreo(cloud, vms, config);
  const double measure_wall = choreo.measure_network(/*epoch=*/1);
  std::cout << "measured " << vms.size() * (vms.size() - 1) << " paths; would take "
            << fmt(measure_wall, 0) << " s of wall clock on a real cloud\n";

  // 3. Profile the application from (synthetic) sFlow records: task 0
  //    shuffles heavily to tasks 1 and 2, tasks 3-4 chat lightly.
  core::Profiler profiler(/*task_count=*/5);
  profiler.observe({0, 1, units::gigabytes(2.0), 10.0});
  profiler.observe({0, 2, units::gigabytes(1.5), 15.0});
  profiler.observe({1, 2, units::megabytes(300), 20.0});
  profiler.observe({3, 4, units::megabytes(50), 25.0});
  // CPU demands sum to 10 cores, so the app cannot collapse onto one 4-core
  // machine: Choreo must co-locate the chattiest pair and pick fast paths
  // for the rest.
  const place::Application app =
      profiler.to_application({3.0, 2.0, 2.0, 1.5, 1.5}, "quickstart-app");

  // 4. Place it with Choreo's greedy algorithm (Algorithm 1)...
  const auto handle = choreo.place_application(app);
  const place::Placement& placement = choreo.placement_of(handle);

  Table t({"task", "machine (VM index)"});
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    t.add_row({std::to_string(i), std::to_string(placement.machine_of_task[i])});
  }
  std::cout << t.to_string();

  // 5. ...run the real transfers, and compare with a random placement.
  const double t_choreo =
      cloud.execute(choreo.transfers_for(app, placement, 0.0), /*epoch=*/2).makespan_s;

  place::RandomPlacer random(42);
  place::ClusterState fresh(choreo.view());
  const place::Placement random_placement = random.place(app, fresh);
  const double t_random =
      cloud.execute(choreo.transfers_for(app, random_placement, 0.0), 2).makespan_s;

  std::cout << "completion: choreo " << fmt(t_choreo, 2) << " s, random "
            << fmt(t_random, 2) << " s";
  if (t_random > 0.0) {
    std::cout << "  (speed-up " << fmt((t_random - t_choreo) / t_random * 100.0, 1)
              << "%)";
  }
  std::cout << "\n";
  return 0;
}

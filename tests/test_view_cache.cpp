#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "measure/throughput_matrix.h"
#include "measure/view_cache.h"
#include "util/require.h"
#include "util/units.h"

namespace choreo::measure {
namespace {

using units::mbps;

TEST(ViewCache, FreshCachePlansFullMatrix) {
  ViewCache cache(4);
  const RefreshPlan plan = cache.plan_refresh(1, RefreshPolicy{});
  EXPECT_EQ(plan.pairs.size(), 12u);
  EXPECT_EQ(plan.never_measured, 12u);
  EXPECT_EQ(plan.stale, 0u);
}

TEST(ViewCache, FreshEntriesAreNotReprobed) {
  ViewCache cache(3);
  RefreshPolicy policy;
  policy.max_age_epochs = 5;
  for (const ProbePair& p : all_ordered_pairs(3)) {
    cache.store(p.src, p.dst, mbps(500), /*epoch=*/10);
  }
  EXPECT_TRUE(cache.plan_refresh(12, policy).pairs.empty());
}

TEST(ViewCache, StaleEntriesAreReprobed) {
  ViewCache cache(3);
  RefreshPolicy policy;
  policy.max_age_epochs = 5;
  for (const ProbePair& p : all_ordered_pairs(3)) {
    cache.store(p.src, p.dst, mbps(500), /*epoch=*/10);
  }
  cache.store(0, 1, mbps(500), 2);  // overwrite: now measured long ago
  const RefreshPlan plan = cache.plan_refresh(12, policy);
  ASSERT_EQ(plan.pairs.size(), 1u);
  EXPECT_EQ(plan.stale, 1u);
  EXPECT_TRUE(plan.pairs[0] == (ProbePair{0, 1}));
}

TEST(ViewCache, VolatilePairsAreReprobedEveryCycle) {
  ViewCache cache(3);
  RefreshPolicy policy;
  policy.max_age_epochs = 100;  // nothing goes stale in this test
  policy.volatility_threshold = 0.5;
  for (const ProbePair& p : all_ordered_pairs(3)) {
    cache.store(p.src, p.dst, mbps(500), 1);
    cache.store(p.src, p.dst, mbps(500), 2);  // steady: not volatile
  }
  // Pair (1, 2) swings by 4x between cycles — a low §2.1 predictability
  // score at the pair level.
  cache.store(1, 2, mbps(2000), 3);
  EXPECT_TRUE(cache.is_volatile(1, 2, 0.5));
  EXPECT_FALSE(cache.is_volatile(0, 1, 0.5));
  const RefreshPlan plan = cache.plan_refresh(4, policy);
  ASSERT_EQ(plan.pairs.size(), 1u);
  EXPECT_EQ(plan.volatile_pairs, 1u);
  EXPECT_TRUE(plan.pairs[0] == (ProbePair{1, 2}));

  policy.refresh_volatile = false;
  EXPECT_TRUE(cache.plan_refresh(4, policy).pairs.empty());
}

TEST(ViewCache, SingleMeasurementIsNeverVolatile) {
  ViewCache cache(2);
  cache.store(0, 1, mbps(100), 1);
  EXPECT_FALSE(cache.is_volatile(0, 1, 0.01));
}

TEST(ViewCache, ResizePreservesSurvivorsAndFlagsNewVms) {
  ViewCache cache(3);
  for (const ProbePair& p : all_ordered_pairs(3)) {
    cache.store(p.src, p.dst, mbps(700), 5);
  }
  cache.resize(5);  // two newly allocated VMs
  EXPECT_EQ(cache.at(0, 1).rate_bps, mbps(700));
  EXPECT_EQ(cache.at(2, 1).epoch, 5u);
  EXPECT_FALSE(cache.at(0, 3).valid());
  const RefreshPlan plan = cache.plan_refresh(6, RefreshPolicy{});
  // 5*4 total pairs minus the 6 surviving measured ones.
  EXPECT_EQ(plan.pairs.size(), 14u);
  EXPECT_EQ(plan.never_measured, 14u);
  for (const ProbePair& p : plan.pairs) {
    EXPECT_TRUE(p.src >= 3 || p.dst >= 3) << "old pair re-probed";
  }
}

TEST(ViewCache, ExportsRatesAndEpochs) {
  ViewCache cache(3);
  cache.store(0, 1, mbps(250), 7);
  const DoubleMatrix r = cache.rates();
  EXPECT_EQ(r(0, 1), mbps(250));
  EXPECT_EQ(r(1, 0), 0.0);
  EXPECT_EQ(r(1, 1), 0.0);
  const Matrix<std::uint64_t> e = cache.epochs();
  EXPECT_EQ(e(0, 1), 7u);
  EXPECT_EQ(e(2, 0), 0u);
  EXPECT_EQ(cache.measured_pairs(), 1u);
}

TEST(ViewCache, SingleSamplePairsAreNeverVolatileEvenAtZeroThreshold) {
  // A pair with one measurement has no second sample to disagree with: it
  // must not qualify as volatile no matter how strict the threshold, and a
  // plan must not re-probe it on volatility grounds.
  ViewCache cache(3);
  RefreshPolicy policy;
  policy.max_age_epochs = 100;
  policy.volatility_threshold = 0.0;  // strictest possible
  for (const ProbePair& p : all_ordered_pairs(3)) {
    cache.store(p.src, p.dst, mbps(100 * (p.src + 1)), 5);
    EXPECT_FALSE(cache.is_volatile(p.src, p.dst, 0.0));
  }
  const RefreshPlan plan = cache.plan_refresh(5, policy);
  EXPECT_TRUE(plan.pairs.empty());
  EXPECT_EQ(plan.volatile_pairs, 0u);
}

TEST(ViewCache, AgeExactlyMaxAgeEpochsIsNotStale) {
  // Staleness is strict: a pair measured at epoch e goes stale only once
  // e + max_age_epochs < current, so age == max_age_epochs is still fresh.
  ViewCache cache(2);
  RefreshPolicy policy;
  policy.max_age_epochs = 5;
  cache.store(0, 1, mbps(500), 10);
  cache.store(1, 0, mbps(500), 10);

  EXPECT_TRUE(cache.plan_refresh(15, policy).pairs.empty());  // age == max_age
  const RefreshPlan stale = cache.plan_refresh(16, policy);   // one past it
  ASSERT_EQ(stale.pairs.size(), 2u);
  EXPECT_EQ(stale.stale, 2u);
}

TEST(ViewCache, PlanRefreshOnAllFreshCacheIsEmpty) {
  // Every pair measured twice at steady rates within max_age: the default
  // policy (volatility probing on) must produce a completely empty plan
  // with every classification count zero.
  ViewCache cache(4);
  for (const ProbePair& p : all_ordered_pairs(4)) {
    cache.store(p.src, p.dst, mbps(750), 1);
    cache.store(p.src, p.dst, mbps(750), 2);
  }
  const RefreshPlan plan = cache.plan_refresh(3, RefreshPolicy{});
  EXPECT_TRUE(plan.pairs.empty());
  EXPECT_EQ(plan.never_measured, 0u);
  EXPECT_EQ(plan.stale, 0u);
  EXPECT_EQ(plan.volatile_pairs, 0u);
}

TEST(ViewCache, InvalidateForcesReprobe) {
  ViewCache cache(2);
  cache.store(0, 1, mbps(100), 1);
  cache.store(1, 0, mbps(100), 1);
  cache.invalidate(0, 1);
  const RefreshPlan plan = cache.plan_refresh(1, RefreshPolicy{});
  ASSERT_EQ(plan.pairs.size(), 1u);
  EXPECT_TRUE(plan.pairs[0] == (ProbePair{0, 1}));
}

// The acceptance-criterion behaviour: an incremental refresh probes strictly
// fewer pairs than a full re-measurement and keeps unchanged pairs
// bit-identical in the rebuilt view.
TEST(ViewCacheIntegration, IncrementalRefreshProbesFewerAndKeepsFreshPairs) {
  cloud::Cloud c(cloud::ec2_2013(), 41);
  const auto vms = c.allocate_vms(6);
  MeasurementPlan plan;
  plan.train.bursts = 5;
  plan.train.burst_length = 100;
  RefreshPolicy policy;
  policy.max_age_epochs = 50;  // nothing goes stale between the two cycles
  policy.volatility_threshold = 1e9;  // ignore volatility here

  ViewCache cache;
  const RefreshResult full = refresh_cluster_view(c, vms, plan, 1, cache, policy);
  EXPECT_EQ(full.pairs_probed, 30u);
  EXPECT_EQ(full.rounds, 5u);
  EXPECT_GT(full.wall_time_s, 0.0);
  full.view.validate();

  // Invalidate a couple of pairs (e.g. flagged by an operator) and refresh.
  cache.invalidate(0, 1);
  cache.invalidate(3, 2);
  const RefreshResult incr = refresh_cluster_view(c, vms, plan, 9, cache, policy);
  EXPECT_EQ(incr.pairs_probed, 2u);
  EXPECT_LT(incr.pairs_probed, full.pairs_probed);
  EXPECT_LT(incr.wall_time_s, full.wall_time_s);

  // Unchanged pairs: bit-identical. Re-probed pairs: stamped with the new
  // epoch and re-measured.
  for (std::size_t i = 0; i < vms.size(); ++i) {
    for (std::size_t j = 0; j < vms.size(); ++j) {
      if (i == j) continue;
      const bool reprobed = (i == 0 && j == 1) || (i == 3 && j == 2);
      if (reprobed) {
        EXPECT_EQ(incr.view.pair_epoch(i, j), 9u);
      } else {
        EXPECT_DOUBLE_EQ(incr.view.rate_bps(i, j), full.view.rate_bps(i, j));
        EXPECT_EQ(incr.view.pair_epoch(i, j), 1u);
      }
    }
  }
  EXPECT_EQ(incr.view.view_epoch, 9u);
  EXPECT_EQ(incr.view.freshness(0, 1), 9u);
  EXPECT_EQ(incr.view.freshness(1, 0), 1u);
}

TEST(ViewCacheIntegration, NothingToProbeCostsNothing) {
  cloud::Cloud c(cloud::ec2_2013(), 43);
  const auto vms = c.allocate_vms(4);
  MeasurementPlan plan;
  plan.train.bursts = 5;
  plan.train.burst_length = 100;
  RefreshPolicy policy;
  policy.max_age_epochs = 50;
  policy.volatility_threshold = 1e9;
  ViewCache cache;
  refresh_cluster_view(c, vms, plan, 1, cache, policy);
  const RefreshResult again = refresh_cluster_view(c, vms, plan, 2, cache, policy);
  EXPECT_EQ(again.pairs_probed, 0u);
  EXPECT_EQ(again.rounds, 0u);
  EXPECT_DOUBLE_EQ(again.wall_time_s, 0.0);
  again.view.validate();
}

}  // namespace
}  // namespace choreo::measure

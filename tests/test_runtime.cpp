// The discrete-event session runtime beyond the differential pin: the
// stepping API, constant-memory streaming mode, and multi-tenant sessions
// interleaving disjoint VM slices of one shared cloud.

#include "core/runtime.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/units.h"
#include "workload/stream.h"

namespace choreo::core {
namespace {

using units::gigabytes;

workload::GeneratorArrivalStream::Config small_stream_config(std::size_t apps,
                                                             double mean_gap_s) {
  workload::GeneratorArrivalStream::Config cfg;
  cfg.gen.min_tasks = 3;
  cfg.gen.max_tasks = 5;
  cfg.gen.max_cpu = 1.5;
  cfg.gen.median_transfer_bytes = 200e6;
  cfg.mean_gap_s = mean_gap_s;
  cfg.max_apps = apps;
  return cfg;
}

ControllerConfig fast_config() {
  ControllerConfig config;
  config.choreo.use_measured_view = false;  // fast, deterministic
  config.choreo.reevaluate_period_s = 120.0;
  return config;
}

TEST(SessionRuntime, StepwiseClockIsMonotone) {
  cloud::Cloud cloud(cloud::ec2_2013(), 7);
  const auto vms = cloud.allocate_vms(6);
  workload::GeneratorArrivalStream stream(3, small_stream_config(8, 30.0));
  SessionRuntime runtime(cloud, vms, fast_config());
  runtime.start(stream);
  double last = 0.0;
  while (!runtime.done()) {
    const double t = runtime.next_time();
    EXPECT_GE(t + 1e-9, runtime.now());
    runtime.step();
    EXPECT_GE(runtime.now() + 1e-9, last);
    last = runtime.now();
  }
  const SessionLog log = runtime.finish();
  EXPECT_EQ(log.apps.size(), 8u);
  for (const AppOutcome& a : log.apps) EXPECT_GE(a.finished_s, 0.0);
  EXPECT_GT(runtime.stats().events_processed, 0u);
  EXPECT_EQ(runtime.stats().arrivals, 8u);
  EXPECT_EQ(runtime.stats().departures, 8u);
}

TEST(SessionRuntime, StreamingModeIsConstantMemory) {
  // Dozens of applications stream through with event and outcome recording
  // off:
  // the log must stay empty, every outcome must still be delivered through
  // the sink, and the runtime's live state must stay bounded by the fleet —
  // never by the stream length.
  cloud::Cloud cloud(cloud::ec2_2013(), 11);
  const auto vms = cloud.allocate_vms(8);
  workload::GeneratorArrivalStream stream(5, small_stream_config(60, 15.0));
  ControllerConfig config = fast_config();
  config.choreo.reevaluate_period_s = 600.0;  // keep the long session cheap

  RuntimeOptions options;
  options.record_events = false;
  options.record_outcomes = false;
  std::size_t outcomes = 0;
  std::size_t finished = 0;
  options.on_outcome = [&](const AppOutcome& a) {
    ++outcomes;
    if (a.finished_s >= 0.0) {
      ++finished;
      EXPECT_GE(a.placed_s, a.arrival_s);
      EXPECT_GT(a.finished_s, a.placed_s - 1e-9);
    }
  };
  SessionRuntime runtime(cloud, vms, std::move(config), std::move(options));
  const SessionLog log = runtime.run(stream);

  EXPECT_TRUE(log.events.empty());
  EXPECT_TRUE(log.apps.empty());
  EXPECT_EQ(outcomes, 60u);
  EXPECT_EQ(finished + log.rejected, 60u);
  EXPECT_GT(log.total_runtime_s, 0.0);

  const SessionRuntime::Stats& stats = runtime.stats();
  EXPECT_EQ(stats.arrivals, 60u);
  // Live state bounded by the fleet and the event horizon, not the trace:
  // with 8 VMs only a handful of apps fit at once, and the queue holds at
  // most a few events per in-flight app plus the look-ahead arrival.
  EXPECT_LT(stats.peak_in_flight, 24u);
  EXPECT_LT(stats.peak_queue, 64u);
}

TEST(SessionRuntime, RecordingAndStreamingAgreeOnAccounting) {
  // The same session with recording on and off must produce identical
  // counters; only what is materialized differs.
  const auto run_once = [](bool record) {
    cloud::Cloud cloud(cloud::ec2_2013(), 23);
    const auto vms = cloud.allocate_vms(6);
    workload::GeneratorArrivalStream stream(9, small_stream_config(30, 25.0));
    RuntimeOptions options;
    options.record_events = record;
    options.record_outcomes = record;
    SessionRuntime runtime(cloud, vms, fast_config(), std::move(options));
    return runtime.run(stream);
  };
  const SessionLog recorded = run_once(true);
  const SessionLog streamed = run_once(false);
  EXPECT_EQ(recorded.apps.size(), 30u);
  EXPECT_EQ(recorded.reevaluations, streamed.reevaluations);
  EXPECT_EQ(recorded.rejected, streamed.rejected);
  EXPECT_EQ(recorded.pairs_probed, streamed.pairs_probed);
  EXPECT_DOUBLE_EQ(recorded.total_runtime_s, streamed.total_runtime_s);
  EXPECT_DOUBLE_EQ(recorded.measurement_wall_s, streamed.measurement_wall_s);
}

TEST(MultiTenant, RejectsOverlappingVmSlices) {
  cloud::Cloud cloud(cloud::ec2_2013(), 3);
  const auto vms = cloud.allocate_vms(6);
  workload::GeneratorArrivalStream stream(1, small_stream_config(2, 30.0));
  std::vector<TenantSpec> tenants(2);
  tenants[0].vms = {vms[0], vms[1], vms[2]};
  tenants[0].stream = &stream;
  tenants[1].vms = {vms[2], vms[3], vms[4]};  // vms[2] shared: invalid
  tenants[1].stream = &stream;
  EXPECT_THROW(MultiTenantSession(cloud, std::move(tenants)), PreconditionError);
}

TEST(MultiTenant, InterleavesTenantsOnSharedClock) {
  cloud::Cloud cloud(cloud::ec2_2013(), 41);
  const auto vms_a = cloud.allocate_vms(6);
  const auto vms_b = cloud.allocate_vms(6);
  workload::GeneratorArrivalStream stream_a(100, small_stream_config(6, 40.0));
  workload::GeneratorArrivalStream stream_b(200, small_stream_config(6, 40.0));

  std::vector<TenantSpec> tenants(2);
  tenants[0].name = "a";
  tenants[0].vms = vms_a;
  tenants[0].config = fast_config();
  tenants[0].stream = &stream_a;
  tenants[1].name = "b";
  tenants[1].vms = vms_b;
  tenants[1].config = fast_config();
  tenants[1].stream = &stream_b;
  MultiTenantSession session(cloud, std::move(tenants));
  const MultiTenantLog result = session.run();

  ASSERT_EQ(result.tenants.size(), 2u);
  for (const SessionLog& log : result.tenants) {
    EXPECT_EQ(log.apps.size(), 6u);
    for (const AppOutcome& a : log.apps) EXPECT_GE(a.finished_s, 0.0);
  }
  // Aggregate: outcomes concatenated, counters summed, events merged in
  // shared-clock order with payloads re-based onto the concatenation.
  const SessionLog& agg = result.aggregate;
  EXPECT_EQ(agg.apps.size(), 12u);
  EXPECT_EQ(agg.events.size(),
            result.tenants[0].events.size() + result.tenants[1].events.size());
  EXPECT_DOUBLE_EQ(agg.total_runtime_s, result.tenants[0].total_runtime_s +
                                            result.tenants[1].total_runtime_s);
  bool saw_both_tenants[2] = {false, false};
  for (std::size_t i = 0; i < agg.events.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(agg.events[i - 1].time_s, agg.events[i].time_s + 1e-6);
    }
    ASSERT_LT(agg.events[i].tenant, 2u);
    saw_both_tenants[agg.events[i].tenant] = true;
    if (agg.events[i].app != SessionEvent::kNoApp) {
      ASSERT_LT(agg.events[i].app, agg.apps.size());
      EXPECT_FALSE(agg.detail(agg.events[i]).empty());
    }
  }
  EXPECT_TRUE(saw_both_tenants[0]);
  EXPECT_TRUE(saw_both_tenants[1]);
}

TEST(MultiTenant, DeterministicAcrossRuns) {
  const auto run_once = [] {
    cloud::Cloud cloud(cloud::ec2_2013(), 77);
    const auto vms_a = cloud.allocate_vms(5);
    const auto vms_b = cloud.allocate_vms(5);
    workload::GeneratorArrivalStream stream_a(300, small_stream_config(5, 30.0));
    workload::GeneratorArrivalStream stream_b(400, small_stream_config(5, 30.0));
    std::vector<TenantSpec> tenants(2);
    tenants[0].vms = vms_a;
    tenants[0].config = fast_config();
    tenants[0].stream = &stream_a;
    tenants[1].vms = vms_b;
    tenants[1].config = fast_config();
    tenants[1].stream = &stream_b;
    MultiTenantSession session(cloud, std::move(tenants));
    return session.run();
  };
  const MultiTenantLog r1 = run_once();
  const MultiTenantLog r2 = run_once();
  ASSERT_EQ(r1.aggregate.events.size(), r2.aggregate.events.size());
  for (std::size_t i = 0; i < r1.aggregate.events.size(); ++i) {
    EXPECT_EQ(r1.aggregate.events[i].time_s, r2.aggregate.events[i].time_s);
    EXPECT_EQ(r1.aggregate.events[i].kind, r2.aggregate.events[i].kind);
    EXPECT_EQ(r1.aggregate.events[i].tenant, r2.aggregate.events[i].tenant);
    EXPECT_EQ(r1.aggregate.events[i].app, r2.aggregate.events[i].app);
  }
  EXPECT_EQ(r1.aggregate.total_runtime_s, r2.aggregate.total_runtime_s);
}

TEST(MultiTenant, MeasuredTenantsDrawSharedEpochs) {
  // With the measured view on, both tenants probe the shared cloud; each
  // draws epochs from the shared counter, so both sessions account probes
  // and the cloud's epoch counter advances past its initial value.
  cloud::Cloud cloud(cloud::ec2_2013(), 5);
  const auto vms_a = cloud.allocate_vms(4);
  const auto vms_b = cloud.allocate_vms(4);
  workload::GeneratorArrivalStream stream_a(500, small_stream_config(2, 20.0));
  workload::GeneratorArrivalStream stream_b(600, small_stream_config(2, 20.0));
  std::vector<TenantSpec> tenants(2);
  for (std::size_t i = 0; i < 2; ++i) {
    tenants[i].config.choreo.plan.train.bursts = 3;
    tenants[i].config.choreo.plan.train.burst_length = 60;
    tenants[i].config.choreo.reevaluate_period_s = 300.0;
  }
  tenants[0].vms = vms_a;
  tenants[0].stream = &stream_a;
  tenants[1].vms = vms_b;
  tenants[1].stream = &stream_b;
  MultiTenantSession session(cloud, std::move(tenants));
  const MultiTenantLog result = session.run();
  for (const SessionLog& log : result.tenants) {
    EXPECT_GT(log.pairs_probed, 0u);
    EXPECT_GT(log.measurement_wall_s, 0.0);
  }
  // Both tenants' measurement cycles consumed distinct shared epochs.
  EXPECT_GT(cloud.next_epoch(), 4u);
}

}  // namespace
}  // namespace choreo::core

// Differential pin for the control-plane refactor: the discrete-event
// SessionRuntime behind Controller::run must reproduce the historical
// hand-rolled merge loop (kept verbatim as run_session_reference)
// bit-identically — every event, every outcome, every accounting double —
// over a randomized single-tenant corpus that exercises simultaneous
// arrivals, deferral and FIFO retries, rejection, instant (zero-network)
// completions, adopted and rejected re-evaluations, and both the measured
// and ground-truth view paths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/controller.h"
#include "core/reference_session.h"
#include "util/units.h"
#include "workload/generator.h"

namespace choreo::core {
namespace {

using units::gigabytes;

void expect_logs_identical(const SessionLog& ref, const SessionLog& got,
                           const std::string& label) {
  ASSERT_EQ(ref.events.size(), got.events.size()) << label;
  for (std::size_t i = 0; i < ref.events.size(); ++i) {
    const SessionEvent& a = ref.events[i];
    const SessionEvent& b = got.events[i];
    EXPECT_EQ(a.time_s, b.time_s) << label << " event " << i;
    EXPECT_EQ(a.kind, b.kind) << label << " event " << i;
    EXPECT_EQ(a.app, b.app) << label << " event " << i;
    EXPECT_EQ(a.tasks_migrated, b.tasks_migrated) << label << " event " << i;
    EXPECT_EQ(a.adopted, b.adopted) << label << " event " << i;
    EXPECT_EQ(ref.detail(a), got.detail(b)) << label << " event " << i;
  }
  ASSERT_EQ(ref.apps.size(), got.apps.size()) << label;
  for (std::size_t i = 0; i < ref.apps.size(); ++i) {
    const AppOutcome& a = ref.apps[i];
    const AppOutcome& b = got.apps[i];
    EXPECT_EQ(a.name, b.name) << label << " app " << i;
    EXPECT_EQ(a.arrival_s, b.arrival_s) << label << " app " << i;
    EXPECT_EQ(a.placed_s, b.placed_s) << label << " app " << i;
    EXPECT_EQ(a.finished_s, b.finished_s) << label << " app " << i;
    EXPECT_EQ(a.rejected, b.rejected) << label << " app " << i;
    EXPECT_EQ(a.placement.machine_of_task, b.placement.machine_of_task)
        << label << " app " << i;
  }
  EXPECT_EQ(ref.reevaluations, got.reevaluations) << label;
  EXPECT_EQ(ref.reevaluations_adopted, got.reevaluations_adopted) << label;
  EXPECT_EQ(ref.tasks_migrated, got.tasks_migrated) << label;
  EXPECT_EQ(ref.rejected, got.rejected) << label;
  EXPECT_EQ(ref.total_runtime_s, got.total_runtime_s) << label;
  EXPECT_EQ(ref.measurement_wall_s, got.measurement_wall_s) << label;
  EXPECT_EQ(ref.pairs_probed, got.pairs_probed) << label;
}

/// Draws one randomized session workload: generated apps with a mix of
/// spread-out, duplicated (same-instant), and bursty arrival times, plus
/// occasional instant-completion chat apps and oversized apps that defer or
/// reject.
std::vector<place::Application> draw_workload(Rng& rng, std::size_t count) {
  workload::GeneratorConfig gen;
  gen.min_tasks = 3;
  gen.max_tasks = 5;
  gen.min_cpu = 0.5;
  gen.max_cpu = 3.0;
  gen.median_transfer_bytes = 400e6;

  std::vector<place::Application> apps;
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    place::Application app;
    const double flavor = rng.uniform(0.0, 1.0);
    if (flavor < 0.15) {
      // Chat app: tiny traffic, co-locatable — estimated completion ~0, so
      // its departure shares the arrival instant (the trickiest tie).
      app.name = "chat" + std::to_string(i);
      app.cpu_demand = {0.5, 0.5};
      app.traffic_bytes = DoubleMatrix(2, 2, 0.0);
      app.traffic_bytes(0, 1) = 1e3;
    } else if (flavor < 0.45) {
      // Fat app: saturates CPU (and runs for minutes) so later arrivals
      // defer or reject.
      app.name = "fat" + std::to_string(i);
      app.cpu_demand = {4.0, 4.0, 4.0};
      app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
      app.traffic_bytes(0, 1) = gigabytes(rng.uniform(3.0, 8.0));
      app.traffic_bytes(1, 2) = gigabytes(rng.uniform(1.0, 4.0));
    } else {
      app = workload::generate_app(rng, gen);
      app.name += std::to_string(i);
    }
    // Arrival pattern: 25% exact duplicates of the previous instant, the
    // rest spread by random gaps (occasionally long enough to idle the
    // cluster across a re-evaluation deadline).
    if (i > 0 && rng.chance(0.25)) {
      // t unchanged: simultaneous with the previous arrival.
    } else {
      t += rng.chance(0.15) ? rng.uniform(200.0, 900.0) : rng.uniform(1.0, 25.0);
    }
    app.arrival_s = t;
    apps.push_back(std::move(app));
  }
  return apps;
}

struct Scenario {
  std::uint64_t seed = 0;
  std::size_t vms = 6;
  std::size_t apps = 6;
  bool queue_when_full = true;
  bool use_measured_view = false;
  double reevaluate_period_s = 45.0;
  double migration_cost_per_task_s = 20.0;
};

/// Corpus coverage: the differential only means something if the random
/// scenarios actually hit the interesting control-plane paths.
struct Coverage {
  std::size_t deferred = 0;
  std::size_t rejected = 0;
  std::size_t reevaluations = 0;
  std::size_t adopted = 0;
  std::size_t instant_finishes = 0;  ///< departure at the placement instant

  void absorb(const SessionLog& log) {
    for (const SessionEvent& e : log.events) {
      if (e.kind == SessionEventKind::Deferred) ++deferred;
      if (e.kind == SessionEventKind::Rejected) ++rejected;
      if (e.kind == SessionEventKind::Reevaluation) {
        ++reevaluations;
        if (e.adopted) ++adopted;
      }
    }
    for (const AppOutcome& a : log.apps) {
      if (a.finished_s >= 0.0 && a.finished_s == a.placed_s) ++instant_finishes;
    }
  }
};

void run_scenario(const Scenario& sc, const std::string& label,
                  Coverage* coverage = nullptr) {
  Rng rng(sc.seed);
  const std::vector<place::Application> apps = draw_workload(rng, sc.apps);

  ControllerConfig config;
  config.queue_when_full = sc.queue_when_full;
  config.choreo.use_measured_view = sc.use_measured_view;
  config.choreo.reevaluate_period_s = sc.reevaluate_period_s;
  config.choreo.migration_cost_per_task_s = sc.migration_cost_per_task_s;
  config.choreo.plan.train.bursts = 3;
  config.choreo.plan.train.burst_length = 60;

  // Two identical clouds (same profile, seed, allocations): the reference
  // and the runtime must see indistinguishable worlds.
  cloud::Cloud cloud_ref(cloud::ec2_2013(), sc.seed * 31 + 7);
  cloud::Cloud cloud_run(cloud::ec2_2013(), sc.seed * 31 + 7);
  const auto vms_ref = cloud_ref.allocate_vms(sc.vms);
  const auto vms_run = cloud_run.allocate_vms(sc.vms);

  const SessionLog ref = run_session_reference(cloud_ref, vms_ref, config, apps);
  Controller controller(cloud_run, vms_run, config);
  const SessionLog got = controller.run(apps);
  expect_logs_identical(ref, got, label);
  if (coverage != nullptr) coverage->absorb(ref);
}

TEST(RuntimeDifferential, RandomizedCorpusGroundTruthView) {
  Coverage cov;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Scenario sc;
    sc.seed = seed;
    sc.vms = 4 + seed % 3;
    sc.apps = 5 + seed % 4;
    sc.queue_when_full = (seed % 2) == 0;
    sc.reevaluate_period_s = (seed % 3 == 0) ? 20.0 : 45.0;
    run_scenario(sc, "truth seed " + std::to_string(seed), &cov);
  }
  // The corpus must exercise the paths the refactor could plausibly break.
  EXPECT_GT(cov.deferred, 0u);
  EXPECT_GT(cov.rejected, 0u);
  EXPECT_GT(cov.reevaluations, 0u);
  EXPECT_GT(cov.instant_finishes, 0u);
}

TEST(RuntimeDifferential, RandomizedCorpusMeasuredView) {
  // The measured path additionally pins the epoch sequence: one incremental
  // refresh per arrival plus one per re-evaluation, in the same order.
  for (std::uint64_t seed = 20; seed <= 25; ++seed) {
    Scenario sc;
    sc.seed = seed;
    sc.vms = 5;
    sc.apps = 5;
    sc.use_measured_view = true;
    sc.queue_when_full = (seed % 2) == 0;
    sc.reevaluate_period_s = 40.0;
    run_scenario(sc, "measured seed " + std::to_string(seed));
  }
}

TEST(RuntimeDifferential, EagerMigrationsAndChurn) {
  // Zero migration cost makes every positive-gain re-evaluation migrate, so
  // departure rescheduling and the post-migration retry path stay hot.
  Coverage cov;
  for (std::uint64_t seed = 40; seed <= 45; ++seed) {
    Scenario sc;
    sc.seed = seed;
    sc.vms = 4 + seed % 2;
    sc.apps = 7;
    sc.queue_when_full = true;
    sc.reevaluate_period_s = 15.0;
    sc.migration_cost_per_task_s = 0.0;
    run_scenario(sc, "eager seed " + std::to_string(seed), &cov);
  }
  EXPECT_GT(cov.adopted, 0u);
  EXPECT_GT(cov.deferred, 0u);
}

TEST(RuntimeDifferential, SimultaneousArrivalBatches) {
  // Whole workload arrives at two instants: stresses same-instant ordering
  // (measure/place interleaving, deferred FIFO, instant departures).
  for (std::uint64_t seed = 60; seed <= 63; ++seed) {
    Rng rng(seed);
    std::vector<place::Application> apps = draw_workload(rng, 8);
    for (std::size_t i = 0; i < apps.size(); ++i) {
      apps[i].arrival_s = (i < 4) ? 0.0 : 120.0;
    }
    ControllerConfig config;
    config.choreo.use_measured_view = false;
    config.choreo.reevaluate_period_s = 30.0;

    cloud::Cloud cloud_ref(cloud::ec2_2013(), seed);
    cloud::Cloud cloud_run(cloud::ec2_2013(), seed);
    const auto vms_ref = cloud_ref.allocate_vms(6);
    const auto vms_run = cloud_run.allocate_vms(6);
    const SessionLog ref = run_session_reference(cloud_ref, vms_ref, config, apps);
    Controller controller(cloud_run, vms_run, config);
    expect_logs_identical(ref, controller.run(apps),
                          "batch seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace choreo::core

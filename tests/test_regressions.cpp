// Regression tests for specific bugs found (and fixed) during development.
// Each test documents the failure mode so it stays fixed.

#include <gtest/gtest.h>

#include "lp/simplex.h"
#include "packetsim/event_queue.h"
#include "packetsim/sink.h"
#include "packetsim/token_bucket.h"
#include "packetsim/udp_train.h"
#include "place/ilp.h"
#include "util/rng.h"

namespace choreo {
namespace {

// --- two-phase simplex: degenerate artificials ------------------------------
//
// Bug: after phase 1, an artificial variable could remain *basic at zero*.
// Phase 2 pivots then pushed it positive again, so solve_lp reported an
// "optimal" solution violating the original equality rows (observed as ILP
// placements where a task was on no machine at all).

TEST(Regression, SimplexDegenerateArtificialsStayOut) {
  using namespace lp;
  // An assignment-like LP with redundant equalities, engineered to leave
  // degenerate artificials: x0+x1 = 1, x2+x3 = 1, coupling rows <= 0 forcing
  // z-style interactions, minimized so phase 2 pivots a lot.
  Model m;
  const auto x0 = m.add_binary(0.0);
  const auto x1 = m.add_binary(0.0);
  const auto x2 = m.add_binary(0.0);
  const auto x3 = m.add_binary(0.0);
  const auto z = m.add_variable(1.0);
  m.add_constraint({{x0, 1.0}, {x1, 1.0}}, Sense::Equal, 1.0);
  m.add_constraint({{x2, 1.0}, {x3, 1.0}}, Sense::Equal, 1.0);
  m.add_constraint({{z, 1.0}, {x0, -5.0}, {x2, -5.0}}, Sense::GreaterEq, 0.0);
  m.add_constraint({{z, 1.0}, {x1, -3.0}, {x3, -3.0}}, Sense::GreaterEq, 0.0);
  const Solution s = solve_ilp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_TRUE(m.feasible(s.values, 1e-6));
  EXPECT_NEAR(s.values[x0] + s.values[x1], 1.0, 1e-6);
  EXPECT_NEAR(s.values[x2] + s.values[x3], 1.0, 1e-6);
}

TEST(Regression, SimplexRandomEqualityLpsAreFeasible) {
  using namespace lp;
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    Model m;
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 7));
    for (std::size_t i = 0; i < n; ++i) m.add_variable(rng.uniform(-3, 3), 0.0, 5.0);
    // A couple of equality rows (these spawn artificials) plus inequalities.
    for (int r = 0; r < 2; ++r) {
      std::vector<Term> terms;
      double magnitude = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double c = rng.uniform(0.0, 2.0);
        terms.push_back({i, c});
        magnitude += c;
      }
      m.add_constraint(std::move(terms), Sense::Equal, rng.uniform(0.5, magnitude));
    }
    for (int r = 0; r < 2; ++r) {
      std::vector<Term> terms;
      for (std::size_t i = 0; i < n; ++i) terms.push_back({i, rng.uniform(0.0, 2.0)});
      m.add_constraint(std::move(terms), Sense::LessEq, rng.uniform(3.0, 15.0));
    }
    const Solution s = solve_lp(m);
    if (s.status != SolveStatus::Optimal) continue;  // infeasible draws are fine
    EXPECT_TRUE(m.feasible(s.values, 1e-5)) << "trial " << trial;
  }
}

// --- ILP placements always assign every task --------------------------------

TEST(Regression, IlpPlacementAlwaysComplete) {
  using namespace place;
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t M = 3;
    ClusterView view;
    view.rate_bps = DoubleMatrix(M, M, 0.0);
    for (std::size_t i = 0; i < M; ++i) {
      for (std::size_t j = 0; j < M; ++j) {
        if (i != j) view.rate_bps(i, j) = rng.uniform(3e8, 1.1e9);
      }
    }
    view.cross_traffic = DoubleMatrix(M, M, 0.0);
    view.cores = {2.0, 2.0, 2.0};
    view.colocation_group = {0, 1, 2};
    Application app;
    app.cpu_demand = {2.0, 2.0, 2.0};
    app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
    app.traffic_bytes(0, 1) = rng.uniform(1e7, 1e9);
    app.traffic_bytes(1, 2) = rng.uniform(1e7, 1e9);
    ClusterState state(view);
    IlpPlacer ilp(RateModel::Hose);
    const Placement p = ilp.place(app, state);
    EXPECT_TRUE(p.complete());
  }
}

// --- token-bucket livelock ---------------------------------------------------
//
// Bug: the wake-up scheduled for "when tokens suffice" could land a float
// ulp short of the packet size, rescheduling with an infinitesimal wait
// forever. The exact configuration that hung: 100 Mbit/s bucket, 8 KB depth,
// 5x200-packet train at 4 Gbit/s line rate.

TEST(Regression, TokenBucketTerminatesOnOriginalHangConfig) {
  using namespace packetsim;
  EventQueue q;
  RecordingSink sink;
  TokenBucket tb(q, 100e6, 8e3, &sink);
  TrainParams params;
  params.bursts = 5;
  params.burst_length = 200;
  params.line_rate_bps = 4e9;
  send_train(q, tb, params, 1, 0.0);
  // The event count is bounded: if the livelock regressed, this would spin
  // forever (ctest timeout); additionally cap steps defensively.
  std::size_t steps = 0;
  while (q.step()) {
    ASSERT_LT(++steps, 2'000'000u) << "token bucket livelocked";
  }
  EXPECT_EQ(sink.count(), 1000u);
}

TEST(Regression, TokenBucketRateExactUnderLongLoad) {
  using namespace packetsim;
  EventQueue q;
  RecordingSink sink;
  TokenBucket tb(q, 300e6, 350e3, &sink, 0.5e-3);
  TrainParams params;
  params.bursts = 10;
  params.burst_length = 4000;
  params.line_rate_bps = 1e9;
  send_train(q, tb, params, 1, 0.0);
  q.run();
  ASSERT_EQ(sink.count(), 40000u);
  // Long-run delivery rate must approach the token rate despite per-burst
  // line-rate prefixes.
  const double duration = sink.records().back().time - sink.records().front().time;
  const double rate = 39999.0 * 1500.0 * 8.0 / duration;
  EXPECT_NEAR(rate, 300e6, 30e6);
}

}  // namespace
}  // namespace choreo

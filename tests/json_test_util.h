#pragma once

// Minimal spec-faithful recursive-descent JSON parser shared by the test
// suite: rejects bare inf/nan, unescaped control characters, trailing
// garbage, and malformed escapes — exactly the failures a sloppy emitter
// would produce. No external JSON dependency. Pinned against BenchJson in
// test_bench_json.cpp and against the obs plane's trace/metrics emitters in
// test_obs_trace.cpp.

#include <cctype>
#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace choreo::testjson {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind = JsonValue::Kind::String;
        return parse_string(out.string);
      }
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::Null;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // must be escaped
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The emitters only produce \u00XX for control bytes; decoding the
          // BMP subset below 0x80 as a single byte is enough for round-trip.
          if (code >= 0x80) return false;
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out.kind = JsonValue::Kind::Number;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace choreo::testjson

// Edge cases of the sharded control plane: degenerate tenant/shard/thread
// shapes (single tenant, K == 1, K > tenant count, more threads than work),
// a tenant whose stream never produces an arrival, tenants that all hit the
// same epoch-boundary instant, and the EpochArbiter's grant protocol probed
// directly (order, bound gating, cascades, completion).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/sharded.h"
#include "util/units.h"
#include "workload/stream.h"

namespace choreo::core {
namespace {

using units::gigabytes;

// ---- EpochArbiter protocol --------------------------------------------------

std::function<std::uint64_t()> counter_draw(std::uint64_t& next) {
  return [&next] { return next++; };
}

TEST(EpochArbiter, GrantsFollowTimeThenTenantOrder) {
  std::uint64_t next = 1;
  EpochArbiter arb(2, counter_draw(next));
  // Tenant 1 asks first but tenant 0's bound (-inf) still allows an earlier
  // draw: the request parks.
  EXPECT_FALSE(arb.request(1, 5.0, 10.0).has_value());
  EXPECT_FALSE(arb.poll(1).has_value());
  // Tenant 0 advances past 5.0: tenant 1's draw is now provably next.
  arb.set_bound(0, 6.0);
  const auto epoch = arb.poll(1);
  ASSERT_TRUE(epoch.has_value());
  EXPECT_EQ(*epoch, 1u);
  // Tenant 0 requests at its bound; tenant 1 now runs with bound 10.0.
  const auto second = arb.request(0, 6.0, 20.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2u);
  EXPECT_EQ(arb.grants(), 2u);
}

TEST(EpochArbiter, EqualTimesBreakTiesByTenantIndex) {
  std::uint64_t next = 1;
  EpochArbiter arb(3, counter_draw(next));
  arb.set_bound(2, 100.0);  // tenant 2 is far in the future
  // Tenant 1 registers at t=7 first, then tenant 0 at the same instant:
  // tenant 0 must draw first (the oracle advances the lowest index).
  EXPECT_FALSE(arb.request(1, 7.0, 9.0).has_value());
  const auto first = arb.request(0, 7.0, 8.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 1u);
  // Granting tenant 0 re-publishes its post-bound (8.0 > 7.0), which
  // cascades the grant to tenant 1 in the same pass.
  const auto second = arb.poll(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2u);
}

TEST(EpochArbiter, DoneTenantsStopGatingGrants) {
  std::uint64_t next = 1;
  EpochArbiter arb(2, counter_draw(next));
  EXPECT_FALSE(arb.request(1, 3.0, 4.0).has_value());
  EXPECT_FALSE(arb.all_done());
  arb.mark_done(0);  // tenant 0 will never draw: tenant 1 unblocks
  const auto epoch = arb.poll(1);
  ASSERT_TRUE(epoch.has_value());
  EXPECT_EQ(*epoch, 1u);
  arb.mark_done(1);
  EXPECT_TRUE(arb.all_done());
}

TEST(EpochArbiter, VersionBumpsOnGrantAndCompletion) {
  std::uint64_t next = 1;
  EpochArbiter arb(2, counter_draw(next));
  const std::uint64_t v0 = arb.version();
  EXPECT_FALSE(arb.request(1, 2.0, 3.0).has_value());
  arb.set_bound(0, 5.0);  // fires the grant
  EXPECT_NE(arb.version(), v0);
  EXPECT_EQ(arb.wait_change(v0), arb.version());  // returns without blocking
}

// ---- degenerate session shapes ---------------------------------------------

ControllerConfig fast_config(double period_s = 60.0) {
  ControllerConfig config;
  config.choreo.use_measured_view = false;
  config.choreo.reevaluate_period_s = period_s;
  return config;
}

place::Application chat_app(const std::string& name, double arrival_s) {
  place::Application app;
  app.name = name;
  app.arrival_s = arrival_s;
  app.cpu_demand = {0.5, 0.5};
  app.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  app.traffic_bytes(0, 1) = 1e3;
  return app;
}

place::Application bulk_app(const std::string& name, double arrival_s) {
  place::Application app;
  app.name = name;
  app.arrival_s = arrival_s;
  app.cpu_demand = {1.0, 1.0, 1.0};
  app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
  app.traffic_bytes(0, 1) = gigabytes(4.0);
  app.traffic_bytes(1, 2) = gigabytes(2.0);
  return app;
}

void expect_multi_equal(const MultiTenantLog& ref, const MultiTenantLog& got,
                        const std::string& label) {
  ASSERT_EQ(ref.tenants.size(), got.tenants.size()) << label;
  for (std::size_t t = 0; t < ref.tenants.size(); ++t) {
    const SessionLog& a = ref.tenants[t];
    const SessionLog& b = got.tenants[t];
    const std::string tag = label + " tenant " + std::to_string(t);
    ASSERT_EQ(a.events.size(), b.events.size()) << tag;
    for (std::size_t i = 0; i < a.events.size(); ++i) {
      ASSERT_EQ(a.events[i].time_s, b.events[i].time_s) << tag << " event " << i;
      ASSERT_EQ(a.events[i].kind, b.events[i].kind) << tag << " event " << i;
      ASSERT_EQ(a.events[i].app, b.events[i].app) << tag << " event " << i;
    }
    ASSERT_EQ(a.apps.size(), b.apps.size()) << tag;
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
      ASSERT_EQ(a.apps[i].placed_s, b.apps[i].placed_s) << tag << " app " << i;
      ASSERT_EQ(a.apps[i].finished_s, b.apps[i].finished_s) << tag << " app " << i;
      ASSERT_EQ(a.apps[i].placement.machine_of_task,
                b.apps[i].placement.machine_of_task)
          << tag << " app " << i;
    }
    EXPECT_EQ(a.total_runtime_s, b.total_runtime_s) << tag;
    EXPECT_EQ(a.measurement_wall_s, b.measurement_wall_s) << tag;
    EXPECT_EQ(a.reevaluations, b.reevaluations) << tag;
    EXPECT_EQ(a.tasks_migrated, b.tasks_migrated) << tag;
  }
  ASSERT_EQ(ref.aggregate.events.size(), got.aggregate.events.size()) << label;
  EXPECT_EQ(ref.aggregate.total_runtime_s, got.aggregate.total_runtime_s) << label;
}

/// Workload vectors per tenant, rebuilt identically for each run.
using TenantApps = std::vector<std::vector<place::Application>>;

MultiTenantLog run_oracle(std::uint64_t seed, const TenantApps& per_tenant,
                          double period_s) {
  cloud::Cloud cloud(cloud::ec2_2013(), seed);
  std::vector<std::unique_ptr<workload::VectorArrivalStream>> streams;
  std::vector<TenantSpec> tenants;
  for (const auto& apps : per_tenant) {
    TenantSpec t;
    t.vms = cloud.allocate_vms(4);
    t.config = fast_config(period_s);
    streams.push_back(std::make_unique<workload::VectorArrivalStream>(apps));
    t.stream = streams.back().get();
    tenants.push_back(std::move(t));
  }
  MultiTenantSession session(cloud, std::move(tenants));
  return session.run();
}

MultiTenantLog run_sharded(std::uint64_t seed, const TenantApps& per_tenant,
                           double period_s, std::size_t shards, unsigned threads) {
  cloud::Cloud cloud(cloud::ec2_2013(), seed);
  std::vector<std::unique_ptr<workload::VectorArrivalStream>> streams;
  std::vector<TenantSpec> tenants;
  for (const auto& apps : per_tenant) {
    TenantSpec t;
    t.vms = cloud.allocate_vms(4);
    t.config = fast_config(period_s);
    streams.push_back(std::make_unique<workload::VectorArrivalStream>(apps));
    t.stream = streams.back().get();
    tenants.push_back(std::move(t));
  }
  ShardedOptions opts;
  opts.shards = shards;
  opts.threads = threads;
  ShardedSession session(cloud, std::move(tenants), opts);
  return session.run();
}

TenantApps busy_tenants(std::size_t count) {
  TenantApps per_tenant;
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<place::Application> apps;
    apps.push_back(bulk_app("bulk" + std::to_string(i), 0.0));
    apps.push_back(chat_app("chatA" + std::to_string(i), 30.0));
    apps.push_back(chat_app("chatB" + std::to_string(i), 30.0));  // duplicate instant
    apps.push_back(chat_app("chatC" + std::to_string(i), 90.0));
    per_tenant.push_back(std::move(apps));
  }
  return per_tenant;
}

TEST(ShardedEdges, SingleTenantEveryShape) {
  // One tenant: K == 1, K > tenant count, threads > work. Everything
  // degenerates to the oracle schedule.
  const TenantApps apps = busy_tenants(1);
  const MultiTenantLog oracle = run_oracle(5, apps, 60.0);
  for (const auto& [shards, threads] :
       std::vector<std::pair<std::size_t, unsigned>>{
           {1, 1}, {1, 4}, {8, 2}, {8, 8}}) {
    expect_multi_equal(oracle, run_sharded(5, apps, 60.0, shards, threads),
                       "single shards=" + std::to_string(shards) +
                           " threads=" + std::to_string(threads));
  }
}

TEST(ShardedEdges, MoreShardsThanTenants) {
  const TenantApps apps = busy_tenants(3);
  const MultiTenantLog oracle = run_oracle(11, apps, 60.0);
  expect_multi_equal(oracle, run_sharded(11, apps, 60.0, 8, 4), "K>n");
  expect_multi_equal(oracle, run_sharded(11, apps, 60.0, 8, 8), "K>n wide");
}

TEST(ShardedEdges, SingleShardManyThreads) {
  // K == 1 serializes all tenants onto one shard; extra threads can only
  // idle-wait, never reorder.
  const TenantApps apps = busy_tenants(4);
  const MultiTenantLog oracle = run_oracle(13, apps, 60.0);
  expect_multi_equal(oracle, run_sharded(13, apps, 60.0, 1, 1), "K=1 T=1");
  expect_multi_equal(oracle, run_sharded(13, apps, 60.0, 1, 8), "K=1 T=8");
}

TEST(ShardedEdges, ShardsDefaultToThreadCount) {
  const TenantApps apps = busy_tenants(4);
  cloud::Cloud cloud(cloud::ec2_2013(), 17);
  std::vector<std::unique_ptr<workload::VectorArrivalStream>> streams;
  std::vector<TenantSpec> tenants;
  for (const auto& a : apps) {
    TenantSpec t;
    t.vms = cloud.allocate_vms(4);
    t.config = fast_config();
    streams.push_back(std::make_unique<workload::VectorArrivalStream>(a));
    t.stream = streams.back().get();
    tenants.push_back(std::move(t));
  }
  ShardedOptions opts;
  opts.shards = 0;  // one shard per thread
  opts.threads = 3;
  ShardedSession session(cloud, std::move(tenants), opts);
  session.run();
  EXPECT_EQ(session.stats().shards, 3u);
  EXPECT_EQ(session.stats().threads, 3u);
}

TEST(ShardedEdges, TenantWithZeroArrivals) {
  // A tenant whose stream is empty still runs its initial measurement sweep
  // (drawing its pre-assigned epoch) and finishes immediately; it must not
  // stall the arbiter or shift any other tenant's draws.
  TenantApps apps = busy_tenants(3);
  apps[1].clear();
  const MultiTenantLog oracle = run_oracle(23, apps, 60.0);
  EXPECT_TRUE(oracle.tenants[1].apps.empty());
  EXPECT_TRUE(oracle.tenants[1].events.empty());
  expect_multi_equal(oracle, run_sharded(23, apps, 60.0, 2, 2), "zero-arrival");
  expect_multi_equal(oracle, run_sharded(23, apps, 60.0, 3, 8), "zero-arrival wide");
}

TEST(ShardedEdges, TenantsFinishingAtTheSameEpochBoundary) {
  // Every tenant holds a long-running app across the first re-evaluation
  // deadline and receives chat arrivals exactly at it: at t == period the
  // whole fleet hits MeasureRefresh + ReevalTick draws at one instant, so
  // the arbiter must deliver a long run of same-time grants in strict
  // tenant order, and the final departures land on the boundary together.
  TenantApps per_tenant;
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<place::Application> apps;
    apps.push_back(bulk_app("bulk" + std::to_string(i), 0.0));
    apps.push_back(chat_app("edge" + std::to_string(i), 60.0));   // == period
    apps.push_back(chat_app("edge2" + std::to_string(i), 60.0));  // duplicate
    per_tenant.push_back(std::move(apps));
  }
  const MultiTenantLog oracle = run_oracle(29, per_tenant, 60.0);
  std::size_t boundary_events = 0;
  for (const SessionEvent& e : oracle.aggregate.events) {
    if (e.time_s == 60.0) ++boundary_events;
  }
  EXPECT_GT(boundary_events, 8u);  // the instant is genuinely contended
  expect_multi_equal(oracle, run_sharded(29, per_tenant, 60.0, 2, 4), "boundary");
  expect_multi_equal(oracle, run_sharded(29, per_tenant, 60.0, 4, 2),
                     "boundary transposed");
}

}  // namespace
}  // namespace choreo::core

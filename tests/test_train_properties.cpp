// Property sweeps on the packet-train estimator (§3.1) against the
// packet-level substrate: convergence to the enforced rate, shaper-depth
// effects, and robustness to timestamp jitter.

#include <gtest/gtest.h>

#include "measure/packet_train.h"
#include "packetsim/event_queue.h"
#include "packetsim/path.h"
#include "packetsim/sink.h"
#include "util/stats.h"

namespace choreo::measure {
namespace {

using packetsim::EventQueue;
using packetsim::HopSpec;
using packetsim::Path;
using packetsim::RecordingSink;
using packetsim::ShaperSpec;
using packetsim::TrainParams;

struct PathConfig {
  double hose_bps = 950e6;
  double depth_bytes = 8e3;
  double idle_reset_s = 0.5e-3;
  double line_rate = 4e9;
  double jitter_s = 0.0;
  std::uint64_t jitter_seed = 1;
};

TrainEstimate probe(const PathConfig& cfg, std::uint32_t bursts, std::uint32_t blen) {
  EventQueue events;
  RecordingSink sink(cfg.jitter_s, cfg.jitter_seed);
  ShaperSpec shaper;
  shaper.rate_bps = cfg.hose_bps;
  shaper.depth_bytes = cfg.depth_bytes;
  shaper.idle_reset_s = cfg.idle_reset_s;
  std::vector<HopSpec> hops{{10e9, 20e-6, 2e6}, {10e9, 20e-6, 2e6}};
  Path path(events, shaper, hops, &sink);
  TrainParams params;
  params.bursts = bursts;
  params.burst_length = blen;
  params.line_rate_bps = cfg.line_rate;
  packetsim::send_train(events, path.entry(), params, 1, 0.0);
  events.run();
  return estimate_train_throughput(sink.records(), params, /*rtt=*/200e-6);
}

/// Sweep over burst lengths: with a shallow bucket, the estimate must be
/// within a few percent of the enforced rate at every length, and the error
/// must shrink as bursts grow.
class ShallowBucketAccuracy : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ShallowBucketAccuracy, EstimateNearTokenRate) {
  PathConfig cfg;
  const TrainEstimate est = probe(cfg, 10, GetParam());
  // The 8 KB line-rate prefix biases the shortest bursts by ~10%; everything
  // else lands within a few percent (Fig 6(a)'s "consistently low").
  const double bound = GetParam() <= 50 ? 0.12 : 0.08;
  EXPECT_LT(relative_error(est.throughput_bps, cfg.hose_bps), bound)
      << "burst length " << GetParam();
  EXPECT_DOUBLE_EQ(est.loss_rate, 0.0);
}

INSTANTIATE_TEST_SUITE_P(BurstLengths, ShallowBucketAccuracy,
                         ::testing::Values(50u, 100u, 200u, 500u, 1000u, 2000u));

/// With a deep idle-resetting bucket (Rackspace-like), short bursts ride the
/// line rate and overestimate wildly; the overestimate must decrease
/// monotonically with burst length and approach the token rate.
TEST(DeepBucket, OverestimateShrinksWithBurstLength) {
  PathConfig cfg;
  cfg.hose_bps = 300e6;
  cfg.depth_bytes = 350e3;
  cfg.line_rate = 1e9;
  double prev = 1e18;
  for (std::uint32_t blen : {100u, 500u, 1000u, 2000u, 4000u}) {
    const TrainEstimate est = probe(cfg, 10, blen);
    EXPECT_LE(est.throughput_bps, prev * 1.02) << "burst length " << blen;
    prev = est.throughput_bps;
  }
  EXPECT_LT(relative_error(prev, cfg.hose_bps), 0.10);  // 10x4000 is accurate
  const TrainEstimate shortest = probe(cfg, 10, 100);
  EXPECT_GT(shortest.throughput_bps, cfg.hose_bps * 2.0);  // badly high
}

/// Timestamp jitter perturbs short bursts more than long ones.
TEST(Jitter, HurtsShortBurstsMore) {
  PathConfig noisy;
  noisy.jitter_s = 50e-6;
  std::vector<double> short_err, long_err;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    noisy.jitter_seed = seed;
    short_err.push_back(
        relative_error(probe(noisy, 10, 50).throughput_bps, noisy.hose_bps));
    long_err.push_back(
        relative_error(probe(noisy, 10, 1000).throughput_bps, noisy.hose_bps));
  }
  EXPECT_GT(mean(short_err), mean(long_err));
  EXPECT_LT(mean(long_err), 0.03);
}

/// More bursts average jitter away.
TEST(Jitter, MoreBurstsReduceVariance) {
  PathConfig noisy;
  noisy.jitter_s = 50e-6;
  Accumulator few, many;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    noisy.jitter_seed = seed;
    few.add(probe(noisy, 2, 100).throughput_bps);
    many.add(probe(noisy, 20, 100).throughput_bps);
  }
  EXPECT_LT(many.stddev(), few.stddev());
}

/// The estimator never reports a rate above the line rate, whatever the
/// configuration.
class SanityBounds : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SanityBounds, EstimateBelowLineRate) {
  PathConfig cfg;
  cfg.hose_bps = 300e6;
  cfg.depth_bytes = 350e3;
  cfg.line_rate = 1e9;
  const TrainEstimate est = probe(cfg, 10, GetParam());
  EXPECT_LE(est.throughput_bps, cfg.line_rate * 1.01);
  EXPECT_GT(est.throughput_bps, cfg.hose_bps * 0.9);
}

INSTANTIATE_TEST_SUITE_P(BurstLengths, SanityBounds,
                         ::testing::Values(50u, 200u, 1000u, 4000u));

}  // namespace
}  // namespace choreo::measure

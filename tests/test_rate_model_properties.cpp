// Property sweeps on the §4.3 rate models (the one residual-rate code path
// in place/rate_model.h): residual rates are non-increasing in placed load,
// the intra-machine pseudo-path dominates every network path, and the hose
// model never inverts completion-time orderings the pipe model establishes
// on single-transfer applications (their estimates coincide exactly, since
// a machine's hose is at least as fast as any single path out of it).

#include <gtest/gtest.h>

#include "place/engine.h"
#include "place/greedy.h"
#include "place/rate_model.h"
#include "util/rng.h"
#include "util/units.h"

namespace choreo::place {
namespace {

using units::mbps;

ClusterView random_cluster(Rng& rng, std::size_t machines, bool with_cross,
                           bool with_colocation) {
  ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j) view.rate_bps(i, j) = rng.uniform(mbps(100), mbps(1200));
    }
  }
  view.colocation_group.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    view.colocation_group[m] =
        with_colocation ? static_cast<int>(m / 2) : static_cast<int>(m);
  }
  if (with_cross) {
    view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
    for (std::size_t i = 0; i < machines; ++i) {
      for (std::size_t j = 0; j < machines; ++j) {
        if (i != j && rng.chance(0.4)) view.cross_traffic(i, j) = rng.uniform(0.0, 4.0);
      }
    }
  }
  view.cores.assign(machines, 4.0);
  return view;
}

Application single_transfer_app(std::size_t tasks, std::size_t src, std::size_t dst,
                                double bytes) {
  Application app;
  app.cpu_demand.assign(tasks, 1.0);
  app.traffic_bytes = DoubleMatrix(tasks, tasks, 0.0);
  app.traffic_bytes(src, dst) = bytes;
  return app;
}

class RateModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RateModelSweep, RateNonIncreasingInPlacedLoad) {
  Rng rng(GetParam());
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(3, 12));
  const ClusterView view =
      random_cluster(rng, machines, rng.chance(0.5), rng.chance(0.5));

  for (const RateModel model : {RateModel::Hose, RateModel::Pipe}) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto m = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(machines) - 1));
      const auto n = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(machines) - 1));
      const double out0 = rng.uniform(0.0, 5.0);
      double prev_on = transfer_rate_bps(view, m, n, model, 0.0, out0);
      double prev_out = transfer_rate_bps(view, m, n, model, 2.0, 0.0);
      for (double load = 1.0; load <= 6.0; load += 1.0) {
        // Growing placed_on_path with fixed placed_out_of_src...
        const double r_on = transfer_rate_bps(view, m, n, model, load, out0);
        EXPECT_LE(r_on, prev_on);
        prev_on = r_on;
        // ...and growing placed_out_of_src with fixed placed_on_path.
        const double r_out = transfer_rate_bps(view, m, n, model, 2.0, load);
        EXPECT_LE(r_out, prev_out);
        prev_out = r_out;
      }
    }
  }
}

TEST_P(RateModelSweep, IntraMachineRateDominatesEveryNetworkPath) {
  Rng rng(GetParam() + 400);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(2, 10));
  const ClusterView view =
      random_cluster(rng, machines, rng.chance(0.5), rng.chance(0.5));
  ClusterState state(view);
  for (std::size_t m = 0; m < machines; ++m) {
    for (std::size_t n = 0; n < machines; ++n) {
      for (const RateModel model : {RateModel::Hose, RateModel::Pipe}) {
        const double r = transfer_rate_bps(view, m, n, model, 0.0, 0.0);
        if (m == n) {
          EXPECT_EQ(r, kIntraMachineRate);
        } else {
          EXPECT_LT(r, kIntraMachineRate);
          // The engine's static bound agrees.
          EXPECT_LT(state.engine().upper_bound_bps(m, n),
                    state.engine().upper_bound_bps(m, m));
        }
      }
    }
  }
}

TEST_P(RateModelSweep, HoseMatchesPipeOnSingleTransferApps) {
  Rng rng(GetParam() + 800);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(3, 10));
  const ClusterView view = random_cluster(rng, machines, false, rng.chance(0.5));

  // A machine's hose is its best single-connection rate out, so a lone
  // transfer can never be hose-limited below its own path rate: the hose
  // estimate equals the pipe estimate exactly, for every placement.
  const Application app = single_transfer_app(2, 0, 1, rng.uniform(1e8, 1e10));
  for (std::size_t m = 0; m < machines; ++m) {
    for (std::size_t n = 0; n < machines; ++n) {
      Placement p;
      p.machine_of_task = {m, n};
      EXPECT_EQ(estimate_completion_s(app, p, view, RateModel::Hose),
                estimate_completion_s(app, p, view, RateModel::Pipe));
    }
  }
}

TEST_P(RateModelSweep, HoseNeverInvertsPipeOrderingOnSingleTransferApps) {
  Rng rng(GetParam() + 1200);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(3, 10));
  const ClusterView view = random_cluster(rng, machines, false, rng.chance(0.5));
  const Application app = single_transfer_app(3, 0, 2, rng.uniform(1e8, 1e10));

  // Across random placement pairs, Hose <= Pipe holds per placement in
  // general (extra hose bottlenecks only slow things down), and on
  // single-transfer apps the completion-time ORDER of any two placements is
  // identical under both models.
  for (int trial = 0; trial < 30; ++trial) {
    const auto draw = [&] {
      Placement p;
      p.machine_of_task.resize(3);
      for (auto& m : p.machine_of_task) {
        m = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(machines) - 1));
      }
      return p;
    };
    const Placement a = draw(), b = draw();
    const double pipe_a = estimate_completion_s(app, a, view, RateModel::Pipe);
    const double pipe_b = estimate_completion_s(app, b, view, RateModel::Pipe);
    const double hose_a = estimate_completion_s(app, a, view, RateModel::Hose);
    const double hose_b = estimate_completion_s(app, b, view, RateModel::Hose);
    EXPECT_GE(hose_a, pipe_a);
    EXPECT_GE(hose_b, pipe_b);
    if (pipe_a < pipe_b) {
      EXPECT_LT(hose_a, hose_b);
    }
    if (pipe_a > pipe_b) {
      EXPECT_GT(hose_a, hose_b);
    }
    if (pipe_a == pipe_b) {
      EXPECT_EQ(hose_a, hose_b);
    }
  }
}

TEST_P(RateModelSweep, HoseEstimateDominatesPipeEstimateOnGeneralApps) {
  Rng rng(GetParam() + 1600);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(3, 8));
  const ClusterView view = random_cluster(rng, machines, false, rng.chance(0.5));

  const std::size_t tasks = static_cast<std::size_t>(rng.uniform_int(3, 6));
  Application app;
  app.cpu_demand.assign(tasks, 0.5);
  app.traffic_bytes = DoubleMatrix(tasks, tasks, 0.0);
  for (std::size_t i = 0; i < tasks; ++i) {
    for (std::size_t j = 0; j < tasks; ++j) {
      if (i != j && rng.chance(0.5)) app.traffic_bytes(i, j) = rng.uniform(1e7, 1e9);
    }
  }
  if (app.traffic_bytes.total() == 0.0) app.traffic_bytes(0, 1) = 1e8;

  for (int trial = 0; trial < 10; ++trial) {
    Placement p;
    p.machine_of_task.resize(tasks);
    for (auto& m : p.machine_of_task) {
      m = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(machines) - 1));
    }
    EXPECT_GE(estimate_completion_s(app, p, view, RateModel::Hose),
              estimate_completion_s(app, p, view, RateModel::Pipe));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RateModelSweep, ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace choreo::place

// The distributed agent plane's contract: (a) the proto layer round-trips
// every message and rejects corrupt bytes; (b) the SimTransport is
// deterministic — lossless zero-delay delivery is exact and in order, fault
// schedules replay bit-for-bit under the same seed; (c) the HostAgent's
// report budget packs and defers samples as configured; and (d) — the PR's
// oracle — with the transport configured lossless and zero-delay, the
// agent-plane measurement path is bit-identical to the in-process path:
// same MeasureReports, same rate/provenance matrices, same placements, and
// same SessionLogs over a randomized differential corpus, with forecasting
// both off and on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "agent/host_agent.h"
#include "agent/options.h"
#include "agent/plane.h"
#include "agent/proto.h"
#include "cloud/cloud.h"
#include "cloud/profile.h"
#include "core/choreo.h"
#include "core/runtime.h"
#include "net/transport.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/generator.h"
#include "workload/stream.h"

namespace choreo::agent {
namespace {

using net::SimTransport;

// ---------------------------------------------------------------------------
// proto

TEST(AgentProto, RoundTripsEveryMessageType) {
  proto::ProbeRequest req;
  req.agent = 3;
  req.epoch = 42;
  req.probes = {{3, 1, 0}, {3, 2, 1}, {3, 7, 2}};
  const auto req_decoded = proto::decode(proto::encode(req));
  ASSERT_TRUE(req_decoded.has_value());
  ASSERT_EQ(req_decoded->type, proto::MsgType::kProbeRequest);
  EXPECT_EQ(req_decoded->probe_request.agent, req.agent);
  EXPECT_EQ(req_decoded->probe_request.epoch, req.epoch);
  EXPECT_EQ(req_decoded->probe_request.probes, req.probes);

  proto::StatsReport report;
  report.agent = 5;
  report.generation = 2;
  report.seq = 9;
  report.samples = {{5, 0, 41, 1.25e9}, {5, 3, 42, 0.0}, {5, 4, 42, -0.0}};
  const auto rep_decoded = proto::decode(proto::encode(report));
  ASSERT_TRUE(rep_decoded.has_value());
  ASSERT_EQ(rep_decoded->type, proto::MsgType::kStatsReport);
  EXPECT_EQ(rep_decoded->stats_report.agent, report.agent);
  EXPECT_EQ(rep_decoded->stats_report.generation, report.generation);
  EXPECT_EQ(rep_decoded->stats_report.seq, report.seq);
  EXPECT_EQ(rep_decoded->stats_report.samples, report.samples);

  const auto ack = proto::decode(proto::encode(proto::Ack{5, 2, 9}));
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, proto::MsgType::kAck);
  EXPECT_EQ(ack->ack.agent, 5u);
  EXPECT_EQ(ack->ack.generation, 2u);
  EXPECT_EQ(ack->ack.seq, 9u);

  const auto hello = proto::decode(proto::encode(proto::Hello{7, 4}));
  ASSERT_TRUE(hello.has_value());
  ASSERT_EQ(hello->type, proto::MsgType::kHello);
  EXPECT_EQ(hello->hello.agent, 7u);
  EXPECT_EQ(hello->hello.generation, 4u);

  const auto hello_ack = proto::decode(proto::encode(proto::HelloAck{7, 4}));
  ASSERT_TRUE(hello_ack.has_value());
  ASSERT_EQ(hello_ack->type, proto::MsgType::kHelloAck);
  EXPECT_EQ(hello_ack->hello_ack.agent, 7u);
}

TEST(AgentProto, RejectsCorruptBytes) {
  proto::StatsReport report;
  report.agent = 1;
  report.generation = 1;
  report.seq = 1;
  report.samples = {{1, 2, 3, 4.0}};
  const proto::Bytes good = proto::encode(report);
  ASSERT_TRUE(proto::decode(good).has_value());

  EXPECT_FALSE(proto::decode({}).has_value());

  proto::Bytes bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(proto::decode(bad_magic).has_value());

  proto::Bytes bad_version = good;
  bad_version[4] ^= 0xFF;
  EXPECT_FALSE(proto::decode(bad_version).has_value());

  proto::Bytes bad_type = good;
  bad_type[6] = 0x7F;
  EXPECT_FALSE(proto::decode(bad_type).has_value());

  // Truncation anywhere in the payload is rejected, never partially decoded.
  for (std::size_t len = 0; len < good.size(); ++len) {
    const proto::Bytes truncated(good.begin(),
                                 good.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(proto::decode(truncated).has_value()) << "len " << len;
  }

  proto::Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(proto::decode(trailing).has_value());

  // A forged count with a short payload must fail cleanly too.
  proto::Bytes forged = good;
  forged[8] = 0xFF;  // count low byte: claims 255 samples, carries 1
  EXPECT_FALSE(proto::decode(forged).has_value());
}

// ---------------------------------------------------------------------------
// transport

SimTransport::Bytes payload(std::uint8_t tag) { return {tag, 0xAB, 0xCD}; }

TEST(Transport, LosslessZeroDelayDeliversExactlyOnceInSendOrder) {
  SimTransport t(4, {});
  t.send(1, 0, payload(1), 5);
  t.send(2, 0, payload(2), 5);
  t.send(3, 0, payload(3), 5);
  t.send(1, 2, payload(4), 5);

  const auto at_cluster = t.receive(0, 5);
  ASSERT_EQ(at_cluster.size(), 3u);
  EXPECT_EQ(at_cluster[0].from, 1u);
  EXPECT_EQ(at_cluster[0].bytes, payload(1));
  EXPECT_EQ(at_cluster[1].from, 2u);
  EXPECT_EQ(at_cluster[2].from, 3u);
  EXPECT_TRUE(t.receive(0, 6).empty());  // exactly once

  ASSERT_EQ(t.receive(2, 5).size(), 1u);
  EXPECT_EQ(t.stats().sent, 4u);
  EXPECT_EQ(t.stats().delivered, 4u);
  EXPECT_EQ(t.stats().dropped, 0u);
  EXPECT_EQ(t.stats().duplicated, 0u);
  EXPECT_EQ(t.stats().delayed, 0u);
}

TEST(Transport, DelayHoldsMessagesAndReordersAcrossCycles) {
  net::TransportOptions opts;
  opts.seed = 3;
  opts.fault.delay_min_cycles = 1;
  opts.fault.delay_max_cycles = 1;
  SimTransport t(3, opts);
  t.send(1, 0, payload(1), 10);           // due at 11
  EXPECT_TRUE(t.receive(0, 10).empty());  // not yet
  EXPECT_EQ(t.in_flight(0), 1u);

  // A second message sent later but also due at 11+1=12; the cycle-10 send
  // surfaces first because it is due earlier.
  t.send(2, 0, payload(2), 11);
  const auto due = t.receive(0, 12);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].from, 1u);
  EXPECT_EQ(due[1].from, 2u);
  EXPECT_EQ(t.stats().delayed, 2u);
}

TEST(Transport, FaultScheduleReplaysBitForBitAndCoversEveryFaultKind) {
  net::TransportOptions opts;
  opts.seed = 99;
  opts.fault.loss = 0.3;
  opts.fault.duplicate = 0.3;
  opts.fault.delay_min_cycles = 0;
  opts.fault.delay_max_cycles = 2;

  const auto run = [&opts]() {
    SimTransport t(3, opts);
    std::vector<std::pair<std::uint64_t, SimTransport::Bytes>> seen;
    for (std::uint64_t cycle = 1; cycle <= 40; ++cycle) {
      t.send(1, 0, payload(static_cast<std::uint8_t>(cycle)), cycle);
      t.send(2, 0, payload(static_cast<std::uint8_t>(cycle + 100)), cycle);
      for (auto& d : t.receive(0, cycle)) seen.emplace_back(cycle, d.bytes);
    }
    for (auto& d : t.receive(0, 1000)) seen.emplace_back(1000, d.bytes);
    return std::make_pair(seen, t.stats());
  };

  const auto [seen_a, stats_a] = run();
  const auto [seen_b, stats_b] = run();
  EXPECT_EQ(seen_a, seen_b);
  EXPECT_EQ(stats_a.sent, stats_b.sent);
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  EXPECT_EQ(stats_a.duplicated, stats_b.duplicated);
  EXPECT_EQ(stats_a.delayed, stats_b.delayed);

  // Coverage: with these rates over 80 sends, every fault kind must fire.
  EXPECT_GT(stats_a.dropped, 0u);
  EXPECT_GT(stats_a.duplicated, 0u);
  EXPECT_GT(stats_a.delayed, 0u);
  // Conservation: every sent message is dropped, delivered, or still queued;
  // duplicates add deliveries on top.
  EXPECT_EQ(stats_a.delivered, stats_a.sent + stats_a.duplicated - stats_a.dropped);
}

// ---------------------------------------------------------------------------
// host agent report budget

TEST(HostAgentBudget, PacksSamplesPerReportAndDefersOverBudget) {
  AgentOptions opts;
  opts.max_samples_per_report = 2;
  opts.max_reports_per_cycle = 1;
  SimTransport t(3, {});
  HostAgent host(1, opts, [](std::uint32_t, std::uint32_t dst, std::uint32_t,
                             std::uint64_t) { return 1e9 + dst; });

  proto::ProbeRequest req;
  req.agent = 1;
  req.epoch = 7;
  req.probes = {{1, 0, 0}, {1, 2, 0}, {1, 3, 1}, {1, 4, 1}, {1, 5, 2}};
  proto::Message msg;
  msg.type = proto::MsgType::kProbeRequest;
  msg.probe_request = req;
  host.deliver(msg, 1);
  EXPECT_EQ(host.stats().probes_run, 5u);
  EXPECT_EQ(host.queued_samples(), 5u);

  // Cycle 1: one report of two samples; three samples defer.
  host.tick(1, t);
  EXPECT_EQ(host.stats().reports_sent, 1u);
  EXPECT_EQ(host.queued_samples(), 3u);
  auto arrived = t.receive(0, 1);
  ASSERT_EQ(arrived.size(), 1u);
  auto decoded = proto::decode(arrived[0].bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->stats_report.seq, 0u);
  ASSERT_EQ(decoded->stats_report.samples.size(), 2u);
  EXPECT_EQ(decoded->stats_report.samples[0].dst, 0u);  // FIFO order
  EXPECT_EQ(decoded->stats_report.samples[1].dst, 2u);
  EXPECT_EQ(decoded->stats_report.samples[0].epoch, 7u);

  // Ack seq 0 so cycle 2 sends a fresh report, not a retransmit.
  proto::Message ack;
  ack.type = proto::MsgType::kAck;
  ack.ack = {1, 0, 0};
  host.deliver(ack, 1);
  EXPECT_EQ(host.unacked_reports(), 0u);

  host.tick(2, t);
  EXPECT_EQ(host.stats().reports_sent, 2u);
  EXPECT_EQ(host.queued_samples(), 1u);
  arrived = t.receive(0, 2);
  ASSERT_EQ(arrived.size(), 1u);
  decoded = proto::decode(arrived[0].bytes);
  EXPECT_EQ(decoded->stats_report.seq, 1u);
  EXPECT_TRUE(host.has_backlog());
  EXPECT_GT(host.stats().samples_deferred, 0u);
}

TEST(HostAgentBudget, RetransmitsUnackedReportsWithBackoff) {
  AgentOptions opts;
  opts.retry_timeout_cycles = 2;
  SimTransport t(3, {});
  HostAgent host(1, opts, [](std::uint32_t, std::uint32_t, std::uint32_t,
                             std::uint64_t) { return 1.0; });

  proto::Message msg;
  msg.type = proto::MsgType::kProbeRequest;
  msg.probe_request.agent = 1;
  msg.probe_request.epoch = 1;
  msg.probe_request.probes = {{1, 0, 0}};
  host.deliver(msg, 1);
  host.tick(1, t);  // first transmission
  EXPECT_EQ(host.stats().reports_sent, 1u);
  EXPECT_EQ(host.stats().retransmits, 0u);

  host.tick(2, t);  // not due yet (timeout 2)
  EXPECT_EQ(host.stats().retransmits, 0u);
  host.tick(3, t);  // due: attempt 2
  EXPECT_EQ(host.stats().retransmits, 1u);
  // Backoff doubles: next retry at 3 + 2*2 = 7.
  host.tick(5, t);
  EXPECT_EQ(host.stats().retransmits, 1u);
  host.tick(7, t);
  EXPECT_EQ(host.stats().retransmits, 2u);

  // Every copy carries the same (generation, seq) bytes.
  const auto copies = t.receive(0, 7);
  ASSERT_EQ(copies.size(), 3u);
  EXPECT_EQ(copies[0].bytes, copies[1].bytes);
  EXPECT_EQ(copies[1].bytes, copies[2].bytes);
}

// ---------------------------------------------------------------------------
// the lossless differential oracle

workload::GeneratorConfig small_apps() {
  workload::GeneratorConfig gen;
  gen.min_tasks = 3;
  gen.max_tasks = 6;
  gen.max_cpu = 2.0;
  return gen;
}

core::ChoreoConfig cheap_measure_config(bool forecast) {
  core::ChoreoConfig config;
  config.plan.train.bursts = 5;
  config.plan.train.burst_length = 100;
  config.refresh.max_age_epochs = 3;
  config.refresh.volatility_threshold = 0.3;
  if (forecast) {
    config.forecast.enabled = true;
    config.forecast.min_observations = 2;
    config.forecast.probe_budget_fraction = 0.25;
    config.forecast.discount_rates = true;
  }
  return config;
}

TEST(AgentDifferential, LosslessCyclesBitIdenticalToInProcessMeasurement) {
  for (const bool forecast : {false, true}) {
    for (const std::uint64_t seed : {11u, 23u, 37u}) {
      SCOPED_TRACE(std::string("forecast=") + (forecast ? "on" : "off") +
                   " seed=" + std::to_string(seed));
      const std::size_t n = 5;
      cloud::Cloud c_sys(cloud::ec2_2013(), seed);
      cloud::Cloud c_ora(cloud::ec2_2013(), seed);
      const auto vms_sys = c_sys.allocate_vms(n);
      const auto vms_ora = c_ora.allocate_vms(n);

      core::ChoreoConfig config = cheap_measure_config(forecast);
      core::ChoreoConfig agents_config = config;
      agents_config.agents.enabled = true;  // default transport: lossless

      core::Choreo sys(c_sys, vms_sys, agents_config);
      core::Choreo ora(c_ora, vms_ora, config);

      Rng app_rng(seed * 1000 + n);
      const workload::GeneratorConfig gen = small_apps();

      for (std::uint64_t epoch = 1; epoch <= 10; ++epoch) {
        sys.measure_network(epoch);
        ora.measure_network(epoch);

        const core::Choreo::MeasureReport& a = sys.last_measure();
        const core::Choreo::MeasureReport& b = ora.last_measure();
        ASSERT_EQ(a.pairs_probed, b.pairs_probed) << "epoch " << epoch;
        ASSERT_EQ(a.rounds, b.rounds) << "epoch " << epoch;
        ASSERT_EQ(a.wall_time_s, b.wall_time_s) << "epoch " << epoch;
        ASSERT_EQ(a.incremental, b.incremental) << "epoch " << epoch;
        ASSERT_EQ(a.never_measured, b.never_measured) << "epoch " << epoch;
        ASSERT_EQ(a.stale, b.stale) << "epoch " << epoch;
        ASSERT_EQ(a.volatile_pairs, b.volatile_pairs) << "epoch " << epoch;
        ASSERT_EQ(a.predictable_pairs, b.predictable_pairs) << "epoch " << epoch;
        ASSERT_EQ(a.unpredictable_pairs, b.unpredictable_pairs) << "epoch " << epoch;
        ASSERT_EQ(a.changepoint_pairs, b.changepoint_pairs) << "epoch " << epoch;
        ASSERT_EQ(a.predicted_pairs, b.predicted_pairs) << "epoch " << epoch;
        ASSERT_EQ(a.forecast_full_sweep, b.forecast_full_sweep) << "epoch " << epoch;
        // On the oracle transport nothing is ever missing.
        ASSERT_EQ(a.agent_pairs_missing, 0u) << "epoch " << epoch;
        ASSERT_EQ(a.agent_pairs_planned, a.pairs_probed) << "epoch " << epoch;

        // Matrices: bit-for-bit, including per-pair provenance.
        ASSERT_TRUE(sys.view().rate_bps == ora.view().rate_bps) << "epoch " << epoch;
        ASSERT_TRUE(sys.view().pair_epoch == ora.view().pair_epoch)
            << "epoch " << epoch;

        if (epoch % 2 == 1) {
          const place::Application app = workload::generate_app(app_rng, gen);
          place::Placement p_sys, p_ora;
          try {
            p_sys = sys.placement_of(sys.place_application(app));
          } catch (const place::PlacementError&) {
          }
          try {
            p_ora = ora.placement_of(ora.place_application(app));
          } catch (const place::PlacementError&) {
          }
          ASSERT_EQ(p_sys.machine_of_task, p_ora.machine_of_task) << "epoch " << epoch;
        }
      }

      // The distributed plane really carried the data: every report crossed
      // the wire, none were lost, dropped, or retried.
      const AgentPlane* plane = sys.agent_plane();
      ASSERT_NE(plane, nullptr);
      EXPECT_GT(plane->stats().reports_sent, 0u);
      EXPECT_GT(plane->stats().probes_run, 0u);
      EXPECT_EQ(plane->stats().retransmits, 0u);
      EXPECT_EQ(plane->stats().transport.dropped, 0u);
      EXPECT_EQ(plane->stats().cluster.duplicates_dropped, 0u);
      EXPECT_EQ(plane->stats().samples_deferred, 0u);
    }
  }
}

std::vector<place::Application> session_workload(Rng& rng, std::size_t count) {
  std::vector<place::Application> apps;
  double t = 0.0;
  const workload::GeneratorConfig gen = small_apps();
  for (std::size_t i = 0; i < count; ++i) {
    place::Application app = workload::generate_app(rng, gen);
    app.name += std::to_string(i);
    t += rng.uniform(5.0, 60.0);
    app.arrival_s = t;
    apps.push_back(std::move(app));
  }
  return apps;
}

core::SessionLog run_session(cloud::Cloud& cloud, const std::vector<cloud::VmId>& vms,
                             const std::vector<place::Application>& apps,
                             const core::ControllerConfig& config) {
  core::SessionRuntime runtime(cloud, vms, config);
  workload::VectorArrivalStream stream(apps);
  return runtime.run(stream);
}

void expect_logs_identical(const core::SessionLog& ref, const core::SessionLog& got,
                           const std::string& label) {
  ASSERT_EQ(ref.events.size(), got.events.size()) << label;
  for (std::size_t i = 0; i < ref.events.size(); ++i) {
    ASSERT_EQ(ref.events[i].time_s, got.events[i].time_s) << label << " event " << i;
    ASSERT_EQ(ref.events[i].kind, got.events[i].kind) << label << " event " << i;
    ASSERT_EQ(ref.events[i].app, got.events[i].app) << label << " event " << i;
  }
  ASSERT_EQ(ref.apps.size(), got.apps.size()) << label;
  for (std::size_t i = 0; i < ref.apps.size(); ++i) {
    ASSERT_EQ(ref.apps[i].placed_s, got.apps[i].placed_s) << label << " app " << i;
    ASSERT_EQ(ref.apps[i].finished_s, got.apps[i].finished_s) << label << " app " << i;
    ASSERT_EQ(ref.apps[i].placement.machine_of_task,
              got.apps[i].placement.machine_of_task)
        << label << " app " << i;
  }
  ASSERT_EQ(ref.total_runtime_s, got.total_runtime_s) << label;
  ASSERT_EQ(ref.rejected, got.rejected) << label;
  ASSERT_EQ(ref.measurement_wall_s, got.measurement_wall_s) << label;
  ASSERT_EQ(ref.pairs_probed, got.pairs_probed) << label;
}

TEST(AgentDifferential, SessionLogsBitIdenticalOverRandomizedCorpus) {
  for (const bool forecast : {false, true}) {
    for (const std::uint64_t seed : {3u, 17u, 29u}) {
      const std::string label = std::string("forecast=") + (forecast ? "on" : "off") +
                                " seed=" + std::to_string(seed);
      SCOPED_TRACE(label);
      Rng rng(seed);
      const std::vector<place::Application> apps = session_workload(rng, 6);

      core::ControllerConfig config;
      config.choreo = cheap_measure_config(forecast);
      config.choreo.reevaluate_period_s = 120.0;

      core::ControllerConfig agents_on = config;
      agents_on.agents.enabled = true;

      cloud::Cloud c_ora(cloud::ec2_2013(), seed * 31 + 7);
      cloud::Cloud c_sys(cloud::ec2_2013(), seed * 31 + 7);
      const auto vms_ora = c_ora.allocate_vms(5);
      const auto vms_sys = c_sys.allocate_vms(5);

      const core::SessionLog ref = run_session(c_ora, vms_ora, apps, config);
      core::SessionRuntime runtime(c_sys, vms_sys, agents_on);
      workload::VectorArrivalStream stream(apps);
      const core::SessionLog got = runtime.run(stream);

      expect_logs_identical(ref, got, label);
      // The distributed plane really ran under the session.
      const AgentPlane* plane = runtime.choreo().agent_plane();
      ASSERT_NE(plane, nullptr);
      EXPECT_GT(plane->stats().reports_sent, 0u);
      EXPECT_EQ(plane->stats().retransmits, 0u);
    }
  }
}

}  // namespace
}  // namespace choreo::agent

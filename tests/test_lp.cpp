#include <gtest/gtest.h>

#include <cmath>

#include "lp/simplex.h"
#include "util/rng.h"

namespace choreo::lp {
namespace {

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj 36.
  Model m;
  const auto x = m.add_variable(3.0);
  const auto y = m.add_variable(5.0);
  m.set_maximize(true);
  m.add_constraint({{x, 1.0}}, Sense::LessEq, 4.0);
  m.add_constraint({{y, 2.0}}, Sense::LessEq, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Sense::LessEq, 18.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-9);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.values[y], 6.0, 1e-9);
}

TEST(Simplex, MinimizationWithGreaterEq) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2 -> (8, 2)? No: y cost higher, so
  // y = 0, x = 10 -> obj 20.
  Model m;
  const auto x = m.add_variable(2.0);
  const auto y = m.add_variable(3.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::GreaterEq, 10.0);
  m.add_constraint({{x, 1.0}}, Sense::GreaterEq, 2.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 20.0, 1e-9);
  EXPECT_NEAR(s.values[x], 10.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + 2y == 4, x,y >= 0 -> y = 2, x = 0, obj 2.
  Model m;
  const auto x = m.add_variable(1.0);
  const auto y = m.add_variable(1.0);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Sense::Equal, 4.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const auto x = m.add_variable(1.0, 0.0, 5.0);
  m.add_constraint({{x, 1.0}}, Sense::GreaterEq, 10.0);
  const Solution s = solve_lp(m);
  EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const auto x = m.add_variable(1.0);
  m.set_maximize(true);
  m.add_constraint({{x, -1.0}}, Sense::LessEq, 0.0);  // x >= 0, no upper bound
  const Solution s = solve_lp(m);
  EXPECT_EQ(s.status, SolveStatus::Unbounded);
}

TEST(Simplex, RespectsVariableBounds) {
  Model m;
  const auto x = m.add_variable(-1.0, 1.0, 3.0);  // min -x => x -> upper bound
  m.add_constraint({{x, 1.0}}, Sense::LessEq, 100.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.values[x], 3.0, 1e-9);
}

TEST(Simplex, LowerBoundShiftsSolution) {
  Model m;
  const auto x = m.add_variable(1.0, 2.0, kInf);  // min x, x >= 2
  m.add_constraint({{x, 1.0}}, Sense::LessEq, 10.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
}

TEST(Simplex, BoundOverridesForBranchAndBound) {
  Model m;
  const auto x = m.add_variable(-1.0, 0.0, 10.0);
  m.add_constraint({{x, 1.0}}, Sense::LessEq, 10.0);
  SimplexOptions opts;
  opts.lower_override = {0.0};
  opts.upper_override = {4.0};
  const Solution s = solve_lp(m, opts);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.values[x], 4.0, 1e-9);
}

TEST(Ilp, SimpleKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binaries) -> a,b -> 16.
  Model m;
  const auto a = m.add_binary(10.0);
  const auto b = m.add_binary(6.0);
  const auto c = m.add_binary(4.0);
  m.set_maximize(true);
  m.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::LessEq, 2.0);
  const Solution s = solve_ilp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 16.0, 1e-9);
  EXPECT_NEAR(s.values[a], 1.0, 1e-9);
  EXPECT_NEAR(s.values[c], 0.0, 1e-9);
}

TEST(Ilp, FractionalLpNeedsBranching) {
  // max x s.t. 2x <= 3, x binary -> LP gives 1.5, ILP must give 1.
  Model m;
  const auto x = m.add_variable(1.0, 0.0, kInf, true);
  m.set_maximize(true);
  m.add_constraint({{x, 2.0}}, Sense::LessEq, 3.0);
  const Solution s = solve_ilp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.values[x], 1.0, 1e-9);
}

TEST(Ilp, InfeasibleIntegerProblem) {
  Model m;
  const auto x = m.add_binary(1.0);
  m.add_constraint({{x, 2.0}}, Sense::Equal, 1.0);  // x = 0.5 impossible
  const Solution s = solve_ilp(m);
  EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(Ilp, WarmStartStillFindsOptimum) {
  Model m;
  const auto a = m.add_binary(-3.0);  // min: take a and b
  const auto b = m.add_binary(-2.0);
  m.add_constraint({{a, 1.0}, {b, 1.0}}, Sense::LessEq, 2.0);
  IlpOptions opts;
  opts.warm_start_objective = -1.0;  // poor incumbent; must still improve
  const Solution s = solve_ilp(m, opts);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -5.0, 1e-9);
}

/// Property sweep: branch-and-bound equals brute force on random small ILPs.
class IlpVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlpVsBruteForce, Agree) {
  Rng rng(GetParam());
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(1, 4));
  Model m;
  std::vector<double> costs(n);
  for (std::size_t i = 0; i < n; ++i) {
    costs[i] = rng.uniform(-10.0, 10.0);
    m.add_binary(costs[i]);
  }
  struct Row {
    std::vector<double> coeffs;
    double rhs;
  };
  std::vector<Row> raw_rows;
  for (std::size_t r = 0; r < rows; ++r) {
    Row row;
    row.coeffs.resize(n);
    std::vector<Term> terms;
    for (std::size_t i = 0; i < n; ++i) {
      row.coeffs[i] = rng.uniform(0.0, 5.0);
      terms.push_back({i, row.coeffs[i]});
    }
    row.rhs = rng.uniform(1.0, 10.0);
    m.add_constraint(std::move(terms), Sense::LessEq, row.rhs);
    raw_rows.push_back(std::move(row));
  }

  // Brute force over all 2^n assignments.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    double obj = 0.0;
    bool ok = true;
    for (const Row& row : raw_rows) {
      double lhs = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) lhs += row.coeffs[i];
      }
      if (lhs > row.rhs + 1e-9) ok = false;
    }
    if (!ok) continue;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) obj += costs[i];
    }
    best = std::min(best, obj);
  }

  const Solution s = solve_ilp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomIlps, IlpVsBruteForce,
                         ::testing::Range<std::uint64_t>(0, 30));

/// Property sweep: LP solutions are primal feasible and at least as good as
/// every vertex of a random sampling of feasible points.
class LpFeasibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpFeasibility, OptimalIsFeasibleAndDominatesSamples) {
  Rng rng(GetParam());
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 5));
  Model m;
  for (std::size_t i = 0; i < n; ++i) {
    m.add_variable(rng.uniform(-5.0, 5.0), 0.0, rng.uniform(1.0, 10.0));
  }
  const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(1, 4));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (std::size_t i = 0; i < n; ++i) terms.push_back({i, rng.uniform(0.0, 3.0)});
    m.add_constraint(std::move(terms), Sense::LessEq, rng.uniform(5.0, 20.0));
  }
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_TRUE(m.feasible(s.values, 1e-6));
  // Sampled feasible points must not beat the reported optimum.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = rng.uniform(0.0, m.upper(i));
    if (!m.feasible(x, 1e-9)) continue;
    EXPECT_GE(m.objective_value(x), s.objective - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, LpFeasibility, ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace choreo::lp

// The bench binaries' JSON emitter must produce documents a strict JSON
// parser accepts no matter what the metric values are: non-finite doubles
// (JSON has no inf/nan literals) become null, and every control character in
// strings is escaped. Pinned by round-tripping a deliberately pathological
// table through a minimal spec-faithful recursive-descent parser written
// here — no external JSON dependency.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

namespace choreo::bench {
namespace {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Strict recursive-descent JSON parser: rejects bare inf/nan, unescaped
/// control characters, trailing garbage, and malformed escapes — exactly the
/// failures a sloppy emitter would produce.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind = JsonValue::Kind::String;
        return parse_string(out.string);
      }
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::Null;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // must be escaped
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The emitter only produces \u00XX for control bytes; decoding the
          // BMP subset below 0x80 as a single byte is enough for round-trip.
          if (code >= 0x80) return false;
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out.kind = JsonValue::Kind::Number;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(BenchJson, PathologicalTableRoundTripsThroughAStrictParser) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::string evil = "quote\" back\\slash nl\n tab\t cr\r bell\x07 us\x1f";

  BenchJson doc("patho\"logical\nbench");
  doc.config("provider", evil);
  doc.config("ratio", inf);
  doc.config("pi", 3.25);
  doc.row()
      .row("speedup", nan)
      .row("slowdown", -inf)
      .row("err", 0.125)
      .row("label", std::string("ctrl\x01\x02\x1f"));
  doc.row().row("fine", 1e-3);

  const std::string text = doc.to_string();
  const auto parsed = JsonParser(text).parse();
  ASSERT_TRUE(parsed.has_value()) << text;
  ASSERT_EQ(parsed->kind, JsonValue::Kind::Object);

  const JsonValue* name = parsed->find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string, "patho\"logical\nbench");

  const JsonValue* config = parsed->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->find("provider")->string, evil);
  // Non-finite numbers are null, not bare "inf"/"nan" tokens.
  EXPECT_EQ(config->find("ratio")->kind, JsonValue::Kind::Null);
  EXPECT_EQ(config->find("pi")->number, 3.25);

  const JsonValue* rows = parsed->find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 2u);
  EXPECT_EQ(rows->array[0].find("speedup")->kind, JsonValue::Kind::Null);
  EXPECT_EQ(rows->array[0].find("slowdown")->kind, JsonValue::Kind::Null);
  EXPECT_EQ(rows->array[0].find("err")->number, 0.125);
  EXPECT_EQ(rows->array[0].find("label")->string, std::string("ctrl\x01\x02\x1f"));
  EXPECT_EQ(rows->array[1].find("fine")->number, 1e-3);
}

TEST(BenchJson, ParserRejectsWhatTheOldEmitterProduced) {
  // Regression guards on the parser itself: the pre-fix emitter's outputs
  // must be rejected, otherwise the round-trip test proves nothing.
  EXPECT_FALSE(JsonParser(R"({"v": inf})").parse().has_value());
  EXPECT_FALSE(JsonParser(R"({"v": nan})").parse().has_value());
  EXPECT_FALSE(JsonParser("{\"v\": \"a\rb\"}").parse().has_value());
  EXPECT_FALSE(JsonParser("{\"v\": \"a\x01b\"}").parse().has_value());
  EXPECT_FALSE(JsonParser(R"({"v": 1} extra)").parse().has_value());
  EXPECT_TRUE(JsonParser(R"({"v": null})").parse().has_value());
}

TEST(BenchJson, JsonPathFromArgsHandlesBareAndEmptyForms) {
  const auto path = [](std::vector<std::string> args) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("bench"));
    for (auto& a : args) argv.push_back(a.data());
    return json_path_from_args(static_cast<int>(argv.size()), argv.data(), "tbl_x");
  };

  EXPECT_EQ(path({}), "");
  EXPECT_EQ(path({"--smoke"}), "");
  EXPECT_EQ(path({"--json"}), "BENCH_tbl_x.json");
  // A bare `--json=` (empty PATH) means "default path", not "write to ''" —
  // the empty string is the output-disabled sentinel and must not collide.
  EXPECT_EQ(path({"--json="}), "BENCH_tbl_x.json");
  EXPECT_EQ(path({"--json=out/custom.json"}), "out/custom.json");
  EXPECT_EQ(path({"--smoke", "--json=a.json"}), "a.json");
}

}  // namespace
}  // namespace choreo::bench

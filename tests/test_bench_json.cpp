// The bench binaries' JSON emitter must produce documents a strict JSON
// parser accepts no matter what the metric values are: non-finite doubles
// (JSON has no inf/nan literals) become null, and every control character in
// strings is escaped. Pinned by round-tripping a deliberately pathological
// table through the minimal spec-faithful recursive-descent parser in
// json_test_util.h (shared with the obs-plane emitter tests) — no external
// JSON dependency.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "json_test_util.h"

namespace choreo::bench {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

TEST(BenchJson, PathologicalTableRoundTripsThroughAStrictParser) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::string evil = "quote\" back\\slash nl\n tab\t cr\r bell\x07 us\x1f";

  BenchJson doc("patho\"logical\nbench");
  doc.config("provider", evil);
  doc.config("ratio", inf);
  doc.config("pi", 3.25);
  doc.row()
      .row("speedup", nan)
      .row("slowdown", -inf)
      .row("err", 0.125)
      .row("label", std::string("ctrl\x01\x02\x1f"));
  doc.row().row("fine", 1e-3);

  const std::string text = doc.to_string();
  const auto parsed = JsonParser(text).parse();
  ASSERT_TRUE(parsed.has_value()) << text;
  ASSERT_EQ(parsed->kind, JsonValue::Kind::Object);

  const JsonValue* name = parsed->find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string, "patho\"logical\nbench");

  const JsonValue* config = parsed->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->find("provider")->string, evil);
  // Non-finite numbers are null, not bare "inf"/"nan" tokens.
  EXPECT_EQ(config->find("ratio")->kind, JsonValue::Kind::Null);
  EXPECT_EQ(config->find("pi")->number, 3.25);

  const JsonValue* rows = parsed->find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 2u);
  EXPECT_EQ(rows->array[0].find("speedup")->kind, JsonValue::Kind::Null);
  EXPECT_EQ(rows->array[0].find("slowdown")->kind, JsonValue::Kind::Null);
  EXPECT_EQ(rows->array[0].find("err")->number, 0.125);
  EXPECT_EQ(rows->array[0].find("label")->string, std::string("ctrl\x01\x02\x1f"));
  EXPECT_EQ(rows->array[1].find("fine")->number, 1e-3);
}

TEST(BenchJson, ParserRejectsWhatTheOldEmitterProduced) {
  // Regression guards on the parser itself: the pre-fix emitter's outputs
  // must be rejected, otherwise the round-trip test proves nothing.
  EXPECT_FALSE(JsonParser(R"({"v": inf})").parse().has_value());
  EXPECT_FALSE(JsonParser(R"({"v": nan})").parse().has_value());
  EXPECT_FALSE(JsonParser("{\"v\": \"a\rb\"}").parse().has_value());
  EXPECT_FALSE(JsonParser("{\"v\": \"a\x01b\"}").parse().has_value());
  EXPECT_FALSE(JsonParser(R"({"v": 1} extra)").parse().has_value());
  EXPECT_TRUE(JsonParser(R"({"v": null})").parse().has_value());
}

TEST(BenchJson, JsonPathFromArgsHandlesBareAndEmptyForms) {
  const auto path = [](std::vector<std::string> args) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("bench"));
    for (auto& a : args) argv.push_back(a.data());
    return json_path_from_args(static_cast<int>(argv.size()), argv.data(), "tbl_x");
  };

  EXPECT_EQ(path({}), "");
  EXPECT_EQ(path({"--smoke"}), "");
  EXPECT_EQ(path({"--json"}), "BENCH_tbl_x.json");
  // A bare `--json=` (empty PATH) means "default path", not "write to ''" —
  // the empty string is the output-disabled sentinel and must not collide.
  EXPECT_EQ(path({"--json="}), "BENCH_tbl_x.json");
  EXPECT_EQ(path({"--json=out/custom.json"}), "out/custom.json");
  EXPECT_EQ(path({"--smoke", "--json=a.json"}), "a.json");
}

}  // namespace
}  // namespace choreo::bench

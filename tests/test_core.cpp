#include <gtest/gtest.h>

#include "core/choreo.h"
#include "core/profiler.h"
#include "place/baselines.h"
#include "util/units.h"
#include "workload/generator.h"

namespace choreo::core {
namespace {

using units::megabytes;

TEST(Profiler, AccumulatesTrafficMatrix) {
  Profiler prof(3);
  prof.observe({0, 1, 100.0, 10.0});
  prof.observe({0, 1, 50.0, 20.0});
  prof.observe({2, 0, 25.0, 30.0});
  EXPECT_EQ(prof.records_seen(), 3u);
  EXPECT_DOUBLE_EQ(prof.traffic_matrix()(0, 1), 150.0);
  EXPECT_DOUBLE_EQ(prof.traffic_matrix()(2, 0), 25.0);
  EXPECT_DOUBLE_EQ(prof.traffic_matrix()(1, 0), 0.0);
}

TEST(Profiler, RejectsBadRecords) {
  Profiler prof(2);
  EXPECT_THROW(prof.observe({0, 0, 1.0, 0.0}), PreconditionError);  // self flow
  EXPECT_THROW(prof.observe({0, 5, 1.0, 0.0}), PreconditionError);  // bad task
  EXPECT_THROW(prof.observe({0, 1, -1.0, 0.0}), PreconditionError);
}

TEST(Profiler, ToApplicationCarriesMatrix) {
  Profiler prof(2);
  prof.observe({0, 1, megabytes(10), 0.0});
  const place::Application app = prof.to_application({1.0, 2.0}, "svc");
  EXPECT_EQ(app.name, "svc");
  EXPECT_DOUBLE_EQ(app.traffic_bytes(0, 1), megabytes(10));
  EXPECT_THROW(prof.to_application({1.0}, "bad"), PreconditionError);
}

TEST(Profiler, HourlyTotalsAndPrediction) {
  Profiler prof(2);
  // Two days of hourly traffic: diurnal square wave.
  for (int h = 0; h < 48; ++h) {
    const double bytes = (h % 24 < 12) ? 100.0 : 200.0;
    prof.observe({0, 1, bytes, h * 3600.0 + 10.0});
  }
  const auto hourly = prof.hourly_totals();
  ASSERT_EQ(hourly.size(), 48u);
  EXPECT_DOUBLE_EQ(hourly[0], 100.0);
  EXPECT_DOUBLE_EQ(hourly[13], 200.0);
  // Next hour (h=48, hour-of-day 0): prev = 200 (h47), tod = 100 -> 150.
  EXPECT_DOUBLE_EQ(prof.predict_next_hour_bytes(), 150.0);
}

TEST(Profiler, PredictionFallsBackWithShortHistory) {
  Profiler prof(2);
  prof.observe({0, 1, 70.0, 100.0});
  EXPECT_DOUBLE_EQ(prof.predict_next_hour_bytes(), 70.0);
}

class ChoreoEndToEnd : public ::testing::Test {
 protected:
  ChoreoEndToEnd() : cloud_(cloud::ec2_2013(), 71), vms_(cloud_.allocate_vms(8)) {
    config_.plan.train.bursts = 5;       // keep tests fast
    config_.plan.train.burst_length = 100;
  }

  cloud::Cloud cloud_;
  std::vector<cloud::VmId> vms_;
  ChoreoConfig config_;
};

TEST_F(ChoreoEndToEnd, MeasureThenPlaceThenExecute) {
  Choreo choreo(cloud_, vms_, config_);
  EXPECT_THROW(choreo.view(), PreconditionError);  // must measure first

  const double wall = choreo.measure_network(1);
  EXPECT_GT(wall, 0.0);
  EXPECT_LT(wall, 180.0);  // §4.1: under three minutes

  Rng rng(5);
  workload::GeneratorConfig gen;
  gen.max_tasks = 6;
  const place::Application app = workload::generate_app(rng, gen);
  const auto handle = choreo.place_application(app);
  const place::Placement& p = choreo.placement_of(handle);
  EXPECT_TRUE(p.complete());

  const auto transfers = choreo.transfers_for(app, p, 0.0);
  ASSERT_FALSE(transfers.empty());
  const auto result = cloud_.execute(transfers, 2);
  EXPECT_GT(result.makespan_s, 0.0);

  choreo.remove_application(handle);
  EXPECT_TRUE(choreo.running().empty());
}

TEST_F(ChoreoEndToEnd, CommittedAppsOccupyCpu) {
  Choreo choreo(cloud_, vms_, config_);
  choreo.measure_network(1);
  place::Application app;
  app.cpu_demand = {4.0, 4.0};
  app.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  app.traffic_bytes(0, 1) = megabytes(100);
  choreo.place_application(app);
  double total_free = 0.0;
  for (std::size_t m = 0; m < vms_.size(); ++m) total_free += choreo.state().free_cores(m);
  EXPECT_DOUBLE_EQ(total_free, 8.0 * 4.0 - 8.0);
}

TEST_F(ChoreoEndToEnd, BaselinePlacerInjection) {
  Choreo choreo(cloud_, vms_, config_);
  choreo.measure_network(1);
  place::RandomPlacer random(3);
  place::Application app;
  app.cpu_demand = {1.0, 1.0, 1.0};
  app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
  app.traffic_bytes(0, 1) = megabytes(10);
  const auto handle = choreo.place_application(app, random);
  EXPECT_TRUE(choreo.placement_of(handle).complete());
}

TEST_F(ChoreoEndToEnd, ReevaluateMigratesWhenNetworkShifts) {
  // Use ground truth views so the test is about migration logic, not noise.
  config_.use_measured_view = false;
  config_.migration_cost_per_task_s = 0.0;  // migration is free: any gain wins
  Choreo choreo(cloud_, vms_, config_);
  choreo.measure_network(1);

  // Fill the cluster with two chatty apps placed by a *bad* placer.
  place::RoundRobinPlacer rr;
  Rng rng(13);
  workload::GeneratorConfig gen;
  gen.max_tasks = 5;
  const place::Application a1 = workload::generate_app(rng, gen);
  const place::Application a2 = workload::generate_app(rng, gen);
  choreo.place_application(a1, rr);
  choreo.place_application(a2, rr);

  const auto report = choreo.reevaluate(2);
  EXPECT_EQ(report.apps_considered, 2u);
  // Greedy re-placement of a round-robin layout should find improvement.
  EXPECT_GT(report.tasks_migrated, 0u);
  EXPECT_EQ(report.tasks_migrated, report.tasks_to_move);  // adopted: equal
  EXPECT_TRUE(report.adopted);
  EXPECT_GT(report.estimated_gain_s, 0.0);
}

TEST_F(ChoreoEndToEnd, ReevaluateRespectsMigrationCost) {
  config_.use_measured_view = false;
  config_.migration_cost_per_task_s = 1e9;  // prohibitively expensive
  Choreo choreo(cloud_, vms_, config_);
  choreo.measure_network(1);
  place::RoundRobinPlacer rr;
  Rng rng(13);
  workload::GeneratorConfig gen;
  gen.max_tasks = 5;
  choreo.place_application(workload::generate_app(rng, gen), rr);
  const auto report = choreo.reevaluate(2);
  EXPECT_FALSE(report.adopted);
  // The candidate plan wanted to move tasks, but none actually migrated —
  // tasks_migrated counts real migrations only, tasks_to_move the proposal.
  EXPECT_GT(report.tasks_to_move, 0u);
  EXPECT_EQ(report.tasks_migrated, 0u);
}

TEST_F(ChoreoEndToEnd, IncrementalRefreshProbesFewerPairs) {
  config_.refresh.max_age_epochs = 50;        // nothing goes stale here
  config_.refresh.volatility_threshold = 1e9; // ignore volatility here
  Choreo choreo(cloud_, vms_, config_);

  choreo.measure_network(1);
  const auto first = choreo.last_measure();
  EXPECT_FALSE(first.incremental);
  EXPECT_EQ(first.pairs_probed, vms_.size() * (vms_.size() - 1));
  EXPECT_EQ(first.rounds, vms_.size() - 1);
  EXPECT_GT(first.wall_time_s, 0.0);

  choreo.measure_network(2);
  const auto second = choreo.last_measure();
  EXPECT_TRUE(second.incremental);
  EXPECT_LT(second.pairs_probed, first.pairs_probed);
  EXPECT_LE(second.wall_time_s, first.wall_time_s);
  // The carried-over estimates are visible to placers via pair_epoch.
  EXPECT_EQ(choreo.view().view_epoch, 2u);
  EXPECT_EQ(choreo.view().freshness(0, 1), 1u);

  // Full-sweep mode re-probes everything each cycle.
  config_.incremental_refresh = false;
  Choreo full(cloud_, vms_, config_);
  full.measure_network(1);
  full.measure_network(2);
  EXPECT_EQ(full.last_measure().pairs_probed, vms_.size() * (vms_.size() - 1));
}

TEST_F(ChoreoEndToEnd, SequentialArrivalsShareTheCluster) {
  Choreo choreo(cloud_, vms_, config_);
  choreo.measure_network(1);
  Rng rng(17);
  workload::GeneratorConfig gen;
  gen.max_tasks = 4;
  gen.max_cpu = 1.0;
  std::vector<Choreo::AppHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(choreo.place_application(workload::generate_app(rng, gen)));
  }
  EXPECT_EQ(choreo.running().size(), 3u);
  for (const auto h : handles) choreo.remove_application(h);
  EXPECT_EQ(choreo.running().size(), 0u);
}

}  // namespace
}  // namespace choreo::core

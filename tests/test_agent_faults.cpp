// The agent plane under fire: with loss, delay, duplication, and agent
// crashes injected, measurement cycles and whole sessions must complete
// without throwing, the controller must place against the stale-or-partial
// view it actually has, and the reliability envelope's two guards must hold —
// duplicate StatsReport delivery is idempotent at the ClusterAgent, and a
// crash-restarted agent never resurrects its pre-crash in-flight reports.
// Every fault schedule is seed-keyed, so a faulty run replays bit-for-bit.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "agent/cluster_agent.h"
#include "agent/host_agent.h"
#include "agent/options.h"
#include "agent/plane.h"
#include "agent/proto.h"
#include "cloud/cloud.h"
#include "cloud/profile.h"
#include "core/choreo.h"
#include "core/runtime.h"
#include "net/transport.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/stream.h"

namespace choreo::agent {
namespace {

using net::SimTransport;

AgentOptions faulty_options(std::uint64_t seed) {
  AgentOptions opts;
  opts.enabled = true;
  opts.transport.seed = seed;
  opts.transport.fault.loss = 0.2;
  opts.transport.fault.duplicate = 0.1;
  opts.transport.fault.delay_min_cycles = 0;
  opts.transport.fault.delay_max_cycles = 2;
  opts.crash_rate = 0.02;
  opts.crash_seed = seed * 7 + 1;
  opts.down_cycles = 2;
  opts.retry_timeout_cycles = 1;
  return opts;
}

core::ChoreoConfig cheap_config() {
  core::ChoreoConfig config;
  config.plan.train.bursts = 5;
  config.plan.train.burst_length = 100;
  config.refresh.max_age_epochs = 3;
  return config;
}

workload::GeneratorConfig small_apps() {
  workload::GeneratorConfig gen;
  gen.min_tasks = 3;
  gen.max_tasks = 6;
  gen.max_cpu = 2.0;
  return gen;
}

// ---------------------------------------------------------------------------
// randomized fault corpus

TEST(AgentFaults, MeasurementCyclesCompleteUnderFaults) {
  // Aggregate coverage across the corpus: the injected fault kinds and the
  // recovery machinery they exercise must all actually fire.
  AgentPlane::Stats total;
  for (const std::uint64_t seed : {1u, 5u, 9u, 13u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    cloud::Cloud cloud(cloud::ec2_2013(), seed);
    const auto vms = cloud.allocate_vms(6);

    core::ChoreoConfig config = cheap_config();
    config.agents = faulty_options(seed);
    core::Choreo choreo(cloud, vms, config);

    Rng app_rng(seed);
    const workload::GeneratorConfig gen = small_apps();
    for (std::uint64_t epoch = 1; epoch <= 15; ++epoch) {
      ASSERT_NO_THROW(choreo.measure_network(epoch));
      choreo.view().validate();

      // Accounting stays consistent on every cycle: what was planned either
      // reported in-cycle or is missing, never both, never neither.
      const core::Choreo::MeasureReport& rep = choreo.last_measure();
      ASSERT_EQ(rep.pairs_probed + rep.agent_pairs_missing, rep.agent_pairs_planned);

      // Placement runs against whatever view survived the transport.
      if (epoch % 3 == 0) {
        const place::Application app = workload::generate_app(app_rng, gen);
        try {
          choreo.place_application(app);
        } catch (const place::PlacementError&) {
          // A full cluster is a legitimate outcome; a throw from the
          // measurement plane is not (ASSERT_NO_THROW above).
        }
      }
    }

    const AgentPlane* plane = choreo.agent_plane();
    ASSERT_NE(plane, nullptr);
    const AgentPlane::Stats s = plane->stats();
    total.transport.dropped += s.transport.dropped;
    total.transport.duplicated += s.transport.duplicated;
    total.transport.delayed += s.transport.delayed;
    total.cluster.duplicates_dropped += s.cluster.duplicates_dropped;
    total.cluster.samples_superseded += s.cluster.samples_superseded;
    total.cluster.resyncs += s.cluster.resyncs;
    total.cluster.hellos += s.cluster.hellos;
    total.retransmits += s.retransmits;
    total.crashes += s.crashes;
    total.restarts += s.restarts;
  }

  EXPECT_GT(total.transport.dropped, 0u);
  EXPECT_GT(total.transport.duplicated, 0u);
  EXPECT_GT(total.transport.delayed, 0u);
  EXPECT_GT(total.retransmits, 0u);
  EXPECT_GT(total.crashes, 0u);
  EXPECT_GT(total.restarts, 0u);
  EXPECT_GT(total.cluster.hellos, 0u);
  EXPECT_GT(total.cluster.resyncs, 0u);
  EXPECT_GT(total.cluster.duplicates_dropped, 0u);
}

TEST(AgentFaults, SessionsCompleteUnderFaults) {
  for (const std::uint64_t seed : {2u, 8u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    std::vector<place::Application> apps;
    double t = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      place::Application app = workload::generate_app(rng, small_apps());
      app.name += std::to_string(i);
      t += rng.uniform(5.0, 60.0);
      app.arrival_s = t;
      apps.push_back(std::move(app));
    }

    core::ControllerConfig config;
    config.choreo = cheap_config();
    config.choreo.reevaluate_period_s = 120.0;
    config.agents = faulty_options(seed);

    cloud::Cloud cloud(cloud::ec2_2013(), seed);
    const auto vms = cloud.allocate_vms(5);
    core::SessionRuntime runtime(cloud, vms, config);
    workload::VectorArrivalStream stream(apps);

    core::SessionLog log;
    ASSERT_NO_THROW(log = runtime.run(stream));
    // Every application retires one way or the other — the session never
    // wedges on lost measurement data.
    for (const core::AppOutcome& out : log.apps) {
      EXPECT_TRUE(out.rejected || out.finished_s >= 0.0) << out.name;
    }
    const AgentPlane* plane = runtime.choreo().agent_plane();
    ASSERT_NE(plane, nullptr);
    EXPECT_GT(plane->stats().reports_sent, 0u);
  }
}

TEST(AgentFaults, FaultyRunsReplayBitForBit) {
  const auto run = [](std::uint64_t seed) {
    cloud::Cloud cloud(cloud::ec2_2013(), 21);
    const auto vms = cloud.allocate_vms(6);
    core::ChoreoConfig config = cheap_config();
    AgentPlane plane(cloud, vms, config.plan, config.refresh, config.forecast,
                     faulty_options(seed));
    std::vector<ClusterAgent::CycleReport> reports;
    for (std::uint64_t epoch = 1; epoch <= 12; ++epoch) {
      reports.push_back(plane.run_cycle(epoch));
    }
    return std::make_pair(std::move(reports), plane.stats());
  };

  const auto [reports_a, stats_a] = run(77);
  const auto [reports_b, stats_b] = run(77);
  ASSERT_EQ(reports_a.size(), reports_b.size());
  for (std::size_t i = 0; i < reports_a.size(); ++i) {
    SCOPED_TRACE("cycle " + std::to_string(i + 1));
    ASSERT_TRUE(reports_a[i].view.rate_bps == reports_b[i].view.rate_bps);
    ASSERT_TRUE(reports_a[i].view.pair_epoch == reports_b[i].view.pair_epoch);
    ASSERT_EQ(reports_a[i].pairs_planned, reports_b[i].pairs_planned);
    ASSERT_EQ(reports_a[i].pairs_missing, reports_b[i].pairs_missing);
    ASSERT_EQ(reports_a[i].pairs_probed, reports_b[i].pairs_probed);
    ASSERT_EQ(reports_a[i].reports_integrated, reports_b[i].reports_integrated);
  }
  EXPECT_EQ(stats_a.transport.sent, stats_b.transport.sent);
  EXPECT_EQ(stats_a.transport.dropped, stats_b.transport.dropped);
  EXPECT_EQ(stats_a.transport.duplicated, stats_b.transport.duplicated);
  EXPECT_EQ(stats_a.crashes, stats_b.crashes);
  EXPECT_EQ(stats_a.restarts, stats_b.restarts);
  EXPECT_EQ(stats_a.retransmits, stats_b.retransmits);
  EXPECT_EQ(stats_a.cluster.samples_integrated, stats_b.cluster.samples_integrated);

  // A different transport seed produces a different fault schedule (the
  // schedules are keyed, not incidental).
  const auto [reports_c, stats_c] = run(78);
  (void)reports_c;
  EXPECT_NE(stats_a.transport.dropped, stats_c.transport.dropped);
}

// ---------------------------------------------------------------------------
// reliability-envelope guards (satellite: duplicate idempotence + stale
// generation)

proto::Message report_msg(std::uint32_t agent, std::uint32_t generation,
                          std::uint32_t seq, std::vector<proto::RateSample> samples) {
  proto::Message msg;
  msg.type = proto::MsgType::kStatsReport;
  msg.stats_report.agent = agent;
  msg.stats_report.generation = generation;
  msg.stats_report.seq = seq;
  msg.stats_report.samples = std::move(samples);
  return msg;
}

std::vector<proto::Message> decode_all(SimTransport& t, SimTransport::Endpoint at,
                                       std::uint64_t cycle) {
  std::vector<proto::Message> out;
  for (const auto& d : t.receive(at, cycle)) {
    const auto msg = proto::decode(d.bytes);
    if (msg.has_value()) out.push_back(*msg);
  }
  return out;
}

TEST(ClusterAgentGuards, DuplicateReportDeliveryIsIdempotent) {
  cloud::Cloud cloud(cloud::ec2_2013(), 4);
  const auto vms = cloud.allocate_vms(3);
  core::ChoreoConfig config = cheap_config();
  AgentOptions opts;
  ClusterAgent cluster(cloud, vms, config.plan, config.refresh, config.forecast, opts,
                       place::RateModel::Hose);
  SimTransport t(vms.size() + 1, {});

  cluster.begin_cycle(1, 1, t);
  const proto::Message msg =
      report_msg(0, 0, 0, {{0, 1, 1, 5e8}, {0, 2, 1, 7e8}});

  cluster.deliver(msg, 1, t);
  ASSERT_EQ(cluster.stats().reports_integrated, 1u);
  ASSERT_EQ(cluster.stats().samples_integrated, 2u);
  const double rate_01 = cluster.cache().at(0, 1).rate_bps;

  // Same (generation, seq) again — a retransmit or a transport duplicate.
  // Nothing is re-integrated, nothing in the cache moves, but the ack is
  // re-sent in case the first one was lost.
  cluster.deliver(msg, 2, t);
  cluster.deliver(msg, 3, t);
  EXPECT_EQ(cluster.stats().reports_integrated, 1u);
  EXPECT_EQ(cluster.stats().samples_integrated, 2u);
  EXPECT_EQ(cluster.stats().duplicates_dropped, 2u);
  EXPECT_EQ(cluster.cache().at(0, 1).rate_bps, rate_01);

  std::size_t acks = 0;
  for (const proto::Message& m : decode_all(t, endpoint_of(0), 3)) {
    if (m.type != proto::MsgType::kAck) continue;
    ++acks;
    EXPECT_EQ(m.ack.generation, 0u);
    EXPECT_EQ(m.ack.seq, 0u);
  }
  EXPECT_EQ(acks, 3u);  // one per delivery, duplicates included

  const ClusterAgent::CycleReport rep = cluster.end_cycle(1);
  EXPECT_EQ(rep.reports_integrated, 1u);
  EXPECT_EQ(rep.pairs_probed, 2u);
}

TEST(ClusterAgentGuards, StaleGenerationReportsAreDroppedWithoutAck) {
  cloud::Cloud cloud(cloud::ec2_2013(), 4);
  const auto vms = cloud.allocate_vms(3);
  core::ChoreoConfig config = cheap_config();
  ClusterAgent cluster(cloud, vms, config.plan, config.refresh, config.forecast,
                       AgentOptions{}, place::RateModel::Hose);
  SimTransport t(vms.size() + 1, {});

  cluster.begin_cycle(1, 1, t);
  t.receive(endpoint_of(0), 1);  // drain the probe request

  // The agent restarts: Hello announces generation 1.
  proto::Message hello;
  hello.type = proto::MsgType::kHello;
  hello.hello = {0, 1};
  cluster.deliver(hello, 1, t);
  EXPECT_EQ(cluster.known_generation(0), 1u);
  EXPECT_EQ(cluster.stats().resyncs, 1u);

  // A pre-crash generation-0 report still in flight arrives afterwards: it
  // must be dropped (the data belongs to a dead incarnation, and the new
  // incarnation owns seq 0 now) and must NOT be acked — there is no sender
  // left to stop retransmitting.
  cluster.deliver(report_msg(0, 0, 0, {{0, 1, 1, 5e8}}), 2, t);
  EXPECT_EQ(cluster.stats().stale_generation_dropped, 1u);
  EXPECT_EQ(cluster.stats().samples_integrated, 0u);
  EXPECT_FALSE(cluster.cache().at(0, 1).valid());

  for (const proto::Message& m : decode_all(t, endpoint_of(0), 2)) {
    EXPECT_NE(m.type, proto::MsgType::kAck);  // HelloAck only
  }

  // The new incarnation's seq 0 integrates normally — the dead report did
  // not poison the sequence space.
  cluster.deliver(report_msg(0, 1, 0, {{0, 1, 1, 6e8}}), 3, t);
  EXPECT_EQ(cluster.stats().reports_integrated, 1u);
  EXPECT_EQ(cluster.cache().at(0, 1).rate_bps, 6e8);
}

TEST(ClusterAgentGuards, ReportFromNewerGenerationAdoptsItImplicitly) {
  cloud::Cloud cloud(cloud::ec2_2013(), 4);
  const auto vms = cloud.allocate_vms(3);
  core::ChoreoConfig config = cheap_config();
  ClusterAgent cluster(cloud, vms, config.plan, config.refresh, config.forecast,
                       AgentOptions{}, place::RateModel::Hose);
  SimTransport t(vms.size() + 1, {});

  cluster.begin_cycle(1, 1, t);
  // The restarted agent's report outruns its Hello (reordering): the
  // controller adopts the new generation from the report itself and
  // schedules the resync.
  cluster.deliver(report_msg(0, 3, 0, {{0, 1, 1, 5e8}}), 1, t);
  EXPECT_EQ(cluster.known_generation(0), 3u);
  EXPECT_EQ(cluster.stats().resyncs, 1u);
  EXPECT_EQ(cluster.stats().reports_integrated, 1u);
}

TEST(HostAgentCrash, PreCrashInFlightReportsNeverResurrect) {
  AgentOptions opts;
  opts.retry_timeout_cycles = 1;
  opts.down_cycles = 2;
  SimTransport t(3, {});
  HostAgent host(1, opts, [](std::uint32_t, std::uint32_t, std::uint32_t,
                             std::uint64_t) { return 1.0; });

  proto::Message req;
  req.type = proto::MsgType::kProbeRequest;
  req.probe_request.agent = 1;
  req.probe_request.epoch = 1;
  req.probe_request.probes = {{1, 0, 0}, {1, 2, 0}};
  host.deliver(req, 1);
  host.tick(1, t);  // report (gen 0, seq 0) sent, unacked
  ASSERT_EQ(host.unacked_reports(), 1u);
  t.receive(0, 1);  // the controller never acks (ack lost)

  host.crash(2);
  EXPECT_TRUE(host.down());
  EXPECT_EQ(host.unacked_reports(), 0u);  // in-flight state died with it
  EXPECT_EQ(host.queued_samples(), 0u);

  for (std::uint64_t cycle = 2; cycle <= 10; ++cycle) host.tick(cycle, t);
  EXPECT_EQ(host.generation(), 1u);
  EXPECT_EQ(host.stats().restarts, 1u);
  // The stale-generation guard's precondition: the pre-crash report is never
  // retransmitted by the new incarnation.
  EXPECT_EQ(host.stats().retransmits, 0u);
  // Per-incarnation counters die with the incarnation: the pre-crash send is
  // gone from stats() (it went to the crash sink — see StatsConservation
  // below), and the fresh incarnation has sent nothing yet.
  EXPECT_EQ(host.stats().reports_sent, 0u);

  // Post-crash traffic is exclusively generation-1 Hellos.
  for (const auto& d : t.receive(0, 100)) {
    const auto msg = proto::decode(d.bytes);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->type, proto::MsgType::kHello);
    EXPECT_EQ(msg->hello.generation, 1u);
  }

  // Once the controller acks the Hello, normal reporting resumes at seq 0 of
  // the new generation.
  proto::Message hello_ack;
  hello_ack.type = proto::MsgType::kHelloAck;
  hello_ack.hello_ack = {1, 1};
  host.deliver(hello_ack, 11);
  host.deliver(req, 11);
  host.tick(11, t);
  const auto arrived = t.receive(0, 11);
  ASSERT_EQ(arrived.size(), 1u);
  const auto msg = proto::decode(arrived[0].bytes);
  ASSERT_EQ(msg->type, proto::MsgType::kStatsReport);
  EXPECT_EQ(msg->stats_report.generation, 1u);
  EXPECT_EQ(msg->stats_report.seq, 0u);
}

TEST(AgentFaults, CrashRestartResyncReprobesTheAgentsRow) {
  cloud::Cloud cloud(cloud::ec2_2013(), 6);
  const auto vms = cloud.allocate_vms(5);
  core::ChoreoConfig config = cheap_config();
  config.refresh.max_age_epochs = 100;  // isolate the resync from staleness
  AgentOptions opts;
  opts.enabled = true;
  opts.down_cycles = 1;
  AgentPlane plane(cloud, vms, config.plan, config.refresh, config.forecast, opts);

  // Two clean cycles: full sweep, then (almost) nothing to refresh.
  plane.run_cycle(1);
  const ClusterAgent::CycleReport quiet = plane.run_cycle(2);

  // Crash at cycle 2; with down_cycles = 1 the agent restarts during cycle 3
  // (dropping cycle 3's probe request on the floor first), its Hello lands
  // the same cycle on the lossless transport, and cycle 4's plan carries the
  // resync.
  plane.crash_agent(2);
  plane.run_cycle(3);
  const ClusterAgent::CycleReport resync = plane.run_cycle(4);

  // The resync re-probed agent 2's outgoing row (every row pair not already
  // planned, accounted as stale — with staleness effectively off, the quiet
  // plan holds at most volatile pairs).
  EXPECT_GE(resync.pairs_planned, vms.size() - 1);
  EXPECT_GE(resync.stale, 1u);
  EXPECT_GE(resync.pairs_planned, quiet.pairs_planned);
  EXPECT_GE(plane.stats().restarts, 1u);
  EXPECT_GE(plane.stats().cluster.resyncs, 1u);
}

// ---------------------------------------------------------------------------
// crash-stats conservation: a crash wipes the incarnation's counters, but
// the plane's durable accounting (fed by the crash sink) must never lose
// pre-crash activity — tbl_agents' wire accounting depends on it.

TEST(StatsConservation, CrashSinkReceivesTheDyingIncarnationsCounters) {
  AgentOptions opts;
  opts.retry_timeout_cycles = 1;
  opts.down_cycles = 2;
  SimTransport t(3, {});
  HostAgent host(1, opts, [](std::uint32_t, std::uint32_t, std::uint32_t,
                             std::uint64_t) { return 1.0; });
  HostAgent::Stats sunk;
  std::size_t sink_calls = 0;
  host.set_crash_sink([&](const HostAgent::Stats& s) {
    sunk = s;
    ++sink_calls;
  });

  proto::Message req;
  req.type = proto::MsgType::kProbeRequest;
  req.probe_request.agent = 1;
  req.probe_request.epoch = 1;
  req.probe_request.probes = {{1, 0, 0}, {1, 2, 0}};
  host.deliver(req, 1);
  host.tick(1, t);
  ASSERT_EQ(host.stats().reports_sent, 1u);
  ASSERT_EQ(host.stats().probes_run, 2u);

  host.crash(2);
  ASSERT_EQ(sink_calls, 1u);
  // The sink saw the dying incarnation's counters exactly as they were...
  EXPECT_EQ(sunk.reports_sent, 1u);
  EXPECT_EQ(sunk.probes_run, 2u);
  EXPECT_EQ(sunk.crashes, 0u);  // this crash is charged to the successor
  // ...and the live struct restarted from zero, plus the crash itself.
  EXPECT_EQ(host.stats().reports_sent, 0u);
  EXPECT_EQ(host.stats().probes_run, 0u);
  EXPECT_EQ(host.stats().crashes, 1u);
}

TEST(StatsConservation, PlaneTotalsAreMonotoneAndConservedAcrossCrashes) {
  cloud::Cloud cloud(cloud::ec2_2013(), 11);
  const auto vms = cloud.allocate_vms(6);
  core::ChoreoConfig config = cheap_config();
  AgentOptions opts = faulty_options(11);
  AgentPlane plane(cloud, vms, config.plan, config.refresh, config.forecast, opts);

  AgentPlane::Stats prev;
  for (std::uint64_t cycle = 1; cycle <= 20; ++cycle) {
    // Deterministic mid-run crashes on top of the seeded random ones — the
    // exact case whose pre-crash sends used to vanish from the totals.
    if (cycle == 5) plane.crash_agent(2);
    if (cycle == 11) plane.crash_agent(4);
    plane.run_cycle(cycle);

    const AgentPlane::Stats s = plane.stats();
    SCOPED_TRACE("cycle=" + std::to_string(cycle));
    EXPECT_GE(s.probes_run, prev.probes_run);
    EXPECT_GE(s.reports_sent, prev.reports_sent);
    EXPECT_GE(s.retransmits, prev.retransmits);
    EXPECT_GE(s.crashes, prev.crashes);
    EXPECT_GE(s.restarts, prev.restarts);
    EXPECT_GE(s.transport.bytes_sent, prev.transport.bytes_sent);
    prev = s;
  }

  ASSERT_GE(prev.crashes, 2u);  // the injected crashes actually happened
  // Conservation: every sample the cluster agent ever saw was produced by a
  // probe some incarnation ran — crashes may lose samples (queued ones die
  // with the process) but must never lose the record of having probed.
  EXPECT_LE(prev.cluster.samples_integrated + prev.cluster.samples_superseded,
            prev.probes_run);
  EXPECT_GT(prev.reports_sent, 0u);
}

}  // namespace
}  // namespace choreo::agent

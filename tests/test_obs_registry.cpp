// The metrics registry's determinism contract: counter adds and histogram
// bucket increments are commutative integer ops, so merged snapshot totals
// are bit-identical for every thread count and every interleaving — pinned
// here both on a synthetic hammer and on the real sharded control plane at
// {1,2,4,8} worker threads. Histogram quantiles must land within one log
// bucket of the exact sorted-sample quantile (the resolution bound
// tbl_serve_qps reports through).
//
// By convention, wall-clock-derived metrics carry "wall" in their name and
// are excluded from cross-thread comparisons (docs/ARCHITECTURE.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/cloud.h"
#include "cloud/profile.h"
#include "core/sharded.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "util/rng.h"
#include "workload/stream.h"

namespace choreo::obs {
namespace {

TEST(ObsRegistry, CounterTotalsAreExactForEveryThreadCount) {
  // The same multiset of adds, partitioned across 1, 2, 4, 8 threads, must
  // merge to the same exact total (integer adds commute).
  constexpr std::size_t kOps = 40000;
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kOps; ++i) expected += (i % 13) + 1;

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    Registry registry(4);
    const Counter ctr = registry.counter("hammer.ops");
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (std::size_t i = t; i < kOps; i += threads) {
          ctr.add((i % 13) + 1, t % registry.shards());
        }
      });
    }
    for (auto& th : pool) th.join();

    const MetricsSnapshot snap = registry.snapshot();
    const auto* v = snap.find_counter("hammer.ops");
    ASSERT_NE(v, nullptr) << threads << " threads";
    EXPECT_EQ(v->value, expected) << threads << " threads";
  }
}

TEST(ObsRegistry, HistogramMergeIsBitIdenticalAcrossThreadCounts) {
  // Same samples, any partition: bucket counts (and thus every derived
  // quantile) and the CAS-maintained min/max merge bit-identically.
  constexpr std::size_t kSamples = 20000;
  std::vector<double> samples(kSamples);
  Rng rng(7);
  for (double& s : samples) s = std::exp(rng.uniform(-4.0, 9.0));

  MetricsSnapshot::HistValue ref;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    Registry registry(8);
    const Hist hist = registry.histogram("hammer.sample");
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (std::size_t i = t; i < kSamples; i += threads) {
          hist.observe(samples[i], t % registry.shards());
        }
      });
    }
    for (auto& th : pool) th.join();

    const MetricsSnapshot snap = registry.snapshot();
    const auto* h = snap.find_hist("hammer.sample");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, kSamples);
    if (threads == 1) {
      ref = *h;
      continue;
    }
    EXPECT_EQ(h->min, ref.min) << threads << " threads";
    EXPECT_EQ(h->max, ref.max) << threads << " threads";
    EXPECT_EQ(h->p50, ref.p50) << threads << " threads";
    EXPECT_EQ(h->p90, ref.p90) << threads << " threads";
    EXPECT_EQ(h->p99, ref.p99) << threads << " threads";
  }
}

TEST(ObsRegistry, HistogramQuantilesLandWithinOneBucketOfExact) {
  Rng rng(42);
  Registry registry(1);
  const Hist hist = registry.histogram("lat");
  std::vector<double> samples;
  for (std::size_t i = 0; i < 5000; ++i) {
    // Lognormal-ish latencies spanning several octaves, like a tail-heavy
    // service latency distribution.
    const double v = std::exp(rng.uniform(0.0, 8.0));
    samples.push_back(v);
    hist.observe(v);
  }
  std::sort(samples.begin(), samples.end());

  const MetricsSnapshot snap = registry.snapshot();
  const auto* h = snap.find_hist("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->min, samples.front());
  EXPECT_EQ(h->max, samples.back());

  const auto exact = [&](double q) {
    const std::size_t rank =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples.size())));
    return samples[rank == 0 ? 0 : rank - 1];
  };
  for (const auto& [q, got] :
       {std::pair<double, double>{0.50, h->p50}, {0.90, h->p90}, {0.99, h->p99}}) {
    const std::size_t bucket_got = Hist::bucket_of(got);
    const std::size_t bucket_exact = Hist::bucket_of(exact(q));
    EXPECT_LE(bucket_got, bucket_exact + 1) << "q=" << q;
    EXPECT_LE(bucket_exact, bucket_got + 1) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// the real battery: a multi-tenant sharded session with the observability
// plane attached must produce bit-identical metric totals at every worker
// thread count.

struct World {
  std::unique_ptr<cloud::Cloud> cloud;
  std::vector<std::unique_ptr<workload::ArrivalStream>> owned;
  std::vector<core::TenantSpec> tenants;
};

/// Three generated tenants, observers pre-attached: tenant i records into
/// lane 1+i / shard (1+i) % shards, the same assignment for every thread
/// count (shard identity derives from the tenant, never the worker).
World build_world(Observer root, std::uint32_t shards) {
  World w;
  w.cloud = std::make_unique<cloud::Cloud>(cloud::ec2_2013(), 97);
  for (std::size_t i = 0; i < 3; ++i) {
    core::TenantSpec tenant;
    tenant.name = "t" + std::to_string(i);
    tenant.vms = w.cloud->allocate_vms(4);
    tenant.config.choreo.plan.train.bursts = 3;
    tenant.config.choreo.plan.train.burst_length = 60;
    tenant.config.choreo.reevaluate_period_s = 40.0 + 15.0 * static_cast<double>(i);
    tenant.config.batch.enabled = true;
    tenant.config.choreo.obs =
        root.with_lane(1 + static_cast<std::uint32_t>(i),
                       (1 + static_cast<std::uint32_t>(i)) % shards);

    workload::GeneratorArrivalStream::Config cfg;
    cfg.gen.min_tasks = 3;
    cfg.gen.max_tasks = 5;
    cfg.gen.max_cpu = 2.0;
    cfg.gen.median_transfer_bytes = 300e6;
    cfg.mean_gap_s = 30.0;
    cfg.max_apps = 6;
    w.owned.push_back(
        std::make_unique<workload::GeneratorArrivalStream>(500 + i, cfg));
    tenant.stream = w.owned.back().get();
    w.tenants.push_back(std::move(tenant));
  }
  return w;
}

std::map<std::string, std::uint64_t> run_battery(unsigned threads) {
  constexpr std::uint32_t kShards = 4;
  Registry registry(kShards);
  Observer root;
  root.metrics = &registry;

  World w = build_world(root, kShards);
  core::ShardedOptions opts;
  opts.threads = threads;
  opts.shards = 0;  // one shard per thread
  opts.obs = root;
  core::ShardedSession session(*w.cloud, std::move(w.tenants), opts);
  session.run();

  std::map<std::string, std::uint64_t> totals;
  for (const auto& c : registry.snapshot().counters) {
    // Scheduler-timing metrics are nondeterministic by nature and carry
    // "wall" in their name; everything else must merge bit-identically.
    if (c.name.find("wall") != std::string::npos) continue;
    totals[c.name] = c.value;
  }
  return totals;
}

TEST(ObsRegistry, ShardedBatteryTotalsAreBitIdenticalAcrossThreadCounts) {
  const auto ref = run_battery(1);
  ASSERT_FALSE(ref.empty());
  // The battery actually drove the planes it claims to compare.
  EXPECT_GT(ref.at("measure.cycles"), 0u);
  EXPECT_GT(ref.at("place.apps"), 0u);
  EXPECT_GT(ref.at("place.candidates_walked"), 0u);
  EXPECT_GT(ref.at("session.arrivals"), 0u);
  EXPECT_GT(ref.at("sharded.epoch_grants"), 0u);

  for (const unsigned threads : {2u, 4u, 8u}) {
    const auto got = run_battery(threads);
    EXPECT_EQ(got, ref) << threads << " threads";
  }
}

}  // namespace
}  // namespace choreo::obs

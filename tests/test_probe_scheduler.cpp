#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "measure/probe_scheduler.h"
#include "util/require.h"
#include "util/rng.h"

namespace choreo::measure {
namespace {

TEST(ProbeScheduler, CompleteSetUsesExactlyNMinusOneRounds) {
  for (std::size_t n : {2u, 3u, 5u, 10u, 33u}) {
    const ProbeSchedule s = schedule_probes(n, all_ordered_pairs(n));
    EXPECT_EQ(s.round_count(), n - 1) << "n=" << n;
    EXPECT_EQ(s.pair_count(), n * (n - 1)) << "n=" << n;
    EXPECT_EQ(s.max_degree, n - 1) << "n=" << n;
    s.validate(n);
    // Every round of the complete-set schedule is a perfect matching: all n
    // VMs source exactly one train.
    for (const auto& round : s.rounds) EXPECT_EQ(round.size(), n);
  }
}

TEST(ProbeScheduler, RoundsAreConflictFree) {
  const std::size_t n = 12;
  const ProbeSchedule s = schedule_probes(n, all_ordered_pairs(n));
  for (const auto& round : s.rounds) {
    std::set<std::size_t> srcs, dsts;
    for (const ProbePair& p : round) {
      EXPECT_TRUE(srcs.insert(p.src).second) << "duplicate source in round";
      EXPECT_TRUE(dsts.insert(p.dst).second) << "duplicate destination in round";
    }
  }
}

TEST(ProbeScheduler, CoversEveryRequestedPairExactlyOnce) {
  const std::size_t n = 7;
  std::vector<ProbePair> pairs = all_ordered_pairs(n);
  const ProbeSchedule s = schedule_probes(n, pairs);
  std::vector<ProbePair> scheduled;
  for (const auto& round : s.rounds) {
    scheduled.insert(scheduled.end(), round.begin(), round.end());
  }
  ASSERT_EQ(scheduled.size(), pairs.size());
  const auto key = [n](const ProbePair& p) { return p.src * n + p.dst; };
  std::set<std::size_t> want, got;
  for (const ProbePair& p : pairs) want.insert(key(p));
  for (const ProbePair& p : scheduled) got.insert(key(p));
  EXPECT_EQ(want, got);
}

TEST(ProbeScheduler, SparseSubsetNeedsFewRounds) {
  // A single VM probing 3 destinations: its out-degree forces 3 rounds, and
  // greedy should not need more.
  const ProbeSchedule s = schedule_probes(10, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(s.max_degree, 3u);
  EXPECT_EQ(s.round_count(), 3u);
  s.validate(10);

  // Disjoint pairs all fit one round.
  const ProbeSchedule one = schedule_probes(10, {{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  EXPECT_EQ(one.round_count(), 1u);
  one.validate(10);
}

TEST(ProbeScheduler, RandomSubsetsStayNearMaxDegree) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 16;
    std::vector<ProbePair> pairs;
    for (const ProbePair& p : all_ordered_pairs(n)) {
      if (rng.chance(0.3)) pairs.push_back(p);
    }
    if (pairs.empty()) continue;
    const ProbeSchedule s = schedule_probes(n, pairs);
    s.validate(n);
    EXPECT_EQ(s.pair_count(), pairs.size());
    EXPECT_GE(s.round_count(), s.max_degree);
    // Greedy bipartite edge coloring is at worst 2*Delta - 1.
    EXPECT_LE(s.round_count(), 2 * s.max_degree - 1);
  }
}

TEST(ProbeScheduler, DeterministicForInputSetRegardlessOfOrder) {
  const std::size_t n = 9;
  std::vector<ProbePair> pairs = all_ordered_pairs(n);
  const ProbeSchedule a = schedule_probes(n, pairs);
  std::reverse(pairs.begin(), pairs.end());
  const ProbeSchedule b = schedule_probes(n, pairs);
  ASSERT_EQ(a.round_count(), b.round_count());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_TRUE(a.rounds[r] == b.rounds[r]) << "round " << r;
  }
}

TEST(ProbeScheduler, RejectsSelfPairsAndEmptyFleet) {
  EXPECT_THROW(schedule_probes(5, {{2, 2}}), PreconditionError);
  EXPECT_THROW(schedule_probes(1, {{0, 0}}), PreconditionError);
  EXPECT_THROW(schedule_probes(3, {{0, 7}}), PreconditionError);
}

TEST(ProbeScheduler, ValidateCatchesConflicts) {
  ProbeSchedule bad;
  bad.rounds.push_back({{0, 1}, {0, 2}});  // VM 0 sources twice
  EXPECT_THROW(bad.validate(3), PreconditionError);
  ProbeSchedule dup;
  dup.rounds.push_back({{0, 1}});
  dup.rounds.push_back({{0, 1}});  // same pair twice
  EXPECT_THROW(dup.validate(3), PreconditionError);
}

}  // namespace
}  // namespace choreo::measure

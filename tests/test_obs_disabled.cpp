// The compile-time off switch: this TU is built with -DCHOREO_OBS_DISABLED
// (see tests/CMakeLists.txt), so every CHOREO_OBS_* macro here expands to
// nothing. Even with a live registry and tracer attached to the observer,
// macro sites must record nothing and allocate nothing — the disabled path
// is free by construction, not by branch prediction.

#ifndef CHOREO_OBS_DISABLED
#error "test_obs_disabled.cpp must be compiled with CHOREO_OBS_DISABLED"
#endif

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "obs/observer.h"

// Counting operator-new interposition (micro_flowsim's pattern): the pin is
// a zero *delta* across the macro-site window, not a global prohibition.
namespace {
std::size_t g_alloc_count = 0;
}

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace choreo::obs {
namespace {

/// The instrumented hot loop with every macro kind, against a LIVE observer.
std::uint64_t macro_sites(const Observer& obsv, const Counter& ctr, const Gauge& g,
                          const Hist& hist, std::size_t iters) {
  (void)obsv;
  (void)ctr;
  (void)g;
  (void)hist;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    CHOREO_OBS_SPAN(span, obsv, "bench.op", "bench");
    CHOREO_OBS_ADD(ctr, obsv, i + 1);
    CHOREO_OBS_INC(ctr, obsv);
    CHOREO_OBS_SET(g, static_cast<double>(i));
    CHOREO_OBS_OBSERVE(hist, obsv, static_cast<double>(i + 1));
    span.arg("i", static_cast<double>(i));
    span.sim(static_cast<double>(i), 1.0);
    acc += i;
  }
  return acc;
}

TEST(ObsDisabled, MacroSitesRecordNothingEvenWithALiveObserver) {
  Registry registry(1);
  Tracer tracer(256);
  Observer obsv;
  obsv.metrics = &registry;
  obsv.tracer = &tracer;
  const Counter ctr = registry.counter("bench.ops");
  const Gauge g = registry.gauge("bench.level");
  const Hist hist = registry.histogram("bench.sample");

  const std::uint64_t acc = macro_sites(obsv, ctr, g, hist, 1000);
  EXPECT_EQ(acc, 999u * 1000u / 2u);  // the real work still happened

  // ...but none of it was observed: the macros expanded to nothing.
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const MetricsSnapshot snap = registry.snapshot();
  const auto* c = snap.find_counter("bench.ops");
  ASSERT_NE(c, nullptr);  // registration is explicit, not via macros
  EXPECT_EQ(c->value, 0u);
  const auto* h = snap.find_hist("bench.sample");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 0u);
}

TEST(ObsDisabled, MacroSitesAllocateNothing) {
  Registry registry(1);
  Tracer tracer(256);
  Observer obsv;
  obsv.metrics = &registry;
  obsv.tracer = &tracer;
  const Counter ctr = registry.counter("bench.ops");
  const Gauge g = registry.gauge("bench.level");
  const Hist hist = registry.histogram("bench.sample");

  macro_sites(obsv, ctr, g, hist, 10);  // warm-up
  const std::size_t before = g_alloc_count;
  const std::uint64_t acc = macro_sites(obsv, ctr, g, hist, 100000);
  const std::size_t delta = g_alloc_count - before;
  EXPECT_GT(acc, 0u);
  EXPECT_EQ(delta, 0u);
}

}  // namespace
}  // namespace choreo::obs

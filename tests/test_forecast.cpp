#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "forecast/predictive_policy.h"
#include "forecast/predictor.h"
#include "forecast/rate_history.h"
#include "measure/view_cache.h"
#include "place/greedy.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"
#include "workload/trace.h"

namespace choreo::forecast {
namespace {

using measure::ProbePair;
using measure::RefreshPlan;
using measure::RefreshPolicy;
using measure::ViewCache;
using units::mbps;

// ---------------------------------------------------------------------------
// RateHistory
// ---------------------------------------------------------------------------

TEST(RateHistory, RecordsOldestFirstAndEvictsAtCapacity) {
  RateHistory h(3, 4);
  for (std::uint64_t e = 1; e <= 6; ++e) {
    h.record(0, 1, static_cast<double>(e) * 100.0, e);
  }
  EXPECT_EQ(h.sample_count(0, 1), 4u);
  EXPECT_EQ(h.observations(0, 1), 6u);
  const PairSeries s = h.series(0, 1);
  ASSERT_EQ(s.size(), 4u);
  // Oldest retained sample is epoch 3 (1 and 2 were evicted).
  EXPECT_EQ(s.at(0).epoch, 3u);
  EXPECT_EQ(s.at(3).epoch, 6u);
  EXPECT_EQ(s.newest().rate_bps, 600.0);
  EXPECT_EQ(s.from_newest(1).rate_bps, 500.0);
  EXPECT_EQ(h.sample_count(1, 0), 0u);
  EXPECT_TRUE(h.series(1, 0).empty());
}

TEST(RateHistory, ResizePreservesSurvivingPairs) {
  RateHistory h(2, 8);
  h.record(0, 1, mbps(500), 1);
  h.record(1, 0, mbps(300), 1);
  h.resize(4);
  EXPECT_EQ(h.sample_count(0, 1), 1u);
  EXPECT_EQ(h.series(1, 0).newest().rate_bps, mbps(300));
  EXPECT_EQ(h.sample_count(0, 3), 0u);
  h.resize(2);  // shrink back: still intact
  EXPECT_EQ(h.series(0, 1).newest().rate_bps, mbps(500));
}

// ---------------------------------------------------------------------------
// Predictors
// ---------------------------------------------------------------------------

PairSeries fill(RateHistory& h, const std::vector<double>& values) {
  for (std::size_t t = 0; t < values.size(); ++t) {
    h.record(0, 1, values[t], t);
  }
  return h.series(0, 1);
}

TEST(Predictors, LastValueReturnsNewestSample) {
  RateHistory h(2, 8);
  const PairSeries s = fill(h, {100.0, 200.0, 150.0});
  EXPECT_EQ(LastValuePredictor().predict(s, 3), 150.0);
}

TEST(Predictors, EwmaFoldsOldestToNewest) {
  RateHistory h(2, 8);
  const PairSeries s = fill(h, {100.0, 200.0});
  // e = 100; e = 0.5*200 + 0.5*100 = 150.
  EXPECT_DOUBLE_EQ(EwmaPredictor(0.5).predict(s, 2), 150.0);
  // alpha = 1: degenerates to last value.
  EXPECT_DOUBLE_EQ(EwmaPredictor(1.0).predict(s, 2), 200.0);
}

TEST(Predictors, TimeOfDayAveragesSamePhaseAndFallsBack) {
  RateHistory h(2, 64);
  // Epochs 0..11 with period 4: phases 0,1,2,3 repeating.
  std::vector<double> v;
  for (std::size_t t = 0; t < 12; ++t) {
    v.push_back(static_cast<double>(100 * (t % 4) + t));  // phase-dependent
  }
  const PairSeries s = fill(h, v);
  const TimeOfDayPredictor tod(4);
  // Target epoch 12 (phase 0): mean of v[0], v[4], v[8] = (0 + 104 + 208)/3.
  EXPECT_DOUBLE_EQ(tod.predict(s, 12), (v[8] + v[4] + v[0]) / 3.0);
  // A target phase nothing in the window matches is impossible with dense
  // epochs; check the fallback with a sparse history instead.
  RateHistory sparse(2, 8);
  sparse.record(0, 1, 700.0, 1);
  EXPECT_DOUBLE_EQ(tod.predict(sparse.series(0, 1), 4), 700.0);  // phase 0: no match
}

TEST(Predictors, BlendAveragesLastAndTimeOfDay) {
  RateHistory h(2, 64);
  std::vector<double> v(9, 0.0);
  for (std::size_t t = 0; t < v.size(); ++t) v[t] = static_cast<double>(t + 1);
  const PairSeries s = fill(h, v);
  const double last = v.back();
  const double tod = (v[8] + v[4] + v[0]) / 3.0;  // period 4, target phase 0
  EXPECT_DOUBLE_EQ(BlendPredictor(4).predict(s, 12), 0.5 * (last + tod));
}

// The §2.1 trace scorers are the differential oracle: running the online
// predictors over a dense hourly series must reproduce
// workload::score_prev_hour / score_time_of_day / score_blend exactly
// (same arithmetic, same accumulation order).
TEST(Predictors, MatchTracePredictorScoringBitForBit) {
  // A real synthetic trace series (diurnal + AR(1) noise), long enough for
  // several "days".
  const workload::HpCloudTrace trace(77, workload::TraceConfig{});
  const std::vector<double>* series = nullptr;
  for (const workload::TraceApp& app : trace.apps()) {
    if (app.hourly_bytes.size() >= 24 * 7) {
      series = &app.hourly_bytes;
      break;
    }
  }
  ASSERT_NE(series, nullptr) << "trace has no long-running service";
  const std::vector<double>& v = *series;

  RateHistory h(2, v.size() + 1);  // unbounded for the dense comparison
  const LastValuePredictor last;
  const TimeOfDayPredictor tod(24);
  const BlendPredictor blend(24);
  std::vector<double> last_err, tod_err, blend_err;
  for (std::size_t t = 0; t < v.size(); ++t) {
    if (t >= 1 && v[t] > 0.0) {
      const PairSeries s = h.series(0, 1);
      last_err.push_back(std::abs(last.predict(s, t) - v[t]) / v[t]);
      if (t >= 24) {
        tod_err.push_back(std::abs(tod.predict(s, t) - v[t]) / v[t]);
        blend_err.push_back(std::abs(blend.predict(s, t) - v[t]) / v[t]);
      }
    }
    h.record(0, 1, v[t], t);
  }

  const workload::PredictorScore prev = workload::score_prev_hour(v);
  ASSERT_EQ(last_err.size(), prev.samples);
  EXPECT_DOUBLE_EQ(mean(last_err), prev.mean_rel_error);
  EXPECT_DOUBLE_EQ(median(last_err), prev.median_rel_error);

  const workload::PredictorScore tods = workload::score_time_of_day(v);
  ASSERT_EQ(tod_err.size(), tods.samples);
  EXPECT_DOUBLE_EQ(mean(tod_err), tods.mean_rel_error);
  EXPECT_DOUBLE_EQ(median(tod_err), tods.median_rel_error);

  const workload::PredictorScore blends = workload::score_blend(v);
  ASSERT_EQ(blend_err.size(), blends.samples);
  EXPECT_DOUBLE_EQ(mean(blend_err), blends.mean_rel_error);
  EXPECT_DOUBLE_EQ(median(blend_err), blends.median_rel_error);
}

// ---------------------------------------------------------------------------
// CUSUM change-point detection
// ---------------------------------------------------------------------------

TEST(Cusum, FiresOnSustainedDriftNotOnNoise) {
  CusumDetector::Params p;
  p.slack = 0.15;
  p.threshold = 0.5;
  CusumDetector under(p);
  // Alternating small residuals stay under the slack: never fires.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(under.update(i % 2 == 0 ? 0.1 : -0.1));
  }
  // A sustained +30% drift accumulates 0.15 per step: fires on the 4th.
  CusumDetector drift(p);
  EXPECT_FALSE(drift.update(0.3));
  EXPECT_FALSE(drift.update(0.3));
  EXPECT_FALSE(drift.update(0.3));
  EXPECT_TRUE(drift.update(0.3));
  // Fired: sums reset.
  EXPECT_EQ(drift.positive_sum(), 0.0);
  EXPECT_FALSE(drift.update(0.3));
}

TEST(Cusum, CatchesNegativeDriftToo) {
  CusumDetector::Params p;
  p.slack = 0.1;
  p.threshold = 0.3;
  CusumDetector d(p);
  EXPECT_FALSE(d.update(-0.3));  // g- = 0.2
  EXPECT_TRUE(d.update(-0.3));   // g- = 0.4 > threshold
}

// ---------------------------------------------------------------------------
// PredictivePolicy
// ---------------------------------------------------------------------------

ForecastOptions enabled_options() {
  ForecastOptions o;
  o.enabled = true;
  o.min_observations = 2;
  o.probe_budget_fraction = 0.5;
  o.min_probes_per_cycle = 1;
  return o;
}

TEST(PredictivePolicy, DisabledDelegatesToFixedPolicyVerbatim) {
  ViewCache cache(4);
  for (const ProbePair& p : measure::all_ordered_pairs(4)) {
    cache.store(p.src, p.dst, mbps(500), 1);
  }
  cache.store(0, 1, mbps(2000), 2);  // volatile under the fixed rule
  cache.invalidate(2, 3);

  RefreshPolicy fixed;
  fixed.max_age_epochs = 8;
  fixed.volatility_threshold = 0.5;

  PredictivePolicy policy;  // default: disabled
  const RefreshPlan got = policy.plan_refresh(cache, 3, fixed);
  const RefreshPlan want = cache.plan_refresh(3, fixed);
  ASSERT_EQ(got.pairs.size(), want.pairs.size());
  for (std::size_t k = 0; k < got.pairs.size(); ++k) {
    EXPECT_TRUE(got.pairs[k] == want.pairs[k]) << "pair order diverged at " << k;
  }
  EXPECT_EQ(got.never_measured, want.never_measured);
  EXPECT_EQ(got.stale, want.stale);
  EXPECT_EQ(got.volatile_pairs, want.volatile_pairs);
  EXPECT_EQ(policy.last_plan().predictable, 0u);
  EXPECT_EQ(policy.last_plan().unpredictable, 0u);
}

TEST(PredictivePolicy, ProbesNeverMeasuredStaleAndWarmupPairs) {
  ViewCache cache(3);
  PredictivePolicy policy(enabled_options());
  RefreshPolicy fixed;
  fixed.max_age_epochs = 4;

  // Fresh cache: everything never-measured.
  RefreshPlan plan = policy.plan_refresh(cache, 1, fixed);
  EXPECT_EQ(plan.pairs.size(), 6u);
  EXPECT_EQ(plan.never_measured, 6u);

  // One observation each: cached but under min_observations -> warm-up.
  for (const ProbePair& p : plan.pairs) {
    cache.store(p.src, p.dst, mbps(500), 1);
    policy.observe(p.src, p.dst, mbps(500), 1);
  }
  plan = policy.plan_refresh(cache, 2, fixed);
  EXPECT_EQ(plan.pairs.size(), 6u);
  EXPECT_EQ(policy.last_plan().warmup, 6u);

  // Second round: warmed up; at epoch 10 everything is stale again.
  for (const ProbePair& p : plan.pairs) {
    cache.store(p.src, p.dst, mbps(500), 2);
    policy.observe(p.src, p.dst, mbps(500), 2);
  }
  plan = policy.plan_refresh(cache, 10, fixed);
  EXPECT_EQ(plan.stale, 6u);
}

TEST(PredictivePolicy, BudgetGoesToTheWorstPredictedPairs) {
  ForecastOptions opts = enabled_options();
  opts.probe_budget_fraction = 0.25;  // 1 of 6 pairs
  ViewCache cache(3);
  PredictivePolicy policy(opts);
  policy.resize(3);
  RefreshPolicy fixed;
  fixed.max_age_epochs = 100;  // staleness out of the picture

  // Three cycles of observations: pair (1, 2) oscillates wildly (high
  // prediction error), everything else is rock steady.
  for (std::uint64_t e = 1; e <= 3; ++e) {
    for (const ProbePair& p : measure::all_ordered_pairs(3)) {
      const bool wild = p.src == 1 && p.dst == 2;
      const double rate = wild ? mbps(e % 2 == 0 ? 2000 : 200) : mbps(500);
      cache.store(p.src, p.dst, rate, e);
      policy.observe(p.src, p.dst, rate, e);
    }
  }
  EXPECT_GT(policy.predictability_error(1, 2), policy.predictability_error(0, 1));

  const RefreshPlan plan = policy.plan_refresh(cache, 4, fixed);
  // All pairs are in control; the budget (25% of 6 -> 1) goes to the wild
  // pair, everything else coasts on forecasts.
  ASSERT_EQ(plan.pairs.size(), 1u);
  EXPECT_TRUE(plan.pairs[0] == (ProbePair{1, 2}));
  EXPECT_EQ(policy.last_plan().unpredictable, 1u);
  EXPECT_EQ(policy.last_plan().predictable, 5u);
}

TEST(PredictivePolicy, CusumFlagsRegimeShiftedPair) {
  ForecastOptions opts = enabled_options();
  opts.probe_budget_fraction = 0.0;  // isolate the change-point channel
  opts.min_probes_per_cycle = 0;
  opts.cusum.slack = 0.15;
  opts.cusum.threshold = 0.5;
  ViewCache cache(3);
  PredictivePolicy policy(opts);
  policy.resize(3);
  RefreshPolicy fixed;
  fixed.max_age_epochs = 1000;

  for (std::uint64_t e = 1; e <= 4; ++e) {
    for (const ProbePair& p : measure::all_ordered_pairs(3)) {
      cache.store(p.src, p.dst, mbps(500), e);
      policy.observe(p.src, p.dst, mbps(500), e);
    }
  }
  // Pair (0, 2) drops to half rate: a sustained -50% residual fires the
  // CUSUM within two observations (0.35 + 0.35 > 0.5).
  policy.observe(0, 2, mbps(250), 5);
  ASSERT_FALSE(policy.changepoint_flagged(0, 2));
  policy.observe(0, 2, mbps(250), 6);
  EXPECT_TRUE(policy.changepoint_flagged(0, 2));
  EXPECT_FALSE(policy.changepoint_flagged(0, 1));

  const RefreshPlan plan = policy.plan_refresh(cache, 7, fixed);
  ASSERT_EQ(plan.pairs.size(), 1u);
  EXPECT_TRUE(plan.pairs[0] == (ProbePair{0, 2}));
  EXPECT_EQ(policy.last_plan().changepoints, 1u);

  // Probing the pair again with an on-forecast rate clears the flag.
  policy.observe(0, 2, mbps(250), 7);
  EXPECT_FALSE(policy.changepoint_flagged(0, 2));
}

TEST(PredictivePolicy, RegimeAlarmForcesFullSweep) {
  ForecastOptions opts = enabled_options();
  opts.changepoint_sweep_fraction = 0.5;
  opts.changepoint_sweep_min_probes = 4;
  opts.cusum.slack = 0.1;
  opts.cusum.threshold = 0.3;
  ViewCache cache(3);
  PredictivePolicy policy(opts);
  policy.resize(3);
  RefreshPolicy fixed;
  fixed.max_age_epochs = 1000;

  for (std::uint64_t e = 1; e <= 3; ++e) {
    for (const ProbePair& p : measure::all_ordered_pairs(3)) {
      cache.store(p.src, p.dst, mbps(500), e);
      policy.observe(p.src, p.dst, mbps(500), e);
    }
  }
  policy.plan_refresh(cache, 4, fixed);  // resets the cycle counters
  // Every pair halves: all six scored probes fire the CUSUM.
  for (const ProbePair& p : measure::all_ordered_pairs(3)) {
    cache.store(p.src, p.dst, mbps(250), 4);
    policy.observe(p.src, p.dst, mbps(250), 4);
    cache.store(p.src, p.dst, mbps(250), 5);
    policy.observe(p.src, p.dst, mbps(250), 5);
  }
  const RefreshPlan plan = policy.plan_refresh(cache, 6, fixed);
  EXPECT_TRUE(policy.last_plan().full_sweep);
  EXPECT_EQ(plan.pairs.size(), 6u);
}

TEST(PredictivePolicy, AppliesForecastsAndDiscountsToView) {
  ForecastOptions opts = enabled_options();
  opts.discount_rates = true;
  opts.discount_quantile = 1.0;  // max of the recent errors: easy to compute
  ViewCache cache(2);
  PredictivePolicy policy(opts);
  policy.resize(2);

  // Pair (0, 1) alternates 400/800: last-value error |400-800|/800 = 0.5 or
  // |800-400|/400 = 1.0. Pair (1, 0) is steady at 600.
  const std::vector<double> rates01 = {mbps(400), mbps(800), mbps(400), mbps(800)};
  for (std::uint64_t e = 1; e <= 4; ++e) {
    cache.store(0, 1, rates01[e - 1], e);
    policy.observe(0, 1, rates01[e - 1], e);
    cache.store(1, 0, mbps(600), e);
    policy.observe(1, 0, mbps(600), e);
  }

  // Cycle at epoch 5 probed nothing: both pairs coast.
  place::ClusterView view;
  view.rate_bps = cache.rates();
  view.cross_traffic = DoubleMatrix(2, 2, 0.0);
  view.cores = {4.0, 4.0};
  view.colocation_group = {0, 1};
  RefreshPlan plan;  // empty: nothing probed
  policy.apply_to_view(view, cache, plan, 5);

  EXPECT_EQ(policy.last_plan().predicted, 2u);
  // (1, 0): steady forecast 600, zero error -> no discount.
  EXPECT_DOUBLE_EQ(view.rate_bps(1, 0), mbps(600));
  // (0, 1): the best predictor's forecast, discounted by 1/(1 + max err).
  const double q = policy.error_quantile(0, 1);
  EXPECT_GT(q, 0.0);
  const double forecast = policy.predict(0, 1, 5);
  EXPECT_DOUBLE_EQ(view.rate_bps(0, 1), forecast / (1.0 + q));
}

// The uncertainty-aware placement hook has two equivalent entry points:
// discounting the ClusterView before a state is built (what
// PredictivePolicy::apply_to_view does) and discounting a live state in
// place (PlacementEngine::apply_rate_discount via ClusterState) — the
// latter must keep the committed occupancy, rebuild the rate indexes, and
// preserve the engine/exhaustive-oracle bit-identity under the discount.
TEST(RateDiscountHook, EngineDiscountMatchesViewDiscountAndKeepsOracleIdentity) {
  const std::size_t n = 4;
  place::ClusterView view;
  view.rate_bps = DoubleMatrix(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) view.rate_bps(i, j) = mbps(400 + 100 * i + 30 * j);
    }
  }
  view.cross_traffic = DoubleMatrix(n, n, 0.0);
  view.cores.assign(n, 4.0);
  view.colocation_group = {0, 1, 2, 3};

  DoubleMatrix factor(n, n, 1.0);
  factor(0, 1) = 0.5;
  factor(1, 2) = 0.7;
  factor(3, 0) = 0.9;

  Rng rng(123);
  workload::GeneratorConfig gen;
  gen.min_tasks = 4;
  gen.max_tasks = 6;
  gen.max_cpu = 1.5;
  const place::Application first = workload::generate_app(rng, gen);
  const place::Application second = workload::generate_app(rng, gen);

  // Path A: discount the view first, then build the state and commit.
  place::ClusterView pre = view;
  place::apply_rate_discount(pre, factor);
  place::ClusterState state_a(std::move(pre));

  // Path B: build on the undiscounted view, commit, then discount in place.
  place::ClusterState state_b(view);
  place::GreedyPlacer greedy(place::RateModel::Hose);
  const place::Placement p_first = greedy.place(first, state_b);
  state_b.commit(first, p_first);
  state_a.commit(first, p_first);
  state_b.apply_rate_discount(factor);

  // Same rates, same residual occupancy.
  EXPECT_TRUE(state_a.view().rate_bps == state_b.view().rate_bps);
  EXPECT_DOUBLE_EQ(state_b.view().rate_bps(0, 1), view.rate_bps(0, 1) * 0.5);
  for (std::size_t m = 0; m < n; ++m) {
    EXPECT_DOUBLE_EQ(state_a.free_cores(m), state_b.free_cores(m));
    EXPECT_DOUBLE_EQ(state_a.transfers_out_of(m), state_b.transfers_out_of(m));
  }

  // Same downstream placements, and the engine-backed greedy stays
  // bit-identical to the exhaustive oracle on the discounted state.
  const place::Placement via_a = greedy.place(second, state_a);
  const place::Placement via_b = greedy.place(second, state_b);
  EXPECT_EQ(via_a.machine_of_task, via_b.machine_of_task);
  place::ExhaustiveGreedyPlacer oracle(place::RateModel::Hose);
  const place::Placement via_oracle = oracle.place(second, state_b);
  EXPECT_EQ(via_b.machine_of_task, via_oracle.machine_of_task);
}

TEST(PredictivePolicy, ResizePreservesStateOfSurvivingPairs) {
  ViewCache cache(2);
  PredictivePolicy policy(enabled_options());
  policy.resize(2);
  for (std::uint64_t e = 1; e <= 3; ++e) {
    cache.store(0, 1, mbps(500), e);
    policy.observe(0, 1, mbps(500), e);
    cache.store(1, 0, mbps(500), e);
    policy.observe(1, 0, mbps(500), e);
  }
  const double err_before = policy.predictability_error(0, 1);
  policy.resize(4);
  EXPECT_EQ(policy.predictability_error(0, 1), err_before);
  EXPECT_EQ(policy.history().sample_count(0, 1), 3u);
  EXPECT_TRUE(std::isinf(policy.predictability_error(0, 3)));
}

}  // namespace
}  // namespace choreo::forecast

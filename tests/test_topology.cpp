#include "net/topology.h"

#include <gtest/gtest.h>

namespace choreo::net {
namespace {

TEST(Topology, DuplexLinksComeInTwinPairs) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::Host, "a");
  const NodeId b = t.add_node(NodeKind::Host, "b");
  const LinkId fwd = t.add_duplex_link(a, b, 1e9, 1e-6);
  const Link& f = t.link(fwd);
  const Link& r = t.link(f.reverse);
  EXPECT_EQ(f.src, a);
  EXPECT_EQ(f.dst, b);
  EXPECT_EQ(r.src, b);
  EXPECT_EQ(r.dst, a);
  EXPECT_EQ(r.reverse, fwd);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.out_links(a).size(), 1u);
  EXPECT_EQ(t.out_links(b).size(), 1u);
}

TEST(Topology, RejectsBadLinks) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::Host, "a");
  EXPECT_THROW(t.add_duplex_link(a, a, 1e9, 0.0), PreconditionError);
  EXPECT_THROW(t.add_duplex_link(a, 99, 1e9, 0.0), PreconditionError);
  const NodeId b = t.add_node(NodeKind::Host, "b");
  EXPECT_THROW(t.add_duplex_link(a, b, 0.0, 0.0), PreconditionError);
  EXPECT_THROW(t.add_duplex_link(a, b, 1e9, -1.0), PreconditionError);
}

TEST(MultiRootedTree, NodeCounts) {
  TreeParams p;
  p.pods = 2;
  p.racks_per_pod = 3;
  p.hosts_per_rack = 4;
  p.aggs_per_pod = 2;
  p.cores = 2;
  const Topology t = make_multi_rooted_tree(p);
  EXPECT_EQ(t.nodes_of_kind(NodeKind::Host).size(), 24u);
  EXPECT_EQ(t.nodes_of_kind(NodeKind::Tor).size(), 6u);
  EXPECT_EQ(t.nodes_of_kind(NodeKind::Agg).size(), 4u);
  EXPECT_EQ(t.nodes_of_kind(NodeKind::Core).size(), 2u);
  // Links: agg-core 4*2, tor-agg 6*2, host-tor 24 => 20+24 duplex = 88 directed.
  EXPECT_EQ(t.link_count(), 2u * (8 + 12 + 24));
}

TEST(MultiRootedTree, RackAndPodLabels) {
  TreeParams p;
  p.pods = 2;
  p.racks_per_pod = 2;
  p.hosts_per_rack = 2;
  const Topology t = make_multi_rooted_tree(p);
  int max_rack = -1;
  for (NodeId h : t.nodes_of_kind(NodeKind::Host)) {
    EXPECT_GE(t.node(h).rack, 0);
    EXPECT_GE(t.node(h).pod, 0);
    max_rack = std::max(max_rack, t.node(h).rack);
  }
  EXPECT_EQ(max_rack, 3);  // 4 racks total, 0-indexed
}

TEST(RegionalTree, RegionsAreStamped) {
  RegionalTreeParams p;
  p.regions = 2;
  p.super_cores = 2;
  p.region.pods = 2;
  p.region.racks_per_pod = 2;
  p.region.hosts_per_rack = 2;
  const Topology t = make_regional_tree(p);
  int seen_regions = 0;
  std::vector<bool> seen(2, false);
  for (NodeId h : t.nodes_of_kind(NodeKind::Host)) {
    const int r = t.node(h).region;
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 2);
    if (!seen[static_cast<std::size_t>(r)]) {
      seen[static_cast<std::size_t>(r)] = true;
      ++seen_regions;
    }
  }
  EXPECT_EQ(seen_regions, 2);
}

TEST(RegionalTree, SingleRegionHasNoSuperCores) {
  RegionalTreeParams p;
  p.regions = 1;
  p.region.pods = 1;
  p.region.racks_per_pod = 1;
  p.region.hosts_per_rack = 2;
  p.region.cores = 2;
  const Topology t = make_regional_tree(p);
  // cores = region cores only.
  EXPECT_EQ(t.nodes_of_kind(NodeKind::Core).size(), 2u);
}

TEST(SharedLinkTopology, MatchesFig3a) {
  const SharedLinkTopology s = make_shared_link(10, 1e9);
  EXPECT_EQ(s.senders.size(), 10u);
  EXPECT_EQ(s.receivers.size(), 10u);
  const Link& shared = s.topo.link(s.shared_link);
  EXPECT_DOUBLE_EQ(shared.capacity_bps, 1e9);
  // 1 shared + 10 sender + 10 receiver duplex links.
  EXPECT_EQ(s.topo.link_count(), 2u * 21);
}

TEST(TwoRackTopology, MatchesFig3b) {
  const TwoRackTopology s = make_two_rack_cloud(10);
  EXPECT_EQ(s.senders.size(), 10u);
  const Link& up = s.topo.link(s.sender_uplink);
  EXPECT_DOUBLE_EQ(up.capacity_bps, 10e9);
  // Host links are 1G.
  const Link& host_link = s.topo.link(s.topo.out_links(s.senders[0]).front());
  EXPECT_DOUBLE_EQ(host_link.capacity_bps, 1e9);
}

TEST(NodeKindNames, Strings) {
  EXPECT_STREQ(to_string(NodeKind::Host), "host");
  EXPECT_STREQ(to_string(NodeKind::Core), "core");
}

}  // namespace
}  // namespace choreo::net

#include "net/routing.h"

#include <gtest/gtest.h>

#include <set>

namespace choreo::net {
namespace {

Topology small_tree() {
  TreeParams p;
  p.pods = 2;
  p.racks_per_pod = 2;
  p.hosts_per_rack = 2;
  p.aggs_per_pod = 2;
  p.cores = 2;
  return make_multi_rooted_tree(p);
}

TEST(Router, HopCountsMatchTreeStructure) {
  const Topology t = small_tree();
  const Router r(t);
  const auto hosts = t.nodes_of_kind(NodeKind::Host);
  // hosts are created rack-by-rack: 0,1 on rack0; 2,3 on rack1 (same pod);
  // 4.. in pod 1.
  EXPECT_EQ(r.hop_count(hosts[0], hosts[1]), 2u);  // same rack
  EXPECT_EQ(r.hop_count(hosts[0], hosts[2]), 4u);  // same pod
  EXPECT_EQ(r.hop_count(hosts[0], hosts[4]), 6u);  // across pods
  EXPECT_EQ(r.hop_count(hosts[0], hosts[0]), 0u);
}

TEST(Router, RegionalTreeGivesEightHops) {
  RegionalTreeParams p;
  p.regions = 2;
  p.super_cores = 2;
  p.region.pods = 2;
  p.region.racks_per_pod = 2;
  p.region.hosts_per_rack = 2;
  const Topology t = make_regional_tree(p);
  const Router r(t);
  const auto hosts = t.nodes_of_kind(NodeKind::Host);
  // First and last hosts live in different regions.
  const NodeId a = hosts.front();
  const NodeId b = hosts.back();
  ASSERT_NE(t.node(a).region, t.node(b).region);
  EXPECT_EQ(r.hop_count(a, b), 8u);
}

TEST(Router, RouteIsConsistentWithHopCount) {
  const Topology t = small_tree();
  const Router r(t);
  const auto hosts = t.nodes_of_kind(NodeKind::Host);
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      const Route route = r.route(hosts[i], hosts[j], 7);
      EXPECT_EQ(route.hop_count(), r.hop_count(hosts[i], hosts[j]));
      EXPECT_EQ(route.nodes.front(), hosts[i]);
      EXPECT_EQ(route.nodes.back(), hosts[j]);
      // Links must chain.
      for (std::size_t k = 0; k < route.links.size(); ++k) {
        EXPECT_EQ(t.link(route.links[k]).src, route.nodes[k]);
        EXPECT_EQ(t.link(route.links[k]).dst, route.nodes[k + 1]);
      }
    }
  }
}

TEST(Router, SameFlowKeySamePath) {
  const Topology t = small_tree();
  const Router r(t);
  const auto hosts = t.nodes_of_kind(NodeKind::Host);
  const Route r1 = r.route(hosts[0], hosts[7], 1234);
  const Route r2 = r.route(hosts[0], hosts[7], 1234);
  EXPECT_EQ(r1.links, r2.links);
}

TEST(Router, EcmpSpreadsAcrossKeys) {
  const Topology t = small_tree();
  const Router r(t);
  const auto hosts = t.nodes_of_kind(NodeKind::Host);
  std::set<std::vector<LinkId>> distinct;
  for (std::uint64_t key = 0; key < 32; ++key) {
    distinct.insert(r.route(hosts[0], hosts[7], key).links);
  }
  // With 2 aggs and 2 cores there are several equal-cost paths; flow hashing
  // should find more than one.
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Router, UnreachableThrows) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::Host, "a");
  const NodeId b = t.add_node(NodeKind::Host, "b");
  const Router r(t);
  EXPECT_THROW(r.route(a, b, 0), PreconditionError);
  EXPECT_THROW(r.hop_count(a, b), PreconditionError);
}

}  // namespace
}  // namespace choreo::net

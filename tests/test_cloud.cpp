#include "cloud/cloud.h"

#include <gtest/gtest.h>

#include <set>

#include "util/stats.h"
#include "util/units.h"

namespace choreo::cloud {
namespace {

using units::mbps;

TEST(Profiles, FactoriesAreSane) {
  for (const ProviderProfile& p : {ec2_2013(), ec2_2012(), rackspace()}) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.vnic_rate_bps, 0.0);
    EXPECT_GT(p.bucket_depth_bytes, 0.0);
    EXPECT_GT(p.cores_per_machine, 0);
  }
  EXPECT_TRUE(rackspace().traceroute_hides_tiers);
  EXPECT_FALSE(ec2_2013().traceroute_hides_tiers);
  // Rackspace's burst allowance is much deeper than EC2's (Fig 6 mechanism).
  EXPECT_GT(rackspace().bucket_depth_bytes, 10 * ec2_2013().bucket_depth_bytes);
}

TEST(Cloud, AllocatesVmsOnHosts) {
  Cloud cloud(ec2_2013(), 1);
  const auto vms = cloud.allocate_vms(10);
  EXPECT_EQ(vms.size(), 10u);
  EXPECT_EQ(cloud.vm_count(), 10u);
  for (VmId vm : vms) {
    EXPECT_GT(cloud.vm_hose_bps(vm), 0.0);
  }
  // Repeated allocation extends the fleet.
  cloud.allocate_vms(5);
  EXPECT_EQ(cloud.vm_count(), 15u);
}

TEST(Cloud, DeterministicForSeed) {
  Cloud a(ec2_2013(), 99), b(ec2_2013(), 99);
  const auto va = a.allocate_vms(8);
  const auto vb = b.allocate_vms(8);
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(a.vm_host(va[i]), b.vm_host(vb[i]));
    EXPECT_DOUBLE_EQ(a.vm_hose_bps(va[i]), b.vm_hose_bps(vb[i]));
  }
  EXPECT_DOUBLE_EQ(a.netperf_bps(va[0], va[1], 5.0, 1), b.netperf_bps(vb[0], vb[1], 5.0, 1));
}

TEST(Cloud, NetperfTracksSourceHose) {
  Cloud cloud(ec2_2013(), 7);
  const auto vms = cloud.allocate_vms(12);
  for (std::size_t i = 0; i + 1 < vms.size(); i += 2) {
    if (cloud.vm_host(vms[i]) == cloud.vm_host(vms[i + 1])) continue;
    const double hose = cloud.vm_hose_bps(vms[i]);
    const double measured = cloud.netperf_bps(vms[i], vms[i + 1], 5.0, i);
    // Within 12%: background and noise can shave a little off the hose.
    EXPECT_LT(measured, hose * 1.05);
    EXPECT_GT(measured, hose * 0.6);
  }
}

TEST(Cloud, RackspaceIsFlat300) {
  Cloud cloud(rackspace(), 3);
  const auto vms = cloud.allocate_vms(10);
  std::vector<double> rates;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    const std::size_t j = (i + 1) % vms.size();
    if (cloud.vm_host(vms[i]) == cloud.vm_host(vms[j])) continue;
    rates.push_back(cloud.netperf_bps(vms[i], vms[j], 5.0, i));
  }
  ASSERT_GE(rates.size(), 5u);
  const Summary s = summarize(rates);
  EXPECT_NEAR(s.mean, mbps(300), mbps(10));
  EXPECT_LT(s.stddev, mbps(8));
}

TEST(Cloud, SameHostPairsAreFast) {
  ProviderProfile profile = ec2_2013();
  profile.colocate_prob = 1.0;  // force co-location
  Cloud cloud(profile, 5);
  const auto vms = cloud.allocate_vms(2);
  ASSERT_EQ(cloud.vm_host(vms[0]), cloud.vm_host(vms[1]));
  EXPECT_EQ(cloud.traceroute_hops(vms[0], vms[1]), 1u);
  const double rate = cloud.netperf_bps(vms[0], vms[1], 2.0, 1);
  EXPECT_GT(rate, units::gbps(3.5));
}

TEST(Cloud, TracerouteHopCountsAreEven) {
  Cloud cloud(ec2_2013(), 11);
  const auto vms = cloud.allocate_vms(14);
  const std::set<std::size_t> allowed{1, 2, 4, 6, 8};
  for (std::size_t i = 0; i < vms.size(); ++i) {
    for (std::size_t j = i + 1; j < vms.size(); ++j) {
      EXPECT_TRUE(allowed.count(cloud.traceroute_hops(vms[i], vms[j])))
          << cloud.traceroute_hops(vms[i], vms[j]);
    }
  }
}

TEST(Cloud, RackspaceTracerouteHidesTiers) {
  Cloud cloud(rackspace(), 11);
  const auto vms = cloud.allocate_vms(12);
  for (std::size_t i = 0; i < vms.size(); ++i) {
    for (std::size_t j = i + 1; j < vms.size(); ++j) {
      const std::size_t hops = cloud.traceroute_hops(vms[i], vms[j]);
      EXPECT_TRUE(hops == 1 || hops == 4) << hops;
    }
  }
}

TEST(Cloud, ConcurrentSameSourceSharesHose) {
  Cloud cloud(ec2_2013(), 21);
  const auto vms = cloud.allocate_vms(10);
  // Find a source and two destinations on distinct hosts.
  VmId a = vms[0], b = vms[1], c = vms[2];
  for (VmId v : vms) {
    if (cloud.vm_host(v) != cloud.vm_host(a) && b == vms[1]) b = v;
  }
  const double solo = cloud.netperf_bps(a, b, 5.0, 1);
  const auto joint = cloud.netperf_concurrent_bps({{a, b}, {a, c}}, 5.0, 1);
  // §4.3: connections out of the same source always interfere; the sum stays
  // near the solo rate (hose signature).
  EXPECT_LT(joint[0], solo * 0.75);
  EXPECT_NEAR(joint[0] + joint[1], solo, solo * 0.25);
}

TEST(Cloud, ExecuteRunsTransfersToCompletion) {
  Cloud cloud(ec2_2013(), 31);
  const auto vms = cloud.allocate_vms(4);
  std::vector<Cloud::Transfer> transfers;
  transfers.push_back({vms[0], vms[1], units::megabytes(100), 0.0});
  transfers.push_back({vms[2], vms[3], units::megabytes(50), 0.0});
  transfers.push_back({vms[0], vms[0], units::megabytes(500), 0.0});  // same VM: free
  const auto result = cloud.execute(transfers, 1);
  ASSERT_EQ(result.completion_s.size(), 3u);
  EXPECT_GT(result.completion_s[0], 0.0);
  EXPECT_DOUBLE_EQ(result.completion_s[2], 0.0);
  EXPECT_GE(result.makespan_s, result.completion_s[0]);
  // 100 MB at ~1 Gbit/s is ~0.8s; allow for slow-band hoses (down to ~300M).
  EXPECT_LT(result.makespan_s, 5.0);
}

TEST(Cloud, TruePathRateIsNoiseFree) {
  Cloud cloud(rackspace(), 41);
  const auto vms = cloud.allocate_vms(6);
  if (cloud.vm_host(vms[0]) != cloud.vm_host(vms[1])) {
    const double r1 = cloud.true_path_rate_bps(vms[0], vms[1], 5);
    const double r2 = cloud.true_path_rate_bps(vms[0], vms[1], 5);
    EXPECT_DOUBLE_EQ(r1, r2);
    EXPECT_NEAR(r1, cloud.vm_hose_bps(vms[0]), mbps(6));
  }
}

TEST(Cloud, ProbeSeriesReflectsSharing) {
  Cloud cloud(ec2_2013(), 51);
  const auto vms = cloud.allocate_vms(6);
  const auto series = cloud.probe_series_bps(vms[0], vms[1], 2.0, 0.01, 3);
  EXPECT_NEAR(static_cast<double>(series.size()), 200.0, 2.0);
  for (double s : series) EXPECT_GT(s, 0.0);
}

}  // namespace
}  // namespace choreo::cloud

#include <gtest/gtest.h>

#include "place/greedy.h"
#include "place/ilp.h"
#include "place/rate_model.h"
#include "util/rng.h"
#include "util/units.h"

namespace choreo::place {
namespace {

using units::gbps;
using units::mbps;

ClusterView random_view(Rng& rng, std::size_t machines) {
  ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j) view.rate_bps(i, j) = rng.uniform(mbps(300), mbps(1100));
    }
  }
  view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
  view.cores.assign(machines, 4.0);
  view.colocation_group.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) view.colocation_group[m] = static_cast<int>(m);
  return view;
}

Application random_app(Rng& rng, std::size_t tasks) {
  Application app;
  app.name = "random";
  app.cpu_demand.resize(tasks);
  for (double& c : app.cpu_demand) c = rng.uniform(0.5, 2.0);
  app.traffic_bytes = DoubleMatrix(tasks, tasks, 0.0);
  for (std::size_t i = 0; i < tasks; ++i) {
    for (std::size_t j = 0; j < tasks; ++j) {
      if (i != j && rng.chance(0.5)) {
        app.traffic_bytes(i, j) = rng.uniform(units::megabytes(10), units::megabytes(500));
      }
    }
  }
  // Ensure at least one transfer so the placement is non-trivial.
  if (app.traffic_bytes.total() == 0.0) app.traffic_bytes(0, 1 % tasks) = 1e6;
  return app;
}

TEST(IlpPlacer, MatchesBruteForceOnTinyInstance) {
  Rng rng(1);
  const ClusterView view = random_view(rng, 3);
  const Application app = random_app(rng, 4);
  ClusterState state(view);

  IlpPlacer ilp(RateModel::Hose);
  BruteForcePlacer brute(RateModel::Hose);
  const Placement pi = ilp.place(app, state);
  const Placement pb = brute.place(app, state);
  const double ti = estimate_completion_s(app, pi, view, RateModel::Hose);
  const double tb = estimate_completion_s(app, pb, view, RateModel::Hose);
  EXPECT_NEAR(ti, tb, tb * 1e-6 + 1e-9);
}

/// Property: over random small instances, ILP == brute force and greedy is
/// never better than either (it may tie).
class IlpOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlpOptimality, IlpEqualsBruteForceGreedyIsUpperBound) {
  Rng rng(GetParam() + 100);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(2, 3));
  const std::size_t tasks = static_cast<std::size_t>(rng.uniform_int(3, 4));
  const ClusterView view = random_view(rng, machines);
  const Application app = random_app(rng, tasks);
  ClusterState state(view);

  const RateModel model = rng.chance(0.5) ? RateModel::Hose : RateModel::Pipe;
  BruteForcePlacer brute(model);
  Placement pb;
  try {
    pb = brute.place(app, state);
  } catch (const PlacementError&) {
    GTEST_SKIP() << "instance infeasible";
  }
  const double tb = estimate_completion_s(app, pb, view, model);

  IlpPlacer ilp(model);
  const Placement pi = ilp.place(app, state);
  const double ti = estimate_completion_s(app, pi, view, model);
  EXPECT_LE(ti, tb * (1.0 + 1e-6) + 1e-9);
  EXPECT_GE(ti, tb * (1.0 - 1e-6) - 1e-9);

  GreedyPlacer greedy(model);
  const Placement pg = greedy.place(app, state);
  const double tg = estimate_completion_s(app, pg, view, model);
  EXPECT_GE(tg, tb * (1.0 - 1e-9) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, IlpOptimality,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(IlpPlacer, RespectsCpuConstraints) {
  Rng rng(7);
  ClusterView view = random_view(rng, 3);
  view.cores = {2.0, 2.0, 2.0};
  Application app;
  app.cpu_demand = {2.0, 2.0, 2.0};
  app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
  app.traffic_bytes(0, 1) = 1e8;
  app.traffic_bytes(1, 2) = 1e8;
  ClusterState state(view);
  IlpPlacer ilp(RateModel::Hose);
  const Placement p = ilp.place(app, state);
  // Each machine fits exactly one 2-core task.
  std::set<std::size_t> used(p.machine_of_task.begin(), p.machine_of_task.end());
  EXPECT_EQ(used.size(), 3u);
}

TEST(IlpPlacer, FallsBackToGreedyOnNodeLimit) {
  Rng rng(9);
  const ClusterView view = random_view(rng, 4);
  const Application app = random_app(rng, 6);
  ClusterState state(view);
  lp::IlpOptions opts;
  opts.max_nodes = 1;  // guarantee budget exhaustion
  IlpPlacer ilp(RateModel::Hose, opts);
  const Placement p = ilp.place(app, state);
  EXPECT_TRUE(p.complete());  // greedy fallback still yields a placement
}

TEST(BruteForce, RefusesHugeInstances) {
  Rng rng(11);
  const ClusterView view = random_view(rng, 10);
  const Application app = random_app(rng, 12);
  ClusterState state(view);
  BruteForcePlacer brute(RateModel::Hose, /*max_assignments=*/1000);
  EXPECT_THROW(brute.place(app, state), PreconditionError);
}

TEST(BruteForce, ReportsObjective) {
  Rng rng(13);
  const ClusterView view = random_view(rng, 3);
  const Application app = random_app(rng, 3);
  ClusterState state(view);
  BruteForcePlacer brute(RateModel::Pipe);
  const Placement p = brute.place(app, state);
  EXPECT_NEAR(brute.last_objective_s(),
              estimate_completion_s(app, p, view, RateModel::Pipe), 1e-9);
}

}  // namespace
}  // namespace choreo::place

#include <gtest/gtest.h>

#include "place/greedy.h"
#include "place/phases.h"
#include "util/units.h"
#include "workload/phased.h"

namespace choreo::place {
namespace {

using units::gigabytes;
using units::mbps;

ClusterView simple_view(std::size_t machines) {
  ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, mbps(1000));
  view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
  view.cores.assign(machines, 2.0);
  view.colocation_group.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) view.colocation_group[m] = static_cast<int>(m);
  return view;
}

/// Three tasks, two phases with opposite hotspots: phase 0 is all 0->1,
/// phase 1 is all 0->2. An aggregate placement must compromise; a per-phase
/// plan can co-locate the hot pair in each phase.
PhasedApplication two_phase_app() {
  PhasedApplication app;
  app.name = "swap";
  app.cpu_demand = {1.0, 1.0, 1.0};
  DoubleMatrix phase0(3, 3, 0.0);
  phase0(0, 1) = gigabytes(2);
  phase0(0, 2) = gigabytes(0.05);
  DoubleMatrix phase1(3, 3, 0.0);
  phase1(0, 2) = gigabytes(2);
  phase1(0, 1) = gigabytes(0.05);
  app.phase_traffic = {phase0, phase1};
  return app;
}

TEST(Phases, AggregateSumsPhases) {
  const PhasedApplication app = two_phase_app();
  const Application agg = app.aggregate();
  EXPECT_DOUBLE_EQ(agg.traffic_bytes(0, 1), gigabytes(2.05));
  EXPECT_DOUBLE_EQ(agg.traffic_bytes(0, 2), gigabytes(2.05));
  EXPECT_EQ(agg.task_count(), 3u);
}

TEST(Phases, PhaseExtraction) {
  const PhasedApplication app = two_phase_app();
  EXPECT_DOUBLE_EQ(app.phase(0).traffic_bytes(0, 1), gigabytes(2));
  EXPECT_DOUBLE_EQ(app.phase(1).traffic_bytes(0, 2), gigabytes(2));
  EXPECT_THROW(app.phase(5), PreconditionError);
}

TEST(Phases, ValidateRejectsShapeMismatch) {
  PhasedApplication app;
  app.cpu_demand = {1.0, 1.0};
  app.phase_traffic = {DoubleMatrix(3, 3, 0.0)};
  EXPECT_THROW(app.validate(), PreconditionError);
}

TEST(Phases, PerPhasePlanBeatsAggregateOnShiftingHotspots) {
  const PhasedApplication app = two_phase_app();
  ClusterState state(simple_view(4));
  const PhasedPlan phased = plan_phases(app, state, RateModel::Hose,
                                        /*migration_cost_per_task_s=*/0.5);
  const PhasedPlan aggregate = plan_aggregate(app, state, RateModel::Hose);
  // The aggregate placement can co-locate task 0 with only one of its two
  // partners (2 cores per machine), so one phase pays ~16s on the network;
  // per-phase planning migrates and pays only the migration cost.
  EXPECT_LT(phased.estimated_completion_s, aggregate.estimated_completion_s);
  ASSERT_EQ(phased.migrations.size(), 1u);
  EXPECT_GT(phased.migrations[0], 0u);
}

TEST(Phases, MigrationCostGatesReplanning) {
  const PhasedApplication app = two_phase_app();
  ClusterState state(simple_view(4));
  const PhasedPlan cheap = plan_phases(app, state, RateModel::Hose, 0.0);
  const PhasedPlan expensive = plan_phases(app, state, RateModel::Hose, 1e9);
  EXPECT_GT(cheap.migrations[0], 0u);
  EXPECT_EQ(expensive.migrations[0], 0u);
  // With prohibitive migration cost the plan degenerates to phase-0's
  // placement reused everywhere.
  EXPECT_EQ(expensive.placements[0].machine_of_task,
            expensive.placements[1].machine_of_task);
}

TEST(Phases, SinglePhaseEqualsPlainPlacement) {
  PhasedApplication app;
  app.name = "one";
  app.cpu_demand = {1.0, 1.0};
  DoubleMatrix m(2, 2, 0.0);
  m(0, 1) = gigabytes(1);
  app.phase_traffic = {m};
  ClusterState state(simple_view(3));
  const PhasedPlan plan = plan_phases(app, state, RateModel::Hose, 1.0);
  ASSERT_EQ(plan.placements.size(), 1u);
  EXPECT_TRUE(plan.migrations.empty());
  GreedyPlacer greedy(RateModel::Hose);
  const Placement direct = greedy.place(app.phase(0), state);
  EXPECT_EQ(plan.placements[0].machine_of_task, direct.machine_of_task);
}

TEST(PhasedGenerator, ProducesValidApps) {
  Rng rng(3);
  workload::PhasedConfig cfg;
  cfg.gen.min_tasks = 4;
  cfg.gen.max_tasks = 6;
  for (int i = 0; i < 10; ++i) {
    const PhasedApplication app = workload::generate_phased_app(rng, cfg);
    app.validate();
    EXPECT_GE(app.phase_count(), cfg.min_phases);
    EXPECT_LE(app.phase_count(), cfg.max_phases);
    for (std::size_t k = 0; k < app.phase_count(); ++k) {
      EXPECT_GT(app.phase_traffic[k].total(), 0.0);
    }
  }
}

TEST(PhasedGenerator, PhasesDiffer) {
  Rng rng(5);
  workload::PhasedConfig cfg;
  cfg.min_phases = cfg.max_phases = 3;
  const PhasedApplication app = workload::generate_phased_app(rng, cfg);
  EXPECT_FALSE(app.phase_traffic[0] == app.phase_traffic[1]);
  EXPECT_FALSE(app.phase_traffic[1] == app.phase_traffic[2]);
}

}  // namespace
}  // namespace choreo::place

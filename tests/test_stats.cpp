#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.h"

namespace choreo {
namespace {

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 1.75);
}

TEST(Stats, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.3), 7.0);
}

TEST(Stats, PercentileRejectsEmptyAndBadQ) {
  EXPECT_THROW(percentile({}, 0.5), PreconditionError);
  EXPECT_THROW(percentile({1.0}, -0.1), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 1.1), PreconditionError);
}

TEST(Stats, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 6.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90.0, 100.0), 0.1);
  EXPECT_THROW(relative_error(1.0, 0.0), PreconditionError);
}

TEST(Stats, SummaryMatchesHandComputation) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Stats, SummaryRejectsEmpty) { EXPECT_THROW(summarize({}), PreconditionError); }

TEST(Cdf, AtAndQuantile) {
  Cdf cdf(std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(3.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
}

TEST(Cdf, FractionBetween) {
  Cdf cdf(std::vector<double>{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000});
  EXPECT_DOUBLE_EQ(cdf.fraction_between(200, 500), 0.4);
  EXPECT_DOUBLE_EQ(cdf.fraction_between(0, 10000), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_between(101, 199), 0.0);
}

TEST(Cdf, AddKeepsOrderInvariant) {
  Cdf cdf;
  cdf.add(3.0);
  cdf.add(1.0);
  cdf.add(2.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 1.0 / 3.0);
  cdf.add(0.5);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.5);
}

TEST(Cdf, PointsEndAtOne) {
  Cdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(static_cast<double>(i));
  const auto pts = cdf.points(10);
  ASSERT_FALSE(pts.empty());
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  EXPECT_LE(pts.size(), 12u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LE(pts[i - 1].second, pts[i].second);
  }
}

TEST(Accumulator, MatchesBatchStats) {
  const std::vector<double> v{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  Accumulator acc;
  for (double x : v) acc.add(x);
  const Summary s = summarize(v);
  EXPECT_EQ(acc.count(), v.size());
  EXPECT_NEAR(acc.mean(), s.mean, 1e-12);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, VarianceZeroForSmallCounts) {
  Accumulator acc;
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

}  // namespace
}  // namespace choreo

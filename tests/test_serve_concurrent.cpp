// Concurrency battery for the serving plane: N reader threads querying a
// PlacementService through private Scratch arenas — while a writer swaps
// epochs underneath them — must produce exactly the placements a sequential
// replay computes against the snapshots they report having used. Runs under
// TSan in CI; any unsynchronized access to the epoch-swapped snapshot or the
// per-thread arenas is a hard failure there.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "place/greedy.h"
#include "place/rate_model.h"
#include "serve/service.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/generator.h"

namespace choreo::serve {
namespace {

using units::mbps;

place::ClusterView random_view(Rng& rng, std::size_t machines) {
  place::ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j) view.rate_bps(i, j) = rng.uniform(mbps(200), mbps(1200));
    }
  }
  view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j && rng.chance(0.25)) view.cross_traffic(i, j) = rng.uniform(0.0, 2.0);
    }
  }
  view.colocation_group.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) view.colocation_group[m] = static_cast<int>(m);
  view.cores.assign(machines, 8.0);
  return view;
}

std::vector<place::Application> query_corpus(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  workload::GeneratorConfig gen;
  gen.min_tasks = 3;
  gen.max_tasks = 6;
  gen.max_cpu = 1.5;
  std::vector<place::Application> apps;
  for (std::size_t i = 0; i < count; ++i) apps.push_back(workload::generate_app(rng, gen));
  return apps;
}

struct Recorded {
  std::size_t app = 0;
  std::uint64_t epoch = 0;
  place::Placement placement;
};

TEST(ServeConcurrent, ReadersMatchSequentialReplayUnderEpochChurn) {
  constexpr std::size_t kMachines = 24;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kQueriesPerThread = 40;
  constexpr std::size_t kPublishes = 6;

  Rng rng(42);
  PlacementService service(random_view(rng, kMachines));

  // Pre-build the churn views so the writer thread does no RNG work.
  std::vector<place::ClusterView> churn;
  for (std::size_t i = 0; i < kPublishes; ++i) churn.push_back(random_view(rng, kMachines));

  // Every snapshot ever published, recorded by the single writer. Epoch ->
  // snapshot lets the replay reconstruct exactly what each reader saw.
  std::vector<std::shared_ptr<const ClusterSnapshot>> published;
  published.push_back(service.snapshot());

  const std::vector<place::Application> apps =
      query_corpus(7, kThreads * kQueriesPerThread);

  std::atomic<bool> start{false};
  std::atomic<std::size_t> done_readers{0};

  std::vector<std::vector<Recorded>> per_thread(kThreads);
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      Scratch scratch;
      for (std::size_t q = 0; q < kQueriesPerThread; ++q) {
        const std::size_t idx = t * kQueriesPerThread + q;
        const PlacementService::Result r = service.place(apps[idx], scratch);
        per_thread[t].push_back({idx, r.epoch, r.placement});
      }
      done_readers.fetch_add(1, std::memory_order_acq_rel);
    });
  }

  std::thread writer([&] {
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    for (const place::ClusterView& view : churn) {
      service.publish_view(view);
      published.push_back(service.snapshot());
      // Let readers interleave between epochs without pinning a schedule.
      for (int spin = 0; spin < 64 && done_readers.load(std::memory_order_acquire) <
                                          kThreads;
           ++spin) {
        std::this_thread::yield();
      }
    }
  });

  start.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();
  writer.join();

  std::map<std::uint64_t, std::shared_ptr<const ClusterSnapshot>> by_epoch;
  for (const auto& snap : published) by_epoch[snap->epoch] = snap;
  ASSERT_EQ(by_epoch.size(), kPublishes + 1);

  // Sequential replay: for each recorded query, run the greedy placer
  // directly against the snapshot the reader says it used. Determinism of
  // the placer makes placement equality the full correctness statement.
  place::GreedyPlacer greedy(place::RateModel::Hose);
  std::size_t replayed = 0;
  for (const std::vector<Recorded>& records : per_thread) {
    std::uint64_t last_epoch = 0;
    for (const Recorded& rec : records) {
      ASSERT_TRUE(by_epoch.count(rec.epoch)) << "unknown epoch " << rec.epoch;
      // A single reader's epoch observations never go backwards: the writer
      // publishes with release stores in one total order.
      EXPECT_GE(rec.epoch, last_epoch);
      last_epoch = rec.epoch;

      place::ClusterState arena = by_epoch[rec.epoch]->state.clone();
      const place::Placement expect = greedy.place(apps[rec.app], arena);
      EXPECT_EQ(rec.placement.machine_of_task, expect.machine_of_task)
          << "app " << rec.app << " epoch " << rec.epoch;
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, kThreads * kQueriesPerThread);
}

TEST(ServeConcurrent, QuiescentEpochThreadsEqualSingleThread) {
  constexpr std::size_t kMachines = 16;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kQueries = 48;  // divisible by kThreads

  Rng rng(5);
  PlacementService service(random_view(rng, kMachines));
  const std::vector<place::Application> apps = query_corpus(9, kQueries);

  // Single-threaded baseline.
  std::vector<place::Placement> baseline(kQueries);
  {
    Scratch scratch;
    for (std::size_t i = 0; i < kQueries; ++i) {
      baseline[i] = service.place(apps[i], scratch).placement;
    }
  }

  // The same queries partitioned across threads, no publishes in flight:
  // every thread clones the same epoch and must reproduce the baseline.
  std::vector<std::vector<place::Placement>> got(kThreads);
  std::vector<std::thread> workers;
  const std::size_t per = kQueries / kThreads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Scratch scratch;
      for (std::size_t i = t * per; i < (t + 1) * per; ++i) {
        got[t].push_back(service.place(apps[i], scratch).placement);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < per; ++i) {
      EXPECT_EQ(got[t][i].machine_of_task, baseline[t * per + i].machine_of_task)
          << "thread " << t << " query " << i;
    }
  }
}

TEST(ServeConcurrent, ConcurrentCommitsFromOneWriterStayCoherent) {
  // One writer admitting apps (clone -> mutate -> swap) while readers keep
  // placing against whatever epoch is current: the reader placements must
  // each replay against a published snapshot, mirroring the batched-arrival
  // serving loop.
  constexpr std::size_t kMachines = 16;
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kQueriesPerThread = 25;
  constexpr std::size_t kCommits = 5;

  Rng rng(77);
  PlacementService service(random_view(rng, kMachines));
  std::vector<std::shared_ptr<const ClusterSnapshot>> published;
  published.push_back(service.snapshot());

  const std::vector<place::Application> queries =
      query_corpus(21, kThreads * kQueriesPerThread);
  const std::vector<place::Application> admitted = query_corpus(22, kCommits);

  std::atomic<bool> start{false};
  std::vector<std::vector<Recorded>> per_thread(kThreads);
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      Scratch scratch;
      for (std::size_t q = 0; q < kQueriesPerThread; ++q) {
        const std::size_t idx = t * kQueriesPerThread + q;
        const PlacementService::Result r = service.place(queries[idx], scratch);
        per_thread[t].push_back({idx, r.epoch, r.placement});
      }
    });
  }

  std::thread writer([&] {
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    Scratch scratch;
    for (const place::Application& app : admitted) {
      const PlacementService::Result r = service.place(app, scratch);
      service.commit(app, r.placement);
      published.push_back(service.snapshot());
      std::this_thread::yield();
    }
  });

  start.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();
  writer.join();

  std::map<std::uint64_t, std::shared_ptr<const ClusterSnapshot>> by_epoch;
  for (const auto& snap : published) by_epoch[snap->epoch] = snap;

  place::GreedyPlacer greedy(place::RateModel::Hose);
  for (const std::vector<Recorded>& records : per_thread) {
    for (const Recorded& rec : records) {
      ASSERT_TRUE(by_epoch.count(rec.epoch)) << "unknown epoch " << rec.epoch;
      place::ClusterState arena = by_epoch[rec.epoch]->state.clone();
      const place::Placement expect = greedy.place(queries[rec.app], arena);
      EXPECT_EQ(rec.placement.machine_of_task, expect.machine_of_task)
          << "query " << rec.app << " epoch " << rec.epoch;
    }
  }
}

}  // namespace
}  // namespace choreo::serve

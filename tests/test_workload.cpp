#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "workload/generator.h"
#include "workload/stream.h"
#include "workload/trace.h"

namespace choreo::workload {
namespace {

TEST(Generator, AllPatternsProduceValidApps) {
  Rng rng(1);
  GeneratorConfig cfg;
  for (Pattern p : {Pattern::MapReduce, Pattern::ScatterGather, Pattern::Pipeline,
                    Pattern::Star, Pattern::Uniform}) {
    for (int i = 0; i < 10; ++i) {
      const place::Application app = generate_app(rng, p, cfg);
      app.validate();
      EXPECT_GE(app.task_count(), 3u);
      EXPECT_LE(app.task_count(), cfg.max_tasks);
      EXPECT_GT(app.traffic_bytes.total(), 0.0);
      for (double c : app.cpu_demand) {
        EXPECT_GE(c, cfg.min_cpu);
        EXPECT_LE(c, cfg.max_cpu);
      }
    }
  }
}

TEST(Generator, MapReduceIsBipartite) {
  Rng rng(2);
  GeneratorConfig cfg;
  const place::Application app = generate_app(rng, Pattern::MapReduce, cfg);
  // Some split point: tasks before it only send, tasks after only receive.
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    const bool sends = app.traffic_bytes.row_sum(i) > 0.0;
    const bool receives = app.traffic_bytes.col_sum(i) > 0.0;
    EXPECT_TRUE(sends != receives) << "task " << i << " both sends and receives";
  }
}

TEST(Generator, UniformPatternHasLowVariance) {
  Rng rng(3);
  GeneratorConfig cfg;
  const place::Application app = generate_app(rng, Pattern::Uniform, cfg);
  double lo = 1e300, hi = 0.0;
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    for (std::size_t j = 0; j < app.task_count(); ++j) {
      if (i == j) continue;
      lo = std::min(lo, app.traffic_bytes(i, j));
      hi = std::max(hi, app.traffic_bytes(i, j));
    }
  }
  EXPECT_LT(hi / lo, 1.5);  // the §7.1 "relatively uniform" case
}

TEST(Generator, PipelineIsAChain) {
  Rng rng(4);
  const place::Application app = generate_app(rng, Pattern::Pipeline, GeneratorConfig{});
  std::size_t transfers = 0;
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    for (std::size_t j = 0; j < app.task_count(); ++j) {
      if (app.traffic_bytes(i, j) > 0.0) {
        ++transfers;
        EXPECT_EQ(j, i + 1);
      }
    }
  }
  EXPECT_EQ(transfers, app.task_count() - 1);
}

TEST(Generator, WeightedMixIsDeterministicPerSeed) {
  Rng a(5), b(5);
  const auto app1 = generate_app(a, GeneratorConfig{});
  const auto app2 = generate_app(b, GeneratorConfig{});
  EXPECT_EQ(app1.name, app2.name);
  EXPECT_TRUE(app1.traffic_bytes == app2.traffic_bytes);
}

TEST(Trace, GeneratesThreeWeeksOfApps) {
  TraceConfig cfg;
  cfg.apps_per_day = 24.0;
  const HpCloudTrace trace(7, cfg);
  EXPECT_GT(trace.apps().size(), 200u);  // ~500 expected over 21 days
  double last = -1.0;
  for (const TraceApp& a : trace.apps()) {
    EXPECT_GT(a.start_s, last);  // strictly ordered arrivals
    last = a.start_s;
    EXPECT_LE(a.start_s, cfg.duration_hours * 3600.0);
  }
}

TEST(Trace, SampleBatchZeroesArrivals) {
  const HpCloudTrace trace(7, TraceConfig{});
  Rng rng(9);
  const auto batch = trace.sample_batch(rng, 3);
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& app : batch) EXPECT_DOUBLE_EQ(app.arrival_s, 0.0);
}

TEST(Trace, SampleSequencePreservesOrderAndRescalesGaps) {
  const HpCloudTrace trace(7, TraceConfig{});
  Rng rng(9);
  const auto seq = trace.sample_sequence(rng, 4, /*mean_gap_s=*/60.0);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_DOUBLE_EQ(seq[0].arrival_s, 0.0);
  double total_gap = 0.0;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_GE(seq[i].arrival_s, seq[i - 1].arrival_s);
    total_gap += seq[i].arrival_s - seq[i - 1].arrival_s;
  }
  EXPECT_NEAR(total_gap / 3.0, 60.0, 1e-6);
}

TEST(Predictors, GoodOnDiurnalSeries) {
  // Build a synthetic series matching the generator's model and confirm the
  // §2.1 claim: prev-hour and time-of-day predict the next hour well.
  TraceConfig cfg;
  const HpCloudTrace trace(11, cfg);
  // Find an app with a long series.
  const TraceApp* chosen = nullptr;
  for (const TraceApp& a : trace.apps()) {
    if (a.hourly_bytes.size() > 24 * 7) {
      chosen = &a;
      break;
    }
  }
  ASSERT_NE(chosen, nullptr);
  const PredictorScore prev = score_prev_hour(chosen->hourly_bytes);
  const PredictorScore tod = score_time_of_day(chosen->hourly_bytes);
  const PredictorScore blend = score_blend(chosen->hourly_bytes);
  EXPECT_GT(prev.samples, 100u);
  // "Good predictors": well under a factor of two.
  EXPECT_LT(prev.mean_rel_error, 0.5);
  EXPECT_LT(tod.mean_rel_error, 0.8);
  EXPECT_LT(blend.mean_rel_error, 0.5);
}

TEST(Predictors, PrevHourExactOnConstantSeries) {
  const std::vector<double> flat(50, 42.0);
  EXPECT_DOUBLE_EQ(score_prev_hour(flat).mean_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(score_time_of_day(flat, 10).mean_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(score_blend(flat, 10).mean_rel_error, 0.0);
}

TEST(Predictors, EmptySeries) {
  EXPECT_EQ(score_prev_hour({}).samples, 0u);
  EXPECT_EQ(score_time_of_day({}).samples, 0u);
}

// ---- arrival streams (workload/stream.h) ----------------------------------

TEST(Streams, VectorStreamYieldsAllInOrder) {
  Rng rng(3);
  GeneratorConfig cfg;
  std::vector<place::Application> apps;
  for (int i = 0; i < 4; ++i) {
    apps.push_back(generate_app(rng, cfg));
    apps.back().arrival_s = 10.0 * i;
  }
  VectorArrivalStream stream(apps);
  for (int i = 0; i < 4; ++i) {
    const auto app = stream.next();
    ASSERT_TRUE(app.has_value());
    EXPECT_EQ(app->name, apps[static_cast<std::size_t>(i)].name);
    EXPECT_DOUBLE_EQ(app->arrival_s, 10.0 * i);
  }
  EXPECT_FALSE(stream.next().has_value());
}

TEST(Streams, TraceStreamMatchesTraceStatistics) {
  // Monotone arrivals inside the horizon, valid apps, and a Poisson count
  // within a loose band of apps_per_day * days.
  TraceConfig cfg;
  cfg.duration_hours = 7.0 * 24.0;
  cfg.apps_per_day = 24.0;
  TraceArrivalStream stream(99, cfg);
  double last = 0.0;
  std::size_t count = 0;
  while (const auto app = stream.next()) {
    app->validate();
    EXPECT_GE(app->arrival_s, last);
    EXPECT_LT(app->arrival_s, cfg.duration_hours * 3600.0);
    last = app->arrival_s;
    ++count;
  }
  EXPECT_EQ(count, stream.emitted());
  const double expected = cfg.apps_per_day * 7.0;
  EXPECT_GT(static_cast<double>(count), expected * 0.6);
  EXPECT_LT(static_cast<double>(count), expected * 1.4);

  // Same seed => identical stream (arrival-by-arrival).
  TraceArrivalStream a(123, cfg), b(123, cfg);
  for (int i = 0; i < 20; ++i) {
    const auto x = a.next();
    const auto y = b.next();
    ASSERT_EQ(x.has_value(), y.has_value());
    if (!x) break;
    EXPECT_EQ(x->arrival_s, y->arrival_s);
    EXPECT_EQ(x->name, y->name);
    EXPECT_EQ(x->cpu_demand, y->cpu_demand);
  }
}

TEST(Streams, GeneratorStreamHonorsCaps) {
  GeneratorArrivalStream::Config cfg;
  cfg.mean_gap_s = 30.0;
  cfg.max_apps = 25;
  GeneratorArrivalStream stream(7, cfg);
  double last = 0.0;
  std::size_t count = 0;
  while (const auto app = stream.next()) {
    app->validate();
    EXPECT_GE(app->arrival_s, last);
    last = app->arrival_s;
    ++count;
  }
  EXPECT_EQ(count, 25u);

  GeneratorArrivalStream::Config bounded = cfg;
  bounded.max_apps = 0;
  bounded.duration_s = 600.0;
  GeneratorArrivalStream stream2(7, bounded);
  while (const auto app = stream2.next()) EXPECT_LT(app->arrival_s, 600.0);
}

TEST(Streams, PhasedStreamAggregatesPhases) {
  PhasedArrivalStream::Config cfg;
  cfg.max_apps = 6;
  PhasedArrivalStream stream(11, cfg);
  std::size_t count = 0;
  double last = 0.0;
  while (const auto app = stream.next()) {
    app->validate();
    EXPECT_GT(app->traffic_bytes.total(), 0.0);
    EXPECT_GE(app->arrival_s, last);
    last = app->arrival_s;
    ++count;
  }
  EXPECT_EQ(count, 6u);
}

TEST(Streams, MmppModulatorIsBurstierThanPoisson) {
  // Payloads come from the inner stream; timing is replaced by a two-state
  // MMPP whose rate contrast makes inter-arrival gaps over-dispersed
  // relative to a plain Poisson process (coefficient of variation > 1).
  GeneratorArrivalStream::Config inner_cfg;
  inner_cfg.mean_gap_s = 30.0;
  inner_cfg.max_apps = 4000;
  GeneratorArrivalStream inner(21, inner_cfg);
  MmppArrivalStream::Config mmpp;
  mmpp.rate_per_s = {1.0 / 120.0, 1.0 / 5.0};
  mmpp.mean_sojourn_s = {1200.0, 300.0};
  MmppArrivalStream stream(inner, 22, mmpp);

  std::vector<double> gaps;
  double last = 0.0;
  while (const auto app = stream.next()) {
    EXPECT_GE(app->arrival_s, last);
    gaps.push_back(app->arrival_s - last);
    last = app->arrival_s;
  }
  ASSERT_GT(gaps.size(), 500u);
  double sum = 0.0;
  for (double g : gaps) sum += g;
  const double mean_gap = sum / static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean_gap) * (g - mean_gap);
  var /= static_cast<double>(gaps.size());
  const double cv = std::sqrt(var) / mean_gap;
  EXPECT_GT(cv, 1.1);

  // Determinism: same seeds => same arrival instants.
  GeneratorArrivalStream inner2(21, inner_cfg);
  MmppArrivalStream stream2(inner2, 22, mmpp);
  GeneratorArrivalStream inner3(21, inner_cfg);
  MmppArrivalStream stream3(inner3, 22, mmpp);
  for (int i = 0; i < 50; ++i) {
    const auto x = stream2.next();
    const auto y = stream3.next();
    ASSERT_EQ(x.has_value(), y.has_value());
    if (!x) break;
    EXPECT_EQ(x->arrival_s, y->arrival_s);
  }
}

}  // namespace
}  // namespace choreo::workload

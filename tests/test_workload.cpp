#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/trace.h"

namespace choreo::workload {
namespace {

TEST(Generator, AllPatternsProduceValidApps) {
  Rng rng(1);
  GeneratorConfig cfg;
  for (Pattern p : {Pattern::MapReduce, Pattern::ScatterGather, Pattern::Pipeline,
                    Pattern::Star, Pattern::Uniform}) {
    for (int i = 0; i < 10; ++i) {
      const place::Application app = generate_app(rng, p, cfg);
      app.validate();
      EXPECT_GE(app.task_count(), 3u);
      EXPECT_LE(app.task_count(), cfg.max_tasks);
      EXPECT_GT(app.traffic_bytes.total(), 0.0);
      for (double c : app.cpu_demand) {
        EXPECT_GE(c, cfg.min_cpu);
        EXPECT_LE(c, cfg.max_cpu);
      }
    }
  }
}

TEST(Generator, MapReduceIsBipartite) {
  Rng rng(2);
  GeneratorConfig cfg;
  const place::Application app = generate_app(rng, Pattern::MapReduce, cfg);
  // Some split point: tasks before it only send, tasks after only receive.
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    const bool sends = app.traffic_bytes.row_sum(i) > 0.0;
    const bool receives = app.traffic_bytes.col_sum(i) > 0.0;
    EXPECT_TRUE(sends != receives) << "task " << i << " both sends and receives";
  }
}

TEST(Generator, UniformPatternHasLowVariance) {
  Rng rng(3);
  GeneratorConfig cfg;
  const place::Application app = generate_app(rng, Pattern::Uniform, cfg);
  double lo = 1e300, hi = 0.0;
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    for (std::size_t j = 0; j < app.task_count(); ++j) {
      if (i == j) continue;
      lo = std::min(lo, app.traffic_bytes(i, j));
      hi = std::max(hi, app.traffic_bytes(i, j));
    }
  }
  EXPECT_LT(hi / lo, 1.5);  // the §7.1 "relatively uniform" case
}

TEST(Generator, PipelineIsAChain) {
  Rng rng(4);
  const place::Application app = generate_app(rng, Pattern::Pipeline, GeneratorConfig{});
  std::size_t transfers = 0;
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    for (std::size_t j = 0; j < app.task_count(); ++j) {
      if (app.traffic_bytes(i, j) > 0.0) {
        ++transfers;
        EXPECT_EQ(j, i + 1);
      }
    }
  }
  EXPECT_EQ(transfers, app.task_count() - 1);
}

TEST(Generator, WeightedMixIsDeterministicPerSeed) {
  Rng a(5), b(5);
  const auto app1 = generate_app(a, GeneratorConfig{});
  const auto app2 = generate_app(b, GeneratorConfig{});
  EXPECT_EQ(app1.name, app2.name);
  EXPECT_TRUE(app1.traffic_bytes == app2.traffic_bytes);
}

TEST(Trace, GeneratesThreeWeeksOfApps) {
  TraceConfig cfg;
  cfg.apps_per_day = 24.0;
  const HpCloudTrace trace(7, cfg);
  EXPECT_GT(trace.apps().size(), 200u);  // ~500 expected over 21 days
  double last = -1.0;
  for (const TraceApp& a : trace.apps()) {
    EXPECT_GT(a.start_s, last);  // strictly ordered arrivals
    last = a.start_s;
    EXPECT_LE(a.start_s, cfg.duration_hours * 3600.0);
  }
}

TEST(Trace, SampleBatchZeroesArrivals) {
  const HpCloudTrace trace(7, TraceConfig{});
  Rng rng(9);
  const auto batch = trace.sample_batch(rng, 3);
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& app : batch) EXPECT_DOUBLE_EQ(app.arrival_s, 0.0);
}

TEST(Trace, SampleSequencePreservesOrderAndRescalesGaps) {
  const HpCloudTrace trace(7, TraceConfig{});
  Rng rng(9);
  const auto seq = trace.sample_sequence(rng, 4, /*mean_gap_s=*/60.0);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_DOUBLE_EQ(seq[0].arrival_s, 0.0);
  double total_gap = 0.0;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_GE(seq[i].arrival_s, seq[i - 1].arrival_s);
    total_gap += seq[i].arrival_s - seq[i - 1].arrival_s;
  }
  EXPECT_NEAR(total_gap / 3.0, 60.0, 1e-6);
}

TEST(Predictors, GoodOnDiurnalSeries) {
  // Build a synthetic series matching the generator's model and confirm the
  // §2.1 claim: prev-hour and time-of-day predict the next hour well.
  TraceConfig cfg;
  const HpCloudTrace trace(11, cfg);
  // Find an app with a long series.
  const TraceApp* chosen = nullptr;
  for (const TraceApp& a : trace.apps()) {
    if (a.hourly_bytes.size() > 24 * 7) {
      chosen = &a;
      break;
    }
  }
  ASSERT_NE(chosen, nullptr);
  const PredictorScore prev = score_prev_hour(chosen->hourly_bytes);
  const PredictorScore tod = score_time_of_day(chosen->hourly_bytes);
  const PredictorScore blend = score_blend(chosen->hourly_bytes);
  EXPECT_GT(prev.samples, 100u);
  // "Good predictors": well under a factor of two.
  EXPECT_LT(prev.mean_rel_error, 0.5);
  EXPECT_LT(tod.mean_rel_error, 0.8);
  EXPECT_LT(blend.mean_rel_error, 0.5);
}

TEST(Predictors, PrevHourExactOnConstantSeries) {
  const std::vector<double> flat(50, 42.0);
  EXPECT_DOUBLE_EQ(score_prev_hour(flat).mean_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(score_time_of_day(flat, 10).mean_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(score_blend(flat, 10).mean_rel_error, 0.0);
}

TEST(Predictors, EmptySeries) {
  EXPECT_EQ(score_prev_hour({}).samples, 0u);
  EXPECT_EQ(score_time_of_day({}).samples, 0u);
}

}  // namespace
}  // namespace choreo::workload

// Differential battery pinning the incremental placement engine to the
// exhaustive-scan oracle: over a randomized corpus (fleet sizes, rate
// models, CPU limits, colocated pairs, cross traffic, constraints), the
// PlacementEngine-backed GreedyPlacer must produce *bit-identical*
// placements and completion estimates to ExhaustiveGreedyPlacer, its O(1)
// cached rates must equal transfer_rate_bps exactly, and the incremental
// state maintenance (Txn rollback, update_view, clone_unoccupied) must be
// indistinguishable from rebuild-and-replay.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "place/baselines.h"
#include "place/engine.h"
#include "place/greedy.h"
#include "place/rate_model.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/generator.h"

namespace choreo::place {
namespace {

using units::mbps;

/// A corpus cluster: random rates, a few colocated pairs, optional cross
/// traffic, mixed core counts, and a hop matrix so latency constraints can
/// bind.
ClusterView corpus_cluster(Rng& rng, std::size_t machines) {
  ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j) {
        view.rate_bps(i, j) = rng.chance(0.25) ? rng.uniform(mbps(200), mbps(900))
                                               : rng.uniform(mbps(900), mbps(1200));
      }
    }
  }
  // Co-locate ~1/4 of the fleet in pairs (consecutive indices share a host).
  view.colocation_group.resize(machines);
  int group = 0;
  for (std::size_t m = 0; m < machines; ++m) {
    view.colocation_group[m] = group;
    const bool pair_with_next = m + 1 < machines && m % 4 == 0 && rng.chance(0.7);
    if (!pair_with_next) ++group;
  }
  if (rng.chance(0.6)) {
    view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
    for (std::size_t i = 0; i < machines; ++i) {
      for (std::size_t j = 0; j < machines; ++j) {
        if (i != j && rng.chance(0.3)) view.cross_traffic(i, j) = rng.uniform(0.0, 3.0);
      }
    }
  }
  view.hops = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i == j) continue;
      view.hops(i, j) = view.colocated(i, j) ? 1.0 : (rng.chance(0.5) ? 2.0 : 4.0);
    }
  }
  view.cores.resize(machines);
  for (double& c : view.cores) c = rng.chance(0.3) ? 2.0 : (rng.chance(0.5) ? 4.0 : 8.0);
  return view;
}

Application corpus_app(Rng& rng, std::size_t machines) {
  workload::GeneratorConfig gen;
  gen.min_tasks = 3;
  gen.max_tasks = 9;
  gen.max_cpu = 2.0;
  Application app = workload::generate_app(rng, gen);
  // Sometimes attach constraints so the constrained code paths diverge if
  // the engine mishandles them.
  if (rng.chance(0.3) && app.task_count() >= 2) {
    app.constraints.separate.push_back({0, app.task_count() - 1});
  }
  if (rng.chance(0.2)) {
    app.constraints.pinned[app.task_count() / 2] =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(machines) - 1));
  }
  if (rng.chance(0.2) && app.task_count() >= 3) {
    app.constraints.latency.push_back({1, 2, 2});
  }
  return app;
}

/// Places with both implementations on the same state; asserts identical
/// outcomes (including agreeing on infeasibility) and returns the placement
/// when one exists.
std::optional<Placement> place_both(const Application& app, const ClusterState& state,
                                    RateModel model) {
  GreedyPlacer engine_backed(model);
  ExhaustiveGreedyPlacer oracle(model);
  Placement pe, po;
  bool engine_threw = false, oracle_threw = false;
  try {
    po = oracle.place(app, state);
  } catch (const PlacementError&) {
    oracle_threw = true;
  }
  try {
    pe = engine_backed.place(app, state);
  } catch (const PlacementError&) {
    engine_threw = true;
  }
  EXPECT_EQ(engine_threw, oracle_threw) << "feasibility verdicts diverge";
  if (engine_threw || oracle_threw) return std::nullopt;
  EXPECT_EQ(pe.machine_of_task, po.machine_of_task) << "placements diverge";
  // With identical placements the (shared, uncached) objective yields the
  // same double by construction; estimate drift between the engine's cached
  // rates and the uncached path is what CachedRatesEqualUncachedRates pins.
  return pe;
}

class EngineDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineDifferential, SequentialArrivalsBitIdentical) {
  Rng rng(GetParam());
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(4, 28));
  ClusterState state(corpus_cluster(rng, machines));
  const RateModel model = rng.chance(0.5) ? RateModel::Hose : RateModel::Pipe;

  // A short arrival sequence: each app is placed by both implementations on
  // the *same* residual state, then committed, so later apps see the
  // contention earlier ones created.
  std::vector<std::pair<Application, Placement>> committed;
  for (int a = 0; a < 4; ++a) {
    const Application app = corpus_app(rng, machines);
    const auto placement = place_both(app, state, model);
    if (placement) {
      state.commit(app, *placement);
      committed.push_back({app, *placement});
    }
  }
  // Releasing the oldest app and re-placing is the migration-shaped path.
  if (committed.size() >= 2) {
    state.release(committed.front().first, committed.front().second);
    place_both(committed.front().first, state, model);
  }
}

TEST_P(EngineDifferential, CachedRatesEqualUncachedRates) {
  Rng rng(GetParam() + 1000);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(3, 16));
  ClusterState state(corpus_cluster(rng, machines));

  // Exercise non-trivial residual loads.
  GreedyPlacer greedy(RateModel::Hose);
  for (int a = 0; a < 2; ++a) {
    const Application app = corpus_app(rng, machines);
    try {
      state.commit(app, greedy.place(app, state));
    } catch (const PlacementError&) {
    }
  }

  const PlacementEngine& eng = state.engine();
  for (std::size_t m = 0; m < machines; ++m) {
    EXPECT_EQ(eng.hose_bps(m), state.view().hose_bps(m));
    EXPECT_EQ(eng.hose_cross_out_of(m), hose_cross_out(state.view(), m));
    for (std::size_t n = 0; n < machines; ++n) {
      for (const RateModel model : {RateModel::Hose, RateModel::Pipe}) {
        EXPECT_EQ(eng.rate_bps(m, n, model),
                  transfer_rate_bps(state.view(), m, n, model,
                                    state.transfers_on_path(m, n),
                                    state.transfers_out_of(m)));
      }
    }
  }
}

TEST_P(EngineDifferential, RankedListsDescendAndCoverAllMachines) {
  Rng rng(GetParam() + 2000);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(3, 16));
  ClusterState state(corpus_cluster(rng, machines));
  const PlacementEngine& eng = state.engine();
  for (std::size_t m = 0; m < machines; ++m) {
    std::vector<bool> seen_dest(machines, false), seen_src(machines, false);
    for (std::size_t k = 0; k < machines; ++k) {
      const std::size_t d = eng.ranked_dest(m, k);
      const std::size_t s = eng.ranked_src(m, k);
      seen_dest[d] = true;
      seen_src[s] = true;
      if (k > 0) {
        EXPECT_GE(eng.upper_bound_bps(m, eng.ranked_dest(m, k - 1)),
                  eng.upper_bound_bps(m, d));
        EXPECT_GE(eng.upper_bound_bps(eng.ranked_src(m, k - 1), m),
                  eng.upper_bound_bps(s, m));
      }
      // The static bound really bounds every residual rate.
      for (const RateModel model : {RateModel::Hose, RateModel::Pipe}) {
        EXPECT_LE(eng.rate_bps(m, d, model), eng.upper_bound_bps(m, d));
      }
    }
    EXPECT_TRUE(std::all_of(seen_dest.begin(), seen_dest.end(), [](bool b) { return b; }));
    EXPECT_TRUE(std::all_of(seen_src.begin(), seen_src.end(), [](bool b) { return b; }));
  }
}

TEST_P(EngineDifferential, PlacersLeaveStateUntouched) {
  Rng rng(GetParam() + 3000);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(4, 12));
  ClusterState state(corpus_cluster(rng, machines));
  GreedyPlacer greedy(RateModel::Hose);
  const Application base = corpus_app(rng, machines);
  try {
    state.commit(base, greedy.place(base, state));
  } catch (const PlacementError&) {
  }

  const auto snapshot = [&] {
    std::vector<double> s;
    for (std::size_t m = 0; m < machines; ++m) {
      s.push_back(state.free_cores(m));
      s.push_back(state.transfers_out_of(m));
      for (std::size_t n = 0; n < machines; ++n) s.push_back(state.transfers_on_path(m, n));
    }
    return s;
  };

  const std::vector<double> before = snapshot();
  const Application app = corpus_app(rng, machines);
  GreedyPlacer hose(RateModel::Hose), pipe(RateModel::Pipe);
  RandomPlacer random(GetParam());
  RoundRobinPlacer rr;
  MinMachinesPlacer mm;
  for (Placer* placer : {static_cast<Placer*>(&hose), static_cast<Placer*>(&pipe),
                         static_cast<Placer*>(&random), static_cast<Placer*>(&rr),
                         static_cast<Placer*>(&mm)}) {
    try {
      placer->place(app, state);
    } catch (const PlacementError&) {
    }
    EXPECT_EQ(snapshot(), before) << placer->name() << " leaked tentative state";
  }
}

TEST_P(EngineDifferential, UpdateViewEqualsRebuildAndReplay) {
  Rng rng(GetParam() + 4000);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(4, 14));
  ClusterState incremental(corpus_cluster(rng, machines));
  GreedyPlacer greedy(RateModel::Hose);

  std::vector<std::pair<Application, Placement>> committed;
  for (int a = 0; a < 3; ++a) {
    const Application app = corpus_app(rng, machines);
    try {
      const Placement p = greedy.place(app, incremental);
      incremental.commit(app, p);
      committed.push_back({app, p});
    } catch (const PlacementError&) {
    }
  }

  // A fresh measurement of the same fleet: different rates, cross traffic,
  // and even a different colocation clustering — but the same machines, so
  // the same CPU capacities.
  ClusterView refreshed = corpus_cluster(rng, machines);
  refreshed.cores = incremental.view().cores;
  incremental.update_view(refreshed);
  ClusterState replayed(refreshed);
  for (const auto& [app, p] : committed) replayed.commit(app, p);

  for (std::size_t m = 0; m < machines; ++m) {
    EXPECT_EQ(incremental.free_cores(m), replayed.free_cores(m));
    EXPECT_EQ(incremental.transfers_out_of(m), replayed.transfers_out_of(m));
    for (std::size_t n = 0; n < machines; ++n) {
      EXPECT_EQ(incremental.transfers_on_path(m, n), replayed.transfers_on_path(m, n));
    }
  }
  // And the next placement decision is identical on both states.
  const Application next = corpus_app(rng, machines);
  for (const RateModel model : {RateModel::Hose, RateModel::Pipe}) {
    GreedyPlacer g(model);
    Placement pi, pr;
    bool ti = false, tr = false;
    try {
      pi = g.place(next, incremental);
    } catch (const PlacementError&) {
      ti = true;
    }
    try {
      pr = g.place(next, replayed);
    } catch (const PlacementError&) {
      tr = true;
    }
    EXPECT_EQ(ti, tr);
    if (!ti && !tr) {
      EXPECT_EQ(pi.machine_of_task, pr.machine_of_task);
    }
  }
}

TEST_P(EngineDifferential, CloneUnoccupiedEqualsFreshState) {
  Rng rng(GetParam() + 5000);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(4, 12));
  const ClusterView view = corpus_cluster(rng, machines);
  ClusterState occupied(view);
  GreedyPlacer greedy(RateModel::Hose);
  const Application app = corpus_app(rng, machines);
  try {
    occupied.commit(app, greedy.place(app, occupied));
  } catch (const PlacementError&) {
  }

  const ClusterState scratch = occupied.clone_unoccupied();
  const ClusterState fresh(view);
  for (std::size_t m = 0; m < machines; ++m) {
    EXPECT_EQ(scratch.free_cores(m), fresh.free_cores(m));
    EXPECT_EQ(scratch.transfers_out_of(m), 0.0);
  }
  const Application next = corpus_app(rng, machines);
  try {
    const Placement ps = greedy.place(next, scratch);
    const Placement pf = greedy.place(next, fresh);
    EXPECT_EQ(ps.machine_of_task, pf.machine_of_task);
  } catch (const PlacementError&) {
  }
}

// Pins the hoisted cross-traffic subexpression in rebuild_static (and the
// mirrored fast path in rate_bps): the cached static bound must equal the
// pre-hoist formula literal for literal — the max of the measured rate and
// the residual pipe rate of the un-shared path capacity with zero placed
// transfers. Any reassociation of the hoisted arithmetic breaks this
// bit-identity.
TEST_P(EngineDifferential, UpperBoundsEqualUnhoistedFormula) {
  Rng rng(GetParam() + 6000);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(3, 16));
  ClusterState state(corpus_cluster(rng, machines));
  const PlacementEngine& eng = state.engine();
  const ClusterView& view = state.view();
  for (std::size_t m = 0; m < machines; ++m) {
    for (std::size_t n = 0; n < machines; ++n) {
      if (m == n) continue;
      const double c = view.cross_traffic.empty() ? 0.0 : view.cross_traffic(m, n);
      const double expect = std::max(
          view.rate_bps(m, n),
          residual::pipe_rate_bps(view.path_capacity_bps(m, n), c, 0.0));
      EXPECT_EQ(eng.upper_bound_bps(m, n), expect);
    }
  }
}

// The serving plane's full copy: a clone must be indistinguishable from the
// original (same residuals, same next placement decision) and isolated from
// it (mutating one leaves the other untouched).
TEST_P(EngineDifferential, CloneEqualsOriginalAndIsIsolated) {
  Rng rng(GetParam() + 7000);
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(4, 12));
  ClusterState original(corpus_cluster(rng, machines));
  GreedyPlacer greedy(RateModel::Hose);
  for (int a = 0; a < 2; ++a) {
    const Application app = corpus_app(rng, machines);
    try {
      original.commit(app, greedy.place(app, original));
    } catch (const PlacementError&) {
    }
  }

  ClusterState copy = original.clone();
  for (std::size_t m = 0; m < machines; ++m) {
    EXPECT_EQ(copy.free_cores(m), original.free_cores(m));
    EXPECT_EQ(copy.transfers_out_of(m), original.transfers_out_of(m));
    for (std::size_t n = 0; n < machines; ++n) {
      EXPECT_EQ(copy.transfers_on_path(m, n), original.transfers_on_path(m, n));
    }
  }

  const Application next = corpus_app(rng, machines);
  std::optional<Placement> pc, po;
  try {
    pc = greedy.place(next, copy);
  } catch (const PlacementError&) {
  }
  try {
    po = greedy.place(next, original);
  } catch (const PlacementError&) {
  }
  ASSERT_EQ(pc.has_value(), po.has_value());
  if (pc) {
    EXPECT_EQ(pc->machine_of_task, po->machine_of_task);
    // Isolation: committing into the clone leaves the original untouched.
    const double before = original.transfers_out_of(pc->machine_of_task[0]);
    copy.commit(next, *pc);
    EXPECT_EQ(original.transfers_out_of(pc->machine_of_task[0]), before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferential, ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace choreo::place

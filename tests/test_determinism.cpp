// End-to-end determinism: every stochastic component is seeded, so a full
// measure -> place -> execute pipeline must be bit-reproducible for one seed
// and (almost surely) different across seeds. This is what makes every bench
// row in EXPERIMENTS.md regenerable.

#include <gtest/gtest.h>

#include "core/choreo.h"
#include "measure/throughput_matrix.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace choreo {
namespace {

struct PipelineResult {
  std::vector<double> rates;
  std::vector<std::size_t> machines;
  double makespan = 0.0;
};

PipelineResult run_pipeline(std::uint64_t seed) {
  cloud::Cloud c(cloud::ec2_2013(), seed);
  const auto vms = c.allocate_vms(6);
  core::ChoreoConfig config;
  config.plan.train.bursts = 5;
  config.plan.train.burst_length = 100;
  core::Choreo choreo(c, vms, config);
  choreo.measure_network(1);

  Rng rng(seed * 13 + 1);
  workload::GeneratorConfig gen;
  gen.max_tasks = 5;
  gen.max_cpu = 2.0;
  const place::Application app = workload::generate_app(rng, gen);
  const auto handle = choreo.place_application(app);

  PipelineResult out;
  const place::ClusterView& view = choreo.view();
  for (std::size_t i = 0; i < vms.size(); ++i) {
    for (std::size_t j = 0; j < vms.size(); ++j) {
      if (i != j) out.rates.push_back(view.rate_bps(i, j));
    }
  }
  out.machines = choreo.placement_of(handle).machine_of_task;
  out.makespan =
      c.execute(choreo.transfers_for(app, choreo.placement_of(handle), 0.0), 2).makespan_s;
  return out;
}

TEST(Determinism, IdenticalSeedsIdenticalPipeline) {
  const PipelineResult a = run_pipeline(31);
  const PipelineResult b = run_pipeline(31);
  ASSERT_EQ(a.rates.size(), b.rates.size());
  for (std::size_t i = 0; i < a.rates.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rates[i], b.rates[i]);
  }
  EXPECT_EQ(a.machines, b.machines);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Determinism, DifferentSeedsDiffer) {
  const PipelineResult a = run_pipeline(31);
  const PipelineResult b = run_pipeline(32);
  bool any_rate_differs = false;
  for (std::size_t i = 0; i < std::min(a.rates.size(), b.rates.size()); ++i) {
    if (a.rates[i] != b.rates[i]) any_rate_differs = true;
  }
  EXPECT_TRUE(any_rate_differs);
}

TEST(Determinism, TraceIsReproducible) {
  const workload::HpCloudTrace t1(5, workload::TraceConfig{});
  const workload::HpCloudTrace t2(5, workload::TraceConfig{});
  ASSERT_EQ(t1.apps().size(), t2.apps().size());
  for (std::size_t i = 0; i < t1.apps().size(); i += 17) {
    EXPECT_DOUBLE_EQ(t1.apps()[i].start_s, t2.apps()[i].start_s);
    EXPECT_TRUE(t1.apps()[i].app.traffic_bytes == t2.apps()[i].app.traffic_bytes);
  }
}

// §4.1 parallel measurement must be a pure wall-clock optimization: running
// one round's trains on a worker pool yields byte-identical rate matrices to
// running them one after another, because every train's noise derives from
// (seed, epoch, src, dst) rather than from shared RNG state or scheduling
// order.
TEST(Determinism, ParallelProbingMatchesSequentialBitForBit) {
  const auto measure_with_workers = [](unsigned workers) {
    cloud::Cloud c(cloud::ec2_2013(), 53);
    const auto vms = c.allocate_vms(8);
    measure::MeasurementPlan plan;
    plan.train.bursts = 5;
    plan.train.burst_length = 100;
    plan.workers = workers;
    return measure::measure_rate_matrix(c, vms, plan, /*epoch=*/3);
  };
  const measure::MatrixResult seq = measure_with_workers(1);
  const measure::MatrixResult par = measure_with_workers(4);
  ASSERT_EQ(seq.rate_bps.rows(), par.rate_bps.rows());
  EXPECT_TRUE(seq.rate_bps == par.rate_bps);  // exact, not approximate
  EXPECT_EQ(seq.rounds, par.rounds);
  EXPECT_EQ(seq.pairs_measured, par.pairs_measured);
  EXPECT_DOUBLE_EQ(seq.wall_time_s, par.wall_time_s);

  // And again, to pin that the parallel path itself is run-to-run stable.
  const measure::MatrixResult par2 = measure_with_workers(4);
  EXPECT_TRUE(par.rate_bps == par2.rate_bps);
}

TEST(Determinism, ExecutionEpochsMatter) {
  // Use a congested profile (heavy biased background) so that background
  // realizations actually shape tenant flows — the stock EC2 profile is
  // hose-limited almost everywhere, by design.
  cloud::ProviderProfile profile = cloud::ec2_2013();
  profile.bg_flow_count = 80;
  profile.bg_rate_cap_bps = 3e9;
  profile.bg_core_bias = 1.0;
  cloud::Cloud c(profile, 77);
  const auto vms = c.allocate_vms(8);
  std::vector<cloud::Cloud::Transfer> transfers;
  for (std::size_t i = 0; i + 1 < vms.size(); i += 2) {
    transfers.push_back({vms[i], vms[i + 1], 2e9, 0.0});
  }
  const auto r1 = c.execute(transfers, 1);
  const auto r1b = c.execute(transfers, 1);
  const auto r2 = c.execute(transfers, 2);
  EXPECT_DOUBLE_EQ(r1.makespan_s, r1b.makespan_s);  // same epoch: same background
  bool any_differs = r1.makespan_s != r2.makespan_s;
  for (std::size_t k = 0; k < r1.completion_s.size(); ++k) {
    if (r1.completion_s[k] != r2.completion_s[k]) any_differs = true;
  }
  EXPECT_TRUE(any_differs);  // fresh background realization
}

}  // namespace
}  // namespace choreo

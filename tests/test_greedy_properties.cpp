// Property sweeps on Algorithm 1 over random clusters and workloads: CPU
// safety, determinism, monotonicity in network quality, and dominance of
// network-aware placement on skew-heavy workloads.

#include <gtest/gtest.h>

#include <algorithm>

#include "place/baselines.h"
#include "place/greedy.h"
#include "place/ilp.h"
#include "place/rate_model.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/generator.h"

namespace choreo::place {
namespace {

using units::mbps;

ClusterView random_cluster(Rng& rng, std::size_t machines) {
  ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j) {
        view.rate_bps(i, j) = rng.chance(0.2) ? rng.uniform(mbps(300), mbps(900))
                                              : rng.uniform(mbps(900), mbps(1100));
      }
    }
  }
  view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
  view.cores.assign(machines, 4.0);
  view.colocation_group.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) view.colocation_group[m] = static_cast<int>(m);
  return view;
}

class GreedySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedySweep, CpuNeverViolatedAndDeterministic) {
  Rng rng(GetParam());
  const std::size_t machines = static_cast<std::size_t>(rng.uniform_int(4, 12));
  const ClusterView view = random_cluster(rng, machines);
  ClusterState state(view);

  workload::GeneratorConfig gen;
  gen.min_tasks = 4;
  gen.max_tasks = 9;
  gen.max_cpu = 2.5;
  const Application app = workload::generate_app(rng, gen);

  GreedyPlacer greedy(rng.chance(0.5) ? RateModel::Hose : RateModel::Pipe);
  Placement p1, p2;
  try {
    p1 = greedy.place(app, state);
    p2 = greedy.place(app, state);
  } catch (const PlacementError&) {
    GTEST_SKIP() << "instance infeasible";
  }
  // Determinism: same inputs, same placement.
  EXPECT_EQ(p1.machine_of_task, p2.machine_of_task);
  // CPU safety.
  std::vector<double> used(machines, 0.0);
  for (std::size_t t = 0; t < app.task_count(); ++t) {
    used[p1.machine_of_task[t]] += app.cpu_demand[t];
  }
  for (std::size_t m = 0; m < machines; ++m) {
    EXPECT_LE(used[m], view.cores[m] + 1e-6);
  }
  // Committing must be accepted by the state (internal invariants hold).
  state.commit(app, p1);
  state.release(app, p1);
}

TEST_P(GreedySweep, BeatsRandomOnSkewedWorkloads) {
  Rng rng(GetParam() + 5000);
  const ClusterView view = random_cluster(rng, 8);
  ClusterState state(view);

  workload::GeneratorConfig gen;
  gen.min_tasks = 6;
  gen.max_tasks = 8;
  gen.max_cpu = 2.0;
  gen.pattern_weights = {0.5, 0.3, 0.0, 0.2, 0.0};  // skew-heavy patterns only
  const Application app = workload::generate_app(rng, gen);

  GreedyPlacer greedy(RateModel::Hose);
  RandomPlacer random(GetParam());
  try {
    const Placement pg = greedy.place(app, state);
    const double tg = estimate_completion_s(app, pg, view, RateModel::Hose);
    // Average random over a few draws for a stable comparison.
    double tr_sum = 0.0;
    for (int k = 0; k < 5; ++k) {
      tr_sum += estimate_completion_s(app, random.place(app, state), view,
                                      RateModel::Hose);
    }
    EXPECT_LE(tg, tr_sum / 5.0 + 1e-9)
        << "greedy worse than mean random placement";
  } catch (const PlacementError&) {
    GTEST_SKIP() << "instance infeasible";
  }
}

TEST_P(GreedySweep, FasterNetworkNeverHurtsEstimate) {
  Rng rng(GetParam() + 9000);
  ClusterView view = random_cluster(rng, 6);
  ClusterState state(view);
  workload::GeneratorConfig gen;
  gen.min_tasks = 4;
  gen.max_tasks = 6;
  gen.max_cpu = 2.0;
  const Application app = workload::generate_app(rng, gen);

  GreedyPlacer greedy(RateModel::Hose);
  Placement base;
  try {
    base = greedy.place(app, state);
  } catch (const PlacementError&) {
    GTEST_SKIP() << "instance infeasible";
  }
  const double t_base = estimate_completion_s(app, base, view, RateModel::Hose);

  // Uniformly doubling every path rate must halve the (same placement's)
  // estimate, and the re-placed estimate can only be <= that.
  ClusterView fast = view;
  for (std::size_t i = 0; i < view.machine_count(); ++i) {
    for (std::size_t j = 0; j < view.machine_count(); ++j) {
      if (i != j) fast.rate_bps(i, j) = view.rate_bps(i, j) * 2.0;
    }
  }
  EXPECT_NEAR(estimate_completion_s(app, base, fast, RateModel::Hose), t_base / 2.0,
              t_base * 1e-9);
  ClusterState fast_state(fast);
  const Placement replaced = greedy.place(app, fast_state);
  EXPECT_LE(estimate_completion_s(app, replaced, fast, RateModel::Hose),
            t_base / 2.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedySweep, ::testing::Range<std::uint64_t>(0, 25));

// --- Small-instance optimality harness (§5.2) ---------------------------
//
// Exhaustive sweep over tiny instances (<= 4 tasks, <= 3 machines, several
// seeds, both rate models): the optimal placement is computed exactly by
// place::IlpPlacer (cross-checked against BruteForcePlacer), and greedy's
// completion time is pinned against it. The paper observes a 13% *median*
// greedy-over-optimal gap (§5: "median completion time with the greedy
// algorithm was only 13% more than ... the optimal algorithm"); the bounds
// here have headroom over what this corpus measures, so a regression in the
// greedy search (e.g. a broken candidate pruning) trips the test while
// legitimate tie-break noise does not.

TEST(GreedyOptimality, SmallInstanceSweepAgainstIlp) {
  std::vector<double> ratios;
  std::size_t exact = 0, instances = 0;

  for (std::size_t machines = 2; machines <= 3; ++machines) {
    for (std::size_t tasks = 2; tasks <= 4; ++tasks) {
      for (std::uint64_t seed = 0; seed < 6; ++seed) {
        Rng rng(seed * 977 + machines * 31 + tasks);
        const ClusterView view = random_cluster(rng, machines);
        ClusterState state(view);

        Application app;
        app.name = "tiny";
        app.cpu_demand.resize(tasks);
        for (double& c : app.cpu_demand) c = rng.chance(0.5) ? 1.0 : 2.0;
        app.traffic_bytes = DoubleMatrix(tasks, tasks, 0.0);
        for (std::size_t i = 0; i < tasks; ++i) {
          for (std::size_t j = 0; j < tasks; ++j) {
            if (i != j && rng.chance(0.5)) {
              app.traffic_bytes(i, j) = rng.uniform(1e7, 5e8);
            }
          }
        }
        if (app.traffic_bytes.total() == 0.0) app.traffic_bytes(0, tasks - 1) = 1e8;

        const RateModel model = rng.chance(0.5) ? RateModel::Hose : RateModel::Pipe;
        BruteForcePlacer brute(model);
        Placement pb;
        try {
          pb = brute.place(app, state);
        } catch (const PlacementError&) {
          continue;  // CPU-infeasible corner of the grid
        }
        const double tb = estimate_completion_s(app, pb, view, model);

        // ILP == brute force on instances this small.
        IlpPlacer ilp(model);
        const Placement pi = ilp.place(app, state);
        const double ti = estimate_completion_s(app, pi, view, model);
        EXPECT_NEAR(ti, tb, tb * 1e-6 + 1e-9);

        GreedyPlacer greedy(model);
        const Placement pg = greedy.place(app, state);
        const double tg = estimate_completion_s(app, pg, view, model);
        ++instances;

        // Optimality is a hard lower bound.
        EXPECT_GE(tg, tb * (1.0 - 1e-9) - 1e-9);
        if (tb <= 1e-9) {
          // An all-colocatable instance: greedy must find the free placement
          // too, or something is badly wrong with the intra-machine path.
          EXPECT_LE(tg, 1e-9);
          ratios.push_back(1.0);
        } else {
          const double ratio = tg / tb;
          ratios.push_back(ratio);
          // Per-instance cap: Fig 9 shows greedy can lose by ~4.5x on
          // crafted instances; random tiny instances stay far below that.
          EXPECT_LE(ratio, 4.0) << "machines=" << machines << " tasks=" << tasks
                                << " seed=" << seed;
        }
        if (ratios.back() <= 1.0 + 1e-9) ++exact;
      }
    }
  }

  ASSERT_GE(instances, 20u);
  std::sort(ratios.begin(), ratios.end());
  const double median = ratios[ratios.size() / 2];
  // Paper: 13% median gap on 10-machine instances; tiny instances are
  // easier, so the median must stay well inside that band.
  EXPECT_LE(median, 1.15);
  // Greedy should hit the exact optimum on a solid fraction of instances.
  EXPECT_GE(static_cast<double>(exact) / static_cast<double>(instances), 0.4);
}

}  // namespace
}  // namespace choreo::place

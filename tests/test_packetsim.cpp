#include <gtest/gtest.h>

#include "packetsim/cross_traffic.h"
#include "packetsim/event_queue.h"
#include "packetsim/link.h"
#include "packetsim/path.h"
#include "packetsim/sink.h"
#include "packetsim/token_bucket.h"
#include "packetsim/udp_train.h"

namespace choreo::packetsim {
namespace {

TEST(EventQueue, OrdersByTimeThenFifo) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });  // same time: insertion order
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, CallbacksMaySchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsEarly) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_THROW(q.schedule(1.5, [] {}), PreconditionError);
}

Packet make_packet(std::uint64_t seq, std::uint32_t bytes) {
  Packet p;
  p.seq = seq;
  p.wire_bytes = bytes;
  return p;
}

TEST(Link, SerializationAndDelay) {
  EventQueue q;
  RecordingSink sink;
  // 1 Mbit/s, 1 ms delay: a 1250-byte packet takes 10 ms to serialize.
  Link link(q, 1e6, 1e-3, 1e6, &sink);
  link.receive(make_packet(0, 1250), 0.0);
  q.run();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_NEAR(sink.records()[0].time, 0.010 + 0.001, 1e-12);
}

TEST(Link, BackToBackPacketsQueue) {
  EventQueue q;
  RecordingSink sink;
  Link link(q, 1e6, 0.0, 1e6, &sink);
  link.receive(make_packet(0, 1250), 0.0);
  link.receive(make_packet(1, 1250), 0.0);
  q.run();
  ASSERT_EQ(sink.count(), 2u);
  EXPECT_NEAR(sink.records()[0].time, 0.010, 1e-12);
  EXPECT_NEAR(sink.records()[1].time, 0.020, 1e-12);
  EXPECT_EQ(link.drops(), 0u);
}

TEST(Link, DropTailWhenFull) {
  EventQueue q;
  RecordingSink sink;
  // Buffer of 2500 bytes counts the packet in service: the first two packets
  // fit, the remaining three drop.
  Link link(q, 1e6, 0.0, 2500, &sink);
  for (std::uint64_t i = 0; i < 5; ++i) link.receive(make_packet(i, 1250), 0.0);
  q.run();
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(link.drops(), 3u);
}

TEST(TokenBucket, PassesWithinDepthImmediately) {
  EventQueue q;
  RecordingSink sink;
  TokenBucket tb(q, 1e6, 10000, &sink);
  tb.receive(make_packet(0, 1000), 0.0);
  q.run();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_DOUBLE_EQ(sink.records()[0].time, 0.0);
}

TEST(TokenBucket, ShapesSustainedLoadToTokenRate) {
  EventQueue q;
  RecordingSink sink;
  // 8 Mbit/s => 1000 bytes per ms. Depth one packet.
  TokenBucket tb(q, 8e6, 1000, &sink);
  for (std::uint64_t i = 0; i < 11; ++i) tb.receive(make_packet(i, 1000), 0.0);
  q.run();
  ASSERT_EQ(sink.count(), 11u);
  // First passes at t=0 on the full bucket; each next waits ~1 ms of refill
  // (plus the bucket's nanosecond anti-livelock slack).
  EXPECT_NEAR(sink.records()[10].time, 0.010, 1e-6);
  // Long-run rate == token rate.
  const double rate = 10.0 * 1000 * 8 / sink.records()[10].time;
  EXPECT_NEAR(rate, 8e6, 1e3);
}

TEST(TokenBucket, IdleResetRestoresBurstAllowance) {
  EventQueue q;
  RecordingSink sink;
  TokenBucket tb(q, 8e6, 3000, &sink, /*idle_reset_s=*/0.5e-3);
  // Burst of 3 drains the bucket.
  for (std::uint64_t i = 0; i < 3; ++i) tb.receive(make_packet(i, 1000), 0.0);
  q.run();
  ASSERT_EQ(sink.count(), 3u);
  EXPECT_DOUBLE_EQ(sink.records()[2].time, 0.0);
  // After 1 ms idle (> reset), a new burst passes immediately again.
  q.schedule(1e-3, [&] {
    for (std::uint64_t i = 3; i < 6; ++i) tb.receive(make_packet(i, 1000), q.now());
  });
  q.run();
  ASSERT_EQ(sink.count(), 6u);
  EXPECT_DOUBLE_EQ(sink.records()[5].time, 1e-3);
}

TEST(TokenBucket, WithoutIdleResetOnlyPartialRefill) {
  EventQueue q;
  RecordingSink sink;
  TokenBucket tb(q, 8e6, 3000, &sink, /*idle_reset_s=*/-1.0);
  for (std::uint64_t i = 0; i < 3; ++i) tb.receive(make_packet(i, 1000), 0.0);
  q.run();
  // 1 ms of refill = 1000 bytes only: the second burst's last packets wait.
  q.schedule(1e-3, [&] {
    for (std::uint64_t i = 3; i < 6; ++i) tb.receive(make_packet(i, 1000), q.now());
  });
  q.run();
  ASSERT_EQ(sink.count(), 6u);
  EXPECT_GT(sink.records()[5].time, 2e-3);
}

TEST(UdpTrain, EmitsAllPacketsWithBurstStructure) {
  EventQueue q;
  RecordingSink sink;
  TrainParams params;
  params.bursts = 3;
  params.burst_length = 5;
  params.packet_bytes = 1472;
  params.inter_burst_gap_s = 1e-3;
  params.line_rate_bps = 1e9;
  send_train(q, sink, params, 1, 0.0);
  q.run();
  ASSERT_EQ(sink.count(), 15u);
  // Sequence numbers are global and bursts stamped.
  EXPECT_EQ(sink.records()[0].burst, 0u);
  EXPECT_EQ(sink.records()[14].burst, 2u);
  EXPECT_EQ(sink.records()[14].seq, 14u);
  // Inter-burst gap visible in timestamps.
  const double burst0_end = sink.records()[4].time;
  const double burst1_start = sink.records()[5].time;
  EXPECT_GE(burst1_start - burst0_end, 1e-3 * 0.99);
}

TEST(UdpTrain, ThroughTokenBucketApproachesTokenRate) {
  EventQueue q;
  RecordingSink sink;
  TokenBucket tb(q, 100e6, 8e3, &sink);  // shallow bucket
  TrainParams params;
  params.bursts = 5;
  params.burst_length = 200;
  params.line_rate_bps = 4e9;
  send_train(q, tb, params, 1, 0.0);
  q.run();
  ASSERT_EQ(sink.count(), 1000u);
  // Per-burst receive rate should be near the token rate.
  const auto& rec = sink.records();
  double t0 = -1, t1 = -1;
  for (const auto& r : rec) {
    if (r.burst == 1 && t0 < 0) t0 = r.time;
    if (r.burst == 1) t1 = r.time;
  }
  const double burst_bytes = 199.0 * 1500.0;  // first-to-last spans B-1 packets
  const double rate = burst_bytes * 8.0 / (t1 - t0);
  EXPECT_NEAR(rate, 100e6, 8e6);
}

TEST(CrossTrafficSource, RespectsLoadWhenAlwaysOn) {
  EventQueue q;
  NullSink sink;
  CrossTrafficSource::Params params;
  params.load_bps = 80e6;
  params.packet_bytes = 1000;
  params.always_on = true;
  CrossTrafficSource src(q, &sink, params, 7);
  src.start(0.0);
  q.run_until(1.0);
  src.stop();
  // 80 Mbit/s = 10k packets/s of 1000 B.
  EXPECT_NEAR(static_cast<double>(sink.count()), 10000.0, 600.0);
}

TEST(CrossTrafficSource, OnOffProducesFewerPackets) {
  EventQueue q;
  NullSink sink;
  CrossTrafficSource::Params params;
  params.load_bps = 80e6;
  params.packet_bytes = 1000;
  params.mean_on_s = 0.1;
  params.mean_off_s = 0.1;
  CrossTrafficSource src(q, &sink, params, 7);
  src.start(0.0);
  q.run_until(2.0);
  src.stop();
  // Duty cycle ~50%: roughly half the always-on packet count.
  EXPECT_NEAR(static_cast<double>(sink.count()), 10000.0, 3500.0);
}

TEST(Path, BuildsChainEntryToSink) {
  EventQueue q;
  RecordingSink sink;
  ShaperSpec shaper;
  shaper.enabled = true;
  shaper.rate_bps = 1e9;
  shaper.depth_bytes = 10e3;
  std::vector<HopSpec> hops{{1e9, 10e-6, 1e6}, {10e9, 10e-6, 1e6}};
  Path path(q, shaper, hops, &sink);
  EXPECT_EQ(path.hop_count(), 2u);
  EXPECT_DOUBLE_EQ(path.hop(0).rate_bps(), 1e9);
  EXPECT_DOUBLE_EQ(path.hop(1).rate_bps(), 10e9);
  Packet p = make_packet(0, 1500);
  path.entry().receive(p, 0.0);
  q.run();
  EXPECT_EQ(sink.count(), 1u);
}

TEST(RecordingSink, JitterStaysMonotonic) {
  EventQueue q;
  RecordingSink sink(50e-6, 42);
  for (std::uint64_t i = 0; i < 200; ++i) {
    Packet p = make_packet(i, 1500);
    sink.receive(p, static_cast<double>(i) * 1e-5);
  }
  const auto& rec = sink.records();
  for (std::size_t i = 1; i < rec.size(); ++i) {
    EXPECT_GE(rec[i].time, rec[i - 1].time);
  }
}

}  // namespace
}  // namespace choreo::packetsim

#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "measure/bottleneck.h"
#include "measure/calibration.h"
#include "measure/cross_traffic.h"
#include "measure/packet_train.h"
#include "measure/throughput_matrix.h"
#include "util/stats.h"
#include "util/units.h"

namespace choreo::measure {
namespace {

using packetsim::RecordingSink;
using packetsim::TrainParams;
using units::mbps;

/// Synthesizes a perfect receiver log: B packets per burst arriving at
/// exactly `rate_bps`, bursts back to back.
std::vector<RecordingSink::Record> ideal_records(const TrainParams& p, double rate_bps) {
  std::vector<RecordingSink::Record> out;
  const double per_packet = (p.packet_bytes + p.header_bytes) * 8.0 / rate_bps;
  double t = 0.0;
  std::uint64_t seq = 0;
  for (std::uint32_t k = 0; k < p.bursts; ++k) {
    for (std::uint32_t i = 0; i < p.burst_length; ++i) {
      out.push_back({1, seq++, k, p.packet_bytes + p.header_bytes, t});
      t += per_packet;
    }
    t += p.inter_burst_gap_s;
  }
  return out;
}

TEST(TrainEstimator, ExactOnIdealLog) {
  TrainParams p;
  p.bursts = 10;
  p.burst_length = 200;
  const auto records = ideal_records(p, mbps(950));
  const TrainEstimate est = estimate_train_throughput(records, p, 1e-3);
  // The estimator sees payload bytes over wire-time: payload/wire ratio off
  // plus the (B-1)/B fence-post; both are < 3% here.
  EXPECT_NEAR(est.throughput_bps, mbps(950) * 1472.0 / 1500.0, mbps(15));
  EXPECT_DOUBLE_EQ(est.loss_rate, 0.0);
  EXPECT_EQ(est.bursts_used, 10u);
}

TEST(TrainEstimator, HeadTailLossAdjustment) {
  TrainParams p;
  p.bursts = 2;
  p.burst_length = 100;
  auto records = ideal_records(p, mbps(500));
  // Drop the first 10 packets of burst 0 and last 10 of burst 1.
  std::vector<RecordingSink::Record> damaged;
  for (const auto& r : records) {
    if (r.burst == 0 && r.seq < 10) continue;
    if (r.burst == 1 && r.seq >= 190) continue;
    damaged.push_back(r);
  }
  const TrainEstimate est = estimate_train_throughput(damaged, p, 1e-3);
  // The time adjustment reconstructs the full-burst duration, so head/tail
  // losses penalize the rate term exactly like interior losses would:
  // est = clean_rate * received/(B-1)-ish = 500 * (1472/1500) * 180/198.
  const double clean = mbps(500) * 1472.0 / 1500.0;
  EXPECT_NEAR(est.rate_term_bps, clean * 180.0 / 198.0, mbps(5));
  EXPECT_NEAR(est.loss_rate, 0.1, 0.01);
}

TEST(TrainEstimator, MathisTermCapsLossyPaths) {
  TrainParams p;
  p.bursts = 5;
  p.burst_length = 100;
  auto records = ideal_records(p, mbps(900));
  // Keep only every other packet: 50% loss (interior losses).
  std::vector<RecordingSink::Record> damaged;
  for (const auto& r : records) {
    if (r.seq % 2 == 0) damaged.push_back(r);
  }
  const TrainEstimate est = estimate_train_throughput(damaged, p, /*rtt=*/10e-3);
  EXPECT_NEAR(est.loss_rate, 0.5, 0.01);
  // Mathis: 8*1472*1.2247 / (0.01 * sqrt(0.5)) ~ 2.0 Mbit/s -> far below rate
  // term, so the min must pick it.
  EXPECT_LT(est.throughput_bps, mbps(3));
  EXPECT_EQ(est.throughput_bps, est.mathis_term_bps);
}

TEST(TrainEstimator, EmptyLog) {
  TrainParams p;
  const TrainEstimate est = estimate_train_throughput({}, p, 1e-3);
  EXPECT_DOUBLE_EQ(est.throughput_bps, 0.0);
  EXPECT_EQ(est.packets_received, 0u);
}

TEST(TrainDuration, MatchesArithmetic) {
  TrainParams p;
  p.bursts = 10;
  p.burst_length = 200;
  p.packet_bytes = 1472;
  p.header_bytes = 28;
  p.line_rate_bps = 4e9;
  p.inter_burst_gap_s = 1e-3;
  // 200 * 1500B * 8 / 4G = 0.6 ms per burst; 10 bursts + 9 gaps.
  EXPECT_NEAR(train_duration_s(p), 10 * 0.6e-3 + 9 * 1e-3, 1e-9);
  // "An individual train takes less than one second to send" (§4.1).
  EXPECT_LT(train_duration_s(p), 1.0);
}

TEST(CrossTraffic, EstimatorInvertsFairShare) {
  EXPECT_DOUBLE_EQ(cross_traffic_estimate(mbps(250), mbps(1000)), 3.0);
  EXPECT_DOUBLE_EQ(cross_traffic_estimate(mbps(1000), mbps(1000)), 0.0);
  EXPECT_DOUBLE_EQ(cross_traffic_estimate(0.0, mbps(1000)), 0.0);  // degenerate
  const auto series = cross_traffic_series({mbps(500), mbps(333.3333333)}, mbps(1000));
  EXPECT_NEAR(series[0], 1.0, 1e-9);
  EXPECT_NEAR(series[1], 2.0, 1e-6);
}

TEST(CrossTraffic, UnknownRateRecoversBoth) {
  // True: C = 1G, c = 1 -> r1 = 500M, s2 = 2*333.3M = 666.7M.
  const auto est = cross_traffic_unknown_rate(mbps(500), mbps(2000.0 / 3.0));
  EXPECT_NEAR(est.c, 1.0, 1e-6);
  EXPECT_NEAR(est.path_rate_bps, mbps(1000), mbps(1));
}

TEST(CrossTraffic, UnknownRateUnloadedPath) {
  // Unloaded 1G path: r1 = 1G... but two connections share it: s2 = 1G.
  const auto est = cross_traffic_unknown_rate(mbps(1000), mbps(1000));
  EXPECT_NEAR(est.c, 0.0, 1e-6);
}

TEST(MatrixMeasurement, CoversAllPairsWithinMinutes) {
  cloud::Cloud c(cloud::ec2_2013(), 17);
  const auto vms = c.allocate_vms(5);
  MeasurementPlan plan;
  plan.train.bursts = 10;
  plan.train.burst_length = 200;
  const MatrixResult result = measure_rate_matrix(c, vms, plan, 1);
  EXPECT_EQ(result.pairs_measured, 20u);
  EXPECT_EQ(result.rounds, 4u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (i == j) {
        EXPECT_DOUBLE_EQ(result.rate_bps(i, j), 0.0);
      } else {
        EXPECT_GT(result.rate_bps(i, j), mbps(100));
      }
    }
  }
}

TEST(MatrixMeasurement, TenVmSnapshotUnderThreeMinutes) {
  // The paper's headline: 90 pairs in < 3 minutes including overheads.
  MeasurementPlan plan;
  plan.train.bursts = 10;
  plan.train.burst_length = 200;
  plan.train.line_rate_bps = 4e9;
  const double wall = plan.setup_overhead_s +
                      9.0 * (train_duration_s(plan.train) + plan.round_overhead_s);
  EXPECT_LT(wall, 180.0);
}

TEST(MatrixMeasurement, PairSubsetMatchesScheduleArithmetic) {
  cloud::Cloud c(cloud::ec2_2013(), 17);
  const auto vms = c.allocate_vms(6);
  MeasurementPlan plan;
  plan.train.bursts = 5;
  plan.train.burst_length = 100;
  // Two disjoint pairs plus one sharing a source: max degree 2 -> 2 rounds.
  const std::vector<ProbePair> pairs{{0, 1}, {2, 3}, {0, 4}};
  const PairsResult result = measure_rate_pairs(c, vms, pairs, plan, 1);
  ASSERT_EQ(result.rate_bps.size(), 3u);
  EXPECT_EQ(result.rounds, 2u);
  EXPECT_DOUBLE_EQ(result.wall_time_s, measurement_wall_time_s(plan, 2));
  for (double r : result.rate_bps) EXPECT_GT(r, mbps(10));
  // Empty request: free.
  const PairsResult none = measure_rate_pairs(c, vms, {}, plan, 1);
  EXPECT_TRUE(none.rate_bps.empty());
  EXPECT_DOUBLE_EQ(none.wall_time_s, 0.0);
}

TEST(MatrixMeasurement, TrainEstimatesNearTruth) {
  cloud::Cloud c(cloud::ec2_2013(), 23);
  const auto vms = c.allocate_vms(5);
  MeasurementPlan plan;
  plan.train.bursts = 10;
  plan.train.burst_length = 200;
  const MatrixResult result = measure_rate_matrix(c, vms, plan, 1);
  std::vector<double> errors;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    for (std::size_t j = 0; j < vms.size(); ++j) {
      if (i == j || c.vm_host(vms[i]) == c.vm_host(vms[j])) continue;
      const double truth = c.true_path_rate_bps(vms[i], vms[j], 1);
      errors.push_back(relative_error(result.rate_bps(i, j), truth));
    }
  }
  ASSERT_FALSE(errors.empty());
  EXPECT_LT(mean(errors), 0.20);  // §4.1 reports ~9% on EC2
}

TEST(ClusterViews, MeasuredAndTrueAgreeOnColocation) {
  cloud::ProviderProfile profile = cloud::ec2_2013();
  profile.colocate_prob = 0.6;  // force some same-host pairs
  cloud::Cloud c(profile, 29);
  const auto vms = c.allocate_vms(6);
  MeasurementPlan plan;
  plan.train.bursts = 5;
  plan.train.burst_length = 100;
  const place::ClusterView measured = measured_cluster_view(c, vms, plan, 1);
  const place::ClusterView truth = true_cluster_view(c, vms, 1);
  for (std::size_t i = 0; i < vms.size(); ++i) {
    for (std::size_t j = 0; j < vms.size(); ++j) {
      EXPECT_EQ(measured.colocated(i, j), truth.colocated(i, j));
    }
  }
  measured.validate();
  truth.validate();
}

TEST(InterferenceRules, SourceHose) {
  PathRelations rel;
  rel.same_source = true;
  EXPECT_TRUE(predict_interference(rel, BottleneckSite::SourceHose));
  rel.same_source = false;
  rel.sources_same_rack = true;
  EXPECT_FALSE(predict_interference(rel, BottleneckSite::SourceHose));
}

TEST(InterferenceRules, TorUplinkRule1) {
  PathRelations rel;
  rel.sources_same_rack = true;
  rel.b_on_that_rack = false;
  rel.d_on_that_rack = false;
  EXPECT_TRUE(predict_interference(rel, BottleneckSite::TorUplink));
  rel.b_on_that_rack = true;  // B stays on the rack: no uplink crossing
  EXPECT_FALSE(predict_interference(rel, BottleneckSite::TorUplink));
}

TEST(InterferenceRules, AggToCoreRule2) {
  PathRelations rel;
  rel.sources_same_subtree = true;
  rel.b_in_that_subtree = false;
  rel.d_in_that_subtree = false;
  EXPECT_TRUE(predict_interference(rel, BottleneckSite::AggToCore));
  rel.d_in_that_subtree = true;
  EXPECT_FALSE(predict_interference(rel, BottleneckSite::AggToCore));
}

TEST(Bottlenecks, Ec2ShowsSourceBottleneckAndHose) {
  cloud::Cloud c(cloud::ec2_2013(), 37);
  const auto vms = c.allocate_vms(10);
  const BottleneckReport report = locate_bottlenecks(c, vms, 6, 3.0, 41, 100);
  EXPECT_EQ(report.same_source_interfering, report.same_source_probes);
  EXPECT_EQ(report.disjoint_interfering, 0u);
  EXPECT_TRUE(report.source_bottleneck);
  EXPECT_TRUE(report.hose_model);
  EXPECT_NEAR(report.mean_same_source_sum_ratio, 1.0, 0.1);
}

TEST(Calibration, RecommendPicksCheapestWithinTarget) {
  std::vector<CalibrationPoint> points;
  points.push_back({10, 200, 0.09, 0.08, 0.7});
  points.push_back({10, 2000, 0.04, 0.03, 7.0});
  points.push_back({50, 2000, 0.03, 0.03, 35.0});
  packetsim::TrainParams base;
  const auto rec = recommend_train(points, base, 0.10);
  EXPECT_EQ(rec.burst_length, 200u);
  const auto strict = recommend_train(points, base, 0.035);
  EXPECT_EQ(strict.burst_length, 2000u);
  EXPECT_EQ(strict.bursts, 50u);
  // Impossible target: fall back to the most accurate.
  const auto best = recommend_train(points, base, 0.001);
  EXPECT_EQ(best.bursts, 50u);
}

}  // namespace
}  // namespace choreo::measure

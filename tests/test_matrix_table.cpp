#include <gtest/gtest.h>

#include "util/matrix.h"
#include "util/table.h"
#include "util/units.h"

namespace choreo {
namespace {

TEST(Matrix, RoundTripAndSums) {
  DoubleMatrix m(2, 3, 0.0);
  m(0, 0) = 1.0;
  m(0, 2) = 2.0;
  m(1, 1) = 4.0;
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.total(), 7.0);
  EXPECT_DOUBLE_EQ(m.row_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(m.col_sum(1), 4.0);
  EXPECT_DOUBLE_EQ(m.col_sum(0), 1.0);
}

TEST(Matrix, SquareConstructorAndEquality) {
  Matrix<int> a(2, 9);
  Matrix<int> b(2, 9);
  EXPECT_TRUE(a == b);
  b(1, 1) = 0;
  EXPECT_FALSE(a == b);
}

TEST(Matrix, BoundsChecked) {
  DoubleMatrix m(2, 2, 0.0);
  EXPECT_THROW(m(2, 0), PreconditionError);
  EXPECT_THROW(m(0, 2), PreconditionError);
  EXPECT_THROW(m.row_sum(5), PreconditionError);
}

TEST(Matrix, EmptyMatrix) {
  DoubleMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(Table, AlignsAndCounts) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_numeric_row({2.5, 10.0});
  EXPECT_EQ(t.row_count(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.50"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_pct(0.085), "8.5%");
  EXPECT_EQ(fmt_pct(0.5, 0), "50%");
  EXPECT_EQ(fmt(3.14159, 3), "3.142");
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::mbps(300), 300e6);
  EXPECT_DOUBLE_EQ(units::gbps(1), 1e9);
  EXPECT_DOUBLE_EQ(units::to_mbps(950e6), 950.0);
  EXPECT_DOUBLE_EQ(units::megabytes(100), 1e8);
  EXPECT_DOUBLE_EQ(units::millis(5), 0.005);
  // 1 GB at 1 Gbit/s = 8 seconds.
  EXPECT_DOUBLE_EQ(units::transmit_time(units::gigabytes(1), units::gbps(1)), 8.0);
}

}  // namespace
}  // namespace choreo

#include "core/controller.h"

#include <gtest/gtest.h>

#include "util/units.h"
#include "workload/generator.h"

namespace choreo::core {
namespace {

using units::gigabytes;

/// Tasks need 3 cores each (two do not fit one 4-core machine), so every
/// app has genuine network time — otherwise greedy co-locates the pair and
/// the app "finishes" instantly.
place::Application small_app(const std::string& name, double arrival_s,
                             double cpu = 3.0, double bytes = gigabytes(1)) {
  place::Application app;
  app.name = name;
  app.cpu_demand = {cpu, cpu};
  app.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  app.traffic_bytes(0, 1) = bytes;
  app.arrival_s = arrival_s;
  return app;
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : cloud_(cloud::ec2_2013(), 99), vms_(cloud_.allocate_vms(6)) {
    config_.choreo.plan.train.bursts = 5;
    config_.choreo.plan.train.burst_length = 100;
    config_.choreo.use_measured_view = false;  // fast, deterministic
    config_.choreo.reevaluate_period_s = 30.0;
  }

  cloud::Cloud cloud_;
  std::vector<cloud::VmId> vms_;
  ControllerConfig config_;
};

TEST_F(ControllerTest, PlacesAndFinishesAllApps) {
  const std::vector<place::Application> apps{
      small_app("a", 0.0), small_app("b", 5.0), small_app("c", 10.0)};
  Controller controller(cloud_, vms_, config_);
  const SessionLog log = controller.run(apps);
  ASSERT_EQ(log.apps.size(), 3u);
  for (const AppOutcome& a : log.apps) {
    EXPECT_GE(a.placed_s, a.arrival_s);
    EXPECT_GT(a.finished_s, a.placed_s);
    EXPECT_TRUE(a.placement.complete());
  }
  EXPECT_GT(log.total_runtime_s, 0.0);
}

TEST_F(ControllerTest, QueuesWhenClusterFull) {
  // 6 machines x 4 cores = 24 cores. Three 8-core apps fill it; the fourth
  // must wait for a departure.
  std::vector<place::Application> apps;
  for (int i = 0; i < 4; ++i) {
    apps.push_back(small_app("fat" + std::to_string(i), 0.0, 4.0, gigabytes(4)));
  }
  Controller controller(cloud_, vms_, config_);
  const SessionLog log = controller.run(apps);
  bool deferred = false;
  for (const SessionEvent& e : log.events) {
    deferred |= (e.kind == SessionEventKind::Deferred);
  }
  EXPECT_TRUE(deferred);
  // The deferred app still completes, strictly after some departure.
  const AppOutcome& last = log.apps.back();
  EXPECT_GT(last.placed_s, last.arrival_s);
  EXPECT_GT(last.finished_s, last.placed_s);
}

TEST_F(ControllerTest, ReevaluatesPeriodically) {
  // One long-running app so several re-evaluation ticks fire.
  const std::vector<place::Application> apps{
      small_app("long", 0.0, 3.0, gigabytes(80))};  // minutes even at vswitch speed
  Controller controller(cloud_, vms_, config_);
  const SessionLog log = controller.run(apps);
  EXPECT_GE(log.reevaluations, 3u);
}

TEST_F(ControllerTest, RejectsUnsortedArrivals) {
  const std::vector<place::Application> apps{small_app("late", 10.0),
                                             small_app("early", 0.0)};
  Controller controller(cloud_, vms_, config_);
  EXPECT_THROW(controller.run(apps), PreconditionError);
}

TEST_F(ControllerTest, RejectsDeterministicallyWhenQueueingDisabledAndFull) {
  // 6 machines x 4 cores = 24 cores; three 8-core apps fill the cluster, so
  // the fourth arrival cannot fit. With queueing disabled it must fail
  // loudly and deterministically: a "rejected" event, the app left unplaced,
  // and the session completing normally for everyone else.
  config_.queue_when_full = false;
  std::vector<place::Application> apps;
  for (int i = 0; i < 4; ++i) {
    apps.push_back(small_app("fat" + std::to_string(i), 0.0, 4.0));
  }
  Controller controller(cloud_, vms_, config_);
  const SessionLog log = controller.run(apps);

  EXPECT_EQ(log.rejected, 1u);
  std::size_t rejected_events = 0;
  for (const SessionEvent& e : log.events) {
    if (e.kind == SessionEventKind::Rejected) {
      ++rejected_events;
      EXPECT_EQ(log.detail(e), "fat3");
    }
    EXPECT_NE(e.kind, SessionEventKind::Deferred);  // rejection never silently queues
  }
  EXPECT_EQ(rejected_events, 1u);

  const AppOutcome& rejected = log.apps.back();
  EXPECT_TRUE(rejected.rejected);
  EXPECT_LT(rejected.placed_s, 0.0);
  EXPECT_LT(rejected.finished_s, 0.0);
  EXPECT_FALSE(rejected.placement.complete());
  for (std::size_t i = 0; i + 1 < log.apps.size(); ++i) {
    EXPECT_FALSE(log.apps[i].rejected);
    EXPECT_GE(log.apps[i].finished_s, 0.0);
  }

  // Deterministic: an identical session rejects the identical app.
  cloud::Cloud cloud2(cloud::ec2_2013(), 99);
  const auto vms2 = cloud2.allocate_vms(6);
  Controller controller2(cloud2, vms2, config_);
  const SessionLog log2 = controller2.run(apps);
  EXPECT_EQ(log2.rejected, 1u);
  EXPECT_TRUE(log2.apps.back().rejected);
  EXPECT_DOUBLE_EQ(log.total_runtime_s, log2.total_runtime_s);
}

TEST_F(ControllerTest, QueuedAppsRetryInFifoOrderAtEachDeparture) {
  // 6 machines x 4 cores = 24 cores; every app needs 8 cores, so exactly
  // three run at a time. Apps fat0-2 fill the cluster at t=0 with distinct
  // transfer sizes (=> distinct, strictly ordered departures); fat3-5 arrive
  // while it is full and must queue. Each departure frees room for exactly
  // one queued app, so the queue must drain one per departure, in FIFO
  // arrival order, with placed_s equal to the departure instant that freed
  // the capacity.
  std::vector<place::Application> apps;
  for (int i = 0; i < 3; ++i) {
    apps.push_back(small_app("fat" + std::to_string(i), 0.0, 4.0,
                             gigabytes(2.0 * (i + 1))));
  }
  for (int i = 3; i < 6; ++i) {
    apps.push_back(
        small_app("fat" + std::to_string(i), static_cast<double>(i - 2), 4.0,
                  gigabytes(3)));
  }
  Controller controller(cloud_, vms_, config_);
  const SessionLog log = controller.run(apps);

  // All six deferred-or-not apps finish.
  for (const AppOutcome& a : log.apps) {
    EXPECT_FALSE(a.rejected);
    EXPECT_GE(a.finished_s, 0.0);
  }
  // fat3..fat5 were each deferred exactly once, in arrival order.
  std::vector<std::uint32_t> deferred_order;
  for (const SessionEvent& e : log.events) {
    if (e.kind == SessionEventKind::Deferred) deferred_order.push_back(e.app);
  }
  ASSERT_EQ(deferred_order.size(), 3u);
  EXPECT_EQ(deferred_order, (std::vector<std::uint32_t>{3, 4, 5}));

  // FIFO drain: the queued apps are placed in arrival order, strictly one
  // per departure, and each placed_s coincides with a departure event.
  std::vector<double> departures;
  for (const SessionEvent& e : log.events) {
    if (e.kind == SessionEventKind::Departure) departures.push_back(e.time_s);
  }
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_GT(log.apps[i].placed_s, log.apps[i].arrival_s);
    if (i > 3) {
      EXPECT_GT(log.apps[i].placed_s, log.apps[i - 1].placed_s);
    }
    bool at_departure = false;
    for (double t : departures) at_departure |= (t == log.apps[i].placed_s);
    EXPECT_TRUE(at_departure) << "fat" << i << " placed off-departure at "
                              << log.apps[i].placed_s;
  }
  // The first queued app gets the first freed slot: fat0 has the smallest
  // transfer, so fat3's retry time is exactly fat0's departure.
  EXPECT_DOUBLE_EQ(log.apps[3].placed_s, log.apps[0].finished_s);
}

TEST_F(ControllerTest, RejectionAccountingExactUnderChurn) {
  // queue_when_full = false under churn: arrivals land both while the
  // cluster is full (rejected) and after departures freed it (placed).
  // Rejection accounting must be exact: every rejected app has exactly one
  // "rejected" event, placed_s/finished_s stay negative, nothing is ever
  // deferred, and everyone else completes normally.
  config_.queue_when_full = false;
  std::vector<place::Application> apps;
  // Wave 1 fills the cluster at t=0 (3 x 8 cores = 24).
  for (int i = 0; i < 3; ++i) {
    apps.push_back(small_app("w1-" + std::to_string(i), 0.0, 4.0, gigabytes(4)));
  }
  // These arrive while full: rejected.
  apps.push_back(small_app("full-a", 1.0, 4.0));
  apps.push_back(small_app("full-b", 2.0, 4.0));
  // This arrives long after wave 1 departed: placed.
  apps.push_back(small_app("late", 4000.0, 4.0));
  Controller controller(cloud_, vms_, config_);
  const SessionLog log = controller.run(apps);

  std::size_t rejected_outcomes = 0;
  for (const AppOutcome& a : log.apps) {
    if (a.rejected) {
      ++rejected_outcomes;
      EXPECT_LT(a.placed_s, 0.0);
      EXPECT_LT(a.finished_s, 0.0);
      EXPECT_FALSE(a.placement.complete());
    } else {
      EXPECT_DOUBLE_EQ(a.placed_s, a.arrival_s);  // never queued, never late
      EXPECT_GT(a.finished_s, a.placed_s);
    }
  }
  EXPECT_EQ(rejected_outcomes, 2u);
  EXPECT_EQ(log.rejected, 2u);

  std::size_t rejected_events = 0;
  for (const SessionEvent& e : log.events) {
    EXPECT_NE(e.kind, SessionEventKind::Deferred);
    if (e.kind == SessionEventKind::Rejected) ++rejected_events;
  }
  EXPECT_EQ(rejected_events, 2u);
  EXPECT_TRUE(log.apps[3].rejected);
  EXPECT_TRUE(log.apps[4].rejected);
  EXPECT_FALSE(log.apps[5].rejected);
}

TEST_F(ControllerTest, SessionWithTraceWorkload) {
  Rng rng(11);
  workload::GeneratorConfig gen;
  gen.min_tasks = 3;
  gen.max_tasks = 5;
  gen.max_cpu = 1.5;
  std::vector<place::Application> apps;
  double t = 0.0;
  for (int i = 0; i < 5; ++i) {
    place::Application app = workload::generate_app(rng, gen);
    app.arrival_s = t;
    apps.push_back(std::move(app));
    t += rng.uniform(5.0, 40.0);
  }
  Controller controller(cloud_, vms_, config_);
  const SessionLog log = controller.run(apps);
  EXPECT_EQ(log.apps.size(), 5u);
  for (const AppOutcome& a : log.apps) EXPECT_GE(a.finished_s, 0.0);
  // The event stream is time-ordered.
  for (std::size_t i = 1; i < log.events.size(); ++i) {
    EXPECT_LE(log.events[i - 1].time_s, log.events[i].time_s + 1e-6);
  }
}

}  // namespace
}  // namespace choreo::core

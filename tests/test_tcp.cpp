#include "packetsim/tcp.h"

#include <gtest/gtest.h>

#include "packetsim/link.h"
#include "packetsim/sink.h"
#include "packetsim/token_bucket.h"

namespace choreo::packetsim {
namespace {

/// A loopback harness: sender -> fwd link(s) -> receiver; receiver -> ack
/// link -> sender.
struct TcpHarness {
  EventQueue events;
  TcpParams params;
  // Reverse path (ACKs), generously provisioned.
  std::unique_ptr<AckTap> tap;
  std::unique_ptr<Link> ack_link;
  std::unique_ptr<TcpReceiver> receiver;
  std::unique_ptr<Link> fwd_link;
  std::unique_ptr<TokenBucket> shaper;
  std::unique_ptr<TcpSender> sender;

  TcpHarness(double link_bps, double delay_s, double queue_bytes, std::uint64_t bytes,
             double shaper_bps = -1.0, double shaper_depth = 30e3) {
    // Build back to front. The sender is created last but the tap needs it:
    // construct with null and wire after.
    tap = std::make_unique<AckTap>(nullptr);
    ack_link = std::make_unique<Link>(events, 10e9, delay_s, 10e6, tap.get());
    receiver = std::make_unique<TcpReceiver>(events, ack_link.get(), params);
    fwd_link = std::make_unique<Link>(events, link_bps, delay_s, queue_bytes,
                                      receiver.get());
    Element* entry = fwd_link.get();
    if (shaper_bps > 0.0) {
      shaper = std::make_unique<TokenBucket>(events, shaper_bps, shaper_depth,
                                             fwd_link.get());
      entry = shaper.get();
    }
    sender = std::make_unique<TcpSender>(events, entry, params, 1, bytes);
    *tap = AckTap(sender.get());
  }
};

TEST(Tcp, TransfersAllBytes) {
  TcpHarness h(100e6, 1e-3, 64e3, 2'000'000);
  h.sender->start(0.0);
  h.events.run();
  EXPECT_TRUE(h.sender->finished());
  EXPECT_GE(h.sender->acked_bytes(), 2'000'000u);
}

TEST(Tcp, ThroughputApproachesLinkRate) {
  TcpHarness h(100e6, 0.5e-3, 128e3, 20'000'000);
  h.sender->start(0.0);
  h.events.run();
  ASSERT_TRUE(h.sender->finished());
  const double rate = h.sender->throughput_bps(h.sender->finish_time());
  // Within 20% of the bottleneck (slow-start ramp + header overhead).
  EXPECT_GT(rate, 80e6);
  EXPECT_LT(rate, 101e6);
}

TEST(Tcp, ThroughputMatchesTokenBucketRate) {
  // Hose-enforced path: 1G link shaped to 300 Mbit/s.
  TcpHarness h(1e9, 0.2e-3, 256e3, 30'000'000, /*shaper_bps=*/300e6);
  h.sender->start(0.0);
  h.events.run();
  ASSERT_TRUE(h.sender->finished());
  const double rate = h.sender->throughput_bps(h.sender->finish_time());
  EXPECT_GT(rate, 250e6);
  EXPECT_LT(rate, 310e6);
}

TEST(Tcp, RecoversFromLossViaFastRetransmit) {
  // Tiny queue forces drops during slow start.
  TcpHarness h(50e6, 1e-3, 16e3, 5'000'000);
  h.sender->start(0.0);
  h.events.run();
  ASSERT_TRUE(h.sender->finished());
  EXPECT_GT(h.sender->retransmits(), 0u);
  // All data still delivered.
  EXPECT_EQ(h.receiver->cumulative_ack() * h.params.mss_bytes >= 5'000'000, true);
}

TEST(Tcp, FairnessBetweenTwoCompetingFlows) {
  // Two senders share one 100 Mbit/s link (the §3.2 assumption: "TCP divides
  // the bottleneck rate equally between bulk connections").
  EventQueue events;
  TcpParams params;

  auto tap1 = std::make_unique<AckTap>(nullptr);
  auto tap2 = std::make_unique<AckTap>(nullptr);
  auto ack1 = std::make_unique<Link>(events, 10e9, 1e-3, 10e6, tap1.get());
  auto ack2 = std::make_unique<Link>(events, 10e9, 1e-3, 10e6, tap2.get());
  auto recv1 = std::make_unique<TcpReceiver>(events, ack1.get(), params);
  auto recv2 = std::make_unique<TcpReceiver>(events, ack2.get(), params);

  // Shared bottleneck feeding a demux that routes by flow id.
  struct Demux : Element {
    Element* a;
    Element* b;
    void receive(const Packet& p, double now) override {
      (p.flow == 1 ? a : b)->receive(p, now);
    }
  };
  Demux demux;
  demux.a = recv1.get();
  demux.b = recv2.get();
  Link shared(events, 100e6, 1e-3, 128e3, &demux);

  TcpSender s1(events, &shared, params, 1, 12'000'000);
  TcpSender s2(events, &shared, params, 2, 12'000'000);
  *tap1 = AckTap(&s1);
  *tap2 = AckTap(&s2);
  s1.start(0.0);
  s2.start(0.0);
  events.run();
  ASSERT_TRUE(s1.finished());
  ASSERT_TRUE(s2.finished());
  const double r1 = s1.throughput_bps(s1.finish_time());
  const double r2 = s2.throughput_bps(s2.finish_time());
  // Jain-style check: neither flow grabs more than ~65% of the shared rate.
  EXPECT_GT(r1 / (r1 + r2), 0.33);
  EXPECT_LT(r1 / (r1 + r2), 0.67);
  EXPECT_NEAR(r1 + r2, 100e6, 20e6);
  (void)r2;
}

TEST(Tcp, ReceiverTracksOutOfOrderDelivery) {
  EventQueue events;
  TcpParams params;
  NullSink null;
  TcpReceiver recv(events, &null, params);
  Packet p;
  p.wire_bytes = params.mss_bytes + params.header_bytes;
  p.seq = 1;  // gap: 0 missing
  recv.receive(p, 0.0);
  EXPECT_EQ(recv.cumulative_ack(), 0u);
  p.seq = 0;
  recv.receive(p, 0.0);
  EXPECT_EQ(recv.cumulative_ack(), 2u);  // 0 and buffered 1 both delivered
  EXPECT_EQ(recv.delivered_segments(), 2u);
}

TEST(Tcp, UnboundedTransferReportsRunningThroughput) {
  TcpHarness h(100e6, 0.5e-3, 128e3, TcpSender::kUnbounded);
  h.sender->start(0.0);
  h.events.run_until(2.0);
  EXPECT_FALSE(h.sender->finished());
  const double rate = h.sender->throughput_bps(2.0);
  EXPECT_GT(rate, 60e6);
}

}  // namespace
}  // namespace choreo::packetsim

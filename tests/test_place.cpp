#include <gtest/gtest.h>

#include "place/baselines.h"
#include "place/greedy.h"
#include "place/ilp.h"
#include "place/rate_model.h"
#include "util/units.h"

namespace choreo::place {
namespace {

using units::gbps;
using units::mbps;

/// A small uniform cluster: M machines, all pairs at `rate`, 4 cores each.
ClusterView uniform_view(std::size_t machines, double rate = gbps(1), double cores = 4.0) {
  ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, rate);
  view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
  view.cores.assign(machines, cores);
  view.colocation_group.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) view.colocation_group[m] = static_cast<int>(m);
  return view;
}

Application two_task_app(double bytes, double cpu = 1.0) {
  Application app;
  app.name = "pair";
  app.cpu_demand = {cpu, cpu};
  app.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  app.traffic_bytes(0, 1) = bytes;
  return app;
}

TEST(App, CombineBlockDiagonal) {
  const Application a = two_task_app(100.0);
  const Application b = two_task_app(200.0);
  const Application c = combine({a, b});
  EXPECT_EQ(c.task_count(), 4u);
  EXPECT_DOUBLE_EQ(c.traffic_bytes(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(c.traffic_bytes(2, 3), 200.0);
  EXPECT_DOUBLE_EQ(c.traffic_bytes(0, 3), 0.0);
}

TEST(App, SortedTransfersDescending) {
  Application app;
  app.cpu_demand = {1, 1, 1};
  app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
  app.traffic_bytes(0, 1) = 10.0;
  app.traffic_bytes(1, 2) = 30.0;
  app.traffic_bytes(2, 0) = 20.0;
  const auto transfers = sorted_transfers(app);
  ASSERT_EQ(transfers.size(), 3u);
  EXPECT_DOUBLE_EQ(transfers[0].bytes, 30.0);
  EXPECT_DOUBLE_EQ(transfers[2].bytes, 10.0);
}

TEST(App, ValidateRejectsBadShapes) {
  Application app;
  app.cpu_demand = {1.0};
  app.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  EXPECT_THROW(app.validate(), PreconditionError);
  app.cpu_demand = {1.0, 1.0};
  app.traffic_bytes(0, 0) = 5.0;  // self traffic
  EXPECT_THROW(app.validate(), PreconditionError);
}

TEST(ClusterState, CommitAndReleaseRoundTrip) {
  ClusterState state(uniform_view(3));
  const Application app = two_task_app(units::megabytes(10), 2.0);
  Placement p;
  p.machine_of_task = {0, 1};
  state.commit(app, p);
  EXPECT_DOUBLE_EQ(state.free_cores(0), 2.0);
  EXPECT_DOUBLE_EQ(state.transfers_on_path(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(state.transfers_out_of(0), 1.0);
  state.release(app, p);
  EXPECT_DOUBLE_EQ(state.free_cores(0), 4.0);
  EXPECT_DOUBLE_EQ(state.transfers_on_path(0, 1), 0.0);
}

TEST(ClusterState, IntraMachinePlacementUsesNoNetwork) {
  ClusterState state(uniform_view(3));
  const Application app = two_task_app(units::megabytes(10));
  Placement p;
  p.machine_of_task = {1, 1};
  state.commit(app, p);
  EXPECT_DOUBLE_EQ(state.transfers_on_path(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(state.transfers_out_of(1), 0.0);
}

TEST(RateModelFn, IntraMachineIsInfinite) {
  ClusterState state(uniform_view(2));
  EXPECT_DOUBLE_EQ(transfer_rate_bps(state, 0, 0, RateModel::Pipe), kIntraMachineRate);
}

TEST(RateModelFn, PipeDividesByPathLoad) {
  ClusterView view = uniform_view(2);
  EXPECT_DOUBLE_EQ(transfer_rate_bps(view, 0, 1, RateModel::Pipe, 0, 0), gbps(1));
  EXPECT_DOUBLE_EQ(transfer_rate_bps(view, 0, 1, RateModel::Pipe, 1, 0), gbps(0.5));
  EXPECT_DOUBLE_EQ(transfer_rate_bps(view, 0, 1, RateModel::Pipe, 3, 0), gbps(0.25));
}

TEST(RateModelFn, HoseDividesBySourceLoad) {
  ClusterView view = uniform_view(3);
  // One transfer already out of machine 0 (to anywhere): a new one halves.
  EXPECT_DOUBLE_EQ(transfer_rate_bps(view, 0, 1, RateModel::Hose, 0, 1), gbps(0.5));
  // Pipe would not see it (different path).
  EXPECT_DOUBLE_EQ(transfer_rate_bps(view, 0, 1, RateModel::Pipe, 0, 1), gbps(1));
}

TEST(RateModelFn, CrossTrafficReducesRate) {
  ClusterView view = uniform_view(2);
  view.cross_traffic(0, 1) = 1.0;  // measured: one background connection
  // Path capacity = R*(c+1) = 2G; a new transfer shares with c+1 => 1G...
  // with zero own transfers the new one sees capacity/(c+1) = 1G.
  EXPECT_DOUBLE_EQ(transfer_rate_bps(view, 0, 1, RateModel::Pipe, 0, 0), gbps(1));
  // With one own transfer placed: capacity/(c+2).
  EXPECT_NEAR(transfer_rate_bps(view, 0, 1, RateModel::Pipe, 1, 0), 2e9 / 3.0, 1.0);
}

TEST(RateModelFn, ColocatedPairUsesVswitchPath) {
  ClusterView view = uniform_view(3);
  view.colocation_group = {0, 0, 1};  // machines 0,1 share a host
  view.rate_bps(0, 1) = gbps(4);
  view.rate_bps(1, 0) = gbps(4);
  EXPECT_DOUBLE_EQ(transfer_rate_bps(view, 0, 1, RateModel::Hose, 0, 5), gbps(4));
  // Hose of machine 0 ignores the colocated peer's 4G path.
  EXPECT_DOUBLE_EQ(view.hose_bps(0), gbps(1));
}

TEST(Completion, PipeAndHoseDiffer) {
  ClusterView view = uniform_view(3);
  Application app;
  app.cpu_demand = {1, 1, 1};
  app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
  app.traffic_bytes(0, 1) = units::gigabytes(1);
  app.traffic_bytes(0, 2) = units::gigabytes(1);
  Placement p;
  p.machine_of_task = {0, 1, 2};
  // Pipe: two independent 1G paths, 8s each -> 8s.
  EXPECT_NEAR(estimate_completion_s(app, p, view, RateModel::Pipe), 8.0, 1e-9);
  // Hose: both share machine 0's 1G hose -> 16s.
  EXPECT_NEAR(estimate_completion_s(app, p, view, RateModel::Hose), 16.0, 1e-9);
}

TEST(Completion, IntraMachineTransfersAreFree) {
  ClusterView view = uniform_view(2);
  Application app = two_task_app(units::gigabytes(10));
  Placement p;
  p.machine_of_task = {0, 0};
  EXPECT_DOUBLE_EQ(estimate_completion_s(app, p, view, RateModel::Hose), 0.0);
}

TEST(Greedy, CoLocatesHeavyPairWhenCpuAllows) {
  ClusterState state(uniform_view(3));
  const Application app = two_task_app(units::gigabytes(5), 1.0);
  GreedyPlacer greedy(RateModel::Hose);
  const Placement p = greedy.place(app, state);
  EXPECT_EQ(p.machine_of_task[0], p.machine_of_task[1]);
}

TEST(Greedy, SplitsPairWhenCpuForbidsColocation) {
  ClusterState state(uniform_view(3, gbps(1), 4.0));
  const Application app = two_task_app(units::gigabytes(5), 3.0);  // 6 > 4 cores
  GreedyPlacer greedy(RateModel::Hose);
  const Placement p = greedy.place(app, state);
  EXPECT_NE(p.machine_of_task[0], p.machine_of_task[1]);
}

TEST(Greedy, PrefersFastPath) {
  ClusterView view = uniform_view(3, mbps(500));
  view.rate_bps(1, 2) = gbps(2);  // one fast path
  ClusterState state(view);
  Application app = two_task_app(units::gigabytes(5), 3.0);  // cannot co-locate
  GreedyPlacer greedy(RateModel::Hose);
  const Placement p = greedy.place(app, state);
  EXPECT_EQ(p.machine_of_task[0], 1u);
  EXPECT_EQ(p.machine_of_task[1], 2u);
}

TEST(Greedy, PlacesIsolatedTasks) {
  ClusterState state(uniform_view(2));
  Application app;
  app.cpu_demand = {2.0, 2.0, 2.0};
  app.traffic_bytes = DoubleMatrix(3, 3, 0.0);  // no transfers at all
  GreedyPlacer greedy;
  const Placement p = greedy.place(app, state);
  EXPECT_TRUE(p.complete());
  // CPU must be respected: 6 cores over 2 machines of 4.
  std::vector<double> used(2, 0.0);
  for (std::size_t t = 0; t < 3; ++t) used[p.machine_of_task[t]] += 2.0;
  EXPECT_LE(used[0], 4.0);
  EXPECT_LE(used[1], 4.0);
}

TEST(Greedy, ThrowsWhenClusterFull) {
  ClusterState state(uniform_view(2, gbps(1), 1.0));
  const Application app = two_task_app(1e9, 1.5);  // no machine fits 1.5 cores
  GreedyPlacer greedy;
  EXPECT_THROW(greedy.place(app, state), PlacementError);
}

TEST(Greedy, Fig9CounterExampleIsSuboptimal) {
  // Fig 9's structure: the greedy algorithm grabs the fastest (rate-10) path
  // for the heaviest pair (J1,J2), which strands J2 on a machine whose only
  // remaining path has rate 1 — the J2->J4 transfer then dominates. The
  // optimal placement sacrifices the heaviest transfer onto the rate-9 path
  // so that every transfer gets a decent rate.
  // Machines: X=0, A=1, B=2, M=3, N=4; transfers: J1->J2 100 MB,
  // J1->J3 50 MB, J2->J4 50 MB; one task per machine (1 core).
  ClusterView view = uniform_view(5, mbps(0.2), 1.0);
  auto set_pair = [&](std::size_t a, std::size_t b, double rate) {
    view.rate_bps(a, b) = rate;
    view.rate_bps(b, a) = rate;
  };
  set_pair(0, 1, mbps(10));  // X-A: the bait
  set_pair(0, 2, mbps(9));   // X-B: what the optimum uses for J1->J2
  set_pair(2, 3, mbps(8));   // B-M: good egress for J2->J4 in the optimum
  set_pair(1, 4, mbps(1));   // A-N: the trap greedy forces J2->J4 onto

  Application app;
  app.cpu_demand = {1, 1, 1, 1};  // J1..J4, one per machine (cores=1)
  app.traffic_bytes = DoubleMatrix(4, 4, 0.0);
  app.traffic_bytes(0, 1) = units::megabytes(100);  // J1->J2
  app.traffic_bytes(0, 2) = units::megabytes(50);   // J1->J3
  app.traffic_bytes(1, 3) = units::megabytes(50);   // J2->J4

  GreedyPlacer greedy(RateModel::Pipe);
  ClusterState state(view);
  const Placement pg = greedy.place(app, state);
  const double greedy_time = estimate_completion_s(app, pg, view, RateModel::Pipe);

  BruteForcePlacer optimal(RateModel::Pipe);
  const Placement po = optimal.place(app, state);
  const double optimal_time = estimate_completion_s(app, po, view, RateModel::Pipe);

  // The paper's point: greedy is strictly worse here, but still valid.
  EXPECT_GT(greedy_time, optimal_time * 1.01);
  EXPECT_TRUE(pg.complete());
}

TEST(Baselines, RandomRespectsCpu) {
  ClusterState state(uniform_view(3, gbps(1), 2.0));
  Application app;
  app.cpu_demand = {2.0, 2.0, 2.0};
  app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
  app.traffic_bytes(0, 1) = 1e6;
  RandomPlacer random(5);
  const Placement p = random.place(app, state);
  // Each machine has 2 cores: all three tasks land on distinct machines.
  std::set<std::size_t> used(p.machine_of_task.begin(), p.machine_of_task.end());
  EXPECT_EQ(used.size(), 3u);
}

TEST(Baselines, RoundRobinRotates) {
  ClusterState state(uniform_view(4));
  Application app;
  app.cpu_demand = {1.0, 1.0, 1.0, 1.0};
  app.traffic_bytes = DoubleMatrix(4, 4, 0.0);
  app.traffic_bytes(0, 1) = 1.0;
  RoundRobinPlacer rr;
  const Placement p = rr.place(app, state);
  EXPECT_EQ(p.machine_of_task, (std::vector<std::size_t>{0, 1, 2, 3}));
  // Next application continues the rotation.
  const Placement p2 = rr.place(app, state);
  EXPECT_EQ(p2.machine_of_task[0], 0u);  // wrapped around (4 mod 4)
}

TEST(Baselines, MinMachinesPacks) {
  ClusterState state(uniform_view(4));
  Application app;
  app.cpu_demand = {1.0, 1.0, 1.0, 1.0};
  app.traffic_bytes = DoubleMatrix(4, 4, 0.0);
  app.traffic_bytes(0, 1) = 1.0;
  MinMachinesPlacer mm;
  const Placement p = mm.place(app, state);
  // 4 tasks x 1 core pack onto one 4-core machine.
  std::set<std::size_t> used(p.machine_of_task.begin(), p.machine_of_task.end());
  EXPECT_EQ(used.size(), 1u);
}

TEST(Baselines, MinMachinesSpillsWhenFull) {
  ClusterState state(uniform_view(3, gbps(1), 2.0));
  Application app;
  app.cpu_demand = {1.0, 1.0, 1.0};
  app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
  app.traffic_bytes(0, 1) = 1.0;
  MinMachinesPlacer mm;
  const Placement p = mm.place(app, state);
  // Two 1-core tasks pack onto the first 2-core machine; the third spills.
  std::set<std::size_t> used(p.machine_of_task.begin(), p.machine_of_task.end());
  EXPECT_EQ(used.size(), 2u);
  EXPECT_EQ(p.machine_of_task[0], p.machine_of_task[1]);
}

}  // namespace
}  // namespace choreo::place

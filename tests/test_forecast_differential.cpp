// The forecast plane's contract (PR acceptance): routing every measurement
// cycle through forecast::PredictivePolicy must leave the DISABLED pipeline
// bit-identical to the pre-forecast fixed-policy pipeline — same refresh
// plans, same rate matrices, same placements — over a randomized corpus.
// The oracle is the still-exposed fixed path itself: a raw ViewCache +
// measure::refresh_cluster_view + ClusterState/GreedyPlacer loop replaying
// what core::Choreo::measure_network did before the forecast plane existed,
// driven against an identically seeded twin cloud.

#include <gtest/gtest.h>

#include <vector>

#include "core/choreo.h"
#include "measure/throughput_matrix.h"
#include "place/greedy.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace choreo {
namespace {

workload::GeneratorConfig small_apps() {
  workload::GeneratorConfig gen;
  gen.min_tasks = 3;
  gen.max_tasks = 6;
  gen.max_cpu = 2.0;
  return gen;
}

/// The fixed-policy oracle: the exact measurement + placement loop Choreo
/// ran before the forecast plane, expressed with the public primitives.
struct FixedPipelineOracle {
  cloud::Cloud& cloud;
  std::vector<cloud::VmId> vms;
  core::ChoreoConfig config;
  measure::ViewCache cache;
  std::unique_ptr<place::ClusterState> state;
  measure::RefreshResult last;

  void measure(std::uint64_t epoch) {
    last = measure::refresh_cluster_view(cloud, vms, config.plan, epoch, cache,
                                         config.refresh);
    if (state && state->machine_count() == last.view.machine_count()) {
      place::ClusterView copy = last.view;
      state->update_view(std::move(copy));
    } else {
      place::ClusterView copy = last.view;
      state = std::make_unique<place::ClusterState>(std::move(copy));
    }
  }

  place::Placement place_and_commit(const place::Application& app) {
    place::GreedyPlacer greedy(config.rate_model);
    const place::Placement p = greedy.place(app, *state);
    state->commit(app, p);
    return p;
  }
};

TEST(ForecastDifferential, DisabledPolicyBitIdenticalToFixedPipeline) {
  for (const std::uint64_t seed : {11u, 23u, 37u, 51u}) {
    for (const std::size_t n : {4u, 6u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n));
      // Identically seeded twin clouds: same topology, same VM allocation,
      // same background realizations per epoch.
      cloud::Cloud c_sys(cloud::ec2_2013(), seed);
      cloud::Cloud c_ora(cloud::ec2_2013(), seed);
      const auto vms_sys = c_sys.allocate_vms(n);
      const auto vms_ora = c_ora.allocate_vms(n);

      core::ChoreoConfig config;
      config.plan.train.bursts = 5;
      config.plan.train.burst_length = 100;
      // Stress the refresh rules: tight staleness, real volatility probing.
      config.refresh.max_age_epochs = 3;
      config.refresh.volatility_threshold = 0.2 + 0.1 * static_cast<double>(seed % 3);
      ASSERT_FALSE(config.forecast.enabled) << "forecast must default off";

      core::Choreo choreo(c_sys, vms_sys, config);
      FixedPipelineOracle oracle{c_ora, vms_ora, config, measure::ViewCache{}, nullptr,
                                 measure::RefreshResult{}};

      Rng app_rng(seed * 1000 + n);
      const workload::GeneratorConfig gen = small_apps();

      for (std::uint64_t epoch = 1; epoch <= 10; ++epoch) {
        choreo.measure_network(epoch);
        oracle.measure(epoch);

        // Refresh plans: identical pair sets in identical order, identical
        // classification counts, surfaced identically in the report.
        const core::Choreo::MeasureReport& rep = choreo.last_measure();
        ASSERT_EQ(rep.pairs_probed, oracle.last.pairs_probed);
        ASSERT_EQ(rep.rounds, oracle.last.rounds);
        ASSERT_EQ(rep.wall_time_s, oracle.last.wall_time_s);
        ASSERT_EQ(rep.never_measured, oracle.last.plan.never_measured);
        ASSERT_EQ(rep.stale, oracle.last.plan.stale);
        ASSERT_EQ(rep.volatile_pairs, oracle.last.plan.volatile_pairs);
        ASSERT_EQ(rep.predictable_pairs, 0u);
        ASSERT_EQ(rep.unpredictable_pairs, 0u);
        ASSERT_EQ(rep.changepoint_pairs, 0u);
        ASSERT_EQ(rep.predicted_pairs, 0u);

        // Matrices: bit-for-bit, including per-pair provenance.
        ASSERT_TRUE(choreo.view().rate_bps == oracle.state->view().rate_bps);
        ASSERT_TRUE(choreo.view().pair_epoch == oracle.state->view().pair_epoch);

        // Interleave arrivals so refresh planning runs against a live,
        // partially occupied cluster like a real session.
        if (epoch % 2 == 1) {
          const place::Application app = workload::generate_app(app_rng, gen);
          place::Application app_copy = app;
          const place::Placement p_sys = [&] {
            try {
              const auto handle = choreo.place_application(app);
              return choreo.placement_of(handle);
            } catch (const place::PlacementError&) {
              return place::Placement{};
            }
          }();
          place::Placement p_ora;
          try {
            p_ora = oracle.place_and_commit(app_copy);
          } catch (const place::PlacementError&) {
            p_ora = place::Placement{};
          }
          ASSERT_EQ(p_sys.machine_of_task, p_ora.machine_of_task);
        }
      }
    }
  }
}

// The enabled forecast plane must run the full Choreo loop end to end:
// budgeted refresh planning, forecast-filled views, uncertainty discounts,
// and placements on the resulting state.
TEST(ForecastDifferential, EnabledForecastRunsEndToEnd) {
  cloud::Cloud cloud(cloud::ec2_2013(), 7);
  const auto vms = cloud.allocate_vms(6);

  core::ChoreoConfig config;
  config.plan.train.bursts = 5;
  config.plan.train.burst_length = 100;
  config.refresh.max_age_epochs = 50;  // let the forecast drive re-probing
  config.forecast.enabled = true;
  config.forecast.min_observations = 2;
  config.forecast.probe_budget_fraction = 0.25;
  config.forecast.discount_rates = true;

  core::Choreo choreo(cloud, vms, config);
  const std::size_t all_pairs = vms.size() * (vms.size() - 1);

  choreo.measure_network(1);
  EXPECT_EQ(choreo.last_measure().pairs_probed, all_pairs);
  EXPECT_EQ(choreo.last_measure().never_measured, all_pairs);
  choreo.measure_network(2);  // warm-up: still everything
  EXPECT_EQ(choreo.last_measure().pairs_probed, all_pairs);

  // Warmed up: the budget caps probing and forecasts fill the gaps.
  choreo.measure_network(3);
  const core::Choreo::MeasureReport& rep = choreo.last_measure();
  EXPECT_LT(rep.pairs_probed, all_pairs);
  // Every ordered pair lands in exactly one refresh bucket...
  EXPECT_EQ(rep.never_measured + rep.stale + rep.changepoint_pairs +
                rep.unpredictable_pairs + rep.predictable_pairs,
            all_pairs);
  // ...and every coasting pair's view entry came from a forecast.
  EXPECT_EQ(rep.predicted_pairs, rep.predictable_pairs);
  EXPECT_GT(rep.predicted_pairs, 0u);
  EXPECT_TRUE(rep.incremental);
  choreo.view().validate();

  // Placement runs on the forecast-augmented, discounted view.
  Rng rng(99);
  const place::Application app = workload::generate_app(rng, small_apps());
  const auto handle = choreo.place_application(app);
  EXPECT_TRUE(choreo.placement_of(handle).complete());

  // Re-evaluation keeps working on the predictive path.
  const core::Choreo::ReevalReport reeval = choreo.reevaluate(4);
  EXPECT_EQ(reeval.apps_considered, 1u);
}

}  // namespace
}  // namespace choreo

#include "flowsim/max_min.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace choreo::flowsim {
namespace {

TEST(MaxMin, SingleLinkEqualShares) {
  const auto rates = max_min_rates({900e6}, {{0}, {0}, {0}}, 1e12);
  ASSERT_EQ(rates.size(), 3u);
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 300e6);
}

TEST(MaxMin, UnconstrainedFlowGetsDefault) {
  const auto rates = max_min_rates({1e9}, {{}, {0}}, 42e9);
  EXPECT_DOUBLE_EQ(rates[0], 42e9);
  EXPECT_DOUBLE_EQ(rates[1], 1e9);
}

TEST(MaxMin, ClassicTriangle) {
  // Two links: L0 (1G) shared by flows A and B; L1 (0.5G) shared by B and C.
  // Water-filling: L1 bottlenecks first at 0.25 for B and C; A then takes the
  // rest of L0: 0.75.
  const auto rates = max_min_rates({1e9, 0.5e9}, {{0}, {0, 1}, {1}}, 1e12);
  EXPECT_DOUBLE_EQ(rates[1], 0.25e9);
  EXPECT_DOUBLE_EQ(rates[2], 0.25e9);
  EXPECT_DOUBLE_EQ(rates[0], 0.75e9);
}

TEST(MaxMin, HoseAsExtraResource) {
  // One fat link (10G) but a 1G hose shared by two flows from one VM.
  const auto rates = max_min_rates({10e9, 1e9}, {{0, 1}, {0, 1}}, 1e12);
  EXPECT_DOUBLE_EQ(rates[0], 0.5e9);
  EXPECT_DOUBLE_EQ(rates[1], 0.5e9);
}

TEST(MaxMin, EmptyInputs) {
  EXPECT_TRUE(max_min_rates({}, {}, 1.0).empty());
  const auto rates = max_min_rates({1e9}, {}, 1.0);
  EXPECT_TRUE(rates.empty());
}

TEST(MaxMin, RejectsBadResourceId) {
  EXPECT_THROW(max_min_rates({1e9}, {{3}}, 1.0), PreconditionError);
}

class MaxMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinProperty, FeasibleAndBottleneckTight) {
  Rng rng(GetParam());
  const std::size_t n_res = static_cast<std::size_t>(rng.uniform_int(1, 8));
  const std::size_t n_flows = static_cast<std::size_t>(rng.uniform_int(1, 20));
  std::vector<double> cap(n_res);
  for (double& c : cap) c = rng.uniform(1e8, 1e10);
  std::vector<std::vector<ResourceId>> usage(n_flows);
  for (auto& u : usage) {
    const std::size_t k = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(n_res)));
    std::vector<std::size_t> ids(n_res);
    for (std::size_t i = 0; i < n_res; ++i) ids[i] = i;
    rng.shuffle(ids);
    u.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(k));
  }
  const auto rates = max_min_rates(cap, usage, 1e15);

  // Property 1: feasibility — no resource oversubscribed.
  std::vector<double> load(n_res, 0.0);
  for (std::size_t f = 0; f < n_flows; ++f) {
    EXPECT_GT(rates[f], 0.0);
    for (ResourceId r : usage[f]) load[r] += rates[f];
  }
  for (std::size_t r = 0; r < n_res; ++r) {
    EXPECT_LE(load[r], cap[r] * (1.0 + 1e-9));
  }

  // Property 2: max-min optimality — every flow is blocked by some
  // saturated resource where it has (weakly) the largest rate; otherwise its
  // rate could be raised without hurting a smaller flow.
  for (std::size_t f = 0; f < n_flows; ++f) {
    bool blocked = false;
    for (ResourceId r : usage[f]) {
      const bool saturated = load[r] >= cap[r] * (1.0 - 1e-9);
      if (!saturated) continue;
      bool is_max = true;
      for (std::size_t g = 0; g < n_flows; ++g) {
        if (g == f) continue;
        for (ResourceId rr : usage[g]) {
          if (rr == r && rates[g] > rates[f] * (1.0 + 1e-9)) is_max = false;
        }
      }
      if (is_max) {
        blocked = true;
        break;
      }
    }
    EXPECT_TRUE(blocked) << "flow " << f << " could be increased";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MaxMinProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

// --- Tie-break and edge-case pins. The incremental kernel
// (flowsim/max_min_kernel.h) must reproduce these bit for bit, so the exact
// outputs below are contractual, not incidental.

TEST(MaxMin, TiedBottlenecksResolveToLowestResourceId) {
  // r0 and r1 both offer a 0.5 share in round one (strict `<` keeps r0).
  // A and B freeze off r0 in flow-id order, then C takes what B left on r1.
  const auto rates = max_min_rates({1e9, 1e9}, {{0}, {0, 1}, {1}}, 1e12);
  EXPECT_EQ(rates[0], 0.5e9);
  EXPECT_EQ(rates[1], 0.5e9);
  EXPECT_EQ(rates[2], 0.5e9);
}

TEST(MaxMin, DuplicateRowEntriesCountTwiceTowardLoad) {
  // A flow listing a resource twice consumes two shares of it but is frozen
  // only once: alone on a 1G link it gets 0.5G, not 1G. Documented quirk —
  // the cloud layer never emits duplicates, but the kernel must match.
  const auto rates = max_min_rates({1e9}, {{0, 0}}, 1e12);
  EXPECT_EQ(rates[0], 0.5e9);
  const auto mixed = max_min_rates({1e9}, {{0, 0}, {0}}, 1e12);
  // Load 3 on the shared link: the round-one share is 1/3 and both flows sit
  // on the bottleneck, so both freeze there — the duplicate entry costs every
  // sharer a third instead of a half.
  EXPECT_EQ(mixed[0], 1e9 / 3.0);
  EXPECT_EQ(mixed[1], 1e9 / 3.0);
}

TEST(MaxMin, SingleResourceComponentsAreIndependent) {
  // Three disjoint one-flow components: each flow takes its whole resource.
  // This is the base case component-scoped recompute leans on.
  const auto rates = max_min_rates({1e9, 2e9, 3e9}, {{0}, {1}, {2}}, 1e12);
  EXPECT_EQ(rates[0], 1e9);
  EXPECT_EQ(rates[1], 2e9);
  EXPECT_EQ(rates[2], 3e9);
}

TEST(MaxMin, ZeroCapacityResourceFreezesCrossingFlowsAtZero) {
  const auto rates = max_min_rates({0.0, 1e9}, {{0}, {0, 1}, {1}}, 1e12);
  EXPECT_EQ(rates[0], 0.0);
  EXPECT_EQ(rates[1], 0.0);
  EXPECT_EQ(rates[2], 1e9);  // the zero component does not starve the other
}

}  // namespace
}  // namespace choreo::flowsim

#include <gtest/gtest.h>

#include "place/baselines.h"
#include "place/constraints.h"
#include "place/greedy.h"
#include "place/ilp.h"
#include "util/rng.h"
#include "util/units.h"

namespace choreo::place {
namespace {

using units::gbps;
using units::mbps;

/// 4 machines: {0,1} share host A (2 hops to each other would be wrong — 1),
/// {2,3} are lone hosts. Hop counts: colocated 1, same rack 2, else 4.
ClusterView constrained_view() {
  ClusterView view;
  const std::size_t M = 4;
  view.rate_bps = DoubleMatrix(M, M, gbps(1));
  view.cross_traffic = DoubleMatrix(M, M, 0.0);
  view.cores.assign(M, 4.0);
  view.colocation_group = {0, 0, 1, 2};
  view.hops = DoubleMatrix(M, M, 4.0);
  auto set_hops = [&](std::size_t a, std::size_t b, double h) {
    view.hops(a, b) = h;
    view.hops(b, a) = h;
  };
  set_hops(0, 1, 1.0);  // same host
  set_hops(0, 2, 2.0);  // same rack
  set_hops(1, 2, 2.0);
  // machine 3 is 4 hops from everyone.
  view.rate_bps(0, 1) = gbps(4);
  view.rate_bps(1, 0) = gbps(4);
  return view;
}

Application chatty_pair(double cpu = 1.0) {
  Application app;
  app.cpu_demand = {cpu, cpu};
  app.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  app.traffic_bytes(0, 1) = units::gigabytes(1);
  return app;
}

TEST(Constraints, ValidateRejectsBadIndices) {
  PlacementConstraints c;
  c.separate.emplace_back(0, 5);
  EXPECT_THROW(c.validate(3), PreconditionError);
  c.separate.clear();
  c.separate.emplace_back(1, 1);
  EXPECT_THROW(c.validate(3), PreconditionError);
  c.separate.clear();
  c.latency.push_back({0, 1, 0});
  EXPECT_THROW(c.validate(3), PreconditionError);
}

TEST(Constraints, SeparateForcesDistinctHosts) {
  ClusterState state(constrained_view());
  Application app = chatty_pair();
  app.constraints.separate.emplace_back(0, 1);
  GreedyPlacer greedy(RateModel::Hose);
  const Placement p = greedy.place(app, state);
  // Without the constraint greedy would co-locate (free transfer); with it,
  // the tasks must land on different hosts — machines 0 and 1 together are
  // also forbidden (same colocation group).
  const auto& view = state.view();
  EXPECT_FALSE(view.colocated(p.machine_of_task[0], p.machine_of_task[1]));
  EXPECT_TRUE(satisfies_constraints(app.constraints, view, p));
}

TEST(Constraints, WithoutSeparateGreedyColocates) {
  ClusterState state(constrained_view());
  const Application app = chatty_pair();
  GreedyPlacer greedy(RateModel::Hose);
  const Placement p = greedy.place(app, state);
  EXPECT_EQ(p.machine_of_task[0], p.machine_of_task[1]);
}

TEST(Constraints, PinnedTaskStaysPut) {
  ClusterState state(constrained_view());
  Application app = chatty_pair();
  app.constraints.pinned[0] = 3;
  GreedyPlacer greedy(RateModel::Hose);
  const Placement p = greedy.place(app, state);
  EXPECT_EQ(p.machine_of_task[0], 3u);
}

TEST(Constraints, LatencyBoundKeepsPairClose) {
  ClusterState state(constrained_view());
  Application app = chatty_pair(3.0);  // cannot co-locate (6 > 4 cores)
  app.constraints.latency.push_back({0, 1, 2});
  app.constraints.pinned[0] = 0;  // anchor one end
  GreedyPlacer greedy(RateModel::Hose);
  const Placement p = greedy.place(app, state);
  EXPECT_EQ(p.machine_of_task[0], 0u);
  // Machine 3 (4 hops) is excluded; 1 or 2 are acceptable.
  EXPECT_NE(p.machine_of_task[1], 3u);
  EXPECT_TRUE(satisfies_constraints(app.constraints, state.view(), p));
}

TEST(Constraints, InfeasibleConstraintsThrow) {
  ClusterState state(constrained_view());
  Application app = chatty_pair();
  // Pin both tasks onto machine 3 but demand separation: impossible.
  app.constraints.pinned[0] = 3;
  app.constraints.pinned[1] = 3;
  app.constraints.separate.emplace_back(0, 1);
  GreedyPlacer greedy(RateModel::Hose);
  EXPECT_THROW(greedy.place(app, state), PlacementError);
}

TEST(Constraints, IlpHonoursSeparationAndPinning) {
  ClusterState state(constrained_view());
  Application app = chatty_pair();
  app.constraints.separate.emplace_back(0, 1);
  app.constraints.pinned[0] = 2;
  IlpPlacer ilp(RateModel::Hose);
  const Placement p = ilp.place(app, state);
  EXPECT_EQ(p.machine_of_task[0], 2u);
  EXPECT_TRUE(satisfies_constraints(app.constraints, state.view(), p));
}

TEST(Constraints, BruteForceMatchesIlpUnderConstraints) {
  ClusterState state(constrained_view());
  Application app;
  app.cpu_demand = {1.0, 1.0, 1.0};
  app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
  app.traffic_bytes(0, 1) = units::megabytes(400);
  app.traffic_bytes(1, 2) = units::megabytes(200);
  app.constraints.separate.emplace_back(0, 2);
  IlpPlacer ilp(RateModel::Hose);
  BruteForcePlacer brute(RateModel::Hose);
  const Placement pi = ilp.place(app, state);
  const Placement pb = brute.place(app, state);
  const double ti = estimate_completion_s(app, pi, state.view(), RateModel::Hose);
  const double tb = estimate_completion_s(app, pb, state.view(), RateModel::Hose);
  EXPECT_NEAR(ti, tb, 1e-9 + tb * 1e-9);
  EXPECT_TRUE(satisfies_constraints(app.constraints, state.view(), pi));
  EXPECT_TRUE(satisfies_constraints(app.constraints, state.view(), pb));
}

TEST(Constraints, CombinePreservesWithOffsets) {
  Application a = chatty_pair();
  a.constraints.separate.emplace_back(0, 1);
  Application b = chatty_pair();
  b.constraints.pinned[1] = 2;
  b.constraints.latency.push_back({0, 1, 2});
  const Application c = combine({a, b});
  ASSERT_EQ(c.constraints.separate.size(), 1u);
  EXPECT_EQ(c.constraints.separate[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  ASSERT_EQ(c.constraints.latency.size(), 1u);
  EXPECT_EQ(c.constraints.latency[0].a, 2u);
  EXPECT_EQ(c.constraints.latency[0].b, 3u);
  EXPECT_EQ(c.constraints.pinned.at(3), 2u);
}

TEST(Constraints, LatencyWithoutHopsDataThrows) {
  ClusterView view = constrained_view();
  view.hops = DoubleMatrix();  // no traceroute data
  ClusterState state(view);
  Application app = chatty_pair(3.0);
  app.constraints.latency.push_back({0, 1, 2});
  GreedyPlacer greedy(RateModel::Hose);
  EXPECT_THROW(greedy.place(app, state), PreconditionError);
}

/// Property sweep: greedy placements under random constraints always satisfy
/// them (or throw), across seeds.
class ConstraintProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConstraintProperty, GreedySatisfiesOrThrows) {
  Rng rng(GetParam());
  ClusterView view = constrained_view();
  ClusterState state(view);
  Application app;
  const std::size_t tasks = static_cast<std::size_t>(rng.uniform_int(3, 5));
  app.cpu_demand.assign(tasks, 1.0);
  app.traffic_bytes = DoubleMatrix(tasks, tasks, 0.0);
  for (std::size_t i = 0; i < tasks; ++i) {
    for (std::size_t j = 0; j < tasks; ++j) {
      if (i != j && rng.chance(0.5)) {
        app.traffic_bytes(i, j) = rng.uniform(1e6, 1e9);
      }
    }
  }
  // Random constraints.
  if (rng.chance(0.7)) {
    app.constraints.separate.emplace_back(0, 1 + rng.uniform_int(0, 1));
  }
  if (rng.chance(0.5)) {
    app.constraints.pinned[tasks - 1] =
        static_cast<std::size_t>(rng.uniform_int(0, 3));
  }
  if (rng.chance(0.5)) {
    app.constraints.latency.push_back(
        {0, tasks - 1, static_cast<std::size_t>(rng.uniform_int(1, 4))});
  }
  GreedyPlacer greedy(RateModel::Hose);
  try {
    const Placement p = greedy.place(app, state);
    EXPECT_TRUE(satisfies_constraints(app.constraints, view, p));
    // CPU must also hold.
    std::vector<double> used(view.machine_count(), 0.0);
    for (std::size_t t = 0; t < tasks; ++t) used[p.machine_of_task[t]] += 1.0;
    for (std::size_t m = 0; m < view.machine_count(); ++m) {
      EXPECT_LE(used[m], view.cores[m] + 1e-9);
    }
  } catch (const PlacementError&) {
    // Over-constrained instances may be infeasible; that is a valid outcome.
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConstraints, ConstraintProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace choreo::place

// Statistical checks on the emulated providers: the distributions the cloud
// layer is calibrated to produce (DESIGN.md section 2) — hose-rate mixture
// fractions, co-location rates, hop-count histograms — stay within their
// bands. These tests pin the Fig 1/2/8 substrate so a profile tweak that
// would silently invalidate those figures fails here first.

#include <gtest/gtest.h>

#include <map>

#include "cloud/cloud.h"
#include "util/stats.h"
#include "util/units.h"

namespace choreo::cloud {
namespace {

using units::mbps;

TEST(Ec2Distribution, HoseMixtureFractions) {
  Cloud cloud(ec2_2013(), 1234);
  const auto vms = cloud.allocate_vms(400);
  std::size_t band_900_1100 = 0, slow = 0, fast = 0;
  for (VmId vm : vms) {
    const double r = cloud.vm_hose_bps(vm);
    if (r >= mbps(900) && r <= mbps(1160)) {
      ++band_900_1100;
    } else if (r < mbps(900)) {
      ++slow;
    } else {
      ++fast;
    }
  }
  const double n = static_cast<double>(vms.size());
  // Calibration: ~81% in the two knees, ~19% slow band, ~1% unthrottled.
  EXPECT_NEAR(band_900_1100 / n, 0.80, 0.07);
  EXPECT_NEAR(slow / n, 0.19, 0.07);
  EXPECT_LT(fast / n, 0.04);
}

TEST(Ec2Distribution, KneesAt950And1100) {
  Cloud cloud(ec2_2013(), 99);
  const auto vms = cloud.allocate_vms(600);
  std::size_t knee_low = 0, knee_high = 0;
  for (VmId vm : vms) {
    const double r = cloud.vm_hose_bps(vm);
    if (r >= mbps(880) && r <= mbps(990)) ++knee_low;
    if (r >= mbps(1030) && r <= mbps(1160)) ++knee_high;
  }
  // Both knees populated, the lower one more heavily (0.50 vs 0.31 weights).
  EXPECT_GT(knee_low, knee_high);
  EXPECT_GT(knee_high, 100u);
}

TEST(Ec2Distribution, ColocationRateNearOnePercentOfPairs) {
  // Across many 10-VM tenants, same-host pairs ~1-3% of pairs (paper: 18/1710).
  std::size_t colocated_pairs = 0, total_pairs = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Cloud cloud(ec2_2013(), 5000 + seed);
    const auto vms = cloud.allocate_vms(10);
    for (std::size_t i = 0; i < vms.size(); ++i) {
      for (std::size_t j = i + 1; j < vms.size(); ++j) {
        ++total_pairs;
        if (cloud.vm_host(vms[i]) == cloud.vm_host(vms[j])) ++colocated_pairs;
      }
    }
  }
  const double frac = static_cast<double>(colocated_pairs) / static_cast<double>(total_pairs);
  EXPECT_GT(frac, 0.002);
  EXPECT_LT(frac, 0.06);
}

TEST(Ec2Distribution, HopHistogramDominatedByLongPaths) {
  Cloud cloud(ec2_2013(), 77);
  const auto vms = cloud.allocate_vms(40);
  std::map<std::size_t, std::size_t> histogram;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    for (std::size_t j = i + 1; j < vms.size(); ++j) {
      ++histogram[cloud.traceroute_hops(vms[i], vms[j])];
    }
  }
  // "Many of the paths are more than one or two hops" (§4.2).
  std::size_t short_paths = histogram[1] + histogram[2];
  std::size_t long_paths = histogram[4] + histogram[6] + histogram[8];
  EXPECT_GT(long_paths, short_paths * 5);
  EXPECT_GT(histogram[8], 0u);  // cross-region paths exist
}

TEST(RackspaceDistribution, HoseSpikeAt300) {
  Cloud cloud(rackspace(), 42);
  const auto vms = cloud.allocate_vms(200);
  std::vector<double> rates;
  for (VmId vm : vms) rates.push_back(cloud.vm_hose_bps(vm));
  const Summary s = summarize(rates);
  EXPECT_NEAR(s.mean, mbps(300), mbps(1));
  EXPECT_LT(s.stddev, mbps(3));
}

TEST(LegacyEc2Distribution, WideSpreadNoMultiGig) {
  Cloud cloud(ec2_2012(), 7);
  const auto vms = cloud.allocate_vms(300);
  std::vector<double> rates;
  for (VmId vm : vms) rates.push_back(cloud.vm_hose_bps(vm));
  const Summary s = summarize(rates);
  EXPECT_LT(s.p05, mbps(300));   // deep slow tail (Fig 1)
  EXPECT_GT(s.p95, mbps(750));
  EXPECT_LT(s.max, mbps(1300));  // no 4G outliers in the 2012 data
}

TEST(Providers, PingRttScalesWithDistance) {
  Cloud cloud(ec2_2013(), 21);
  const auto vms = cloud.allocate_vms(40);
  // Find a same-rack pair and a cross-region pair.
  double near_rtt = -1.0, far_rtt = -1.0;
  for (std::size_t i = 0; i < vms.size() && (near_rtt < 0 || far_rtt < 0); ++i) {
    for (std::size_t j = i + 1; j < vms.size(); ++j) {
      const std::size_t hops = cloud.traceroute_hops(vms[i], vms[j]);
      if (hops == 2 && near_rtt < 0) near_rtt = cloud.ping_rtt_s(vms[i], vms[j]);
      if (hops == 8 && far_rtt < 0) far_rtt = cloud.ping_rtt_s(vms[i], vms[j]);
    }
  }
  ASSERT_GT(near_rtt, 0.0);
  ASSERT_GT(far_rtt, 0.0);
  EXPECT_GT(far_rtt, near_rtt);
}

TEST(Providers, MeasurementNoiseIsSmallAndUnbiased) {
  Cloud cloud(rackspace(), 11);
  const auto vms = cloud.allocate_vms(4);
  if (cloud.vm_host(vms[0]) == cloud.vm_host(vms[1])) GTEST_SKIP();
  Accumulator acc;
  for (int k = 0; k < 40; ++k) {
    acc.add(cloud.netperf_bps(vms[0], vms[1], 2.0, 50 + k));
  }
  const double truth = cloud.true_path_rate_bps(vms[0], vms[1], 50);
  EXPECT_NEAR(acc.mean(), truth, truth * 0.01);
  EXPECT_LT(acc.stddev(), truth * 0.01);
}

}  // namespace
}  // namespace choreo::cloud

#include "flowsim/sim.h"

#include <gtest/gtest.h>

#include <limits>

#include "net/topology.h"
#include "util/units.h"

namespace choreo::flowsim {
namespace {

using net::NodeId;
using net::NodeKind;
using net::Topology;

Topology two_hosts(double rate = 1e9) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::Host, "a");
  const NodeId b = t.add_node(NodeKind::Host, "b");
  t.add_duplex_link(a, b, rate, 10e-6);
  return t;
}

TEST(FlowSim, SingleFlowCompletionTime) {
  const Topology t = two_hosts(1e9);
  Sim sim(t);
  FlowSpec spec;
  spec.src = 0;
  spec.dst = 1;
  spec.bytes = units::gigabytes(1);  // 8 seconds at 1 Gbit/s
  const FlowId f = sim.add_flow(spec);
  sim.run_to_completion();
  EXPECT_TRUE(sim.flow(f).finished);
  EXPECT_NEAR(sim.flow(f).completion_time, 8.0, 1e-6);
  EXPECT_NEAR(sim.flow(f).bytes_received, 1e9, 1.0);
}

TEST(FlowSim, TwoFlowsShareThenSpeedUp) {
  // Two equal flows on one 1G link: the first half transfers at 500 Mbit/s
  // each; when the smaller one finishes, the bigger accelerates.
  const Topology t = two_hosts(1e9);
  Sim sim(t);
  FlowSpec small;
  small.src = 0;
  small.dst = 1;
  small.bytes = 125e6;  // 1 Gbit -> alone 1s, shared 2s
  FlowSpec big = small;
  big.bytes = 250e6;
  const FlowId fs = sim.add_flow(small);
  const FlowId fb = sim.add_flow(big);
  sim.run_to_completion();
  // Shared 500 Mbit/s until small finishes at t=2; big then has 125 MB left
  // at 1 Gbit/s -> 1 more second.
  EXPECT_NEAR(sim.flow(fs).completion_time, 2.0, 1e-6);
  EXPECT_NEAR(sim.flow(fb).completion_time, 3.0, 1e-6);
}

TEST(FlowSim, StaggeredArrival) {
  const Topology t = two_hosts(1e9);
  Sim sim(t);
  FlowSpec first;
  first.src = 0;
  first.dst = 1;
  first.bytes = 250e6;  // 2s alone
  FlowSpec second = first;
  second.start_time = 1.0;
  second.bytes = 125e6;
  const FlowId f1 = sim.add_flow(first);
  const FlowId f2 = sim.add_flow(second);
  sim.run_to_completion();
  // f1 alone for 1s (125 MB done), shares 1G for the rest.
  // At t=1: f1 has 125 MB left, f2 has 125 MB; both at 500 Mbit/s -> 2s.
  EXPECT_NEAR(sim.flow(f1).completion_time, 3.0, 1e-6);
  EXPECT_NEAR(sim.flow(f2).completion_time, 3.0, 1e-6);
}

TEST(FlowSim, ExtraResourceHoseCap) {
  const Topology t = two_hosts(10e9);
  Sim sim(t);
  const ResourceId hose = sim.add_resource(1e9);
  FlowSpec a;
  a.src = 0;
  a.dst = 1;
  a.bytes = 125e6;
  a.extra_resources = {hose};
  FlowSpec b = a;
  const FlowId fa = sim.add_flow(a);
  const FlowId fb = sim.add_flow(b);
  sim.run_to_completion();
  // Both share the 1G hose despite the 10G link: 2s each (simultaneous).
  EXPECT_NEAR(sim.flow(fa).completion_time, 2.0, 1e-6);
  EXPECT_NEAR(sim.flow(fb).completion_time, 2.0, 1e-6);
}

TEST(FlowSim, RateCapRespected) {
  const Topology t = two_hosts(1e9);
  Sim sim(t);
  FlowSpec spec;
  spec.src = 0;
  spec.dst = 1;
  spec.bytes = 125e6;
  spec.rate_cap = 100e6;
  const FlowId f = sim.add_flow(spec);
  sim.run_to_completion();
  EXPECT_NEAR(sim.flow(f).completion_time, 10.0, 1e-6);
}

TEST(FlowSim, RateCapDoesNotRedistribute) {
  // rate_cap is applied *after* waterfilling: the capped flow is frozen at
  // min(fair share, cap) but its unused share is NOT handed back to other
  // flows. On a 1G link split two ways, capping A at 100M leaves B at its
  // 500M fair share, not 900M. Cap-aware redistribution is flagged as future
  // work in docs/ARCHITECTURE.md; this test pins the current contract.
  const Topology t = two_hosts(1e9);
  Sim sim(t);
  FlowSpec capped;
  capped.src = 0;
  capped.dst = 1;
  capped.bytes = kInfiniteBytes;
  capped.rate_cap = 100e6;
  FlowSpec uncapped = capped;
  uncapped.rate_cap = std::numeric_limits<double>::infinity();
  const FlowId fa = sim.add_flow(capped);
  const FlowId fb = sim.add_flow(uncapped);
  sim.run_until(2.0);
  EXPECT_EQ(sim.flow(fa).rate_bps, 100e6);
  EXPECT_EQ(sim.flow(fb).rate_bps, 0.5e9);
  EXPECT_EQ(sim.flow(fa).bytes_received, 2.0 * 100e6 / 8.0);
  EXPECT_EQ(sim.flow(fb).bytes_received, 2.0 * 0.5e9 / 8.0);
}

TEST(FlowSim, IntraHostFlowUsesUnconstrainedRate) {
  Topology t;
  t.add_node(NodeKind::Host, "a");
  Sim sim(t, /*unconstrained_rate=*/8e9);
  FlowSpec spec;
  spec.src = 0;
  spec.dst = 0;
  spec.bytes = 1e9;
  const FlowId f = sim.add_flow(spec);
  sim.run_to_completion();
  EXPECT_NEAR(sim.flow(f).completion_time, 1.0, 1e-6);
}

TEST(FlowSim, PersistentFlowAccumulatesBytes) {
  const Topology t = two_hosts(1e9);
  Sim sim(t);
  FlowSpec spec;
  spec.src = 0;
  spec.dst = 1;
  spec.bytes = kInfiniteBytes;
  const FlowId f = sim.add_flow(spec);
  sim.run_until(4.0);
  EXPECT_FALSE(sim.flow(f).finished);
  EXPECT_NEAR(sim.flow(f).bytes_received, 500e6, 1.0);
  EXPECT_DOUBLE_EQ(sim.flow(f).rate_bps, 1e9);
}

TEST(FlowSim, SamplerSeesEvolvingRates) {
  const Topology t = two_hosts(1e9);
  Sim sim(t);
  FlowSpec probe;
  probe.src = 0;
  probe.dst = 1;
  probe.bytes = kInfiniteBytes;
  const FlowId f = sim.add_flow(probe);
  FlowSpec competitor = probe;
  competitor.start_time = 1.0;
  sim.add_flow(competitor);

  std::vector<double> rates;
  sim.add_sampler(0.25, 0.5, [&](double) { rates.push_back(sim.flow(f).rate_bps); });
  sim.run_until(2.0);
  ASSERT_GE(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates.front(), 1e9);    // alone at t=0.25
  EXPECT_DOUBLE_EQ(rates.back(), 0.5e9);   // sharing after t=1
}

TEST(FlowSim, OnOffFlowTogglesLoad) {
  const Topology t = two_hosts(1e9);
  Sim sim(t);
  FlowSpec probe;
  probe.src = 0;
  probe.dst = 1;
  probe.bytes = kInfiniteBytes;
  const FlowId f = sim.add_flow(probe);
  FlowSpec bg = probe;
  sim.add_on_off_flow(bg, 0.5, 0.5, true, 99);

  std::vector<double> rates;
  sim.add_sampler(0.05, 0.05, [&](double) { rates.push_back(sim.flow(f).rate_bps); });
  sim.run_until(10.0);
  bool saw_full = false, saw_half = false;
  for (double r : rates) {
    if (r > 0.99e9) saw_full = true;
    if (r < 0.51e9) saw_half = true;
  }
  EXPECT_TRUE(saw_full);
  EXPECT_TRUE(saw_half);
}

TEST(FlowSim, MakespanTracksLastCompletion) {
  const Topology t = two_hosts(1e9);
  Sim sim(t);
  FlowSpec spec;
  spec.src = 0;
  spec.dst = 1;
  spec.bytes = 125e6;
  sim.add_flow(spec);
  spec.bytes = 250e6;
  sim.add_flow(spec);
  sim.run_to_completion();
  EXPECT_NEAR(sim.makespan(), 3.0, 1e-6);
}

TEST(FlowSim, RunToCompletionRequiresFiniteFlow) {
  const Topology t = two_hosts(1e9);
  Sim sim(t);
  FlowSpec spec;
  spec.src = 0;
  spec.dst = 1;
  spec.bytes = kInfiniteBytes;
  sim.add_flow(spec);
  EXPECT_THROW(sim.run_to_completion(), PreconditionError);
}

TEST(FlowSim, ArrivalBeforeNowRejected) {
  const Topology t = two_hosts(1e9);
  Sim sim(t);
  sim.run_until(5.0);
  FlowSpec spec;
  spec.src = 0;
  spec.dst = 1;
  spec.bytes = 1.0;
  spec.start_time = 1.0;  // in the past
  EXPECT_THROW(sim.add_flow(spec), PreconditionError);
}

}  // namespace
}  // namespace choreo::flowsim

// The obs plane's two JSON emitters — Tracer::to_json (Chrome trace-event
// format) and MetricsSnapshot::to_json — must produce documents the strict
// in-test parser accepts, with the structural properties trace viewers and
// bench/check_bench_json.py assume: a non-empty traceEvents array, complete
// spans with finite non-negative ts/dur, ts monotone within each lane, and
// sim-time attached as args where the caller runs under a simulation clock.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "json_test_util.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"

namespace choreo::obs {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

TEST(ObsTrace, JsonRoundTripsThroughTheStrictParser) {
  Tracer tracer(64);
  tracer.set_lane_name(0, "driver");
  tracer.set_lane_name(1, "tenant0");

  Observer obsv;
  obsv.tracer = &tracer;
  {
    SpanGuard outer(obsv.tracer, 0, "measure.cycle", "measure");
    outer.arg("pairs_probed", 12.0);
    outer.sim(30.0, 2.5);
    SpanGuard inner(obsv.tracer, 1, "place.app", "place");
    inner.arg("tasks", 4.0);
  }

  const std::string text = tracer.to_json();
  const auto parsed = JsonParser(text).parse();
  ASSERT_TRUE(parsed.has_value()) << text;
  ASSERT_EQ(parsed->kind, JsonValue::Kind::Object);

  const JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::Array);

  std::size_t spans = 0, metadata = 0;
  bool saw_sim_args = false;
  for (const JsonValue& ev : events->array) {
    const JsonValue* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(ph->string, "X");
    ++spans;
    EXPECT_FALSE(ev.find("name")->string.empty());
    EXPECT_FALSE(ev.find("cat")->string.empty());
    EXPECT_GE(ev.find("ts")->number, 0.0);
    EXPECT_GE(ev.find("dur")->number, 0.0);
    const JsonValue* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    if (const JsonValue* sim_ts = args->find("sim_ts_s")) {
      saw_sim_args = true;
      EXPECT_EQ(sim_ts->number, 30.0);
      EXPECT_EQ(args->find("sim_dur_s")->number, 2.5);
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_GE(metadata, 2u);  // two named lanes (plus the process_name event)
  EXPECT_TRUE(saw_sim_args);
}

TEST(ObsTrace, TsIsMonotonePerLaneAfterConcurrentCommits) {
  Tracer tracer(1 << 12);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        SpanGuard span(&tracer, t, "bench.op", "bench");
        span.arg("i", static_cast<double>(i));
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(tracer.size(), 800u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const auto parsed = JsonParser(tracer.to_json()).parse();
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<double> last_ts(4, -1.0);
  std::size_t spans = 0;
  for (const JsonValue& ev : events->array) {
    if (ev.find("ph")->string != "X") continue;
    ++spans;
    const auto lane = static_cast<std::size_t>(ev.find("tid")->number);
    ASSERT_LT(lane, last_ts.size());
    EXPECT_GE(ev.find("ts")->number, last_ts[lane]);
    last_ts[lane] = ev.find("ts")->number;
  }
  EXPECT_EQ(spans, 800u);
}

TEST(ObsTrace, OverflowDropsAreCountedNeverSilent) {
  Tracer tracer(16);
  for (int i = 0; i < 50; ++i) {
    SpanGuard span(&tracer, 0, "bench.op", "bench");
  }
  EXPECT_EQ(tracer.size(), 16u);   // lossless until capacity
  EXPECT_EQ(tracer.dropped(), 34u);  // then counted, never grown

  // The document still parses and still carries the kept spans.
  const auto parsed = JsonParser(tracer.to_json()).parse();
  ASSERT_TRUE(parsed.has_value());
  std::size_t spans = 0;
  for (const JsonValue& ev : parsed->find("traceEvents")->array) {
    spans += ev.find("ph")->string == "X" ? 1 : 0;
  }
  EXPECT_EQ(spans, 16u);
}

TEST(ObsTrace, NullTracerSpansAreInert) {
  // The runtime-off branch: a SpanGuard over a null tracer must be safe to
  // construct, annotate, and destroy.
  SpanGuard span(nullptr, 0, "bench.op", "bench");
  span.arg("x", 1.0);
  span.sim(10.0, 1.0);
  NullSpan null;
  null.arg("x", 1.0);
  null.sim(10.0, 1.0);
}

TEST(ObsMetrics, SnapshotJsonRoundTripsThroughTheStrictParser) {
  Registry registry(2);
  registry.counter("measure.cycles").add(7, 0);
  registry.counter("measure.cycles").add(5, 1);
  registry.gauge("serve.epoch").set(3.0);
  const Hist h = registry.histogram("serve.latency_us");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i), i % 2);

  const MetricsSnapshot snap = registry.snapshot();
  const std::string text = snap.to_json();
  const auto parsed = JsonParser(text).parse();
  ASSERT_TRUE(parsed.has_value()) << text;

  EXPECT_EQ(parsed->find("kind")->string, "choreo_metrics");
  const JsonValue* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("measure.cycles")->number, 12.0);
  EXPECT_EQ(parsed->find("gauges")->find("serve.epoch")->number, 3.0);
  const JsonValue* hist = parsed->find("histograms")->find("serve.latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->number, 100.0);
  EXPECT_EQ(hist->find("min")->number, 1.0);
  EXPECT_EQ(hist->find("max")->number, 100.0);
  EXPECT_GT(hist->find("p50")->number, 0.0);
}

}  // namespace
}  // namespace choreo::obs

#include "util/args.h"

#include <gtest/gtest.h>

#include "util/require.h"

namespace choreo {
namespace {

Args standard() {
  Args args;
  args.add_option("vms", "10", "VM count");
  args.add_option("rate", "1.5", "some rate");
  args.add_flag("verbose", "chatty output");
  return args;
}

std::vector<const char*> argv_of(std::initializer_list<const char*> items) {
  return std::vector<const char*>(items);
}

TEST(Args, DefaultsApply) {
  Args args = standard();
  const auto argv = argv_of({"prog"});
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get("vms"), "10");
  EXPECT_EQ(args.get_int("vms"), 10);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 1.5);
  EXPECT_FALSE(args.get_flag("verbose"));
}

TEST(Args, ParsesOptionsAndFlags) {
  Args args = standard();
  const auto argv = argv_of({"prog", "--vms", "25", "--verbose", "--rate", "0.25"});
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.get_int("vms"), 25);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 0.25);
  EXPECT_TRUE(args.get_flag("verbose"));
}

TEST(Args, PositionalArguments) {
  Args args = standard();
  const auto argv = argv_of({"prog", "input.txt", "--vms", "3", "more"});
  args.parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "more");
}

TEST(Args, UnknownOptionThrows) {
  Args args = standard();
  const auto argv = argv_of({"prog", "--bogus", "1"});
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()), PreconditionError);
}

TEST(Args, MissingValueThrows) {
  Args args = standard();
  const auto argv = argv_of({"prog", "--vms"});
  EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()), PreconditionError);
}

TEST(Args, BadNumberThrows) {
  Args args = standard();
  const auto argv = argv_of({"prog", "--vms", "ten"});
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(args.get_int("vms"), PreconditionError);
  EXPECT_EQ(args.get("vms"), "ten");  // raw access still works
}

TEST(Args, UndeclaredAccessThrows) {
  Args args = standard();
  const auto argv = argv_of({"prog"});
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(args.get("nope"), PreconditionError);
  EXPECT_THROW(args.get_flag("vms"), PreconditionError);  // not a flag
}

TEST(Args, DuplicateDeclarationThrows) {
  Args args;
  args.add_option("x", "1", "");
  EXPECT_THROW(args.add_option("x", "2", ""), PreconditionError);
  EXPECT_THROW(args.add_flag("x", ""), PreconditionError);
}

TEST(Args, UsageListsEverything) {
  const Args args = standard();
  const std::string u = args.usage("prog");
  EXPECT_NE(u.find("--vms"), std::string::npos);
  EXPECT_NE(u.find("--verbose"), std::string::npos);
  EXPECT_NE(u.find("default: 10"), std::string::npos);
}

}  // namespace
}  // namespace choreo

// §3.3.2 generalization: rack clustering from traceroute and all-pairs
// interference prediction, validated against actual concurrent probes on the
// emulated cloud.

#include <gtest/gtest.h>

#include "measure/bottleneck.h"
#include "util/rng.h"

namespace choreo::measure {
namespace {

TEST(RackClustering, GroupsMatchGroundTruth) {
  cloud::ProviderProfile profile = cloud::ec2_2013();
  profile.colocate_prob = 0.3;  // ensure some same-host and same-rack pairs
  cloud::Cloud c(profile, 91);
  const auto vms = c.allocate_vms(12);
  const std::vector<int> rack = cluster_by_rack(c, vms);
  ASSERT_EQ(rack.size(), vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i) {
    for (std::size_t j = 0; j < vms.size(); ++j) {
      if (i == j) continue;
      const bool same_rack_truth =
          c.topology().node(c.vm_host(vms[i])).rack ==
          c.topology().node(c.vm_host(vms[j])).rack;
      EXPECT_EQ(rack[i] == rack[j], same_rack_truth)
          << "vm pair " << i << "," << j;
    }
  }
}

TEST(RackClustering, SingletonGroupsWhenSpread) {
  cloud::ProviderProfile profile = cloud::ec2_2013();
  profile.colocate_prob = 0.0;
  cloud::Cloud c(profile, 17);
  const auto vms = c.allocate_vms(6);
  const std::vector<int> rack = cluster_by_rack(c, vms);
  // With 240 hosts and 6 VMs, same-rack collisions are unlikely but allowed;
  // groups must at minimum be internally consistent (checked above). Here we
  // simply require a sane id range.
  for (int g : rack) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, static_cast<int>(vms.size()));
  }
}

TEST(InterferencePredictionTest, SourceHoseMatchesProbes) {
  // On a hose-model cloud, prediction with BottleneckSite::SourceHose must
  // match actual concurrent-probe interference for a sample of path pairs.
  cloud::Cloud c(cloud::ec2_2013(), 33);
  const auto vms = c.allocate_vms(8);
  const InterferencePrediction pred =
      predict_all_interference(c, vms, BottleneckSite::SourceHose);

  Rng rng(5);
  std::size_t checked = 0, agreed = 0;
  for (int trial = 0; trial < 25 && checked < 15; ++trial) {
    const std::size_t p = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pred.paths.size()) - 1));
    const std::size_t q = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pred.paths.size()) - 1));
    if (p == q) continue;
    const auto [a, b] = pred.paths[p];
    const auto [cc, d] = pred.paths[q];
    // Skip overlapping endpoints other than the same-source case the rule
    // covers, and skip same-host paths (vswitch, not hose).
    if (b == cc || b == d || a == d) continue;
    if (c.vm_host(a) == c.vm_host(b) || c.vm_host(cc) == c.vm_host(d)) continue;
    const InterferenceProbe probe =
        probe_interference(c, a, b, cc, d, 3.0, 0.25, 1000 + trial);
    ++checked;
    if (probe.interferes == pred.interferes[p][q]) ++agreed;
  }
  ASSERT_GE(checked, 10u);
  // The prediction is conservative but on a pure hose cloud it should agree
  // almost always.
  EXPECT_GE(agreed, checked - 1);
}

TEST(InterferencePredictionTest, TorRuleIsBroaderThanHoseRule) {
  cloud::ProviderProfile profile = cloud::ec2_2013();
  profile.colocate_prob = 0.4;  // same racks occur
  cloud::Cloud c(profile, 47);
  const auto vms = c.allocate_vms(10);
  const auto hose = predict_all_interference(c, vms, BottleneckSite::SourceHose);
  const auto tor = predict_all_interference(c, vms, BottleneckSite::TorUplink);
  std::size_t hose_count = 0, tor_count = 0;
  for (std::size_t p = 0; p < hose.paths.size(); ++p) {
    for (std::size_t q = 0; q < hose.paths.size(); ++q) {
      hose_count += hose.interferes[p][q];
      tor_count += tor.interferes[p][q];
      // Rule 1 subsumes the same-source case.
      if (hose.interferes[p][q]) {
        EXPECT_TRUE(tor.interferes[p][q]);
      }
    }
  }
  EXPECT_GE(tor_count, hose_count);
}

}  // namespace
}  // namespace choreo::measure

// Differential pin for the sharded control plane: core::ShardedSession must
// reproduce the single-threaded MultiTenantSession bit-identically — every
// event, outcome, placement, and accounting double, per tenant and in the
// aggregate — for every shard count and thread count, over a randomized
// multi-tenant corpus that exercises bursty MMPP arrivals, streaming traces,
// queueing, rejection, and migration. The oracle is kept verbatim; any
// divergence is a bug in the arbiter's conservative draw ordering.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/sharded.h"
#include "util/units.h"
#include "workload/generator.h"
#include "workload/stream.h"

namespace choreo::core {
namespace {

using units::gigabytes;

void expect_logs_identical(const SessionLog& ref, const SessionLog& got,
                           const std::string& label) {
  ASSERT_EQ(ref.events.size(), got.events.size()) << label;
  for (std::size_t i = 0; i < ref.events.size(); ++i) {
    const SessionEvent& a = ref.events[i];
    const SessionEvent& b = got.events[i];
    ASSERT_EQ(a.time_s, b.time_s) << label << " event " << i;
    ASSERT_EQ(a.kind, b.kind) << label << " event " << i;
    ASSERT_EQ(a.app, b.app) << label << " event " << i;
    ASSERT_EQ(a.tenant, b.tenant) << label << " event " << i;
    ASSERT_EQ(a.tasks_migrated, b.tasks_migrated) << label << " event " << i;
    ASSERT_EQ(a.adopted, b.adopted) << label << " event " << i;
  }
  ASSERT_EQ(ref.apps.size(), got.apps.size()) << label;
  for (std::size_t i = 0; i < ref.apps.size(); ++i) {
    const AppOutcome& a = ref.apps[i];
    const AppOutcome& b = got.apps[i];
    ASSERT_EQ(a.name, b.name) << label << " app " << i;
    ASSERT_EQ(a.arrival_s, b.arrival_s) << label << " app " << i;
    ASSERT_EQ(a.placed_s, b.placed_s) << label << " app " << i;
    ASSERT_EQ(a.finished_s, b.finished_s) << label << " app " << i;
    ASSERT_EQ(a.rejected, b.rejected) << label << " app " << i;
    ASSERT_EQ(a.placement.machine_of_task, b.placement.machine_of_task)
        << label << " app " << i;
  }
  EXPECT_EQ(ref.reevaluations, got.reevaluations) << label;
  EXPECT_EQ(ref.reevaluations_adopted, got.reevaluations_adopted) << label;
  EXPECT_EQ(ref.tasks_migrated, got.tasks_migrated) << label;
  EXPECT_EQ(ref.rejected, got.rejected) << label;
  EXPECT_EQ(ref.total_runtime_s, got.total_runtime_s) << label;
  EXPECT_EQ(ref.measurement_wall_s, got.measurement_wall_s) << label;
  EXPECT_EQ(ref.pairs_probed, got.pairs_probed) << label;
  EXPECT_EQ(ref.pairs_volatile, got.pairs_volatile) << label;
  EXPECT_EQ(ref.pairs_predictable, got.pairs_predictable) << label;
  EXPECT_EQ(ref.pairs_unpredictable, got.pairs_unpredictable) << label;
  EXPECT_EQ(ref.pairs_changepoint, got.pairs_changepoint) << label;
  EXPECT_EQ(ref.pairs_predicted, got.pairs_predicted) << label;
}

void expect_multi_identical(const MultiTenantLog& ref, const MultiTenantLog& got,
                            const std::string& label) {
  ASSERT_EQ(ref.tenants.size(), got.tenants.size()) << label;
  for (std::size_t i = 0; i < ref.tenants.size(); ++i) {
    expect_logs_identical(ref.tenants[i], got.tenants[i],
                          label + " tenant " + std::to_string(i));
  }
  expect_logs_identical(ref.aggregate, got.aggregate, label + " aggregate");
}

void expect_stats_identical(const std::vector<SessionRuntime::Stats>& ref,
                            const std::vector<SessionRuntime::Stats>& got,
                            const std::string& label) {
  ASSERT_EQ(ref.size(), got.size()) << label;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].events_processed, got[i].events_processed) << label << " " << i;
    EXPECT_EQ(ref[i].arrivals, got[i].arrivals) << label << " " << i;
    EXPECT_EQ(ref[i].placements, got[i].placements) << label << " " << i;
    EXPECT_EQ(ref[i].departures, got[i].departures) << label << " " << i;
    EXPECT_EQ(ref[i].retries, got[i].retries) << label << " " << i;
    EXPECT_EQ(ref[i].measure_cycles, got[i].measure_cycles) << label << " " << i;
    EXPECT_EQ(ref[i].reevaluations, got[i].reevaluations) << label << " " << i;
  }
}

/// A handful of hand-built applications per tenant with the control-plane
/// hazards the corpus must hit: same-instant duplicates (queue ties), fat
/// apps that saturate small slices (deferral / rejection), and chat apps
/// that depart at their placement instant.
std::vector<place::Application> draw_apps(Rng& rng, std::size_t count) {
  workload::GeneratorConfig gen;
  gen.min_tasks = 3;
  gen.max_tasks = 5;
  gen.min_cpu = 0.5;
  gen.max_cpu = 3.0;
  gen.median_transfer_bytes = 400e6;

  std::vector<place::Application> apps;
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    place::Application app;
    const double flavor = rng.uniform(0.0, 1.0);
    if (flavor < 0.15) {
      app.name = "chat" + std::to_string(i);
      app.cpu_demand = {0.5, 0.5};
      app.traffic_bytes = DoubleMatrix(2, 2, 0.0);
      app.traffic_bytes(0, 1) = 1e3;
    } else if (flavor < 0.45) {
      app.name = "fat" + std::to_string(i);
      app.cpu_demand = {4.0, 4.0, 4.0};
      app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
      app.traffic_bytes(0, 1) = gigabytes(rng.uniform(3.0, 8.0));
      app.traffic_bytes(1, 2) = gigabytes(rng.uniform(1.0, 4.0));
    } else {
      app = workload::generate_app(rng, gen);
      app.name += std::to_string(i);
    }
    if (i > 0 && rng.chance(0.25)) {
      // t unchanged: simultaneous with the previous arrival.
    } else {
      t += rng.chance(0.15) ? rng.uniform(200.0, 900.0) : rng.uniform(1.0, 25.0);
    }
    app.arrival_s = t;
    apps.push_back(std::move(app));
  }
  return apps;
}

struct WorldSpec {
  std::uint64_t seed = 0;
  std::size_t tenants = 2;
  std::size_t vms_per_tenant = 4;
  std::size_t apps_per_tenant = 5;
  bool use_measured_view = false;
};

/// Everything one session run owns: the cloud, the per-tenant streams (and
/// the vectors / inner streams backing them), and the specs. Built fresh —
/// from nothing but the spec — for the oracle run and for every sharded
/// run, so each sees a bit-identical world and workload.
struct World {
  std::unique_ptr<cloud::Cloud> cloud;
  std::vector<std::vector<place::Application>> vectors;
  std::vector<std::unique_ptr<workload::ArrivalStream>> owned;
  std::vector<TenantSpec> tenants;
};

World build_world(const WorldSpec& spec) {
  World w;
  w.cloud = std::make_unique<cloud::Cloud>(cloud::ec2_2013(), spec.seed * 31 + 7);
  w.vectors.reserve(spec.tenants);  // VectorArrivalStream is non-owning
  for (std::size_t i = 0; i < spec.tenants; ++i) {
    TenantSpec tenant;
    tenant.name = "t" + std::to_string(i);
    tenant.vms = w.cloud->allocate_vms(spec.vms_per_tenant);
    tenant.config.choreo.use_measured_view = spec.use_measured_view;
    tenant.config.choreo.plan.train.bursts = 3;
    tenant.config.choreo.plan.train.burst_length = 60;
    // Staggered periods: tenants re-evaluate out of phase, so draw requests
    // collide at unrelated instants instead of marching in lockstep. Every
    // third tenant migrates eagerly (zero cost, short period) so adopted
    // re-evaluations stay in the corpus; odd tenants reject instead of
    // queueing.
    tenant.config.choreo.reevaluate_period_s =
        (i % 3 == 0) ? 15.0 : 60.0 + 25.0 * static_cast<double>(i % 4);
    tenant.config.queue_when_full = (i % 2) == 0;
    if (i % 3 == 0) tenant.config.choreo.migration_cost_per_task_s = 0.0;

    switch (i % 3) {
      case 0: {
        // Hand-built hazards (duplicates, fat, chat) via a vector stream.
        Rng rng(spec.seed * 300 + i);
        w.vectors.push_back(draw_apps(rng, spec.apps_per_tenant));
        w.owned.push_back(
            std::make_unique<workload::VectorArrivalStream>(w.vectors.back()));
        tenant.stream = w.owned.back().get();
        break;
      }
      case 1: {
        // Poisson-generated stream.
        workload::GeneratorArrivalStream::Config cfg;
        cfg.gen.min_tasks = 3;
        cfg.gen.max_tasks = 5;
        cfg.gen.max_cpu = 2.0;
        cfg.gen.median_transfer_bytes = 300e6;
        cfg.mean_gap_s = 40.0;
        cfg.max_apps = spec.apps_per_tenant;
        w.owned.push_back(std::make_unique<workload::GeneratorArrivalStream>(
            spec.seed * 100 + i, cfg));
        tenant.stream = w.owned.back().get();
        break;
      }
      default: {
        // Bursty: the same generated payloads under an MMPP arrival process
        // (calm / 6x burst episodes).
        workload::GeneratorArrivalStream::Config cfg;
        cfg.gen.min_tasks = 3;
        cfg.gen.max_tasks = 4;
        cfg.gen.median_transfer_bytes = 250e6;
        cfg.max_apps = spec.apps_per_tenant;
        w.owned.push_back(std::make_unique<workload::GeneratorArrivalStream>(
            spec.seed * 100 + i, cfg));
        workload::ArrivalStream* inner = w.owned.back().get();
        w.owned.push_back(std::make_unique<workload::MmppArrivalStream>(
            *inner, spec.seed * 200 + i, workload::MmppArrivalStream::Config{}));
        tenant.stream = w.owned.back().get();
        break;
      }
    }
    w.tenants.push_back(std::move(tenant));
  }
  return w;
}

struct OracleRun {
  MultiTenantLog log;
  std::vector<SessionRuntime::Stats> stats;
  std::uint64_t final_epoch = 0;
};

OracleRun run_oracle(const WorldSpec& spec) {
  World w = build_world(spec);
  MultiTenantSession session(*w.cloud, std::move(w.tenants));
  OracleRun out;
  out.log = session.run();
  out.stats = session.tenant_stats();
  out.final_epoch = w.cloud->next_epoch();
  return out;
}

struct ShardedRun {
  MultiTenantLog log;
  std::vector<SessionRuntime::Stats> stats;
  ShardedSession::Stats sched;
  std::uint64_t final_epoch = 0;
};

ShardedRun run_sharded(const WorldSpec& spec, std::size_t shards, unsigned threads) {
  World w = build_world(spec);
  ShardedOptions opts;
  opts.shards = shards;
  opts.threads = threads;
  ShardedSession session(*w.cloud, std::move(w.tenants), opts);
  ShardedRun out;
  out.log = session.run();
  out.stats = session.tenant_stats();
  out.sched = session.stats();
  out.final_epoch = w.cloud->next_epoch();
  return out;
}

/// Corpus coverage: the differential only means something if the scenarios
/// actually hit queueing, rejection, and migration.
struct Coverage {
  std::size_t deferred = 0;
  std::size_t rejected = 0;
  std::size_t adopted = 0;
  std::size_t migrated = 0;

  void absorb(const MultiTenantLog& log) {
    for (const SessionEvent& e : log.aggregate.events) {
      if (e.kind == SessionEventKind::Deferred) ++deferred;
      if (e.kind == SessionEventKind::Rejected) ++rejected;
      if (e.kind == SessionEventKind::Reevaluation && e.adopted) ++adopted;
    }
    migrated += log.aggregate.tasks_migrated;
  }
};

void check_spec(const WorldSpec& spec,
                const std::vector<std::pair<std::size_t, unsigned>>& combos,
                const std::string& label, Coverage* coverage = nullptr) {
  const OracleRun oracle = run_oracle(spec);
  if (coverage != nullptr) coverage->absorb(oracle.log);
  for (const auto& [shards, threads] : combos) {
    const std::string tag = label + " shards=" + std::to_string(shards) +
                            " threads=" + std::to_string(threads);
    const ShardedRun got = run_sharded(spec, shards, threads);
    expect_multi_identical(oracle.log, got.log, tag);
    expect_stats_identical(oracle.stats, got.stats, tag);
    // The shared counter must land in exactly the same place: same number
    // of draws happened, in a provably identical order.
    EXPECT_EQ(oracle.final_epoch, got.final_epoch) << tag;
    EXPECT_EQ(got.sched.shards, shards == 0 ? threads : shards) << tag;
  }
}

TEST(ShardedDifferential, RandomizedCorpus) {
  // Tenant counts sweep 1..13, shard counts 1..8, thread counts 1..8; the
  // combos rotate with the seed so the whole grid is covered across the
  // corpus without running every cell on every seed.
  Coverage cov;
  const std::vector<std::vector<std::pair<std::size_t, unsigned>>> rotations = {
      {{1, 1}, {2, 2}, {8, 8}},
      {{1, 8}, {3, 2}, {4, 4}},
      {{2, 1}, {5, 3}, {8, 4}},
      {{1, 2}, {6, 6}, {7, 8}},
  };
  const std::size_t tenant_counts[] = {1, 2, 3, 5, 8, 13};
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorldSpec spec;
    spec.seed = seed;
    spec.tenants = tenant_counts[(seed - 1) % 6];
    spec.vms_per_tenant = 4 + seed % 3;
    spec.apps_per_tenant = 4 + seed % 3;
    check_spec(spec, rotations[seed % rotations.size()],
               "corpus seed " + std::to_string(seed), &cov);
  }
  // The corpus must exercise the paths a draw-ordering bug would corrupt.
  EXPECT_GT(cov.deferred, 0u);
  EXPECT_GT(cov.rejected, 0u);
  EXPECT_GT(cov.adopted, 0u);
  EXPECT_GT(cov.migrated, 0u);
}

TEST(ShardedDifferential, MeasuredViewDrawsSharedEpochs) {
  // With the measured view on, every granted epoch seeds real probe noise —
  // any grant-order slip shows up as a different measured matrix, different
  // placements, different everything. Small sizes: probing is expensive.
  for (std::uint64_t seed = 30; seed <= 32; ++seed) {
    WorldSpec spec;
    spec.seed = seed;
    spec.tenants = 2 + seed % 2;
    spec.vms_per_tenant = 4;
    spec.apps_per_tenant = 3;
    spec.use_measured_view = true;
    check_spec(spec, {{0, 2}, {1, 1}, {4, 3}},
               "measured seed " + std::to_string(seed));
  }
}

TEST(ShardedDifferential, ManyTenantsWideGrid) {
  // The ISSUE's upper corner: 64 tenants. One seed, tiny per-tenant work,
  // shard/thread counts on both sides of the tenant count.
  WorldSpec spec;
  spec.seed = 77;
  spec.tenants = 64;
  spec.vms_per_tenant = 4;
  spec.apps_per_tenant = 2;
  check_spec(spec, {{8, 8}, {3, 5}}, "wide");
}

TEST(ShardedDifferential, RepeatedRunsAreBitIdentical) {
  // Same seed, same shards, same threads, run twice: thread scheduling must
  // not leak into the output (this is the determinism half of the pin; the
  // oracle half is covered above).
  WorldSpec spec;
  spec.seed = 9;
  spec.tenants = 6;
  spec.vms_per_tenant = 4;
  spec.apps_per_tenant = 5;
  const ShardedRun a = run_sharded(spec, 4, 4);
  const ShardedRun b = run_sharded(spec, 4, 4);
  expect_multi_identical(a.log, b.log, "repeat");
  expect_stats_identical(a.stats, b.stats, "repeat");
  EXPECT_EQ(a.final_epoch, b.final_epoch);
  EXPECT_EQ(a.sched.epoch_grants, b.sched.epoch_grants);
}

}  // namespace
}  // namespace choreo::core

// Conservation and ordering properties of the fluid simulator over random
// scenarios: finished flows deliver exactly their bytes, link capacities are
// never exceeded at sampling instants, completions are consistent with the
// makespan, and persistent flows account for all remaining traffic.

#include <gtest/gtest.h>

#include "flowsim/sim.h"
#include "net/topology.h"
#include <map>

#include "util/rng.h"

namespace choreo::flowsim {
namespace {

net::Topology random_tree(Rng& rng) {
  net::TreeParams p;
  p.pods = static_cast<std::size_t>(rng.uniform_int(1, 3));
  p.racks_per_pod = static_cast<std::size_t>(rng.uniform_int(1, 3));
  p.hosts_per_rack = static_cast<std::size_t>(rng.uniform_int(2, 4));
  p.host_link_bps = rng.uniform(0.5e9, 2e9);
  p.agg_link_bps = 10e9;
  p.core_link_bps = 10e9;
  return make_multi_rooted_tree(p);
}

class ConservationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationSweep, FiniteFlowsDeliverExactly) {
  Rng rng(GetParam());
  const net::Topology topo = random_tree(rng);
  const auto hosts = topo.nodes_of_kind(net::NodeKind::Host);
  Sim sim(topo);

  struct Expect {
    FlowId id;
    double bytes;
  };
  std::vector<Expect> finite;
  const std::size_t n_flows = static_cast<std::size_t>(rng.uniform_int(2, 12));
  for (std::size_t f = 0; f < n_flows; ++f) {
    FlowSpec spec;
    spec.src = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    do {
      spec.dst = hosts[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    } while (spec.dst == spec.src);
    spec.bytes = rng.uniform(1e6, 5e8);
    spec.start_time = rng.uniform(0.0, 2.0);
    spec.flow_key = f;
    finite.push_back({sim.add_flow(spec), spec.bytes});
  }
  // A couple of ON-OFF background flows to shake up allocations.
  for (int b = 0; b < 2; ++b) {
    FlowSpec bg;
    bg.src = hosts.front();
    bg.dst = hosts.back();
    bg.rate_cap = 2e8;
    sim.add_on_off_flow(bg, 0.5, 0.5, b == 0, GetParam() * 17 + b);
  }

  sim.run_to_completion(1e6);
  double makespan = -1.0;
  for (const Expect& e : finite) {
    const FlowState& st = sim.flow(e.id);
    EXPECT_TRUE(st.finished);
    // Conservation: delivered bytes equal the requested size (within the
    // completion epsilon).
    EXPECT_NEAR(st.bytes_received, e.bytes, 1.0);
    EXPECT_GE(st.completion_time, st.spec.start_time);
    makespan = std::max(makespan, st.completion_time);
  }
  EXPECT_DOUBLE_EQ(sim.makespan(), makespan);
}

TEST_P(ConservationSweep, RatesRespectLinkCapacities) {
  Rng rng(GetParam() + 400);
  const net::Topology topo = random_tree(rng);
  const auto hosts = topo.nodes_of_kind(net::NodeKind::Host);
  Sim sim(topo);
  std::vector<FlowId> flows;
  for (std::size_t f = 0; f < 8; ++f) {
    FlowSpec spec;
    spec.src = hosts[f % hosts.size()];
    spec.dst = hosts[(f * 3 + 1) % hosts.size()];
    if (spec.src == spec.dst) continue;
    spec.bytes = kInfiniteBytes;
    spec.flow_key = f;
    flows.push_back(sim.add_flow(spec));
  }
  bool checked = false;
  sim.add_sampler(0.1, 0.25, [&](double) {
    checked = true;
    // Sum of rates of flows sharing each host's access link must not exceed
    // it. (We check access links: every flow's first hop.)
    std::map<net::LinkId, double> load;
    for (FlowId id : flows) {
      const FlowState& st = sim.flow(id);
      if (!st.route.links.empty()) load[st.route.links.front()] += st.rate_bps;
    }
    for (const auto& [link, rate] : load) {
      EXPECT_LE(rate, topo.link(link).capacity_bps * (1.0 + 1e-9));
    }
  });
  sim.run_until(1.0);
  EXPECT_TRUE(checked);
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, ConservationSweep,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(Conservation, ZeroLengthWindowNoBytes) {
  net::Topology topo;
  const auto a = topo.add_node(net::NodeKind::Host, "a");
  const auto b = topo.add_node(net::NodeKind::Host, "b");
  topo.add_duplex_link(a, b, 1e9, 1e-6);
  Sim sim(topo);
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.bytes = kInfiniteBytes;
  const FlowId f = sim.add_flow(spec);
  sim.run_until(0.0);
  EXPECT_DOUBLE_EQ(sim.flow(f).bytes_received, 0.0);
}

}  // namespace
}  // namespace choreo::flowsim

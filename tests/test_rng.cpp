#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.h"

namespace choreo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (a.uniform(0, 1) != b.uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 1);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.exponential(5.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, NormalZeroStddevIsDeterministic) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 2.0), 2.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<std::size_t> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.weighted_index({1.0, 0.0, 3.0})];
  }
  EXPECT_EQ(counts[1], 0u);
  EXPECT_NEAR(static_cast<double>(counts[2]) / static_cast<double>(counts[0]), 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), PreconditionError);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), PreconditionError);
  EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), PreconditionError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The child stream should not replay the parent's output.
  Rng b(42);
  (void)b.engine()();  // parent consumed one draw to fork
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (child.uniform(0, 1) != b.uniform(0, 1)) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace choreo

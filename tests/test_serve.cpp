// Serving-plane unit and differential tests: the epoch-swapped
// PlacementService (snapshot immutability, scratch reuse, read path equal to
// the placement plane it serves), the batched joint planner (combine /
// split round trip, greedy/ILP routing, infeasibility), and the runtime
// wiring pin — the batched arrival path disabled (and enabled with
// max_batch == 1) is bit-identical to the historical FIFO drain over a
// randomized queueing corpus.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cloud/cloud.h"
#include "cloud/profile.h"
#include "core/controller.h"
#include "core/runtime.h"
#include "place/greedy.h"
#include "place/rate_model.h"
#include "serve/batch.h"
#include "serve/service.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/generator.h"
#include "workload/stream.h"

namespace choreo::serve {
namespace {

using units::gigabytes;
using units::mbps;

place::ClusterView small_view(Rng& rng, std::size_t machines, double cores = 4.0) {
  place::ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j) view.rate_bps(i, j) = rng.uniform(mbps(300), mbps(1100));
    }
  }
  view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j && rng.chance(0.3)) view.cross_traffic(i, j) = rng.uniform(0.0, 2.0);
    }
  }
  view.colocation_group.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) view.colocation_group[m] = static_cast<int>(m);
  view.cores.assign(machines, cores);
  return view;
}

place::Application gen_app(Rng& rng, std::size_t min_tasks = 3, std::size_t max_tasks = 6) {
  workload::GeneratorConfig gen;
  gen.min_tasks = min_tasks;
  gen.max_tasks = max_tasks;
  gen.max_cpu = 1.5;
  return workload::generate_app(rng, gen);
}

TEST(Service, EpochStartsAtOneAndBumpsOnEveryPublish) {
  Rng rng(1);
  PlacementService service(small_view(rng, 5));
  EXPECT_EQ(service.epoch(), 1u);

  Rng rng2(2);
  service.publish_view(small_view(rng2, 5));
  EXPECT_EQ(service.epoch(), 2u);

  Scratch scratch;
  const place::Application app = gen_app(rng);
  const PlacementService::Result r = service.place(app, scratch);
  service.commit(app, r.placement);
  EXPECT_EQ(service.epoch(), 3u);
  service.release(app, r.placement);
  EXPECT_EQ(service.epoch(), 4u);
}

TEST(Service, PlaceEqualsDirectGreedyOnTheSameState) {
  Rng rng(7);
  const place::ClusterView view = small_view(rng, 8);
  PlacementService service(view, place::RateModel::Hose);
  place::ClusterState state(view);
  place::GreedyPlacer greedy(place::RateModel::Hose);

  Scratch scratch;
  for (int a = 0; a < 4; ++a) {
    const place::Application app = gen_app(rng);
    const PlacementService::Result r = service.place(app, scratch);
    const place::Placement direct = greedy.place(app, state);
    EXPECT_EQ(r.placement.machine_of_task, direct.machine_of_task);
    // Each commit below publishes a new epoch; queries see the latest one.
    EXPECT_EQ(r.epoch, static_cast<std::uint64_t>(a) + 1);
    // Commit on both sides so later queries see identical residuals.
    service.commit(app, r.placement);
    state.commit(app, direct);
  }
}

TEST(Service, ScratchRefreshesOncePerEpochNotPerQuery) {
  Rng rng(11);
  PlacementService service(small_view(rng, 6));
  Scratch scratch;
  EXPECT_EQ(scratch.refreshes(), 0u);
  EXPECT_EQ(scratch.epoch(), 0u);

  const place::Application app = gen_app(rng);
  service.place(app, scratch);
  service.place(app, scratch);
  service.place(app, scratch);
  EXPECT_EQ(scratch.refreshes(), 1u);
  EXPECT_EQ(scratch.epoch(), 1u);

  Rng rng2(12);
  service.publish_view(small_view(rng2, 6));
  service.place(app, scratch);
  service.place(app, scratch);
  EXPECT_EQ(scratch.refreshes(), 2u);
  EXPECT_EQ(scratch.epoch(), 2u);
}

TEST(Service, SnapshotsAreImmutableAfterNewerEpochsPublish) {
  Rng rng(13);
  PlacementService service(small_view(rng, 6));
  const std::shared_ptr<const ClusterSnapshot> old_snap = service.snapshot();

  Scratch scratch;
  // Two 3-core tasks on 4-core machines cannot colocate, so the commit
  // leaves inter-machine transfers behind.
  place::Application app;
  app.cpu_demand = {3.0, 3.0};
  app.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  app.traffic_bytes(0, 1) = 1e9;
  const PlacementService::Result r = service.place(app, scratch);
  service.commit(app, r.placement);

  // The old snapshot still reads as the unoccupied epoch-1 world; the new
  // one carries the committed transfers.
  EXPECT_EQ(old_snap->epoch, 1u);
  for (std::size_t m = 0; m < old_snap->state.machine_count(); ++m) {
    EXPECT_EQ(old_snap->state.transfers_out_of(m), 0.0);
  }
  const std::shared_ptr<const ClusterSnapshot> new_snap = service.snapshot();
  double committed_transfers = 0.0;
  for (std::size_t m = 0; m < new_snap->state.machine_count(); ++m) {
    committed_transfers += new_snap->state.transfers_out_of(m);
  }
  EXPECT_GT(committed_transfers, 0.0);
}

TEST(Service, PublishViewRejectsADifferentFleet) {
  Rng rng(17);
  PlacementService service(small_view(rng, 6));
  Rng rng2(18);
  EXPECT_THROW(service.publish_view(small_view(rng2, 7)), PreconditionError);
}

TEST(Service, InfeasibleQueryThrowsAndLeavesTheArenaServing) {
  Rng rng(19);
  PlacementService service(small_view(rng, 4, /*cores=*/1.0));
  Scratch scratch;

  place::Application too_big;
  too_big.cpu_demand = {2.0, 2.0};
  too_big.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  too_big.traffic_bytes(0, 1) = 1e9;
  EXPECT_THROW(service.place(too_big, scratch), place::PlacementError);

  place::Application fits;
  fits.cpu_demand = {1.0, 1.0};
  fits.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  fits.traffic_bytes(0, 1) = 1e9;
  const PlacementService::Result r = service.place(fits, scratch);
  EXPECT_TRUE(r.placement.complete());
  EXPECT_EQ(scratch.refreshes(), 1u);
}

TEST(Batch, SplitPlacementRoundTripsTaskOffsets) {
  Rng rng(23);
  std::vector<place::Application> apps = {gen_app(rng, 3, 3), gen_app(rng, 4, 4),
                                          gen_app(rng, 5, 5)};
  std::vector<const place::Application*> ptrs;
  for (const place::Application& a : apps) ptrs.push_back(&a);

  std::size_t total = 0;
  for (const place::Application* a : ptrs) total += a->task_count();
  place::Placement joint;
  for (std::size_t t = 0; t < total; ++t) joint.machine_of_task.push_back(t % 5);

  const std::vector<place::Placement> parts = split_placement(ptrs, joint);
  ASSERT_EQ(parts.size(), ptrs.size());
  std::size_t offset = 0;
  for (std::size_t a = 0; a < ptrs.size(); ++a) {
    ASSERT_EQ(parts[a].machine_of_task.size(), ptrs[a]->task_count());
    EXPECT_EQ(parts[a].machine_of_task,
              std::vector<std::size_t>(joint.machine_of_task.begin() + offset,
                                       joint.machine_of_task.begin() + offset +
                                           ptrs[a]->task_count()));
    offset += ptrs[a]->task_count();
  }
  EXPECT_EQ(offset, total);
}

TEST(Batch, PlanEqualsOneJointGreedyPlacement) {
  Rng rng(29);
  const place::ClusterView view = small_view(rng, 8);
  place::ClusterState state(view);
  std::vector<place::Application> apps = {gen_app(rng, 3, 4), gen_app(rng, 3, 4)};
  std::vector<const place::Application*> ptrs;
  for (const place::Application& a : apps) ptrs.push_back(&a);

  BatchArrivalOptions opts;
  opts.enabled = true;
  opts.max_batch = 2;
  const BatchPlan plan = plan_batch(ptrs, state, place::RateModel::Hose, opts);
  EXPECT_FALSE(plan.used_ilp);

  place::GreedyPlacer greedy(place::RateModel::Hose);
  const place::Placement joint = greedy.place(place::combine(apps), state);
  EXPECT_EQ(plan.joint.machine_of_task, joint.machine_of_task);

  // The split placements tile the joint one.
  std::size_t offset = 0;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    ASSERT_EQ(plan.placements[a].machine_of_task.size(), apps[a].task_count());
    for (std::size_t t = 0; t < apps[a].task_count(); ++t) {
      EXPECT_EQ(plan.placements[a].machine_of_task[t],
                joint.machine_of_task[offset + t]);
    }
    offset += apps[a].task_count();
  }
}

TEST(Batch, IlpRouteTakenOnlyWithinTheTaskLimit) {
  Rng rng(31);
  const place::ClusterView view = small_view(rng, 4);
  place::ClusterState state(view);
  // Tiny two-task apps keep the joint ILP solvable instantly.
  place::Application a1, a2;
  a1.cpu_demand = {1.0, 1.0};
  a1.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  a1.traffic_bytes(0, 1) = 5e8;
  a2 = a1;
  std::vector<const place::Application*> ptrs = {&a1, &a2};

  BatchArrivalOptions opts;
  opts.enabled = true;
  opts.max_batch = 2;
  opts.ilp_task_limit = 4;
  const BatchPlan via_ilp = plan_batch(ptrs, state, place::RateModel::Hose, opts);
  EXPECT_TRUE(via_ilp.used_ilp);
  EXPECT_TRUE(via_ilp.joint.complete());

  opts.ilp_task_limit = 3;  // joint has 4 tasks: over the limit -> greedy
  const BatchPlan via_greedy = plan_batch(ptrs, state, place::RateModel::Hose, opts);
  EXPECT_FALSE(via_greedy.used_ilp);
}

TEST(Batch, InfeasibleJointApplicationThrows) {
  Rng rng(37);
  const place::ClusterView view = small_view(rng, 3, /*cores=*/1.0);
  place::ClusterState state(view);
  place::Application big;
  big.cpu_demand = {1.0, 1.0};
  big.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  big.traffic_bytes(0, 1) = 1e9;
  std::vector<const place::Application*> ptrs = {&big, &big};
  BatchArrivalOptions opts;
  opts.enabled = true;
  opts.max_batch = 2;
  // Four tasks of 1.0 core on three 1-core machines cannot fit.
  EXPECT_THROW(plan_batch(ptrs, state, place::RateModel::Hose, opts),
               place::PlacementError);
}

// ---- Runtime wiring pin -----------------------------------------------

void expect_logs_identical(const core::SessionLog& ref, const core::SessionLog& got,
                           const std::string& label) {
  ASSERT_EQ(ref.events.size(), got.events.size()) << label;
  for (std::size_t i = 0; i < ref.events.size(); ++i) {
    EXPECT_EQ(ref.events[i].time_s, got.events[i].time_s) << label << " event " << i;
    EXPECT_EQ(ref.events[i].kind, got.events[i].kind) << label << " event " << i;
    EXPECT_EQ(ref.events[i].app, got.events[i].app) << label << " event " << i;
  }
  ASSERT_EQ(ref.apps.size(), got.apps.size()) << label;
  for (std::size_t i = 0; i < ref.apps.size(); ++i) {
    EXPECT_EQ(ref.apps[i].placed_s, got.apps[i].placed_s) << label << " app " << i;
    EXPECT_EQ(ref.apps[i].finished_s, got.apps[i].finished_s) << label << " app " << i;
    EXPECT_EQ(ref.apps[i].placement.machine_of_task,
              got.apps[i].placement.machine_of_task)
        << label << " app " << i;
  }
  EXPECT_EQ(ref.total_runtime_s, got.total_runtime_s) << label;
  EXPECT_EQ(ref.rejected, got.rejected) << label;
}

/// A queue-heavy workload: fat apps that saturate the small fleet so
/// arrivals defer and the retry drain (the only path batching touches)
/// actually runs.
std::vector<place::Application> queueing_workload(Rng& rng, std::size_t count) {
  std::vector<place::Application> apps;
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    place::Application app;
    if (rng.chance(0.5)) {
      app.name = "fat" + std::to_string(i);
      app.cpu_demand = {4.0, 4.0, 4.0};
      app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
      app.traffic_bytes(0, 1) = gigabytes(rng.uniform(2.0, 6.0));
      app.traffic_bytes(1, 2) = gigabytes(rng.uniform(1.0, 3.0));
    } else {
      workload::GeneratorConfig gen;
      gen.min_tasks = 3;
      gen.max_tasks = 4;
      gen.min_cpu = 0.5;
      gen.max_cpu = 2.0;
      app = workload::generate_app(rng, gen);
      app.name += std::to_string(i);
    }
    if (i == 0 || !rng.chance(0.3)) t += rng.uniform(1.0, 30.0);
    app.arrival_s = t;
    apps.push_back(std::move(app));
  }
  return apps;
}

core::SessionLog run_with_batch(const std::vector<place::Application>& apps,
                                std::uint64_t cloud_seed,
                                const BatchArrivalOptions& batch) {
  core::ControllerConfig config;
  config.choreo.use_measured_view = false;
  config.choreo.reevaluate_period_s = 60.0;
  config.choreo.plan.train.bursts = 3;
  config.choreo.plan.train.burst_length = 60;
  config.batch = batch;
  cloud::Cloud cloud(cloud::ec2_2013(), cloud_seed);
  const auto vms = cloud.allocate_vms(5);
  core::Controller controller(cloud, vms, config);
  return controller.run(apps);
}

TEST(BatchRuntime, DisabledAndMaxBatchOneAreBitIdenticalToTheFifoDrain) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const std::vector<place::Application> apps = queueing_workload(rng, 7);

    const core::SessionLog base = run_with_batch(apps, seed * 31 + 7, {});

    BatchArrivalOptions enabled_k1;
    enabled_k1.enabled = true;
    enabled_k1.max_batch = 1;
    const core::SessionLog k1 = run_with_batch(apps, seed * 31 + 7, enabled_k1);
    expect_logs_identical(base, k1, "max_batch=1 seed " + std::to_string(seed));

    BatchArrivalOptions disabled_k4;
    disabled_k4.enabled = false;
    disabled_k4.max_batch = 4;
    const core::SessionLog off = run_with_batch(apps, seed * 31 + 7, disabled_k4);
    expect_logs_identical(base, off, "disabled seed " + std::to_string(seed));
  }
}

TEST(BatchRuntime, BatchedDrainProducesAValidSession) {
  std::size_t batched_sessions_with_queueing = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const std::vector<place::Application> apps = queueing_workload(rng, 7);

    BatchArrivalOptions batch;
    batch.enabled = true;
    batch.max_batch = 4;
    const core::SessionLog log = run_with_batch(apps, seed * 31 + 7, batch);

    // Structural invariants: every app either ran to completion through the
    // batched drain or was never placed; placements are complete; times are
    // ordered.
    ASSERT_EQ(log.apps.size(), apps.size());
    bool saw_deferred = false;
    for (const core::SessionEvent& e : log.events) {
      if (e.kind == core::SessionEventKind::Deferred) saw_deferred = true;
    }
    for (const core::AppOutcome& a : log.apps) {
      if (a.placed_s >= 0.0) {
        EXPECT_TRUE(a.placement.complete());
        EXPECT_GE(a.placed_s, a.arrival_s);
        EXPECT_GE(a.finished_s, a.placed_s);
      }
    }
    if (saw_deferred) ++batched_sessions_with_queueing;
  }
  // The corpus must actually exercise the batched retry drain.
  EXPECT_GT(batched_sessions_with_queueing, 0u);
}

TEST(BatchRuntime, InfeasibleBatchStepsDownOneSizeAtATime) {
  // Crafted so joint feasibility is non-monotone in the halving stride:
  // 2 VMs x 4 cores run a hog (2 tasks x 4.0) while three 3.0-core apps
  // queue behind it. At the hog's departure the drain must attempt k = 3
  // (9.0 cores on 8 — infeasible), then k = 2 (one 3.0 task per VM — fits).
  // The old `k /= 2` halving jumped from 3 straight past 2 to the single-app
  // path and never discovered the feasible pair.
  place::Application hog;
  hog.name = "hog";
  hog.cpu_demand = {4.0, 4.0};
  hog.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  hog.traffic_bytes(0, 1) = gigabytes(20.0);  // keeps the fleet busy a while
  hog.arrival_s = 0.0;

  std::vector<place::Application> apps{hog};
  for (int i = 0; i < 3; ++i) {
    place::Application waiter;
    waiter.name = "waiter" + std::to_string(i);
    waiter.cpu_demand = {3.0};
    waiter.traffic_bytes = DoubleMatrix(1, 1, 0.0);
    waiter.arrival_s = 1.0 + i;
    apps.push_back(std::move(waiter));
  }

  core::ControllerConfig config;
  config.choreo.use_measured_view = false;
  config.batch.enabled = true;
  config.batch.max_batch = 3;

  cloud::Cloud cloud(cloud::ec2_2013(), 5);
  const auto vms = cloud.allocate_vms(2);
  core::SessionRuntime runtime(cloud, vms, config);
  workload::VectorArrivalStream stream(apps);
  const core::SessionLog log = runtime.run(stream);

  const std::vector<std::size_t> expected{3, 2};
  EXPECT_EQ(runtime.stats().batch_attempts, expected);
  // The pair the step-down discovered really got placed together; the third
  // waiter followed once the pair's capacity freed.
  for (const core::AppOutcome& a : log.apps) {
    EXPECT_GE(a.finished_s, 0.0) << a.name;
  }
}

}  // namespace
}  // namespace choreo::serve

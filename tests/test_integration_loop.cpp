// Closed-loop integration: the full §2 life cycle on one emulated cloud —
// run an application, collect sFlow samples from the run, profile them,
// re-place with Choreo, and verify the re-placement matches what perfect
// knowledge would produce. Also exercises the whole pipeline on Rackspace,
// where spatial variation is absent and co-location is the only lever.

#include <gtest/gtest.h>

#include "core/choreo.h"
#include "core/sflow.h"
#include "place/baselines.h"
#include "place/rate_model.h"
#include "util/stats.h"
#include "util/units.h"

namespace choreo {
namespace {

using units::gigabytes;

/// A 4-task analytics job: heavy shuffle 0->1, 0->2, light control traffic.
place::Application analytics_app() {
  place::Application app;
  app.name = "analytics";
  app.cpu_demand = {2.0, 2.0, 2.0, 1.0};
  app.traffic_bytes = DoubleMatrix(4, 4, 0.0);
  app.traffic_bytes(0, 1) = gigabytes(6);
  app.traffic_bytes(0, 2) = gigabytes(4);
  app.traffic_bytes(3, 0) = gigabytes(0.2);
  return app;
}

TEST(ClosedLoop, SflowProfileReproducesPlacement) {
  cloud::Cloud cloud(cloud::ec2_2013(), 2718);
  const auto vms = cloud.allocate_vms(8);
  core::ChoreoConfig config;
  config.plan.train.bursts = 5;
  config.plan.train.burst_length = 100;
  core::Choreo choreo(cloud, vms, config);
  choreo.measure_network(1);

  // Production run of the app placed by whatever the ops team did (random).
  const place::Application truth_app = analytics_app();
  place::RandomPlacer random(9);
  place::ClusterState scratch(choreo.view());
  const place::Placement prod_placement = random.place(truth_app, scratch);
  const auto transfers = choreo.transfers_for(truth_app, prod_placement, 0.0);
  const auto exec = cloud.execute(transfers, 2);

  // The sFlow agent watches the run (we reconstruct task endpoints the way a
  // collector maps VM flows back to tasks).
  std::vector<core::ObservedTransfer> observed;
  std::size_t t_idx = 0;
  for (std::size_t i = 0; i < truth_app.task_count(); ++i) {
    for (std::size_t j = 0; j < truth_app.task_count(); ++j) {
      const double b = truth_app.traffic_bytes(i, j);
      if (b <= 0.0) continue;
      observed.push_back({i, j, b, 0.0, exec.completion_s[t_idx]});
      ++t_idx;
    }
  }
  Rng rng(5);
  core::SflowConfig sflow;
  sflow.sampling_rate = 512;
  const core::Profiler prof =
      core::profile_from_sflow(truth_app.task_count(), observed, sflow, rng);

  // Place from the sampled profile and from the true matrix: the decisions
  // must agree (sampling noise is far below the decision margins).
  const place::Application profiled =
      prof.to_application(truth_app.cpu_demand, "analytics-profiled");
  place::GreedyPlacer greedy(place::RateModel::Hose);
  place::ClusterState s1(choreo.view());
  place::ClusterState s2(choreo.view());
  const place::Placement from_profile = greedy.place(profiled, s1);
  const place::Placement from_truth = greedy.place(truth_app, s2);
  EXPECT_EQ(from_profile.machine_of_task, from_truth.machine_of_task);

  // And the Choreo placement beats the production (random) placement.
  const double t_prod =
      cloud.execute(choreo.transfers_for(truth_app, prod_placement, 0.0), 3).makespan_s;
  const double t_choreo =
      cloud.execute(choreo.transfers_for(truth_app, from_profile, 0.0), 3).makespan_s;
  EXPECT_LE(t_choreo, t_prod * 1.001);
}

TEST(ClosedLoop, RackspaceColocationIsTheOnlyLever) {
  // On Rackspace every fabric path is ~300 Mbit/s (Fig 2(b)): for a single
  // application the only thing Choreo can exploit is co-location, so its
  // placement should put the chatty pair together whenever CPU allows.
  cloud::Cloud cloud(cloud::rackspace(), 31415);
  const auto vms = cloud.allocate_vms(8);
  core::ChoreoConfig config;
  config.plan.train.bursts = 10;
  config.plan.train.burst_length = 2000;  // the §4.1 Rackspace calibration
  core::Choreo choreo(cloud, vms, config);
  choreo.measure_network(1);

  place::Application app;
  app.cpu_demand = {1.0, 1.0, 1.0};
  app.traffic_bytes = DoubleMatrix(3, 3, 0.0);
  app.traffic_bytes(0, 1) = gigabytes(5);
  app.traffic_bytes(1, 2) = gigabytes(0.1);

  const auto handle = choreo.place_application(app);
  const place::Placement& p = choreo.placement_of(handle);
  EXPECT_EQ(p.machine_of_task[0], p.machine_of_task[1]);

  // Executing confirms: the heavy transfer costs nothing, the light one
  // drains at ~300 Mbit/s.
  const auto result = cloud.execute(choreo.transfers_for(app, p, 0.0), 2);
  EXPECT_LT(result.makespan_s, gigabytes(0.1) * 8.0 / units::mbps(250));
}

TEST(ClosedLoop, MeasuredViewCloseToTruthView) {
  cloud::Cloud cloud(cloud::ec2_2013(), 161);
  const auto vms = cloud.allocate_vms(6);
  measure::MeasurementPlan plan;
  plan.train.bursts = 10;
  plan.train.burst_length = 200;
  const place::ClusterView measured = measure::measured_cluster_view(cloud, vms, plan, 1);
  const place::ClusterView truth = measure::true_cluster_view(cloud, vms, 1);
  std::vector<double> errors;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    for (std::size_t j = 0; j < vms.size(); ++j) {
      if (i == j || truth.colocated(i, j)) continue;
      errors.push_back(relative_error(measured.rate_bps(i, j), truth.rate_bps(i, j)));
    }
  }
  ASSERT_FALSE(errors.empty());
  // §4.1: mean error ~9% on EC2.
  EXPECT_LT(mean(errors), 0.15);
  // Hop data consistent between the two views.
  for (std::size_t i = 0; i < vms.size(); ++i) {
    for (std::size_t j = 0; j < vms.size(); ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(measured.hops(i, j), truth.hops(i, j));
      }
    }
  }
}

}  // namespace
}  // namespace choreo

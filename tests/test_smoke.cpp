// Smoke test for the build-and-verify harness: default-constructed
// ChoreoConfig, one full measure -> profile -> place cycle (§2) on a tiny
// 4-VM topology. If this fails, the library skeleton itself is broken —
// every other test file assumes the pieces exercised here.

#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "core/choreo.h"
#include "core/profiler.h"
#include "util/units.h"

namespace choreo {
namespace {

TEST(Smoke, DefaultConfigMeasureAndPlaceOnTinyTopology) {
  // Defaults must be usable as-is: the §4.1 EC2 calibration (10 bursts of
  // 200 packets), hose rate model, 600 s re-evaluation period.
  core::ChoreoConfig config;
  EXPECT_EQ(config.plan.train.bursts, 10u);
  EXPECT_EQ(config.plan.train.burst_length, 200u);
  EXPECT_EQ(config.rate_model, place::RateModel::Hose);
  EXPECT_GT(config.reevaluate_period_s, 0.0);
  EXPECT_TRUE(config.use_measured_view);

  cloud::Cloud cloud(cloud::ec2_2013(), /*seed=*/1234);
  const std::vector<cloud::VmId> vms = cloud.allocate_vms(4);
  core::Choreo choreo(cloud, vms, config);

  // Measurement phase: packet trains over all 4*3 ordered pairs. The paper
  // quotes "less than three minutes for a ten-node topology", so a 4-VM
  // fleet must come in well under that, and must not be free.
  const double wall_s = choreo.measure_network(/*epoch=*/1);
  EXPECT_GT(wall_s, 0.0);
  EXPECT_LT(wall_s, 180.0);
  EXPECT_EQ(choreo.view().machine_count(), vms.size());

  // Profile a toy 3-task app (one heavy pair, one light edge) and place it.
  core::Profiler profiler(/*task_count=*/3);
  profiler.observe({0, 1, units::gigabytes(1.0), 5.0});
  profiler.observe({1, 2, units::megabytes(100), 8.0});
  // CPU demands of 3 cores each keep any two tasks from sharing a 4-core
  // VM, so at least one transfer must cross the network.
  const place::Application app = profiler.to_application({3.0, 3.0, 3.0}, "smoke-app");

  const auto handle = choreo.place_application(app);
  const place::Placement& placement = choreo.placement_of(handle);
  ASSERT_EQ(placement.machine_of_task.size(), app.task_count());
  for (std::size_t m : placement.machine_of_task) {
    EXPECT_LT(m, vms.size());
  }

  // The placement converts into executable transfers and the cloud finishes
  // them in finite time.
  const auto transfers = choreo.transfers_for(app, placement, /*start_s=*/0.0);
  EXPECT_EQ(transfers.size(), 2u);  // the two non-zero traffic-matrix entries
  const auto exec = cloud.execute(transfers, /*epoch=*/2);
  EXPECT_GT(exec.makespan_s, 0.0);

  choreo.remove_application(handle);
  EXPECT_TRUE(choreo.running().empty());
}

}  // namespace
}  // namespace choreo

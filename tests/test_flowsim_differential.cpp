// Differential battery for the incremental max-min kernel (PR 9).
//
// Layer 1 pins MaxMinKernel bit-identical (exact double equality) to the
// preserved reference waterfill `max_min_rates` over randomized operation
// sequences: activations, deactivations, capacity changes, zero-capacity
// resources, empty and duplicate-entry rows — after *every* recompute, every
// active flow's rate must equal a from-scratch oracle run, which is exactly
// the property component-scoped recomputation must not break.
//
// Layer 2 pins a KernelMode::Incremental Sim bit-identical to a
// KernelMode::Reference twin driven by the same event schedule: rates,
// bytes, completion times, sampler outputs, link loads, makespans.
//
// Layer 3 covers the structural mechanics directly: component splits being
// rediscovered, scoped regions staying small, row retirement/compaction.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flowsim/max_min.h"
#include "flowsim/max_min_kernel.h"
#include "flowsim/sim.h"
#include "net/topology.h"
#include "util/require.h"
#include "util/rng.h"

namespace choreo::flowsim {
namespace {

using net::NodeId;
using net::NodeKind;
using net::Topology;

// ---------------------------------------------------------------------------
// Layer 1: kernel vs oracle over a randomized op corpus.
// ---------------------------------------------------------------------------

struct KernelCoverage {
  int zero_cap_instances = 0;
  int deactivations = 0;
  int scoped_recomputes = 0;  // region strictly smaller than the active set
  int empty_rows = 0;
  int duplicate_entries = 0;
  int capacity_changes = 0;
};

// Corpus body, shared between the per-seed parameterized tests (granular
// failure localization) and the coverage test (which re-runs the whole seed
// range in one process — tests run in separate processes under ctest, so
// cross-test global accumulation would never observe the corpus).
void run_kernel_corpus(std::uint64_t seed, KernelCoverage& cov) {
  Rng rng(seed * 7919 + 13);
  const double unconstrained = 1e12;
  MaxMinKernel kernel(unconstrained);

  const std::size_t n_res = static_cast<std::size_t>(rng.uniform_int(2, 12));
  std::vector<double> caps;
  bool has_zero = false;
  for (std::size_t r = 0; r < n_res; ++r) {
    const double roll = rng.uniform(0.0, 1.0);
    double c;
    if (roll < 0.15) {
      c = 0.0;  // dead resource: everything crossing it rates at zero
      has_zero = true;
    } else if (roll < 0.55) {
      // Quantized capacities force share ties, exercising the lowest-id
      // bottleneck tie-break.
      c = 1e9 * static_cast<double>(rng.uniform_int(1, 3));
    } else {
      c = rng.uniform(1e8, 1e10);
    }
    caps.push_back(c);
    kernel.add_resource(c);
  }
  if (has_zero) ++cov.zero_cap_instances;

  std::vector<std::vector<ResourceId>> rows;  // test-side mirror, per flow id
  std::vector<char> active;

  const auto compare_to_oracle = [&] {
    const std::vector<std::size_t>& region = kernel.recompute();
    std::vector<std::vector<ResourceId>> usage;
    std::vector<std::size_t> ids;
    for (std::size_t f = 0; f < rows.size(); ++f) {
      if (!active[f]) continue;
      usage.push_back(rows[f]);
      ids.push_back(f);
    }
    if (!region.empty() && region.size() < ids.size()) ++cov.scoped_recomputes;
    const std::vector<double> expect = max_min_rates(caps, usage, unconstrained);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      // Exact equality: the kernel must reproduce the oracle's arithmetic
      // bit for bit, including for flows outside the recomputed region.
      EXPECT_EQ(kernel.rate(ids[i]), expect[i])
          << "flow " << ids[i] << " of " << ids.size() << " active (seed "
          << seed << ")";
    }
    // The active index itself must match the mirror.
    EXPECT_EQ(kernel.active_flows(), ids);
  };

  for (int step = 0; step < 80; ++step) {
    const double op = rng.uniform(0.0, 1.0);
    if (op < 0.45 || rows.empty()) {
      // New flow: up to 4 row entries, occasionally duplicated.
      const std::size_t k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(std::min<std::size_t>(4, n_res))));
      std::vector<ResourceId> row;
      for (std::size_t j = 0; j < k; ++j) {
        row.push_back(static_cast<ResourceId>(
            rng.uniform_int(0, static_cast<std::int64_t>(n_res) - 1)));
        if (!row.empty() && rng.chance(0.1)) {
          row.push_back(row.front());
          ++cov.duplicate_entries;
        }
      }
      if (row.empty()) ++cov.empty_rows;
      const std::size_t id = kernel.add_flow(row.data(), row.size());
      ASSERT_EQ(id, rows.size());
      rows.push_back(std::move(row));
      active.push_back(0);
      if (rng.chance(0.85)) {
        kernel.activate(id);
        active[id] = 1;
      }
    } else if (op < 0.75) {
      // Toggle a random flow.
      const std::size_t f = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1));
      if (active[f]) {
        kernel.deactivate(f);
        active[f] = 0;
        ++cov.deactivations;
      } else {
        kernel.activate(f);
        active[f] = 1;
      }
    } else {
      // Re-provision a resource (sometimes to zero).
      const auto r = static_cast<ResourceId>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_res) - 1));
      const double c = rng.chance(0.1) ? 0.0 : rng.uniform(1e8, 1e10);
      caps[r] = c;
      kernel.set_capacity(r, c);
      ++cov.capacity_changes;
    }
    compare_to_oracle();
  }
}

constexpr std::uint64_t kKernelSeeds = 40;

class KernelVsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelVsOracle, EveryRecomputeMatchesFromScratchOracle) {
  KernelCoverage cov;
  run_kernel_corpus(GetParam(), cov);
}

INSTANTIATE_TEST_SUITE_P(RandomOpSequences, KernelVsOracle,
                         ::testing::Range<std::uint64_t>(0, kKernelSeeds));

TEST(KernelVsOracleCoverage, CorpusExercisesTheInterestingPaths) {
  KernelCoverage cov;
  for (std::uint64_t seed = 0; seed < kKernelSeeds; ++seed) run_kernel_corpus(seed, cov);
  EXPECT_GT(cov.zero_cap_instances, 0);
  EXPECT_GT(cov.deactivations, 0);
  EXPECT_GT(cov.scoped_recomputes, 0);
  EXPECT_GT(cov.empty_rows, 0);
  EXPECT_GT(cov.duplicate_entries, 0);
  EXPECT_GT(cov.capacity_changes, 0);
}

// ---------------------------------------------------------------------------
// Layer 2: incremental Sim vs reference Sim on one event schedule.
// ---------------------------------------------------------------------------

struct Probe {
  double t = 0.0;
  std::size_t active = 0;
  std::vector<double> rates;
  bool operator==(const Probe& o) const {
    return t == o.t && active == o.active && rates == o.rates;
  }
};

struct SimCoverage {
  int toggles_on = 0;
  int rate_caps = 0;
  int same_host_flows = 0;
  int finishes = 0;
  int hose_flows = 0;
};
void run_sim_corpus(std::uint64_t corpus_seed, SimCoverage& cov) {
  Rng rng(corpus_seed * 104729 + 7);

  net::TreeParams tp;
  tp.pods = static_cast<std::size_t>(rng.uniform_int(1, 2));
  tp.racks_per_pod = static_cast<std::size_t>(rng.uniform_int(1, 3));
  tp.hosts_per_rack = static_cast<std::size_t>(rng.uniform_int(2, 3));
  tp.host_link_bps = 1e9;
  tp.agg_link_bps = rng.chance(0.5) ? 2e9 : 10e9;  // sometimes oversubscribed
  const Topology topo = net::make_multi_rooted_tree(tp);
  const std::vector<NodeId> hosts = topo.nodes_of_kind(NodeKind::Host);

  Sim inc(topo, 400e9, KernelMode::Incremental);
  Sim ref(topo, 400e9, KernelMode::Reference);

  // A few hose-style extra resources, mirrored into both sims.
  std::vector<ResourceId> hoses;
  const std::size_t n_hoses = static_cast<std::size_t>(rng.uniform_int(1, 4));
  for (std::size_t h = 0; h < n_hoses; ++h) {
    const double cap = rng.uniform(2e8, 2e9);
    hoses.push_back(inc.add_resource(cap));
    ASSERT_EQ(ref.add_resource(cap), hoses.back());
  }

  const auto random_spec = [&](double earliest) {
    FlowSpec spec;
    spec.src = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    spec.dst = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    if (spec.src == spec.dst) ++cov.same_host_flows;
    spec.start_time = earliest + rng.uniform(0.0, 3.0);
    spec.flow_key = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    if (rng.chance(0.5)) {
      spec.extra_resources.push_back(hoses[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(hoses.size()) - 1))]);
      ++cov.hose_flows;
    }
    if (rng.chance(0.3)) {
      spec.rate_cap = rng.uniform(5e7, 5e8);
      ++cov.rate_caps;
    }
    return spec;
  };

  std::vector<FlowId> watched;
  const auto add_finite_pair = [&](double earliest) {
    FlowSpec spec = random_spec(earliest);
    spec.bytes = rng.uniform(1e6, 3e8);
    const FlowId a = inc.add_flow(spec);
    const FlowId b = ref.add_flow(spec);
    ASSERT_EQ(a, b);
    watched.push_back(a);
  };
  const auto add_onoff_pair = [&](double earliest) {
    FlowSpec spec = random_spec(earliest);
    const double mean_on = rng.uniform(0.2, 1.5);
    const double mean_off = rng.uniform(0.2, 1.5);
    const bool start_on = rng.chance(0.5);
    const auto seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
    if (start_on) ++cov.toggles_on;
    const FlowId a = inc.add_on_off_flow(spec, mean_on, mean_off, start_on, seed);
    const FlowId b = ref.add_on_off_flow(spec, mean_on, mean_off, start_on, seed);
    ASSERT_EQ(a, b);
    watched.push_back(a);
  };

  const int n_finite = static_cast<int>(rng.uniform_int(6, 18));
  const int n_onoff = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < n_finite; ++i) add_finite_pair(0.0);
  for (int i = 0; i < n_onoff; ++i) add_onoff_pair(0.0);

  std::vector<Probe> inc_probes, ref_probes;
  const auto attach_recorder = [&watched](Sim& sim, std::vector<Probe>& out) {
    sim.add_sampler(0.1, 0.2, [&sim, &out, &watched](double t) {
      Probe p;
      p.t = t;
      p.active = sim.active_flow_count();
      p.rates.reserve(watched.size());
      for (FlowId f : watched) p.rates.push_back(sim.flow(f).rate_bps);
      out.push_back(p);
    });
  };
  attach_recorder(inc, inc_probes);
  attach_recorder(ref, ref_probes);

  const auto compare_states = [&] {
    ASSERT_EQ(inc.flow_count(), ref.flow_count());
    for (FlowId f = 0; f < inc.flow_count(); ++f) {
      const FlowState& a = inc.flow(f);
      const FlowState& b = ref.flow(f);
      EXPECT_EQ(a.started, b.started) << "flow " << f;
      EXPECT_EQ(a.finished, b.finished) << "flow " << f;
      EXPECT_EQ(a.on, b.on) << "flow " << f;
      EXPECT_EQ(a.rate_bps, b.rate_bps) << "flow " << f;
      EXPECT_EQ(a.bytes_received, b.bytes_received) << "flow " << f;
      EXPECT_EQ(a.remaining_bytes, b.remaining_bytes) << "flow " << f;
      EXPECT_EQ(a.completion_time, b.completion_time) << "flow " << f;
      if (a.finished) ++cov.finishes;
    }
    EXPECT_EQ(inc.active_flow_count(), ref.active_flow_count());
    EXPECT_EQ(inc.makespan(), ref.makespan());
    const auto la = inc.link_loads();
    const auto lb = ref.link_loads();
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t l = 0; l < la.size(); ++l) {
      EXPECT_EQ(la[l].used_bps, lb[l].used_bps) << "link " << l;
      EXPECT_EQ(la[l].flows, lb[l].flows) << "link " << l;
    }
  };

  // Phase 1: run a stretch, compare mid-flight.
  inc.run_until(4.0);
  ref.run_until(4.0);
  compare_states();

  // Phase 2: inject more arrivals mid-run (staggered), mutate a hose.
  for (int i = 0; i < 4; ++i) add_finite_pair(4.0);
  const double new_cap = rng.uniform(2e8, 2e9);
  inc.set_resource_capacity(hoses[0], new_cap);
  ref.set_resource_capacity(hoses[0], new_cap);
  inc.run_until(12.0);
  ref.run_until(12.0);
  compare_states();
  EXPECT_EQ(inc_probes.size(), ref_probes.size());
  EXPECT_EQ(inc_probes, ref_probes);

  // Phase 3: drain the remaining finite flows (ON-OFF events keep firing).
  inc.run_to_completion(1e5);
  ref.run_to_completion(1e5);
  compare_states();
  EXPECT_EQ(inc.now(), ref.now());

  // The incremental side must actually have scoped some work to regions
  // smaller than the full active set — otherwise this suite is only testing
  // the full-recompute path. (Kept as a statistic, asserted in coverage.)
  const MaxMinKernel::Stats& ks = inc.kernel_stats();
  EXPECT_GT(ks.recomputes, 0u);
  EXPECT_EQ(ref.kernel_stats().recomputes, 0u);  // reference never enters the kernel
}

constexpr std::uint64_t kSimSeeds = 25;

class SimDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimDifferential, TwinSimsStayBitIdentical) {
  SimCoverage cov;
  run_sim_corpus(GetParam(), cov);
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, SimDifferential,
                         ::testing::Range<std::uint64_t>(0, kSimSeeds));

TEST(SimDifferentialCoverage, CorpusExercisesTheInterestingPaths) {
  SimCoverage cov;
  for (std::uint64_t seed = 0; seed < kSimSeeds; ++seed) run_sim_corpus(seed, cov);
  EXPECT_GT(cov.toggles_on, 0);
  EXPECT_GT(cov.rate_caps, 0);
  EXPECT_GT(cov.same_host_flows, 0);
  EXPECT_GT(cov.finishes, 0);
  EXPECT_GT(cov.hose_flows, 0);
}

// ---------------------------------------------------------------------------
// Layer 3: structural mechanics.
// ---------------------------------------------------------------------------

TEST(KernelComponents, EventsInOneComponentLeaveOthersUntouched) {
  MaxMinKernel kernel(1e12);
  std::vector<ResourceId> res;
  std::vector<std::size_t> flows;
  for (std::size_t i = 0; i < 8; ++i) {
    res.push_back(kernel.add_resource(1e9 * static_cast<double>(i + 1)));
    const ResourceId r = res.back();
    flows.push_back(kernel.add_flow(&r, 1));
    kernel.activate(flows.back());
  }
  kernel.recompute();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(kernel.rate(flows[i]), 1e9 * static_cast<double>(i + 1));
  }
  const std::uint64_t flows_before = kernel.stats().region_flows;

  // Deactivating a singleton dirties only its (now empty) component.
  kernel.deactivate(flows[3]);
  EXPECT_TRUE(kernel.recompute().empty());
  EXPECT_EQ(kernel.stats().region_flows, flows_before);

  // Re-provisioning one resource re-waterfills exactly one flow.
  kernel.set_capacity(res[5], 4e9);
  const auto& region = kernel.recompute();
  ASSERT_EQ(region.size(), 1u);
  EXPECT_EQ(region[0], flows[5]);
  EXPECT_EQ(kernel.last_region_flows(), 1u);
  EXPECT_EQ(kernel.rate(flows[5]), 4e9);
  // All other rates are untouched (flow 3 is inactive; its rate is unused).
  for (std::size_t i : {0u, 1u, 2u, 4u, 6u, 7u}) {
    EXPECT_EQ(kernel.rate(flows[i]), 1e9 * static_cast<double>(i + 1));
  }
}

TEST(KernelComponents, BridgeFlowMergesThenSplitRediscovered) {
  MaxMinKernel kernel(1e12);
  const ResourceId r0 = kernel.add_resource(1e9);
  const ResourceId r1 = kernel.add_resource(3e9);
  const ResourceId row_a[] = {r0};
  const ResourceId row_b[] = {r1};
  const ResourceId row_bridge[] = {r0, r1};
  const std::size_t fa = kernel.add_flow(row_a, 1);
  const std::size_t fb = kernel.add_flow(row_b, 1);
  const std::size_t bridge = kernel.add_flow(row_bridge, 2);
  kernel.activate(fa);
  kernel.activate(fb);
  kernel.recompute();
  EXPECT_EQ(kernel.rate(fa), 1e9);
  EXPECT_EQ(kernel.rate(fb), 3e9);

  // Bridge joins the two components: r0 bottlenecks first (0.5 < 1.5), then
  // fb takes what the bridge left on r1.
  kernel.activate(bridge);
  kernel.recompute();
  EXPECT_EQ(kernel.rate(fa), 0.5e9);
  EXPECT_EQ(kernel.rate(bridge), 0.5e9);
  EXPECT_EQ(kernel.rate(fb), 2.5e9);

  // Removing the bridge recomputes the (stale, still-merged) component...
  kernel.deactivate(bridge);
  EXPECT_EQ(kernel.recompute().size(), 2u);
  EXPECT_EQ(kernel.rate(fa), 1e9);
  EXPECT_EQ(kernel.rate(fb), 3e9);

  // ...and that recompute relabels, so the next event is scoped to the
  // genuinely split component only.
  kernel.set_capacity(r0, 2e9);
  const auto& region = kernel.recompute();
  ASSERT_EQ(region.size(), 1u);
  EXPECT_EQ(region[0], fa);
  EXPECT_EQ(kernel.rate(fa), 2e9);
}

TEST(KernelRetire, CompactionPreservesLiveRowsAndRates) {
  MaxMinKernel kernel(1e12);
  std::vector<ResourceId> res;
  for (std::size_t r = 0; r < 4; ++r) res.push_back(kernel.add_resource(1e9));
  // Churn enough short-lived flows through to force at least one compaction
  // (threshold: >4096 dead slots and more dead than live).
  for (int i = 0; i < 3000; ++i) {
    const ResourceId row[] = {res[static_cast<std::size_t>(i) % 4],
                              res[(static_cast<std::size_t>(i) + 1) % 4]};
    const std::size_t f = kernel.add_flow(row, 2);
    kernel.activate(f);
    kernel.deactivate(f);
    kernel.retire(f);
  }
  EXPECT_GE(kernel.stats().row_compactions, 1u);

  // Survivors still waterfill correctly against the oracle.
  const ResourceId row_a[] = {res[0], res[1]};
  const ResourceId row_b[] = {res[1]};
  const std::size_t fa = kernel.add_flow(row_a, 2);
  const std::size_t fb = kernel.add_flow(row_b, 1);
  kernel.activate(fa);
  kernel.activate(fb);
  kernel.recompute();
  const auto expect = max_min_rates({1e9, 1e9, 1e9, 1e9}, {{res[0], res[1]}, {res[1]}}, 1e12);
  EXPECT_EQ(kernel.rate(fa), expect[0]);
  EXPECT_EQ(kernel.rate(fb), expect[1]);

  // Retired flows must stay retired.
  EXPECT_THROW(kernel.activate(0), PreconditionError);
}

TEST(SimRetire, AutoRetireKeepsOutcomesIdentical) {
  net::TreeParams tp;
  tp.pods = 1;
  tp.racks_per_pod = 2;
  tp.hosts_per_rack = 2;
  const Topology topo = net::make_multi_rooted_tree(tp);
  const std::vector<NodeId> hosts = topo.nodes_of_kind(NodeKind::Host);

  Sim inc(topo, 400e9, KernelMode::Incremental);
  Sim ref(topo, 400e9, KernelMode::Reference);
  inc.set_auto_retire(true);  // reference keeps everything: outcomes must match

  Rng rng(1234);
  std::vector<FlowId> ids;
  for (int i = 0; i < 24; ++i) {
    FlowSpec spec;
    spec.src = hosts[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    spec.dst = hosts[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    spec.bytes = rng.uniform(1e6, 1e8);
    spec.start_time = rng.uniform(0.0, 2.0);
    const FlowId a = inc.add_flow(spec);
    ASSERT_EQ(ref.add_flow(spec), a);
    ids.push_back(a);
  }
  inc.run_to_completion(1e6);
  ref.run_to_completion(1e6);
  for (FlowId f : ids) {
    EXPECT_TRUE(inc.flow(f).finished);
    EXPECT_EQ(inc.flow(f).completion_time, ref.flow(f).completion_time);
    EXPECT_EQ(inc.flow(f).bytes_received, ref.flow(f).bytes_received);
  }
  EXPECT_EQ(inc.makespan(), ref.makespan());
}

}  // namespace
}  // namespace choreo::flowsim

#include "core/sflow.h"

#include <gtest/gtest.h>

#include "util/stats.h"
#include "util/units.h"

namespace choreo::core {
namespace {

using units::gigabytes;
using units::megabytes;

TEST(Sflow, HeavyFlowsEstimatedAccurately) {
  Rng rng(1);
  std::vector<ObservedTransfer> transfers{
      {0, 1, gigabytes(4), 0.0, 100.0},
      {1, 2, gigabytes(2), 0.0, 100.0},
  };
  SflowConfig cfg;
  cfg.sampling_rate = 1024;
  const Profiler prof = profile_from_sflow(3, transfers, cfg, rng);
  // 4 GB at 1500 B/packet ~ 2.7M packets, ~2600 samples: ~2% noise expected.
  EXPECT_LT(relative_error(prof.traffic_matrix()(0, 1), gigabytes(4)), 0.06);
  EXPECT_LT(relative_error(prof.traffic_matrix()(1, 2), gigabytes(2)), 0.08);
  // The RELATIVE ordering — which is what placement needs — is preserved.
  EXPECT_GT(prof.traffic_matrix()(0, 1), prof.traffic_matrix()(1, 2));
}

TEST(Sflow, TinyFlowsMayVanish) {
  Rng rng(2);
  // 30 KB = 20 packets at 1:1024 sampling: usually zero samples.
  std::vector<ObservedTransfer> transfers{{0, 1, 30e3, 0.0, 1.0}};
  SflowConfig cfg;
  cfg.sampling_rate = 1024;
  std::size_t empty_runs = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto records = sflow_sample(transfers, cfg, rng);
    if (records.empty()) ++empty_runs;
  }
  EXPECT_GT(empty_runs, 15u);  // the sFlow blind spot is real
}

TEST(Sflow, SamplingRateOneIsLossless) {
  Rng rng(3);
  std::vector<ObservedTransfer> transfers{{0, 1, megabytes(1.5), 0.0, 10.0}};
  SflowConfig cfg;
  cfg.sampling_rate = 1;
  const auto records = sflow_sample(transfers, cfg, rng);
  // ceil(1.5e6/1500) = 1000 packets, each carried verbatim.
  EXPECT_EQ(records.size(), 1000u);
  double total = 0.0;
  for (const auto& r : records) total += r.bytes;
  EXPECT_NEAR(total, megabytes(1.5), 1500.0);
}

TEST(Sflow, RecordsSortedAndWithinLifetime) {
  Rng rng(4);
  std::vector<ObservedTransfer> transfers{
      {0, 1, gigabytes(1), 50.0, 80.0},
      {2, 3, gigabytes(1), 10.0, 30.0},
  };
  const auto records = sflow_sample(transfers, SflowConfig{}, rng);
  ASSERT_FALSE(records.empty());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].timestamp_s, records[i].timestamp_s);
  }
  for (const auto& r : records) {
    if (r.src_task == 0) {
      EXPECT_GE(r.timestamp_s, 50.0);
      EXPECT_LE(r.timestamp_s, 80.0);
    } else {
      EXPECT_GE(r.timestamp_s, 10.0);
      EXPECT_LE(r.timestamp_s, 30.0);
    }
  }
}

TEST(Sflow, RejectsBadConfig) {
  Rng rng(5);
  std::vector<ObservedTransfer> transfers{{0, 1, 1e6, 0.0, 1.0}};
  SflowConfig cfg;
  cfg.sampling_rate = 0;
  EXPECT_THROW(sflow_sample(transfers, cfg, rng), PreconditionError);
}

/// Property: estimation error shrinks roughly as 1/sqrt(samples) — coarser
/// sampling rates give noisier matrices.
class SflowAccuracy : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SflowAccuracy, ErrorWithinStatisticalBound) {
  Rng rng(GetParam());
  const double truth = gigabytes(8);
  std::vector<ObservedTransfer> transfers{{0, 1, truth, 0.0, 100.0}};
  SflowConfig cfg;
  cfg.sampling_rate = 4096;
  const auto records = sflow_sample(transfers, cfg, rng);
  double est = 0.0;
  for (const auto& r : records) est += r.bytes;
  // ~1300 expected samples: 4-sigma bound ~ 11%.
  EXPECT_LT(relative_error(est, truth), 0.11) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SflowAccuracy, ::testing::Range<std::uint32_t>(1, 13));

}  // namespace
}  // namespace choreo::core

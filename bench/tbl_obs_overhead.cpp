// Observability overhead: proves the obs plane costs nothing when off and
// under 5% when fully on.
//
// Claims enforced:
//   1. Checksum identity: the compile-time-off (CHOREO_OBS_DISABLED TU),
//      runtime-off (null handles) and fully-enabled copies of the same
//      instrumented loop compute the bit-identical result of the plain
//      uninstrumented loop — observability never perturbs the computation.
//   2. Zero allocations once warm, pinned like micro_flowsim via a global
//      operator-new counter: the plain, compile-time-off and runtime-off
//      loops allocate nothing, and so does the *enabled* loop — recording
//      into pre-resolved handles and the preallocated trace ring is
//      allocation-free by design.
//   3. Compile-time off is indistinguishable from the plain loop (identical
//      machine code), gated at every optimization level; runtime-off adds
//      at most a few ns/op of null-pointer branches, gated on optimized
//      (NDEBUG) builds where inlining makes the bound meaningful.
//   4. Enabled path <5%: a tbl_serve_qps-shaped load (single reader placing
//      generated apps through PlacementService) with registry + tracer
//      attached sustains >= 95% of the unobserved placement throughput
//      (best-of-N trials on both sides to shed scheduler noise).
//
// `--smoke` shrinks the loop counts for CI; `--json[=PATH]` emits
// BENCH_tbl_obs_overhead.json.

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>

// --- Global allocation counter -------------------------------------------
// Same interposition micro_flowsim uses: count (not forbid), read the
// counter around the warm window only. Single-threaded bench, plain
// counter.
namespace {
std::size_t g_alloc_count = 0;
}

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include "bench_common.h"
#include "obs_overhead_loop.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace choreo::bench_obs {
// Defined in obs_overhead_disabled_tu.cpp, compiled with CHOREO_OBS_DISABLED.
std::uint64_t disabled_macro_loop(std::size_t iters);
}  // namespace choreo::bench_obs

namespace {

using namespace choreo;
using namespace choreo::bench;
using units::mbps;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The uninstrumented integer mix obs_macro_loop wraps — the timing and
/// checksum reference every macro path is held to.
std::uint64_t plain_loop(std::size_t iters) {
  std::uint64_t acc = 1469598103934665603ull;
  for (std::size_t i = 0; i < iters; ++i) {
    acc = (acc ^ (i * 0x9e3779b97f4a7c15ull)) * 1099511628211ull;
  }
  return acc;
}

struct LoopResult {
  double ns_per_op = 0.0;     ///< best of `trials`
  std::size_t allocs = 0;     ///< heap allocations inside the last warm trial
  std::uint64_t checksum = 0;
};

/// Times `fn(iters)` best-of-`trials` after one warm-up run; the allocation
/// count is read around the final (warmest) trial.
template <typename Fn>
LoopResult run_loop(Fn&& fn, std::size_t iters, int trials) {
  LoopResult res;
  res.checksum = fn(iters);  // warm-up (first-touch, lazy init)
  double best_s = 0.0;
  for (int t = 0; t < trials; ++t) {
    const std::size_t allocs_before = g_alloc_count;
    const auto t0 = Clock::now();
    const std::uint64_t sum = fn(iters);
    const double wall = seconds_since(t0);
    res.allocs = g_alloc_count - allocs_before;
    if (sum != res.checksum) res.checksum = ~res.checksum;  // poison on drift
    if (t == 0 || wall < best_s) best_s = wall;
  }
  res.ns_per_op = best_s * 1e9 / static_cast<double>(iters);
  return res;
}

// ---- serve-shaped load ----------------------------------------------------
// The same fleet/app shape as tbl_serve_qps, shrunk: one reader thread, no
// churn publisher (churn adds variance that would drown a 5% bound).

place::ClusterView synthetic_fleet(Rng& rng, std::size_t machines) {
  place::ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j) {
        view.rate_bps(i, j) = rng.chance(0.2) ? rng.uniform(mbps(300), mbps(900))
                                              : rng.uniform(mbps(900), mbps(1100));
      }
    }
  }
  view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
  view.colocation_group.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) view.colocation_group[m] = static_cast<int>(m);
  view.cores.assign(machines, 8.0);
  return view;
}

std::vector<place::Application> query_apps(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  workload::GeneratorConfig gen;
  gen.min_tasks = 6;
  gen.max_tasks = 10;
  gen.max_cpu = 1.0;
  std::vector<place::Application> apps;
  for (std::size_t a = 0; a < count; ++a) apps.push_back(workload::generate_app(rng, gen));
  return apps;
}

/// One timed pass of `queries` placements; `obsv` enabled or not is the
/// only difference between the two configurations.
double serve_trial(serve::PlacementService& service, serve::Scratch& scratch,
                   const std::vector<place::Application>& apps, std::size_t queries) {
  std::size_t complete = 0;
  const auto t0 = Clock::now();
  for (std::size_t q = 0; q < queries; ++q) {
    const serve::PlacementService::Result r =
        service.place(apps[q % apps.size()], scratch);
    complete += r.placement.complete() ? 1 : 0;
  }
  const double wall = seconds_since(t0);
  CHOREO_REQUIRE(complete == queries);
  return wall;
}

/// Best-of-`trials` placement QPS for the off and on configurations,
/// measured *interleaved* (off, on, off, on, ...) so frequency scaling and
/// cache state hit both sides alike — a sequential A-then-B comparison at
/// millisecond trial lengths is dominated by whichever thermal window it
/// lands in.
std::pair<double, double> serve_qps_pair(const place::ClusterView& view,
                                         const std::vector<place::Application>& apps,
                                         std::size_t queries, int trials,
                                         const obs::Observer& obsv) {
  serve::PlacementService service_off(view, place::RateModel::Hose);
  serve::Scratch scratch_off;
  serve::PlacementService service_on(view, place::RateModel::Hose);
  serve::Scratch scratch_on;
  service_on.set_observer(obsv);
  scratch_on.set_observer(obsv);
  serve_trial(service_off, scratch_off, apps, queries);  // warm-up
  serve_trial(service_on, scratch_on, apps, queries);
  double best_off = 0.0, best_on = 0.0;
  for (int t = 0; t < trials; ++t) {
    const double off = serve_trial(service_off, scratch_off, apps, queries);
    const double on = serve_trial(service_on, scratch_on, apps, queries);
    if (t == 0 || off < best_off) best_off = off;
    if (t == 0 || on < best_on) best_on = on;
  }
  return {static_cast<double>(queries) / best_off,
          static_cast<double>(queries) / best_on};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace choreo;
  using namespace choreo::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::string json_path = json_path_from_args(argc, argv, "tbl_obs_overhead");
  BenchJson json("tbl_obs_overhead");
  json.config("smoke", smoke ? "true" : "false");

  const std::size_t iters = smoke ? 2'000'000 : 20'000'000;
  const int trials = smoke ? 3 : 5;

  header(std::string("Macro-site cost: one span + counter + histogram per op") +
         (smoke ? " [smoke]" : ""));

  const LoopResult plain = run_loop(plain_loop, iters, trials);
  const LoopResult compile_off =
      run_loop(bench_obs::disabled_macro_loop, iters, trials);

  const obs::Observer null_obs;
  const LoopResult runtime_off = run_loop(
      [&](std::size_t n) {
        return obs_macro_loop(null_obs, obs::Counter{}, obs::Hist{}, n);
      },
      iters, trials);

  // Enabled: a real registry shard and a preallocated trace ring. The ring
  // is sized below `iters` on purpose — overflow must stay cheap and
  // allocation-free too (events are counted dropped, never grown).
  obs::Registry registry(1);
  obs::Tracer tracer(1 << 15);
  obs::Observer live;
  live.metrics = &registry;
  live.tracer = &tracer;
  const obs::Counter live_ctr = registry.counter("bench.ops");
  const obs::Hist live_hist = registry.histogram("bench.sample");
  const LoopResult enabled = run_loop(
      [&](std::size_t n) { return obs_macro_loop(live, live_ctr, live_hist, n); },
      iters, trials);

  Table t({"path", "ns/op", "allocs (warm)", "checksum"});
  const auto add = [&](const char* path, const LoopResult& r) {
    t.add_row({path, fmt(r.ns_per_op, 2), fmt(static_cast<double>(r.allocs), 0),
               r.checksum == plain.checksum ? "match" : "MISMATCH"});
    json.row()
        .row("section", "macro_loop")
        .row("path", path)
        .row("ns_per_op", r.ns_per_op)
        .row("allocs", static_cast<double>(r.allocs))
        .row("checksum_matches", r.checksum == plain.checksum);
  };
  add("plain (no macro sites)", plain);
  add("compile-time off", compile_off);
  add("runtime off (null handles)", runtime_off);
  add("enabled (registry+tracer)", enabled);
  std::cout << t.to_string();

  check(compile_off.checksum == plain.checksum &&
            runtime_off.checksum == plain.checksum &&
            enabled.checksum == plain.checksum,
        "every macro path computes the plain loop's exact checksum");
  check(plain.allocs == 0 && compile_off.allocs == 0 && runtime_off.allocs == 0 &&
            enabled.allocs == 0,
        "no macro path allocates once warm — including fully enabled "
        "recording into the preallocated ring");
  check(compile_off.ns_per_op <= plain.ns_per_op * 1.5 + 2.0,
        "compile-time-off macro sites are indistinguishable from the plain "
        "loop (the macros expand to nothing)");
#ifdef NDEBUG
  check(runtime_off.ns_per_op <= plain.ns_per_op + 10.0,
        "runtime-off macro sites cost at most a few ns/op of null checks");
#else
  std::cout << "  [SKIP] runtime-off ns/op bound needs an optimized (NDEBUG) "
               "build\n";
#endif

  header(std::string("Serving-plane load: placement QPS, observer off vs on") +
         (smoke ? " [smoke]" : ""));

  const std::size_t machines = 100;
  const std::size_t queries = smoke ? 1000 : 2000;
  const int serve_trials = smoke ? 7 : 11;
  Rng rng(machines * 1000 + 7);
  const place::ClusterView view = synthetic_fleet(rng, machines);
  const std::vector<place::Application> apps = query_apps(42, 64);

  obs::Registry serve_registry(1);
  obs::Tracer serve_tracer(1 << 15);
  obs::Observer serve_obs;
  serve_obs.metrics = &serve_registry;
  serve_obs.tracer = &serve_tracer;

  const auto [qps_off, qps_on] =
      serve_qps_pair(view, apps, queries, serve_trials, serve_obs);
  const double overhead_pct = 100.0 * (1.0 - qps_on / qps_off);

  Table s({"config", "QPS (best of trials)"});
  s.add_row({"observer off", fmt(qps_off, 0)});
  s.add_row({"observer on", fmt(qps_on, 0)});
  std::cout << s.to_string();
  std::cout << "enabled overhead: " << fmt(overhead_pct, 2) << "%\n";
  json.row()
      .row("section", "serve_load")
      .row("machines", static_cast<double>(machines))
      .row("queries", static_cast<double>(queries))
      .row("qps_off", qps_off)
      .row("qps_on", qps_on)
      .row("overhead_pct", overhead_pct);

  check(qps_on >= 0.95 * qps_off,
        "full registry+tracer instrumentation costs < 5% placement "
        "throughput on the serve-shaped load");

  // The enabled run actually recorded: the serve counters moved and the
  // ring holds spans (a silent no-op would pass every timing gate).
  const obs::MetricsSnapshot snap = serve_registry.snapshot();
  const obs::MetricsSnapshot::CounterValue* q = snap.find_counter("serve.queries");
  check(q != nullptr && q->value > 0 && serve_tracer.size() > 0,
        "the enabled configuration recorded real metrics and spans");

  if (!json_path.empty()) json.write(json_path);
  return finish();
}

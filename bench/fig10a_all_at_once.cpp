// Fig 10(a): relative speed-up of Choreo over Random, Round-Robin and
// Minimum-Machines when a tenant places all applications at once (§6.2).
// Protocol per run: rent 10 EC2 VMs, combine 1-3 HP-Cloud-style apps into
// one, measure the network with packet trains, place with each algorithm,
// then actually transfer the traffic matrices on the (simulated) cloud and
// time the run. Speed-up vs an alternative = (t_alt - t_choreo)/t_alt.
//
// Paper: improvement in ~70% of runs; mean 8-14%; median 7-15%; max 61%;
// restricted to improving runs, mean 20-27%; median slowdown (other runs)
// only 8-13%.

#include <map>

#include "bench_common.h"
#include "measure/throughput_matrix.h"
#include "place/baselines.h"
#include "place/greedy.h"
#include "util/rng.h"
#include "workload/trace.h"

int main() {
  using namespace choreo;
  using namespace choreo::bench;

  constexpr std::size_t kRuns = 60;
  constexpr std::size_t kVms = 10;

  header("Fig 10(a): all applications at once (" + std::to_string(kRuns) + " runs)");

  const workload::HpCloudTrace trace(99, paper_trace_config());
  Rng rng(424242);

  std::map<std::string, std::vector<double>> speedups;
  std::size_t run = 0;
  std::size_t attempts = 0;
  while (run < kRuns && attempts < kRuns * 10) {
    ++attempts;
    cloud::Cloud c(cloud::ec2_2013(), 2000 + attempts);
    const auto vms = c.allocate_vms(kVms);

    // 1-3 applications combined (§6.2), resampled if they cannot fit.
    const std::size_t napps = static_cast<std::size_t>(rng.uniform_int(1, 3));
    const auto apps = trace.sample_batch(rng, napps);
    const place::Application combined = place::combine(apps);
    double total_cores = 0.0;
    for (double cd : combined.cpu_demand) total_cores += cd;
    if (total_cores > 0.85 * kVms * c.machine_cores()) continue;

    // Measurement phase (packet trains; §4.1 EC2 configuration).
    measure::MeasurementPlan plan;
    plan.train.bursts = 10;
    plan.train.burst_length = 200;
    const place::ClusterView view =
        measure::measured_cluster_view(c, vms, plan, 7000 + attempts);
    place::ClusterState state(view);

    place::GreedyPlacer choreo_placer(place::RateModel::Hose);
    place::RandomPlacer random(1000 + attempts);
    place::RoundRobinPlacer round_robin;
    place::MinMachinesPlacer min_machines;

    const std::uint64_t exec_epoch = 5000 + attempts;
    double t_choreo = 0.0;
    std::map<std::string, double> t_alt;
    try {
      t_choreo =
          execute_placement(c, vms, combined, choreo_placer.place(combined, state),
                            exec_epoch);
      t_alt["random"] =
          execute_placement(c, vms, combined, random.place(combined, state), exec_epoch);
      t_alt["round-robin"] = execute_placement(
          c, vms, combined, round_robin.place(combined, state), exec_epoch);
      t_alt["min-machines"] = execute_placement(
          c, vms, combined, min_machines.place(combined, state), exec_epoch);
    } catch (const place::PlacementError&) {
      continue;  // resample a workload that fits every algorithm
    }
    if (t_choreo <= 0.0) continue;
    for (const auto& [name, t] : t_alt) {
      if (t > 0.0) speedups[name].push_back(relative_speedup(t_choreo, t));
    }
    ++run;
  }

  bool all_good = true;
  for (const auto& [name, values] : speedups) {
    const SpeedupStats s = speedup_stats(values);
    print_speedup_stats(name, s);
    std::cout << "\n";
    all_good = all_good && s.improved_fraction >= 0.5 && s.mean_pct > 3.0;
    check(s.improved_fraction >= 0.5,
          "vs " + name + ": Choreo improves the majority of runs (paper: ~70%)");
    check(s.mean_pct > 3.0 && s.mean_pct < 40.0,
          "vs " + name + ": mean gain in a believable band around the paper's 8-14%");
  }
  // Max improvement anywhere should be substantial (paper: 61%).
  double global_max = 0.0;
  for (const auto& [name, values] : speedups) {
    global_max = std::max(global_max, speedup_stats(values).max_pct);
  }
  std::cout << "max improvement over any alternative: " << fmt(global_max, 1) << "%\n";
  check(global_max > 25.0, "max improvement is large (paper: 61%)");
  return finish();
}

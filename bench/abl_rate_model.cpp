// Ablation (DESIGN.md §5): pipe vs hose rate model inside the greedy
// placement (Algorithm 1 line 13 supports both). On hose-model clouds like
// EC2 (§4.3), modelling contention at the source should place no worse —
// and usually better — than treating every path as an independent pipe.

#include "bench_common.h"
#include "measure/throughput_matrix.h"
#include "place/greedy.h"
#include "util/rng.h"
#include "workload/trace.h"

int main() {
  using namespace choreo;
  using namespace choreo::bench;

  header("Ablation: greedy with hose vs pipe rate model (EC2 ground truth)");

  constexpr std::size_t kRuns = 30;
  const workload::HpCloudTrace trace(99, paper_trace_config());
  Rng rng(31);

  std::vector<double> hose_vs_pipe;
  std::size_t hose_wins = 0, ties = 0, done = 0, attempts = 0;
  while (done < kRuns && attempts < kRuns * 10) {
    ++attempts;
    cloud::Cloud c(cloud::ec2_2013(), 7500 + attempts);
    const auto vms = c.allocate_vms(10);
    const auto apps =
        trace.sample_batch(rng, static_cast<std::size_t>(rng.uniform_int(2, 3)));
    const place::Application combined = place::combine(apps);
    double cores = 0.0;
    for (double cd : combined.cpu_demand) cores += cd;
    if (cores > 0.85 * 40.0) continue;

    const place::ClusterView view = measure::true_cluster_view(c, vms, attempts);
    place::ClusterState state(view);
    place::GreedyPlacer hose(place::RateModel::Hose);
    place::GreedyPlacer pipe(place::RateModel::Pipe);
    try {
      const double t_hose =
          execute_placement(c, vms, combined, hose.place(combined, state), attempts);
      const double t_pipe =
          execute_placement(c, vms, combined, pipe.place(combined, state), attempts);
      if (t_hose <= 0 || t_pipe <= 0) continue;
      hose_vs_pipe.push_back(relative_speedup(t_hose, t_pipe));
      if (t_hose < t_pipe * 0.999) {
        ++hose_wins;
      } else if (t_hose < t_pipe * 1.001) {
        ++ties;
      }
      ++done;
    } catch (const place::PlacementError&) {
      continue;
    }
  }

  const SpeedupStats s = speedup_stats(hose_vs_pipe);
  Table t({"metric", "value"});
  t.add_row({"runs", fmt(done, 0)});
  t.add_row({"hose strictly better", fmt(hose_wins, 0)});
  t.add_row({"ties (<0.1%)", fmt(ties, 0)});
  t.add_row({"mean gain of hose over pipe", fmt(s.mean_pct, 1) + "%"});
  t.add_row({"median gain", fmt(s.median_pct, 1) + "%"});
  std::cout << t.to_string();

  check(s.mean_pct > -2.0,
        "hose model never loses materially to pipe on a hose-model cloud");
  check(hose_wins + ties >= done / 2, "hose model at least ties in most runs");
  return finish();
}

#pragma once

// Shared helpers for the figure-reproduction bench binaries. Each binary
// regenerates one figure or in-text table of the paper and prints (a) the
// data series as the paper plots it and (b) a PASS/FAIL line for the
// qualitative claim it reproduces, so `for b in build/bench/*; do $b; done`
// doubles as a reproduction check.

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cloud/cloud.h"
#include "place/app.h"
#include "place/cluster.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/trace.h"

namespace choreo::bench {

/// Workload calibration for the §6 experiments. The HP Cloud dataset mixes
/// network-skewed applications with flat ones ("we observed this [uniform]
/// traffic pattern in some map-reduce applications", §7.1), and its
/// applications are dense enough that every placement algorithm co-locates a
/// fair number of task pairs by construction — both of which pull the mean
/// gain toward the paper's 8-14% band rather than letting a sparse, highly
/// skewed workload exaggerate Choreo's advantage.
inline workload::TraceConfig paper_trace_config() {
  workload::TraceConfig cfg;
  cfg.gen.min_tasks = 6;
  cfg.gen.max_tasks = 12;
  cfg.gen.pattern_weights = {0.30, 0.12, 0.08, 0.15, 0.35};
  cfg.gen.max_shuffle_skew = 0.8;
  return cfg;
}

inline int g_checks_failed = 0;

/// Prints a PASS/FAIL line for one qualitative claim of the paper.
inline void check(bool ok, const std::string& claim) {
  std::cout << (ok ? "  [PASS] " : "  [FAIL] ") << claim << "\n";
  if (!ok) ++g_checks_failed;
}

inline void header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline int finish() {
  if (g_checks_failed > 0) {
    std::cout << "\n" << g_checks_failed << " reproduction check(s) FAILED\n";
    return 1;
  }
  std::cout << "\nall reproduction checks passed\n";
  return 0;
}

/// Machine-readable bench output: one JSON document per binary with the
/// bench name, its configuration, and one object per metric row — so CI (or
/// a plotting script) can track the reproduction metrics across commits
/// without scraping the human-readable tables. Values are stored
/// pre-serialized (numbers unquoted, strings escaped), which keeps this
/// header dependency-free.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, quote(value));
  }
  void config(const std::string& key, double value) {
    config_.emplace_back(key, number(value));
  }

  /// Starts a metric row; fill it with the row(...) setters that follow.
  BenchJson& row() {
    rows_.emplace_back();
    return *this;
  }
  BenchJson& row(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, quote(value));
    return *this;
  }
  BenchJson& row(const std::string& key, double value) {
    rows_.back().emplace_back(key, number(value));
    return *this;
  }

  std::string to_string() const {
    std::ostringstream out;
    out << "{\n  \"name\": " << quote(name_) << ",\n  \"config\": {";
    for (std::size_t i = 0; i < config_.size(); ++i) {
      out << (i ? ", " : "") << quote(config_[i].first) << ": " << config_[i].second;
    }
    out << "},\n  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << "    {";
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        out << (i ? ", " : "") << quote(rows_[r][i].first) << ": " << rows_[r][i].second;
      }
      out << (r + 1 < rows_.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
    return out.str();
  }

  /// Writes the document to `path` and prints where it went.
  void write(const std::string& path) const {
    std::ofstream out(path);
    out << to_string();
    std::cout << "wrote " << path << "\n";
  }

 private:
  // One escaping rule set for every JSON surface in the repo (util/json.h):
  // the obs plane's metrics/trace exports reuse these, so the strict parser
  // in test_bench_json.cpp covers them all.
  static std::string quote(const std::string& s) { return util::json_quote(s); }
  static std::string number(double v) { return util::json_number(v); }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// Parses a `--json[=PATH]` argument: empty string when absent, PATH (or the
/// default `BENCH_<name>.json`) when present. A bare `--json=` means "the
/// default path" too — an empty PATH must not collide with the
/// output-disabled sentinel and silently drop the document.
inline std::string json_path_from_args(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg == "--json=") return "BENCH_" + name + ".json";
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return "";
}

/// Prints a CDF the way the paper's figures are read: value at a grid of
/// cumulative fractions.
inline void print_cdf(const std::string& name, const Cdf& cdf, const std::string& unit) {
  Table t({"fraction", name + " (" + unit + ")"});
  for (double q : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    t.add_row({fmt(q, 2), fmt(cdf.quantile(q), 1)});
  }
  std::cout << t.to_string();
}

/// Relative speed-up of Choreo vs an alternative: (t_alt - t_choreo)/t_alt
/// (§6.2's definition: five hours random, four hours Choreo -> 20%).
inline double relative_speedup(double t_choreo, double t_alt) {
  return (t_alt - t_choreo) / t_alt;
}

struct SpeedupStats {
  double improved_fraction = 0.0;
  double mean_pct = 0.0;
  double median_pct = 0.0;
  double max_pct = 0.0;
  double mean_improved_pct = 0.0;    ///< restricted to improving runs
  double median_improved_pct = 0.0;
  double median_slowdown_pct = 0.0;  ///< restricted to degrading runs
};

inline SpeedupStats speedup_stats(const std::vector<double>& speedups) {
  SpeedupStats s;
  if (speedups.empty()) return s;
  std::vector<double> improved, degraded;
  for (double v : speedups) {
    if (v > 0.0) {
      improved.push_back(v);
    } else if (v < 0.0) {
      degraded.push_back(-v);
    }
  }
  s.improved_fraction = static_cast<double>(improved.size()) /
                        static_cast<double>(speedups.size());
  s.mean_pct = mean(speedups) * 100.0;
  s.median_pct = median(speedups) * 100.0;
  s.max_pct = summarize(speedups).max * 100.0;
  if (!improved.empty()) {
    s.mean_improved_pct = mean(improved) * 100.0;
    s.median_improved_pct = median(improved) * 100.0;
  }
  if (!degraded.empty()) s.median_slowdown_pct = median(degraded) * 100.0;
  return s;
}

inline void print_speedup_stats(const std::string& vs, const SpeedupStats& s) {
  Table t({"vs " + vs, "value"});
  t.add_row({"runs improved", fmt_pct(s.improved_fraction)});
  t.add_row({"mean speed-up", fmt(s.mean_pct, 1) + "%"});
  t.add_row({"median speed-up", fmt(s.median_pct, 1) + "%"});
  t.add_row({"max speed-up", fmt(s.max_pct, 1) + "%"});
  t.add_row({"mean (improved runs)", fmt(s.mean_improved_pct, 1) + "%"});
  t.add_row({"median (improved runs)", fmt(s.median_improved_pct, 1) + "%"});
  t.add_row({"median slowdown (degraded runs)", fmt(s.median_slowdown_pct, 1) + "%"});
  std::cout << t.to_string();
}

/// Executes a placed application on the cloud; returns the application's
/// running time (all transfers start at `start_s`; runtime is the latest
/// completion minus start).
inline double execute_placement(cloud::Cloud& cloud, const std::vector<cloud::VmId>& vms,
                                const place::Application& app,
                                const place::Placement& placement, std::uint64_t epoch) {
  std::vector<cloud::Cloud::Transfer> transfers;
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    for (std::size_t j = 0; j < app.task_count(); ++j) {
      const double b = app.traffic_bytes(i, j);
      if (b <= 0.0) continue;
      transfers.push_back({vms[placement.machine_of_task[i]],
                           vms[placement.machine_of_task[j]], b, 0.0});
    }
  }
  if (transfers.empty()) return 0.0;
  return cloud.execute(transfers, epoch).makespan_s;
}

}  // namespace choreo::bench

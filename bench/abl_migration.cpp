// Ablation (§2.4): periodic re-evaluation and migration. After placing a
// sequence of applications with a network-blind baseline, a single Choreo
// re-evaluation pass should recover most of the gap to a Choreo-placed
// cluster — and the adoption decision must respect the migration cost knob.

#include "bench_common.h"
#include "core/choreo.h"
#include "place/baselines.h"
#include "place/rate_model.h"
#include "util/rng.h"
#include "workload/trace.h"

int main() {
  using namespace choreo;
  using namespace choreo::bench;

  header("Ablation: re-evaluation & migration (Section 2.4)");

  constexpr std::size_t kRuns = 20;
  const workload::HpCloudTrace trace(99, paper_trace_config());
  Rng rng(47);

  std::size_t adopted = 0, improved = 0, done = 0, attempts = 0;
  std::vector<double> est_gains;
  std::size_t total_migrated = 0;
  while (done < kRuns && attempts < kRuns * 10) {
    ++attempts;
    cloud::Cloud c(cloud::ec2_2013(), 7800 + attempts);
    const auto vms = c.allocate_vms(10);

    core::ChoreoConfig config;
    config.use_measured_view = false;  // isolate migration logic from noise
    config.migration_cost_per_task_s = 0.1;
    core::Choreo choreo(c, vms, config);
    choreo.measure_network(attempts);

    // Two apps placed badly (round-robin), as if by a naive tenant.
    place::RoundRobinPlacer rr;
    const auto apps = trace.sample_batch(rng, 2);
    double cores = 0.0;
    for (const auto& a : apps) {
      for (double cd : a.cpu_demand) cores += cd;
    }
    if (cores > 0.8 * 40.0) continue;
    std::vector<core::Choreo::AppHandle> handles;
    try {
      for (const auto& a : apps) handles.push_back(choreo.place_application(a, rr));
    } catch (const place::PlacementError&) {
      continue;
    }

    // Estimated completion before re-evaluation.
    double before = 0.0;
    for (const auto h : handles) {
      before += place::estimate_completion_s(choreo.running().at(h).app,
                                             choreo.placement_of(h), choreo.view(),
                                             place::RateModel::Hose);
    }
    const auto report = choreo.reevaluate(attempts + 1);
    double after = 0.0;
    for (const auto h : handles) {
      after += place::estimate_completion_s(choreo.running().at(h).app,
                                            choreo.placement_of(h), choreo.view(),
                                            place::RateModel::Hose);
    }
    if (report.adopted) {
      ++adopted;
      total_migrated += report.tasks_migrated;
    }
    if (after < before * 0.999) ++improved;
    est_gains.push_back((before - after) / std::max(before, 1e-9));
    ++done;
  }

  Table t({"metric", "value"});
  t.add_row({"runs", fmt(done, 0)});
  t.add_row({"re-evaluations adopted", fmt(adopted, 0)});
  t.add_row({"runs with improved estimate", fmt(improved, 0)});
  t.add_row({"mean estimated completion gain", fmt_pct(mean(est_gains))});
  t.add_row({"tasks migrated (total)", fmt(total_migrated, 0)});
  std::cout << t.to_string();

  check(adopted > done / 2, "re-evaluation of round-robin layouts is usually adopted");
  check(improved >= adopted, "every adopted migration improves the estimate");
  check(mean(est_gains) > 0.05, "re-evaluation recovers substantial completion time");

  // Migration-cost knob: with prohibitive cost nothing is adopted.
  cloud::Cloud c(cloud::ec2_2013(), 31337);
  const auto vms = c.allocate_vms(10);
  core::ChoreoConfig config;
  config.use_measured_view = false;
  config.migration_cost_per_task_s = 1e9;
  core::Choreo choreo(c, vms, config);
  choreo.measure_network(1);
  place::RoundRobinPlacer rr;
  const auto apps = trace.sample_batch(rng, 2);
  try {
    for (const auto& a : apps) choreo.place_application(a, rr);
    const auto report = choreo.reevaluate(2);
    check(!report.adopted, "prohibitive migration cost vetoes adoption");
  } catch (const place::PlacementError&) {
    check(true, "prohibitive migration cost vetoes adoption (placement skipped)");
  }
  return finish();
}

// §3.1/§4.1 measurement-overhead accounting.
//
// Three claims are enforced:
//   1. The paper's headline: packet trains measure a ten-VM (90 ordered
//      pairs) topology in "less than three minutes", vs ~10 s per pair for a
//      stable netperf reading.
//   2. The fleet-size sweep: ProbeScheduler edge-colors the n(n-1) ordered
//      pairs into exactly n-1 conflict-free rounds whose trains run
//      concurrently, so modeled wall-clock grows ~linearly in n while a
//      train-at-a-time plan grows quadratically.
//   3. The incremental path: a ViewCache refresh re-probes only flagged
//      pairs — strictly fewer than a full re-measurement — and carries every
//      unchanged estimate over bit-for-bit.
//
// `--smoke` runs a reduced sweep for CI; the exit code is non-zero on any
// [FAIL], which is what lets CI enforce the §4.1 claim continuously.

#include <cstring>

#include "bench_common.h"
#include "measure/packet_train.h"
#include "measure/probe_scheduler.h"
#include "measure/throughput_matrix.h"
#include "measure/view_cache.h"

int main(int argc, char** argv) {
  using namespace choreo;
  using namespace choreo::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  BenchJson json("tbl_measurement_overhead");
  json.config("smoke", smoke ? "true" : "false");

  header("Measurement overhead: 10 VMs, 90 ordered pairs");

  measure::MeasurementPlan ec2_plan;
  ec2_plan.train.bursts = 10;
  ec2_plan.train.burst_length = 200;
  ec2_plan.train.line_rate_bps = 4e9;

  measure::MeasurementPlan rs_plan = ec2_plan;
  rs_plan.train.bursts = 10;
  rs_plan.train.burst_length = 2000;
  rs_plan.train.line_rate_bps = 1e9;

  const double ec2_train = measure::train_duration_s(ec2_plan.train);
  const double rs_train = measure::train_duration_s(rs_plan.train);
  const double netperf_per_pair = 10.0;

  const double ec2_wall = measure::measurement_wall_time_s(ec2_plan, 9);
  const double rs_wall = measure::measurement_wall_time_s(rs_plan, 9);
  // netperf cannot run two probes out of one VM either: 9 rounds of 10 s.
  const double netperf_wall =
      ec2_plan.setup_overhead_s + 9.0 * (10.0 + ec2_plan.round_overhead_s);

  Table t({"method", "per-probe (s)", "90-pair wall clock (s)"});
  t.add_row({"packet train (EC2 10x200)", fmt(ec2_train, 3), fmt(ec2_wall, 1)});
  t.add_row({"packet train (Rackspace 10x2000)", fmt(rs_train, 3), fmt(rs_wall, 1)});
  t.add_row({"netperf 10 s", fmt(netperf_per_pair, 1), fmt(netperf_wall, 1)});
  std::cout << t.to_string();
  json.row()
      .row("kind", "snapshot")
      .row("method", "train_ec2")
      .row("per_probe_s", ec2_train)
      .row("wall_s", ec2_wall);
  json.row()
      .row("kind", "snapshot")
      .row("method", "train_rackspace")
      .row("per_probe_s", rs_train)
      .row("wall_s", rs_wall);
  json.row()
      .row("kind", "snapshot")
      .row("method", "netperf")
      .row("per_probe_s", netperf_per_pair)
      .row("wall_s", netperf_wall);

  check(ec2_train < 1.0, "one EC2 train takes under a second (paper: <1 s)");
  check(rs_train < 1.0, "one Rackspace train takes under a second");
  check(ec2_wall < 180.0, "full 90-pair EC2 snapshot under three minutes");
  check(rs_wall < 180.0, "full 90-pair Rackspace snapshot under three minutes");
  check(netperf_wall > ec2_wall, "netperf-based snapshot is slower than trains");

  // Cross-check the plan arithmetic against the orchestrator itself.
  {
    cloud::Cloud c(cloud::ec2_2013(), 5);
    const auto vms = c.allocate_vms(10);
    measure::MeasurementPlan plan = ec2_plan;
    plan.workers = 4;  // concurrent trains; results identical to sequential
    const measure::MatrixResult res = measure::measure_rate_matrix(c, vms, plan, 1);
    std::cout << "orchestrator: " << res.pairs_measured << " pairs in " << res.rounds
              << " rounds, modelled wall clock " << fmt(res.wall_time_s, 1) << " s\n";
    check(res.pairs_measured == 90, "90 ordered pairs measured");
    check(res.rounds == 9, "9 rounds (each VM sources one train per round)");
    check(std::abs(res.wall_time_s - ec2_wall) < 1e-6, "wall-clock model matches plan");
  }

  header(std::string("Fleet-size sweep: conflict-free rounds vs sequential trains") +
         (smoke ? " [smoke]" : ""));

  const std::vector<std::size_t> fleet_sizes =
      smoke ? std::vector<std::size_t>{10, 50, 200}
            : std::vector<std::size_t>{10, 25, 50, 100, 200};
  Table sweep({"VMs", "pairs", "rounds", "parallel wall (s)", "sequential wall (s)",
               "speed-up"});
  bool rounds_ok = true, linear_ok = true;
  double wall10 = 0.0;
  for (std::size_t n : fleet_sizes) {
    const measure::ProbeSchedule s =
        measure::schedule_probes(n, measure::all_ordered_pairs(n));
    s.validate(n);
    rounds_ok &= (s.round_count() == n - 1);
    const double parallel_wall = measure::measurement_wall_time_s(ec2_plan, s.round_count());
    // A train-at-a-time plan pays the per-round overhead once per pair.
    const double sequential_wall =
        measure::measurement_wall_time_s(ec2_plan, s.pair_count());
    if (n == 10) wall10 = parallel_wall;
    if (wall10 > 0.0) {
      // Linear growth: wall(n)/wall(10) tracks (n-1)/9, nowhere near the
      // quadratic pair ratio n(n-1)/90.
      const double ratio = parallel_wall / wall10;
      const double linear = static_cast<double>(n - 1) / 9.0;
      const double quadratic = static_cast<double>(n * (n - 1)) / 90.0;
      linear_ok &= ratio < 1.2 * linear && (n == 10 || ratio < 0.5 * quadratic);
    }
    sweep.add_row({fmt(static_cast<double>(n), 0),
                   fmt(static_cast<double>(s.pair_count()), 0),
                   fmt(static_cast<double>(s.round_count()), 0), fmt(parallel_wall, 0),
                   fmt(sequential_wall, 0),
                   fmt(sequential_wall / parallel_wall, 1) + "x"});
    json.row()
        .row("kind", "fleet_sweep")
        .row("vms", static_cast<double>(n))
        .row("rounds", static_cast<double>(s.round_count()))
        .row("parallel_wall_s", parallel_wall)
        .row("sequential_wall_s", sequential_wall);
  }
  std::cout << sweep.to_string();
  check(rounds_ok, "scheduler hits the Konig bound: n-1 rounds for n(n-1) pairs");
  check(linear_ok, "modeled wall-clock grows ~linearly in fleet size, not quadratically");

  header("Incremental refresh: re-probe only what changed");

  {
    cloud::Cloud c(cloud::ec2_2013(), 7);
    const std::size_t n = smoke ? 6 : 10;
    const auto vms = c.allocate_vms(n);
    measure::MeasurementPlan plan;
    plan.train.bursts = smoke ? 5 : 10;
    plan.train.burst_length = smoke ? 100 : 200;
    plan.workers = 2;
    measure::RefreshPolicy policy;
    policy.max_age_epochs = 50;
    policy.volatility_threshold = 1e9;  // isolate the staleness mechanics

    measure::ViewCache cache;
    const measure::RefreshResult full =
        measure::refresh_cluster_view(c, vms, plan, 1, cache, policy);
    cache.invalidate(0, 1);
    cache.invalidate(1, 0);
    cache.invalidate(2, 3);
    const measure::RefreshResult incr =
        measure::refresh_cluster_view(c, vms, plan, 5, cache, policy);

    Table it({"cycle", "pairs probed", "rounds", "modeled wall (s)"});
    it.add_row({"full", fmt(static_cast<double>(full.pairs_probed), 0),
                fmt(static_cast<double>(full.rounds), 0), fmt(full.wall_time_s, 1)});
    it.add_row({"incremental", fmt(static_cast<double>(incr.pairs_probed), 0),
                fmt(static_cast<double>(incr.rounds), 0), fmt(incr.wall_time_s, 1)});
    std::cout << it.to_string();

    bool unchanged_identical = true;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || incr.view.pair_epoch(i, j) != 1) continue;
        unchanged_identical &= incr.view.rate_bps(i, j) == full.view.rate_bps(i, j);
      }
    }
    check(full.pairs_probed == n * (n - 1), "first cycle probes the full matrix");
    check(incr.pairs_probed == 3 && incr.pairs_probed < full.pairs_probed,
          "incremental cycle probes strictly fewer pairs");
    check(incr.wall_time_s < full.wall_time_s,
          "incremental cycle is proportionally cheaper");
    check(unchanged_identical, "unchanged pairs carry over bit-for-bit");
    json.row()
        .row("kind", "refresh")
        .row("cycle", "full")
        .row("pairs_probed", static_cast<double>(full.pairs_probed))
        .row("wall_s", full.wall_time_s);
    json.row()
        .row("kind", "refresh")
        .row("cycle", "incremental")
        .row("pairs_probed", static_cast<double>(incr.pairs_probed))
        .row("wall_s", incr.wall_time_s);
  }

  const std::string json_path =
      json_path_from_args(argc, argv, "tbl_measurement_overhead");
  if (!json_path.empty()) json.write(json_path);
  return finish();
}

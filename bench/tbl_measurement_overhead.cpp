// §3.1/§4.1 measurement-overhead accounting: packet trains vs netperf for a
// ten-VM (90 ordered pairs) topology. Paper: an individual train takes under
// a second (vs 10 s for a stable netperf reading); measuring all 90 pairs
// takes "less than three minutes", including setup/collection overheads.

#include "bench_common.h"
#include "measure/packet_train.h"
#include "measure/throughput_matrix.h"

int main() {
  using namespace choreo;
  using namespace choreo::bench;

  header("Measurement overhead: 10 VMs, 90 ordered pairs");

  measure::MeasurementPlan ec2_plan;
  ec2_plan.train.bursts = 10;
  ec2_plan.train.burst_length = 200;
  ec2_plan.train.line_rate_bps = 4e9;

  measure::MeasurementPlan rs_plan = ec2_plan;
  rs_plan.train.bursts = 10;
  rs_plan.train.burst_length = 2000;
  rs_plan.train.line_rate_bps = 1e9;

  const double ec2_train = measure::train_duration_s(ec2_plan.train);
  const double rs_train = measure::train_duration_s(rs_plan.train);
  const double netperf_per_pair = 10.0;

  const auto wall = [](const measure::MeasurementPlan& plan) {
    return plan.setup_overhead_s +
           9.0 * (measure::train_duration_s(plan.train) + plan.round_overhead_s);
  };
  const double ec2_wall = wall(ec2_plan);
  const double rs_wall = wall(rs_plan);
  // netperf cannot run two probes out of one VM either: 9 rounds of 10 s.
  const double netperf_wall = ec2_plan.setup_overhead_s + 9.0 * (10.0 + ec2_plan.round_overhead_s);

  Table t({"method", "per-probe (s)", "90-pair wall clock (s)"});
  t.add_row({"packet train (EC2 10x200)", fmt(ec2_train, 3), fmt(ec2_wall, 1)});
  t.add_row({"packet train (Rackspace 10x2000)", fmt(rs_train, 3), fmt(rs_wall, 1)});
  t.add_row({"netperf 10 s", fmt(netperf_per_pair, 1), fmt(netperf_wall, 1)});
  std::cout << t.to_string();

  check(ec2_train < 1.0, "one EC2 train takes under a second (paper: <1 s)");
  check(rs_train < 1.0, "one Rackspace train takes under a second");
  check(ec2_wall < 180.0, "full 90-pair EC2 snapshot under three minutes");
  check(rs_wall < 180.0, "full 90-pair Rackspace snapshot under three minutes");
  check(netperf_wall > ec2_wall, "netperf-based snapshot is slower than trains");

  // Cross-check the plan arithmetic against the orchestrator itself.
  cloud::Cloud c(cloud::ec2_2013(), 5);
  const auto vms = c.allocate_vms(10);
  const measure::MatrixResult res = measure::measure_rate_matrix(c, vms, ec2_plan, 1);
  std::cout << "orchestrator: " << res.pairs_measured << " pairs in " << res.rounds
            << " rounds, modelled wall clock " << fmt(res.wall_time_s, 1) << " s\n";
  check(res.pairs_measured == 90, "90 ordered pairs measured");
  check(res.rounds == 9, "9 rounds (each VM sources one train per round)");
  check(std::abs(res.wall_time_s - ec2_wall) < 1e-6, "wall-clock model matches plan");
  return finish();
}

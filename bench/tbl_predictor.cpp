// §2.1 validation: "we found that data from the previous hour and the
// time-of-day are good predictors of the number of bytes transferred in the
// next hour" — scored on the synthetic three-week HP-Cloud trace.
//
// `--smoke` scores a shortened (10-day) trace for CI; the exit code is
// non-zero on any failed check.

#include <cstring>

#include "bench_common.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace choreo;
  using namespace choreo::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  header(std::string("Predictability of next-hour bytes (") +
         (smoke ? "10-day" : "3-week") + " HP-Cloud-style trace" +
         (smoke ? ") [smoke]" : ")"));

  workload::TraceConfig cfg;
  if (smoke) cfg.duration_hours = 10.0 * 24.0;
  const workload::HpCloudTrace trace(2021, cfg);

  std::vector<double> prev_mean, tod_mean, blend_mean;
  std::size_t services = 0;
  for (const workload::TraceApp& app : trace.apps()) {
    if (app.hourly_bytes.size() < 24 * 7) continue;  // long-running services only
    ++services;
    prev_mean.push_back(workload::score_prev_hour(app.hourly_bytes).mean_rel_error);
    tod_mean.push_back(workload::score_time_of_day(app.hourly_bytes).mean_rel_error);
    blend_mean.push_back(workload::score_blend(app.hourly_bytes).mean_rel_error);
  }

  Table t({"predictor", "mean rel. error", "median over services", "p90"});
  const auto row = [&](const char* name, std::vector<double> v) {
    const Summary s = summarize(v);
    t.add_row({name, fmt_pct(s.mean), fmt_pct(s.median), fmt_pct(s.p90)});
  };
  row("previous hour", prev_mean);
  row("time of day", tod_mean);
  row("blend (avg of both)", blend_mean);
  std::cout << "long-running services scored: " << services << "\n" << t.to_string();

  check(services >= (smoke ? 20u : 50u), "enough long-running services in the trace");
  check(summarize(prev_mean).median < 0.35, "previous hour is a good predictor");
  check(summarize(tod_mean).median < 0.6, "time-of-day is a usable predictor");
  check(summarize(blend_mean).median <= summarize(prev_mean).median + 0.02,
        "blending time-of-day in does not hurt the previous-hour predictor");
  return finish();
}

// Distributed agent plane under degraded transport: how much placement
// quality the controller loses when StatsReports are dropped, delayed,
// duplicated, and agents crash — and what the report budget does to the
// bytes on the wire. Sweeps loss rate x report budget at fleet scale
// (100-500 VMs full, 40 in --smoke) and scores each configuration by the
// believed-vs-true rate error on the paths a greedy placement actually
// chose (the tbl_forecast metric), the fraction of planned pairs whose
// report never landed in-cycle, and the transport byte counts.
//
// The qualitative claims checked: the lossless transport is exact (nothing
// missing, nothing retransmitted — the bit-identity oracle's precondition),
// loss degrades coverage but the controller keeps placing against its
// stale-or-partial view with bounded rate error, and a tighter report
// budget trades bytes for deferral without breaking the cycle.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "agent/options.h"
#include "agent/plane.h"
#include "bench_common.h"
#include "cloud/profile.h"
#include "measure/throughput_matrix.h"
#include "place/greedy.h"
#include "workload/generator.h"

namespace {

using namespace choreo;

struct SweepPoint {
  std::size_t vms = 0;
  double loss = 0.0;
  std::size_t max_samples = 0;  ///< per report; 0 = unlimited
  std::size_t max_reports = 0;  ///< per cycle; 0 = unlimited
  std::size_t cycles = 0;
};

struct SweepResult {
  double mean_rate_err = 0.0;      ///< believed vs true on placed paths
  double missing_fraction = 0.0;   ///< planned pairs with no in-cycle report
  double defaulted_fraction = 0.0; ///< view holes filled with the fallback rate
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t crashes = 0;
  std::uint64_t samples_deferred = 0;
};

SweepResult run_point(const SweepPoint& point, const measure::MeasurementPlan& mplan,
                      std::uint64_t seed) {
  const std::size_t cycles = point.cycles;
  cloud::Cloud cloud(cloud::ec2_2013(), seed);
  const auto vms = cloud.allocate_vms(point.vms);

  measure::RefreshPolicy refresh;
  refresh.max_age_epochs = 3;  // keep re-probing so losses get retried

  agent::AgentOptions opts;
  opts.enabled = true;
  opts.transport.seed = seed * 17 + 3;
  opts.transport.fault.loss = point.loss;
  if (point.loss > 0.0) {
    opts.transport.fault.duplicate = 0.05;
    opts.transport.fault.delay_max_cycles = 2;
    opts.crash_rate = 0.01;
    opts.crash_seed = seed + 11;
  }
  opts.max_samples_per_report = point.max_samples;
  opts.max_reports_per_cycle = point.max_reports;

  agent::AgentPlane plane(cloud, vms, mplan, refresh, forecast::ForecastOptions{},
                          opts);

  // One dense CPU-heavy application placed on every cycle's view; believed
  // rates on its chosen paths are scored against ground truth.
  Rng app_rng(seed * 13 + 1);
  workload::GeneratorConfig gen;
  gen.min_tasks = 8;
  gen.max_tasks = 8;
  gen.min_cpu = 2.0;
  gen.max_cpu = 4.0;
  gen.pattern_weights = {0.0, 0.0, 0.0, 0.0, 1.0};  // uniform all-to-all
  const place::Application app = workload::generate_app(app_rng, gen);

  SweepResult result;
  std::vector<double> errs;
  std::size_t planned = 0, missing = 0, defaulted = 0;
  for (std::uint64_t epoch = 1; epoch <= cycles; ++epoch) {
    const agent::ClusterAgent::CycleReport rep = plane.run_cycle(epoch);
    planned += rep.pairs_planned;
    missing += rep.pairs_missing;
    defaulted += rep.pairs_defaulted;

    place::ClusterState state(rep.view);
    place::GreedyPlacer greedy(place::RateModel::Hose);
    const place::Placement placement = greedy.place(app, state);
    double err_sum = 0.0;
    std::size_t paths = 0;
    place::for_each_placed_transfer(
        app, placement, [&](std::size_t m, std::size_t n, double) {
          const double truth = cloud.true_path_rate_bps(vms[m], vms[n], epoch);
          if (truth <= 0.0) return;
          err_sum += std::abs(rep.view.rate_bps(m, n) - truth) / truth;
          ++paths;
        });
    if (paths > 0) errs.push_back(err_sum / static_cast<double>(paths));
  }

  result.mean_rate_err = errs.empty() ? 0.0 : mean(errs);
  result.missing_fraction =
      planned > 0 ? static_cast<double>(missing) / static_cast<double>(planned) : 0.0;
  result.defaulted_fraction =
      planned > 0 ? static_cast<double>(defaulted) / static_cast<double>(planned) : 0.0;
  const agent::AgentPlane::Stats stats = plane.stats();
  result.bytes_sent = stats.transport.bytes_sent;
  result.bytes_delivered = stats.transport.bytes_delivered;
  result.retransmits = stats.retransmits;
  result.crashes = stats.crashes;
  result.samples_deferred = stats.samples_deferred;
  return result;
}

std::string budget_label(const SweepPoint& p) {
  if (p.max_samples == 0 && p.max_reports == 0) return "unlimited";
  return std::to_string(p.max_reports) + "x" + std::to_string(p.max_samples);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace choreo;
  using namespace choreo::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // The loss x budget sweep runs at the base fleet (every full-mesh sweep is
  // O(vms^2) packet trains, so this is where the cycle budget goes); the
  // larger fleets get one representative degraded row each, enough to show
  // how the byte and coverage numbers scale toward the paper's 100-500 VM
  // range without an hour-long run.
  const std::size_t base_fleet = smoke ? 40 : 100;
  const std::vector<std::size_t> scale_fleets =
      smoke ? std::vector<std::size_t>{} : std::vector<std::size_t>{250, 500};
  const std::vector<double> losses = smoke ? std::vector<double>{0.0, 0.3}
                                           : std::vector<double>{0.0, 0.1, 0.3, 0.5};
  const double scale_loss = 0.3;
  const std::size_t cycles = smoke ? 3 : 6;
  const std::size_t scale_cycles = 3;
  const std::uint64_t seed = 2024;

  header("Agent plane under lossy transport: placement error and report bytes (" +
         std::to_string(base_fleet) + "-" +
         std::to_string(scale_fleets.empty() ? base_fleet : scale_fleets.back()) +
         " VMs" + (smoke ? ") [smoke]" : ")"));

  measure::MeasurementPlan mplan;
  mplan.train.bursts = smoke ? 3 : 5;
  mplan.train.burst_length = smoke ? 60 : 100;

  BenchJson json("tbl_agents");
  json.config("cycles", static_cast<double>(cycles));
  json.config("seed", static_cast<double>(seed));

  Table t({"VMs", "loss", "budget", "rate err", "missing", "defaulted", "MB sent",
           "retransmits", "deferred"});
  // Keyed results for the qualitative gates below.
  double err_lossless = 0.0, err_low = 0.0, err_high = 0.0;
  double missing_lossless = 1.0, missing_high = 0.0;
  std::uint64_t retrans_lossless = 1, bytes_unlimited = 0, bytes_tight = 0;

  std::vector<SweepPoint> points;
  for (const double loss : losses) {
    points.push_back({base_fleet, loss, 0, 0, cycles});
  }
  // The report budget axis, at the highest loss: tight budgets defer
  // samples instead of flooding the wire.
  points.push_back({base_fleet, losses.back(), 16, 2, cycles});
  for (const std::size_t n : scale_fleets) {
    points.push_back({n, scale_loss, 0, 0, scale_cycles});
  }

  for (const SweepPoint& p : points) {
    const SweepResult r = run_point(p, mplan, seed);
    t.add_row({std::to_string(p.vms), fmt_pct(p.loss), budget_label(p),
               fmt_pct(r.mean_rate_err), fmt_pct(r.missing_fraction),
               fmt_pct(r.defaulted_fraction),
               fmt(static_cast<double>(r.bytes_sent) / 1e6, 2),
               std::to_string(r.retransmits), std::to_string(r.samples_deferred)});
    json.row()
        .row("vms", static_cast<double>(p.vms))
        .row("loss", p.loss)
        .row("budget", budget_label(p))
        .row("rate_err", r.mean_rate_err)
        .row("missing_fraction", r.missing_fraction)
        .row("defaulted_fraction", r.defaulted_fraction)
        .row("bytes_sent", static_cast<double>(r.bytes_sent))
        .row("bytes_delivered", static_cast<double>(r.bytes_delivered))
        .row("retransmits", static_cast<double>(r.retransmits))
        .row("crashes", static_cast<double>(r.crashes))
        .row("samples_deferred", static_cast<double>(r.samples_deferred));

    if (p.vms == base_fleet) {
      if (p.max_samples == 0 && p.loss == 0.0) {
        err_lossless = r.mean_rate_err;
        missing_lossless = r.missing_fraction;
        retrans_lossless = r.retransmits;
      }
      if (p.max_samples == 0 && p.loss == losses[1]) err_low = r.mean_rate_err;
      if (p.max_samples == 0 && p.loss == losses.back()) {
        err_high = r.mean_rate_err;
        missing_high = r.missing_fraction;
        bytes_unlimited = r.bytes_sent;
      }
      if (p.max_samples != 0) bytes_tight = r.bytes_sent;
    }
  }
  std::cout << t.to_string();

  // Qualitative gates. The lossless column doubles as the oracle
  // precondition check: nothing missing, nothing retransmitted.
  check(missing_lossless == 0.0 && retrans_lossless == 0,
        "lossless transport delivers every planned pair with no retries");
  check(missing_high > 0.0, "loss actually produces in-cycle coverage gaps");
  check(err_high >= err_lossless,
        "placement-rate error does not improve under loss (sanity)");
  check(err_high <= err_lossless + 0.5,
        "degradation is graceful: high-loss error within 50 points of lossless");
  check(err_low <= err_high + 0.10,
        "error roughly tracks loss (low-loss within 10 points of high-loss)");
  check(bytes_tight < bytes_unlimited,
        "a tight report budget spends fewer bytes than unlimited at equal loss");

  const std::string json_path = json_path_from_args(argc, argv, "tbl_agents");
  if (!json_path.empty()) json.write(json_path);
  return finish();
}

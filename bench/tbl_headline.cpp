// Headline summary (§1 / Conclusion): Choreo reduces application completion
// time by 8-14% on average (max 61%) for batch placement and 22-43% (max
// 79%) for real-time arrivals, vs Random / Round-Robin / Min-Machines. This
// binary runs compact versions of both §6 experiments and prints the
// abstract's numbers side by side with ours.

#include <map>

#include "bench_common.h"
#include "measure/throughput_matrix.h"
#include "place/baselines.h"
#include "place/greedy.h"
#include "util/rng.h"
#include "workload/trace.h"

namespace {

using namespace choreo;
using namespace choreo::bench;

struct Band {
  double mean_lo, mean_hi, observed_mean_lo, observed_mean_hi;
};

std::map<std::string, std::vector<double>> batch_speedups(std::size_t runs) {
  const workload::HpCloudTrace trace(99, paper_trace_config());
  Rng rng(1);
  std::map<std::string, std::vector<double>> out;
  std::size_t done = 0, attempts = 0;
  while (done < runs && attempts < runs * 10) {
    ++attempts;
    cloud::Cloud c(cloud::ec2_2013(), 4000 + attempts);
    const auto vms = c.allocate_vms(10);
    const auto apps = trace.sample_batch(rng, static_cast<std::size_t>(rng.uniform_int(1, 3)));
    const place::Application combined = place::combine(apps);
    double cores = 0.0;
    for (double cd : combined.cpu_demand) cores += cd;
    if (cores > 0.85 * 40.0) continue;

    measure::MeasurementPlan plan;
    plan.train.bursts = 10;
    plan.train.burst_length = 200;
    const place::ClusterView view =
        measure::measured_cluster_view(c, vms, plan, 9000 + attempts);
    place::ClusterState state(view);

    place::GreedyPlacer choreo_placer(place::RateModel::Hose);
    place::RandomPlacer random(attempts);
    place::RoundRobinPlacer rr;
    place::MinMachinesPlacer mm;
    try {
      const double t0 = execute_placement(c, vms, combined,
                                          choreo_placer.place(combined, state), attempts);
      const double tr = execute_placement(c, vms, combined, random.place(combined, state),
                                          attempts);
      const double trr =
          execute_placement(c, vms, combined, rr.place(combined, state), attempts);
      const double tmm =
          execute_placement(c, vms, combined, mm.place(combined, state), attempts);
      if (t0 <= 0 || tr <= 0 || trr <= 0 || tmm <= 0) continue;
      out["random"].push_back(relative_speedup(t0, tr));
      out["round-robin"].push_back(relative_speedup(t0, trr));
      out["min-machines"].push_back(relative_speedup(t0, tmm));
      ++done;
    } catch (const place::PlacementError&) {
      continue;
    }
  }
  return out;
}

}  // namespace

int main() {
  header("Headline numbers (compact rerun of the Section 6 experiments)");

  const auto batch = batch_speedups(30);
  Table t({"experiment", "alternative", "paper mean", "our mean", "our max"});
  double all_max = 0.0;
  std::vector<double> means;
  for (const auto& [name, values] : batch) {
    const SpeedupStats s = speedup_stats(values);
    t.add_row({"all-at-once", name, "8-14%", fmt(s.mean_pct, 1) + "%",
               fmt(s.max_pct, 1) + "%"});
    all_max = std::max(all_max, s.max_pct);
    means.push_back(s.mean_pct);
  }
  std::cout << t.to_string();
  std::cout << "(sequences are reproduced in full by fig10b_sequences)\n";

  check(!means.empty() && summarize(means).min > 2.0,
        "batch: every alternative is beaten on average");
  check(all_max > 25.0, "batch: large max improvement exists (paper: 61%)");
  return finish();
}

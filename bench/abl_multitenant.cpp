// Ablation (§7.2 future work): "We also leave a study of how Choreo performs
// with multiple users as future work. In general, we believe that Choreo
// would succeed in this case, because each user would measure the network
// individually (and so would be able to place their application with the
// knowledge of how the network was being affected by the other Choreo
// users)."
//
// Two tenants share one EC2-like cloud. Tenant A places first and runs a
// long-lived workload; tenant B then measures (seeing A's traffic squeeze
// its paths) and places its own application. We compare B's completion when
// B uses Choreo vs a random placement, and — the §7.2 conjecture — whether
// B's *measurement-driven* placement avoids the paths A is loading.

#include "bench_common.h"
#include "measure/throughput_matrix.h"
#include "place/baselines.h"
#include "place/greedy.h"
#include "util/rng.h"
#include "workload/trace.h"

int main() {
  using namespace choreo;
  using namespace choreo::bench;

  header("Ablation: two Choreo tenants sharing one cloud (Section 7.2)");

  constexpr std::size_t kRuns = 25;
  const workload::HpCloudTrace trace(99, paper_trace_config());
  Rng rng(57);

  std::vector<double> speedups;
  std::size_t done = 0, attempts = 0;
  while (done < kRuns && attempts < kRuns * 10) {
    ++attempts;
    cloud::Cloud c(cloud::ec2_2013(), 8400 + attempts);
    const auto vms_a = c.allocate_vms(8);
    const auto vms_b = c.allocate_vms(8);

    // Tenant A: place with Choreo and start a persistent workload.
    const place::Application app_a = place::combine(trace.sample_batch(rng, 1));
    const place::Application app_b = place::combine(trace.sample_batch(rng, 1));
    double cores_a = 0.0, cores_b = 0.0;
    for (double cd : app_a.cpu_demand) cores_a += cd;
    for (double cd : app_b.cpu_demand) cores_b += cd;
    if (cores_a > 0.85 * 32.0 || cores_b > 0.85 * 32.0) continue;

    measure::MeasurementPlan plan;
    plan.train.bursts = 10;
    plan.train.burst_length = 200;

    place::GreedyPlacer greedy_a(place::RateModel::Hose);
    place::GreedyPlacer greedy_b(place::RateModel::Hose);
    place::RandomPlacer random_b(attempts);

    try {
      const place::ClusterView view_a =
          measure::measured_cluster_view(c, vms_a, plan, 100 + attempts);
      place::ClusterState state_a(view_a);
      const place::Placement p_a = greedy_a.place(app_a, state_a);

      // Tenant A's transfers run while B measures and runs: both tenants'
      // flows are executed together; B's per-run time is what we score.
      const auto transfers_a = [&] {
        std::vector<cloud::Cloud::Transfer> out;
        for (std::size_t i = 0; i < app_a.task_count(); ++i) {
          for (std::size_t j = 0; j < app_a.task_count(); ++j) {
            const double b = app_a.traffic_bytes(i, j);
            if (b <= 0.0) continue;
            // A's workload loops: model as a large multiple of the matrix.
            out.push_back({vms_a[p_a.machine_of_task[i]], vms_a[p_a.machine_of_task[j]],
                           b * 4.0, 0.0});
          }
        }
        return out;
      }();

      const place::ClusterView view_b =
          measure::measured_cluster_view(c, vms_b, plan, 200 + attempts);
      place::ClusterState state_b(view_b);

      const auto run_b = [&](place::Placer& placer) {
        const place::Placement p_b = placer.place(app_b, state_b);
        std::vector<cloud::Cloud::Transfer> transfers = transfers_a;
        std::vector<std::size_t> b_idx;
        for (std::size_t i = 0; i < app_b.task_count(); ++i) {
          for (std::size_t j = 0; j < app_b.task_count(); ++j) {
            const double b = app_b.traffic_bytes(i, j);
            if (b <= 0.0) continue;
            transfers.push_back({vms_b[p_b.machine_of_task[i]],
                                 vms_b[p_b.machine_of_task[j]], b, 0.0});
            b_idx.push_back(transfers.size() - 1);
          }
        }
        if (b_idx.empty()) return 0.0;
        const auto result = c.execute(transfers, 300 + attempts);
        double t = 0.0;
        for (std::size_t idx : b_idx) t = std::max(t, result.completion_s[idx]);
        return t;
      };

      const double t_choreo = run_b(greedy_b);
      const double t_random = run_b(random_b);
      if (t_choreo <= 0.0 || t_random <= 0.0) continue;
      speedups.push_back(relative_speedup(t_choreo, t_random));
      ++done;
    } catch (const place::PlacementError&) {
      continue;
    }
  }

  const SpeedupStats s = speedup_stats(speedups);
  print_speedup_stats("random (tenant B, under tenant A's load)", s);
  check(s.improved_fraction >= 0.6,
        "a second Choreo tenant still beats random despite the first tenant's load");
  check(s.mean_pct > 3.0, "the multi-user conjecture of Section 7.2 holds on average");
  return finish();
}

// Companion TU of tbl_obs_overhead, compiled with -DCHOREO_OBS_DISABLED
// (set in bench/CMakeLists.txt): the CHOREO_OBS_* macro sites in
// obs_overhead_loop.h expand to nothing here, so this function is the
// compile-time-off path the bench races against the live-macro copy in the
// main TU.

#ifndef CHOREO_OBS_DISABLED
#error "obs_overhead_disabled_tu.cpp must be compiled with CHOREO_OBS_DISABLED"
#endif

#include "obs_overhead_loop.h"

namespace choreo::bench_obs {

std::uint64_t disabled_macro_loop(std::size_t iters) {
  const obs::Observer obsv;  // irrelevant: the macros ignore their operands
  const obs::Counter ctr;
  const obs::Hist hist;
  return obs_macro_loop(obsv, ctr, hist, iters);
}

}  // namespace choreo::bench_obs

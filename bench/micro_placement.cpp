// §5 microbenchmarks (google-benchmark): the greedy algorithm scales to
// larger task counts and machine counts, while the Appendix ILP blows up —
// the paper's reason for preferring the greedy ("this ILP occasionally took
// a very long time to solve"). Also exercises the simplex and the fluid
// simulator so performance regressions in the substrates are visible.

#include <benchmark/benchmark.h>

#include "flowsim/sim.h"
#include "lp/simplex.h"
#include "measure/probe_scheduler.h"
#include "measure/view_cache.h"
#include "net/topology.h"
#include "packetsim/event_queue.h"
#include "packetsim/sink.h"
#include "packetsim/token_bucket.h"
#include "packetsim/udp_train.h"
#include "place/greedy.h"
#include "place/ilp.h"
#include "serve/service.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace choreo;

place::ClusterView random_view(Rng& rng, std::size_t machines) {
  place::ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j) view.rate_bps(i, j) = rng.uniform(3e8, 1.1e9);
    }
  }
  view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
  view.cores.assign(machines, 4.0);
  view.colocation_group.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) view.colocation_group[m] = static_cast<int>(m);
  return view;
}

place::Application random_app(Rng& rng, std::size_t tasks) {
  workload::GeneratorConfig cfg;
  cfg.min_tasks = tasks;
  cfg.max_tasks = tasks;
  cfg.max_cpu = 1.5;
  return workload::generate_app(rng, cfg);
}

void BM_GreedyPlacement(benchmark::State& state) {
  Rng rng(42);
  const auto machines = static_cast<std::size_t>(state.range(0));
  const auto tasks = static_cast<std::size_t>(state.range(1));
  const place::ClusterView view = random_view(rng, machines);
  const place::Application app = random_app(rng, tasks);
  place::ClusterState cluster(view);
  place::GreedyPlacer greedy(place::RateModel::Hose);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy.place(app, cluster));
  }
}
BENCHMARK(BM_GreedyPlacement)
    ->Args({10, 6})
    ->Args({10, 10})
    ->Args({20, 10})
    ->Args({40, 10})
    ->Args({40, 20})
    ->Args({200, 10})
    ->Args({500, 10});

// The pre-refactor Algorithm 1: full candidate scan with O(n) hose rate
// evaluations. Kept benchmarked next to the engine-backed placer so the
// gap (and any regression that erodes it) stays visible.
void BM_GreedyPlacementExhaustive(benchmark::State& state) {
  Rng rng(42);
  const auto machines = static_cast<std::size_t>(state.range(0));
  const auto tasks = static_cast<std::size_t>(state.range(1));
  const place::ClusterView view = random_view(rng, machines);
  const place::Application app = random_app(rng, tasks);
  place::ClusterState cluster(view);
  place::ExhaustiveGreedyPlacer greedy(place::RateModel::Hose);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy.place(app, cluster));
  }
}
BENCHMARK(BM_GreedyPlacementExhaustive)->Args({40, 10})->Args({200, 10});

// One measurement cycle's placement-plane cost at scale: swapping a fresh
// view into an occupied state (static index rebuild, residuals kept).
void BM_EngineUpdateView(benchmark::State& state) {
  Rng rng(42);
  const auto machines = static_cast<std::size_t>(state.range(0));
  const place::ClusterView view = random_view(rng, machines);
  place::ClusterState cluster(view);
  place::GreedyPlacer greedy(place::RateModel::Hose);
  const place::Application app = random_app(rng, 10);
  cluster.commit(app, greedy.place(app, cluster));
  for (auto _ : state) {
    // The production path (Choreo::measure_network) moves a freshly built
    // view in; keep the O(n^2) copy needed to repeat that outside the timer.
    state.PauseTiming();
    place::ClusterView fresh = view;
    state.ResumeTiming();
    cluster.update_view(std::move(fresh));
    benchmark::DoNotOptimize(cluster.free_cores(0));
  }
}
BENCHMARK(BM_EngineUpdateView)->Arg(50)->Arg(200)->Arg(500);

// Serving-plane arena costs: what a §2.4 hypothetical re-placement pays for
// a zero-occupancy scratch state...
void BM_EngineCloneUnoccupied(benchmark::State& state) {
  Rng rng(42);
  const auto machines = static_cast<std::size_t>(state.range(0));
  const place::ClusterView view = random_view(rng, machines);
  place::ClusterState cluster(view);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.clone_unoccupied());
  }
}
BENCHMARK(BM_EngineCloneUnoccupied)->Arg(100)->Arg(500);

// ...and what a serving-plane Scratch refresh pays for a full copy with the
// residual occupancy included (one per reader thread per published epoch).
void BM_EngineClone(benchmark::State& state) {
  Rng rng(42);
  const auto machines = static_cast<std::size_t>(state.range(0));
  const place::ClusterView view = random_view(rng, machines);
  place::ClusterState cluster(view);
  place::GreedyPlacer greedy(place::RateModel::Hose);
  const place::Application app = random_app(rng, 10);
  cluster.commit(app, greedy.place(app, cluster));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.clone());
  }
}
BENCHMARK(BM_EngineClone)->Arg(100)->Arg(500);

// The serving plane's writer path: clone the current snapshot's state, swap
// the refreshed view in, publish the next epoch. Readers keep serving the
// old snapshot throughout; this is the full measurement-cycle cost they
// never wait on.
void BM_SnapshotPublish(benchmark::State& state) {
  Rng rng(42);
  const auto machines = static_cast<std::size_t>(state.range(0));
  const place::ClusterView view = random_view(rng, machines);
  serve::PlacementService service(view, place::RateModel::Hose);
  for (auto _ : state) {
    state.PauseTiming();
    place::ClusterView fresh = view;  // the O(n^2) copy the producer hands in
    state.ResumeTiming();
    service.publish_view(std::move(fresh));
    benchmark::DoNotOptimize(service.epoch());
  }
}
BENCHMARK(BM_SnapshotPublish)->Arg(100)->Arg(500);

void BM_IlpPlacement(benchmark::State& state) {
  Rng rng(42);
  const auto machines = static_cast<std::size_t>(state.range(0));
  const auto tasks = static_cast<std::size_t>(state.range(1));
  const place::ClusterView view = random_view(rng, machines);
  const place::Application app = random_app(rng, tasks);
  place::ClusterState cluster(view);
  lp::IlpOptions opts;
  opts.max_nodes = 20000;
  place::IlpPlacer ilp(place::RateModel::Hose, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp.place(app, cluster));
  }
}
BENCHMARK(BM_IlpPlacement)->Args({3, 4})->Args({4, 4})->Args({4, 5})->Unit(benchmark::kMillisecond);

void BM_BruteForcePlacement(benchmark::State& state) {
  Rng rng(42);
  const auto machines = static_cast<std::size_t>(state.range(0));
  const auto tasks = static_cast<std::size_t>(state.range(1));
  const place::ClusterView view = random_view(rng, machines);
  const place::Application app = random_app(rng, tasks);
  place::ClusterState cluster(view);
  place::BruteForcePlacer brute(place::RateModel::Hose);
  for (auto _ : state) {
    benchmark::DoNotOptimize(brute.place(app, cluster));
  }
}
BENCHMARK(BM_BruteForcePlacement)->Args({4, 5})->Args({5, 6})->Args({5, 7})
    ->Unit(benchmark::kMillisecond);

// §4.1 measurement-plane hot path: edge-coloring the full n(n-1) ordered
// pair set into conflict-free rounds. This runs on every full sweep and
// must stay cheap out to production fleet sizes.
void BM_ProbeScheduleFullMatrix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pairs = measure::all_ordered_pairs(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure::schedule_probes(n, pairs));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_ProbeScheduleFullMatrix)->Arg(10)->Arg(50)->Arg(100)->Arg(200)->Complexity();

// Incremental refreshes schedule sparse subsets (the pairs a ViewCache
// flags), which is the common case in steady state.
void BM_ProbeScheduleSparseSubset(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(99);
  std::vector<measure::ProbePair> pairs;
  for (const measure::ProbePair& p : measure::all_ordered_pairs(n)) {
    if (rng.chance(0.05)) pairs.push_back(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure::schedule_probes(n, pairs));
  }
}
BENCHMARK(BM_ProbeScheduleSparseSubset)->Arg(50)->Arg(200);

// Refresh planning walks the whole cache each cycle; it must stay trivially
// cheap next to the probes it saves.
void BM_ViewCachePlanRefresh(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  measure::ViewCache cache(n);
  Rng rng(7);
  for (const measure::ProbePair& p : measure::all_ordered_pairs(n)) {
    cache.store(p.src, p.dst, rng.uniform(3e8, 1.1e9),
                static_cast<std::uint64_t>(rng.uniform_int(1, 20)));
  }
  measure::RefreshPolicy policy;
  policy.max_age_epochs = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.plan_refresh(21, policy));
  }
}
BENCHMARK(BM_ViewCachePlanRefresh)->Arg(50)->Arg(200);

void BM_SimplexSolve(benchmark::State& state) {
  Rng rng(7);
  const auto vars = static_cast<std::size_t>(state.range(0));
  lp::Model model;
  for (std::size_t i = 0; i < vars; ++i) model.add_variable(rng.uniform(-5, 5), 0.0, 10.0);
  for (std::size_t r = 0; r < vars; ++r) {
    std::vector<lp::Term> terms;
    for (std::size_t i = 0; i < vars; ++i) terms.push_back({i, rng.uniform(0.0, 3.0)});
    model.add_constraint(std::move(terms), lp::Sense::LessEq, rng.uniform(10.0, 50.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve_lp(model));
  }
}
BENCHMARK(BM_SimplexSolve)->Arg(10)->Arg(30)->Arg(60);

void BM_FluidSimTenFlows(benchmark::State& state) {
  net::TreeParams params;
  params.pods = 2;
  params.racks_per_pod = 2;
  params.hosts_per_rack = 4;
  const net::Topology topo = make_multi_rooted_tree(params);
  const auto hosts = topo.nodes_of_kind(net::NodeKind::Host);
  for (auto _ : state) {
    flowsim::Sim sim(topo);
    for (std::size_t f = 0; f < 10; ++f) {
      flowsim::FlowSpec spec;
      spec.src = hosts[f % hosts.size()];
      spec.dst = hosts[(f + 5) % hosts.size()];
      spec.bytes = 1e8;
      spec.flow_key = f;
      sim.add_flow(spec);
    }
    sim.run_to_completion();
    benchmark::DoNotOptimize(sim.makespan());
  }
}
BENCHMARK(BM_FluidSimTenFlows)->Unit(benchmark::kMillisecond);

void BM_PacketTrain(benchmark::State& state) {
  const auto burst_len = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    packetsim::EventQueue events;
    packetsim::RecordingSink sink;
    packetsim::TokenBucket bucket(events, 950e6, 8e3, &sink);
    packetsim::TrainParams params;
    params.bursts = 10;
    params.burst_length = burst_len;
    params.line_rate_bps = 4e9;
    packetsim::send_train(events, bucket, params, 1, 0.0);
    events.run();
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_PacketTrain)->Arg(200)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace

// §4.3: bottleneck location. "We ran an experiment on twenty pairs of
// connections between four distinct VMs, and twenty pairs of connections
// from the same source. We found that concurrent connections among four
// unique endpoints never interfered with each other, while concurrent
// connections from the same source always did." — i.e. the bottleneck is the
// first hop, and the constant sum of same-source connections indicates a
// hose model. We reproduce the experiment on both providers.

#include "bench_common.h"
#include "measure/bottleneck.h"

namespace {

void run_provider(const char* name, const choreo::cloud::ProviderProfile& profile,
                  std::uint64_t seed) {
  using namespace choreo;
  using namespace choreo::bench;

  header(std::string("Bottleneck location on ") + name);
  cloud::Cloud c(profile, seed);
  const auto vms = c.allocate_vms(12);
  const measure::BottleneckReport report =
      measure::locate_bottlenecks(c, vms, /*probes_per_kind=*/20, /*duration_s=*/5.0,
                                  /*seed=*/seed * 3 + 1, /*epoch=*/100);

  Table t({"probe kind", "probes", "interfering"});
  t.add_row({"same source (A->B, A->D)", fmt(report.same_source_probes, 0),
             fmt(report.same_source_interfering, 0)});
  t.add_row({"four distinct endpoints", fmt(report.disjoint_probes, 0),
             fmt(report.disjoint_interfering, 0)});
  std::cout << t.to_string();
  std::cout << "sum(joint same-source)/solo = " << fmt(report.mean_same_source_sum_ratio, 3)
            << " (1.0 = perfect hose)\n";

  check(report.same_source_interfering == report.same_source_probes,
        std::string(name) + ": same-source connections always interfere");
  check(report.disjoint_interfering == 0,
        std::string(name) + ": four-distinct-endpoint connections never interfere");
  check(report.source_bottleneck, std::string(name) + ": bottleneck is the first hop");
  check(report.hose_model, std::string(name) + ": hose-model rate limiting detected");
}

}  // namespace

int main() {
  run_provider("EC2", choreo::cloud::ec2_2013(), 11);
  run_provider("Rackspace", choreo::cloud::rackspace(), 13);
  return choreo::bench::finish();
}

// Fig 6: packet-train accuracy vs burst length and burst count, on EC2 and
// Rackspace (P = 1472 bytes, delta = 1 ms), scored against 10-second netperf
// ground truth. The paper's findings:
//   * EC2 (shallow burst allowance): consistently low error across all
//     configurations; 10 bursts x 200 packets ~ 9% error;
//   * Rackspace (deep, credit-style allowance): large error until the burst
//     length reaches ~2000 packets; 10 x 2000 ~ 4% error.

#include "bench_common.h"
#include "measure/calibration.h"

namespace {

std::vector<choreo::measure::CalibrationPoint> sweep(
    const choreo::cloud::ProviderProfile& profile, std::uint64_t seed) {
  using namespace choreo;
  cloud::Cloud c(profile, seed);
  const auto vms = c.allocate_vms(10);
  measure::CalibrationConfig config;
  config.burst_counts = {10, 20, 50};
  config.burst_lengths = {50, 200, 500, 1000, 2000, 4000};
  config.base.packet_bytes = 1472;
  config.base.inter_burst_gap_s = 1e-3;
  config.max_paths = 12;
  config.netperf_duration_s = 10.0;
  return measure::calibrate_trains(c, vms, config, 1);
}

void print_sweep(const std::vector<choreo::measure::CalibrationPoint>& points) {
  using namespace choreo;
  Table t({"bursts", "burst len", "mean err", "median err", "train time (s)"});
  for (const auto& p : points) {
    t.add_row({fmt(p.bursts, 0), fmt(p.burst_length, 0), fmt_pct(p.mean_rel_error),
               fmt_pct(p.median_rel_error), fmt(p.train_duration_s, 2)});
  }
  std::cout << t.to_string();
}

double error_at(const std::vector<choreo::measure::CalibrationPoint>& points,
                std::uint32_t bursts, std::uint32_t len) {
  for (const auto& p : points) {
    if (p.bursts == bursts && p.burst_length == len) return p.mean_rel_error;
  }
  return -1.0;
}

}  // namespace

int main() {
  using namespace choreo;
  using namespace choreo::bench;

  header("Fig 6(a): packet-train error on EC2");
  const auto ec2 = sweep(cloud::ec2_2013(), 1234);
  print_sweep(ec2);
  const double ec2_10x200 = error_at(ec2, 10, 200);
  std::cout << "10 x 200 config: " << fmt_pct(ec2_10x200) << " (paper: ~9%)\n";
  check(ec2_10x200 > 0.0 && ec2_10x200 < 0.18, "EC2: 10x200 trains within ~9-15% error");
  double ec2_worst = 0.0;
  for (const auto& p : ec2) ec2_worst = std::max(ec2_worst, p.mean_rel_error);
  check(ec2_worst < 0.35, "EC2: consistently low error over ALL configurations");

  header("Fig 6(b): packet-train error on Rackspace");
  const auto rs = sweep(cloud::rackspace(), 4321);
  print_sweep(rs);
  const double rs_10x200 = error_at(rs, 10, 200);
  const double rs_10x2000 = error_at(rs, 10, 2000);
  std::cout << "10 x 200: " << fmt_pct(rs_10x200) << ", 10 x 2000: " << fmt_pct(rs_10x2000)
            << " (paper: error collapses by 2000 packets, ~4%)\n";
  check(rs_10x200 > 0.35, "Rackspace: short bursts badly overestimate (deep bucket)");
  check(rs_10x2000 < 0.12, "Rackspace: 10x2000 bursts within ~4-10% error");
  check(rs_10x200 > 3.0 * rs_10x2000,
        "Rackspace: error improves dramatically once burst length reaches 2000");

  // The calibration phase's recommendation should differ per provider, as
  // §4.1 prescribes ("the best packet train parameters for EC2 and
  // Rackspace differ").
  packetsim::TrainParams base;
  const auto rec_ec2 = measure::recommend_train(ec2, base, 0.15);
  const auto rec_rs = measure::recommend_train(rs, base, 0.15);
  std::cout << "recommended: EC2 " << rec_ec2.bursts << "x" << rec_ec2.burst_length
            << ", Rackspace " << rec_rs.bursts << "x" << rec_rs.burst_length << "\n";
  check(rec_rs.burst_length > rec_ec2.burst_length,
        "calibration recommends longer bursts on Rackspace than on EC2");
  return finish();
}

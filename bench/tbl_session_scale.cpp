// Beyond-paper: scaling the discrete-event control plane. Two claims the
// session-runtime refactor makes, each enforced here:
//
//   1. Constant-memory streaming — a multi-week diurnal trace flows through
//      core::SessionRuntime via workload::TraceArrivalStream without being
//      materialized: the runtime's live state (event queue + in-flight +
//      waiting apps) is bounded by the fleet, not the trace length, so a
//      7-day session peaks at the same footprint as a 2-day one.
//
//   2. Near-linear multi-tenant throughput — N tenants on disjoint VM
//      slices of one cloud, interleaved on the shared clock, process events
//      at a per-event cost that stays flat as tenants are added (each
//      tenant's placement state is its own; only the clock and the epoch
//      counter are shared).
//
//   3. Deterministic thread scaling — the same tenant sweep routed through
//      the sharded control plane (core::ShardedSession) at --threads
//      1/2/4/8 produces a merged log bit-identical to the single-threaded
//      oracle at every thread count, while events/sec grows with threads
//      (near-linear when the host has the cores; asserted only when it
//      does).
//
// `--smoke` runs the reduced CI sweep (still covering a full 7-day trace
// and a threads={1,2} determinism check); the exit code is non-zero on any
// [FAIL] line.

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/sharded.h"
#include "workload/stream.h"

namespace {

using namespace choreo;

core::ControllerConfig session_config() {
  core::ControllerConfig config;
  // Ground-truth view: this bench times the control plane, not the
  // measurement plane (tbl_measurement_overhead owns that story).
  config.choreo.use_measured_view = false;
  config.choreo.reevaluate_period_s = 1800.0;
  return config;
}

struct StreamRun {
  std::uint64_t arrivals = 0;
  std::size_t peak_state = 0;  ///< peak events + in-flight + waiting
  double wall_ms = 0.0;
  std::uint64_t events = 0;
};

StreamRun run_streaming_session(double days, double apps_per_day,
                                std::size_t fleet, std::uint64_t seed) {
  cloud::Cloud cloud(cloud::ec2_2013(), seed);
  const auto vms = cloud.allocate_vms(fleet);
  workload::TraceConfig trace;
  trace.duration_hours = days * 24.0;
  trace.apps_per_day = apps_per_day;
  trace.gen.min_tasks = 3;
  trace.gen.max_tasks = 6;
  trace.gen.max_cpu = 1.5;
  workload::TraceArrivalStream stream(seed * 13 + 1, trace);

  core::RuntimeOptions options;
  options.record_events = false;
  options.record_outcomes = false;
  core::SessionRuntime runtime(cloud, vms, session_config(), std::move(options));

  const auto t0 = std::chrono::steady_clock::now();
  const core::SessionLog log = runtime.run(stream);
  const auto t1 = std::chrono::steady_clock::now();

  StreamRun out;
  out.arrivals = runtime.stats().arrivals;
  out.peak_state = runtime.stats().peak_queue + runtime.stats().peak_in_flight +
                   runtime.stats().peak_waiting;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.events = runtime.stats().events_processed;
  bench::check(log.events.empty() && log.apps.empty(),
               "streaming mode materializes no per-event or per-app state");
  return out;
}

struct TenantRun {
  std::uint64_t events = 0;
  std::uint64_t apps = 0;
  double wall_ms = 0.0;
};

/// Tenant specs for a sweep: identical for every run with the same
/// arguments, so the oracle and every sharded configuration replay the
/// exact same workload on the exact same cloud.
std::vector<core::TenantSpec> make_tenants(
    cloud::Cloud& cloud, std::size_t tenants, std::size_t fleet,
    double mean_gap_s, double duration_s, std::uint64_t seed,
    std::vector<std::unique_ptr<workload::GeneratorArrivalStream>>& streams) {
  std::vector<core::TenantSpec> specs;
  for (std::size_t i = 0; i < tenants; ++i) {
    workload::GeneratorArrivalStream::Config cfg;
    cfg.gen.min_tasks = 3;
    cfg.gen.max_tasks = 6;
    cfg.gen.max_cpu = 1.5;
    cfg.mean_gap_s = mean_gap_s;
    cfg.duration_s = duration_s;
    streams.push_back(std::make_unique<workload::GeneratorArrivalStream>(
        seed * 100 + i, cfg));
    core::TenantSpec spec;
    spec.name = "tenant" + std::to_string(i);
    spec.vms = cloud.allocate_vms(fleet);
    spec.config = session_config();
    spec.stream = streams.back().get();
    specs.push_back(std::move(spec));
  }
  return specs;
}

TenantRun run_tenant_sweep(std::size_t tenants, std::size_t fleet,
                           double mean_gap_s, double duration_s,
                           std::uint64_t seed) {
  cloud::Cloud cloud(cloud::ec2_2013(), seed);
  std::vector<std::unique_ptr<workload::GeneratorArrivalStream>> streams;
  std::vector<core::TenantSpec> specs =
      make_tenants(cloud, tenants, fleet, mean_gap_s, duration_s, seed, streams);
  core::MultiTenantOptions options;
  options.record_events = false;
  options.record_outcomes = false;
  core::MultiTenantSession session(cloud, std::move(specs), options);

  const auto t0 = std::chrono::steady_clock::now();
  const core::MultiTenantLog result = session.run();
  const auto t1 = std::chrono::steady_clock::now();

  TenantRun out;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (const core::SessionRuntime::Stats& s : session.tenant_stats()) {
    out.events += s.events_processed;
    out.apps += s.arrivals;
  }
  bench::check(result.aggregate.total_runtime_s > 0.0,
               "multi-tenant aggregate accounting is populated");
  return out;
}

// ---- sharded thread scaling -------------------------------------------------

struct ThreadRun {
  core::MultiTenantLog log;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
};

/// One full tenant sweep with recording on (the merged logs are what the
/// determinism check compares). threads == 0 runs the single-threaded
/// MultiTenantSession oracle; anything else the sharded control plane.
ThreadRun run_thread_sweep(std::size_t tenants, std::size_t fleet,
                           double mean_gap_s, double duration_s,
                           std::uint64_t seed, unsigned threads) {
  cloud::Cloud cloud(cloud::ec2_2013(), seed);
  std::vector<std::unique_ptr<workload::GeneratorArrivalStream>> streams;
  std::vector<core::TenantSpec> specs =
      make_tenants(cloud, tenants, fleet, mean_gap_s, duration_s, seed, streams);

  ThreadRun out;
  const auto t0 = std::chrono::steady_clock::now();
  if (threads == 0) {
    core::MultiTenantSession session(cloud, std::move(specs));
    out.log = session.run();
    for (const auto& s : session.tenant_stats()) out.events += s.events_processed;
  } else {
    core::ShardedOptions options;
    options.threads = threads;  // shards default to one per thread
    core::ShardedSession session(cloud, std::move(specs), options);
    out.log = session.run();
    for (const auto& s : session.tenant_stats()) out.events += s.events_processed;
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

/// Full merged-log equality: events, outcomes, placements, accounting
/// doubles — bitwise, no tolerance. This is the bench-side restatement of
/// test_sharded_differential's pin.
bool logs_equal(const core::MultiTenantLog& a, const core::MultiTenantLog& b) {
  const auto session_equal = [](const core::SessionLog& x, const core::SessionLog& y) {
    if (x.events.size() != y.events.size() || x.apps.size() != y.apps.size()) {
      return false;
    }
    for (std::size_t i = 0; i < x.events.size(); ++i) {
      const core::SessionEvent& e = x.events[i];
      const core::SessionEvent& f = y.events[i];
      if (e.time_s != f.time_s || e.kind != f.kind || e.app != f.app ||
          e.tenant != f.tenant || e.tasks_migrated != f.tasks_migrated ||
          e.adopted != f.adopted) {
        return false;
      }
    }
    for (std::size_t i = 0; i < x.apps.size(); ++i) {
      const core::AppOutcome& p = x.apps[i];
      const core::AppOutcome& q = y.apps[i];
      if (p.name != q.name || p.arrival_s != q.arrival_s ||
          p.placed_s != q.placed_s || p.finished_s != q.finished_s ||
          p.rejected != q.rejected ||
          p.placement.machine_of_task != q.placement.machine_of_task) {
        return false;
      }
    }
    return x.reevaluations == y.reevaluations &&
           x.tasks_migrated == y.tasks_migrated && x.rejected == y.rejected &&
           x.total_runtime_s == y.total_runtime_s &&
           x.measurement_wall_s == y.measurement_wall_s &&
           x.pairs_probed == y.pairs_probed;
  };
  if (a.tenants.size() != b.tenants.size()) return false;
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    if (!session_equal(a.tenants[i], b.tenants[i])) return false;
  }
  return session_equal(a.aggregate, b.aggregate);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace choreo::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // ---- constant-memory streaming ------------------------------------------
  const double apps_per_day = smoke ? 12.0 : 48.0;
  const std::size_t stream_fleet = smoke ? 6 : 8;
  const std::vector<double> days = smoke ? std::vector<double>{2.0, 7.0}
                                         : std::vector<double>{2.0, 7.0, 21.0};
  header("Session runtime: constant-memory trace streaming" +
         std::string(smoke ? " [smoke]" : ""));
  Table st({"trace days", "arrivals", "events", "peak live state", "wall (ms)"});
  std::vector<StreamRun> stream_runs;
  for (double d : days) {
    stream_runs.push_back(run_streaming_session(d, apps_per_day, stream_fleet, 42));
    const StreamRun& r = stream_runs.back();
    st.add_row({fmt(d, 0), std::to_string(r.arrivals), std::to_string(r.events),
                std::to_string(r.peak_state), fmt(r.wall_ms, 1)});
  }
  std::cout << st.to_string();

  const StreamRun& shortest = stream_runs.front();
  const StreamRun& longest = stream_runs.back();
  check(longest.arrivals > shortest.arrivals * 2,
        "longer traces stream proportionally more applications");
  check(longest.peak_state <= shortest.peak_state * 2 + 16,
        "peak live state is bounded by the fleet, not the trace length "
        "(constant-memory streaming)");
  check(days.back() >= 7.0 && longest.arrivals > 0,
        "a >= 1-week trace streamed end to end");

  // ---- multi-tenant scaling ----------------------------------------------
  const std::vector<std::size_t> tenant_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  const std::vector<std::size_t> fleets =
      smoke ? std::vector<std::size_t>{6} : std::vector<std::size_t>{8, 16};
  const double duration_s = smoke ? 1500.0 : 4800.0;
  header("Session runtime: tenants x fleet x arrival rate" +
         std::string(smoke ? " [smoke]" : ""));
  Table tt({"tenants", "fleet/tenant", "mean gap (s)", "apps", "events",
            "wall (ms)", "us/event"});
  double per_event_1 = 0.0, per_event_max = 0.0;
  for (std::size_t fleet : fleets) {
    for (std::size_t tenants : tenant_counts) {
      for (double gap : {30.0}) {
        const TenantRun r = run_tenant_sweep(tenants, fleet, gap, duration_s, 7);
        const double per_event =
            r.events > 0 ? r.wall_ms * 1000.0 / static_cast<double>(r.events) : 0.0;
        tt.add_row({std::to_string(tenants), std::to_string(fleet), fmt(gap, 0),
                    std::to_string(r.apps), std::to_string(r.events),
                    fmt(r.wall_ms, 1), fmt(per_event, 1)});
        if (fleet == fleets.front() && tenants == tenant_counts.front()) {
          per_event_1 = per_event;
        }
        if (fleet == fleets.front() && tenants == tenant_counts.back()) {
          per_event_max = per_event;
        }
      }
    }
  }
  std::cout << tt.to_string();
  check(per_event_1 > 0.0 && per_event_max > 0.0, "tenant sweeps processed events");
  check(per_event_max <= per_event_1 * 3.0,
        "per-event cost stays near-flat as tenants are added "
        "(near-linear event-throughput growth)");

  // ---- sharded control plane: --threads sweep -----------------------------
  // The oracle (MultiTenantSession) runs once; every sharded configuration
  // must reproduce its merged log bit-identically while events/sec scales
  // with threads. The speedup assertion only fires on hosts with the cores
  // to show it — determinism is asserted everywhere, unconditionally.
  const std::size_t shard_tenants = smoke ? 8 : 100;
  const std::size_t shard_fleet = smoke ? 4 : 6;
  const double shard_duration_s = smoke ? 1200.0 : 1800.0;
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};
  header("Sharded control plane: --threads sweep @ " +
         std::to_string(shard_tenants) + " tenants" +
         std::string(smoke ? " [smoke]" : ""));

  const ThreadRun oracle =
      run_thread_sweep(shard_tenants, shard_fleet, 30.0, shard_duration_s, 7, 0);
  Table sh({"threads", "events", "wall (ms)", "events/sec", "speedup", "identical"});
  const double oracle_eps =
      oracle.wall_ms > 0.0
          ? static_cast<double>(oracle.events) * 1000.0 / oracle.wall_ms
          : 0.0;
  sh.add_row({"oracle", std::to_string(oracle.events), fmt(oracle.wall_ms, 1),
              fmt(oracle_eps, 0), "1.00", "-"});
  double wall_threads_1 = 0.0, wall_threads_max = 0.0;
  for (unsigned threads : thread_counts) {
    const ThreadRun r = run_thread_sweep(shard_tenants, shard_fleet, 30.0,
                                         shard_duration_s, 7, threads);
    const bool identical = logs_equal(oracle.log, r.log);
    check(identical, "threads=" + std::to_string(threads) +
                         " merged log is bit-identical to the oracle");
    check(r.events == oracle.events,
          "threads=" + std::to_string(threads) + " processed the same events");
    const double eps =
        r.wall_ms > 0.0 ? static_cast<double>(r.events) * 1000.0 / r.wall_ms : 0.0;
    const double speedup = r.wall_ms > 0.0 ? oracle.wall_ms / r.wall_ms : 0.0;
    sh.add_row({std::to_string(threads), std::to_string(r.events),
                fmt(r.wall_ms, 1), fmt(eps, 0), fmt(speedup, 2),
                identical ? "yes" : "NO"});
    if (threads == 1) wall_threads_1 = r.wall_ms;
    if (threads == thread_counts.back()) wall_threads_max = r.wall_ms;
  }
  std::cout << sh.to_string();

  const unsigned cores = std::thread::hardware_concurrency();
  if (!smoke && cores >= 8 && wall_threads_max > 0.0) {
    check(wall_threads_1 / wall_threads_max >= 3.0,
          "threads=8 is >= 3x faster than threads=1 at 100 tenants");
  } else {
    std::cout << "[skip] speedup assertion (cores=" << cores
              << (smoke ? ", smoke mode" : "") << ")\n";
  }

  return finish();
}

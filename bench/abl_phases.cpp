// Ablation (§7.2 future work): "Choreo could capture [time variation] by
// modeling applications as a time series of traffic matrices ... A straw-man
// approach is to determine the 'major' phases of an application's bandwidth
// usage, and use Choreo as-is at the beginning of each phase."
//
// We generate multi-phase applications whose hotspots move between phases,
// and compare (a) one aggregate placement (what base Choreo does — "Choreo
// loses information about how an application changes over time") against
// (b) the per-phase straw-man with cost-gated migration, executing each
// phase's transfers on the emulated cloud sequentially.

#include "bench_common.h"
#include "measure/throughput_matrix.h"
#include "place/phases.h"
#include "place/placer.h"
#include "util/rng.h"
#include "workload/phased.h"

namespace {

using namespace choreo;

/// Executes a phased plan: phases run back to back; migrations between
/// phases add downtime. Returns total wall time.
double execute_plan(cloud::Cloud& c, const std::vector<cloud::VmId>& vms,
                    const place::PhasedApplication& app, const place::PhasedPlan& plan,
                    double migration_cost_per_task_s, std::uint64_t epoch) {
  double total = 0.0;
  for (std::size_t k = 0; k < app.phase_count(); ++k) {
    if (k > 0 && k - 1 < plan.migrations.size()) {
      total += static_cast<double>(plan.migrations[k - 1]) * migration_cost_per_task_s;
    }
    const place::Application phase = app.phase(k);
    std::vector<cloud::Cloud::Transfer> transfers;
    for (std::size_t i = 0; i < phase.task_count(); ++i) {
      for (std::size_t j = 0; j < phase.task_count(); ++j) {
        const double b = phase.traffic_bytes(i, j);
        if (b <= 0.0) continue;
        transfers.push_back({vms[plan.placements[k].machine_of_task[i]],
                             vms[plan.placements[k].machine_of_task[j]], b, 0.0});
      }
    }
    if (!transfers.empty()) {
      total += c.execute(transfers, epoch + k).makespan_s;
    }
  }
  return total;
}

}  // namespace

int main() {
  using namespace choreo;
  using namespace choreo::bench;

  header("Ablation: per-phase placement vs aggregate matrix (Section 7.2 straw-man)");

  constexpr std::size_t kRuns = 30;
  constexpr double kMigrationCost = 0.5;  // seconds per moved task
  Rng rng(71);

  std::vector<double> speedups;
  std::size_t phased_wins = 0, done = 0, attempts = 0;
  std::size_t total_migrations = 0;
  while (done < kRuns && attempts < kRuns * 10) {
    ++attempts;
    cloud::Cloud c(cloud::ec2_2013(), 8100 + attempts);
    const auto vms = c.allocate_vms(10);

    workload::PhasedConfig cfg;
    cfg.min_phases = 2;
    cfg.max_phases = 4;
    cfg.gen.min_tasks = 6;
    cfg.gen.max_tasks = 10;
    cfg.gen.max_cpu = 2.0;
    const place::PhasedApplication app = workload::generate_phased_app(rng, cfg);
    double cores = 0.0;
    for (double cd : app.cpu_demand) cores += cd;
    if (cores > 0.85 * 40.0) continue;

    const place::ClusterView view = measure::true_cluster_view(c, vms, attempts);
    place::ClusterState state(view);
    try {
      const place::PhasedPlan phased =
          place::plan_phases(app, state, place::RateModel::Hose, kMigrationCost);
      const place::PhasedPlan aggregate =
          place::plan_aggregate(app, state, place::RateModel::Hose);
      const double t_phased =
          execute_plan(c, vms, app, phased, kMigrationCost, 100 + attempts);
      const double t_aggregate =
          execute_plan(c, vms, app, aggregate, kMigrationCost, 100 + attempts);
      if (t_phased <= 0.0 || t_aggregate <= 0.0) continue;
      speedups.push_back(relative_speedup(t_phased, t_aggregate));
      if (t_phased < t_aggregate) ++phased_wins;
      for (std::size_t m : phased.migrations) total_migrations += m;
      ++done;
    } catch (const place::PlacementError&) {
      continue;
    }
  }

  const SpeedupStats s = speedup_stats(speedups);
  Table t({"metric", "value"});
  t.add_row({"runs", fmt(done, 0)});
  t.add_row({"phased plan wins", fmt(phased_wins, 0)});
  t.add_row({"mean speed-up of per-phase vs aggregate", fmt(s.mean_pct, 1) + "%"});
  t.add_row({"median speed-up", fmt(s.median_pct, 1) + "%"});
  t.add_row({"max speed-up", fmt(s.max_pct, 1) + "%"});
  t.add_row({"tasks migrated across all runs", fmt(total_migrations, 0)});
  std::cout << t.to_string();

  check(phased_wins > done / 2, "per-phase placement beats the aggregate in most runs");
  check(s.mean_pct > 0.0, "phase awareness recovers completion time on average");
  check(total_migrations > 0, "the straw-man actually migrates between phases");
  return finish();
}

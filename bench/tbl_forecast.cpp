// Forecast-plane headline: under a cross-traffic regime change mid-session,
// predictability-driven refresh (forecast::PredictivePolicy) must probe
// FEWER pairs than the fixed stale/volatile policy at equal-or-better
// placement-rate error — the rates that drive greedy placement stay at
// least as close to ground truth while the probe budget shrinks.
//
// The regime change is emulated with twin clouds sharing one seed (identical
// topology shape, VM allocation, and hose rates — only the cross traffic
// differs): epochs before the shift measure against the calm cloud, epochs
// after it against a congested one — 4x the background flows on a fabric
// whose residual capacity is one fifth (the derated links stand in for the
// un-modeled other-tenant load a real congestion episode adds). The
// predictive policy must notice via its CUSUM change-point channel and
// re-ground itself, while spending a fraction of the fixed policy's probes
// in steady state.
//
// `--smoke` runs a reduced sweep for CI; the exit code is non-zero on any
// failed check.

#include <cstring>
#include <memory>

#include "bench_common.h"
#include "forecast/predictive_policy.h"
#include "measure/throughput_matrix.h"
#include "place/greedy.h"
#include "workload/generator.h"

namespace {

using namespace choreo;

struct EpochScore {
  std::size_t probes = 0;
  double placement_rate_err = 0.0;  ///< mean |view - truth| / truth on placed paths
  std::size_t changepoints = 0;
  bool full_sweep = false;
};

struct RunResult {
  std::vector<EpochScore> epochs;
  std::size_t total_probes = 0;
  double mean_err = 0.0;
  double post_shift_err = 0.0;  ///< mean over the epochs after the regime change
  std::size_t changepoint_probes = 0;
  std::size_t full_sweeps = 0;
};

/// One measurement+placement session over the regime change, planning either
/// with the fixed policy (predictive == nullptr) or the forecast plane.
RunResult run_session(cloud::Cloud& calm, cloud::Cloud& busy,
                      const std::vector<cloud::VmId>& vms,
                      const measure::MeasurementPlan& mplan,
                      const measure::RefreshPolicy& fixed,
                      forecast::PredictivePolicy* predictive,
                      const place::Application& app, std::size_t total_epochs,
                      std::size_t shift_epoch) {
  RunResult result;
  measure::ViewCache cache(vms.size());
  std::vector<double> errs, post_errs;
  for (std::uint64_t e = 1; e <= total_epochs; ++e) {
    cloud::Cloud& active = e <= shift_epoch ? calm : busy;
    measure::RefreshPlan plan =
        predictive ? predictive->plan_refresh(cache, e, fixed)
                   : cache.plan_refresh(e, fixed);
    EpochScore score;
    score.probes = plan.pairs.size();
    measure::RefreshResult refreshed = measure::refresh_cluster_view_with_plan(
        active, vms, mplan, e, cache, std::move(plan));
    if (predictive) {
      for (const measure::ProbePair& p : refreshed.plan.pairs) {
        predictive->observe(p.src, p.dst, cache.at(p.src, p.dst).rate_bps, e);
      }
      predictive->apply_to_view(refreshed.view, cache, refreshed.plan, e);
      score.changepoints = predictive->last_plan().changepoints;
      score.full_sweep = predictive->last_plan().full_sweep;
    }

    // Place the probe application on the view this policy believes in, then
    // score the believed rates of the chosen paths against ground truth.
    place::ClusterState state(refreshed.view);
    place::GreedyPlacer greedy(place::RateModel::Hose);
    const place::Placement placement = greedy.place(app, state);
    double err_sum = 0.0;
    std::size_t paths = 0;
    place::for_each_placed_transfer(
        app, placement, [&](std::size_t m, std::size_t n, double) {
          const double truth = active.true_path_rate_bps(vms[m], vms[n], e);
          if (truth <= 0.0) return;
          err_sum += std::abs(refreshed.view.rate_bps(m, n) - truth) / truth;
          ++paths;
        });
    score.placement_rate_err = paths > 0 ? err_sum / static_cast<double>(paths) : 0.0;

    result.total_probes += score.probes;
    result.changepoint_probes += score.changepoints;
    if (score.full_sweep) ++result.full_sweeps;
    errs.push_back(score.placement_rate_err);
    if (e > shift_epoch) post_errs.push_back(score.placement_rate_err);
    result.epochs.push_back(score);
  }
  result.mean_err = mean(errs);
  result.post_shift_err = post_errs.empty() ? 0.0 : mean(post_errs);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace choreo;
  using namespace choreo::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::size_t n_vms = smoke ? 8 : 10;
  const std::size_t total_epochs = smoke ? 28 : 32;
  const std::size_t shift_epoch = total_epochs / 2;
  const std::uint64_t seed = 2024;

  header("Forecast plane under drift: fixed vs predictive refresh (" +
         std::to_string(n_vms) + " VMs, regime change at epoch " +
         std::to_string(shift_epoch) + (smoke ? ") [smoke]" : ")"));

  // Twin clouds, one seed: identical fleets, different background tenants.
  const cloud::ProviderProfile calm_profile = cloud::ec2_2013();
  cloud::ProviderProfile busy_profile = cloud::ec2_2013();
  busy_profile.bg_flow_count = calm_profile.bg_flow_count * 4;
  busy_profile.bg_core_bias = 0.9;
  busy_profile.tree.region.host_link_bps *= 0.2;
  busy_profile.tree.region.agg_link_bps *= 0.2;
  busy_profile.tree.super_link_bps *= 0.2;
  cloud::Cloud calm(calm_profile, seed);
  cloud::Cloud busy(busy_profile, seed);
  const auto vms = calm.allocate_vms(n_vms);
  const auto vms_busy = busy.allocate_vms(n_vms);
  bool twins = vms.size() == vms_busy.size();
  for (std::size_t i = 0; twins && i < vms.size(); ++i) {
    twins = vms[i] == vms_busy[i] && calm.vm_host(vms[i]) == busy.vm_host(vms_busy[i]);
  }
  check(twins, "twin clouds allocate identical fleets (regime change is background-only)");

  measure::MeasurementPlan mplan;
  mplan.train.bursts = smoke ? 5 : 8;
  mplan.train.burst_length = smoke ? 100 : 150;

  // Fixed policy: the aggressive re-probing it needs to track drift at all.
  measure::RefreshPolicy fixed;
  fixed.max_age_epochs = 4;
  fixed.volatility_threshold = 0.5;

  // Predictive policy: staleness net relaxed (forecasts carry the steady
  // state), a 10% probe budget for the worst-predicted pairs, CUSUM +
  // regime alarm for the shift.
  measure::RefreshPolicy predictive_net = fixed;
  predictive_net.max_age_epochs = 1000;
  predictive_net.refresh_volatile = false;
  forecast::ForecastOptions opts;
  opts.enabled = true;
  // One observation is enough to coast on (the forecast degenerates to the
  // cached last value, exactly what the fixed policy trusts too); unscored
  // pairs rank as maximally unpredictable, so the budget spreads the
  // warm-up over the first cycles instead of paying a second full sweep.
  opts.min_observations = 1;
  opts.probe_budget_fraction = 0.15;
  opts.cusum.slack = 0.10;
  opts.cusum.threshold = 0.35;
  opts.changepoint_baseline_alpha = 0.15;
  opts.changepoint_sweep_fraction = 0.4;
  forecast::PredictivePolicy policy(opts);

  // The probe application: dense enough to stress many paths, CPU-heavy
  // enough that tasks must spread across machines.
  Rng app_rng(seed * 13 + 1);
  workload::GeneratorConfig gen;
  gen.min_tasks = 8;
  gen.max_tasks = 8;
  gen.min_cpu = 2.0;
  gen.max_cpu = 4.0;
  gen.pattern_weights = {0.0, 0.0, 0.0, 0.0, 1.0};  // uniform all-to-all
  const place::Application app = workload::generate_app(app_rng, gen);

  const RunResult fixed_run = run_session(calm, busy, vms, mplan, fixed,
                                          /*predictive=*/nullptr, app, total_epochs,
                                          shift_epoch);
  const RunResult pred_run = run_session(calm, busy, vms_busy, mplan, predictive_net,
                                         &policy, app, total_epochs, shift_epoch);

  Table t({"epoch", "fixed probes", "pred probes", "fixed rate err", "pred rate err",
           "changepoints"});
  for (std::size_t e = 0; e < total_epochs; ++e) {
    t.add_row({std::to_string(e + 1) + (e + 1 == shift_epoch + 1 ? " <- shift" : ""),
               std::to_string(fixed_run.epochs[e].probes),
               std::to_string(pred_run.epochs[e].probes),
               fmt_pct(fixed_run.epochs[e].placement_rate_err),
               fmt_pct(pred_run.epochs[e].placement_rate_err),
               std::to_string(pred_run.epochs[e].changepoints) +
                   (pred_run.epochs[e].full_sweep ? " +sweep" : "")});
  }
  std::cout << t.to_string();

  Table s({"policy", "total probes", "mean rate err", "post-shift rate err"});
  s.add_row({"fixed stale/volatile", std::to_string(fixed_run.total_probes),
             fmt_pct(fixed_run.mean_err), fmt_pct(fixed_run.post_shift_err)});
  s.add_row({"predictive", std::to_string(pred_run.total_probes),
             fmt_pct(pred_run.mean_err), fmt_pct(pred_run.post_shift_err)});
  std::cout << s.to_string();

  // The acceptance criteria: fewer probes, equal-or-better placement-rate
  // error (5% relative slack for probe noise), and the shift was actually
  // detected rather than coasted through.
  check(pred_run.total_probes < fixed_run.total_probes,
        "predictive policy probes fewer pairs over the session");
  check(static_cast<double>(pred_run.total_probes) <=
            0.85 * static_cast<double>(fixed_run.total_probes),
        "probe saving is substantial (>= 15%)");
  check(pred_run.mean_err <= fixed_run.mean_err * 1.05,
        "placement-rate error no worse than the fixed policy (within 5%)");
  // The post-shift window is the noisiest stretch (the congested regime's
  // background varies epoch to epoch), so its tolerance sits above that
  // noise floor; the whole-session gate above is the binding one.
  check(pred_run.post_shift_err <= fixed_run.post_shift_err * 1.10,
        "post-shift error recovers to the fixed policy's level (within 10%)");
  check(pred_run.changepoint_probes > 0 || pred_run.full_sweeps > 0,
        "the regime change was detected (CUSUM probes or a full sweep fired)");
  return finish();
}

// Fig 9 + §5: greedy vs optimal placement. Two parts:
//   1. the worked Fig 9 counter-example, where the greedy algorithm's
//      first-fit choice of the rate-10 path forces a transfer onto the
//      rate-1 path while the optimal placement avoids it;
//   2. the paper's quantitative claim: "We compared our greedy algorithm to
//      the optimal algorithm on 111 different applications, and found that
//      the median completion time with the greedy algorithm was only 13%
//      more than the completion time with the optimal algorithm."

#include "bench_common.h"
#include "place/greedy.h"
#include "place/ilp.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace choreo;
using units::mbps;

place::ClusterView fig9_view() {
  // Machines: X=0, A=1, B=2, M=3, N=4. The greedy grabs the rate-10 X-A path
  // for the heaviest pair, stranding J2 on A whose only remaining egress is
  // the rate-1 A-N path; the optimum uses the rate-9 X-B path instead and
  // everything stays fast (the Fig 9 mechanism).
  place::ClusterView view;
  const std::size_t M = 5;
  view.rate_bps = DoubleMatrix(M, M, mbps(0.2));
  for (std::size_t i = 0; i < M; ++i) view.rate_bps(i, i) = 0.0;
  auto set_pair = [&](std::size_t a, std::size_t b, double rate) {
    view.rate_bps(a, b) = rate;
    view.rate_bps(b, a) = rate;
  };
  set_pair(0, 1, mbps(10));  // X-A
  set_pair(0, 2, mbps(9));   // X-B
  set_pair(2, 3, mbps(8));   // B-M
  set_pair(1, 4, mbps(1));   // A-N
  view.cross_traffic = DoubleMatrix(M, M, 0.0);
  view.cores.assign(M, 1.0);  // one task per machine: co-location impossible
  view.colocation_group = {0, 1, 2, 3, 4};
  return view;
}

place::Application fig9_app() {
  place::Application app;
  app.name = "fig9";
  app.cpu_demand = {1, 1, 1, 1};  // J1..J4
  app.traffic_bytes = DoubleMatrix(4, 4, 0.0);
  app.traffic_bytes(0, 1) = units::megabytes(100);  // J1->J2
  app.traffic_bytes(0, 2) = units::megabytes(50);   // J1->J3
  app.traffic_bytes(1, 3) = units::megabytes(50);   // J2->J4
  return app;
}

}  // namespace

int main() {
  using namespace choreo::bench;

  header("Fig 9: the greedy counter-example");
  {
    const place::ClusterView view = fig9_view();
    const place::Application app = fig9_app();
    place::ClusterState state(view);

    place::GreedyPlacer greedy(place::RateModel::Pipe);
    const place::Placement pg = greedy.place(app, state);
    const double tg = place::estimate_completion_s(app, pg, view, place::RateModel::Pipe);

    place::BruteForcePlacer optimal(place::RateModel::Pipe);
    const place::Placement po = optimal.place(app, state);
    const double to = place::estimate_completion_s(app, po, view, place::RateModel::Pipe);

    Table t({"algorithm", "completion (s)", "J1", "J2", "J3", "J4"});
    t.add_row({"greedy", fmt(tg, 1), fmt(pg.machine_of_task[0], 0),
               fmt(pg.machine_of_task[1], 0), fmt(pg.machine_of_task[2], 0),
               fmt(pg.machine_of_task[3], 0)});
    t.add_row({"optimal", fmt(to, 1), fmt(po.machine_of_task[0], 0),
               fmt(po.machine_of_task[1], 0), fmt(po.machine_of_task[2], 0),
               fmt(po.machine_of_task[3], 0)});
    std::cout << t.to_string();
    check(tg > to, "greedy is sub-optimal on the Fig 9 topology");
    // Greedy grabs the rate-10 path for the 100 MB transfer.
    check(pg.machine_of_task[0] == 0 || pg.machine_of_task[1] == 0,
          "greedy places the heaviest pair on the fastest (rate-10) path via X");
  }

  header("Greedy vs optimal over 111 random applications");
  {
    Rng rng(2013);
    workload::GeneratorConfig gen;
    gen.min_tasks = 4;
    gen.max_tasks = 7;
    gen.max_cpu = 2.0;

    std::vector<double> ratios;
    std::size_t greedy_optimal = 0;
    while (ratios.size() < 111) {
      // A small measured cluster: 5 machines, EC2-like rate spread.
      place::ClusterView view;
      const std::size_t M = 5;
      view.rate_bps = DoubleMatrix(M, M, 0.0);
      for (std::size_t i = 0; i < M; ++i) {
        for (std::size_t j = 0; j < M; ++j) {
          if (i == j) continue;
          const double r = rng.chance(0.2) ? rng.uniform(mbps(300), mbps(900))
                                           : rng.uniform(mbps(900), mbps(1100));
          view.rate_bps(i, j) = r;
        }
      }
      view.cross_traffic = DoubleMatrix(M, M, 0.0);
      view.cores.assign(M, 4.0);
      view.colocation_group = {0, 1, 2, 3, 4};
      place::ClusterState state(view);

      const place::Application app = workload::generate_app(rng, gen);
      place::GreedyPlacer greedy(place::RateModel::Hose);
      place::BruteForcePlacer optimal(place::RateModel::Hose);
      place::Placement pg, po;
      try {
        pg = greedy.place(app, state);
        po = optimal.place(app, state);
      } catch (const place::PlacementError&) {
        continue;
      }
      const double tg = place::estimate_completion_s(app, pg, view, place::RateModel::Hose);
      const double to = place::estimate_completion_s(app, po, view, place::RateModel::Hose);
      if (to <= 0.0) continue;  // fully co-located optimum: nothing to compare
      ratios.push_back(tg / to);
      if (tg <= to * 1.0001) ++greedy_optimal;
    }

    Cdf cdf(ratios);
    Table t({"percentile", "greedy/optimal"});
    for (double q : {0.25, 0.50, 0.75, 0.90, 0.95, 1.0}) {
      t.add_row({fmt(q, 2), fmt(cdf.quantile(q), 3)});
    }
    std::cout << t.to_string();
    const double median_overhead = (cdf.quantile(0.5) - 1.0) * 100.0;
    std::cout << "median greedy overhead vs optimal: " << fmt(median_overhead, 1)
              << "% (paper: 13%); greedy exactly optimal in " << greedy_optimal << "/111\n";
    check(median_overhead <= 25.0, "median greedy completion within ~13-25% of optimal");
    check(cdf.quantile(0.5) >= 1.0 - 1e-9, "optimal is never beaten by greedy");
  }
  return finish();
}

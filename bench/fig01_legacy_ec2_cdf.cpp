// Fig 1: TCP throughput on Amazon EC2 as of May 2012 — one CDF per
// availability zone, showing wide spatial variability (roughly 100 Mbit/s to
// 1 Gbit/s). Each "zone" is an independently seeded legacy-EC2 cloud; we
// measure all ordered pairs of a 10-VM allocation with 10-second bulk
// transfers, as the paper did with netperf.

#include "bench_common.h"

int main() {
  using namespace choreo;
  using namespace choreo::bench;
  using units::to_mbps;

  header("Fig 1: EC2 May-2012 throughput CDF per availability zone");
  std::cout << "zones: us-east-1{a,b,c,d} emulated as seeds 1..4\n";

  std::vector<Cdf> zones;
  for (std::uint64_t zone = 0; zone < 4; ++zone) {
    cloud::Cloud c(cloud::ec2_2012(), 100 + zone);
    const auto vms = c.allocate_vms(10);
    Cdf cdf;
    std::uint64_t epoch = 1;
    for (std::size_t i = 0; i < vms.size(); ++i) {
      for (std::size_t j = 0; j < vms.size(); ++j) {
        if (i == j) continue;
        cdf.add(to_mbps(c.netperf_bps(vms[i], vms[j], 10.0, epoch++)));
      }
    }
    zones.push_back(std::move(cdf));
  }

  Table t({"fraction", "zone-a", "zone-b", "zone-c", "zone-d"});
  for (double q : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 1.0}) {
    t.add_row({fmt(q, 2), fmt(zones[0].quantile(q), 0), fmt(zones[1].quantile(q), 0),
               fmt(zones[2].quantile(q), 0), fmt(zones[3].quantile(q), 0)});
  }
  std::cout << t.to_string();

  // Paper: "path throughputs vary from as low as 100 Mbit/s to almost 1 Gbit/s".
  bool wide = true, low_tail = true, high_head = true;
  for (const Cdf& z : zones) {
    wide = wide && (z.quantile(0.95) - z.quantile(0.05) > 300.0);
    low_tail = low_tail && (z.quantile(0.10) < 500.0);
    high_head = high_head && (z.quantile(0.95) > 750.0);
  }
  check(wide, "wide spatial spread (>300 Mbit/s between p5 and p95) in every zone");
  check(low_tail, "slow tail: p10 below 500 Mbit/s");
  check(high_head, "fast head: p95 above 750 Mbit/s (toward 1 Gbit/s)");
  return finish();
}

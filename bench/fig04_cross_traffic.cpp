// Fig 4: validation of the §3.2 cross-traffic estimator on the two ns-2
// topologies of Fig 3. A foreground bulk connection S1->R1 runs for 10
// seconds while background pairs follow an exponential ON-OFF model
// (mu = 5 s); the receiver-side throughput sampled every 10 ms is inverted
// to c = c1/c2 - 1.
//
// (a) simple topology: all pairs share one 1 Gbit/s link; the estimate
//     should track the actual number of ON background flows closely.
// (b) cloud topology: 1 G host links, 10 G ToR<->aggregate links; the
//     shared-link estimate only becomes informative once >= 10 flows
//     compete, so the estimated series floors around 9-10 (the paper:
//     "the smallest estimated value is 10").

#include "bench_common.h"
#include "flowsim/sim.h"
#include "measure/cross_traffic.h"
#include "net/topology.h"

namespace {

struct SeriesResult {
  std::vector<double> actual;
  std::vector<double> estimated;
};

SeriesResult run_experiment(bool cloud_topology, std::size_t pairs, std::uint64_t seed) {
  using namespace choreo;

  const double kSample = 0.01;
  const double kDuration = 10.0;

  // Build the Fig 3 topology.
  net::Topology topo;
  std::vector<net::NodeId> senders, receivers;
  double c1;  // the path rate used in the estimator
  if (cloud_topology) {
    net::TwoRackTopology t = net::make_two_rack_cloud(pairs);
    senders = t.senders;
    receivers = t.receivers;
    topo = std::move(t.topo);
    c1 = 10e9;  // the shared ToR->agg bottleneck
  } else {
    net::SharedLinkTopology t = net::make_shared_link(pairs);
    senders = t.senders;
    receivers = t.receivers;
    topo = std::move(t.topo);
    c1 = 1e9;
  }

  flowsim::Sim sim(topo);
  flowsim::FlowSpec fg;
  fg.src = senders[0];
  fg.dst = receivers[0];
  fg.bytes = flowsim::kInfiniteBytes;
  fg.label = "foreground";
  const flowsim::FlowId probe = sim.add_flow(fg);

  std::vector<flowsim::FlowId> background;
  for (std::size_t i = 1; i < pairs; ++i) {
    flowsim::FlowSpec bg;
    bg.src = senders[i];
    bg.dst = receivers[i];
    bg.flow_key = i;
    background.push_back(sim.add_on_off_flow(bg, 5.0, 5.0, (i % 2) == 0, seed + i));
  }

  SeriesResult out;
  double last_bytes = 0.0;
  sim.add_sampler(kSample, kSample, [&](double) {
    const double bytes = sim.flow(probe).bytes_received;
    const double rate = (bytes - last_bytes) * 8.0 / kSample;
    last_bytes = bytes;
    out.estimated.push_back(choreo::measure::cross_traffic_estimate(rate, c1));
    double on = 0.0;
    for (flowsim::FlowId id : background) {
      if (sim.flow(id).on) on += 1.0;
    }
    out.actual.push_back(on);
  });
  sim.run_until(kDuration);
  return out;
}

void print_series(const char* name, const SeriesResult& r) {
  using namespace choreo;
  Table t({"t (s)", "actual c", "estimated c"});
  for (std::size_t i = 49; i < r.actual.size(); i += 100) {  // every second
    t.add_row({fmt(static_cast<double>(i + 1) * 0.01, 2), fmt(r.actual[i], 0),
               fmt(r.estimated[i], 1)});
  }
  std::cout << name << "\n" << t.to_string();
}

}  // namespace

int main() {
  using namespace choreo;
  using namespace choreo::bench;

  header("Fig 4(a): cross-traffic estimation, simple shared-link topology");
  const SeriesResult simple = run_experiment(false, 10, 7000);
  print_series("S1->R1 foreground, 9 ON-OFF background pairs, 1G shared link", simple);

  // Accuracy: mean absolute deviation between estimate and actual.
  std::vector<double> dev;
  for (std::size_t i = 0; i < simple.actual.size(); ++i) {
    dev.push_back(std::abs(simple.actual[i] - simple.estimated[i]));
  }
  const double mad_simple = mean(dev);
  std::cout << "mean |estimate - actual| = " << fmt(mad_simple, 2) << " connections\n";
  check(mad_simple < 1.0,
        "simple topology: estimate tracks actual within ~1 connection on average");

  header("Fig 4(b): cross-traffic estimation, two-rack cloud topology (10G aggregate)");
  const SeriesResult cloudy = run_experiment(true, 20, 9000);
  print_series("S1->R1 foreground, 19 ON-OFF background pairs, 10G shared uplink", cloudy);

  // The estimator cannot see fewer than ~9 competitors (1G host links cap
  // the probe), so its minimum should sit near 9-10 as in the paper.
  double est_min = 1e9, est_dev_high = 0.0;
  std::size_t high_samples = 0;
  for (std::size_t i = 0; i < cloudy.actual.size(); ++i) {
    est_min = std::min(est_min, cloudy.estimated[i]);
    if (cloudy.actual[i] >= 10.0) {
      est_dev_high += std::abs(cloudy.actual[i] - cloudy.estimated[i]);
      ++high_samples;
    }
  }
  std::cout << "estimate floor: " << fmt(est_min, 1) << " (paper: ~10)\n";
  check(est_min > 8.0 && est_min < 11.0, "cloud topology: estimated c floors near 9-10");
  if (high_samples > 0) {
    const double mad_high = est_dev_high / static_cast<double>(high_samples);
    std::cout << "mean |estimate - actual| when c >= 10: " << fmt(mad_high, 2) << "\n";
    check(mad_high < 2.5, "cloud topology: estimate tracks actual when c >= 10");
  }
  return finish();
}

#!/usr/bin/env python3
"""Gate for the JSON documents the bench binaries and the obs plane emit.

Usage: check_bench_json.py FILE.json [...]

Three document shapes are recognized, dispatched on content:

* BenchJson (BENCH_*.json): a string "name", an object "config", a
  non-empty list "rows" of objects; every metric value must be a finite
  number, a bool, or a non-empty string. BenchJson serializes non-finite
  doubles as null, so a null in a row means a bench computed NaN/inf for a
  metric it claims to track; that is exactly the regression this gate
  exists to catch.

* Metrics snapshots ("kind": "choreo_metrics", from --metrics=PATH):
  counters are non-negative integers, gauges are finite numbers,
  histograms carry finite count/min/max/p50/p90/p99.

* Chrome traces (top-level "traceEvents", from --trace=PATH): the event
  array is non-empty, every complete ("ph":"X") span has finite ts/dur and
  a name, and ts is monotone non-decreasing within each thread lane — the
  order Tracer::to_json guarantees and trace viewers assume.

Every file must parse as strict JSON (bare NaN/Infinity literals are
rejected). Exit status is non-zero if any file fails, so CI can run it
directly over the glob of produced documents.
"""

import json
import math
import sys


def fail_constant(value):
    raise ValueError(f"non-finite JSON constant {value!r}")


def check_value(path, key, value, errors):
    if value is None:
        errors.append(f"{path}: {key}: null (BenchJson emits null for NaN/inf)")
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        if not math.isfinite(value):
            errors.append(f"{path}: {key}: non-finite number {value!r}")
    elif isinstance(value, str):
        if not value:
            errors.append(f"{path}: {key}: empty string")
    else:
        errors.append(f"{path}: {key}: unexpected type {type(value).__name__}")


def check_metrics(path, doc):
    errors = []
    for section, kind in (("counters", "counter"), ("gauges", "gauge"),
                          ("histograms", "histogram")):
        if section not in doc:
            errors.append(f"{path}: missing {section!r} object")
            continue
        if not isinstance(doc[section], dict):
            errors.append(f"{path}: {section} must be an object")
            continue
        for name, value in doc[section].items():
            where = f"{section}.{name}"
            if kind == "counter":
                if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                    errors.append(f"{path}: {where}: counter must be a "
                                  f"non-negative integer, got {value!r}")
            elif kind == "gauge":
                check_value(path, where, value, errors)
            else:
                if not isinstance(value, dict):
                    errors.append(f"{path}: {where}: histogram must be an object")
                    continue
                for field in ("count", "min", "max", "p50", "p90", "p99"):
                    if field not in value:
                        errors.append(f"{path}: {where}: missing {field!r}")
                    else:
                        check_value(path, f"{where}.{field}", value[field], errors)
    return errors


def check_trace(path, doc):
    errors = []
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return [f"{path}: traceEvents must be a list"]
    if not any(isinstance(e, dict) and e.get("ph") == "X" for e in events):
        return [f"{path}: no complete ('ph':'X') spans — the trace is empty"]
    last_ts = {}  # tid -> last seen ts
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"{path}: traceEvents[{i}] is not an object")
            continue
        if ev.get("ph") != "X":
            continue  # metadata events carry no timeline
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{path}: traceEvents[{i}]: missing span name")
        tid = ev.get("tid")
        for field in ("ts", "dur"):
            v = ev.get(field)
            if not isinstance(v, (int, float)) or isinstance(v, bool) \
                    or not math.isfinite(v) or v < 0:
                errors.append(f"{path}: traceEvents[{i}].{field}: "
                              f"expected finite non-negative number, got {v!r}")
                break
        else:
            if tid in last_ts and ev["ts"] < last_ts[tid]:
                errors.append(f"{path}: traceEvents[{i}]: ts {ev['ts']} goes "
                              f"backwards within lane {tid} "
                              f"(previous {last_ts[tid]})")
            last_ts[tid] = ev.get("ts")
    return errors


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f, parse_constant=fail_constant)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is {type(doc).__name__}, expected object"]
    if doc.get("kind") == "choreo_metrics":
        return check_metrics(path, doc)
    if "traceEvents" in doc:
        return check_trace(path, doc)
    for key in ("name", "config", "rows"):
        if key not in doc:
            errors.append(f"{path}: missing required key {key!r}")
    if errors:
        return errors

    if not isinstance(doc["name"], str) or not doc["name"]:
        errors.append(f"{path}: name must be a non-empty string")
    if not isinstance(doc["config"], dict):
        errors.append(f"{path}: config must be an object")
    else:
        for key, value in doc["config"].items():
            check_value(path, f"config.{key}", value, errors)

    rows = doc["rows"]
    if not isinstance(rows, list):
        errors.append(f"{path}: rows must be a list")
    elif not rows:
        errors.append(f"{path}: rows is empty — the bench produced no metrics")
    else:
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                errors.append(f"{path}: rows[{i}] is {type(row).__name__}, expected object")
                continue
            if not row:
                errors.append(f"{path}: rows[{i}] is empty")
            for key, value in row.items():
                check_value(path, f"rows[{i}].{key}", value, errors)
    return errors


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py BENCH_*.json", file=sys.stderr)
        return 2
    failed = 0
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed += 1
            for err in errors:
                print(f"FAIL {err}")
        else:
            print(f"ok   {path}")
    if failed:
        print(f"{failed} of {len(argv) - 1} bench JSON document(s) failed the gate")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Gate for the BENCH_*.json documents the bench binaries emit.

Usage: check_bench_json.py BENCH_a.json [BENCH_b.json ...]

Each document must parse as strict JSON (bare NaN/Infinity literals are
rejected), carry the BenchJson shape — a string "name", an object "config",
a non-empty list "rows" of objects — and every metric value must be a
finite number, a bool, or a non-empty string. BenchJson serializes
non-finite doubles as null, so a null in a row means a bench computed
NaN/inf for a metric it claims to track; that is exactly the regression this
gate exists to catch.

Exit status is non-zero if any file fails, so CI can run it directly over
the glob of produced documents.
"""

import json
import math
import sys


def fail_constant(value):
    raise ValueError(f"non-finite JSON constant {value!r}")


def check_value(path, key, value, errors):
    if value is None:
        errors.append(f"{path}: {key}: null (BenchJson emits null for NaN/inf)")
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        if not math.isfinite(value):
            errors.append(f"{path}: {key}: non-finite number {value!r}")
    elif isinstance(value, str):
        if not value:
            errors.append(f"{path}: {key}: empty string")
    else:
        errors.append(f"{path}: {key}: unexpected type {type(value).__name__}")


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f, parse_constant=fail_constant)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is {type(doc).__name__}, expected object"]
    for key in ("name", "config", "rows"):
        if key not in doc:
            errors.append(f"{path}: missing required key {key!r}")
    if errors:
        return errors

    if not isinstance(doc["name"], str) or not doc["name"]:
        errors.append(f"{path}: name must be a non-empty string")
    if not isinstance(doc["config"], dict):
        errors.append(f"{path}: config must be an object")
    else:
        for key, value in doc["config"].items():
            check_value(path, f"config.{key}", value, errors)

    rows = doc["rows"]
    if not isinstance(rows, list):
        errors.append(f"{path}: rows must be a list")
    elif not rows:
        errors.append(f"{path}: rows is empty — the bench produced no metrics")
    else:
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                errors.append(f"{path}: rows[{i}] is {type(row).__name__}, expected object")
                continue
            if not row:
                errors.append(f"{path}: rows[{i}] is empty")
            for key, value in row.items():
                check_value(path, f"rows[{i}].{key}", value, errors)
    return errors


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py BENCH_*.json", file=sys.stderr)
        return 2
    failed = 0
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed += 1
            for err in errors:
                print(f"FAIL {err}")
        else:
            print(f"ok   {path}")
    if failed:
        print(f"{failed} of {len(argv) - 1} bench JSON document(s) failed the gate")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Fig 7: temporal stability — how well does a throughput measurement from
// tau minutes ago predict the current throughput? For each path we sample a
// 10-second netperf-style reading every 10 seconds for 30 minutes, then plot
// the CDF of |lambda_c - lambda_{c-tau}| / lambda_c for tau in {1,5,10,30}
// minutes. Paper: EC2 >= 95% of paths see <= 6% error (median 0.4-0.5%);
// Rackspace is even tighter (95% <= 0.62%, median ~0.2%).
//
// `--smoke` samples fewer paths for CI; the exit code is non-zero on any
// failed check.

#include <cmath>
#include <cstring>
#include <map>

#include "bench_common.h"
#include "util/rng.h"

namespace {

using ErrorsByTau = std::map<int, choreo::Cdf>;

ErrorsByTau run(const choreo::cloud::ProviderProfile& profile, std::size_t paths,
                std::uint64_t seed) {
  using namespace choreo;
  const double kInterval = 10.0;
  // One sample every 10 s for a bit over 30 minutes, so the tau = 30 min lag
  // has pairs to compare.
  const double kDuration = 32.0 * 60.0;
  const std::vector<int> taus{1, 5, 10, 30};

  cloud::Cloud c(profile, seed);
  const auto vms = c.allocate_vms(24);
  Rng noise(seed * 7 + 1);

  ErrorsByTau out;
  for (int tau : taus) out[tau];  // materialize every lag
  std::size_t measured = 0;
  for (std::size_t i = 0; measured < paths; ++i) {
    const std::size_t a = i % vms.size();
    const std::size_t b = (i + 1 + i / vms.size()) % vms.size();
    if (a == b || c.vm_host(vms[a]) == c.vm_host(vms[b])) continue;
    ++measured;
    std::vector<double> series = c.probe_series_bps(vms[a], vms[b], kDuration, kInterval,
                                                    /*epoch=*/1000 + i);
    // Each reading is an independent netperf-style measurement with noise.
    for (double& s : series) {
      s *= 1.0 + noise.normal(0.0, profile.netperf_noise_frac);
    }
    for (int tau : taus) {
      const std::size_t lag = static_cast<std::size_t>(tau * 60.0 / kInterval);
      for (std::size_t t = lag; t < series.size(); ++t) {
        if (series[t] <= 0.0) continue;
        out[tau].add(std::abs(series[t] - series[t - lag]) / series[t]);
      }
    }
  }
  return out;
}

void print_errors(const ErrorsByTau& errors) {
  using namespace choreo;
  Table t({"tau (min)", "median err", "mean-ish p75", "p95", "p99"});
  for (const auto& [tau, cdf] : errors) {
    t.add_row({fmt(tau, 0), fmt_pct(cdf.quantile(0.5), 2), fmt_pct(cdf.quantile(0.75), 2),
               fmt_pct(cdf.quantile(0.95), 2), fmt_pct(cdf.quantile(0.99), 2)});
  }
  std::cout << t.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace choreo;
  using namespace choreo::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t ec2_paths = smoke ? 24 : 60;
  const std::size_t rs_paths = smoke ? 12 : 30;

  header("Fig 7(a): EC2 temporal stability (" + std::to_string(ec2_paths) +
         " paths, 30 min, 10 s samples" + (smoke ? ") [smoke]" : ")"));
  const ErrorsByTau ec2 = run(cloud::ec2_2013(), ec2_paths, 55);
  print_errors(ec2);
  bool ec2_tail_ok = true, ec2_median_ok = true;
  for (const auto& [tau, cdf] : ec2) {
    ec2_tail_ok = ec2_tail_ok && cdf.quantile(0.95) <= 0.08;
    ec2_median_ok = ec2_median_ok && cdf.quantile(0.5) <= 0.02;
  }
  check(ec2_tail_ok, "EC2: >= 95% of samples within ~6-8% for every tau");
  check(ec2_median_ok, "EC2: median error well under 2% (paper: 0.4-0.5%)");

  header("Fig 7(b): Rackspace temporal stability (" + std::to_string(rs_paths) +
         " paths)");
  const ErrorsByTau rs = run(cloud::rackspace(), rs_paths, 77);
  print_errors(rs);
  bool rs_tail_ok = true;
  for (const auto& [tau, cdf] : rs) {
    rs_tail_ok = rs_tail_ok && cdf.quantile(0.95) <= 0.015;
  }
  check(rs_tail_ok, "Rackspace: >= 95% of samples within ~0.6-1.5% for every tau");
  check(rs.at(1).quantile(0.5) <= 0.006, "Rackspace: median error ~0.2%");

  // Qualitative cross-provider claim: Rackspace is tighter than EC2.
  check(rs.at(30).quantile(0.95) < ec2.at(30).quantile(0.95),
        "Rackspace temporally tighter than EC2 at tau = 30 min");
  return finish();
}

// Fig 8: path length (traceroute hop count) vs throughput over the 1710 EC2
// paths of Fig 2(a). The paper's observations:
//   * hop counts fall only in {1, 2, 4, 6, 8} (multi-rooted tree);
//   * the highest-throughput pairs are 1 hop apart (same physical machine);
//   * a "typical" ~1 Gbit/s throughput appears at ALL path lengths, i.e.
//     path length and throughput are only weakly correlated;
//   * a few high-throughput (>2.5 Gbit/s) paths exist even at 6-8 hops.

#include <cmath>
#include <map>

#include "bench_common.h"

int main() {
  using namespace choreo;
  using namespace choreo::bench;

  header("Fig 8: path length vs bandwidth (EC2, 19 x 10-VM topologies)");

  std::map<std::size_t, std::vector<double>> by_hops;
  std::vector<double> hops_series, rate_series;
  for (std::size_t topo = 0; topo < 19; ++topo) {
    cloud::Cloud c(cloud::ec2_2013(), 500 + topo);  // same fleet as fig02
    const auto vms = c.allocate_vms(10);
    std::uint64_t epoch = 1;
    for (std::size_t i = 0; i < vms.size(); ++i) {
      for (std::size_t j = 0; j < vms.size(); ++j) {
        if (i == j) continue;
        const std::size_t hops = c.traceroute_hops(vms[i], vms[j]);
        const double mbit = units::to_mbps(c.netperf_bps(vms[i], vms[j], 10.0, epoch++));
        by_hops[hops].push_back(mbit);
        hops_series.push_back(static_cast<double>(hops));
        rate_series.push_back(mbit);
      }
    }
  }

  Table t({"hops", "paths", "min (Mbit/s)", "median", "mean", "max"});
  for (const auto& [hops, rates] : by_hops) {
    const Summary s = summarize(rates);
    t.add_row({fmt(hops, 0), fmt(s.count, 0), fmt(s.min, 0), fmt(s.median, 0),
               fmt(s.mean, 0), fmt(s.max, 0)});
  }
  std::cout << t.to_string();

  // Pearson correlation between hop count and throughput over *fabric*
  // paths (2+ hops). Same-machine pairs are excluded: they are what makes
  // "the highest throughput pairs one hop apart", but their ~4 Gbit/s rates
  // would dominate a correlation meant to describe the fabric.
  std::vector<double> fh, fr;
  for (std::size_t k = 0; k < hops_series.size(); ++k) {
    if (hops_series[k] >= 2.0) {
      fh.push_back(hops_series[k]);
      fr.push_back(rate_series[k]);
    }
  }
  const double mh = mean(fh), mr = mean(fr);
  double num = 0, dh = 0, dr = 0;
  for (std::size_t k = 0; k < fh.size(); ++k) {
    num += (fh[k] - mh) * (fr[k] - mr);
    dh += (fh[k] - mh) * (fh[k] - mh);
    dr += (fr[k] - mr) * (fr[k] - mr);
  }
  const double corr = num / std::sqrt(dh * dr);
  std::cout << "pearson corr(hops, throughput) over fabric paths = " << fmt(corr, 3)
            << "\n";

  for (const auto& [hops, rates] : by_hops) {
    check(hops == 1 || hops == 2 || hops == 4 || hops == 6 || hops == 8,
          "hop count " + std::to_string(hops) + " is in {1,2,4,6,8}");
  }
  check(by_hops.count(6) && by_hops.count(8), "many paths cross pods/regions (6-8 hops)");
  if (by_hops.count(1)) {
    check(summarize(by_hops.at(1)).mean > 2500.0,
          "1-hop (same-machine) pairs are the fastest on average");
  }
  // Typical ~1G at all fabric lengths.
  bool typical_everywhere = true;
  for (const auto& [hops, rates] : by_hops) {
    if (hops == 1) continue;
    std::size_t near_1g = 0;
    for (double r : rates) {
      if (r > 850.0 && r < 1200.0) ++near_1g;
    }
    typical_everywhere =
        typical_everywhere && near_1g > rates.size() / 3;
  }
  check(typical_everywhere, "throughput near 1 Gbit/s appears at every fabric length");
  check(std::abs(corr) < 0.35, "little correlation between path length and throughput");
  // High-throughput long paths (the paper sees 4 beyond 2.5G at 6-8 hops).
  std::size_t fast_long = 0;
  for (std::size_t k = 0; k < hops_series.size(); ++k) {
    if (hops_series[k] >= 6.0 && rate_series[k] > 2500.0) ++fast_long;
  }
  std::cout << "fast (>2.5G) paths at 6-8 hops: " << fast_long << "\n";
  check(fast_long >= 1, "a few high-throughput paths exist even at 6-8 hops");
  return finish();
}

// Fig 2: TCP throughput measured in May 2013 — (a) 1710 paths across 19
// ten-instance EC2 topologies, (b) 360 paths across 4 ten-instance Rackspace
// topologies. The paper's headline facts: EC2 ranges ~296-4405 Mbit/s but
// ~80% of paths sit between 900 and 1100 Mbit/s (mean 957, median 929) with
// 18 near-4G same-host paths; Rackspace is flat at ~300 Mbit/s.

#include "bench_common.h"

namespace {

struct ProviderRun {
  choreo::Cdf cdf;
  std::size_t near_4g = 0;
  std::size_t paths = 0;
};

ProviderRun measure(const choreo::cloud::ProviderProfile& profile, std::size_t topologies,
                    std::uint64_t seed_base) {
  using namespace choreo;
  ProviderRun run;
  for (std::size_t topo = 0; topo < topologies; ++topo) {
    cloud::Cloud c(profile, seed_base + topo);
    const auto vms = c.allocate_vms(10);
    std::uint64_t epoch = 1;
    for (std::size_t i = 0; i < vms.size(); ++i) {
      for (std::size_t j = 0; j < vms.size(); ++j) {
        if (i == j) continue;
        const double mbit = units::to_mbps(c.netperf_bps(vms[i], vms[j], 10.0, epoch++));
        run.cdf.add(mbit);
        ++run.paths;
        if (mbit > 2500.0) ++run.near_4g;
      }
    }
  }
  return run;
}

}  // namespace

int main() {
  using namespace choreo;
  using namespace choreo::bench;

  header("Fig 2(a): EC2 May-2013 throughput CDF (19 topologies x 10 VMs = 1710 paths)");
  const ProviderRun ec2 = measure(cloud::ec2_2013(), 19, 500);
  print_cdf("throughput", ec2.cdf, "Mbit/s");

  const double frac_900_1100 = ec2.cdf.fraction_between(900.0, 1100.0);
  const double med = ec2.cdf.quantile(0.5);
  std::cout << "paths: " << ec2.paths << ", median: " << fmt(med, 0)
            << " Mbit/s, in [900,1100]: " << fmt_pct(frac_900_1100)
            << ", near-4G paths: " << ec2.near_4g << "\n";

  check(ec2.paths == 1710, "1710 EC2 paths measured");
  check(frac_900_1100 > 0.6 && frac_900_1100 < 0.95,
        "most paths (~80%) between 900 and 1100 Mbit/s");
  check(med > 850 && med < 1000, "median near 929 Mbit/s");
  check(ec2.cdf.min() < 500.0, "slow tail reaching down toward ~300 Mbit/s");
  check(ec2.cdf.max() > 2500.0, "fast outliers beyond 2.5 Gbit/s exist");
  check(ec2.near_4g >= 5 && ec2.near_4g <= 60,
        "a handful of near-4G (same-host / unthrottled) paths, like the paper's 18");

  header("Fig 2(b): Rackspace throughput CDF (4 topologies x 10 VMs = 360 paths)");
  const ProviderRun rs = measure(cloud::rackspace(), 4, 900);
  print_cdf("throughput", rs.cdf, "Mbit/s");
  const double rs_p05 = rs.cdf.quantile(0.05);
  const double rs_p95 = rs.cdf.quantile(0.95);
  std::cout << "paths: " << rs.paths << ", p5: " << fmt(rs_p05, 1)
            << ", p95: " << fmt(rs_p95, 1) << " Mbit/s\n";
  check(rs.paths == 360, "360 Rackspace paths measured");
  check(rs_p95 - rs_p05 < 30.0,
        "almost no spatial variation (every fabric path ~300 Mbit/s)");
  check(std::abs(rs.cdf.quantile(0.5) - 300.0) < 15.0, "median ~300 Mbit/s");
  return finish();
}

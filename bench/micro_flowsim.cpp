// Microbenchmark for the incremental max-min kernel (flowsim/max_min_kernel).
//
// Three properties of the PR 9 rearchitecture are measured and enforced:
//   1. Reallocate cost: after a single-flow event, the incremental kernel
//      recomputes only the touched connected component, while the reference
//      path (preserved as the differential oracle) rebuilds the full
//      incidence and re-waterfills every active flow. At 1k active flows the
//      speed-up must be at least 5x.
//   2. Zero steady-state allocations: once warm, toggle/recompute cycles
//      perform no heap allocations at all — both at the kernel level and for
//      a full Sim driving ON-OFF churn (counted by interposing the global
//      operator new).
//   3. Event throughput under probe-train-shaped churn: many short flows
//      arriving and finishing (the shape cloud-layer packet trains and §6
//      transfer batches produce) must run no slower — in practice much
//      faster — than KernelMode::Reference, with auto-retire keeping memory
//      proportional to the live flow set.
//
// `--smoke` runs a reduced sweep for CI; `--json[=PATH]` emits the metrics
// as a BenchJson document (gated by bench/check_bench_json.py in CI).

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "bench_common.h"
#include "flowsim/max_min.h"
#include "flowsim/max_min_kernel.h"
#include "flowsim/sim.h"
#include "net/topology.h"
#include "util/rng.h"

// --- Global allocation counter -------------------------------------------
// Single-threaded binary: plain counters are enough. Counting (rather than
// forbidding) keeps the hot path measurable without crashing on the many
// legitimate allocations outside the steady-state window.
namespace {
std::size_t g_alloc_count = 0;
}

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace choreo;
using namespace choreo::bench;
using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

// A kernel instance shaped like the cloud layer's sharing graph: many small
// connected components (3 resources, `flows_per_comp` flows each — link,
// hose, vswitch is the typical triple).
struct ComponentInstance {
  flowsim::MaxMinKernel kernel{400e9};
  std::vector<double> caps;
  std::vector<std::vector<flowsim::ResourceId>> rows;  // per flow
  std::size_t n_flows = 0;

  ComponentInstance(std::size_t components, std::size_t flows_per_comp, Rng& rng) {
    for (std::size_t c = 0; c < components; ++c) {
      flowsim::ResourceId triple[3];
      for (auto& r : triple) {
        const double cap = rng.uniform(5e8, 2e9);
        r = kernel.add_resource(cap);
        caps.push_back(cap);
      }
      for (std::size_t f = 0; f < flows_per_comp; ++f) {
        rows.push_back({triple[0], triple[1], triple[2]});
        const std::size_t id = kernel.add_flow(rows.back().data(), rows.back().size());
        kernel.activate(id);
        ++n_flows;
      }
    }
    kernel.recompute();  // warm: scratch sized, labels clean
  }

  // The cost the reference path pays for the same event: rebuild the nested
  // incidence for every active flow and re-waterfill from scratch (this is
  // verbatim what Sim::reallocate_reference does).
  double reference_reallocate_us() const {
    const auto t0 = Clock::now();
    std::vector<std::vector<flowsim::ResourceId>> usage;
    usage.reserve(n_flows);
    for (const auto& row : rows) usage.push_back(row);
    const auto rates = flowsim::max_min_rates(caps, usage, 400e9);
    const double us = us_since(t0);
    if (rates.empty()) std::abort();  // keep the optimizer honest
    return us;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  BenchJson json("micro_flowsim");
  json.config("smoke", smoke ? "true" : "false");

  Rng rng(20130923);  // paper submission vintage

  header(std::string("Reallocate cost after a single-flow event") +
         (smoke ? " [smoke]" : ""));

  const std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{100, 1000} : std::vector<std::size_t>{100, 1000, 10000};
  Table t({"active flows", "incremental (us)", "reference (us)", "speed-up",
           "region flows"});
  double speedup_at_1k = 0.0;
  for (std::size_t n : sweep) {
    const std::size_t flows_per_comp = 10;
    ComponentInstance inst(n / flows_per_comp, flows_per_comp, rng);

    // Median-ish: time a run of toggle->recompute cycles round-robin across
    // flows; each event dirties exactly one component.
    const int reps = smoke ? 50 : 200;
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      const std::size_t f = (static_cast<std::size_t>(i) * 37) % inst.n_flows;
      inst.kernel.deactivate(f);
      inst.kernel.recompute();
      inst.kernel.activate(f);
      inst.kernel.recompute();
    }
    const double incr_us = us_since(t0) / (2.0 * reps);
    const std::size_t region = inst.kernel.last_region_flows();

    const int ref_reps = n >= 10000 ? 3 : 10;
    double ref_us = 0.0;
    for (int i = 0; i < ref_reps; ++i) ref_us += inst.reference_reallocate_us();
    ref_us /= ref_reps;

    const double speedup = ref_us / incr_us;
    if (n == 1000) speedup_at_1k = speedup;
    t.add_row({fmt(static_cast<double>(n), 0), fmt(incr_us, 2), fmt(ref_us, 2),
               fmt(speedup, 1) + "x", fmt(static_cast<double>(region), 0)});
    json.row()
        .row("kind", "reallocate")
        .row("active_flows", static_cast<double>(n))
        .row("incremental_us", incr_us)
        .row("reference_us", ref_us)
        .row("speedup", speedup)
        .row("region_flows", static_cast<double>(region));
  }
  std::cout << t.to_string();
  check(speedup_at_1k >= 5.0,
        "component-scoped recompute is at least 5x faster than the reference "
        "rebuild at 1k active flows");

  header("Steady-state allocations");
  {
    ComponentInstance inst(smoke ? 10 : 100, 10, rng);
    // Warm one full toggle cycle so every scratch vector has seen its peak.
    inst.kernel.deactivate(0);
    inst.kernel.recompute();
    inst.kernel.activate(0);
    inst.kernel.recompute();

    const std::size_t before = g_alloc_count;
    for (int i = 0; i < 1000; ++i) {
      const std::size_t f = (static_cast<std::size_t>(i) * 37) % inst.n_flows;
      inst.kernel.deactivate(f);
      inst.kernel.recompute();
      inst.kernel.activate(f);
      inst.kernel.recompute();
    }
    const std::size_t kernel_allocs = g_alloc_count - before;
    std::cout << "kernel: " << kernel_allocs << " allocations across 2000 recomputes\n";
    check(kernel_allocs == 0, "warm kernel recomputes allocate nothing");
    json.row().row("kind", "alloc").row("scope", "kernel").row(
        "steady_state_allocs", static_cast<double>(kernel_allocs));
  }
  {
    // Full Sim: persistent ON-OFF flows toggling forever. After a warmup
    // window the event queue, kernel scratch, and flow table are all at
    // their peak sizes — advancing further must not allocate.
    net::TreeParams tp;
    tp.pods = 2;
    tp.racks_per_pod = 2;
    tp.hosts_per_rack = 4;
    const net::Topology topo = net::make_multi_rooted_tree(tp);
    const auto hosts = topo.nodes_of_kind(net::NodeKind::Host);
    flowsim::Sim sim(topo);
    Rng trng(7);
    for (int i = 0; i < (smoke ? 32 : 128); ++i) {
      flowsim::FlowSpec spec;
      spec.src = hosts[static_cast<std::size_t>(trng.uniform_int(
          0, static_cast<std::int64_t>(hosts.size()) - 1))];
      spec.dst = hosts[static_cast<std::size_t>(trng.uniform_int(
          0, static_cast<std::int64_t>(hosts.size()) - 1))];
      spec.flow_key = static_cast<std::uint64_t>(i);
      sim.add_on_off_flow(spec, 0.5, 0.5, i % 2 == 0,
                          static_cast<std::uint64_t>(i) + 1);
    }
    sim.run_until(20.0);  // warmup: queue and scratch reach peak capacity
    const std::size_t before = g_alloc_count;
    sim.run_until(smoke ? 60.0 : 120.0);
    const std::size_t sim_allocs = g_alloc_count - before;
    std::cout << "sim: " << sim_allocs << " allocations across "
              << (smoke ? 40.0 : 100.0) << " s of simulated ON-OFF churn\n";
    check(sim_allocs == 0, "warm Sim event loop allocates nothing");
    json.row().row("kind", "alloc").row("scope", "sim").row(
        "steady_state_allocs", static_cast<double>(sim_allocs));
  }

  header(std::string("Probe-train-shaped churn: short flows, high turnover") +
         (smoke ? " [smoke]" : ""));
  {
    // Staggered short transfers (a few ms at link rate) — the pattern packet
    // trains and batched §6 transfers produce. Total flow count is large,
    // concurrent count small: exactly where indexing by *active* flows wins.
    net::TreeParams tp;
    tp.pods = 2;
    tp.racks_per_pod = 2;
    tp.hosts_per_rack = 4;
    const net::Topology topo = net::make_multi_rooted_tree(tp);
    const auto hosts = topo.nodes_of_kind(net::NodeKind::Host);
    const std::size_t n_churn = smoke ? 2000 : 20000;

    Table ct({"mode", "flows", "wall (ms)", "flows/s"});
    double incr_wall_ms = 0.0, ref_wall_ms = 0.0;
    for (const bool incremental : {true, false}) {
      flowsim::Sim sim(topo, 400e9,
                       incremental ? flowsim::KernelMode::Incremental
                                   : flowsim::KernelMode::Reference);
      sim.set_auto_retire(incremental);  // reference predates retirement
      Rng crng(99);
      for (std::size_t i = 0; i < n_churn; ++i) {
        flowsim::FlowSpec spec;
        spec.src = hosts[static_cast<std::size_t>(crng.uniform_int(
            0, static_cast<std::int64_t>(hosts.size()) - 1))];
        spec.dst = hosts[static_cast<std::size_t>(crng.uniform_int(
            0, static_cast<std::int64_t>(hosts.size()) - 1))];
        spec.bytes = crng.uniform(1e5, 1e6);
        spec.start_time = crng.uniform(0.0, 60.0);
        spec.flow_key = static_cast<std::uint64_t>(i);
        sim.add_flow(spec);
      }
      const auto t0 = Clock::now();
      sim.run_to_completion(1e4);
      const double wall_ms = us_since(t0) / 1e3;
      (incremental ? incr_wall_ms : ref_wall_ms) = wall_ms;
      const double per_s = static_cast<double>(n_churn) / (wall_ms / 1e3);
      ct.add_row({incremental ? "incremental" : "reference",
                  fmt(static_cast<double>(n_churn), 0), fmt(wall_ms, 1),
                  fmt(per_s, 0)});
      json.row()
          .row("kind", "churn")
          .row("mode", incremental ? "incremental" : "reference")
          .row("flows", static_cast<double>(n_churn))
          .row("wall_ms", wall_ms)
          .row("flows_per_s", per_s);
    }
    std::cout << ct.to_string();
    check(incr_wall_ms <= ref_wall_ms,
          "incremental kernel handles churn no slower than the reference path");
  }

  const std::string json_path = json_path_from_args(argc, argv, "micro_flowsim");
  if (!json_path.empty()) json.write(json_path);
  return finish();
}

// Placement-plane scaling: the incremental PlacementEngine vs the
// exhaustive-scan greedy across 10 -> 500 VM fleets.
//
// Three claims are enforced:
//   1. Fidelity: the engine-backed greedy produces the SAME placements as
//      the exhaustive scan on every fleet size both run at (the bench-level
//      echo of test_engine_differential's bit-identity pin).
//   2. Scale: engine placement wall-clock grows sub-quadratically in fleet
//      size (the lazy best-first search does near-linear work per app once
//      the static indexes are built), while the exhaustive scan's
//      O(transfers * n^2 * n) blows up — that is why it only runs up to a
//      cap here.
//   3. Amortization: the one-off static index build (ClusterState
//      construction / update_view) stays far below a single exhaustive
//      placement at the largest common fleet size.
//
// `--smoke` runs a reduced sweep for CI; the exit code is non-zero on any
// [FAIL], which lets CI enforce the scaling claim continuously.

#include <chrono>
#include <cstring>
#include <deque>

#include "bench_common.h"
#include "place/engine.h"
#include "place/greedy.h"
#include "place/rate_model.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace choreo;
using units::mbps;

place::ClusterView synthetic_fleet(Rng& rng, std::size_t machines) {
  place::ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j) {
        view.rate_bps(i, j) = rng.chance(0.2) ? rng.uniform(mbps(300), mbps(900))
                                              : rng.uniform(mbps(900), mbps(1100));
      }
    }
  }
  // Cross traffic on a fifth of the paths so the hose shares are non-trivial
  // (the expensive max-scans the engine caches).
  view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j && rng.chance(0.2)) view.cross_traffic(i, j) = rng.uniform(0.5, 3.0);
    }
  }
  // A few colocated pairs, like a real allocation lands some VMs together.
  view.colocation_group.resize(machines);
  int group = 0;
  for (std::size_t m = 0; m < machines; ++m) {
    view.colocation_group[m] = group;
    if (!(m % 8 == 0 && m + 1 < machines)) ++group;
  }
  view.cores.assign(machines, 8.0);
  return view;
}

std::vector<place::Application> arrival_stream(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  workload::GeneratorConfig gen;
  gen.min_tasks = 6;
  gen.max_tasks = 10;
  gen.max_cpu = 1.5;
  std::vector<place::Application> apps;
  for (std::size_t a = 0; a < count; ++a) apps.push_back(workload::generate_app(rng, gen));
  return apps;
}

/// Runs the arrival loop once: place each app, commit it, keep a sliding
/// window of `window` running apps (oldest released first) — the §6.3
/// sequential-arrival shape at steady-state occupancy. Returns all
/// placements, appends wall-clock seconds spent inside place()+commit().
std::vector<place::Placement> run_stream(place::Placer& placer, place::ClusterState& state,
                                         const std::vector<place::Application>& apps,
                                         std::size_t window, double& elapsed_s) {
  std::vector<place::Placement> placements;
  std::deque<std::size_t> running;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const place::Placement p = placer.place(apps[a], state);
    state.commit(apps[a], p);
    placements.push_back(p);
    running.push_back(a);
    if (running.size() > window) {
      const std::size_t old = running.front();
      running.pop_front();
      state.release(apps[old], placements[old]);
    }
  }
  // Drain so the state is reusable.
  for (std::size_t a : running) state.release(apps[a], placements[a]);
  elapsed_s += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return placements;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace choreo;
  using namespace choreo::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::string json_path = json_path_from_args(argc, argv, "tbl_placement_scale");
  BenchJson json("tbl_placement_scale");
  json.config("smoke", smoke ? "true" : "false");

  const std::vector<std::size_t> fleet_sizes =
      smoke ? std::vector<std::size_t>{10, 50, 120}
            : std::vector<std::size_t>{10, 25, 50, 100, 250, 500};
  const std::size_t exhaustive_cap = smoke ? 50 : 100;
  const std::size_t app_count = smoke ? 6 : 16;
  const std::size_t window = 3;
  const double min_timed_s = smoke ? 0.02 : 0.05;

  header(std::string("Placement scale: engine greedy vs exhaustive scan, ") +
         std::to_string(fleet_sizes.front()) + " -> " +
         std::to_string(fleet_sizes.back()) + " VMs" + (smoke ? " [smoke]" : ""));

  const std::vector<place::Application> apps = arrival_stream(42, app_count);

  Table t({"VMs", "index build (ms)", "engine ms/app", "exhaustive ms/app", "speed-up"});
  bool identical_ok = true, feasible_ok = true;
  std::vector<double> per_app_ms;
  double build_ms_max = 0.0, exhaustive_ms_at_cap = 0.0;

  for (std::size_t n : fleet_sizes) {
    Rng rng(n * 1000 + 7);
    const place::ClusterView view = synthetic_fleet(rng, n);

    const auto tb0 = std::chrono::steady_clock::now();
    place::ClusterState state(view);
    const double build_ms =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - tb0).count() * 1e3;
    build_ms_max = std::max(build_ms, build_ms_max);

    place::GreedyPlacer engine_greedy(place::RateModel::Hose);
    std::vector<place::Placement> engine_placements;
    double engine_s = 0.0;
    std::size_t reps = 0;
    try {
      // Repeat the whole arrival loop until the timer has enough signal;
      // every repetition starts from the same (drained) state, so all
      // repetitions produce identical placements.
      while (engine_s < min_timed_s && reps < 20000) {
        engine_placements = run_stream(engine_greedy, state, apps, window, engine_s);
        ++reps;
      }
    } catch (const place::PlacementError&) {
      feasible_ok = false;
      continue;
    }
    const double engine_ms =
        engine_s * 1e3 / (static_cast<double>(reps) * static_cast<double>(app_count));
    per_app_ms.push_back(engine_ms);

    std::string exhaustive_col = "-", speedup_col = "-";
    if (n <= exhaustive_cap) {
      place::ExhaustiveGreedyPlacer oracle(place::RateModel::Hose);
      double oracle_s = 0.0;
      const std::vector<place::Placement> oracle_placements =
          run_stream(oracle, state, apps, window, oracle_s);
      const double oracle_ms = oracle_s * 1e3 / static_cast<double>(app_count);
      for (std::size_t a = 0; a < app_count; ++a) {
        identical_ok &=
            engine_placements[a].machine_of_task == oracle_placements[a].machine_of_task;
      }
      exhaustive_col = fmt(oracle_ms, 3);
      speedup_col = fmt(oracle_ms / engine_ms, 1) + "x";
      if (n == exhaustive_cap) exhaustive_ms_at_cap = oracle_ms;
    }

    t.add_row({fmt(static_cast<double>(n), 0), fmt(build_ms, 2), fmt(engine_ms, 3),
               exhaustive_col, speedup_col});
    json.row()
        .row("vms", static_cast<double>(n))
        .row("index_build_ms", build_ms)
        .row("engine_ms_per_app", engine_ms);
  }
  std::cout << t.to_string();

  check(feasible_ok, "every app in the stream found a feasible placement");
  check(identical_ok,
        "engine-backed greedy places identically to the exhaustive scan (all "
        "common fleet sizes)");

  // Scaling: wall-clock per app from the smallest to the largest fleet must
  // grow clearly slower than the quadratic candidate-count ratio. (The
  // engine's per-app work is near-linear — ranked-list walks plus a heap
  // merge — so this holds with a wide margin; the exhaustive scan would be
  // super-quadratic and fails this by construction at scale.)
  const double grow = per_app_ms.back() / per_app_ms.front();
  const double nmin = static_cast<double>(fleet_sizes.front());
  const double nmax = static_cast<double>(fleet_sizes.back());
  const double quadratic = (nmax / nmin) * (nmax / nmin);
  std::cout << "per-app growth " << fmt(grow, 1) << "x over a " << fmt(nmax / nmin, 0)
            << "x fleet (quadratic would be " << fmt(quadratic, 0) << "x)\n";
  check(per_app_ms.size() == fleet_sizes.size(), "every fleet size was timed");
  check(grow < 0.5 * quadratic,
        "engine placement wall-clock grows sub-quadratically in fleet size");

  // Amortization: building the static indexes once per measurement cycle
  // costs less than ONE exhaustive placement at the largest fleet both ran.
  check(build_ms_max < 20.0 * exhaustive_ms_at_cap,
        "static index build is amortized (cheaper than a handful of exhaustive "
        "placements)");

  if (!json_path.empty()) json.write(json_path);
  return finish();
}

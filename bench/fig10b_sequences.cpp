// Fig 10(b): relative speed-up of Choreo when applications arrive one by one
// (§6.3). Per run: sample 2-4 trace applications ordered by observed start
// time (gaps rescaled so lifetimes overlap), place each on arrival — Choreo
// accounts for the transfers of applications still running (Algorithm 1
// line 13); the baselines place network-blind. All placements are then
// executed on the same cloud with their arrival offsets, and we compare the
// SUM of per-application running times ("we determine the total running time
// of each application, and compare the sum of these running times").
//
// Paper: improvement in 85-90% of runs; mean 22-43%; median 19-51%; max 79%;
// median slowdown of degraded runs only 10%.

#include <cstring>
#include <map>

#include "bench_common.h"
#include "measure/throughput_matrix.h"
#include "place/baselines.h"
#include "place/greedy.h"
#include "place/rate_model.h"
#include "util/rng.h"
#include "workload/trace.h"

namespace {

using namespace choreo;

/// Runs one sequence under one placement algorithm: places apps on arrival
/// with per-algorithm cluster bookkeeping (releasing apps estimated to have
/// finished), executes everything with arrival offsets, and returns the sum
/// of per-app running times. Returns a negative value if placement failed.
double run_sequence(cloud::Cloud& c, const std::vector<cloud::VmId>& vms,
                    const std::vector<place::Application>& apps,
                    const place::ClusterView& view, place::Placer& placer,
                    std::uint64_t exec_epoch) {
  struct Running {
    const place::Application* app;
    place::Placement placement;
    double est_finish;
  };
  place::ClusterState state(view);
  std::vector<Running> running;
  std::vector<place::Placement> placements;
  try {
    for (const place::Application& app : apps) {
      // Free capacity of applications that have (by estimate) finished.
      for (auto it = running.begin(); it != running.end();) {
        if (it->est_finish <= app.arrival_s) {
          state.release(*it->app, it->placement);
          it = running.erase(it);
        } else {
          ++it;
        }
      }
      place::Placement p = placer.place(app, state);
      state.commit(app, p);
      const double est =
          place::estimate_completion_s(app, p, view, place::RateModel::Hose);
      running.push_back(Running{&app, p, app.arrival_s + est});
      placements.push_back(std::move(p));
    }
  } catch (const place::PlacementError&) {
    return -1.0;
  }

  // Execute everything on the cloud with arrival offsets.
  std::vector<cloud::Cloud::Transfer> transfers;
  std::vector<std::pair<std::size_t, std::size_t>> app_of_transfer;  // app, idx
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const place::Application& app = apps[a];
    for (std::size_t i = 0; i < app.task_count(); ++i) {
      for (std::size_t j = 0; j < app.task_count(); ++j) {
        const double b = app.traffic_bytes(i, j);
        if (b <= 0.0) continue;
        transfers.push_back({vms[placements[a].machine_of_task[i]],
                             vms[placements[a].machine_of_task[j]], b, app.arrival_s});
        app_of_transfer.emplace_back(a, transfers.size() - 1);
      }
    }
  }
  if (transfers.empty()) return 0.0;
  const cloud::Cloud::ExecResult result = c.execute(transfers, exec_epoch);

  std::vector<double> finish(apps.size(), 0.0);
  for (const auto& [a, idx] : app_of_transfer) {
    finish[a] = std::max(finish[a], result.completion_s[idx]);
  }
  double total_runtime = 0.0;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    total_runtime += std::max(0.0, finish[a] - apps[a].arrival_s);
  }
  return total_runtime;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace choreo::bench;

  // `--smoke` runs the reduced CI sweep; with fewer runs the distribution
  // estimates are noisier, so the claim thresholds are proportionally
  // relaxed (the full sweep keeps the paper-calibrated bounds).
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t kRuns = smoke ? 10 : 50;
  constexpr std::size_t kVms = 10;

  header("Fig 10(b): applications arriving in sequence (" + std::to_string(kRuns) +
         " runs)" + (smoke ? " [smoke]" : ""));

  const workload::HpCloudTrace trace(123, paper_trace_config());
  Rng rng(777);

  std::map<std::string, std::vector<double>> speedups;
  std::size_t run = 0, attempts = 0;
  while (run < kRuns && attempts < kRuns * 10) {
    ++attempts;
    cloud::Cloud c(cloud::ec2_2013(), 3000 + attempts);
    const auto vms = c.allocate_vms(kVms);

    const std::size_t napps = static_cast<std::size_t>(rng.uniform_int(2, 4));
    const auto apps = trace.sample_sequence(rng, napps, /*mean_gap_s=*/45.0);
    double total_cores = 0.0;
    for (const auto& app : apps) {
      for (double cd : app.cpu_demand) total_cores += cd;
    }
    if (total_cores > 1.3 * kVms * c.machine_cores()) continue;  // releases help

    measure::MeasurementPlan plan;
    plan.train.bursts = 10;
    plan.train.burst_length = 200;
    const place::ClusterView view =
        measure::measured_cluster_view(c, vms, plan, 8000 + attempts);

    place::GreedyPlacer choreo_placer(place::RateModel::Hose);
    place::RandomPlacer random(500 + attempts);
    place::RoundRobinPlacer round_robin;
    place::MinMachinesPlacer min_machines;

    const std::uint64_t exec_epoch = 6000 + attempts;
    const double t_choreo = run_sequence(c, vms, apps, view, choreo_placer, exec_epoch);
    if (t_choreo <= 0.0) continue;
    std::map<std::string, double> t_alt;
    t_alt["random"] = run_sequence(c, vms, apps, view, random, exec_epoch);
    t_alt["round-robin"] = run_sequence(c, vms, apps, view, round_robin, exec_epoch);
    t_alt["min-machines"] = run_sequence(c, vms, apps, view, min_machines, exec_epoch);
    bool ok = true;
    for (const auto& [name, t] : t_alt) ok = ok && t > 0.0;
    if (!ok) continue;
    for (const auto& [name, t] : t_alt) {
      speedups[name].push_back(relative_speedup(t_choreo, t));
    }
    ++run;
  }

  const double min_improved = smoke ? 0.55 : 0.6;
  const double min_mean_pct = smoke ? 5.0 : 8.0;
  const double min_max_pct = smoke ? 25.0 : 35.0;
  for (const auto& [name, values] : speedups) {
    const SpeedupStats s = speedup_stats(values);
    print_speedup_stats(name, s);
    std::cout << "\n";
    check(s.improved_fraction >= min_improved,
          "vs " + name + ": Choreo improves most sequence runs (paper: 85-90%)");
    check(s.mean_pct > min_mean_pct,
          "vs " + name + ": mean sequence gain is substantial (paper: 22-43%)");
  }
  double global_max = 0.0;
  for (const auto& [name, values] : speedups) {
    global_max = std::max(global_max, speedup_stats(values).max_pct);
  }
  std::cout << "max improvement over any alternative: " << fmt(global_max, 1) << "%\n";
  check(global_max > min_max_pct, "max sequence improvement is large (paper: 79%)");
  return finish();
}

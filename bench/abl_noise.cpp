// Ablation (§7.2 future work): "if Choreo's measurements were only 75%
// accurate, as opposed to approximately 90% accurate, would the performance
// improvement also fall by 15%, or only by a few percent?" We inject
// multiplicative Gaussian error into the ground-truth rate matrix before
// placing and report the mean speed-up over Random as a function of the
// measurement error level.

#include <map>

#include "bench_common.h"
#include "measure/throughput_matrix.h"
#include "place/baselines.h"
#include "place/greedy.h"
#include "util/rng.h"
#include "workload/trace.h"

int main() {
  using namespace choreo;
  using namespace choreo::bench;

  header("Ablation: placement gain vs measurement accuracy");

  const std::vector<double> sigmas{0.0, 0.1, 0.25, 0.5, 1.0};
  constexpr std::size_t kRuns = 25;
  const workload::HpCloudTrace trace(99, paper_trace_config());

  Table t({"measurement error sigma", "mean speed-up vs random", "runs improved"});
  std::map<double, double> mean_gain;
  for (double sigma : sigmas) {
    Rng rng(17);
    std::vector<double> speedups;
    std::size_t done = 0, attempts = 0;
    while (done < kRuns && attempts < kRuns * 10) {
      ++attempts;
      cloud::Cloud c(cloud::ec2_2013(), 7000 + attempts);  // same fleet per sigma
      const auto vms = c.allocate_vms(10);
      const auto apps =
          trace.sample_batch(rng, static_cast<std::size_t>(rng.uniform_int(1, 3)));
      const place::Application combined = place::combine(apps);
      double cores = 0.0;
      for (double cd : combined.cpu_demand) cores += cd;
      if (cores > 0.85 * 40.0) continue;

      place::ClusterView view = measure::true_cluster_view(c, vms, attempts);
      Rng noise(911 + attempts);
      for (std::size_t i = 0; i < vms.size(); ++i) {
        for (std::size_t j = 0; j < vms.size(); ++j) {
          if (i == j) continue;
          const double factor = std::max(0.05, 1.0 + noise.normal(0.0, sigma));
          view.rate_bps(i, j) *= factor;
        }
      }
      place::ClusterState state(view);
      place::GreedyPlacer choreo_placer(place::RateModel::Hose);
      place::RandomPlacer random(attempts);
      try {
        const double t0 = execute_placement(
            c, vms, combined, choreo_placer.place(combined, state), attempts);
        const double tr = execute_placement(c, vms, combined,
                                            random.place(combined, state), attempts);
        if (t0 <= 0 || tr <= 0) continue;
        speedups.push_back(relative_speedup(t0, tr));
        ++done;
      } catch (const place::PlacementError&) {
        continue;
      }
    }
    const SpeedupStats s = speedup_stats(speedups);
    mean_gain[sigma] = s.mean_pct;
    t.add_row({fmt(sigma, 2), fmt(s.mean_pct, 1) + "%", fmt_pct(s.improved_fraction)});
  }
  std::cout << t.to_string();

  // The paper's conjecture: moderate error should cost only a few percent.
  check(mean_gain.at(0.25) > mean_gain.at(0.0) - 10.0,
        "25% measurement error costs only a few points of gain");
  check(mean_gain.at(0.0) > mean_gain.at(1.0) - 1e-9,
        "gain degrades monotonically-ish toward heavy noise");
  check(mean_gain.at(0.0) > 3.0, "noise-free placement shows real gains");
  return finish();
}

// Serving-plane QPS / tail latency: the epoch-swapped PlacementService under
// concurrent readers with continuous background view churn, plus the batched
// joint planner vs the one-at-a-time greedy.
//
// Claims enforced:
//   1. Correctness under churn: every query returns a complete placement and
//      a snapshot epoch that existed; per-thread scratch arenas refresh at
//      most once per published epoch.
//   2. Read scaling: with >= 8 hardware threads, 4 reader threads sustain
//      >= 3x the placements/sec of 1 thread at 100 VMs (readers never lock;
//      the only shared write is the atomic snapshot pointer). Skipped on
//      smaller hosts and in --smoke (CI runners shard cores).
//   3. Batched quality: planning K queued applications jointly (the fig10a
//      combine mechanism applied online) never degrades the joint makespan
//      vs placing them one at a time, and stays within the fig09 band of the
//      exact optimum on instances small enough to enumerate; the batch
//      planner's §5.2 ILP route is exercised on a warm-start-tractable
//      instance.
//
// `--smoke` shrinks the sweep for CI; `--json[=PATH]` additionally emits the
// machine-readable BENCH_tbl_serve_qps.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "bench_common.h"
#include "obs/metrics.h"
#include "place/greedy.h"
#include "place/ilp.h"
#include "place/rate_model.h"
#include "serve/batch.h"
#include "serve/service.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace choreo;
using units::mbps;

place::ClusterView synthetic_fleet(Rng& rng, std::size_t machines) {
  place::ClusterView view;
  view.rate_bps = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j) {
        view.rate_bps(i, j) = rng.chance(0.2) ? rng.uniform(mbps(300), mbps(900))
                                              : rng.uniform(mbps(900), mbps(1100));
      }
    }
  }
  view.cross_traffic = DoubleMatrix(machines, machines, 0.0);
  for (std::size_t i = 0; i < machines; ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      if (i != j && rng.chance(0.2)) view.cross_traffic(i, j) = rng.uniform(0.5, 3.0);
    }
  }
  view.colocation_group.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) view.colocation_group[m] = static_cast<int>(m);
  view.cores.assign(machines, 8.0);
  return view;
}

std::vector<place::Application> query_apps(std::uint64_t seed, std::size_t count,
                                           std::size_t min_tasks, std::size_t max_tasks) {
  Rng rng(seed);
  workload::GeneratorConfig gen;
  gen.min_tasks = min_tasks;
  gen.max_tasks = max_tasks;
  gen.max_cpu = 1.0;
  std::vector<place::Application> apps;
  for (std::size_t a = 0; a < count; ++a) apps.push_back(workload::generate_app(rng, gen));
  return apps;
}

struct QpsResult {
  double qps = 0.0;
  double p50_us = 0.0;  ///< from the obs histogram (bucket midpoint)
  double p99_us = 0.0;
  double exact_p50_us = 0.0;  ///< from the full sorted latency vector
  double exact_p99_us = 0.0;
  std::uint64_t refreshes = 0;   ///< scratch rebuilds across all threads
  std::uint64_t publishes = 0;   ///< view swaps the churn thread got in
  bool complete = true;          ///< every query returned a full placement
  bool epochs_valid = true;      ///< every recorded epoch was 1..last
  bool hist_within_bucket = true;  ///< hist p50/p99 within one bucket of exact
};

/// The exact quantile under the histogram's rank rule: the ceil(q*n)-th
/// smallest sample. (util::percentile interpolates between order statistics,
/// a different rule — the one-bucket resolution bound only holds rank
/// against rank.)
double exact_rank_quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(q * static_cast<double>(values.size()));
  const std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return values[std::min(idx, values.size() - 1)];
}

/// A histogram quantile is "within one bucket" of the exact sorted-sample
/// quantile when the two values land in the same or adjacent log buckets —
/// the resolution bound Hist documents (pinned again in test_obs_registry).
bool within_one_bucket(double hist_value, double exact_value) {
  const std::size_t bh = obs::Hist::bucket_of(hist_value);
  const std::size_t be = obs::Hist::bucket_of(exact_value);
  return bh <= be + 1 && be <= bh + 1;
}

/// Runs `threads` reader threads for `queries_per_thread` placements each
/// against one service, while (optionally) a churn thread republishes
/// alternative views of the same fleet as fast as it can.
QpsResult run_qps(const place::ClusterView& base,
                  const std::vector<place::ClusterView>& churn_views,
                  const std::vector<place::Application>& apps, std::size_t threads,
                  std::size_t queries_per_thread, bool churn) {
  serve::PlacementService service(base, place::RateModel::Hose);
  QpsResult res;

  // Per-reader-shard latency histogram: the p50/p99 the table reports come
  // from here, not from sorting the raw vector (which is kept only to pin
  // the histogram's one-bucket resolution bound).
  obs::Registry registry(static_cast<std::uint32_t>(threads));
  const obs::Hist lat_hist = registry.histogram("serve.latency_us");

  std::atomic<bool> stop{false};
  std::thread publisher;
  std::atomic<std::uint64_t> publishes{0};
  if (churn) {
    publisher = std::thread([&] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        service.publish_view(churn_views[i % churn_views.size()]);
        publishes.fetch_add(1, std::memory_order_relaxed);
        ++i;
        std::this_thread::yield();
      }
    });
  }

  std::vector<std::vector<double>> lat_us(threads);
  std::vector<std::uint64_t> refreshes(threads, 0);
  std::atomic<int> incomplete{0};
  std::atomic<int> bad_epoch{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  readers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      serve::Scratch scratch;
      lat_us[t].reserve(queries_per_thread);
      for (std::size_t q = 0; q < queries_per_thread; ++q) {
        const place::Application& app = apps[(t + q * threads) % apps.size()];
        const auto q0 = std::chrono::steady_clock::now();
        const serve::PlacementService::Result r = service.place(app, scratch);
        const auto q1 = std::chrono::steady_clock::now();
        const double us = std::chrono::duration<double, std::micro>(q1 - q0).count();
        lat_us[t].push_back(us);
        lat_hist.observe(us, static_cast<std::uint32_t>(t));
        if (!r.placement.complete()) incomplete.fetch_add(1, std::memory_order_relaxed);
        if (r.epoch == 0) bad_epoch.fetch_add(1, std::memory_order_relaxed);
      }
      refreshes[t] = scratch.refreshes();
    });
  }
  for (std::thread& th : readers) th.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  stop.store(true);
  if (publisher.joinable()) publisher.join();

  std::vector<double> all;
  for (const auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  res.qps = static_cast<double>(threads * queries_per_thread) / wall_s;
  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricsSnapshot::HistValue* hv = snap.find_hist("serve.latency_us");
  res.p50_us = hv ? hv->p50 : 0.0;
  res.p99_us = hv ? hv->p99 : 0.0;
  res.exact_p50_us = exact_rank_quantile(all, 0.50);
  res.exact_p99_us = exact_rank_quantile(all, 0.99);
  res.hist_within_bucket = hv != nullptr && hv->count == all.size() &&
                           within_one_bucket(res.p50_us, res.exact_p50_us) &&
                           within_one_bucket(res.p99_us, res.exact_p99_us);
  for (std::uint64_t r : refreshes) res.refreshes += r;
  res.publishes = publishes.load();
  res.complete = incomplete.load() == 0;
  res.epochs_valid = bad_epoch.load() == 0;
  // A scratch arena refreshes at most once per published epoch it observed,
  // plus the initial build.
  const std::uint64_t max_refreshes_per_thread = res.publishes + 1;
  for (std::uint64_t r : refreshes) {
    if (r > max_refreshes_per_thread) res.epochs_valid = false;
  }
  return res;
}

/// Concatenates per-app placements into a placement of combine(apps) — the
/// sequential baseline evaluated on the joint objective.
place::Placement concat_placements(const std::vector<place::Placement>& parts) {
  place::Placement joint;
  for (const place::Placement& p : parts) {
    joint.machine_of_task.insert(joint.machine_of_task.end(), p.machine_of_task.begin(),
                                 p.machine_of_task.end());
  }
  return joint;
}

struct QualityResult {
  double sequential_s = 0.0;  ///< joint makespan of one-at-a-time placements
  double batched_s = 0.0;     ///< joint makespan of the batched plan
  double optimal_s = 0.0;     ///< exact optimum (brute-force enumeration)
};

/// A two-task app with one or two cross-task transfers. CPU demand 1.5 on
/// 2-core machines forces one task per machine, so every transfer crosses
/// the network and the instance is never degenerate (a colocated batch
/// would have makespan 0 and compare nothing).
place::Application tiny_app(Rng& rng) {
  place::Application app;
  app.cpu_demand = {1.5, 1.5};
  app.traffic_bytes = DoubleMatrix(2, 2, 0.0);
  app.traffic_bytes(0, 1) = rng.uniform(1e8, 1e9);
  if (rng.chance(0.5)) app.traffic_bytes(1, 0) = rng.uniform(1e8, 1e9);
  return app;
}

QualityResult run_quality(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t machines = 4 + seed % 2;
  place::ClusterView view = synthetic_fleet(rng, machines);
  view.cores.assign(machines, 2.0);
  // Two 2-task apps: 4-task joint instances the Appendix ILP solves exactly
  // in well under a second (6-task joints already blow up branch-and-bound).
  Rng arng(seed * 131 + 17);
  const std::vector<place::Application> apps = {tiny_app(arng), tiny_app(arng)};
  std::vector<const place::Application*> ptrs;
  for (const place::Application& a : apps) ptrs.push_back(&a);
  const place::Application joint_app = place::combine(apps);

  QualityResult res;

  // Sequential: place one at a time, committing in between (the historical
  // retry drain), then score the concatenation on the joint objective.
  {
    place::ClusterState state(view);
    place::GreedyPlacer greedy(place::RateModel::Hose);
    std::vector<place::Placement> parts;
    for (const place::Application& a : apps) {
      parts.push_back(greedy.place(a, state));
      state.commit(a, parts.back());
    }
    res.sequential_s = place::estimate_completion_s(joint_app, concat_placements(parts),
                                                    view, place::RateModel::Hose);
  }

  // Batched: one joint greedy placement over the union of transfers.
  {
    place::ClusterState state(view);
    serve::BatchArrivalOptions opts;
    opts.enabled = true;
    opts.max_batch = apps.size();
    const serve::BatchPlan plan =
        serve::plan_batch(ptrs, state, place::RateModel::Hose, opts);
    res.batched_s = place::estimate_completion_s(joint_app, plan.joint, view,
                                                 place::RateModel::Hose);
  }

  // Exact optimum by enumeration — the oracle fig09 uses (the Appendix ILP
  // proves optimality only on instances where colocation is allowed; on
  // these CPU-forced-spread instances its branch-and-bound blows up, so the
  // ILP path is exercised separately below on a tractable instance).
  {
    place::ClusterState state(view);
    place::BruteForcePlacer optimal(place::RateModel::Hose);
    const place::Placement p = optimal.place(joint_app, state);
    res.optimal_s =
        place::estimate_completion_s(joint_app, p, view, place::RateModel::Hose);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace choreo;
  using namespace choreo::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::string json_path = json_path_from_args(argc, argv, "tbl_serve_qps");
  BenchJson json("tbl_serve_qps");
  json.config("smoke", smoke ? "true" : "false");
  json.config("hardware_concurrency",
              static_cast<double>(std::thread::hardware_concurrency()));

  const std::vector<std::size_t> fleet_sizes =
      smoke ? std::vector<std::size_t>{50, 100} : std::vector<std::size_t>{100, 250, 500};
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};

  header(std::string("Serving plane: placement QPS under churn, ") +
         std::to_string(fleet_sizes.front()) + " -> " +
         std::to_string(fleet_sizes.back()) + " VMs" + (smoke ? " [smoke]" : ""));

  const std::vector<place::Application> apps = query_apps(42, 64, 6, 10);

  Table t({"VMs", "threads", "QPS", "p50 (us)", "p99 (us)", "swaps", "refreshes"});
  bool complete_ok = true, epoch_ok = true, hist_ok = true;
  double qps_1t_100 = 0.0, qps_4t_100 = 0.0;

  for (std::size_t n : fleet_sizes) {
    Rng rng(n * 1000 + 7);
    const place::ClusterView base = synthetic_fleet(rng, n);
    std::vector<place::ClusterView> churn_views;
    for (std::uint64_t s = 0; s < 4; ++s) {
      Rng crng(n * 1000 + 11 + s);
      churn_views.push_back(synthetic_fleet(crng, n));
    }
    // Enough queries per thread for stable percentiles, fewer at the large
    // fleets where each placement costs more.
    const std::size_t queries =
        smoke ? 20 : (n >= 500 ? 50 : (n >= 250 ? 100 : 300));

    for (std::size_t threads : thread_counts) {
      const QpsResult r = run_qps(base, churn_views, apps, threads, queries,
                                  /*churn=*/true);
      complete_ok &= r.complete;
      epoch_ok &= r.epochs_valid;
      hist_ok &= r.hist_within_bucket;
      if (n == 100 && threads == 1) qps_1t_100 = r.qps;
      if (n == 100 && threads == 4) qps_4t_100 = r.qps;
      t.add_row({fmt(static_cast<double>(n), 0), fmt(static_cast<double>(threads), 0),
                 fmt(r.qps, 0), fmt(r.p50_us, 1), fmt(r.p99_us, 1),
                 fmt(static_cast<double>(r.publishes), 0),
                 fmt(static_cast<double>(r.refreshes), 0)});
      json.row()
          .row("section", "qps")
          .row("vms", static_cast<double>(n))
          .row("threads", static_cast<double>(threads))
          .row("qps", r.qps)
          .row("p50_us", r.p50_us)
          .row("p99_us", r.p99_us)
          .row("exact_p50_us", r.exact_p50_us)
          .row("exact_p99_us", r.exact_p99_us)
          .row("view_swaps", static_cast<double>(r.publishes))
          .row("scratch_refreshes", static_cast<double>(r.refreshes));
    }
  }
  std::cout << t.to_string();

  check(complete_ok, "every query under churn returned a complete placement");
  check(epoch_ok,
        "snapshot epochs are valid and scratch arenas refresh at most once per "
        "published epoch");
  check(hist_ok,
        "obs histogram p50/p99 land within one log bucket of the exact "
        "sorted-sample quantiles at every (fleet, threads) point");

  if (!smoke && std::thread::hardware_concurrency() >= 8) {
    std::cout << "4-thread vs 1-thread QPS at 100 VMs: " << fmt(qps_4t_100 / qps_1t_100, 2)
              << "x\n";
    check(qps_4t_100 >= 3.0 * qps_1t_100,
          "4 reader threads sustain >= 3x the single-thread placement rate at "
          "100 VMs (lock-free snapshot reads)");
  } else {
    std::cout << "  [SKIP] read-scaling check needs >= 8 hardware threads and a "
                 "full (non-smoke) run\n";
  }

  header(std::string("Batched joint placement vs sequential greedy vs optimal") +
         (smoke ? " [smoke]" : ""));
  const std::size_t quality_seeds = smoke ? 6 : 24;
  double seq_total = 0.0, batch_total = 0.0;
  std::vector<double> vs_optimal;
  for (std::uint64_t s = 0; s < quality_seeds; ++s) {
    const QualityResult q = run_quality(s);
    seq_total += q.sequential_s;
    batch_total += q.batched_s;
    if (q.optimal_s > 0.0) vs_optimal.push_back(q.batched_s / q.optimal_s);
    json.row()
        .row("section", "quality")
        .row("seed", static_cast<double>(s))
        .row("sequential_s", q.sequential_s)
        .row("batched_s", q.batched_s)
        .row("optimal_s", q.optimal_s);
  }
  Table q({"plan", "total joint makespan (s)"});
  q.add_row({"sequential greedy", fmt(seq_total, 2)});
  q.add_row({"batched greedy", fmt(batch_total, 2)});
  std::cout << q.to_string();
  const double vs_opt_median = vs_optimal.empty() ? 0.0 : median(vs_optimal);
  std::cout << "median batched/optimal makespan ratio: " << fmt(vs_opt_median, 3)
            << " (" << vs_optimal.size() << "/" << quality_seeds
            << " non-degenerate instances)\n";

  check(batch_total <= seq_total * 1.0001,
        "batched joint planning never degrades total joint makespan vs "
        "one-at-a-time greedy");
  check(!vs_optimal.empty() && vs_opt_median <= 1.25,
        "batched greedy stays within the fig09 band (median <= 1.25x the exact "
        "optimum) on small instances");

  // The §5.2 ILP path of the batch planner, on an instance where colocation
  // is allowed (branch-and-bound proves optimality from the greedy warm
  // start quickly there; CPU-forced-spread instances blow it up, which is
  // the paper's own reason for preferring the greedy).
  {
    Rng rng(3);
    const std::size_t machines = 4;
    place::ClusterView view = synthetic_fleet(rng, machines);
    view.cores.assign(machines, 2.0);
    Rng arng(991);
    std::vector<place::Application> ilp_apps = {tiny_app(arng), tiny_app(arng)};
    for (place::Application& a : ilp_apps) a.cpu_demand = {1.0, 1.0};
    std::vector<const place::Application*> ptrs;
    for (const place::Application& a : ilp_apps) ptrs.push_back(&a);
    place::ClusterState state(view);
    serve::BatchArrivalOptions opts;
    opts.enabled = true;
    opts.max_batch = ilp_apps.size();
    opts.ilp_task_limit = 4;
    const serve::BatchPlan plan =
        serve::plan_batch(ptrs, state, place::RateModel::Hose, opts);
    check(plan.used_ilp && plan.joint.complete() &&
              plan.placements.size() == ilp_apps.size(),
          "the batch planner routes small joint instances through the ILP and "
          "splits a complete placement per app");
  }

  // Throughput of the batch planner itself: planning K apps jointly vs K
  // separate placements at 100 VMs (reported, not gated — the win is
  // quality; the joint app is bigger so per-app cost can go either way).
  {
    Rng rng(424242);
    const place::ClusterView view = synthetic_fleet(rng, 100);
    place::ClusterState state(view);
    const std::vector<place::Application> batch_apps = query_apps(7, 4, 6, 8);
    std::vector<const place::Application*> ptrs;
    for (const place::Application& a : batch_apps) ptrs.push_back(&a);
    serve::BatchArrivalOptions opts;
    opts.enabled = true;
    opts.max_batch = batch_apps.size();
    place::GreedyPlacer greedy(place::RateModel::Hose);

    const std::size_t reps = smoke ? 5 : 30;
    const auto tb = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      const serve::BatchPlan plan =
          serve::plan_batch(ptrs, state, place::RateModel::Hose, opts);
      if (plan.placements.size() != batch_apps.size()) complete_ok = false;
    }
    const double batch_ms =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - tb).count() *
        1e3 / static_cast<double>(reps);
    const auto ts = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      for (const place::Application& a : batch_apps) {
        if (!greedy.place(a, state).complete()) complete_ok = false;
      }
    }
    const double seq_ms =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - ts).count() *
        1e3 / static_cast<double>(reps);
    std::cout << "planning 4 apps at 100 VMs: batched " << fmt(batch_ms, 2)
              << " ms, sequential " << fmt(seq_ms, 2) << " ms\n";
    json.row()
        .row("section", "throughput")
        .row("batched_ms", batch_ms)
        .row("sequential_ms", seq_ms);
  }

  if (!json_path.empty()) json.write(json_path);
  return finish();
}

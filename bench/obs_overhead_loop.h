#pragma once

// The instrumented hot loop tbl_obs_overhead times. It lives in a header
// with *internal* linkage on purpose: the bench compiles it twice — once in
// the main TU (macros live) and once in obs_overhead_disabled_tu.cpp built
// with -DCHOREO_OBS_DISABLED (macros expand to nothing). Internal linkage
// keeps the two differently-expanded copies from colliding under the ODR.
//
// Each iteration does the work of a typical instrumentation site — one
// span, one sharded counter add, one histogram sample, one span arg — plus
// a cheap integer mix whose final value every path must reproduce exactly
// (the checksum gate: observability must not perturb the computation).

#include <cstddef>
#include <cstdint>

#include "obs/observer.h"

namespace {

inline std::uint64_t obs_macro_loop(const choreo::obs::Observer& obsv,
                                    const choreo::obs::Counter& ctr,
                                    const choreo::obs::Hist& hist,
                                    std::size_t iters) {
  // All three are unused when CHOREO_OBS_DISABLED erases the macro bodies.
  (void)obsv;
  (void)ctr;
  (void)hist;
  std::uint64_t acc = 1469598103934665603ull;  // FNV offset basis
  for (std::size_t i = 0; i < iters; ++i) {
    CHOREO_OBS_SPAN(span, obsv, "bench.op", "bench");
    CHOREO_OBS_ADD(ctr, obsv, (i & 7) + 1);
    CHOREO_OBS_OBSERVE(hist, obsv, static_cast<double>((i & 1023) + 1));
    span.arg("work", static_cast<double>(i & 15));
    acc = (acc ^ (i * 0x9e3779b97f4a7c15ull)) * 1099511628211ull;
  }
  return acc;
}

}  // namespace

#include "place/ilp.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "place/greedy.h"

namespace choreo::place {

Placement IlpPlacer::place(const Application& app, const ClusterState& state) {
  app.validate();
  const ClusterView& view = state.view();
  const std::size_t J = app.task_count();
  const std::size_t M = view.machine_count();
  const DoubleMatrix& B = app.traffic_bytes;

  lp::Model model;

  // X_im: task i on machine m.
  std::vector<std::vector<std::size_t>> X(J, std::vector<std::size_t>(M));
  for (std::size_t i = 0; i < J; ++i) {
    for (std::size_t m = 0; m < M; ++m) {
      X[i][m] = model.add_binary(0.0, "x_" + std::to_string(i) + "_" + std::to_string(m));
    }
  }
  // z: the makespan (seconds).
  const std::size_t Z = model.add_variable(1.0, 0.0, lp::kInf, false, "z");

  // Pairs with traffic in either direction get linking variables.
  struct Pair {
    std::size_t i, j;                       // i < j
    std::vector<std::vector<std::size_t>> z;  // z[m][n]: i on m, j on n
  };
  std::vector<Pair> pairs;
  for (std::size_t i = 0; i < J; ++i) {
    for (std::size_t j = i + 1; j < J; ++j) {
      if (B(i, j) <= 0.0 && B(j, i) <= 0.0) continue;
      Pair p{i, j, std::vector<std::vector<std::size_t>>(M, std::vector<std::size_t>(M))};
      for (std::size_t m = 0; m < M; ++m) {
        for (std::size_t n = 0; n < M; ++n) {
          p.z[m][n] = model.add_binary(0.0);
        }
      }
      pairs.push_back(std::move(p));
    }
  }

  // Each task on exactly one machine.
  for (std::size_t i = 0; i < J; ++i) {
    std::vector<lp::Term> terms;
    for (std::size_t m = 0; m < M; ++m) terms.push_back({X[i][m], 1.0});
    model.add_constraint(std::move(terms), lp::Sense::Equal, 1.0);
  }
  // Application constraints (tech report [20] formulation: all expressible
  // as linear rows over X).
  for (const auto& [task, machine] : app.constraints.pinned) {
    CHOREO_REQUIRE_MSG(machine < M, "pinned machine out of range");
    model.add_constraint({{X[task][machine], 1.0}}, lp::Sense::Equal, 1.0);
  }
  for (const auto& [a, b] : app.constraints.separate) {
    for (std::size_t m = 0; m < M; ++m) {
      for (std::size_t n = 0; n < M; ++n) {
        if (m == n || view.colocated(m, n)) {
          model.add_constraint({{X[a][m], 1.0}, {X[b][n], 1.0}}, lp::Sense::LessEq, 1.0);
        }
      }
    }
  }
  for (const PlacementConstraints::LatencyBound& l : app.constraints.latency) {
    CHOREO_REQUIRE_MSG(!view.hops.empty(),
                       "latency constraints need ClusterView::hops");
    for (std::size_t m = 0; m < M; ++m) {
      for (std::size_t n = 0; n < M; ++n) {
        const double hops = (m == n) ? 0.0 : view.hops(m, n);
        if (hops > static_cast<double>(l.max_hops)) {
          model.add_constraint({{X[l.a][m], 1.0}, {X[l.b][n], 1.0}}, lp::Sense::LessEq,
                               1.0);
        }
      }
    }
  }
  // CPU capacities.
  for (std::size_t m = 0; m < M; ++m) {
    std::vector<lp::Term> terms;
    for (std::size_t i = 0; i < J; ++i) terms.push_back({X[i][m], app.cpu_demand[i]});
    model.add_constraint(std::move(terms), lp::Sense::LessEq, state.free_cores(m));
  }
  // Linking: z_imjn <= X_im, z_imjn <= X_jn, and sum over (m,n) = 1.
  for (const Pair& p : pairs) {
    std::vector<lp::Term> sum_terms;
    for (std::size_t m = 0; m < M; ++m) {
      for (std::size_t n = 0; n < M; ++n) {
        model.add_constraint({{p.z[m][n], 1.0}, {X[p.i][m], -1.0}}, lp::Sense::LessEq, 0.0);
        model.add_constraint({{p.z[m][n], 1.0}, {X[p.j][n], -1.0}}, lp::Sense::LessEq, 0.0);
        sum_terms.push_back({p.z[m][n], 1.0});
      }
    }
    model.add_constraint(std::move(sum_terms), lp::Sense::Equal, 1.0);
  }

  // Bottleneck drain-time rows: z >= sum(bytes over the bottleneck)/rate —
  // the S matrix of the Appendix. The i<j convention means the transfer
  // i->j (B_ij bytes) rides pair variable z[m][n] on path (m,n), while j->i
  // (B_ji) rides it on (n,m).
  //
  // Both models get one row per machine path (a path never drains faster
  // than its measured single-connection rate); the hose model adds one row
  // per source machine aggregating everything that leaves it for another
  // host (S_{mi,mj} = 1). These rows mirror estimate_completion_s exactly,
  // so the ILP optimizes the same objective the evaluator scores.
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t n = 0; n < M; ++n) {
      if (m == n) continue;
      std::vector<lp::Term> terms{{Z, 1.0}};
      bool any = false;
      const double rate = view.rate_bps(m, n);
      for (const Pair& p : pairs) {
        if (B(p.i, p.j) > 0.0) {
          terms.push_back({p.z[m][n], -B(p.i, p.j) * 8.0 / rate});
          any = true;
        }
        if (B(p.j, p.i) > 0.0) {
          terms.push_back({p.z[n][m], -B(p.j, p.i) * 8.0 / rate});
          any = true;
        }
      }
      if (any) model.add_constraint(std::move(terms), lp::Sense::GreaterEq, 0.0);
    }
  }
  if (model_ == RateModel::Hose) {
    for (std::size_t m = 0; m < M; ++m) {
      std::vector<lp::Term> terms{{Z, 1.0}};
      bool any = false;
      const double hose = view.hose_bps(m);
      for (std::size_t n = 0; n < M; ++n) {
        if (m == n || view.colocated(m, n)) continue;
        for (const Pair& p : pairs) {
          if (B(p.i, p.j) > 0.0) {
            terms.push_back({p.z[m][n], -B(p.i, p.j) * 8.0 / hose});
            any = true;
          }
          if (B(p.j, p.i) > 0.0) {
            terms.push_back({p.z[n][m], -B(p.j, p.i) * 8.0 / hose});
            any = true;
          }
        }
      }
      if (any) model.add_constraint(std::move(terms), lp::Sense::GreaterEq, 0.0);
    }
  }

  // Warm start from the greedy placement.
  lp::IlpOptions opts = options_;
  try {
    GreedyPlacer greedy(model_);
    const Placement warm = greedy.place(app, state);
    opts.warm_start_objective =
        estimate_completion_s(app, warm, view, model_) + 1e-9;
  } catch (const PlacementError&) {
    // No greedy warm start; branch-and-bound runs cold.
  }

  const lp::Solution sol = lp::solve_ilp(model, opts);
  last_nodes_ = sol.iterations;
  last_status_ = sol.status;
  if (sol.status != lp::SolveStatus::Optimal || sol.values.empty()) {
    // Budget exhausted without a proven optimum: fall back to greedy, which
    // is exactly the paper's posture ("solving ILPs can be slow in
    // practice", §2.3).
    GreedyPlacer greedy(model_);
    return greedy.place(app, state);
  }

  Placement placement;
  placement.machine_of_task.assign(J, kUnplaced);
  for (std::size_t i = 0; i < J; ++i) {
    for (std::size_t m = 0; m < M; ++m) {
      if (sol.values[X[i][m]] > 0.5) {
        placement.machine_of_task[i] = m;
        break;
      }
    }
    CHOREO_ASSERT(placement.machine_of_task[i] != kUnplaced);
  }
  return placement;
}

Placement BruteForcePlacer::place(const Application& app, const ClusterState& state) {
  app.validate();
  const ClusterView& view = state.view();
  const std::size_t J = app.task_count();
  const std::size_t M = view.machine_count();

  double combos = 1.0;
  for (std::size_t i = 0; i < J; ++i) combos *= static_cast<double>(M);
  CHOREO_REQUIRE_MSG(combos <= static_cast<double>(max_assignments_),
                     "brute force would enumerate " << combos << " assignments");

  std::vector<double> free_cores(M);
  for (std::size_t m = 0; m < M; ++m) free_cores[m] = state.free_cores(m);

  Placement current;
  current.machine_of_task.assign(J, kUnplaced);
  Placement best;
  double best_time = std::numeric_limits<double>::infinity();

  // Depth-first over tasks with CPU pruning.
  const std::function<void(std::size_t)> recurse = [&](std::size_t task) {
    if (task == J) {
      const double t = estimate_completion_s(app, current, view, model_);
      if (t < best_time) {
        best_time = t;
        best = current;
      }
      return;
    }
    for (std::size_t m = 0; m < M; ++m) {
      if (free_cores[m] + 1e-9 < app.cpu_demand[task]) continue;
      if (!assignment_allowed(app.constraints, view, current, task, m)) continue;
      current.machine_of_task[task] = m;
      free_cores[m] -= app.cpu_demand[task];
      recurse(task + 1);
      free_cores[m] += app.cpu_demand[task];
      current.machine_of_task[task] = kUnplaced;
    }
  };
  recurse(0);

  if (!best.complete()) {
    throw PlacementError("brute force: no CPU-feasible assignment exists");
  }
  last_objective_ = best_time;
  return best;
}

}  // namespace choreo::place

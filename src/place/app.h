#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "place/constraints.h"
#include "util/matrix.h"

namespace choreo::place {

/// A distributed application to place: per-task CPU demands and the §2.1
/// traffic matrix ("each entry B_ij is proportional to the number of bytes
/// sent from task i to task j").
struct Application {
  std::string name;
  /// CPU demand per task, in cores (the paper models 0.5 to 4).
  std::vector<double> cpu_demand;
  /// B[i][j] = bytes task i sends to task j over the application's lifetime.
  DoubleMatrix traffic_bytes;
  /// Arrival time for sequence experiments (§6.3); 0 for batch placement.
  double arrival_s = 0.0;
  /// Optional fault-tolerance / latency / pinning requirements (Conclusion,
  /// tech report [20]). Honoured by the network-aware placers.
  PlacementConstraints constraints;

  std::size_t task_count() const { return cpu_demand.size(); }

  void validate() const {
    CHOREO_REQUIRE(!cpu_demand.empty());
    CHOREO_REQUIRE(traffic_bytes.rows() == cpu_demand.size());
    CHOREO_REQUIRE(traffic_bytes.cols() == cpu_demand.size());
    for (double c : cpu_demand) CHOREO_REQUIRE(c > 0.0);
    for (std::size_t i = 0; i < traffic_bytes.rows(); ++i) {
      for (std::size_t j = 0; j < traffic_bytes.cols(); ++j) {
        CHOREO_REQUIRE(traffic_bytes(i, j) >= 0.0);
        CHOREO_REQUIRE(i != j || traffic_bytes(i, j) == 0.0);
      }
    }
    constraints.validate(task_count());
  }
};

/// Merges applications into one (block-diagonal traffic matrix, concatenated
/// CPU vectors) — §6.2 "we randomly chose between one and three applications
/// and made one combined application out of them, combining each
/// application's traffic demand matrix and CPU vector in the obvious way".
Application combine(const std::vector<Application>& apps);

/// One directed transfer of an application, used by placement algorithms.
struct TransferDemand {
  std::size_t src_task = 0;
  std::size_t dst_task = 0;
  double bytes = 0.0;
};

/// All non-zero transfers of `app`, sorted by descending byte count
/// (Algorithm 1 line 1), ties broken by (src, dst) for determinism.
std::vector<TransferDemand> sorted_transfers(const Application& app);

}  // namespace choreo::place

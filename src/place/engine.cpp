#include "place/engine.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace choreo::place {

PlacementEngine::PlacementEngine(ClusterView view)
    : view_(std::move(view)),
      used_cores_(view_.machine_count(), 0.0),
      on_path_(view_.machine_count() * view_.machine_count(), 0.0),
      out_of_(view_.machine_count(), 0.0) {
  view_.validate();
  rebuild_static();
}

void PlacementEngine::rebuild_static() {
  const std::size_t M = machine_count();
  hose_.resize(M);
  cross_out_.resize(M);
  for (std::size_t m = 0; m < M; ++m) {
    // Same code paths the uncached transfer_rate_bps runs — cached values
    // are bit-identical by construction.
    hose_[m] = view_.hose_bps(m);
    cross_out_[m] = hose_cross_out(view_, m);
  }

  // Static rate ceilings. Placed-transfer counts are >= 0 and only divide a
  // rate down, so every model is bounded by its zero-load value: R for the
  // vswitch and hose branches (the min caps the hose at R), and the
  // literally computed R*(c+1)/(c+1) for the pipe branch, whose roundings
  // can exceed R by an ulp — take the max so the bound is exact, not
  // merely mathematical.
  ub_ = DoubleMatrix(M, M, 0.0);
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t n = 0; n < M; ++n) {
      if (m == n) {
        ub_(m, n) = kIntraMachineRate;
      } else if (view_.colocated(m, n)) {
        ub_(m, n) = view_.rate_bps(m, n);
      } else {
        // The cross-traffic share is fetched once and the path capacity
        // expanded inline as R*(c+1) — the literal expression
        // ClusterView::path_capacity_bps computes from the same c, so the
        // bound is the bit-identical double with one matrix read instead of
        // two.
        const double c = view_.cross_traffic.empty() ? 0.0 : view_.cross_traffic(m, n);
        const double r = view_.rate_bps(m, n);
        ub_(m, n) = std::max(r, residual::pipe_rate_bps(r * (c + 1.0), c, 0.0));
      }
    }
  }

  // Ranked candidate lists: for each machine, peers ordered by descending
  // static upper bound, ties toward the lower index (the exhaustive scan's
  // tie-break direction). Peer and bound live side by side (SoA rows of
  // RankEntry) so the best-first walks stream one contiguous array.
  CHOREO_ASSERT(M <= std::numeric_limits<std::uint32_t>::max());
  dest_rank_.resize(M * M);
  src_rank_.resize(M * M);
  std::vector<std::size_t> order(M);
  for (std::size_t m = 0; m < M; ++m) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double ua = upper_bound_bps(m, a);
      const double ub = upper_bound_bps(m, b);
      return ua != ub ? ua > ub : a < b;
    });
    for (std::size_t k = 0; k < M; ++k) {
      dest_rank_[m * M + k] =
          RankEntry{upper_bound_bps(m, order[k]), static_cast<std::uint32_t>(order[k])};
    }

    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double ua = upper_bound_bps(a, m);
      const double ub = upper_bound_bps(b, m);
      return ua != ub ? ua > ub : a < b;
    });
    for (std::size_t k = 0; k < M; ++k) {
      src_rank_[m * M + k] =
          RankEntry{upper_bound_bps(order[k], m), static_cast<std::uint32_t>(order[k])};
    }
  }
}

double PlacementEngine::rate_bps(std::size_t m, std::size_t n, RateModel model) const {
  CHOREO_REQUIRE(m < machine_count() && n < machine_count());
  if (m == n) return kIntraMachineRate;
  if (view_.colocated(m, n)) {
    return residual::vswitch_rate_bps(view_.rate_bps(m, n),
                                      on_path_[m * machine_count() + n]);
  }
  switch (model) {
    case RateModel::Pipe: {
      // One cross-traffic fetch feeds both the capacity R*(c+1) and the
      // share term — the same literal arithmetic path_capacity_bps runs, so
      // the result is bit-identical to the uncached transfer_rate_bps.
      const double c = view_.cross_traffic.empty() ? 0.0 : view_.cross_traffic(m, n);
      return residual::pipe_rate_bps(view_.rate_bps(m, n) * (c + 1.0), c,
                                     on_path_[m * machine_count() + n]);
    }
    case RateModel::Hose:
      return residual::hose_rate_bps(view_.rate_bps(m, n), hose_[m], cross_out_[m],
                                     out_of_[m]);
  }
  CHOREO_ASSERT(false);
  return 0.0;
}

void PlacementEngine::commit(const Application& app, const Placement& placement) {
  apply(app, placement, +1.0);
}

void PlacementEngine::release(const Application& app, const Placement& placement) {
  apply(app, placement, -1.0);
}

void PlacementEngine::apply(const Application& app, const Placement& placement,
                            double sign) {
  CHOREO_ASSERT_MSG(txn_log_.empty(), "commit/release inside an open Txn");
  app.validate();
  CHOREO_REQUIRE(placement.machine_of_task.size() == app.task_count());
  CHOREO_REQUIRE(placement.complete());
  for (std::size_t t = 0; t < app.task_count(); ++t) {
    const std::size_t m = placement.machine_of_task[t];
    CHOREO_REQUIRE(m < machine_count());
    used_cores_[m] += sign * app.cpu_demand[t];
    CHOREO_ASSERT(used_cores_[m] >= -1e-9);
    CHOREO_ASSERT(used_cores_[m] <= view_.cores[m] + 1e-9);
  }
  for_each_placed_transfer(app, placement, [&](std::size_t m, std::size_t n, double) {
    register_transfer(m, n, sign);
  });
}

void PlacementEngine::update_view(ClusterView view) {
  CHOREO_REQUIRE_MSG(view.machine_count() == machine_count(),
                     "update_view needs the same fleet; rebuild the state otherwise");
  view.validate();
  view_ = std::move(view);
  rebuild_static();
  // Out-of-hose counts depend on the (possibly re-clustered) colocation
  // groups; re-derive them from the per-path counts. Counts are sums of
  // +/-1.0, i.e. exactly-represented integers, so this equals what a full
  // replay of every running application would produce.
  const std::size_t M = machine_count();
  for (std::size_t m = 0; m < M; ++m) {
    double out = 0.0;
    for (std::size_t n = 0; n < M; ++n) {
      if (n != m && !view_.colocated(m, n)) out += on_path_[m * M + n];
    }
    out_of_[m] = out;
  }
}

void PlacementEngine::apply_rate_discount(const DoubleMatrix& factor) {
  CHOREO_ASSERT_MSG(txn_log_.empty(), "apply_rate_discount inside an open Txn");
  const std::size_t M = machine_count();
  CHOREO_REQUIRE(factor.rows() == M && factor.cols() == M);
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t n = 0; n < M; ++n) {
      if (m == n) continue;
      CHOREO_REQUIRE_MSG(factor(m, n) >= 0.0, "rate discount must be non-negative");
      view_.rate_bps(m, n) *= factor(m, n);
    }
  }
  // Colocation, cores, and residual occupancy are untouched; only the
  // rate-derived static indexes need rebuilding.
  rebuild_static();
}

PlacementEngine PlacementEngine::clone_unoccupied() const {
  CHOREO_ASSERT_MSG(txn_log_.empty(), "clone_unoccupied inside an open Txn");
  PlacementEngine clone(*this);
  std::fill(clone.used_cores_.begin(), clone.used_cores_.end(), 0.0);
  std::fill(clone.on_path_.begin(), clone.on_path_.end(), 0.0);
  std::fill(clone.out_of_.begin(), clone.out_of_.end(), 0.0);
  return clone;
}

PlacementEngine PlacementEngine::clone() const {
  CHOREO_ASSERT_MSG(txn_log_.empty(), "clone inside an open Txn");
  return PlacementEngine(*this);
}

}  // namespace choreo::place

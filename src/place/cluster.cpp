#include "place/cluster.h"

#include <algorithm>

#include "place/engine.h"

namespace choreo::place {

const char* to_string(RateModel m) {
  switch (m) {
    case RateModel::Pipe: return "pipe";
    case RateModel::Hose: return "hose";
  }
  return "?";
}

double ClusterView::hose_bps(std::size_t m) const {
  CHOREO_REQUIRE(m < machine_count());
  double best = 0.0;
  for (std::size_t n = 0; n < machine_count(); ++n) {
    if (n == m || colocated(m, n)) continue;
    best = std::max(best, rate_bps(m, n));
  }
  if (best == 0.0) {
    // All peers are colocated (or single machine): fall back to any rate.
    for (std::size_t n = 0; n < machine_count(); ++n) {
      if (n != m) best = std::max(best, rate_bps(m, n));
    }
  }
  return best;
}

double ClusterView::path_capacity_bps(std::size_t m, std::size_t n) const {
  CHOREO_REQUIRE(m < machine_count() && n < machine_count());
  CHOREO_REQUIRE(m != n);
  const double c = cross_traffic.empty() ? 0.0 : cross_traffic(m, n);
  return rate_bps(m, n) * (c + 1.0);
}

void ClusterView::validate() const {
  CHOREO_REQUIRE(!cores.empty());
  CHOREO_REQUIRE(rate_bps.rows() == cores.size() && rate_bps.cols() == cores.size());
  CHOREO_REQUIRE(colocation_group.size() == cores.size());
  if (!cross_traffic.empty()) {
    CHOREO_REQUIRE(cross_traffic.rows() == cores.size() &&
                   cross_traffic.cols() == cores.size());
  }
  if (!hops.empty()) {
    CHOREO_REQUIRE(hops.rows() == cores.size() && hops.cols() == cores.size());
  }
  if (!pair_epoch.empty()) {
    CHOREO_REQUIRE(pair_epoch.rows() == cores.size() &&
                   pair_epoch.cols() == cores.size());
  }
  for (double c : cores) CHOREO_REQUIRE(c > 0.0);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    for (std::size_t j = 0; j < cores.size(); ++j) {
      if (i != j) CHOREO_REQUIRE(rate_bps(i, j) > 0.0);
    }
  }
}

void apply_rate_discount(ClusterView& view, const DoubleMatrix& factor) {
  const std::size_t n = view.machine_count();
  CHOREO_REQUIRE(factor.rows() == n && factor.cols() == n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      CHOREO_REQUIRE_MSG(factor(i, j) >= 0.0, "rate discount must be non-negative");
      view.rate_bps(i, j) *= factor(i, j);
    }
  }
}

ClusterState::ClusterState(ClusterView view)
    : engine_(std::make_unique<PlacementEngine>(std::move(view))) {}

ClusterState::ClusterState(std::unique_ptr<PlacementEngine> engine)
    : engine_(std::move(engine)) {}

ClusterState::~ClusterState() = default;
ClusterState::ClusterState(ClusterState&&) noexcept = default;
ClusterState& ClusterState::operator=(ClusterState&&) noexcept = default;

const ClusterView& ClusterState::view() const { return engine_->view(); }

std::size_t ClusterState::machine_count() const { return engine_->machine_count(); }

double ClusterState::free_cores(std::size_t m) const {
  CHOREO_REQUIRE(m < machine_count());
  return engine_->free_cores(m);
}

double ClusterState::transfers_on_path(std::size_t m, std::size_t n) const {
  CHOREO_REQUIRE(m < machine_count() && n < machine_count());
  return engine_->transfers_on_path(m, n);
}

double ClusterState::transfers_out_of(std::size_t m) const {
  CHOREO_REQUIRE(m < machine_count());
  return engine_->transfers_out_of(m);
}

void ClusterState::commit(const Application& app, const Placement& placement) {
  engine_->commit(app, placement);
}

void ClusterState::release(const Application& app, const Placement& placement) {
  engine_->release(app, placement);
}

void ClusterState::update_view(ClusterView view) { engine_->update_view(std::move(view)); }

void ClusterState::apply_rate_discount(const DoubleMatrix& factor) {
  engine_->apply_rate_discount(factor);
}

ClusterState ClusterState::clone_unoccupied() const {
  return ClusterState(std::make_unique<PlacementEngine>(engine_->clone_unoccupied()));
}

ClusterState ClusterState::clone() const {
  return ClusterState(std::make_unique<PlacementEngine>(engine_->clone()));
}

}  // namespace choreo::place

#include "place/cluster.h"

#include <algorithm>

namespace choreo::place {

const char* to_string(RateModel m) {
  switch (m) {
    case RateModel::Pipe: return "pipe";
    case RateModel::Hose: return "hose";
  }
  return "?";
}

double ClusterView::hose_bps(std::size_t m) const {
  CHOREO_REQUIRE(m < machine_count());
  double best = 0.0;
  for (std::size_t n = 0; n < machine_count(); ++n) {
    if (n == m || colocated(m, n)) continue;
    best = std::max(best, rate_bps(m, n));
  }
  if (best == 0.0) {
    // All peers are colocated (or single machine): fall back to any rate.
    for (std::size_t n = 0; n < machine_count(); ++n) {
      if (n != m) best = std::max(best, rate_bps(m, n));
    }
  }
  return best;
}

double ClusterView::path_capacity_bps(std::size_t m, std::size_t n) const {
  CHOREO_REQUIRE(m < machine_count() && n < machine_count());
  CHOREO_REQUIRE(m != n);
  const double c = cross_traffic.empty() ? 0.0 : cross_traffic(m, n);
  return rate_bps(m, n) * (c + 1.0);
}

void ClusterView::validate() const {
  CHOREO_REQUIRE(!cores.empty());
  CHOREO_REQUIRE(rate_bps.rows() == cores.size() && rate_bps.cols() == cores.size());
  CHOREO_REQUIRE(colocation_group.size() == cores.size());
  if (!cross_traffic.empty()) {
    CHOREO_REQUIRE(cross_traffic.rows() == cores.size() &&
                   cross_traffic.cols() == cores.size());
  }
  if (!hops.empty()) {
    CHOREO_REQUIRE(hops.rows() == cores.size() && hops.cols() == cores.size());
  }
  if (!pair_epoch.empty()) {
    CHOREO_REQUIRE(pair_epoch.rows() == cores.size() &&
                   pair_epoch.cols() == cores.size());
  }
  for (double c : cores) CHOREO_REQUIRE(c > 0.0);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    for (std::size_t j = 0; j < cores.size(); ++j) {
      if (i != j) CHOREO_REQUIRE(rate_bps(i, j) > 0.0);
    }
  }
}

ClusterState::ClusterState(ClusterView view)
    : view_(std::move(view)),
      used_cores_(view_.machine_count(), 0.0),
      path_transfers_(view_.machine_count(), view_.machine_count()),
      out_transfers_(view_.machine_count(), 0.0) {
  view_.validate();
}

double ClusterState::free_cores(std::size_t m) const {
  CHOREO_REQUIRE(m < machine_count());
  return view_.cores[m] - used_cores_[m];
}

double ClusterState::transfers_on_path(std::size_t m, std::size_t n) const {
  CHOREO_REQUIRE(m < machine_count() && n < machine_count());
  return path_transfers_(m, n);
}

double ClusterState::transfers_out_of(std::size_t m) const {
  CHOREO_REQUIRE(m < machine_count());
  return out_transfers_[m];
}

void ClusterState::commit(const Application& app, const Placement& placement) {
  apply(app, placement, +1.0);
}

void ClusterState::release(const Application& app, const Placement& placement) {
  apply(app, placement, -1.0);
}

void ClusterState::apply(const Application& app, const Placement& placement, double sign) {
  app.validate();
  CHOREO_REQUIRE(placement.machine_of_task.size() == app.task_count());
  CHOREO_REQUIRE(placement.complete());
  for (std::size_t t = 0; t < app.task_count(); ++t) {
    const std::size_t m = placement.machine_of_task[t];
    CHOREO_REQUIRE(m < machine_count());
    used_cores_[m] += sign * app.cpu_demand[t];
    CHOREO_ASSERT(used_cores_[m] >= -1e-9);
    CHOREO_ASSERT(used_cores_[m] <= view_.cores[m] + 1e-9);
  }
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    for (std::size_t j = 0; j < app.task_count(); ++j) {
      if (app.traffic_bytes(i, j) <= 0.0) continue;
      const std::size_t m = placement.machine_of_task[i];
      const std::size_t n = placement.machine_of_task[j];
      if (m == n) continue;  // intra-machine: free
      path_transfers_(m, n) += sign;
      if (!view_.colocated(m, n)) out_transfers_[m] += sign;
    }
  }
}

}  // namespace choreo::place

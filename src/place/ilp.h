#pragma once

#include "lp/simplex.h"
#include "place/placer.h"
#include "place/rate_model.h"

namespace choreo::place {

/// The Appendix formulation: minimize the application completion time as a
/// 0/1 ILP.
///
/// Variables:
///   * X_im in {0,1} — task i runs on machine m;
///   * z_imjn in {0,1} for task pairs i<j with traffic — i on m AND j on n;
///   * z >= 0 — the makespan (longest bottleneck drain time, seconds).
/// Constraints: each task on exactly one machine; CPU capacities; z_imjn
/// linked to X (z <= X_im, z <= X_jn, sum over (m,n) of z_imjn = 1); and one
/// drain-time row per bottleneck (per path for the pipe model, per source
/// hose for the hose model — the S matrix of the Appendix).
///
/// The greedy placement warm-starts branch-and-bound, mirroring how the
/// paper uses the ILP as the (slow) gold standard the greedy is judged
/// against (§5: "median completion time with the greedy algorithm was only
/// 13% more than ... the optimal algorithm").
class IlpPlacer : public Placer {
 public:
  explicit IlpPlacer(RateModel model = RateModel::Hose, lp::IlpOptions options = {})
      : model_(model), options_(options) {}

  std::string name() const override { return std::string("ilp-") + to_string(model_); }

  Placement place(const Application& app, const ClusterState& state) override;

  /// Statistics of the last solve (for the §5 "ILPs can be slow" benches).
  std::size_t last_nodes() const { return last_nodes_; }
  lp::SolveStatus last_status() const { return last_status_; }

 private:
  RateModel model_;
  lp::IlpOptions options_;
  std::size_t last_nodes_ = 0;
  lp::SolveStatus last_status_ = lp::SolveStatus::Infeasible;
};

/// Exhaustive optimal placement by enumeration — exact for the small
/// instances of the Fig 9 greedy-vs-optimal comparison. Throws
/// PreconditionError when machines^tasks exceeds `max_assignments`.
class BruteForcePlacer : public Placer {
 public:
  explicit BruteForcePlacer(RateModel model = RateModel::Hose,
                            std::uint64_t max_assignments = 50'000'000)
      : model_(model), max_assignments_(max_assignments) {}

  std::string name() const override { return std::string("optimal-") + to_string(model_); }

  Placement place(const Application& app, const ClusterState& state) override;

  /// Completion-time estimate of the optimum found by the last place() call.
  double last_objective_s() const { return last_objective_; }

 private:
  RateModel model_;
  std::uint64_t max_assignments_;
  double last_objective_ = 0.0;
};

}  // namespace choreo::place

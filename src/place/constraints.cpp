#include "place/constraints.h"

#include "place/cluster.h"
#include "util/require.h"

namespace choreo::place {

void PlacementConstraints::validate(std::size_t task_count) const {
  for (const auto& [a, b] : separate) {
    CHOREO_REQUIRE(a < task_count && b < task_count);
    CHOREO_REQUIRE(a != b);
  }
  for (const LatencyBound& l : latency) {
    CHOREO_REQUIRE(l.a < task_count && l.b < task_count);
    CHOREO_REQUIRE(l.a != l.b);
    CHOREO_REQUIRE(l.max_hops >= 1);
  }
  for (const auto& [task, machine] : pinned) {
    CHOREO_REQUIRE(task < task_count);
    (void)machine;  // machine range depends on the cluster; checked at use
  }
}

namespace {

/// Hop distance between machines as the tenant knows it; same machine is 0
/// (strictly closer than same-host neighbours at 1).
std::size_t machine_hops(const ClusterView& view, std::size_t m, std::size_t n) {
  if (m == n) return 0;
  CHOREO_REQUIRE_MSG(!view.hops.empty(),
                     "latency constraints need ClusterView::hops (traceroute data)");
  return static_cast<std::size_t>(view.hops(m, n));
}

}  // namespace

bool assignment_allowed(const PlacementConstraints& constraints, const ClusterView& view,
                        const Placement& placement, std::size_t task,
                        std::size_t machine) {
  const auto it = constraints.pinned.find(task);
  if (it != constraints.pinned.end() && it->second != machine) return false;

  const auto placed = [&](std::size_t t) {
    return t < placement.machine_of_task.size() &&
           placement.machine_of_task[t] != kUnplaced;
  };

  for (const auto& [a, b] : constraints.separate) {
    if (a != task && b != task) continue;
    const std::size_t other = (a == task) ? b : a;
    if (!placed(other)) continue;
    const std::size_t om = placement.machine_of_task[other];
    if (om == machine || view.colocated(om, machine)) return false;
  }
  for (const PlacementConstraints::LatencyBound& l : constraints.latency) {
    if (l.a != task && l.b != task) continue;
    const std::size_t other = (l.a == task) ? l.b : l.a;
    if (!placed(other)) continue;
    if (machine_hops(view, placement.machine_of_task[other], machine) > l.max_hops) {
      return false;
    }
  }
  return true;
}

bool satisfies_constraints(const PlacementConstraints& constraints,
                           const ClusterView& view, const Placement& placement) {
  for (const auto& [task, machine] : constraints.pinned) {
    if (placement.machine_of_task[task] != machine) return false;
  }
  for (const auto& [a, b] : constraints.separate) {
    const std::size_t ma = placement.machine_of_task[a];
    const std::size_t mb = placement.machine_of_task[b];
    if (ma == mb || view.colocated(ma, mb)) return false;
  }
  for (const PlacementConstraints::LatencyBound& l : constraints.latency) {
    const std::size_t ma = placement.machine_of_task[l.a];
    const std::size_t mb = placement.machine_of_task[l.b];
    if (machine_hops(view, ma, mb) > l.max_hops) return false;
  }
  return true;
}

}  // namespace choreo::place

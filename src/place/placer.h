#pragma once

#include <stdexcept>
#include <string>

#include "place/app.h"
#include "place/cluster.h"

namespace choreo::place {

/// Thrown when no CPU-feasible placement exists for an application.
class PlacementError : public std::runtime_error {
 public:
  explicit PlacementError(const std::string& what) : std::runtime_error(what) {}
};

/// Interface of all placement algorithms. Implementations may keep internal
/// state across calls (e.g., round-robin position, RNG), which is why
/// `place` is non-const. They never mutate the ClusterState — committing a
/// placement is the caller's decision.
class Placer {
 public:
  virtual ~Placer() = default;
  virtual std::string name() const = 0;

  /// Maps every task of `app` to a machine, honouring CPU constraints.
  /// Throws PlacementError if no feasible assignment can be found.
  virtual Placement place(const Application& app, const ClusterState& state) = 0;
};

}  // namespace choreo::place

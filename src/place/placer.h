#pragma once

#include <stdexcept>
#include <string>

#include "place/app.h"
#include "place/cluster.h"

namespace choreo::place {

/// Thrown when no CPU-feasible placement exists for an application.
class PlacementError : public std::runtime_error {
 public:
  explicit PlacementError(const std::string& what) : std::runtime_error(what) {}
};

/// Interface of all placement algorithms compared in the paper: Choreo's
/// greedy (§5, Algorithm 1), the optimal ILP (§5.2), and the §6 baselines
/// (random, round-robin, min-machines). Implementations may keep internal
/// state across calls (e.g., round-robin position, RNG), which is why
/// `place` is non-const. They never mutate the ClusterState — committing a
/// placement is the caller's decision.
class Placer {
 public:
  virtual ~Placer() = default;

  /// Short human-readable algorithm name as used in bench/table output
  /// (e.g. "greedy", "random").
  virtual std::string name() const = 0;

  /// Maps every task of `app` to a machine index in [0, state.machine_count()),
  /// honouring CPU-core constraints and `app.constraints` against the
  /// network view in `state` (measured rates in bits/s, §4.1). Throws
  /// PlacementError if no feasible assignment can be found.
  virtual Placement place(const Application& app, const ClusterState& state) = 0;
};

}  // namespace choreo::place

#include "place/rate_model.h"

#include <algorithm>

namespace choreo::place {

double transfer_rate_bps(const ClusterView& view, std::size_t m, std::size_t n,
                         RateModel model, double placed_on_path,
                         double placed_out_of_src) {
  CHOREO_REQUIRE(m < view.machine_count() && n < view.machine_count());
  if (m == n) return kIntraMachineRate;

  if (view.colocated(m, n)) {
    // Same physical host: the transfer rides the virtual switch, not the
    // hose; it shares the path with transfers already on it.
    return view.rate_bps(m, n) / (placed_on_path + 1.0);
  }

  switch (model) {
    case RateModel::Pipe: {
      const double c = view.cross_traffic.empty() ? 0.0 : view.cross_traffic(m, n);
      return view.path_capacity_bps(m, n) / (c + placed_on_path + 1.0);
    }
    case RateModel::Hose: {
      double c_out = 0.0;
      if (!view.cross_traffic.empty()) {
        // The hose is shared with whatever background the busiest path out
        // of m reports.
        for (std::size_t k = 0; k < view.machine_count(); ++k) {
          if (k != m && !view.colocated(m, k)) {
            c_out = std::max(c_out, view.cross_traffic(m, k));
          }
        }
      }
      // The transfer cannot exceed the measured single-connection rate of
      // this particular path (the fabric or the destination may be slower
      // than the source hose), and it shares the hose with everything else
      // leaving m.
      return std::min(view.rate_bps(m, n),
                      view.hose_bps(m) / (c_out + placed_out_of_src + 1.0));
    }
  }
  CHOREO_ASSERT(false);
  return 0.0;
}

double transfer_rate_bps(const ClusterState& state, std::size_t m, std::size_t n,
                         RateModel model) {
  return transfer_rate_bps(state.view(), m, n, model, state.transfers_on_path(m, n),
                           state.transfers_out_of(m));
}

double estimate_completion_s(const Application& app, const Placement& placement,
                             const ClusterView& view, RateModel model) {
  app.validate();
  CHOREO_REQUIRE(placement.machine_of_task.size() == app.task_count());
  CHOREO_REQUIRE(placement.complete());
  const std::size_t M = view.machine_count();

  // Aggregate bytes per machine path.
  DoubleMatrix data(M, M, 0.0);
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    for (std::size_t j = 0; j < app.task_count(); ++j) {
      const double b = app.traffic_bytes(i, j);
      if (b <= 0.0) continue;
      const std::size_t m = placement.machine_of_task[i];
      const std::size_t n = placement.machine_of_task[j];
      if (m == n) continue;  // intra-machine is free
      data(m, n) += b;
    }
  }

  double worst = 0.0;
  if (model == RateModel::Pipe) {
    for (std::size_t m = 0; m < M; ++m) {
      for (std::size_t n = 0; n < M; ++n) {
        if (m == n || data(m, n) <= 0.0) continue;
        worst = std::max(worst, data(m, n) * 8.0 / view.rate_bps(m, n));
      }
    }
    return worst;
  }

  // Hose model: everything leaving machine m for another host drains through
  // m's hose; colocated-destination traffic drains through the vswitch path.
  // Each individual path additionally cannot drain faster than its measured
  // single-connection rate (slow fabric paths stay slow even on an idle
  // hose).
  for (std::size_t m = 0; m < M; ++m) {
    double hose_bytes = 0.0;
    for (std::size_t n = 0; n < M; ++n) {
      if (m == n || data(m, n) <= 0.0) continue;
      worst = std::max(worst, data(m, n) * 8.0 / view.rate_bps(m, n));
      if (!view.colocated(m, n)) hose_bytes += data(m, n);
    }
    if (hose_bytes > 0.0) {
      worst = std::max(worst, hose_bytes * 8.0 / view.hose_bps(m));
    }
  }
  return worst;
}

}  // namespace choreo::place

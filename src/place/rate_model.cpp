#include "place/rate_model.h"

#include <algorithm>

#include "place/engine.h"

namespace choreo::place {

double hose_cross_out(const ClusterView& view, std::size_t m) {
  CHOREO_REQUIRE(m < view.machine_count());
  double c_out = 0.0;
  if (!view.cross_traffic.empty()) {
    // The hose is shared with whatever background the busiest path out of m
    // reports.
    for (std::size_t k = 0; k < view.machine_count(); ++k) {
      if (k != m && !view.colocated(m, k)) {
        c_out = std::max(c_out, view.cross_traffic(m, k));
      }
    }
  }
  return c_out;
}

double transfer_rate_bps(const ClusterView& view, std::size_t m, std::size_t n,
                         RateModel model, double placed_on_path,
                         double placed_out_of_src) {
  CHOREO_REQUIRE(m < view.machine_count() && n < view.machine_count());
  if (m == n) return kIntraMachineRate;

  if (view.colocated(m, n)) {
    return residual::vswitch_rate_bps(view.rate_bps(m, n), placed_on_path);
  }

  switch (model) {
    case RateModel::Pipe: {
      const double c = view.cross_traffic.empty() ? 0.0 : view.cross_traffic(m, n);
      return residual::pipe_rate_bps(view.path_capacity_bps(m, n), c, placed_on_path);
    }
    case RateModel::Hose:
      return residual::hose_rate_bps(view.rate_bps(m, n), view.hose_bps(m),
                                     hose_cross_out(view, m), placed_out_of_src);
  }
  CHOREO_ASSERT(false);
  return 0.0;
}

double transfer_rate_bps(const ClusterState& state, std::size_t m, std::size_t n,
                         RateModel model) {
  return state.engine().rate_bps(m, n, model);
}

double estimate_completion_s(const Application& app, const Placement& placement,
                             const ClusterView& view, RateModel model) {
  app.validate();
  CHOREO_REQUIRE(placement.machine_of_task.size() == app.task_count());
  CHOREO_REQUIRE(placement.complete());
  const std::size_t M = view.machine_count();

  // Aggregate bytes per machine path — the same inter-machine transfer
  // enumeration the residual indexes are maintained with (intra-machine
  // traffic is free and never counted).
  DoubleMatrix data(M, M, 0.0);
  for_each_placed_transfer(app, placement,
                           [&](std::size_t m, std::size_t n, double b) { data(m, n) += b; });

  double worst = 0.0;
  if (model == RateModel::Pipe) {
    for (std::size_t m = 0; m < M; ++m) {
      for (std::size_t n = 0; n < M; ++n) {
        if (m == n || data(m, n) <= 0.0) continue;
        worst = std::max(worst, data(m, n) * 8.0 / view.rate_bps(m, n));
      }
    }
    return worst;
  }

  // Hose model: everything leaving machine m for another host drains through
  // m's hose; colocated-destination traffic drains through the vswitch path.
  // Each individual path additionally cannot drain faster than its measured
  // single-connection rate (slow fabric paths stay slow even on an idle
  // hose).
  for (std::size_t m = 0; m < M; ++m) {
    double hose_bytes = 0.0;
    for (std::size_t n = 0; n < M; ++n) {
      if (m == n || data(m, n) <= 0.0) continue;
      worst = std::max(worst, data(m, n) * 8.0 / view.rate_bps(m, n));
      if (!view.colocated(m, n)) hose_bytes += data(m, n);
    }
    if (hose_bytes > 0.0) {
      worst = std::max(worst, hose_bytes * 8.0 / view.hose_bps(m));
    }
  }
  return worst;
}

}  // namespace choreo::place

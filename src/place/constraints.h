#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "util/matrix.h"

namespace choreo::place {

struct Application;  // forward (app.h includes this header)
struct ClusterView;
struct Placement;

/// Optional per-application placement constraints — the Conclusion's "some
/// of the tasks could be specified as 'latency-constrained', or certain
/// tasks could be specified as being placed 'far apart' for fault tolerance
/// purposes", formulated as in the companion tech report [20].
///
/// The network-aware placers (greedy, ILP, brute force) honour these; the
/// network-blind baselines ignore them, exactly as they ignore the network.
struct PlacementConstraints {
  /// Fault tolerance: each pair must land on machines in *different*
  /// co-location groups (distinct physical hosts).
  std::vector<std::pair<std::size_t, std::size_t>> separate;

  /// Latency: the two tasks' machines must be at most `max_hops` apart
  /// (1 = same physical host, 2 = same rack, ... — the traceroute scale of
  /// §3.3.1). Requires ClusterView::hops to be populated.
  struct LatencyBound {
    std::size_t a = 0;
    std::size_t b = 0;
    std::size_t max_hops = 2;
  };
  std::vector<LatencyBound> latency;

  /// Data locality: task -> machine it must run on.
  std::map<std::size_t, std::size_t> pinned;

  bool empty() const { return separate.empty() && latency.empty() && pinned.empty(); }

  /// Structural validation against an application with `task_count` tasks.
  void validate(std::size_t task_count) const;
};

/// True if assigning `task` to `machine` is compatible with every constraint
/// whose other endpoint is already decided in `placement` (undecided
/// endpoints are permissive — they get checked when they are placed).
bool assignment_allowed(const PlacementConstraints& constraints, const ClusterView& view,
                        const Placement& placement, std::size_t task,
                        std::size_t machine);

/// True if the complete placement satisfies every constraint.
bool satisfies_constraints(const PlacementConstraints& constraints,
                           const ClusterView& view, const Placement& placement);

}  // namespace choreo::place

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "place/app.h"
#include "place/cluster.h"
#include "place/rate_model.h"

namespace choreo::place {

/// §7.2: "Choreo could capture [time variation] by modeling applications as
/// a time series of traffic matrices ... A straw-man approach is to
/// determine the 'major' phases of an application's bandwidth usage, and use
/// Choreo as-is at the beginning of each phase."
///
/// A PhasedApplication is one application whose communication pattern
/// changes across sequential phases (e.g., ingest -> shuffle -> reduce).
/// Tasks and CPU demands are fixed; the traffic matrix differs per phase,
/// and a phase begins when the previous one completes.
struct PhasedApplication {
  std::string name;
  std::vector<double> cpu_demand;
  std::vector<DoubleMatrix> phase_traffic;

  std::size_t task_count() const { return cpu_demand.size(); }
  std::size_t phase_count() const { return phase_traffic.size(); }

  /// The phase as a standalone placeable application.
  Application phase(std::size_t index) const;

  /// What vanilla Choreo sees: all phases folded into one total-bytes matrix
  /// (the paper notes this "loses information about how an application
  /// changes over time").
  Application aggregate() const;

  void validate() const;
};

/// Result of planning a phased application.
struct PhasedPlan {
  /// One placement per phase (identical placements mean no migration).
  std::vector<Placement> placements;
  /// Tasks whose machine changes at each phase boundary (size = phases - 1).
  std::vector<std::size_t> migrations;
  /// Analytic completion estimate: sum of per-phase drain times plus
  /// migration downtime.
  double estimated_completion_s = 0.0;
};

/// The straw-man: place each phase with the greedy algorithm as if it were a
/// fresh application, starting from the same cluster occupancy, and migrate
/// between phases when the per-phase gain beats `migration_cost_per_task_s`.
/// If migrating into a phase is not worthwhile, the previous phase's
/// placement is kept.
PhasedPlan plan_phases(const PhasedApplication& app, const ClusterState& state,
                       RateModel model, double migration_cost_per_task_s);

/// Baseline for comparison: one aggregate placement used for every phase.
PhasedPlan plan_aggregate(const PhasedApplication& app, const ClusterState& state,
                          RateModel model);

}  // namespace choreo::place

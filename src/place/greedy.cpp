#include "place/greedy.h"

#include <algorithm>

namespace choreo::place {

Placement GreedyPlacer::place(const Application& app, const ClusterState& state) {
  app.validate();
  const ClusterView& view = state.view();
  const std::size_t J = app.task_count();
  const std::size_t M = view.machine_count();

  Placement placement;
  placement.machine_of_task.assign(J, kUnplaced);

  // Local working copies so tentative decisions feed later rate estimates.
  std::vector<double> free_cores(M);
  for (std::size_t m = 0; m < M; ++m) free_cores[m] = state.free_cores(m);
  DoubleMatrix on_path(M, M, 0.0);
  std::vector<double> out_of(M, 0.0);

  const auto rate = [&](std::size_t m, std::size_t n) {
    return transfer_rate_bps(view, m, n, model_,
                             state.transfers_on_path(m, n) + on_path(m, n),
                             state.transfers_out_of(m) + out_of[m]);
  };

  const auto cpu_fits = [&](std::size_t task, std::size_t machine, double extra = 0.0) {
    return free_cores[machine] + 1e-9 >= app.cpu_demand[task] + extra;
  };

  const auto allowed = [&](std::size_t task, std::size_t machine) {
    return assignment_allowed(app.constraints, view, placement, task, machine);
  };

  const auto register_transfer = [&](std::size_t m, std::size_t n) {
    if (m == n) return;
    on_path(m, n) += 1.0;
    if (!view.colocated(m, n)) out_of[m] += 1.0;
  };

  const auto assign = [&](std::size_t task, std::size_t machine) {
    placement.machine_of_task[task] = machine;
    free_cores[machine] -= app.cpu_demand[task];
  };

  for (const TransferDemand& tr : sorted_transfers(app)) {
    const std::size_t i = tr.src_task;
    const std::size_t j = tr.dst_task;
    const std::size_t mi = placement.machine_of_task[i];
    const std::size_t mj = placement.machine_of_task[j];
    if (mi != kUnplaced && mj != kUnplaced) {
      // Both endpoints settled by earlier (larger) transfers; just record
      // the load this transfer adds.
      register_transfer(mi, mj);
      continue;
    }

    // Enumerate candidate paths (Algorithm 1 lines 3-11) and pick the one
    // whose residual rate is highest (line 12-14). Ties break toward the
    // lowest machine indices for determinism.
    double best_rate = -1.0;
    std::size_t best_m = kUnplaced, best_n = kUnplaced;
    const auto consider = [&](std::size_t m, std::size_t n) {
      // CPU feasibility (lines 9-11).
      if (mi == kUnplaced && mj == kUnplaced && m == n) {
        if (!cpu_fits(i, m, app.cpu_demand[j])) return;
      } else {
        if (mi == kUnplaced && !cpu_fits(i, m)) return;
        if (mj == kUnplaced && !cpu_fits(j, n)) return;
      }
      // Application constraints (fault tolerance / latency / pinning).
      if (mi == kUnplaced && !allowed(i, m)) return;
      if (mj == kUnplaced && !allowed(j, n)) return;
      if (mi == kUnplaced && mj == kUnplaced) {
        // Pair-internal constraints where both endpoints are being decided
        // right now: check j's machine against i's tentative one.
        Placement tentative = placement;
        tentative.machine_of_task[i] = m;
        if (!assignment_allowed(app.constraints, view, tentative, j, n)) return;
      }
      const double r = rate(m, n);
      if (r > best_rate) {
        best_rate = r;
        best_m = m;
        best_n = n;
      }
    };

    if (mi != kUnplaced) {
      for (std::size_t n = 0; n < M; ++n) consider(mi, n);
    } else if (mj != kUnplaced) {
      for (std::size_t m = 0; m < M; ++m) consider(m, mj);
    } else {
      for (std::size_t m = 0; m < M; ++m) {
        for (std::size_t n = 0; n < M; ++n) consider(m, n);
      }
    }

    if (best_m == kUnplaced) {
      throw PlacementError("greedy: no CPU-feasible path for transfer " +
                           std::to_string(i) + "->" + std::to_string(j));
    }
    if (mi == kUnplaced) assign(i, best_m);
    if (mj == kUnplaced) assign(j, best_n);
    register_transfer(best_m, best_n);
  }

  // Tasks with no transfers: first-fit-decreasing onto the freest machines.
  std::vector<std::size_t> leftovers;
  for (std::size_t t = 0; t < J; ++t) {
    if (placement.machine_of_task[t] == kUnplaced) leftovers.push_back(t);
  }
  std::stable_sort(leftovers.begin(), leftovers.end(), [&](std::size_t a, std::size_t b) {
    return app.cpu_demand[a] > app.cpu_demand[b];
  });
  for (std::size_t t : leftovers) {
    std::size_t best = kUnplaced;
    for (std::size_t m = 0; m < M; ++m) {
      if (!cpu_fits(t, m) || !allowed(t, m)) continue;
      if (best == kUnplaced || free_cores[m] > free_cores[best]) best = m;
    }
    if (best == kUnplaced) {
      throw PlacementError("greedy: no CPU room for task " + std::to_string(t));
    }
    assign(t, best);
  }
  return placement;
}

}  // namespace choreo::place

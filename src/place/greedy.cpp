#include "place/greedy.h"

#include <algorithm>

#include "place/engine.h"

namespace choreo::place {

namespace {

/// Best candidate so far: highest exact rate, ties toward the lowest
/// (m, n) — the order the exhaustive row-major scan discovers candidates
/// in, so "first strict improvement wins" and "lexicographically smallest
/// among the maxima" select the same pair.
struct BestCandidate {
  double rate = -1.0;
  std::size_t m = kUnplaced;
  std::size_t n = kUnplaced;

  void offer(double rate_bps, std::size_t m_cand, std::size_t n_cand) {
    if (rate_bps > rate ||
        (rate_bps == rate && (m_cand < m || (m_cand == m && n_cand < n)))) {
      rate = rate_bps;
      m = m_cand;
      n = n_cand;
    }
  }
};

/// Frontier of one source's ranked destination list in the two-sided
/// best-first search: the next unexplored candidate and its static upper
/// bound. Max-heap by bound (tie order irrelevant — every entry whose bound
/// ties the best exact rate still gets evaluated before the search stops).
/// `row` points at the source's contiguous RankEntry list, so advancing a
/// frontier reads the next bound and peer from one cache line.
struct Frontier {
  double bound = 0.0;
  const PlacementEngine::RankEntry* row = nullptr;
  std::size_t m = 0;
  std::size_t k = 0;  // position in row

  bool operator<(const Frontier& other) const { return bound < other.bound; }
};

}  // namespace

Placement GreedyPlacer::place(const Application& app, const ClusterState& state) {
  app.validate();
  PlacementEngine& eng = state.engine();
  const ClusterView& view = eng.view();
  const std::size_t J = app.task_count();
  const std::size_t M = eng.machine_count();

  Placement placement;
  placement.machine_of_task.assign(J, kUnplaced);

  // All tentative decisions live in one engine transaction, rolled back
  // (also on the exception path) before returning: the caller commits.
  PlacementEngine::Txn txn(eng);
  ++eng.counters().placements;

  const auto cpu_fits = [&](std::size_t task, std::size_t machine, double extra = 0.0) {
    return eng.cpu_fits(machine, app.cpu_demand[task] + extra);
  };

  const auto allowed = [&](std::size_t task, std::size_t machine) {
    return assignment_allowed(app.constraints, view, placement, task, machine);
  };

  const auto assign = [&](std::size_t task, std::size_t machine) {
    placement.machine_of_task[task] = machine;
    txn.apply_task(machine, app.cpu_demand[task]);
  };

  std::vector<Frontier> heap;  // reused across transfers
  for (const TransferDemand& tr : sorted_transfers(app)) {
    const std::size_t i = tr.src_task;
    const std::size_t j = tr.dst_task;
    const std::size_t mi = placement.machine_of_task[i];
    const std::size_t mj = placement.machine_of_task[j];
    if (mi != kUnplaced && mj != kUnplaced) {
      // Both endpoints settled by earlier (larger) transfers; just record
      // the load this transfer adds.
      txn.apply_transfer(mi, mj);
      continue;
    }

    // Candidate feasibility and exact residual rate (Algorithm 1 lines
    // 3-14), identical rule-for-rule to the exhaustive scan's `consider`.
    BestCandidate best;
    const auto consider = [&](std::size_t m, std::size_t n) {
      ++eng.counters().candidates_walked;
      // CPU feasibility (lines 9-11).
      if (mi == kUnplaced && mj == kUnplaced && m == n) {
        if (!cpu_fits(i, m, app.cpu_demand[j])) return;
      } else {
        if (mi == kUnplaced && !cpu_fits(i, m)) return;
        if (mj == kUnplaced && !cpu_fits(j, n)) return;
      }
      // Application constraints (fault tolerance / latency / pinning).
      if (mi == kUnplaced && !allowed(i, m)) return;
      if (mj == kUnplaced && !allowed(j, n)) return;
      if (mi == kUnplaced && mj == kUnplaced) {
        // Pair-internal constraints where both endpoints are being decided
        // right now: probe j's machine against i's tentative one (O(1)
        // write + restore instead of copying the placement).
        placement.machine_of_task[i] = m;
        const bool ok = assignment_allowed(app.constraints, view, placement, j, n);
        placement.machine_of_task[i] = kUnplaced;
        if (!ok) return;
      }
      best.offer(eng.rate_bps(m, n, model_), m, n);
    };

    // Lazy best-first enumeration: walk candidates in descending static
    // upper bound and stop once the next bound cannot reach the best exact
    // rate found (ties keep going — a tying candidate with a lower index
    // would win the tie-break).
    if (mi != kUnplaced) {
      const PlacementEngine::RankEntry* row = eng.ranked_dest_row(mi);
      for (std::size_t k = 0; k < M; ++k) {
        if (row[k].bound < best.rate) break;
        consider(mi, row[k].peer);
      }
    } else if (mj != kUnplaced) {
      const PlacementEngine::RankEntry* row = eng.ranked_src_row(mj);
      for (std::size_t k = 0; k < M; ++k) {
        if (row[k].bound < best.rate) break;
        consider(row[k].peer, mj);
      }
    } else {
      // Both endpoints free: merge the M ranked destination lists through a
      // frontier heap — top-k pruning over the M^2 pair candidates.
      heap.clear();
      for (std::size_t m = 0; m < M; ++m) {
        const PlacementEngine::RankEntry* row = eng.ranked_dest_row(m);
        heap.push_back(Frontier{row[0].bound, row, m, 0});
      }
      std::make_heap(heap.begin(), heap.end());
      while (!heap.empty() && heap.front().bound >= best.rate) {
        std::pop_heap(heap.begin(), heap.end());
        Frontier f = heap.back();
        heap.pop_back();
        consider(f.m, f.row[f.k].peer);
        if (++f.k < M) {
          f.bound = f.row[f.k].bound;
          heap.push_back(f);
          std::push_heap(heap.begin(), heap.end());
        }
      }
    }

    if (best.m == kUnplaced) {
      throw PlacementError("greedy: no CPU-feasible path for transfer " +
                           std::to_string(i) + "->" + std::to_string(j));
    }
    if (mi == kUnplaced) assign(i, best.m);
    if (mj == kUnplaced) assign(j, best.n);
    txn.apply_transfer(best.m, best.n);
  }

  // Tasks with no transfers: first-fit-decreasing onto the freest machines.
  std::vector<std::size_t> leftovers;
  for (std::size_t t = 0; t < J; ++t) {
    if (placement.machine_of_task[t] == kUnplaced) leftovers.push_back(t);
  }
  std::stable_sort(leftovers.begin(), leftovers.end(), [&](std::size_t a, std::size_t b) {
    return app.cpu_demand[a] > app.cpu_demand[b];
  });
  for (std::size_t t : leftovers) {
    std::size_t best = kUnplaced;
    for (std::size_t m = 0; m < M; ++m) {
      if (!cpu_fits(t, m) || !allowed(t, m)) continue;
      if (best == kUnplaced || eng.free_cores(m) > eng.free_cores(best)) best = m;
    }
    if (best == kUnplaced) {
      throw PlacementError("greedy: no CPU room for task " + std::to_string(t));
    }
    assign(t, best);
  }
  return placement;
}

Placement ExhaustiveGreedyPlacer::place(const Application& app, const ClusterState& state) {
  app.validate();
  const ClusterView& view = state.view();
  const std::size_t J = app.task_count();
  const std::size_t M = view.machine_count();

  Placement placement;
  placement.machine_of_task.assign(J, kUnplaced);

  // Local working copies so tentative decisions feed later rate estimates.
  std::vector<double> free_cores(M);
  for (std::size_t m = 0; m < M; ++m) free_cores[m] = state.free_cores(m);
  DoubleMatrix on_path(M, M, 0.0);
  std::vector<double> out_of(M, 0.0);

  const auto rate = [&](std::size_t m, std::size_t n) {
    return transfer_rate_bps(view, m, n, model_,
                             state.transfers_on_path(m, n) + on_path(m, n),
                             state.transfers_out_of(m) + out_of[m]);
  };

  const auto cpu_fits = [&](std::size_t task, std::size_t machine, double extra = 0.0) {
    return free_cores[machine] + 1e-9 >= app.cpu_demand[task] + extra;
  };

  const auto allowed = [&](std::size_t task, std::size_t machine) {
    return assignment_allowed(app.constraints, view, placement, task, machine);
  };

  const auto register_transfer = [&](std::size_t m, std::size_t n) {
    if (m == n) return;
    on_path(m, n) += 1.0;
    if (!view.colocated(m, n)) out_of[m] += 1.0;
  };

  const auto assign = [&](std::size_t task, std::size_t machine) {
    placement.machine_of_task[task] = machine;
    free_cores[machine] -= app.cpu_demand[task];
  };

  for (const TransferDemand& tr : sorted_transfers(app)) {
    const std::size_t i = tr.src_task;
    const std::size_t j = tr.dst_task;
    const std::size_t mi = placement.machine_of_task[i];
    const std::size_t mj = placement.machine_of_task[j];
    if (mi != kUnplaced && mj != kUnplaced) {
      // Both endpoints settled by earlier (larger) transfers; just record
      // the load this transfer adds.
      register_transfer(mi, mj);
      continue;
    }

    // Enumerate candidate paths (Algorithm 1 lines 3-11) and pick the one
    // whose residual rate is highest (line 12-14). Ties break toward the
    // lowest machine indices for determinism.
    double best_rate = -1.0;
    std::size_t best_m = kUnplaced, best_n = kUnplaced;
    const auto consider = [&](std::size_t m, std::size_t n) {
      // CPU feasibility (lines 9-11).
      if (mi == kUnplaced && mj == kUnplaced && m == n) {
        if (!cpu_fits(i, m, app.cpu_demand[j])) return;
      } else {
        if (mi == kUnplaced && !cpu_fits(i, m)) return;
        if (mj == kUnplaced && !cpu_fits(j, n)) return;
      }
      // Application constraints (fault tolerance / latency / pinning).
      if (mi == kUnplaced && !allowed(i, m)) return;
      if (mj == kUnplaced && !allowed(j, n)) return;
      if (mi == kUnplaced && mj == kUnplaced) {
        // Pair-internal constraints where both endpoints are being decided
        // right now: check j's machine against i's tentative one.
        Placement tentative = placement;
        tentative.machine_of_task[i] = m;
        if (!assignment_allowed(app.constraints, view, tentative, j, n)) return;
      }
      const double r = rate(m, n);
      if (r > best_rate) {
        best_rate = r;
        best_m = m;
        best_n = n;
      }
    };

    if (mi != kUnplaced) {
      for (std::size_t n = 0; n < M; ++n) consider(mi, n);
    } else if (mj != kUnplaced) {
      for (std::size_t m = 0; m < M; ++m) consider(m, mj);
    } else {
      for (std::size_t m = 0; m < M; ++m) {
        for (std::size_t n = 0; n < M; ++n) consider(m, n);
      }
    }

    if (best_m == kUnplaced) {
      throw PlacementError("greedy: no CPU-feasible path for transfer " +
                           std::to_string(i) + "->" + std::to_string(j));
    }
    if (mi == kUnplaced) assign(i, best_m);
    if (mj == kUnplaced) assign(j, best_n);
    register_transfer(best_m, best_n);
  }

  // Tasks with no transfers: first-fit-decreasing onto the freest machines.
  std::vector<std::size_t> leftovers;
  for (std::size_t t = 0; t < J; ++t) {
    if (placement.machine_of_task[t] == kUnplaced) leftovers.push_back(t);
  }
  std::stable_sort(leftovers.begin(), leftovers.end(), [&](std::size_t a, std::size_t b) {
    return app.cpu_demand[a] > app.cpu_demand[b];
  });
  for (std::size_t t : leftovers) {
    std::size_t best = kUnplaced;
    for (std::size_t m = 0; m < M; ++m) {
      if (!cpu_fits(t, m) || !allowed(t, m)) continue;
      if (best == kUnplaced || free_cores[m] > free_cores[best]) best = m;
    }
    if (best == kUnplaced) {
      throw PlacementError("greedy: no CPU room for task " + std::to_string(t));
    }
    assign(t, best);
  }
  return placement;
}

}  // namespace choreo::place

#include "place/phases.h"

#include "place/greedy.h"
#include "util/require.h"

namespace choreo::place {

void PhasedApplication::validate() const {
  CHOREO_REQUIRE(!cpu_demand.empty());
  CHOREO_REQUIRE(!phase_traffic.empty());
  for (const DoubleMatrix& m : phase_traffic) {
    CHOREO_REQUIRE(m.rows() == cpu_demand.size() && m.cols() == cpu_demand.size());
  }
  for (double c : cpu_demand) CHOREO_REQUIRE(c > 0.0);
}

Application PhasedApplication::phase(std::size_t index) const {
  CHOREO_REQUIRE(index < phase_traffic.size());
  Application app;
  app.name = name + "#phase" + std::to_string(index);
  app.cpu_demand = cpu_demand;
  app.traffic_bytes = phase_traffic[index];
  return app;
}

Application PhasedApplication::aggregate() const {
  validate();
  Application app;
  app.name = name + "#aggregate";
  app.cpu_demand = cpu_demand;
  app.traffic_bytes = DoubleMatrix(task_count(), task_count(), 0.0);
  for (const DoubleMatrix& m : phase_traffic) {
    for (std::size_t i = 0; i < task_count(); ++i) {
      for (std::size_t j = 0; j < task_count(); ++j) {
        app.traffic_bytes(i, j) += m(i, j);
      }
    }
  }
  return app;
}

namespace {

std::size_t moved_tasks(const Placement& a, const Placement& b) {
  std::size_t moved = 0;
  for (std::size_t t = 0; t < a.machine_of_task.size(); ++t) {
    if (a.machine_of_task[t] != b.machine_of_task[t]) ++moved;
  }
  return moved;
}

}  // namespace

PhasedPlan plan_phases(const PhasedApplication& app, const ClusterState& state,
                       RateModel model, double migration_cost_per_task_s) {
  app.validate();
  CHOREO_REQUIRE(migration_cost_per_task_s >= 0.0);
  GreedyPlacer greedy(model);

  PhasedPlan plan;
  for (std::size_t k = 0; k < app.phase_count(); ++k) {
    const Application phase_app = app.phase(k);
    const Placement fresh = greedy.place(phase_app, state);
    if (k == 0) {
      plan.placements.push_back(fresh);
      plan.estimated_completion_s +=
          estimate_completion_s(phase_app, fresh, state.view(), model);
      continue;
    }
    // Migrate into this phase only if the phase-time gain beats the cost.
    const Placement& prev = plan.placements.back();
    const double keep_time =
        estimate_completion_s(phase_app, prev, state.view(), model);
    const double fresh_time =
        estimate_completion_s(phase_app, fresh, state.view(), model);
    const std::size_t moved = moved_tasks(prev, fresh);
    const double migration_cost = static_cast<double>(moved) * migration_cost_per_task_s;
    if (moved > 0 && keep_time - fresh_time > migration_cost) {
      plan.placements.push_back(fresh);
      plan.migrations.push_back(moved);
      plan.estimated_completion_s += fresh_time + migration_cost;
    } else {
      plan.placements.push_back(prev);
      plan.migrations.push_back(0);
      plan.estimated_completion_s += keep_time;
    }
  }
  return plan;
}

PhasedPlan plan_aggregate(const PhasedApplication& app, const ClusterState& state,
                          RateModel model) {
  app.validate();
  GreedyPlacer greedy(model);
  const Placement placement = greedy.place(app.aggregate(), state);

  PhasedPlan plan;
  for (std::size_t k = 0; k < app.phase_count(); ++k) {
    plan.placements.push_back(placement);
    if (k > 0) plan.migrations.push_back(0);
    plan.estimated_completion_s +=
        estimate_completion_s(app.phase(k), placement, state.view(), model);
  }
  return plan;
}

}  // namespace choreo::place

#pragma once

#include "place/placer.h"
#include "util/rng.h"

namespace choreo::place {

/// §6 baseline: "Tasks are assigned to random VMs. This assignment makes
/// sure that CPU constraints are satisfied, but does not take the network
/// into account."
class RandomPlacer : public Placer {
 public:
  explicit RandomPlacer(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }
  Placement place(const Application& app, const ClusterState& state) override;

 private:
  Rng rng_;
};

/// §6 baseline: "assigns tasks in a round-robin order to VMs; a particular
/// task is assigned to the next machine in the list that has enough
/// available CPU" — a load-balancing placement. The rotation position
/// persists across applications.
class RoundRobinPlacer : public Placer {
 public:
  std::string name() const override { return "round-robin"; }
  Placement place(const Application& app, const ClusterState& state) override;

 private:
  std::size_t next_ = 0;
};

/// §6 baseline: "attempts to minimize the number of machines used. If
/// possible (given CPU constraints), a task will be placed onto a VM that is
/// already used by another task; a new VM will be used only when no existing
/// machine has enough available CPU."
class MinMachinesPlacer : public Placer {
 public:
  std::string name() const override { return "min-machines"; }
  Placement place(const Application& app, const ClusterState& state) override;
};

}  // namespace choreo::place

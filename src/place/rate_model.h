#pragma once

#include <algorithm>

#include "place/cluster.h"

namespace choreo::place {

/// Rate treated as "essentially infinite" for intra-machine transfers (§5).
inline constexpr double kIntraMachineRate = 1e15;

/// The one residual-rate code path (Algorithm 1 line 13). Every consumer —
/// `transfer_rate_bps`, the PlacementEngine's O(1) cached variant that the
/// greedy search runs on, and the completion-time objective — goes through
/// these three primitives, so the search and the objective cannot drift
/// apart silently. Keep the arithmetic expression of each primitive exactly
/// as written: placements are pinned bit-for-bit against an exhaustive-scan
/// oracle (test_engine_differential), and any reassociation would break
/// that.
namespace residual {

/// Colocated pair (same physical host): the transfer rides the virtual
/// switch, shared with the transfers already on that path.
inline double vswitch_rate_bps(double rate_bps, double placed_on_path) {
  return rate_bps / (placed_on_path + 1.0);
}

/// Pipe model: the path's capacity R*(c+1), shared with the measured cross
/// traffic and all transfers placed on the path.
inline double pipe_rate_bps(double path_capacity_bps, double cross_traffic,
                            double placed_on_path) {
  return path_capacity_bps / (cross_traffic + placed_on_path + 1.0);
}

/// Hose model: machine m's egress cap shared with the cross traffic out of m
/// and all transfers placed out of m — but never faster than the measured
/// single-connection rate of this particular path (the fabric or the
/// destination may be slower than the source hose).
inline double hose_rate_bps(double rate_bps, double hose_bps, double cross_out,
                            double placed_out_of_src) {
  return std::min(rate_bps, hose_bps / (cross_out + placed_out_of_src + 1.0));
}

}  // namespace residual

/// Equivalent background connections the hose of machine m is shared with:
/// the busiest measured cross traffic on any non-colocated path out of m
/// (0 when the view carries no cross-traffic estimates). O(n); the
/// PlacementEngine caches it per machine.
double hose_cross_out(const ClusterView& view, std::size_t m);

/// Rate a *new* transfer from machine m to machine n would see, given
/// everything already placed in `state` plus `extra_own` transfers the
/// current algorithm has tentatively routed the same way (Algorithm 1,
/// line 13):
///
///   * m == n: intra-machine, effectively infinite;
///   * colocated pair: the vswitch path, shared with transfers on it;
///   * Pipe model: the path's capacity R*(c+1), shared with the measured
///     cross traffic c and all transfers placed on m->n;
///   * Hose model: machine m's hose, shared with the cross traffic out of m
///     and all transfers placed out of m.
double transfer_rate_bps(const ClusterView& view, std::size_t m, std::size_t n,
                         RateModel model, double placed_on_path, double placed_out_of_src);

/// Convenience overload reading the placed-transfer counts from `state`
/// (O(1): delegates to the state's PlacementEngine indexes).
double transfer_rate_bps(const ClusterState& state, std::size_t m, std::size_t n,
                         RateModel model);

/// Analytic completion time (seconds) of `app` under `placement` — the
/// objective the Appendix formulates: the longest drain time over all
/// bottlenecks, assuming no unknown cross traffic. Pipe model: bottlenecks
/// are paths; hose model: bottlenecks are per-source hoses (plus vswitch
/// paths between colocated machines). Shares the inter-machine transfer
/// enumeration (`for_each_placed_transfer`) with the residual bookkeeping
/// the greedy search maintains.
double estimate_completion_s(const Application& app, const Placement& placement,
                             const ClusterView& view, RateModel model);

}  // namespace choreo::place

#pragma once

#include "place/cluster.h"

namespace choreo::place {

/// Rate treated as "essentially infinite" for intra-machine transfers (§5).
inline constexpr double kIntraMachineRate = 1e15;

/// Rate a *new* transfer from machine m to machine n would see, given
/// everything already placed in `state` plus `extra_own` transfers the
/// current algorithm has tentatively routed the same way (Algorithm 1,
/// line 13):
///
///   * m == n: intra-machine, effectively infinite;
///   * colocated pair: the vswitch path, shared with transfers on it;
///   * Pipe model: the path's capacity R*(c+1), shared with the measured
///     cross traffic c and all transfers placed on m->n;
///   * Hose model: machine m's hose, shared with the cross traffic out of m
///     and all transfers placed out of m.
double transfer_rate_bps(const ClusterView& view, std::size_t m, std::size_t n,
                         RateModel model, double placed_on_path, double placed_out_of_src);

/// Convenience overload reading the placed-transfer counts from `state`.
double transfer_rate_bps(const ClusterState& state, std::size_t m, std::size_t n,
                         RateModel model);

/// Analytic completion time (seconds) of `app` under `placement` — the
/// objective the Appendix formulates: the longest drain time over all
/// bottlenecks, assuming no unknown cross traffic. Pipe model: bottlenecks
/// are paths; hose model: bottlenecks are per-source hoses (plus vswitch
/// paths between colocated machines).
double estimate_completion_s(const Application& app, const Placement& placement,
                             const ClusterView& view, RateModel model);

}  // namespace choreo::place

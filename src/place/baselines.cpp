#include "place/baselines.h"

#include <algorithm>

namespace choreo::place {
namespace {

std::vector<double> snapshot_free_cores(const ClusterState& state) {
  std::vector<double> free(state.machine_count());
  for (std::size_t m = 0; m < state.machine_count(); ++m) free[m] = state.free_cores(m);
  return free;
}

}  // namespace

Placement RandomPlacer::place(const Application& app, const ClusterState& state) {
  app.validate();
  const std::size_t M = state.machine_count();
  std::vector<double> free = snapshot_free_cores(state);

  Placement placement;
  placement.machine_of_task.assign(app.task_count(), kUnplaced);
  for (std::size_t t = 0; t < app.task_count(); ++t) {
    // Draw among CPU-feasible machines uniformly.
    std::vector<std::size_t> feasible;
    for (std::size_t m = 0; m < M; ++m) {
      if (free[m] + 1e-9 >= app.cpu_demand[t]) feasible.push_back(m);
    }
    if (feasible.empty()) {
      throw PlacementError("random: no CPU room for task " + std::to_string(t));
    }
    const std::size_t m = feasible[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(feasible.size()) - 1))];
    placement.machine_of_task[t] = m;
    free[m] -= app.cpu_demand[t];
  }
  return placement;
}

Placement RoundRobinPlacer::place(const Application& app, const ClusterState& state) {
  app.validate();
  const std::size_t M = state.machine_count();
  std::vector<double> free = snapshot_free_cores(state);

  Placement placement;
  placement.machine_of_task.assign(app.task_count(), kUnplaced);
  for (std::size_t t = 0; t < app.task_count(); ++t) {
    bool placed = false;
    for (std::size_t probe = 0; probe < M; ++probe) {
      const std::size_t m = (next_ + probe) % M;
      if (free[m] + 1e-9 >= app.cpu_demand[t]) {
        placement.machine_of_task[t] = m;
        free[m] -= app.cpu_demand[t];
        next_ = (m + 1) % M;
        placed = true;
        break;
      }
    }
    if (!placed) {
      throw PlacementError("round-robin: no CPU room for task " + std::to_string(t));
    }
  }
  return placement;
}

Placement MinMachinesPlacer::place(const Application& app, const ClusterState& state) {
  app.validate();
  const std::size_t M = state.machine_count();
  std::vector<double> free = snapshot_free_cores(state);
  // "Used" machines: already carrying committed load, or used during this
  // placement.
  std::vector<bool> used(M, false);
  for (std::size_t m = 0; m < M; ++m) {
    used[m] = state.free_cores(m) < state.view().cores[m] - 1e-9;
  }

  Placement placement;
  placement.machine_of_task.assign(app.task_count(), kUnplaced);
  for (std::size_t t = 0; t < app.task_count(); ++t) {
    std::size_t chosen = kUnplaced;
    // Prefer used machines (first-fit over used, then open a fresh one).
    for (std::size_t m = 0; m < M; ++m) {
      if (used[m] && free[m] + 1e-9 >= app.cpu_demand[t]) {
        chosen = m;
        break;
      }
    }
    if (chosen == kUnplaced) {
      for (std::size_t m = 0; m < M; ++m) {
        if (!used[m] && free[m] + 1e-9 >= app.cpu_demand[t]) {
          chosen = m;
          break;
        }
      }
    }
    if (chosen == kUnplaced) {
      throw PlacementError("min-machines: no CPU room for task " + std::to_string(t));
    }
    placement.machine_of_task[t] = chosen;
    free[chosen] -= app.cpu_demand[t];
    used[chosen] = true;
  }
  return placement;
}

}  // namespace choreo::place

#include "place/baselines.h"

#include <algorithm>

#include "place/engine.h"

namespace choreo::place {

// The network-blind baselines run on the same PlacementEngine residual
// indexes as the greedy placer: tentative CPU consumption goes through a
// Txn (rolled back before returning) instead of per-call snapshot copies of
// the free-core vector.

Placement RandomPlacer::place(const Application& app, const ClusterState& state) {
  app.validate();
  PlacementEngine& eng = state.engine();
  const std::size_t M = eng.machine_count();
  PlacementEngine::Txn txn(eng);

  Placement placement;
  placement.machine_of_task.assign(app.task_count(), kUnplaced);
  for (std::size_t t = 0; t < app.task_count(); ++t) {
    // Draw among CPU-feasible machines uniformly.
    std::vector<std::size_t> feasible;
    for (std::size_t m = 0; m < M; ++m) {
      if (eng.cpu_fits(m, app.cpu_demand[t])) feasible.push_back(m);
    }
    if (feasible.empty()) {
      throw PlacementError("random: no CPU room for task " + std::to_string(t));
    }
    const std::size_t m = feasible[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(feasible.size()) - 1))];
    placement.machine_of_task[t] = m;
    txn.apply_task(m, app.cpu_demand[t]);
  }
  return placement;
}

Placement RoundRobinPlacer::place(const Application& app, const ClusterState& state) {
  app.validate();
  PlacementEngine& eng = state.engine();
  const std::size_t M = eng.machine_count();
  PlacementEngine::Txn txn(eng);

  Placement placement;
  placement.machine_of_task.assign(app.task_count(), kUnplaced);
  for (std::size_t t = 0; t < app.task_count(); ++t) {
    bool placed = false;
    for (std::size_t probe = 0; probe < M; ++probe) {
      const std::size_t m = (next_ + probe) % M;
      if (eng.cpu_fits(m, app.cpu_demand[t])) {
        placement.machine_of_task[t] = m;
        txn.apply_task(m, app.cpu_demand[t]);
        next_ = (m + 1) % M;
        placed = true;
        break;
      }
    }
    if (!placed) {
      throw PlacementError("round-robin: no CPU room for task " + std::to_string(t));
    }
  }
  return placement;
}

Placement MinMachinesPlacer::place(const Application& app, const ClusterState& state) {
  app.validate();
  PlacementEngine& eng = state.engine();
  const std::size_t M = eng.machine_count();
  PlacementEngine::Txn txn(eng);
  // "Used" machines: already carrying committed load, or used during this
  // placement.
  std::vector<bool> used(M, false);
  for (std::size_t m = 0; m < M; ++m) {
    used[m] = eng.free_cores(m) < eng.view().cores[m] - 1e-9;
  }

  Placement placement;
  placement.machine_of_task.assign(app.task_count(), kUnplaced);
  for (std::size_t t = 0; t < app.task_count(); ++t) {
    std::size_t chosen = kUnplaced;
    // Prefer used machines (first-fit over used, then open a fresh one).
    for (std::size_t m = 0; m < M; ++m) {
      if (used[m] && eng.cpu_fits(m, app.cpu_demand[t])) {
        chosen = m;
        break;
      }
    }
    if (chosen == kUnplaced) {
      for (std::size_t m = 0; m < M; ++m) {
        if (!used[m] && eng.cpu_fits(m, app.cpu_demand[t])) {
          chosen = m;
          break;
        }
      }
    }
    if (chosen == kUnplaced) {
      throw PlacementError("min-machines: no CPU room for task " + std::to_string(t));
    }
    placement.machine_of_task[t] = chosen;
    txn.apply_task(chosen, app.cpu_demand[t]);
    used[chosen] = true;
  }
  return placement;
}

}  // namespace choreo::place

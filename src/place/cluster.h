#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "place/app.h"
#include "util/matrix.h"

namespace choreo::place {

/// Sentinel for "task not placed yet".
inline constexpr std::size_t kUnplaced = std::numeric_limits<std::size_t>::max();

/// A placement: machine index per task.
struct Placement {
  std::vector<std::size_t> machine_of_task;

  bool complete() const {
    for (std::size_t m : machine_of_task) {
      if (m == kUnplaced) return false;
    }
    return !machine_of_task.empty();
  }
};

/// How rates are estimated when several transfers share the network (§5,
/// Algorithm 1 line 13).
enum class RateModel {
  /// Each path m->n is an independent pipe; transfers on the same path share
  /// its measured rate.
  Pipe,
  /// All transfers leaving machine m share m's hose (what §4.3 finds on EC2
  /// and Rackspace).
  Hose,
};

const char* to_string(RateModel m);

/// The tenant's knowledge of its rented cluster: what Choreo's measurement
/// phase produces (or, in tests, ground truth).
struct ClusterView {
  /// R: single-connection TCP throughput of each VM pair (bits/s). The
  /// diagonal is ignored (intra-machine transfers are free).
  DoubleMatrix rate_bps;
  /// Equivalent background connections per path (§3.2); zero when unknown.
  DoubleMatrix cross_traffic;
  /// Physical co-location groups from traceroute (§3.3): machines with the
  /// same group share a host (their paths bypass the hose). Distinct values
  /// mean distinct hosts.
  std::vector<int> colocation_group;
  /// Traceroute hop counts between machines (1 = same host, 2 = same rack,
  /// ...). Optional — required only by latency constraints; empty otherwise.
  DoubleMatrix hops;
  /// CPU capacity per machine, in cores.
  std::vector<double> cores;
  /// Freshness provenance: the measurement epoch each rate_bps(m, n) was
  /// last refreshed at (measure::ViewCache stamps). Optional — empty means
  /// the whole view is one uniform snapshot (ground truth, synthetic views);
  /// otherwise n x n, diagonal unused.
  Matrix<std::uint64_t> pair_epoch;
  /// Epoch of the measurement cycle that produced this view; pairs whose
  /// pair_epoch is older were carried over from the cache, not re-probed.
  std::uint64_t view_epoch = 0;

  std::size_t machine_count() const { return cores.size(); }

  /// Epoch stamp of one pair estimate; view_epoch when no per-pair
  /// provenance was recorded.
  std::uint64_t freshness(std::size_t m, std::size_t n) const {
    return pair_epoch.empty() ? view_epoch : pair_epoch(m, n);
  }

  bool colocated(std::size_t m, std::size_t n) const {
    return colocation_group[m] == colocation_group[n];
  }

  /// Estimated hose (egress cap) of machine m: the best single-connection
  /// rate out of m to a non-colocated machine. (A single bulk connection
  /// fills the hose when the fabric is unconstrained, which §4 verifies.)
  double hose_bps(std::size_t m) const;

  /// Effective capacity of path m->n: the measured single-connection rate
  /// un-shared from the measured cross traffic, R * (c + 1).
  double path_capacity_bps(std::size_t m, std::size_t n) const;

  void validate() const;
};

/// Mutable occupancy of a cluster as applications are placed one after
/// another: free CPU plus the transfer counts the rate models need.
class ClusterState {
 public:
  explicit ClusterState(ClusterView view);

  const ClusterView& view() const { return view_; }
  std::size_t machine_count() const { return view_.machine_count(); }

  double free_cores(std::size_t m) const;
  /// Transfers currently placed on path m->n (inter-machine only).
  double transfers_on_path(std::size_t m, std::size_t n) const;
  /// Transfers currently leaving machine m for non-colocated machines.
  double transfers_out_of(std::size_t m) const;

  /// Records an application's placement: consumes CPU and registers its
  /// transfers so later placements see the contention.
  void commit(const Application& app, const Placement& placement);

  /// Removes a previously committed application (for §2.4 re-evaluation /
  /// migration). The caller must pass the same placement it committed.
  void release(const Application& app, const Placement& placement);

 private:
  void apply(const Application& app, const Placement& placement, double sign);

  ClusterView view_;
  std::vector<double> used_cores_;
  DoubleMatrix path_transfers_;
  std::vector<double> out_transfers_;
};

}  // namespace choreo::place

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "place/app.h"
#include "util/matrix.h"

namespace choreo::place {

class PlacementEngine;

/// Sentinel for "task not placed yet".
inline constexpr std::size_t kUnplaced = std::numeric_limits<std::size_t>::max();

/// A placement: machine index per task.
struct Placement {
  std::vector<std::size_t> machine_of_task;

  bool complete() const {
    for (std::size_t m : machine_of_task) {
      if (m == kUnplaced) return false;
    }
    return !machine_of_task.empty();
  }
};

/// How rates are estimated when several transfers share the network (§5,
/// Algorithm 1 line 13).
enum class RateModel {
  /// Each path m->n is an independent pipe; transfers on the same path share
  /// its measured rate.
  Pipe,
  /// All transfers leaving machine m share m's hose (what §4.3 finds on EC2
  /// and Rackspace).
  Hose,
};

const char* to_string(RateModel m);

/// The tenant's knowledge of its rented cluster: what Choreo's measurement
/// phase produces (or, in tests, ground truth).
struct ClusterView {
  /// R: single-connection TCP throughput of each VM pair (bits/s). The
  /// diagonal is ignored (intra-machine transfers are free).
  DoubleMatrix rate_bps;
  /// Equivalent background connections per path (§3.2); zero when unknown.
  DoubleMatrix cross_traffic;
  /// Physical co-location groups from traceroute (§3.3): machines with the
  /// same group share a host (their paths bypass the hose). Distinct values
  /// mean distinct hosts.
  std::vector<int> colocation_group;
  /// Traceroute hop counts between machines (1 = same host, 2 = same rack,
  /// ...). Optional — required only by latency constraints; empty otherwise.
  DoubleMatrix hops;
  /// CPU capacity per machine, in cores.
  std::vector<double> cores;
  /// Freshness provenance: the measurement epoch each rate_bps(m, n) was
  /// last refreshed at (measure::ViewCache stamps). Optional — empty means
  /// the whole view is one uniform snapshot (ground truth, synthetic views);
  /// otherwise n x n, diagonal unused.
  Matrix<std::uint64_t> pair_epoch;
  /// Epoch of the measurement cycle that produced this view; pairs whose
  /// pair_epoch is older were carried over from the cache, not re-probed.
  std::uint64_t view_epoch = 0;

  std::size_t machine_count() const { return cores.size(); }

  /// Epoch stamp of one pair estimate; view_epoch when no per-pair
  /// provenance was recorded.
  std::uint64_t freshness(std::size_t m, std::size_t n) const {
    return pair_epoch.empty() ? view_epoch : pair_epoch(m, n);
  }

  bool colocated(std::size_t m, std::size_t n) const {
    return colocation_group[m] == colocation_group[n];
  }

  /// Estimated hose (egress cap) of machine m: the best single-connection
  /// rate out of m to a non-colocated machine. (A single bulk connection
  /// fills the hose when the fabric is unconstrained, which §4 verifies.)
  /// O(n) — placement inner loops should read the PlacementEngine's cached
  /// copy instead.
  double hose_bps(std::size_t m) const;

  /// Effective capacity of path m->n: the measured single-connection rate
  /// un-shared from the measured cross traffic, R * (c + 1).
  double path_capacity_bps(std::size_t m, std::size_t n) const;

  void validate() const;
};

/// Scales `view.rate_bps` entry-wise by `factor` (machine_count x
/// machine_count; diagonal ignored) — the forecast plane's uncertainty-aware
/// placement hook. forecast::PredictivePolicy derives the factors from a
/// quantile of each pair's recent prediction error, so placers plan against
/// pessimistic rates on pairs the forecast keeps getting wrong instead of
/// trusting point estimates. Applying the discount to the view (rather than
/// inside one placer) keeps every rate consumer — engine lookups, the
/// exhaustive oracle, estimate_completion_s — consistent.
void apply_rate_discount(ClusterView& view, const DoubleMatrix& factor);

/// Invokes fn(src_machine, dst_machine, bytes) for every traffic-matrix
/// entry of `app` that actually crosses machines under `placement` — the one
/// definition of "a placed transfer" shared by the residual bookkeeping
/// (PlacementEngine), the completion-time objective (estimate_completion_s),
/// and anything else that aggregates placed traffic. Intra-machine entries
/// are free and skipped; zero entries produce no transfer.
template <typename Fn>
void for_each_placed_transfer(const Application& app, const Placement& placement,
                              Fn&& fn) {
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    for (std::size_t j = 0; j < app.task_count(); ++j) {
      const double b = app.traffic_bytes(i, j);
      if (b <= 0.0) continue;
      const std::size_t m = placement.machine_of_task[i];
      const std::size_t n = placement.machine_of_task[j];
      if (m == n) continue;  // intra-machine is free
      fn(m, n, b);
    }
  }
}

/// Mutable occupancy of a cluster as applications are placed one after
/// another: free CPU plus the transfer counts the rate models need.
///
/// Since the incremental-placement refactor this is a thin facade over a
/// PlacementEngine, which owns the view, the residual indexes (CPU slack,
/// per-path placed-transfer counts, per-source hose residuals), and the
/// O(1) tentative apply/undo machinery placement algorithms run on — see
/// place/engine.h for the index and transaction protocol.
class ClusterState {
 public:
  explicit ClusterState(ClusterView view);
  ~ClusterState();
  ClusterState(ClusterState&&) noexcept;
  ClusterState& operator=(ClusterState&&) noexcept;

  const ClusterView& view() const;
  std::size_t machine_count() const;

  double free_cores(std::size_t m) const;
  /// Transfers currently placed on path m->n (inter-machine only).
  double transfers_on_path(std::size_t m, std::size_t n) const;
  /// Transfers currently leaving machine m for non-colocated machines.
  double transfers_out_of(std::size_t m) const;

  /// Records an application's placement: consumes CPU and registers its
  /// transfers so later placements see the contention.
  void commit(const Application& app, const Placement& placement);

  /// Removes a previously committed application (for §2.4 re-evaluation /
  /// migration). The caller must pass the same placement it committed.
  void release(const Application& app, const Placement& placement);

  /// Swaps in a freshly measured view of the SAME fleet while keeping the
  /// residual occupancy (committed CPU and transfer counts) — what makes a
  /// §2.4 measurement refresh O(n^2) index rebuild instead of a full replay
  /// of every running application.
  void update_view(ClusterView view);

  /// Discounts the current view's pair rates in place (see the free
  /// function above); residual occupancy is kept, rate indexes rebuilt.
  void apply_rate_discount(const DoubleMatrix& factor);

  /// A state with the same view and cached indexes but zero occupancy —
  /// cheap scratch for hypothetical re-placement (§2.4); skips re-validating
  /// and re-sorting the static indexes.
  ClusterState clone_unoccupied() const;

  /// A full copy — view, cached indexes, AND residual occupancy. What the
  /// serving plane refreshes its per-worker scratch arenas from when a new
  /// snapshot epoch is published; like clone_unoccupied it skips
  /// re-validating and re-sorting.
  ClusterState clone() const;

  /// The engine this state is backed by. Returned non-const from a const
  /// state on purpose: placement algorithms run *tentative* apply/undo
  /// transactions (PlacementEngine::Txn) that are always rolled back before
  /// place() returns, so the observable state is unchanged — logical
  /// constness. The placement plane is single-threaded; do not share one
  /// ClusterState across threads.
  PlacementEngine& engine() const { return *engine_; }

 private:
  explicit ClusterState(std::unique_ptr<PlacementEngine> engine);

  std::unique_ptr<PlacementEngine> engine_;
};

}  // namespace choreo::place

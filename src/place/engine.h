#pragma once

#include <cstdint>
#include <vector>

#include "place/cluster.h"
#include "place/rate_model.h"

namespace choreo::place {

/// The incremental placement engine: the mutable residual state of one
/// cluster plus the indexes that make greedy candidate selection cheap.
///
/// The paper's greedy placer (Algorithm 1, §5) evaluates a residual rate for
/// every (transfer, machine-pair) candidate. Evaluated naively that rate is
/// O(n) per candidate under the hose model (the hose and its cross-traffic
/// share are max-scans over the row), so placing one application is
/// O(transfers · n^2 · n) — fine at the paper's ten VMs, hopeless at the
/// fleet sizes the measurement plane now handles. The engine makes every
/// rate query O(1) and candidate selection lazy:
///
///   * **Static per-machine indexes**, rebuilt only when the view changes
///     (one measurement cycle, not one placement): cached `hose_bps`,
///     cached hose cross-traffic share, and *ranked candidate lists* —
///     for each machine its destinations (and sources) sorted by the static
///     upper bound on any residual rate the pair can ever achieve. Placed
///     transfer counts only ever divide a rate down, so the measured
///     single-connection rate R(m,n) (and kIntraMachineRate on the
///     diagonal) bounds every model from above; a best-first search over
///     the ranked lists can stop as soon as the next upper bound drops
///     below the best exact rate found (top-k pruning).
///
///   * **Residual indexes as first-class mutable state**: CPU slack,
///     per-path placed-transfer counts and per-source out-of-hose counts,
///     updated in O(1) per tentative assignment and rolled back in O(1) via
///     the Txn undo log — placement algorithms no longer copy O(n^2)
///     working state per call, and sequential arrivals / §2.4 re-placement
///     reuse the committed residuals instead of replaying the cluster.
///
/// Rates produced here are bit-identical to place::transfer_rate_bps — both
/// go through the residual:: primitives, and the cached per-machine values
/// are computed by the same code the uncached path runs. The engine-backed
/// greedy is pinned bit-for-bit against the exhaustive-scan oracle in
/// test_engine_differential.
///
/// The engine is single-threaded by design (the measurement plane is the
/// concurrent one); a Txn mutates the engine in place and must be rolled
/// back (or destroyed) before observable state is read by anyone else.
class PlacementEngine {
 public:
  explicit PlacementEngine(ClusterView view);

  const ClusterView& view() const { return view_; }
  std::size_t machine_count() const { return view_.machine_count(); }

  /// Always-on lightweight instrumentation: plain integers (the engine is
  /// single-threaded by contract), incremented on the hot paths and scraped
  /// into the obs registry by callers (Choreo, PlacementService) as deltas.
  /// Cloned engines carry their parent's totals; scrape deltas, not values.
  struct Counters {
    std::uint64_t txn_ops = 0;            ///< tentative apply_task/apply_transfer
    std::uint64_t candidates_walked = 0;  ///< best-first candidates evaluated
    std::uint64_t placements = 0;         ///< greedy place() searches run
  };
  Counters& counters() const { return counters_; }

  // ---- Residual reads (all O(1)) ----

  double free_cores(std::size_t m) const { return view_.cores[m] - used_cores_[m]; }
  /// The CPU feasibility rule every placer shares: demand fits into m's
  /// remaining cores (with the common 1e-9 slack for exact fits).
  bool cpu_fits(std::size_t m, double demand) const {
    return free_cores(m) + 1e-9 >= demand;
  }
  /// Transfers currently placed on path m->n (inter-machine only),
  /// committed plus any tentative Txn applications.
  double transfers_on_path(std::size_t m, std::size_t n) const {
    return on_path_[m * machine_count() + n];
  }
  /// Transfers currently leaving machine m for non-colocated machines.
  double transfers_out_of(std::size_t m) const { return out_of_[m]; }

  /// Residual rate a new transfer m->n would see right now: the O(1)
  /// equivalent of transfer_rate_bps(view(), m, n, model,
  /// transfers_on_path(m, n), transfers_out_of(m)).
  double rate_bps(std::size_t m, std::size_t n, RateModel model) const;

  // ---- Static indexes (rebuilt by update_view, O(1) to read) ----

  /// Cached ClusterView::hose_bps(m).
  double hose_bps(std::size_t m) const { return hose_[m]; }
  /// Cached hose_cross_out(view, m).
  double hose_cross_out_of(std::size_t m) const { return cross_out_[m]; }
  /// Static upper bound on rate_bps(m, n, model) in ANY residual state:
  /// kIntraMachineRate on the diagonal; off it, the measured
  /// single-connection rate joined with the pipe model's zero-load rate.
  /// (The latter is mathematically R but its two roundings can land an ulp
  /// above it, so the bound is taken over the literally computed value —
  /// the lazy search's pruning must never cut a candidate whose exact rate
  /// ties the best.) What the ranked candidate lists are ordered by.
  double upper_bound_bps(std::size_t m, std::size_t n) const {
    return ub_(m, n);
  }

  /// One entry of a ranked candidate list: the peer machine and its static
  /// rate ceiling, stored together so the hot best-first walks read both
  /// from one contiguous array instead of gathering bounds through the ub_
  /// matrix. `bound` is exactly upper_bound_bps(row machine, peer) — same
  /// double, copied at rebuild time — so pruning on it is bit-identical to
  /// pruning through the matrix.
  struct RankEntry {
    double bound = 0.0;
    std::uint32_t peer = 0;
  };
  /// Destination list of source m: machine_count() entries ordered by
  /// (bound desc, peer asc). Valid until the next static-index rebuild.
  const RankEntry* ranked_dest_row(std::size_t m) const {
    return dest_rank_.data() + m * machine_count();
  }
  /// Source list toward destination n, same ordering contract.
  const RankEntry* ranked_src_row(std::size_t n) const {
    return src_rank_.data() + n * machine_count();
  }
  /// k-th best destination of source m by (upper bound desc, index asc);
  /// k in [0, machine_count()). Position 0 is m itself unless some measured
  /// rate exceeds kIntraMachineRate.
  std::size_t ranked_dest(std::size_t m, std::size_t k) const {
    return dest_rank_[m * machine_count() + k].peer;
  }
  /// k-th best source toward destination n by (upper bound desc, index asc).
  std::size_t ranked_src(std::size_t n, std::size_t k) const {
    return src_rank_[n * machine_count() + k].peer;
  }

  // ---- Committed mutations ----

  /// Records an application's placement: consumes CPU and registers its
  /// inter-machine transfers. Must not be called inside an open Txn.
  void commit(const Application& app, const Placement& placement);
  /// Reverse of commit (same placement the caller committed).
  void release(const Application& app, const Placement& placement);

  /// Swaps in a new view of the same fleet, rebuilding the static indexes
  /// and keeping the residual occupancy. Out-of-hose counts are re-derived
  /// from the per-path counts (exact: they are integer-valued), so even a
  /// changed colocation clustering needs no replay of running applications.
  void update_view(ClusterView view);

  /// Uncertainty-aware placement hook (the forecast plane): scales the
  /// view's pair rates entry-wise by `factor` (n x n; diagonal ignored) and
  /// rebuilds the static indexes, keeping the residual occupancy. Because
  /// the discount lands in the view itself, every rate consumer — the
  /// engine's cached lookups, the exhaustive oracle, and the
  /// completion-time objective — sees the same discounted rates, so the
  /// engine/oracle bit-identity is preserved under any discount.
  void apply_rate_discount(const DoubleMatrix& factor);

  /// Copy with identical view and static indexes but zero occupancy.
  PlacementEngine clone_unoccupied() const;

  /// Full copy: identical view, static indexes, AND residual occupancy.
  /// What the serving plane's per-worker scratch arenas are refreshed from —
  /// a plain O(n^2) memcpy-shaped copy that skips re-validating the view and
  /// re-sorting the ranked lists. Must not be called inside an open Txn.
  PlacementEngine clone() const;

  // ---- Tentative mutations ----

  /// RAII transaction: O(1) tentative apply of task CPU and transfer
  /// registrations, rolled back LIFO on destruction (or explicit
  /// rollback()). Placement algorithms run their whole search inside one
  /// Txn, so a const ClusterState& is observably unchanged when place()
  /// returns — including on the exception path.
  class Txn {
   public:
    explicit Txn(PlacementEngine& engine)
        : engine_(&engine), mark_(engine.txn_log_.size()) {}
    Txn(const Txn&) = delete;
    Txn& operator=(const Txn&) = delete;
    ~Txn() { rollback(); }

    /// Tentatively consumes `cores` on machine m.
    void apply_task(std::size_t m, double cores) {
      engine_->used_cores_[m] += cores;
      engine_->txn_log_.push_back(Op{m, 0, cores, Op::kTask});
      ++engine_->counters_.txn_ops;
    }
    /// Tentatively registers one transfer m->n (no-op when m == n, exactly
    /// like the committed bookkeeping).
    void apply_transfer(std::size_t m, std::size_t n) {
      if (m == n) return;
      engine_->register_transfer(m, n, +1.0);
      engine_->txn_log_.push_back(Op{m, n, 0.0, Op::kTransfer});
      ++engine_->counters_.txn_ops;
    }
    /// Undoes everything applied since construction, LIFO.
    void rollback() {
      auto& log = engine_->txn_log_;
      while (log.size() > mark_) {
        const Op& op = log.back();
        if (op.kind == Op::kTask) {
          engine_->used_cores_[op.m] -= op.cores;
        } else {
          engine_->register_transfer(op.m, op.n, -1.0);
        }
        log.pop_back();
      }
    }

   private:
    PlacementEngine* engine_;
    std::size_t mark_;
  };

 private:
  friend class Txn;

  struct Op {
    std::size_t m = 0;
    std::size_t n = 0;
    double cores = 0.0;
    enum Kind : std::uint8_t { kTask, kTransfer } kind = kTask;
  };

  void register_transfer(std::size_t m, std::size_t n, double sign) {
    on_path_[m * machine_count() + n] += sign;
    if (!view_.colocated(m, n)) out_of_[m] += sign;
  }
  void apply(const Application& app, const Placement& placement, double sign);
  void rebuild_static();

  ClusterView view_;

  // Static indexes (functions of view_ only).
  std::vector<double> hose_;
  std::vector<double> cross_out_;
  DoubleMatrix ub_;
  std::vector<RankEntry> dest_rank_;  // machine_count^2, row-major by source
  std::vector<RankEntry> src_rank_;   // machine_count^2, row-major by destination

  // Residual indexes (committed plus open-Txn tentative state). on_path_ is
  // a flat row-major array indexed without per-access bounds checks — the
  // rate query on the serving hot path touches it once per candidate.
  std::vector<double> used_cores_;
  std::vector<double> on_path_;  // machine_count^2, row-major by source
  std::vector<double> out_of_;

  std::vector<Op> txn_log_;

  mutable Counters counters_;
};

}  // namespace choreo::place

#pragma once

#include "place/placer.h"
#include "place/rate_model.h"

namespace choreo::place {

/// Algorithm 1: greedy network-aware placement.
///
/// Transfers are visited in descending byte order; each is placed on the
/// residual-fastest machine path, where intra-machine "paths" have
/// essentially infinite rate — so heavy task pairs gravitate onto one
/// machine when CPU allows, and otherwise onto the fastest measured paths.
/// Rates account for transfers already placed (this application's and any
/// previously committed ones) under the configured rate model.
///
/// Candidate selection runs on the state's PlacementEngine: O(1) cached
/// residual rates and a lazy best-first walk over statically ranked
/// candidate lists, stopping as soon as the next static upper bound cannot
/// beat the best exact rate found. Results are bit-identical to the
/// exhaustive scan (ExhaustiveGreedyPlacer below), pinned by
/// test_engine_differential.
///
/// Under the forecast plane the view's rates may already carry an
/// uncertainty discount (place::apply_rate_discount /
/// PlacementEngine::apply_rate_discount): pairs whose recent prediction
/// error is high are derated by a configurable error quantile, so this
/// search ranks candidates by pessimistic rather than point-estimate rates.
/// The discount lives in the view, so the engine walk and the exhaustive
/// oracle stay bit-identical under any discount.
class GreedyPlacer : public Placer {
 public:
  explicit GreedyPlacer(RateModel model = RateModel::Hose) : model_(model) {}

  std::string name() const override { return std::string("choreo-greedy-") + to_string(model_); }

  Placement place(const Application& app, const ClusterState& state) override;

 private:
  RateModel model_;
};

/// The original Algorithm 1 implementation: a full scan over every
/// (machine, machine) candidate per transfer, with rates evaluated from
/// scratch. O(transfers · n^2 · n) per application — kept verbatim as the
/// reference oracle the engine-backed GreedyPlacer is differentially tested
/// against, and as the baseline column of bench/tbl_placement_scale.
class ExhaustiveGreedyPlacer : public Placer {
 public:
  explicit ExhaustiveGreedyPlacer(RateModel model = RateModel::Hose) : model_(model) {}

  std::string name() const override {
    return std::string("choreo-greedy-") + to_string(model_) + "-exhaustive";
  }

  Placement place(const Application& app, const ClusterState& state) override;

 private:
  RateModel model_;
};

}  // namespace choreo::place

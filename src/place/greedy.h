#pragma once

#include "place/placer.h"
#include "place/rate_model.h"

namespace choreo::place {

/// Algorithm 1: greedy network-aware placement.
///
/// Transfers are visited in descending byte order; each is placed on the
/// residual-fastest machine path, where intra-machine "paths" have
/// essentially infinite rate — so heavy task pairs gravitate onto one
/// machine when CPU allows, and otherwise onto the fastest measured paths.
/// Rates account for transfers already placed (this application's and any
/// previously committed ones) under the configured rate model.
class GreedyPlacer : public Placer {
 public:
  explicit GreedyPlacer(RateModel model = RateModel::Hose) : model_(model) {}

  std::string name() const override { return std::string("choreo-greedy-") + to_string(model_); }

  Placement place(const Application& app, const ClusterState& state) override;

 private:
  RateModel model_;
};

}  // namespace choreo::place

#include "place/app.h"

#include <algorithm>

namespace choreo::place {

Application combine(const std::vector<Application>& apps) {
  CHOREO_REQUIRE(!apps.empty());
  std::size_t total = 0;
  for (const Application& a : apps) {
    a.validate();
    total += a.task_count();
  }
  Application out;
  out.name = "combined";
  out.cpu_demand.reserve(total);
  out.traffic_bytes = DoubleMatrix(total, total, 0.0);
  out.arrival_s = apps.front().arrival_s;
  std::size_t offset = 0;
  for (const Application& a : apps) {
    for (double c : a.cpu_demand) out.cpu_demand.push_back(c);
    for (std::size_t i = 0; i < a.task_count(); ++i) {
      for (std::size_t j = 0; j < a.task_count(); ++j) {
        out.traffic_bytes(offset + i, offset + j) = a.traffic_bytes(i, j);
      }
    }
    // Carry constraints over with shifted task indices.
    for (const auto& [x, y] : a.constraints.separate) {
      out.constraints.separate.emplace_back(offset + x, offset + y);
    }
    for (const PlacementConstraints::LatencyBound& l : a.constraints.latency) {
      out.constraints.latency.push_back({offset + l.a, offset + l.b, l.max_hops});
    }
    for (const auto& [task, machine] : a.constraints.pinned) {
      out.constraints.pinned.emplace(offset + task, machine);
    }
    out.arrival_s = std::min(out.arrival_s, a.arrival_s);
    offset += a.task_count();
  }
  return out;
}

std::vector<TransferDemand> sorted_transfers(const Application& app) {
  std::vector<TransferDemand> out;
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    for (std::size_t j = 0; j < app.task_count(); ++j) {
      const double b = app.traffic_bytes(i, j);
      if (b > 0.0) out.push_back(TransferDemand{i, j, b});
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const TransferDemand& a, const TransferDemand& b) {
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    if (a.src_task != b.src_task) return a.src_task < b.src_task;
    return a.dst_task < b.dst_task;
  });
  return out;
}

}  // namespace choreo::place

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "flowsim/max_min.h"
#include "flowsim/max_min_kernel.h"
#include "net/routing.h"
#include "net/topology.h"
#include "util/rng.h"

namespace choreo::flowsim {

using FlowId = std::size_t;

inline constexpr double kInfiniteBytes = std::numeric_limits<double>::infinity();

/// Description of a flow to simulate.
struct FlowSpec {
  net::NodeId src = 0;
  net::NodeId dst = 0;
  /// Bytes to transfer; kInfiniteBytes for a persistent (backlogged) flow.
  double bytes = 0.0;
  double start_time = 0.0;
  /// Selects among ECMP paths; flows with different keys may hash to
  /// different aggregate/core links.
  std::uint64_t flow_key = 0;
  /// Additional shared resources this flow consumes (hose caps, vswitches).
  std::vector<ResourceId> extra_resources;
  /// Individual rate ceiling (bits/s); infinity when absent. Applied *after*
  /// waterfilling: a capped flow is frozen at min(fair share, cap) and its
  /// unused share is NOT redistributed to other flows (see
  /// docs/ARCHITECTURE.md, pinned by FlowSim.RateCapDoesNotRedistribute).
  double rate_cap = std::numeric_limits<double>::infinity();
  std::string label;
};

/// Runtime state of a flow, queryable during and after a run.
struct FlowState {
  FlowSpec spec;
  net::Route route;
  bool started = false;
  bool finished = false;
  /// ON-OFF flows only: currently transmitting?
  bool on = true;
  double remaining_bytes = 0.0;
  double bytes_received = 0.0;
  double rate_bps = 0.0;  ///< current allocated rate
  double completion_time = -1.0;
};

/// Selects the rate-computation path of a Sim.
enum class KernelMode {
  /// Incremental CSR kernel (MaxMinKernel): component-scoped recompute,
  /// reverse-index freezing, zero steady-state allocations. The default.
  Incremental,
  /// The original full rebuild + `max_min_rates` waterfill, preserved
  /// verbatim as the differential oracle (test_flowsim_differential pins the
  /// incremental path bit-identical to it).
  Reference,
};

/// Event-driven fluid ("flow-level") network simulator.
///
/// Rates are max-min fair shares over link capacities plus arbitrary extra
/// resources (per-VM hose caps and same-host virtual switches are added by
/// the cloud layer). Between events every active flow transfers fluid at its
/// allocated rate; events are flow arrivals, completions, ON-OFF transitions
/// of background flows, and sampler callbacks.
///
/// This simulator is the substrate for:
///   * "netperf" bulk-TCP throughput measurements (§2.2, §3.2),
///   * the cross-traffic experiments of Fig 4,
///   * temporal-stability runs of Fig 7, and
///   * executing placed applications to obtain completion times (§6).
///
/// Steady-state costs are indexed by the *active* flow set, not every flow
/// ever created: arrivals/finishes/toggles maintain a sorted active-flow
/// index, rate recomputation is scoped to the connected component(s) of the
/// flow/resource sharing graph an event touched, and recompute scratch is
/// reused so no allocations happen once warm (bench/micro_flowsim measures
/// all three).
class Sim {
 public:
  /// `unconstrained_rate` is the rate given to flows that cross no resource
  /// at all (e.g., two tasks co-located on one machine with no vswitch cap).
  explicit Sim(const net::Topology& topo, double unconstrained_rate = 400e9,
               KernelMode mode = KernelMode::Incremental);

  /// Registers a shared resource (e.g., a hose-model egress cap). Returned
  /// ids are distinct from link-backed resources.
  ResourceId add_resource(double capacity_bps);

  /// Changes a resource's capacity (used to model provider re-provisioning).
  void set_resource_capacity(ResourceId id, double capacity_bps);

  /// Adds a finite or persistent flow. The flow starts at spec.start_time.
  FlowId add_flow(const FlowSpec& spec);

  /// Adds a persistent ON-OFF background flow (§3.2's "ON-OFF model [2]
  /// whose transition time follows an exponential distribution"). The flow
  /// alternates between transmitting (backlogged) and silent, with both state
  /// holding times drawn exponentially with mean `mean_on_s`/`mean_off_s`.
  FlowId add_on_off_flow(const FlowSpec& spec, double mean_on_s, double mean_off_s,
                         bool start_on, std::uint64_t seed);

  /// Invokes `fn(now)` every `interval_s` seconds, from `start_s` until the
  /// simulation ends. Samplers see post-advance, post-reallocation state.
  void add_sampler(double start_s, double interval_s, std::function<void(double)> fn);

  /// Runs until `t_end` (inclusive of events at exactly t_end).
  void run_until(double t_end);

  /// Runs until all finite flows have completed. Throws if only persistent
  /// flows remain and none are finite; `t_max` bounds runaway simulations.
  void run_to_completion(double t_max = 1e9);

  /// When enabled, a finite flow's route/extra-resource storage (and its
  /// kernel incidence row) is released the moment it finishes — its outcome
  /// (bytes_received, completion_time) stays queryable. Long sessions with
  /// heavy churn then hold memory proportional to the *live* flow set, not
  /// to every flow ever created. Cloud::execute turns this on.
  void set_auto_retire(bool enabled) { auto_retire_ = enabled; }

  double now() const { return now_; }
  std::size_t flow_count() const { return flows_.size(); }
  const FlowState& flow(FlowId id) const;

  /// Current number of actively transmitting flows.
  std::size_t active_flow_count() const;

  /// Instantaneous load on one directed link: allocated rate summed over the
  /// active flows routed across it, plus their count. The measurement plane
  /// snapshots this per epoch to model the capacity a probe train has left
  /// (cloud::Cloud::traffic_snapshot).
  struct LinkLoad {
    double used_bps = 0.0;
    std::size_t flows = 0;
  };

  /// Per-link loads at the current simulation time, indexed by net::LinkId.
  std::vector<LinkLoad> link_loads() const;

  /// Latest completion time among finished finite flows; -1 if none.
  double makespan() const { return makespan_; }

  KernelMode kernel_mode() const { return mode_; }
  /// Incremental-kernel counters (recomputes, region sizes, waterfill
  /// rounds); all zero in Reference mode.
  const MaxMinKernel::Stats& kernel_stats() const { return kernel_.stats(); }
  /// Total reallocate() invocations that found dirty state, either mode.
  std::uint64_t reallocations() const { return reallocations_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break for determinism
    enum class Kind { Arrival, Toggle, Sample } kind;
    std::size_t index;  // flow id or sampler id
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct Sampler {
    double interval;
    std::function<void(double)> fn;
  };

  struct OnOffState {
    double mean_on;
    double mean_off;
    Rng rng;
  };

  void push_event(double time, Event::Kind kind, std::size_t index);
  void advance_to(double t);
  void reallocate();
  /// The pre-kernel reallocation path, preserved verbatim: rebuilds the
  /// flow -> resource incidence and re-waterfills every active flow via
  /// max_min_rates. The differential oracle for KernelMode::Incremental.
  void reallocate_reference();
  bool flow_active(const FlowState& f) const;
  /// Marks a flow (in)active in the kernel's index and keeps rate_bps
  /// consistent for the cases reallocate() will not revisit.
  void activate_flow(FlowId id);
  void deactivate_flow(FlowId id);
  void retire_flow_storage(FlowId id);
  /// Earliest completion time among active finite flows, or +inf.
  double next_completion() const;
  void finish_due_flows();

  const net::Topology& topo_;
  net::Router router_;
  double unconstrained_rate_;
  KernelMode mode_;
  double now_ = 0.0;
  std::uint64_t event_seq_ = 0;

  std::vector<double> resource_capacity_;  // [0, link_count) mirror links
  std::vector<FlowState> flows_;
  MaxMinKernel kernel_;  // incidence + active-flow index + incremental rates
  std::vector<OnOffState> onoff_;           // parallel to flows_ (inactive slots unused)
  std::vector<int> onoff_index_;            // flow id -> index into onoff_, or -1
  std::vector<Sampler> samplers_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  bool dirty_ = true;  // rates need recomputation
  bool auto_retire_ = false;
  double makespan_ = -1.0;
  std::size_t finite_flows_total_ = 0;   // finite flows ever added
  std::size_t unfinished_finite_ = 0;    // finite flows not yet finished
  std::uint64_t reallocations_ = 0;
  std::vector<ResourceId> row_scratch_;   // add_flow row staging
  std::vector<FlowId> finish_scratch_;    // finish_due_flows staging
};

/// Convenience: simulate the given finite flows (all resources/routes per
/// `sim`) and return the completion time of the whole set (the makespan).
double run_makespan(Sim& sim, double t_max = 1e9);

}  // namespace choreo::flowsim

#include "flowsim/max_min_kernel.h"

#include <algorithm>
#include <limits>

#include "util/require.h"

namespace choreo::flowsim {

MaxMinKernel::MaxMinKernel(double unconstrained_rate)
    : unconstrained_rate_(unconstrained_rate) {
  CHOREO_REQUIRE(unconstrained_rate > 0.0);
}

ResourceId MaxMinKernel::add_resource(double capacity_bps) {
  CHOREO_REQUIRE(capacity_bps >= 0.0);
  const ResourceId id = capacity_.size();
  capacity_.push_back(capacity_bps);
  label_.push_back(id);  // fresh resources are their own singleton component
  label_dirty_.push_back(0);
  uf_parent_.push_back(0);
  res_stamp_.push_back(0);
  remaining_.push_back(0.0);
  load_.push_back(0);
  rev_begin_.push_back(0);
  rev_fill_.push_back(0);
  return id;
}

void MaxMinKernel::set_capacity(ResourceId id, double capacity_bps) {
  CHOREO_REQUIRE(id < capacity_.size());
  CHOREO_REQUIRE(capacity_bps >= 0.0);
  capacity_[id] = capacity_bps;
  mark_resource_dirty(id);
}

std::size_t MaxMinKernel::add_flow(const ResourceId* row, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) CHOREO_REQUIRE(row[i] < capacity_.size());
  const std::size_t id = row_begin_.size();
  row_begin_.push_back(row_data_.size());
  row_len_.push_back(static_cast<std::uint32_t>(len));
  row_data_.insert(row_data_.end(), row, row + len);
  active_flag_.push_back(0);
  rate_.push_back(0.0);
  frozen_stamp_.push_back(0);
  return id;
}

void MaxMinKernel::mark_resource_dirty(ResourceId r) {
  const std::size_t label = label_[r];
  if (!label_dirty_[label]) {
    label_dirty_[label] = 1;
    dirty_labels_.push_back(label);
  }
  dirty_ = true;
}

void MaxMinKernel::activate(std::size_t flow) {
  CHOREO_REQUIRE(flow < row_begin_.size());
  CHOREO_REQUIRE_MSG(row_begin_[flow] != kRetiredRow, "cannot activate a retired flow");
  if (active_flag_[flow]) return;
  active_flag_[flow] = 1;
  active_.insert(std::lower_bound(active_.begin(), active_.end(), flow), flow);
  const std::uint32_t len = row_len_[flow];
  if (len == 0) {
    // No shared resources: the oracle gives such flows `unconstrained_rate`
    // without touching any other flow, so no component is dirtied.
    rate_[flow] = unconstrained_rate_;
    return;
  }
  const std::size_t b = row_begin_[flow];
  for (std::uint32_t i = 0; i < len; ++i) mark_resource_dirty(row_data_[b + i]);
}

void MaxMinKernel::deactivate(std::size_t flow) {
  CHOREO_REQUIRE(flow < row_begin_.size());
  if (!active_flag_[flow]) return;
  active_flag_[flow] = 0;
  active_.erase(std::lower_bound(active_.begin(), active_.end(), flow));
  const std::size_t b = row_begin_[flow];
  for (std::uint32_t i = 0; i < row_len_[flow]; ++i) mark_resource_dirty(row_data_[b + i]);
}

void MaxMinKernel::retire(std::size_t flow) {
  CHOREO_REQUIRE(flow < row_begin_.size());
  CHOREO_REQUIRE_MSG(!active_flag_[flow], "cannot retire an active flow");
  if (row_begin_[flow] == kRetiredRow) return;
  dead_row_slots_ += row_len_[flow];
  row_len_[flow] = 0;
  row_begin_[flow] = kRetiredRow;
  if (dead_row_slots_ > 4096 && dead_row_slots_ * 2 > row_data_.size()) compact_rows();
}

void MaxMinKernel::compact_rows() {
  // Rows were appended in flow order, so live rows can slide toward the front
  // in one forward pass without overlap hazards.
  std::size_t out = 0;
  for (std::size_t f = 0; f < row_begin_.size(); ++f) {
    if (row_begin_[f] == kRetiredRow) continue;
    const std::size_t b = row_begin_[f];
    row_begin_[f] = out;
    for (std::uint32_t i = 0; i < row_len_[f]; ++i) row_data_[out++] = row_data_[b + i];
  }
  row_data_.resize(out);
  dead_row_slots_ = 0;
  ++stats_.row_compactions;
}

std::size_t MaxMinKernel::find_root(std::size_t r) {
  while (uf_parent_[r] != r) {
    uf_parent_[r] = uf_parent_[uf_parent_[r]];  // path halving
    r = uf_parent_[r];
  }
  return r;
}

const std::vector<std::size_t>& MaxMinKernel::recompute() {
  region_flows_.clear();
  if (!dirty_) return region_flows_;
  ++epoch_;

  // 1. Region = every active flow in a dirty component. An active flow's
  // resources either all share one label, or (for flows activated since the
  // last recompute) all carry labels the activation itself dirtied — either
  // way, testing the first row entry is sufficient.
  for (const std::size_t f : active_) {
    if (row_len_[f] == 0) continue;
    if (label_dirty_[label_[row_data_[row_begin_[f]]]]) region_flows_.push_back(f);
  }

  // 2. Collect the region's resources and relabel them with a union-find
  // over the region's flows, so components that split since the last pass
  // are separated again for future scoping.
  region_res_.clear();
  for (const std::size_t f : region_flows_) {
    const std::size_t b = row_begin_[f];
    const std::uint32_t len = row_len_[f];
    for (std::uint32_t i = 0; i < len; ++i) {
      const ResourceId r = row_data_[b + i];
      if (res_stamp_[r] != epoch_) {
        res_stamp_[r] = epoch_;
        uf_parent_[r] = r;
        region_res_.push_back(r);
      }
    }
    std::size_t root = find_root(row_data_[b]);
    for (std::uint32_t i = 1; i < len; ++i) {
      const std::size_t other = find_root(row_data_[b + i]);
      if (other == root) continue;
      if (other < root) {
        uf_parent_[root] = other;
        root = other;
      } else {
        uf_parent_[other] = root;
      }
    }
  }
  for (const ResourceId r : region_res_) label_[r] = find_root(r);

  // 3. Dirt is consumed: components with no active flow have no rates to fix.
  for (const std::size_t label : dirty_labels_) label_dirty_[label] = 0;
  dirty_labels_.clear();
  dirty_ = false;
  if (region_flows_.empty()) return region_flows_;

  ++stats_.recomputes;
  stats_.region_flows += region_flows_.size();
  stats_.region_resources += region_res_.size();

  // 4. Waterfill setup over the region only. Sorting the resource list keeps
  // the oracle's lowest-id tie-break for equal bottleneck shares.
  std::sort(region_res_.begin(), region_res_.end());
  for (const ResourceId r : region_res_) {
    remaining_[r] = capacity_[r];
    load_[r] = 0;
  }
  for (const std::size_t f : region_flows_) {
    const std::size_t b = row_begin_[f];
    for (std::uint32_t i = 0; i < row_len_[f]; ++i) ++load_[row_data_[b + i]];
  }
  // Reverse resource -> flow index, counting-sorted so each resource's flow
  // list ascends by id (the oracle's freeze order).
  std::size_t total = 0;
  for (const ResourceId r : region_res_) {
    rev_begin_[r] = total;
    rev_fill_[r] = 0;
    total += load_[r];
  }
  if (rev_flows_.size() < total) rev_flows_.resize(total);
  for (const std::size_t f : region_flows_) {
    const std::size_t b = row_begin_[f];
    for (std::uint32_t i = 0; i < row_len_[f]; ++i) {
      const ResourceId r = row_data_[b + i];
      rev_flows_[rev_begin_[r] + rev_fill_[r]++] = f;
    }
  }

  // 5. Progressive filling. live_res_ drops saturated/empty resources as it
  // scans, so late rounds touch only what is still contested.
  std::size_t unfrozen = region_flows_.size();
  live_res_.assign(region_res_.begin(), region_res_.end());
  while (unfrozen > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    ResourceId best = capacity_.size();
    std::size_t out = 0;
    for (const ResourceId r : live_res_) {
      if (load_[r] == 0) continue;  // fully frozen: drop from the live list
      live_res_[out++] = r;
      const double share = remaining_[r] / static_cast<double>(load_[r]);
      if (share < best_share) {
        best_share = share;
        best = r;
      }
    }
    live_res_.resize(out);
    CHOREO_ASSERT(best < capacity_.size());
    ++stats_.waterfill_rounds;

    const std::size_t rb = rev_begin_[best];
    const std::size_t rn = rev_fill_[best];
    for (std::size_t s = 0; s < rn; ++s) {
      const std::size_t f = rev_flows_[rb + s];
      if (frozen_stamp_[f] == epoch_) continue;
      frozen_stamp_[f] = epoch_;
      rate_[f] = best_share;
      --unfrozen;
      const std::size_t b = row_begin_[f];
      for (std::uint32_t i = 0; i < row_len_[f]; ++i) {
        const ResourceId r = row_data_[b + i];
        remaining_[r] = std::max(0.0, remaining_[r] - best_share);
        --load_[r];
      }
    }
  }
  return region_flows_;
}

}  // namespace choreo::flowsim

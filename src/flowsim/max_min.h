#pragma once

#include <cstddef>
#include <vector>

namespace choreo::flowsim {

using ResourceId = std::size_t;

/// Computes max-min fair rates for a set of flows over capacitated resources
/// (progressive filling / water-filling).
///
/// A "resource" is anything with a capacity that competing flows share
/// equally: a physical link, a per-VM hose-model egress cap, or a virtual
/// switch. Flow `f` uses every resource in `flow_resources[f]`; a flow may
/// use none (e.g., two tasks on the same machine), in which case its rate is
/// `unconstrained_rate`.
///
/// This models the paper's §3.2 assumption — validated on EC2 — that "TCP
/// divides the bottleneck rate equally between bulk connections in cloud
/// networks".
///
/// Returns one rate per flow, in the same units as the capacities.
std::vector<double> max_min_rates(
    const std::vector<double>& resource_capacity,
    const std::vector<std::vector<ResourceId>>& flow_resources,
    double unconstrained_rate);

}  // namespace choreo::flowsim

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "flowsim/max_min.h"

namespace choreo::flowsim {

/// Incremental max-min fair-share kernel.
///
/// Semantically this computes exactly what `max_min_rates` computes over the
/// currently *active* flows — that function is kept verbatim as the
/// differential oracle, and `test_flowsim_differential` pins this kernel
/// bit-identical to it (exact double equality) over a randomized corpus. The
/// difference is purely mechanical:
///
///   * the flow -> resource incidence lives in one flat CSR array, appended
///     once per flow (a flow's resource set never changes after
///     registration) instead of being rebuilt as nested vectors on every
///     recompute;
///   * each recompute builds a reverse resource -> flow index (counting sort
///     into reused scratch), so freezing the flows of a bottleneck visits
///     only the flows crossing it, not every flow against every resource;
///   * recomputation is scoped to the dirty region: resources carry a
///     connected-component label over the sharing graph of active flows, and
///     an activate/deactivate/capacity event only re-waterfills the
///     component(s) it touched — flows in untouched components keep their
///     rates, which per-component independence makes bit-identical to a full
///     recompute;
///   * every scratch structure is a reused member buffer, so steady-state
///     recomputes perform zero heap allocations once warm.
///
/// Tie-breaking matches the oracle exactly: the bottleneck is the loaded
/// resource with the smallest share, lowest id first; its flows freeze in
/// ascending flow id; a frozen flow's capacity subtraction walks its CSR row
/// in registration order (extra resources before route links, as `Sim`
/// registers them) with the same max(0, .) clamp.
///
/// Component labels are maintained as an over-approximation: activations
/// union components eagerly, deactivations never split them. Each scoped
/// recompute relabels the region it actually visited via a union-find over
/// the region's active flows, so stale merges resolve one recompute later —
/// the region is only ever a superset of the true dirty components, never a
/// subset, which is what correctness needs.
class MaxMinKernel {
 public:
  /// `unconstrained_rate` is assigned to active flows whose resource row is
  /// empty (same role as the oracle's parameter).
  explicit MaxMinKernel(double unconstrained_rate);

  // ---- structure ----------------------------------------------------------

  ResourceId add_resource(double capacity_bps);
  /// Changes a capacity and marks the resource's component dirty.
  void set_capacity(ResourceId id, double capacity_bps);
  double capacity(ResourceId id) const { return capacity_[id]; }
  std::size_t resource_count() const { return capacity_.size(); }

  /// Registers a flow's (immutable) resource row; the flow starts inactive.
  /// Rows may legally be empty, contain duplicates, or reference any
  /// already-registered resource. Returns the flow's id (dense, in
  /// registration order).
  std::size_t add_flow(const ResourceId* row, std::size_t len);
  std::size_t flow_count() const { return row_begin_.size(); }

  // ---- activity -----------------------------------------------------------

  /// Marks the flow active (it competes for its resources) and dirties its
  /// component(s). Empty-row flows get `unconstrained_rate` immediately and
  /// dirty nothing. No-op if already active.
  void activate(std::size_t flow);
  /// Marks the flow inactive and dirties its component. No-op if inactive.
  void deactivate(std::size_t flow);
  bool is_active(std::size_t flow) const { return active_flag_[flow] != 0; }

  /// Currently active flows, ascending by id. `Sim` iterates this instead of
  /// every flow ever created, so long sessions don't degrade linearly.
  const std::vector<std::size_t>& active_flows() const { return active_; }

  /// Releases the flow's CSR row (the flow must be inactive and stay so).
  /// Row storage is compacted once enough of it is dead; flow ids and live
  /// rows are unaffected.
  void retire(std::size_t flow);

  // ---- rates --------------------------------------------------------------

  bool dirty() const { return dirty_; }

  /// Re-waterfills the dirty region and returns the flows whose rate was
  /// recomputed (ascending). Flows outside the returned region keep their
  /// previous rate, bit-identical to what a full recompute would produce.
  /// Returns an empty region when nothing is dirty.
  const std::vector<std::size_t>& recompute();

  /// Last rate computed for the flow (before any per-flow cap the caller
  /// applies). Meaningful only while the flow is active.
  double rate(std::size_t flow) const { return rate_[flow]; }

  // ---- introspection ------------------------------------------------------

  struct Stats {
    std::uint64_t recomputes = 0;        ///< recompute() calls that did work
    std::uint64_t region_flows = 0;      ///< cumulative flows re-waterfilled
    std::uint64_t region_resources = 0;  ///< cumulative resources visited
    std::uint64_t waterfill_rounds = 0;  ///< cumulative bottleneck freezes
    std::uint64_t row_compactions = 0;   ///< CSR storage compactions
  };
  const Stats& stats() const { return stats_; }
  /// Region size of the most recent non-empty recompute.
  std::size_t last_region_flows() const { return region_flows_.size(); }

 private:
  /// row_begin_ sentinel for a retired flow (its row storage was released).
  static constexpr std::size_t kRetiredRow = static_cast<std::size_t>(-1);

  void mark_resource_dirty(ResourceId r);
  std::size_t find_root(std::size_t r);
  void compact_rows();

  double unconstrained_rate_;

  // Resources.
  std::vector<double> capacity_;
  std::vector<std::size_t> label_;       // resource -> component label (a resource id)
  std::vector<char> label_dirty_;        // indexed by label
  std::vector<std::size_t> dirty_labels_;  // for O(dirty) clearing
  bool dirty_ = false;

  // Flow -> resource incidence, CSR.
  std::vector<std::size_t> row_begin_;
  std::vector<std::uint32_t> row_len_;
  std::vector<ResourceId> row_data_;
  std::size_t dead_row_slots_ = 0;

  // Activity.
  std::vector<std::size_t> active_;  // sorted ascending
  std::vector<char> active_flag_;    // flow -> currently active?

  std::vector<double> rate_;

  // Scratch reused across recomputes (allocation-free once warm).
  std::vector<std::size_t> region_flows_;
  std::vector<ResourceId> region_res_;
  std::vector<ResourceId> live_res_;
  std::vector<std::size_t> uf_parent_;     // per resource, region-local validity
  std::vector<std::uint64_t> res_stamp_;   // per resource, region membership epoch
  std::vector<std::uint64_t> frozen_stamp_;  // per flow, freeze epoch
  std::vector<double> remaining_;          // per resource
  std::vector<std::size_t> load_;          // per resource, unfrozen flows
  std::vector<std::size_t> rev_begin_;     // per resource, into rev_flows_
  std::vector<std::size_t> rev_fill_;      // per resource, fill cursor
  std::vector<std::size_t> rev_flows_;     // reverse index payload
  std::uint64_t epoch_ = 0;

  Stats stats_;
};

}  // namespace choreo::flowsim

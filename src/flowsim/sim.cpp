#include "flowsim/sim.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace choreo::flowsim {
namespace {
/// Bytes below which a flow counts as finished (guards float drift).
constexpr double kByteEpsilon = 1e-3;
/// Relative time slack when comparing an event time with a completion time.
constexpr double kTimeEpsilon = 1e-12;
}  // namespace

Sim::Sim(const net::Topology& topo, double unconstrained_rate, KernelMode mode)
    : topo_(topo),
      router_(topo),
      unconstrained_rate_(unconstrained_rate),
      mode_(mode),
      kernel_(unconstrained_rate) {
  CHOREO_REQUIRE(unconstrained_rate > 0.0);
  resource_capacity_.reserve(topo.link_count());
  for (const net::Link& l : topo.links()) {
    resource_capacity_.push_back(l.capacity_bps);
    kernel_.add_resource(l.capacity_bps);
  }
}

ResourceId Sim::add_resource(double capacity_bps) {
  CHOREO_REQUIRE(capacity_bps > 0.0);
  resource_capacity_.push_back(capacity_bps);
  return kernel_.add_resource(capacity_bps);
}

void Sim::set_resource_capacity(ResourceId id, double capacity_bps) {
  CHOREO_REQUIRE(id < resource_capacity_.size());
  CHOREO_REQUIRE(capacity_bps > 0.0);
  resource_capacity_[id] = capacity_bps;
  kernel_.set_capacity(id, capacity_bps);
  dirty_ = true;
}

FlowId Sim::add_flow(const FlowSpec& spec) {
  CHOREO_REQUIRE(spec.bytes > 0.0);
  CHOREO_REQUIRE(spec.start_time >= now_);
  for (ResourceId r : spec.extra_resources) CHOREO_REQUIRE(r < resource_capacity_.size());
  FlowState st;
  st.spec = spec;
  if (spec.src != spec.dst) {
    st.route = router_.route(spec.src, spec.dst, spec.flow_key);
  }
  st.remaining_bytes = spec.bytes;
  const FlowId id = flows_.size();
  // Register the incidence row in the order the reference path builds its
  // usage rows — extra resources first, then route links — so per-flow
  // capacity subtraction happens in the identical sequence.
  row_scratch_.clear();
  row_scratch_.insert(row_scratch_.end(), st.spec.extra_resources.begin(),
                      st.spec.extra_resources.end());
  row_scratch_.insert(row_scratch_.end(), st.route.links.begin(), st.route.links.end());
  kernel_.add_flow(row_scratch_.data(), row_scratch_.size());
  if (spec.bytes != kInfiniteBytes) {
    ++finite_flows_total_;
    ++unfinished_finite_;
  }
  flows_.push_back(std::move(st));
  onoff_index_.push_back(-1);
  push_event(spec.start_time, Event::Kind::Arrival, id);
  return id;
}

FlowId Sim::add_on_off_flow(const FlowSpec& spec, double mean_on_s, double mean_off_s,
                            bool start_on, std::uint64_t seed) {
  CHOREO_REQUIRE(mean_on_s > 0.0 && mean_off_s > 0.0);
  FlowSpec persistent = spec;
  persistent.bytes = kInfiniteBytes;
  const FlowId id = add_flow(persistent);
  flows_[id].on = start_on;
  onoff_index_[id] = static_cast<int>(onoff_.size());
  onoff_.push_back(OnOffState{mean_on_s, mean_off_s, Rng(seed)});
  // First toggle: holding time of the initial state.
  OnOffState& oo = onoff_.back();
  const double hold = oo.rng.exponential(start_on ? mean_on_s : mean_off_s);
  push_event(spec.start_time + hold, Event::Kind::Toggle, id);
  return id;
}

void Sim::add_sampler(double start_s, double interval_s, std::function<void(double)> fn) {
  CHOREO_REQUIRE(interval_s > 0.0);
  CHOREO_REQUIRE(start_s >= now_);
  samplers_.push_back(Sampler{interval_s, std::move(fn)});
  push_event(start_s, Event::Kind::Sample, samplers_.size() - 1);
}

void Sim::push_event(double time, Event::Kind kind, std::size_t index) {
  events_.push(Event{time, event_seq_++, kind, index});
}

bool Sim::flow_active(const FlowState& f) const {
  return f.started && !f.finished && f.on;
}

void Sim::activate_flow(FlowId id) {
  kernel_.activate(id);
  FlowState& f = flows_[id];
  if (f.spec.extra_resources.empty() && f.route.links.empty()) {
    // Unconstrained flows never enter a waterfill region; their rate is
    // final the moment they activate (identical to what the reference path
    // assigns: min(unconstrained_rate, cap)).
    f.rate_bps = std::min(unconstrained_rate_, f.spec.rate_cap);
  }
}

void Sim::deactivate_flow(FlowId id) {
  kernel_.deactivate(id);
  flows_[id].rate_bps = 0.0;
}

void Sim::retire_flow_storage(FlowId id) {
  // Keep the queryable outcome (bytes_received, completion_time, spec
  // scalars) but free everything a finished flow cannot need again.
  FlowState& f = flows_[id];
  std::vector<ResourceId>().swap(f.spec.extra_resources);
  f.route = net::Route{};
  std::string().swap(f.spec.label);
  kernel_.retire(id);
}

void Sim::reallocate() {
  ++reallocations_;
  if (mode_ == KernelMode::Reference) {
    reallocate_reference();
  } else {
    const std::vector<FlowId>& region = kernel_.recompute();
    for (FlowId id : region) {
      FlowState& f = flows_[id];
      f.rate_bps = std::min(kernel_.rate(id), f.spec.rate_cap);
    }
  }
  dirty_ = false;
}

void Sim::reallocate_reference() {
  std::vector<std::vector<ResourceId>> usage;
  std::vector<FlowId> ids;
  for (FlowId id = 0; id < flows_.size(); ++id) {
    FlowState& f = flows_[id];
    if (!flow_active(f)) {
      f.rate_bps = 0.0;
      continue;
    }
    std::vector<ResourceId> res = f.spec.extra_resources;
    for (net::LinkId l : f.route.links) res.push_back(l);
    usage.push_back(std::move(res));
    ids.push_back(id);
  }
  const std::vector<double> rates =
      max_min_rates(resource_capacity_, usage, unconstrained_rate_);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    FlowState& f = flows_[ids[i]];
    f.rate_bps = std::min(rates[i], f.spec.rate_cap);
  }
}

void Sim::advance_to(double t) {
  CHOREO_ASSERT(t >= now_ - kTimeEpsilon);
  const double dt = std::max(0.0, t - now_);
  if (dt > 0.0) {
    for (FlowId id : kernel_.active_flows()) {
      FlowState& f = flows_[id];
      if (f.rate_bps <= 0.0) continue;
      const double bytes = f.rate_bps * dt / 8.0;
      f.bytes_received += bytes;
      if (f.remaining_bytes != kInfiniteBytes) {
        f.remaining_bytes = std::max(0.0, f.remaining_bytes - bytes);
      }
    }
  }
  now_ = t;
}

double Sim::next_completion() const {
  double best = std::numeric_limits<double>::infinity();
  for (FlowId id : kernel_.active_flows()) {
    const FlowState& f = flows_[id];
    if (f.remaining_bytes == kInfiniteBytes) continue;
    if (f.rate_bps <= 0.0) continue;
    best = std::min(best, now_ + f.remaining_bytes * 8.0 / f.rate_bps);
  }
  return best;
}

void Sim::finish_due_flows() {
  finish_scratch_.clear();
  for (FlowId id : kernel_.active_flows()) {
    const FlowState& f = flows_[id];
    if (f.remaining_bytes == kInfiniteBytes) continue;
    // A flow is done when its residual is negligible either in bytes or in
    // drain time; the time criterion guards against float underflow when a
    // very fast flow's last sliver drains in less than the representable
    // time increment at large simulation times.
    const bool drained_bytes = f.remaining_bytes <= kByteEpsilon;
    const bool drained_time =
        f.rate_bps > 0.0 && f.remaining_bytes * 8.0 / f.rate_bps < 1e-9;
    if (drained_bytes || drained_time) finish_scratch_.push_back(id);
  }
  for (FlowId id : finish_scratch_) {
    FlowState& f = flows_[id];
    f.finished = true;
    f.remaining_bytes = 0.0;
    f.completion_time = now_;
    makespan_ = std::max(makespan_, now_);
    CHOREO_ASSERT(unfinished_finite_ > 0);
    --unfinished_finite_;
    deactivate_flow(id);
    if (auto_retire_) retire_flow_storage(id);
    dirty_ = true;
  }
}

void Sim::run_until(double t_end) {
  CHOREO_REQUIRE(t_end >= now_);
  if (dirty_) reallocate();
  while (true) {
    const double t_event = events_.empty() ? std::numeric_limits<double>::infinity()
                                           : events_.top().time;
    const double t_done = next_completion();
    const double t_next = std::min({t_event, t_done, t_end});
    if (t_next > t_end) break;
    advance_to(t_next);

    bool handled = false;
    // Completions first (they may coincide with events at the same time).
    if (t_done <= t_next + kTimeEpsilon) {
      finish_due_flows();
      handled = true;
    }
    while (!events_.empty() && events_.top().time <= now_ + kTimeEpsilon) {
      const Event ev = events_.top();
      events_.pop();
      handled = true;
      switch (ev.kind) {
        case Event::Kind::Arrival: {
          FlowState& f = flows_[ev.index];
          f.started = true;
          if (flow_active(f)) activate_flow(ev.index);
          dirty_ = true;
          break;
        }
        case Event::Kind::Toggle: {
          FlowState& f = flows_[ev.index];
          OnOffState& oo = onoff_[static_cast<std::size_t>(onoff_index_[ev.index])];
          f.on = !f.on;
          const double hold = oo.rng.exponential(f.on ? oo.mean_on : oo.mean_off);
          push_event(now_ + hold, Event::Kind::Toggle, ev.index);
          if (f.started && !f.finished) {
            if (f.on) {
              activate_flow(ev.index);
            } else {
              deactivate_flow(ev.index);
            }
          }
          dirty_ = true;
          break;
        }
        case Event::Kind::Sample: {
          if (dirty_) reallocate();
          Sampler& s = samplers_[ev.index];
          s.fn(now_);
          push_event(now_ + s.interval, Event::Kind::Sample, ev.index);
          break;
        }
      }
    }
    if (dirty_) reallocate();
    if (!handled && t_next >= t_end) break;
    if (now_ >= t_end) break;
  }
  advance_to(t_end);
  finish_due_flows();
  if (dirty_) reallocate();
}

void Sim::run_to_completion(double t_max) {
  CHOREO_REQUIRE_MSG(finite_flows_total_ > 0,
                     "run_to_completion needs at least one finite flow");
  // Step in chunks until all finite flows are done (events from ON-OFF flows
  // keep the queue non-empty forever, so we cannot just drain it).
  while (now_ < t_max) {
    if (unfinished_finite_ == 0) return;
    if (dirty_) reallocate();
    const double t_event = events_.empty() ? std::numeric_limits<double>::infinity()
                                           : events_.top().time;
    const double t_done = next_completion();
    double target = std::min(t_done, t_event);
    if (!std::isfinite(target)) {
      CHOREO_ASSERT_MSG(false, "finite flows pending but no progress possible");
    }
    run_until(std::min(target, t_max));
  }
  CHOREO_ASSERT_MSG(now_ < t_max, "simulation exceeded t_max before completing");
}

const FlowState& Sim::flow(FlowId id) const {
  CHOREO_REQUIRE(id < flows_.size());
  return flows_[id];
}

std::size_t Sim::active_flow_count() const { return kernel_.active_flows().size(); }

std::vector<Sim::LinkLoad> Sim::link_loads() const {
  std::vector<LinkLoad> loads(topo_.link_count());
  for (FlowId id : kernel_.active_flows()) {
    const FlowState& f = flows_[id];
    if (f.rate_bps <= 0.0) continue;
    for (net::LinkId l : f.route.links) {
      loads[l].used_bps += f.rate_bps;
      ++loads[l].flows;
    }
  }
  return loads;
}

double run_makespan(Sim& sim, double t_max) {
  sim.run_to_completion(t_max);
  return sim.makespan();
}

}  // namespace choreo::flowsim

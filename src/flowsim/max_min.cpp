#include "flowsim/max_min.h"

#include <algorithm>
#include <limits>

#include "util/require.h"

namespace choreo::flowsim {

std::vector<double> max_min_rates(
    const std::vector<double>& resource_capacity,
    const std::vector<std::vector<ResourceId>>& flow_resources,
    double unconstrained_rate) {
  const std::size_t n_res = resource_capacity.size();
  const std::size_t n_flows = flow_resources.size();
  for (double c : resource_capacity) CHOREO_REQUIRE(c >= 0.0);

  std::vector<double> remaining = resource_capacity;
  std::vector<std::size_t> load(n_res, 0);  // unfrozen flows per resource
  std::vector<double> rate(n_flows, -1.0);
  std::size_t unfrozen = 0;

  for (std::size_t f = 0; f < n_flows; ++f) {
    if (flow_resources[f].empty()) {
      rate[f] = unconstrained_rate;
      continue;
    }
    ++unfrozen;
    for (ResourceId r : flow_resources[f]) {
      CHOREO_REQUIRE(r < n_res);
      ++load[r];
    }
  }

  while (unfrozen > 0) {
    // Find the resource with the smallest fair share among loaded resources.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_res = n_res;
    for (std::size_t r = 0; r < n_res; ++r) {
      if (load[r] == 0) continue;
      const double share = remaining[r] / static_cast<double>(load[r]);
      if (share < best_share) {
        best_share = share;
        best_res = r;
      }
    }
    CHOREO_ASSERT(best_res < n_res);

    // Freeze every unfrozen flow crossing the bottleneck at the fair share.
    for (std::size_t f = 0; f < n_flows; ++f) {
      if (rate[f] >= 0.0 || flow_resources[f].empty()) continue;
      bool on_bottleneck = false;
      for (ResourceId r : flow_resources[f]) {
        if (r == best_res) {
          on_bottleneck = true;
          break;
        }
      }
      if (!on_bottleneck) continue;
      rate[f] = best_share;
      --unfrozen;
      for (ResourceId r : flow_resources[f]) {
        remaining[r] = std::max(0.0, remaining[r] - best_share);
        --load[r];
      }
    }
  }
  return rate;
}

}  // namespace choreo::flowsim

#include "packetsim/token_bucket.h"

#include <algorithm>

namespace choreo::packetsim {

TokenBucket::TokenBucket(EventQueue& events, double rate_bps, double depth_bytes,
                         Element* next, double idle_reset_s)
    : events_(events),
      rate_bps_(rate_bps),
      depth_bytes_(depth_bytes),
      next_(next),
      idle_reset_s_(idle_reset_s),
      tokens_(depth_bytes) {
  CHOREO_REQUIRE(rate_bps > 0.0);
  CHOREO_REQUIRE(depth_bytes > 0.0);
  CHOREO_REQUIRE(next != nullptr);
}

void TokenBucket::refill(double now) {
  if (idle_reset_s_ >= 0.0 && last_activity_ >= 0.0 &&
      now - last_activity_ >= idle_reset_s_ && queue_.empty()) {
    tokens_ = depth_bytes_;
  } else {
    tokens_ = std::min(depth_bytes_, tokens_ + rate_bps_ / 8.0 * (now - last_update_));
  }
  last_update_ = now;
}

void TokenBucket::receive(const Packet& pkt, double now) {
  refill(now);
  last_activity_ = now;
  queue_.push_back(pkt);
  if (!draining_) pump(now);
}

void TokenBucket::pump(double now) {
  refill(now);
  last_activity_ = now;
  // The small tolerance absorbs float rounding between the scheduled wait
  // and the refill integral; without it the wake-up can land a hair short
  // of the packet size and reschedule forever.
  constexpr double kByteTolerance = 1e-6;
  while (!queue_.empty() && tokens_ + kByteTolerance >= queue_.front().wire_bytes) {
    const Packet pkt = queue_.front();
    queue_.pop_front();
    tokens_ = std::max(0.0, tokens_ - pkt.wire_bytes);
    next_->receive(pkt, now);
  }
  if (queue_.empty()) {
    draining_ = false;
    return;
  }
  // Not enough tokens for the head packet: wake up when there are (with a
  // nanosecond of slack so the refill is guaranteed to cover the deficit).
  draining_ = true;
  const double deficit = queue_.front().wire_bytes - tokens_;
  const double wait = deficit * 8.0 / rate_bps_ + 1e-9;
  events_.schedule(now + wait, [this] { pump(events_.now()); });
}

}  // namespace choreo::packetsim

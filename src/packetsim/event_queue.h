#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/require.h"

namespace choreo::packetsim {

/// Discrete-event scheduler at the heart of the packet-level simulator.
///
/// Events fire in (time, insertion-order) order, so simulations are fully
/// deterministic for a given seed.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  void schedule(double time, Callback fn) {
    CHOREO_REQUIRE(time >= now_);
    heap_.push(Entry{time, seq_++, std::move(fn)});
  }

  /// Schedules relative to the current time.
  void schedule_in(double delay, Callback fn) { schedule(now_ + delay, std::move(fn)); }

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Executes the next event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // Move the callback out before popping so that callbacks may schedule.
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.time;
    e.fn();
    return true;
  }

  /// Runs events with time <= t_end, then advances the clock to t_end.
  void run_until(double t_end) {
    CHOREO_REQUIRE(t_end >= now_);
    while (!heap_.empty() && heap_.top().time <= t_end) step();
    now_ = t_end;
  }

  /// Drains the queue completely (the simulation must terminate naturally).
  void run() {
    while (step()) {
    }
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace choreo::packetsim

#include "packetsim/path.h"

#include <algorithm>

#include "util/require.h"

namespace choreo::packetsim {

Path::Path(EventQueue& events, const ShaperSpec& shaper, const std::vector<HopSpec>& hops,
           Element* terminal) {
  CHOREO_REQUIRE(terminal != nullptr);
  CHOREO_REQUIRE(!hops.empty() || shaper.enabled);

  // Build the chain back to front so each element knows its successor.
  Element* next = terminal;
  for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
    links_.push_back(std::make_unique<Link>(events, it->rate_bps, it->delay_s,
                                            it->queue_bytes, next));
    next = links_.back().get();
  }
  if (shaper.enabled) {
    shaper_ = std::make_unique<TokenBucket>(events, shaper.rate_bps, shaper.depth_bytes,
                                            next, shaper.idle_reset_s);
    next = shaper_.get();
  }
  entry_ = next;
}

Element& Path::entry() {
  CHOREO_ASSERT(entry_ != nullptr);
  return *entry_;
}

Link& Path::hop(std::size_t i) {
  CHOREO_REQUIRE(i < links_.size());
  // links_ is stored last-to-first; translate to first-to-last indexing.
  return *links_[links_.size() - 1 - i];
}

}  // namespace choreo::packetsim

#pragma once

#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "packetsim/event_queue.h"
#include "packetsim/packet.h"

namespace choreo::packetsim {

struct TcpParams {
  std::uint32_t mss_bytes = 1448;    ///< segment payload
  std::uint32_t header_bytes = 52;   ///< TCP/IP headers on the wire
  std::uint32_t ack_bytes = 52;      ///< pure ACK wire size
  double initial_cwnd = 10.0;        ///< segments
  /// Initial slow-start threshold (segments). Real stacks cache a sane value
  /// per destination; an unbounded threshold makes the first slow-start
  /// overshoot by thousands of segments on high-bandwidth paths and then
  /// collapse, which no production TCP does.
  double initial_ssthresh = 64.0;
  double min_rto_s = 0.2;
  double max_cwnd = 4096.0;          ///< receive-window stand-in (segments)
};

class TcpSender;

/// Terminal element of the forward path: reassembles the byte stream and
/// emits cumulative ACKs onto the reverse path.
class TcpReceiver : public Element {
 public:
  TcpReceiver(EventQueue& events, Element* reverse_path, const TcpParams& params);

  void receive(const Packet& pkt, double now) override;

  /// Next expected segment (cumulative ack).
  std::uint64_t cumulative_ack() const { return expected_; }
  std::uint64_t delivered_segments() const { return delivered_; }

  /// Arrival log (time, payload bytes) for §3.2-style receiver-side
  /// throughput sampling; cleared by take_arrivals().
  const std::vector<std::pair<double, std::uint32_t>>& arrivals() const {
    return arrivals_;
  }

 private:
  EventQueue& events_;
  Element* reverse_;
  TcpParams params_;
  std::uint64_t expected_ = 0;
  std::uint64_t delivered_ = 0;
  std::set<std::uint64_t> out_of_order_;
  std::vector<std::pair<double, std::uint32_t>> arrivals_;
};

/// Adapter: terminal element of the reverse path that feeds ACKs back into
/// the sender's control loop.
class AckTap : public Element {
 public:
  explicit AckTap(TcpSender* sender) : sender_(sender) {}
  void receive(const Packet& pkt, double now) override;

 private:
  TcpSender* sender_;
};

/// TCP Reno bulk sender: slow start, AIMD congestion avoidance, fast
/// retransmit on three duplicate ACKs, RTO with exponential backoff.
///
/// The model is deliberately "netperf-shaped": a single bulk transfer with
/// unbounded application data (or a fixed byte count), no Nagle, no delayed
/// ACKs. It is used as the packet-level ground truth that Choreo's packet
/// trains are validated against (§4.1) and for fairness experiments.
class TcpSender {
 public:
  /// `total_bytes` of payload to deliver; use kUnbounded for a persistent
  /// transfer stopped externally.
  static constexpr std::uint64_t kUnbounded = std::numeric_limits<std::uint64_t>::max();

  TcpSender(EventQueue& events, Element* forward_path, const TcpParams& params,
            std::uint64_t flow_id, std::uint64_t total_bytes);

  /// Begins the transfer at `start_time`.
  void start(double start_time);

  /// Invoked by AckTap when a cumulative ACK arrives.
  void on_ack(const Packet& pkt, double now);

  bool finished() const { return finished_; }
  double finish_time() const { return finish_time_; }
  double start_time() const { return start_time_; }
  std::uint64_t acked_bytes() const { return acked_segments_ * params_.mss_bytes; }

  /// Goodput over the transfer (finished) or up to `now` (unbounded).
  double throughput_bps(double now) const;

  double cwnd() const { return cwnd_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t flow_id() const { return flow_; }

 private:
  void try_send(double now);
  void send_segment(std::uint64_t seq, double now);
  void arm_rto(double now);
  void on_rto(std::uint64_t generation);

  EventQueue& events_;
  Element* forward_;
  TcpParams params_;
  std::uint64_t flow_;
  std::uint64_t total_segments_;

  // Reno state (in segments).
  double cwnd_;
  double ssthresh_;
  std::uint64_t next_seq_ = 0;       ///< next new segment to send
  std::uint64_t acked_segments_ = 0; ///< cumulative ack from receiver
  std::uint32_t dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recovery_point_ = 0;
  double recovery_entry_pipe_ = 0.0;  ///< inflight at recovery entry (caps inflation)

  // RTT estimation (RFC 6298 style).
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  double rto_;
  bool rtt_seeded_ = false;
  std::uint64_t timed_seq_ = 0;
  double timed_sent_at_ = -1.0;
  std::uint64_t rto_generation_ = 0;
  double rto_backoff_ = 1.0;

  bool started_ = false;
  bool finished_ = false;
  double start_time_ = 0.0;
  double finish_time_ = -1.0;
  std::uint64_t retransmits_ = 0;
};

}  // namespace choreo::packetsim

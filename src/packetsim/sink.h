#pragma once

#include <cstdint>
#include <vector>

#include "packetsim/packet.h"
#include "util/rng.h"

namespace choreo::packetsim {

/// Terminal element that records packet arrivals, emulating a receiver that
/// logs SO_TIMESTAMPNS kernel timestamps (§3.1). Optional Gaussian jitter
/// models timestamping/interrupt noise; recorded times are clamped to be
/// monotonic, as kernel timestamps are.
class RecordingSink : public Element {
 public:
  struct Record {
    std::uint64_t flow = 0;
    std::uint64_t seq = 0;
    std::uint32_t burst = 0;
    std::uint32_t wire_bytes = 0;
    double time = 0.0;
  };

  RecordingSink() : rng_(0) {}
  RecordingSink(double timestamp_jitter_s, std::uint64_t seed)
      : jitter_s_(timestamp_jitter_s), rng_(seed) {}

  void receive(const Packet& pkt, double now) override {
    double t = now;
    if (jitter_s_ > 0.0) t += rng_.normal(0.0, jitter_s_);
    if (!records_.empty()) t = std::max(t, records_.back().time);
    records_.push_back(Record{pkt.flow, pkt.seq, pkt.burst, pkt.wire_bytes, t});
  }

  const std::vector<Record>& records() const { return records_; }
  std::size_t count() const { return records_.size(); }
  void clear() { records_.clear(); }

 private:
  double jitter_s_ = 0.0;
  Rng rng_;
  std::vector<Record> records_;
};

/// Terminal element that silently discards packets (for cross traffic).
class NullSink : public Element {
 public:
  void receive(const Packet&, double) override { ++count_; }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

}  // namespace choreo::packetsim

#include "packetsim/cross_traffic.h"

#include "util/require.h"

namespace choreo::packetsim {

CrossTrafficSource::CrossTrafficSource(EventQueue& events, Element* target,
                                       const Params& params, std::uint64_t seed)
    : events_(events), target_(target), params_(params), rng_(seed) {
  CHOREO_REQUIRE(target != nullptr);
  CHOREO_REQUIRE(params.load_bps > 0.0);
  CHOREO_REQUIRE(params.packet_bytes > 0);
  CHOREO_REQUIRE(params.mean_on_s > 0.0 && params.mean_off_s > 0.0);
}

void CrossTrafficSource::start(double start_time) {
  on_ = true;
  phase_ends_ = params_.always_on ? 1e30 : start_time + rng_.exponential(params_.mean_on_s);
  events_.schedule(start_time, [this] { schedule_next(events_.now()); });
}

void CrossTrafficSource::schedule_next(double now) {
  if (stopped_) return;
  // Advance the ON-OFF phase machine past `now`.
  while (!params_.always_on && now >= phase_ends_) {
    on_ = !on_;
    phase_ends_ += rng_.exponential(on_ ? params_.mean_on_s : params_.mean_off_s);
  }
  if (on_) {
    Packet pkt;
    pkt.flow = params_.flow_id;
    pkt.seq = seq_++;
    pkt.wire_bytes = params_.packet_bytes;
    pkt.sent_time = now;
    target_->receive(pkt, now);
    ++sent_;
    const double mean_gap = params_.packet_bytes * 8.0 / params_.load_bps;
    events_.schedule(now + rng_.exponential(mean_gap),
                     [this] { schedule_next(events_.now()); });
  } else {
    // Sleep until the OFF phase ends, then resume.
    events_.schedule(phase_ends_, [this] { schedule_next(events_.now()); });
  }
}

}  // namespace choreo::packetsim

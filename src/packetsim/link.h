#pragma once

#include <cstdint>
#include <deque>

#include "packetsim/event_queue.h"
#include "packetsim/packet.h"

namespace choreo::packetsim {

/// A store-and-forward link: FIFO drop-tail queue, fixed service rate,
/// fixed propagation delay. Multiple upstream elements may feed one link;
/// contention happens naturally in the queue.
class Link : public Element {
 public:
  /// `queue_bytes` bounds the drop-tail buffer, including the packet
  /// currently in service. `next` must outlive the link.
  Link(EventQueue& events, double rate_bps, double delay_s, double queue_bytes,
       Element* next);

  void receive(const Packet& pkt, double now) override;

  std::uint64_t drops() const { return drops_; }
  std::uint64_t forwarded() const { return forwarded_; }
  double queued_bytes() const { return queued_bytes_; }
  double rate_bps() const { return rate_bps_; }

 private:
  void start_service(double now);

  EventQueue& events_;
  double rate_bps_;
  double delay_s_;
  double queue_limit_bytes_;
  Element* next_;

  std::deque<Packet> queue_;
  double queued_bytes_ = 0.0;
  bool busy_ = false;
  std::uint64_t drops_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace choreo::packetsim

#pragma once

#include <cstdint>

#include "packetsim/event_queue.h"
#include "packetsim/packet.h"

namespace choreo::packetsim {

/// Parameters of a §3.1 packet train: K bursts of B back-to-back P-byte UDP
/// packets, bursts separated by delta.
struct TrainParams {
  std::uint32_t bursts = 10;          ///< K
  std::uint32_t burst_length = 200;   ///< B, packets per burst
  std::uint32_t packet_bytes = 1472;  ///< P, UDP payload (1500 on the wire)
  double inter_burst_gap_s = 1e-3;    ///< delta
  double line_rate_bps = 10e9;        ///< emission rate of back-to-back packets
  std::uint32_t header_bytes = 28;    ///< IP + UDP headers added on the wire
};

/// Emits one packet train into `first`, starting at `start_time`. Packets of
/// a burst leave back-to-back at the line rate; burst k+1 begins
/// `inter_burst_gap_s` after the last packet of burst k is emitted.
///
/// Returns the time the final packet is emitted.
double send_train(EventQueue& events, Element& first, const TrainParams& params,
                  std::uint64_t flow_id, double start_time);

}  // namespace choreo::packetsim

#include "packetsim/link.h"

namespace choreo::packetsim {

Link::Link(EventQueue& events, double rate_bps, double delay_s, double queue_bytes,
           Element* next)
    : events_(events),
      rate_bps_(rate_bps),
      delay_s_(delay_s),
      queue_limit_bytes_(queue_bytes),
      next_(next) {
  CHOREO_REQUIRE(rate_bps > 0.0);
  CHOREO_REQUIRE(delay_s >= 0.0);
  CHOREO_REQUIRE(queue_bytes >= 0.0);
  CHOREO_REQUIRE(next != nullptr);
}

void Link::receive(const Packet& pkt, double now) {
  if (busy_ && queued_bytes_ + pkt.wire_bytes > queue_limit_bytes_) {
    ++drops_;
    return;
  }
  queue_.push_back(pkt);
  queued_bytes_ += pkt.wire_bytes;
  if (!busy_) start_service(now);
}

void Link::start_service(double now) {
  CHOREO_ASSERT(!queue_.empty());
  busy_ = true;
  const Packet pkt = queue_.front();
  const double tx_time = static_cast<double>(pkt.wire_bytes) * 8.0 / rate_bps_;
  events_.schedule(now + tx_time, [this, pkt] {
    const double t = events_.now();
    queue_.pop_front();
    queued_bytes_ -= pkt.wire_bytes;
    ++forwarded_;
    // Propagation: hand to the next element after the link delay.
    const Packet delivered = pkt;
    events_.schedule(t + delay_s_,
                     [this, delivered] { next_->receive(delivered, events_.now()); });
    if (!queue_.empty()) {
      start_service(t);
    } else {
      busy_ = false;
    }
  });
}

}  // namespace choreo::packetsim

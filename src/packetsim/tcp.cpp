#include "packetsim/tcp.h"

#include <algorithm>

#include "util/require.h"

namespace choreo::packetsim {

TcpReceiver::TcpReceiver(EventQueue& events, Element* reverse_path, const TcpParams& params)
    : events_(events), reverse_(reverse_path), params_(params) {
  CHOREO_REQUIRE(reverse_path != nullptr);
}

void TcpReceiver::receive(const Packet& pkt, double now) {
  CHOREO_REQUIRE(!pkt.is_ack);
  arrivals_.emplace_back(now, pkt.wire_bytes - params_.header_bytes);
  if (pkt.seq == expected_) {
    ++expected_;
    ++delivered_;
    while (!out_of_order_.empty() && *out_of_order_.begin() == expected_) {
      out_of_order_.erase(out_of_order_.begin());
      ++expected_;
      ++delivered_;
    }
  } else if (pkt.seq > expected_) {
    out_of_order_.insert(pkt.seq);
  }  // duplicate below expected_: ignore payload, still ACK

  Packet ack;
  ack.flow = pkt.flow;
  ack.is_ack = true;
  ack.ack_seq = expected_;
  ack.wire_bytes = params_.ack_bytes;
  ack.sent_time = now;
  reverse_->receive(ack, now);
}

void AckTap::receive(const Packet& pkt, double now) { sender_->on_ack(pkt, now); }

TcpSender::TcpSender(EventQueue& events, Element* forward_path, const TcpParams& params,
                     std::uint64_t flow_id, std::uint64_t total_bytes)
    : events_(events),
      forward_(forward_path),
      params_(params),
      flow_(flow_id),
      total_segments_(total_bytes == kUnbounded
                          ? kUnbounded
                          : (total_bytes + params.mss_bytes - 1) / params.mss_bytes),
      cwnd_(params.initial_cwnd),
      ssthresh_(params.initial_ssthresh),
      rto_(1.0) {
  CHOREO_REQUIRE(forward_path != nullptr);
  CHOREO_REQUIRE(total_bytes > 0);
}

void TcpSender::start(double start_time) {
  CHOREO_REQUIRE(!started_);
  started_ = true;
  start_time_ = start_time;
  events_.schedule(start_time, [this] { try_send(events_.now()); });
}

void TcpSender::send_segment(std::uint64_t seq, double now) {
  Packet pkt;
  pkt.flow = flow_;
  pkt.seq = seq;
  pkt.wire_bytes = params_.mss_bytes + params_.header_bytes;
  pkt.sent_time = now;
  forward_->receive(pkt, now);
  // Time one segment per RTT for RTT estimation (Karn's rule: only new data).
  if (timed_sent_at_ < 0.0 && seq >= next_seq_) {
    timed_seq_ = seq;
    timed_sent_at_ = now;
  }
}

void TcpSender::try_send(double now) {
  if (finished_) return;
  const double effective_cwnd = std::min(cwnd_, params_.max_cwnd);
  while (true) {
    const std::uint64_t inflight = next_seq_ - acked_segments_;
    if (static_cast<double>(inflight) + 1.0 > effective_cwnd) break;
    if (next_seq_ >= total_segments_) break;
    send_segment(next_seq_, now);
    ++next_seq_;
  }
  arm_rto(now);
}

void TcpSender::arm_rto(double now) {
  ++rto_generation_;
  const std::uint64_t gen = rto_generation_;
  const double deadline = std::max(rto_ * rto_backoff_, params_.min_rto_s);
  events_.schedule(now + deadline, [this, gen] { on_rto(gen); });
}

void TcpSender::on_rto(std::uint64_t generation) {
  if (generation != rto_generation_ || finished_) return;
  if (acked_segments_ >= next_seq_) return;  // nothing outstanding
  const double now = events_.now();
  // Timeout: shrink to one segment, re-enter slow start, retransmit the hole.
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
  in_recovery_ = false;
  dup_acks_ = 0;
  rto_backoff_ = std::min(rto_backoff_ * 2.0, 64.0);
  timed_sent_at_ = -1.0;  // Karn: do not time retransmissions
  ++retransmits_;
  send_segment(acked_segments_, now);
  arm_rto(now);
}

void TcpSender::on_ack(const Packet& pkt, double now) {
  CHOREO_REQUIRE(pkt.is_ack);
  if (finished_) return;

  if (pkt.ack_seq > acked_segments_) {
    // New data acknowledged.
    const std::uint64_t newly = pkt.ack_seq - acked_segments_;
    acked_segments_ = pkt.ack_seq;
    rto_backoff_ = 1.0;

    // RTT sample from the timed segment (skip if it was retransmitted).
    if (timed_sent_at_ >= 0.0 && acked_segments_ > timed_seq_) {
      const double sample = now - timed_sent_at_;
      if (!rtt_seeded_) {
        srtt_ = sample;
        rttvar_ = sample / 2.0;
        rtt_seeded_ = true;
      } else {
        rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample);
        srtt_ = 0.875 * srtt_ + 0.125 * sample;
      }
      rto_ = std::max(params_.min_rto_s, srtt_ + 4.0 * rttvar_);
      timed_sent_at_ = -1.0;
    }

    if (in_recovery_) {
      if (acked_segments_ >= recovery_point_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
        dup_acks_ = 0;
      } else {
        // Partial ACK: retransmit the next hole (NewReno-style).
        ++retransmits_;
        send_segment(acked_segments_, now);
      }
    } else {
      dup_acks_ = 0;
      for (std::uint64_t i = 0; i < newly; ++i) {
        if (cwnd_ < ssthresh_) {
          cwnd_ += 1.0;  // slow start
        } else {
          cwnd_ += 1.0 / cwnd_;  // congestion avoidance
        }
      }
    }

    if (total_segments_ != kUnbounded && acked_segments_ >= total_segments_) {
      finished_ = true;
      finish_time_ = now;
      ++rto_generation_;  // cancel timer
      return;
    }
    try_send(now);
    return;
  }

  // Duplicate ACK.
  if (pkt.ack_seq == acked_segments_ && next_seq_ > acked_segments_) {
    ++dup_acks_;
    if (!in_recovery_ && dup_acks_ == 3) {
      // Fast retransmit / fast recovery.
      in_recovery_ = true;
      recovery_point_ = next_seq_;
      recovery_entry_pipe_ = static_cast<double>(next_seq_ - acked_segments_);
      ssthresh_ = std::max(2.0, recovery_entry_pipe_ / 2.0);
      cwnd_ = ssthresh_ + 3.0;
      timed_sent_at_ = -1.0;
      ++retransmits_;
      send_segment(acked_segments_, now);
      arm_rto(now);
    } else if (in_recovery_) {
      // Inflate per extra dup ACK, but never beyond the pipe at recovery
      // entry: unbounded inflation after a deep overshoot blasts a second
      // loss burst into the queue.
      cwnd_ = std::min(cwnd_ + 1.0, recovery_entry_pipe_ + 3.0);
      try_send(now);
    }
  }
}

double TcpSender::throughput_bps(double now) const {
  const double elapsed = (finished_ ? finish_time_ : now) - start_time_;
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(acked_bytes()) * 8.0 / elapsed;
}

}  // namespace choreo::packetsim

#pragma once

#include <cstdint>
#include <deque>

#include "packetsim/event_queue.h"
#include "packetsim/packet.h"

namespace choreo::packetsim {

/// Token-bucket traffic shaper: models the hose-model egress rate limiting
/// that §4.3 finds at EC2 and Rackspace sources.
///
/// Tokens (bytes) refill at `rate_bps`; a packet passes immediately if the
/// bucket holds enough tokens, otherwise it waits in FIFO order. The `depth`
/// is the burst allowance, and it is the knob behind Fig 6's asymmetry:
///
///   * a *shallow* bucket (EC2-like) forces even short packet trains down to
///     the token rate, so 10x200-packet trains are already accurate;
///   * a *deep* bucket (Rackspace-like) lets bursts much smaller than the
///     depth through at line rate, so trains must be >= ~2000 packets before
///     they observe the enforced 300 Mbit/s.
///
/// `idle_reset_s` models credit-style hypervisor limiters that restore the
/// full burst allowance after a short idle period (>= the inter-burst gap
/// delta of §3.1); set it negative for a classic continuously-refilling
/// bucket.
class TokenBucket : public Element {
 public:
  TokenBucket(EventQueue& events, double rate_bps, double depth_bytes, Element* next,
              double idle_reset_s = -1.0);

  void receive(const Packet& pkt, double now) override;

  double tokens() const { return tokens_; }
  double rate_bps() const { return rate_bps_; }

 private:
  void refill(double now);
  void pump(double now);

  EventQueue& events_;
  double rate_bps_;
  double depth_bytes_;
  Element* next_;
  double idle_reset_s_;

  double tokens_;
  double last_update_ = 0.0;
  double last_activity_ = -1.0;
  std::deque<Packet> queue_;
  bool draining_ = false;
};

}  // namespace choreo::packetsim

#pragma once

#include <memory>
#include <vector>

#include "packetsim/event_queue.h"
#include "packetsim/link.h"
#include "packetsim/packet.h"
#include "packetsim/sink.h"
#include "packetsim/token_bucket.h"

namespace choreo::packetsim {

/// Description of one hop of a unidirectional path.
struct HopSpec {
  double rate_bps = 1e9;
  double delay_s = 20e-6;
  double queue_bytes = 512 * 1024;
};

/// Description of the source-side rate limiter (hose enforcement).
struct ShaperSpec {
  bool enabled = true;
  double rate_bps = 1e9;
  double depth_bytes = 30e3;
  double idle_reset_s = -1.0;
};

/// Owns a linear chain of elements modelling one VM-to-VM direction:
///
///   entry -> [token-bucket shaper] -> hop_1 -> ... -> hop_n -> terminal
///
/// The terminal element is supplied by the caller (RecordingSink,
/// TcpReceiver, ...). Hops expose their Link objects so that cross-traffic
/// sources can be attached mid-path.
class Path {
 public:
  Path(EventQueue& events, const ShaperSpec& shaper, const std::vector<HopSpec>& hops,
       Element* terminal);

  /// First element of the chain; feed packets here.
  Element& entry();

  /// The i-th hop's link (0-based), e.g. to attach cross traffic.
  Link& hop(std::size_t i);
  std::size_t hop_count() const { return links_.size(); }

  TokenBucket* shaper() { return shaper_.get(); }

 private:
  std::vector<std::unique_ptr<Link>> links_;  // stored last-to-first
  std::unique_ptr<TokenBucket> shaper_;
  Element* entry_ = nullptr;
};

}  // namespace choreo::packetsim

#pragma once

#include <cstdint>

namespace choreo::packetsim {

/// A simulated packet. One struct serves UDP probe traffic and TCP segments;
/// unused fields are zero.
struct Packet {
  std::uint64_t flow = 0;       ///< flow identifier
  std::uint64_t seq = 0;        ///< UDP probe sequence / TCP segment number
  std::uint32_t wire_bytes = 0; ///< size on the wire, headers included
  std::uint32_t burst = 0;      ///< packet-train burst index (§3.1)
  double sent_time = 0.0;       ///< emission timestamp at the original source
  bool is_ack = false;          ///< TCP pure ACK travelling the reverse path
  std::uint64_t ack_seq = 0;    ///< cumulative ACK: next expected segment
};

/// Anything that can accept a packet: links, shapers, sinks, TCP endpoints.
class Element {
 public:
  virtual ~Element() = default;
  /// Delivers `pkt` to this element at simulation time `now`.
  virtual void receive(const Packet& pkt, double now) = 0;
};

}  // namespace choreo::packetsim

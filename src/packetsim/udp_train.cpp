#include "packetsim/udp_train.h"

#include "util/require.h"

namespace choreo::packetsim {

double send_train(EventQueue& events, Element& first, const TrainParams& params,
                  std::uint64_t flow_id, double start_time) {
  CHOREO_REQUIRE(params.bursts >= 1 && params.burst_length >= 2);
  CHOREO_REQUIRE(params.packet_bytes >= 1);
  CHOREO_REQUIRE(params.line_rate_bps > 0.0);
  CHOREO_REQUIRE(start_time >= events.now());

  const std::uint32_t wire = params.packet_bytes + params.header_bytes;
  const double spacing = static_cast<double>(wire) * 8.0 / params.line_rate_bps;

  double t = start_time;
  std::uint64_t seq = 0;
  double last_emission = start_time;
  for (std::uint32_t k = 0; k < params.bursts; ++k) {
    for (std::uint32_t i = 0; i < params.burst_length; ++i) {
      Packet pkt;
      pkt.flow = flow_id;
      pkt.seq = seq++;
      pkt.burst = k;
      pkt.wire_bytes = wire;
      pkt.sent_time = t;
      events.schedule(t, [&first, pkt] { first.receive(pkt, pkt.sent_time); });
      last_emission = t;
      t += spacing;
    }
    t += params.inter_burst_gap_s;
  }
  return last_emission;
}

}  // namespace choreo::packetsim

#pragma once

#include <cstdint>

#include "packetsim/event_queue.h"
#include "packetsim/packet.h"
#include "util/rng.h"

namespace choreo::packetsim {

/// Open-loop background traffic source: emits fixed-size packets with
/// exponential inter-arrival times (Poisson arrivals) at a target load,
/// optionally gated by an exponential ON-OFF process (§3.2's background
/// connection model). Used to perturb probe paths in measurement
/// experiments.
class CrossTrafficSource {
 public:
  struct Params {
    double load_bps = 100e6;      ///< average rate while ON
    std::uint32_t packet_bytes = 1500;
    double mean_on_s = 5.0;
    double mean_off_s = 5.0;
    bool always_on = false;
    std::uint64_t flow_id = 9000;
  };

  CrossTrafficSource(EventQueue& events, Element* target, const Params& params,
                     std::uint64_t seed);

  /// Begins emission (and the ON-OFF process) at `start_time`.
  void start(double start_time);
  /// Stops permanently.
  void stop() { stopped_ = true; }

  std::uint64_t packets_sent() const { return sent_; }

 private:
  void schedule_next(double now);

  EventQueue& events_;
  Element* target_;
  Params params_;
  Rng rng_;
  bool on_ = true;
  bool stopped_ = false;
  double phase_ends_ = 0.0;
  std::uint64_t sent_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace choreo::packetsim

#include "agent/cluster_agent.h"

#include <utility>

#include "cloud/cloud.h"
#include "measure/probe_scheduler.h"
#include "util/require.h"

namespace choreo::agent {

ClusterAgent::ClusterAgent(cloud::Cloud& cloud, std::vector<std::size_t> vms,
                           measure::MeasurementPlan plan, measure::RefreshPolicy refresh,
                           forecast::ForecastOptions forecast, AgentOptions options,
                           place::RateModel model)
    : cloud_(cloud),
      vms_(std::move(vms)),
      mplan_(plan),
      refresh_(refresh),
      opts_(std::move(options)),
      model_(model),
      cache_(vms_.size()),
      policy_(forecast),
      agents_(vms_.size()) {
  CHOREO_REQUIRE_MSG(vms_.size() >= 2, "agent plane needs at least two VMs");
}

void ClusterAgent::reset_cache() { cache_ = measure::ViewCache(vms_.size()); }

void ClusterAgent::begin_cycle(std::uint64_t epoch, std::uint64_t cycle,
                               net::SimTransport& transport) {
  const std::size_t n = vms_.size();
  epoch_ = epoch;
  known_before_ = cache_.measured_pairs();
  fresh_.assign(n * n, 0);
  cycle_reports_ = 0;

  // Plan exactly like the in-process pipeline: through the forecast plane,
  // which delegates verbatim to the fixed ViewCache rules when disabled.
  cache_.resize(n);
  plan_ = policy_.plan_refresh(cache_, epoch, refresh_);

  // State re-sync for restarted agents: re-probe their whole outgoing row on
  // top of the plan (whatever they measured before the crash is gone, and
  // the cache may hold estimates the new incarnation never produced).
  std::vector<std::uint8_t> planned(n * n, 0);
  for (const auto& p : plan_.pairs) planned[p.src * n + p.dst] = 1;
  for (std::uint32_t a = 0; a < agents_.size(); ++a) {
    if (!agents_[a].resync_pending) continue;
    agents_[a].resync_pending = false;
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (dst == a || planned[a * n + dst]) continue;
      planned[a * n + dst] = 1;
      plan_.pairs.push_back(measure::ProbePair{a, dst});
      ++plan_.stale;
    }
  }

  // Central conflict-free round assignment, so the distributed trains carry
  // the same (epoch + round) snapshot keys the in-process scheduler uses.
  rounds_ = 0;
  wall_time_s_ = 0.0;
  if (!plan_.pairs.empty()) {
    const measure::ProbeSchedule schedule = measure::schedule_probes(n, plan_.pairs);
    rounds_ = schedule.rounds.size();
    wall_time_s_ = measure::measurement_wall_time_s(mplan_, rounds_);

    std::vector<proto::ProbeRequest> requests(n);
    for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
      for (const measure::ProbePair& p : schedule.rounds[r]) {
        proto::ProbeRequest& req = requests[p.src];
        req.probes.push_back(proto::ProbeDirective{
            static_cast<std::uint32_t>(p.src), static_cast<std::uint32_t>(p.dst),
            static_cast<std::uint32_t>(r)});
      }
    }
    for (std::uint32_t a = 0; a < n; ++a) {
      if (requests[a].probes.empty()) continue;
      requests[a].agent = a;
      requests[a].epoch = epoch;
      transport.send(kClusterEndpoint, endpoint_of(a), proto::encode(requests[a]), cycle);
    }
  }
}

void ClusterAgent::integrate_sample(const proto::RateSample& sample) {
  const std::size_t n = vms_.size();
  if (sample.src >= n || sample.dst >= n || sample.src == sample.dst) return;
  const measure::PairEstimate& have = cache_.at(sample.src, sample.dst);
  // Monotone epoch guard: a sample only advances the pair's estimate. Replays
  // of the same epoch and reordered older samples are no-ops, which is what
  // makes duplicate delivery idempotent end to end.
  if (have.valid() && sample.epoch <= have.epoch) {
    ++stats_.samples_superseded;
    return;
  }
  cache_.store(sample.src, sample.dst, sample.rate_bps, sample.epoch);
  policy_.observe(sample.src, sample.dst, sample.rate_bps, sample.epoch);
  ++stats_.samples_integrated;
  if (sample.epoch == epoch_) fresh_[sample.src * n + sample.dst] = 1;
}

void ClusterAgent::deliver(const proto::Message& msg, std::uint64_t cycle,
                           net::SimTransport& transport) {
  switch (msg.type) {
    case proto::MsgType::kStatsReport: {
      const proto::StatsReport& report = msg.stats_report;
      if (report.agent >= agents_.size()) return;
      AgentState& st = agents_[report.agent];
      st.last_heard_cycle = cycle;
      if (report.generation < st.generation) {
        // A dead incarnation's report still in flight. Never integrate and
        // never ack: the restarted agent does not own this seq number, and
        // the pre-crash sender no longer exists to retransmit.
        ++stats_.stale_generation_dropped;
        return;
      }
      if (report.generation > st.generation) {
        // Report outran the Hello: adopt the new incarnation implicitly.
        st.generation = report.generation;
        st.seen_seqs.clear();
        st.resync_pending = true;
        ++stats_.resyncs;
      }
      const proto::Ack ack{report.agent, report.generation, report.seq};
      if (!st.seen_seqs.insert(report.seq).second) {
        // Duplicate delivery (retransmit or transport copy): the ack may
        // have been lost, so re-ack — but integrate nothing.
        ++stats_.duplicates_dropped;
        transport.send(kClusterEndpoint, endpoint_of(report.agent), proto::encode(ack),
                       cycle);
        return;
      }
      for (const proto::RateSample& s : report.samples) integrate_sample(s);
      ++stats_.reports_integrated;
      ++cycle_reports_;
      transport.send(kClusterEndpoint, endpoint_of(report.agent), proto::encode(ack),
                     cycle);
      break;
    }
    case proto::MsgType::kHello: {
      const proto::Hello& hello = msg.hello;
      if (hello.agent >= agents_.size()) return;
      AgentState& st = agents_[hello.agent];
      st.last_heard_cycle = cycle;
      ++stats_.hellos;
      if (hello.generation > st.generation) {
        st.generation = hello.generation;
        st.seen_seqs.clear();
        st.resync_pending = true;
        ++stats_.resyncs;
      }
      transport.send(kClusterEndpoint, endpoint_of(hello.agent),
                     proto::encode(proto::HelloAck{hello.agent, st.generation}), cycle);
      break;
    }
    default:
      break;  // the controller ignores message types hosts own
  }
}

ClusterAgent::CycleReport ClusterAgent::end_cycle(std::uint64_t epoch) {
  const std::size_t n = vms_.size();
  CHOREO_REQUIRE_MSG(epoch == epoch_, "end_cycle epoch does not match begin_cycle");

  CycleReport rep;

  // The view is the cache's current (stale-or-partial) picture plus tenant
  // topology; an empty probe plan makes refresh_cluster_view_with_plan probe
  // nothing and just rebuild — the exact primitive we need here.
  measure::RefreshResult rebuilt = measure::refresh_cluster_view_with_plan(
      cloud_, vms_, mplan_, epoch, cache_, measure::RefreshPlan{});
  rep.view = std::move(rebuilt.view);

  // Forecast fill over the gaps: apply_to_view treats every pair NOT in the
  // plan it is handed as unprobed, so handing it only the pairs that actually
  // reported this cycle (in planned order) routes lost/late pairs through the
  // predictor fill + uncertainty discount.
  measure::RefreshPlan effective;
  effective.pairs.reserve(plan_.pairs.size());
  for (const measure::ProbePair& p : plan_.pairs) {
    if (fresh_[p.src * n + p.dst]) effective.pairs.push_back(p);
  }
  policy_.apply_to_view(rep.view, cache_, effective, epoch);

  // Never-measured pairs (their first-sweep report lost before any sample
  // landed) leave zero-rate holes neither the cache nor the forecast can
  // fill, and the placement layer rejects a view with them. Fill the holes
  // with the most conservative rate measured so far (pessimistic: do not
  // tempt the placer across a link it knows nothing about), or a nominal
  // 1 Gbps when nothing has been measured at all. A lossless transport never
  // produces a hole, so this cannot perturb the bit-identity oracle.
  double fallback = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double r = rep.view.rate_bps(i, j);
      if (i == j || r <= 0.0) continue;
      if (fallback == 0.0 || r < fallback) fallback = r;
    }
  }
  if (fallback == 0.0) fallback = 1e9;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || rep.view.rate_bps(i, j) > 0.0) continue;
      rep.view.rate_bps(i, j) = fallback;
      ++rep.pairs_defaulted;
    }
  }

  rep.wall_time_s = wall_time_s_;
  rep.rounds = rounds_;
  rep.pairs_probed = effective.pairs.size();
  rep.incremental = known_before_ > 0;
  rep.never_measured = plan_.never_measured;
  rep.stale = plan_.stale;
  rep.volatile_pairs = plan_.volatile_pairs;
  const forecast::PredictivePolicy::PlanStats& fs = policy_.last_plan();
  rep.predictable_pairs = fs.predictable;
  rep.unpredictable_pairs = fs.unpredictable + fs.warmup;
  rep.changepoint_pairs = fs.changepoints;
  rep.predicted_pairs = fs.predicted;
  rep.forecast_full_sweep = fs.full_sweep;
  rep.pairs_planned = plan_.pairs.size();
  rep.pairs_missing = plan_.pairs.size() - effective.pairs.size();
  rep.reports_integrated = cycle_reports_;

  if (opts_.serve_snapshots) {
    if (!service_) {
      service_ = std::make_unique<serve::PlacementService>(rep.view, model_);
    } else {
      service_->publish_view(rep.view);
    }
  }
  return rep;
}

std::uint64_t ClusterAgent::last_heard(std::uint32_t agent) const {
  CHOREO_REQUIRE(agent < agents_.size());
  return agents_[agent].last_heard_cycle;
}

std::uint32_t ClusterAgent::known_generation(std::uint32_t agent) const {
  CHOREO_REQUIRE(agent < agents_.size());
  return agents_[agent].generation;
}

}  // namespace choreo::agent

#include "agent/plane.h"

#include <utility>

#include "measure/packet_train.h"
#include "util/require.h"
#include "util/rng.h"

namespace choreo::agent {

namespace {

std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = a;
  x = x * 0x9E3779B97F4A7C15ULL + b;
  x ^= x >> 30;
  x = x * 0xBF58476D1CE4E5B9ULL + c;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

AgentPlane::AgentPlane(cloud::Cloud& cloud, std::vector<std::size_t> vms,
                       measure::MeasurementPlan plan, measure::RefreshPolicy refresh,
                       forecast::ForecastOptions forecast, AgentOptions options,
                       place::RateModel model)
    : cloud_(cloud),
      vms_(std::move(vms)),
      mplan_(plan),
      opts_(options),
      transport_(vms_.size() + 1, options.transport),
      cluster_(cloud, vms_, plan, refresh, forecast, options, model) {
  CHOREO_REQUIRE_MSG(vms_.size() >= 2, "agent plane needs at least two VMs");
  hosts_.reserve(vms_.size());
  for (std::uint32_t i = 0; i < vms_.size(); ++i) {
    hosts_.emplace_back(i, opts_,
                        [this](std::uint32_t src, std::uint32_t dst, std::uint32_t round,
                               std::uint64_t epoch) {
                          return execute_probe(src, dst, round, epoch);
                        });
  }
  // A crashing host loses its in-memory counters; the sink folds them into
  // the plane's durable accounting first, so plane totals are conserved.
  for (HostAgent& h : hosts_) {
    h.set_crash_sink([this](const HostAgent::Stats& dying) {
      durable_.probes_run += dying.probes_run;
      durable_.reports_sent += dying.reports_sent;
      durable_.retransmits += dying.retransmits;
      durable_.crashes += dying.crashes;
      durable_.restarts += dying.restarts;
      durable_.samples_deferred += dying.samples_deferred;
    });
  }
}

void AgentPlane::set_observer(const obs::Observer& o) {
  obs_ = o;
  handles_.cycles = o.counter("agent.cycles");
  handles_.probes_run = o.counter("agent.probes_run");
  handles_.reports_sent = o.counter("agent.reports_sent");
  handles_.retransmits = o.counter("agent.retransmits");
  handles_.crashes = o.counter("agent.crashes");
  handles_.restarts = o.counter("agent.restarts");
  handles_.wire_bytes = o.counter("agent.wire_bytes");
  handles_.msgs_dropped = o.counter("agent.msgs_dropped");
  prev_ = stats();
}

double AgentPlane::execute_probe(std::uint32_t src, std::uint32_t dst,
                                 std::uint32_t round, std::uint64_t epoch) {
  // Same keying as the central scheduler: round r of the cycle probes
  // against the (epoch + r) cross-traffic snapshot, and the train itself is
  // keyed by (snapshot, src, dst) inside the cloud — so a distributed probe
  // reproduces the in-process estimate bit for bit.
  const std::uint64_t snap_epoch = epoch + round;
  auto it = snapshots_.find(snap_epoch);
  if (it == snapshots_.end()) {
    it = snapshots_.emplace(snap_epoch, cloud_.traffic_snapshot(snap_epoch)).first;
  }
  const auto records =
      cloud_.run_train_in_snapshot(vms_[src], vms_[dst], mplan_.train, it->second);
  const double rtt = cloud_.ping_rtt_s(vms_[src], vms_[dst]);
  return measure::estimate_train_throughput(records, mplan_.train, rtt).throughput_bps;
}

void AgentPlane::crash_agent(std::uint32_t id) {
  CHOREO_REQUIRE(id < hosts_.size());
  hosts_[id].crash(cycle_);
}

ClusterAgent::CycleReport AgentPlane::run_cycle(std::uint64_t epoch) {
  CHOREO_OBS_SPAN(span, obs_, "agent.cycle", "agent");
  ++cycle_;
  snapshots_.clear();

  // Phase 0: seed-keyed crash draws, keyed by (crash_seed, cycle, agent) so
  // the crash schedule replays independently of everything else.
  if (opts_.crash_rate > 0.0) {
    for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
      if (hosts_[i].down()) continue;
      Rng rng(mix3(opts_.crash_seed, cycle_, i));
      if (rng.chance(opts_.crash_rate)) hosts_[i].crash(cycle_);
    }
  }

  // Phase 1: the controller plans and fans out ProbeRequests.
  cluster_.begin_cycle(epoch, cycle_, transport_);

  // Phase 2: each host drains its inbox (requests + acks from earlier
  // cycles), runs the directed probes, and ships reports/retransmits.
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    for (auto& d : transport_.receive(endpoint_of(i), cycle_)) {
      if (const auto msg = proto::decode(d.bytes)) hosts_[i].deliver(*msg, cycle_);
    }
    hosts_[i].tick(cycle_, transport_);
  }

  // Phase 3: the controller integrates whatever reports made it through and
  // acks them.
  for (auto& d : transport_.receive(kClusterEndpoint, cycle_)) {
    if (const auto msg = proto::decode(d.bytes)) cluster_.deliver(*msg, cycle_, transport_);
  }

  // Phase 4: hosts take the cycle's acks so same-cycle delivery (the
  // zero-delay oracle) clears the pending queues before any retransmit
  // timer can fire.
  for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
    for (auto& d : transport_.receive(endpoint_of(i), cycle_)) {
      if (const auto msg = proto::decode(d.bytes)) hosts_[i].deliver(*msg, cycle_);
    }
  }

  ClusterAgent::CycleReport report = cluster_.end_cycle(epoch);

  // Scrape this cycle's activity as deltas of the conserved plane totals.
  const Stats now = stats();
  CHOREO_OBS_INC(handles_.cycles, obs_);
  CHOREO_OBS_ADD(handles_.probes_run, obs_, now.probes_run - prev_.probes_run);
  CHOREO_OBS_ADD(handles_.reports_sent, obs_, now.reports_sent - prev_.reports_sent);
  CHOREO_OBS_ADD(handles_.retransmits, obs_, now.retransmits - prev_.retransmits);
  CHOREO_OBS_ADD(handles_.crashes, obs_, now.crashes - prev_.crashes);
  CHOREO_OBS_ADD(handles_.restarts, obs_, now.restarts - prev_.restarts);
  CHOREO_OBS_ADD(handles_.wire_bytes, obs_,
                 now.transport.bytes_sent - prev_.transport.bytes_sent);
  CHOREO_OBS_ADD(handles_.msgs_dropped, obs_,
                 now.transport.dropped - prev_.transport.dropped);
  span.arg("probes", static_cast<double>(now.probes_run - prev_.probes_run));
  span.arg("retransmits", static_cast<double>(now.retransmits - prev_.retransmits));
  span.arg("pairs_missing", static_cast<double>(report.pairs_missing));
  prev_ = now;
  return report;
}

AgentPlane::Stats AgentPlane::stats() const {
  Stats s;
  s.transport = transport_.stats();
  s.cluster = cluster_.stats();
  s.probes_run = durable_.probes_run;
  s.reports_sent = durable_.reports_sent;
  s.retransmits = durable_.retransmits;
  s.crashes = durable_.crashes;
  s.restarts = durable_.restarts;
  s.samples_deferred = durable_.samples_deferred;
  for (const HostAgent& h : hosts_) {
    s.probes_run += h.stats().probes_run;
    s.reports_sent += h.stats().reports_sent;
    s.retransmits += h.stats().retransmits;
    s.crashes += h.stats().crashes;
    s.restarts += h.stats().restarts;
    s.samples_deferred += h.stats().samples_deferred;
  }
  return s;
}

}  // namespace choreo::agent

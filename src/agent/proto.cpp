#include "agent/proto.h"

#include <algorithm>
#include <cstring>

namespace choreo::agent::proto {

namespace {

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(Bytes& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_header(Bytes& out, MsgType type, std::uint32_t count) {
  put_u32(out, kMagic);
  put_u16(out, kVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u32(out, count);
}

/// Bounds-checked little-endian reader; any read past the end poisons the
/// cursor so the caller's single ok() check at the end suffices.
class Reader {
 public:
  explicit Reader(const Bytes& bytes) : bytes_(bytes) {}

  std::uint16_t u16() { return static_cast<std::uint16_t>(raw(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(raw(4)); }
  std::uint64_t u64() { return raw(8); }
  double f64() {
    const std::uint64_t bits = raw(8);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return ok_ && pos_ == bytes_.size(); }

 private:
  std::uint64_t raw(std::size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  const Bytes& bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

Bytes encode(const ProbeRequest& msg) {
  Bytes out;
  put_header(out, MsgType::kProbeRequest, static_cast<std::uint32_t>(msg.probes.size()));
  put_u32(out, msg.agent);
  put_u64(out, msg.epoch);
  for (const auto& p : msg.probes) {
    put_u32(out, p.src);
    put_u32(out, p.dst);
    put_u32(out, p.round);
  }
  return out;
}

Bytes encode(const StatsReport& msg) {
  Bytes out;
  put_header(out, MsgType::kStatsReport, static_cast<std::uint32_t>(msg.samples.size()));
  put_u32(out, msg.agent);
  put_u32(out, msg.generation);
  put_u32(out, msg.seq);
  for (const auto& s : msg.samples) {
    put_u32(out, s.src);
    put_u32(out, s.dst);
    put_u64(out, s.epoch);
    put_f64(out, s.rate_bps);
  }
  return out;
}

Bytes encode(const Ack& msg) {
  Bytes out;
  put_header(out, MsgType::kAck, 0);
  put_u32(out, msg.agent);
  put_u32(out, msg.generation);
  put_u32(out, msg.seq);
  return out;
}

Bytes encode(const Hello& msg) {
  Bytes out;
  put_header(out, MsgType::kHello, 0);
  put_u32(out, msg.agent);
  put_u32(out, msg.generation);
  return out;
}

Bytes encode(const HelloAck& msg) {
  Bytes out;
  put_header(out, MsgType::kHelloAck, 0);
  put_u32(out, msg.agent);
  put_u32(out, msg.generation);
  return out;
}

std::optional<Message> decode(const Bytes& bytes) {
  Reader r(bytes);
  if (r.u32() != kMagic) return std::nullopt;
  if (r.u16() != kVersion) return std::nullopt;
  const std::uint16_t type = r.u16();
  const std::uint32_t count = r.u32();
  if (!r.ok()) return std::nullopt;

  Message msg;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kProbeRequest: {
      msg.type = MsgType::kProbeRequest;
      msg.probe_request.agent = r.u32();
      msg.probe_request.epoch = r.u64();
      // Bound the reserve by the byte budget so a forged count cannot force
      // a huge allocation before the truncation check fires.
      msg.probe_request.probes.reserve(std::min<std::size_t>(count, bytes.size()));
      for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
        ProbeDirective p;
        p.src = r.u32();
        p.dst = r.u32();
        p.round = r.u32();
        msg.probe_request.probes.push_back(p);
      }
      break;
    }
    case MsgType::kStatsReport: {
      msg.type = MsgType::kStatsReport;
      msg.stats_report.agent = r.u32();
      msg.stats_report.generation = r.u32();
      msg.stats_report.seq = r.u32();
      msg.stats_report.samples.reserve(std::min<std::size_t>(count, bytes.size()));
      for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
        RateSample s;
        s.src = r.u32();
        s.dst = r.u32();
        s.epoch = r.u64();
        s.rate_bps = r.f64();
        msg.stats_report.samples.push_back(s);
      }
      break;
    }
    case MsgType::kAck:
      msg.type = MsgType::kAck;
      msg.ack.agent = r.u32();
      msg.ack.generation = r.u32();
      msg.ack.seq = r.u32();
      break;
    case MsgType::kHello:
      msg.type = MsgType::kHello;
      msg.hello.agent = r.u32();
      msg.hello.generation = r.u32();
      break;
    case MsgType::kHelloAck:
      msg.type = MsgType::kHelloAck;
      msg.hello_ack.agent = r.u32();
      msg.hello_ack.generation = r.u32();
      break;
    default:
      return std::nullopt;
  }
  // Truncated payloads and trailing garbage are both rejected: the byte
  // count must match the declared shape exactly.
  if (!r.exhausted()) return std::nullopt;
  return msg;
}

}  // namespace choreo::agent::proto

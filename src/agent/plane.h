#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "agent/cluster_agent.h"
#include "agent/host_agent.h"
#include "agent/options.h"
#include "cloud/cloud.h"
#include "net/transport.h"
#include "obs/observer.h"
#include "place/cluster.h"

namespace choreo::agent {

/// The whole distributed measurement plane behind one controller: N host
/// agents (one per VM), one ClusterAgent, and the SimTransport between
/// them, advanced in lock-step cycles. One run_cycle(epoch) is the agent
/// plane's replacement for one in-process measure_network(epoch) — it
/// returns the same CycleReport shape, built from whatever reports survived
/// the transport.
///
/// Phase order within a cycle is fixed (crash draws, restarts + requests,
/// host probe/report, controller integrate/ack, host ack intake), so a run
/// is a pure function of (cloud, options, epoch sequence) — the property
/// the replay-determinism tests pin.
class AgentPlane {
 public:
  struct Stats {
    net::SimTransport::Stats transport;
    ClusterAgent::Stats cluster;
    std::uint64_t probes_run = 0;
    std::uint64_t reports_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t samples_deferred = 0;
  };

  AgentPlane(cloud::Cloud& cloud, std::vector<std::size_t> vms,
             measure::MeasurementPlan plan, measure::RefreshPolicy refresh,
             forecast::ForecastOptions forecast, AgentOptions options,
             place::RateModel model = place::RateModel::Hose);

  /// Runs one full measurement cycle at `epoch` and returns the controller's
  /// (possibly stale-or-partial) view of the result.
  ClusterAgent::CycleReport run_cycle(std::uint64_t epoch);

  /// Crashes one agent immediately (test/fault injection entry point); the
  /// agent restarts options.down_cycles cycles later with a new generation.
  void crash_agent(std::uint32_t id);

  std::uint64_t cycle() const { return cycle_; }
  ClusterAgent& cluster() { return cluster_; }
  const ClusterAgent& cluster() const { return cluster_; }
  const HostAgent& host(std::uint32_t id) const { return hosts_[id]; }
  const net::SimTransport& transport() const { return transport_; }
  const AgentOptions& options() const { return opts_; }

  /// Forget every cached pair estimate (the non-incremental measure path).
  void reset_cache() { cluster_.reset_cache(); }

  /// Aggregated counters across the transport, the controller, all live
  /// host-agent incarnations, and the durable fold of every crashed
  /// incarnation's pre-crash activity (the crash sinks) — so totals are
  /// conserved across crashes (pinned by test_agent_faults).
  Stats stats() const;

  /// Attaches the observability plane: per-cycle "agent.cycle" spans and
  /// agent.* counter deltas land in `o`'s tracer/registry. Safe to call
  /// any time; a null observer detaches.
  void set_observer(const obs::Observer& o);

 private:
  double execute_probe(std::uint32_t src, std::uint32_t dst, std::uint32_t round,
                       std::uint64_t epoch);

  cloud::Cloud& cloud_;
  std::vector<std::size_t> vms_;
  measure::MeasurementPlan mplan_;
  AgentOptions opts_;

  net::SimTransport transport_;
  ClusterAgent cluster_;
  std::vector<HostAgent> hosts_;

  std::uint64_t cycle_ = 0;
  /// Cross-traffic snapshots shared by every probe of one cycle, keyed by
  /// snapshot epoch (= cycle epoch + round). Purely a simulation-speed
  /// memoization: traffic_snapshot is a deterministic pure function, so
  /// sharing changes nothing.
  std::map<std::uint64_t, cloud::Cloud::TrafficSnapshot> snapshots_;

  /// Host-agent counters salvaged by the crash sinks: the sum of every dead
  /// incarnation's stats. stats() adds this to the live hosts' sums.
  HostAgent::Stats durable_;

  obs::Observer obs_;
  struct ObsHandles {
    obs::Counter cycles, probes_run, reports_sent, retransmits;
    obs::Counter crashes, restarts, wire_bytes, msgs_dropped;
  };
  ObsHandles handles_;
  Stats prev_;  ///< stats() at the end of the previous cycle (delta scraping)
};

}  // namespace choreo::agent

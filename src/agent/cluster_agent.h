#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "agent/options.h"
#include "agent/proto.h"
#include "forecast/predictive_policy.h"
#include "measure/throughput_matrix.h"
#include "measure/view_cache.h"
#include "net/transport.h"
#include "place/cluster.h"
#include "serve/service.h"

namespace choreo::cloud {
class Cloud;
}

namespace choreo::agent {

/// The controller half of the agent plane. Per measurement cycle it plans a
/// refresh exactly like the in-process pipeline (through PredictivePolicy,
/// which delegates to the fixed ViewCache rules when forecasting is off),
/// schedules the planned pairs into conflict-free rounds, and fans the
/// (pair, round) directives out to the owning host agents as ProbeRequests.
/// Incoming StatsReports pass a (generation, seq) guard — stale generations
/// are dropped, duplicates are re-acked but not re-integrated — and each
/// sample lands in the ViewCache only if newer than the cached estimate, so
/// delivery order, duplication, and late arrivals cannot corrupt the view.
/// At cycle end the stale-or-partial view is rebuilt from the cache, gaps
/// are routed through the forecast fill (apply_to_view over the pairs that
/// actually reported), and the result is optionally published to an embedded
/// PlacementService.
class ClusterAgent {
 public:
  /// What one cycle produced — the fields core::Choreo::MeasureReport needs,
  /// plus agent-plane accounting.
  struct CycleReport {
    place::ClusterView view;
    double wall_time_s = 0.0;
    std::size_t pairs_probed = 0;  ///< planned pairs whose report arrived in-cycle
    std::size_t rounds = 0;
    bool incremental = false;

    // RefreshPlan classification (why each planned pair qualified).
    std::size_t never_measured = 0;
    std::size_t stale = 0;
    std::size_t volatile_pairs = 0;

    // Forecast accounting, copied from PredictivePolicy::last_plan().
    std::size_t predictable_pairs = 0;
    std::size_t unpredictable_pairs = 0;
    std::size_t changepoint_pairs = 0;
    std::size_t predicted_pairs = 0;
    bool forecast_full_sweep = false;

    // Agent-plane accounting for this cycle.
    std::size_t pairs_planned = 0;
    std::size_t pairs_missing = 0;       ///< planned but no report landed in-cycle
    std::size_t reports_integrated = 0;  ///< fresh StatsReports accepted this cycle
    /// Never-measured pairs whose view entry was filled with the fallback
    /// rate (first-sweep losses — no sample ever arrived, so neither the
    /// cache nor the forecast has anything to offer). Always 0 on a lossless
    /// transport.
    std::size_t pairs_defaulted = 0;
  };

  /// Cumulative controller-side counters across all cycles.
  struct Stats {
    std::uint64_t reports_integrated = 0;
    std::uint64_t duplicates_dropped = 0;        ///< same (generation, seq) again
    std::uint64_t stale_generation_dropped = 0;  ///< report from a dead incarnation
    std::uint64_t samples_integrated = 0;
    std::uint64_t samples_superseded = 0;  ///< cache already had a newer/equal epoch
    std::uint64_t hellos = 0;
    std::uint64_t resyncs = 0;  ///< generation bumps observed (crash recoveries)
  };

  /// `vms` is the tenant fleet in view-index order (same contract as
  /// core::Choreo): pair indices in plans, samples, and the cache are
  /// positions in this vector.
  ClusterAgent(cloud::Cloud& cloud, std::vector<std::size_t> vms,
               measure::MeasurementPlan plan, measure::RefreshPolicy refresh,
               forecast::ForecastOptions forecast, AgentOptions options,
               place::RateModel model);

  /// Plans the cycle's refresh and sends per-agent ProbeRequests. Agents the
  /// controller saw restart (Hello with a newer generation) get their entire
  /// outgoing rows re-probed on top of the plan — the state re-sync.
  void begin_cycle(std::uint64_t epoch, std::uint64_t cycle, net::SimTransport& transport);

  /// Handles one delivered message (StatsReport / Hello), sending acks
  /// through `transport`.
  void deliver(const proto::Message& msg, std::uint64_t cycle, net::SimTransport& transport);

  /// Rebuilds the view from the cache, applies the forecast fill over the
  /// pairs that reported, and publishes to the embedded PlacementService
  /// when configured.
  CycleReport end_cycle(std::uint64_t epoch);

  /// Full-sweep support: forget every cached estimate (the non-incremental
  /// measure path).
  void reset_cache();

  const measure::ViewCache& cache() const { return cache_; }
  const Stats& stats() const { return stats_; }

  /// Last cycle at which any message from `agent` was delivered (0 = never).
  std::uint64_t last_heard(std::uint32_t agent) const;
  /// The newest generation the controller has accepted from `agent`.
  std::uint32_t known_generation(std::uint32_t agent) const;

  /// The embedded serving front end (nullptr unless options.serve_snapshots
  /// and at least one cycle completed).
  serve::PlacementService* service() { return service_.get(); }

 private:
  struct AgentState {
    std::uint32_t generation = 0;
    std::uint64_t last_heard_cycle = 0;
    std::unordered_set<std::uint32_t> seen_seqs;  ///< of the current generation
    bool resync_pending = false;
  };

  void integrate_sample(const proto::RateSample& sample);

  cloud::Cloud& cloud_;
  std::vector<std::size_t> vms_;  ///< cloud::VmId per view index
  measure::MeasurementPlan mplan_;
  measure::RefreshPolicy refresh_;
  AgentOptions opts_;
  place::RateModel model_;

  measure::ViewCache cache_;
  forecast::PredictivePolicy policy_;
  std::vector<AgentState> agents_;
  std::unique_ptr<serve::PlacementService> service_;

  // Current-cycle state (begin_cycle .. end_cycle).
  std::uint64_t epoch_ = 0;
  measure::RefreshPlan plan_;
  std::vector<std::uint8_t> fresh_;  ///< pair integrated at epoch_ this cycle
  std::size_t known_before_ = 0;
  std::size_t rounds_ = 0;
  double wall_time_s_ = 0.0;
  std::size_t cycle_reports_ = 0;

  Stats stats_;
};

}  // namespace choreo::agent

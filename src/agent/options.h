#pragma once

#include <cstdint>

#include "net/transport.h"

namespace choreo::agent {

/// Endpoint layout on the agent plane's SimTransport: the ClusterAgent is
/// endpoint 0, host agent i is endpoint i + 1.
inline constexpr net::SimTransport::Endpoint kClusterEndpoint = 0;

inline net::SimTransport::Endpoint endpoint_of(std::uint32_t agent_id) {
  return agent_id + 1;
}

/// Configuration of the distributed agent plane. The defaults (lossless
/// zero-delay transport, unlimited report budget, no crashes) are exactly
/// the configuration pinned bit-identical to the in-process measurement
/// path; every knob here moves away from that oracle.
struct AgentOptions {
  /// Master switch: when false the controller measures in-process as before.
  bool enabled = false;

  /// Transport fault injection (loss / delay / duplicate), seed-keyed.
  net::TransportOptions transport;

  /// Report budget: at most this many samples per StatsReport and this many
  /// fresh reports per agent per cycle (0 = unlimited). Samples over budget
  /// queue at the agent and drain in later cycles — the controller sees them
  /// late, stamped with their true measurement epoch.
  std::size_t max_samples_per_report = 0;
  std::size_t max_reports_per_cycle = 0;

  /// Sender-side reliability: a report is retransmitted when unacked for
  /// `retry_timeout_cycles`, backing off exponentially (timeout * 2^attempt)
  /// up to `max_backoff_exponent` doublings.
  std::uint64_t retry_timeout_cycles = 1;
  std::uint32_t max_backoff_exponent = 6;

  /// Crash injection: each live agent crashes with `crash_rate` probability
  /// per cycle (seed-keyed by (crash_seed, cycle, agent)), loses all
  /// volatile state (sample queue, unacked reports, inbox), and restarts
  /// after `down_cycles` with a bumped generation + Hello re-sync.
  double crash_rate = 0.0;
  std::uint64_t down_cycles = 2;
  std::uint64_t crash_seed = 1;

  /// When true the ClusterAgent publishes every integrated view to an
  /// embedded serve::PlacementService (epoch-swapped snapshots), so serving
  /// threads can place against the latest stale-or-partial view.
  bool serve_snapshots = false;
};

}  // namespace choreo::agent

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "agent/options.h"
#include "agent/proto.h"
#include "net/transport.h"

namespace choreo::agent {

/// Executes one probe directive on behalf of a host agent: measure pair
/// (src, dst) against the cross-traffic snapshot of (epoch + round) and
/// return the estimated rate in bps. Supplied by the AgentPlane so the
/// agent logic stays independent of the Cloud simulator.
using ProbeExecutor = std::function<double(
    std::uint32_t src, std::uint32_t dst, std::uint32_t round, std::uint64_t epoch)>;

/// Per-VM measurement agent. Receives ProbeRequests from the ClusterAgent,
/// runs the directed probes, queues the resulting samples, and ships them
/// as StatsReports under a (generation, seq) reliability envelope: reports
/// are retransmitted with exponential backoff until acked, the sample queue
/// is drained under the configured report budget, and a crash wipes every
/// piece of volatile state — on restart the agent bumps its generation and
/// re-announces with Hello until the controller acks the new incarnation.
class HostAgent {
 public:
  struct Stats {
    std::uint64_t probes_run = 0;
    std::uint64_t reports_sent = 0;  ///< first transmissions only
    std::uint64_t retransmits = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t samples_deferred = 0;  ///< cycle-end backlog sum (budget pressure)
  };

  HostAgent(std::uint32_t id, AgentOptions options, ProbeExecutor executor);

  std::uint32_t id() const { return id_; }
  std::uint32_t generation() const { return generation_; }
  bool down() const { return down_; }

  /// True while anything still needs to reach the controller: queued
  /// samples, unacked reports, or an unacked Hello.
  bool has_backlog() const {
    return !queue_.empty() || !pending_.empty() || hello_pending_;
  }

  /// Invoked from crash() with the dying incarnation's counters, before
  /// they are wiped with the rest of the volatile state. The plane installs
  /// one per host to fold pre-crash activity into its durable accounting —
  /// without a sink those counters are simply lost (as they would be on a
  /// real host whose process died).
  using CrashSink = std::function<void(const Stats&)>;
  void set_crash_sink(CrashSink sink) { crash_sink_ = std::move(sink); }

  /// Crash now: the inbox, sample queue, in-flight unacked reports, AND the
  /// in-memory counters are all lost (after the crash sink, if any, sees
  /// them). The agent restarts `options.down_cycles` cycles later with
  /// generation + 1 and seq reset to 0; the crash event itself is counted
  /// on the fresh incarnation's stats.
  void crash(std::uint64_t cycle);

  /// Handles one delivered message (ProbeRequest / Ack / HelloAck).
  /// Messages delivered while down are dropped on the floor.
  void deliver(const proto::Message& msg, std::uint64_t cycle);

  /// Once per cycle, after deliveries: restart if the downtime elapsed,
  /// re-announce (Hello) if a restart is unacked, pack queued samples into
  /// budgeted StatsReports, and send fresh reports + due retransmits.
  void tick(std::uint64_t cycle, net::SimTransport& transport);

  const Stats& stats() const { return stats_; }
  std::size_t queued_samples() const { return queue_.size(); }
  std::size_t unacked_reports() const { return pending_.size(); }

 private:
  struct PendingReport {
    proto::StatsReport report;
    std::uint64_t next_retry = 0;
    std::uint32_t attempts = 0;
  };

  void send_report(const proto::StatsReport& report, std::uint64_t cycle,
                   net::SimTransport& transport);

  std::uint32_t id_;
  AgentOptions opts_;
  ProbeExecutor executor_;

  std::uint32_t generation_ = 0;
  std::uint32_t next_seq_ = 0;
  bool down_ = false;
  std::uint64_t restart_cycle_ = 0;
  bool hello_pending_ = false;

  std::deque<proto::RateSample> queue_;  ///< measured, not yet packed
  std::vector<PendingReport> pending_;   ///< sent, not yet acked
  Stats stats_;  ///< this incarnation only — crash() wipes it via the sink
  CrashSink crash_sink_;
};

}  // namespace choreo::agent

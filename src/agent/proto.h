#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace choreo::agent::proto {

using Bytes = std::vector<std::uint8_t>;

/// Wire format: a fixed header {magic, version, type, count} followed by the
/// message's scalar fields and `count` repeated POD entries, every scalar
/// little-endian. decode() rejects anything with a wrong magic or version, an
/// unknown type, or a length that does not match the declared count — a
/// corrupted or truncated datagram yields nullopt, never a partial message.
inline constexpr std::uint32_t kMagic = 0x43414750;  // "CAGP"
inline constexpr std::uint16_t kVersion = 1;

enum class MsgType : std::uint16_t {
  kProbeRequest = 1,  ///< cluster -> host: probe these pairs this cycle
  kStatsReport = 2,   ///< host -> cluster: measured rate samples
  kAck = 3,           ///< cluster -> host: StatsReport (generation, seq) received
  kHello = 4,         ///< host -> cluster: (re)announce after a restart
  kHelloAck = 5,      ///< cluster -> host: Hello received, resync scheduled
};

/// One probe directive: measure pair (src, dst) against the cross-traffic
/// snapshot of (request epoch + round). Carrying the round keeps the
/// distributed probes keyed exactly like the central ProbeScheduler's.
struct ProbeDirective {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t round = 0;

  friend bool operator==(const ProbeDirective& a, const ProbeDirective& b) {
    return a.src == b.src && a.dst == b.dst && a.round == b.round;
  }
};

struct RateSample {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t epoch = 0;  ///< measurement epoch the sample was taken at
  double rate_bps = 0.0;

  friend bool operator==(const RateSample& a, const RateSample& b) {
    return a.src == b.src && a.dst == b.dst && a.epoch == b.epoch &&
           a.rate_bps == b.rate_bps;
  }
};

struct ProbeRequest {
  std::uint32_t agent = 0;
  std::uint64_t epoch = 0;
  std::vector<ProbeDirective> probes;
};

struct StatsReport {
  std::uint32_t agent = 0;
  std::uint32_t generation = 0;  ///< bumped on every agent restart
  std::uint32_t seq = 0;         ///< per-generation report sequence number
  std::vector<RateSample> samples;
};

struct Ack {
  std::uint32_t agent = 0;
  std::uint32_t generation = 0;
  std::uint32_t seq = 0;
};

struct Hello {
  std::uint32_t agent = 0;
  std::uint32_t generation = 0;
};

struct HelloAck {
  std::uint32_t agent = 0;
  std::uint32_t generation = 0;
};

/// A decoded message: `type` selects which member is meaningful.
struct Message {
  MsgType type = MsgType::kProbeRequest;
  ProbeRequest probe_request;
  StatsReport stats_report;
  Ack ack;
  Hello hello;
  HelloAck hello_ack;
};

Bytes encode(const ProbeRequest& msg);
Bytes encode(const StatsReport& msg);
Bytes encode(const Ack& msg);
Bytes encode(const Hello& msg);
Bytes encode(const HelloAck& msg);

std::optional<Message> decode(const Bytes& bytes);

}  // namespace choreo::agent::proto

#include "agent/host_agent.h"

#include <algorithm>
#include <utility>

#include "util/require.h"

namespace choreo::agent {

HostAgent::HostAgent(std::uint32_t id, AgentOptions options, ProbeExecutor executor)
    : id_(id), opts_(std::move(options)), executor_(std::move(executor)) {
  CHOREO_REQUIRE_MSG(executor_ != nullptr, "HostAgent needs a probe executor");
  CHOREO_REQUIRE_MSG(opts_.retry_timeout_cycles >= 1, "retry timeout must be >= 1 cycle");
}

void HostAgent::crash(std::uint64_t cycle) {
  if (down_) return;
  down_ = true;
  restart_cycle_ = cycle + opts_.down_cycles;
  // Volatile state dies with the process: queued samples, unacked in-flight
  // reports, any pending Hello — and the in-memory counters. The crash sink
  // sees the dying incarnation's stats first so a supervisor can conserve
  // them; the crash event itself is charged to the fresh incarnation.
  // Nothing from this generation may ever be retransmitted — the
  // controller's stale-generation guard relies on it.
  queue_.clear();
  pending_.clear();
  hello_pending_ = false;
  if (crash_sink_) crash_sink_(stats_);
  stats_ = Stats{};
  ++stats_.crashes;
}

void HostAgent::deliver(const proto::Message& msg, std::uint64_t cycle) {
  (void)cycle;
  if (down_) return;  // a crashed host drops everything on the floor
  switch (msg.type) {
    case proto::MsgType::kProbeRequest: {
      const auto& req = msg.probe_request;
      for (const auto& p : req.probes) {
        const double rate = executor_(p.src, p.dst, p.round, req.epoch);
        ++stats_.probes_run;
        queue_.push_back(proto::RateSample{p.src, p.dst, req.epoch, rate});
      }
      break;
    }
    case proto::MsgType::kAck: {
      const auto& ack = msg.ack;
      if (ack.generation != generation_) break;  // ack for a dead incarnation
      pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                    [&](const PendingReport& p) {
                                      return p.report.seq == ack.seq;
                                    }),
                     pending_.end());
      break;
    }
    case proto::MsgType::kHelloAck:
      if (msg.hello_ack.generation == generation_) hello_pending_ = false;
      break;
    default:
      break;  // hosts ignore message types not addressed to them
  }
}

void HostAgent::send_report(const proto::StatsReport& report, std::uint64_t cycle,
                            net::SimTransport& transport) {
  transport.send(endpoint_of(id_), kClusterEndpoint, proto::encode(report), cycle);
}

void HostAgent::tick(std::uint64_t cycle, net::SimTransport& transport) {
  if (down_) {
    if (cycle < restart_cycle_) return;
    down_ = false;
    ++generation_;
    next_seq_ = 0;
    hello_pending_ = true;
    ++stats_.restarts;
  }

  if (hello_pending_) {
    // Re-announce every cycle until the controller acks the new generation;
    // Hello is tiny and idempotent, so no backoff bookkeeping is needed.
    transport.send(endpoint_of(id_), kClusterEndpoint,
                   proto::encode(proto::Hello{id_, generation_}), cycle);
  }

  // Retransmit due unacked reports first — oldest data has priority on the
  // wire — with exponential backoff capped at max_backoff_exponent doublings.
  for (auto& p : pending_) {
    if (p.next_retry > cycle) continue;
    send_report(p.report, cycle, transport);
    ++stats_.retransmits;
    const std::uint32_t exponent = std::min(p.attempts, opts_.max_backoff_exponent);
    p.next_retry = cycle + (opts_.retry_timeout_cycles << exponent);
    ++p.attempts;
  }

  // Pack queued samples into fresh reports under the per-cycle budget.
  std::size_t reports_this_cycle = 0;
  while (!queue_.empty()) {
    if (opts_.max_reports_per_cycle > 0 &&
        reports_this_cycle >= opts_.max_reports_per_cycle) {
      break;
    }
    proto::StatsReport report;
    report.agent = id_;
    report.generation = generation_;
    report.seq = next_seq_++;
    const std::size_t take = opts_.max_samples_per_report == 0
                                 ? queue_.size()
                                 : std::min(queue_.size(), opts_.max_samples_per_report);
    report.samples.assign(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(take));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(take));
    send_report(report, cycle, transport);
    ++stats_.reports_sent;
    ++reports_this_cycle;
    PendingReport pending;
    pending.report = std::move(report);
    pending.next_retry = cycle + opts_.retry_timeout_cycles;
    pending.attempts = 1;
    pending_.push_back(std::move(pending));
  }
  stats_.samples_deferred += queue_.size();
}

}  // namespace choreo::agent

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>

#include "util/json.h"
#include "util/require.h"

namespace choreo::obs {

// --- Gauge packing ---------------------------------------------------------

namespace detail {

std::uint64_t pack_double(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double unpack_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace detail

// --- Histogram bucket math -------------------------------------------------

std::size_t Hist::bucket_of(double value) {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN land in the underflow bucket
  int exp = 0;
  const double m = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  exp -= 1;                                  // express as m' * 2^exp, m' in [1, 2)
  if (exp < kMinExp) return 1;               // clamp into the edge octaves
  if (exp > kMaxExp) return kBuckets - 1;
  // m in [0.5, 1) -> sub-bucket floor((m - 0.5) * 2 * kSubBuckets)
  int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
  sub = std::min(std::max(sub, 0), kSubBuckets - 1);
  return 1 + static_cast<std::size_t>(exp - kMinExp) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double Hist::bucket_width(std::size_t bucket) {
  if (bucket == 0 || bucket >= kBuckets) return 0.0;
  const std::size_t octave = (bucket - 1) / kSubBuckets;
  // Each octave [2^e, 2^(e+1)) splits into kSubBuckets equal slices.
  return std::ldexp(1.0, static_cast<int>(octave) + kMinExp) / kSubBuckets;
}

double Hist::bucket_mid(std::size_t bucket) {
  if (bucket == 0 || bucket >= kBuckets) return 0.0;
  const std::size_t octave = (bucket - 1) / kSubBuckets;
  const std::size_t sub = (bucket - 1) % kSubBuckets;
  const double lo = std::ldexp(1.0, static_cast<int>(octave) + kMinExp) *
                    (1.0 + static_cast<double>(sub) / kSubBuckets);
  return lo + 0.5 * bucket_width(bucket);
}

void Hist::observe(double value, std::uint32_t shard) const {
  if (!base_) return;
  base_[static_cast<std::size_t>(shard) * kBuckets + bucket_of(value)].fetch_add(
      1, std::memory_order_relaxed);
  // Exact extremes via CAS. min/max are commutative and associative, so the
  // converged values are interleaving-independent (deterministic).
  std::uint64_t cur = minmax_[0].load(std::memory_order_relaxed);
  while (value < detail::unpack_double(cur) &&
         !minmax_[0].compare_exchange_weak(cur, detail::pack_double(value),
                                           std::memory_order_relaxed)) {
  }
  cur = minmax_[1].load(std::memory_order_relaxed);
  while (value > detail::unpack_double(cur) &&
         !minmax_[1].compare_exchange_weak(cur, detail::pack_double(value),
                                           std::memory_order_relaxed)) {
  }
}

double hist_quantile(const std::uint64_t* buckets, std::size_t n_buckets,
                     std::uint64_t count, double q) {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < n_buckets; ++b) {
    cum += buckets[b];
    if (cum >= rank) return Hist::bucket_mid(b);
  }
  return Hist::bucket_mid(n_buckets - 1);
}

// --- Registry --------------------------------------------------------------

namespace {

enum class Kind { Counter, Gauge, Hist };

struct Entry {
  Kind kind;
  // Counter: shards slots. Gauge: one slot. Hist: shards * kBuckets counts.
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  // Hist only: packed min at [0], packed max at [1].
  std::unique_ptr<std::atomic<std::uint64_t>[]> minmax;
};

}  // namespace

struct Registry::Impl {
  std::mutex mu;
  std::map<std::string, Entry> entries;  // ordered: snapshots sort by name
};

Registry::Registry(std::uint32_t shards)
    : impl_(std::make_unique<Impl>()), shards_(shards) {
  CHOREO_REQUIRE_MSG(shards >= 1, "a registry needs at least one shard");
}

Registry::~Registry() = default;

Counter Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Entry e;
    e.kind = Kind::Counter;
    e.slots = std::make_unique<std::atomic<std::uint64_t>[]>(shards_);
    for (std::uint32_t s = 0; s < shards_; ++s) e.slots[s].store(0);
    it = impl_->entries.emplace(name, std::move(e)).first;
  }
  CHOREO_REQUIRE_MSG(it->second.kind == Kind::Counter,
                     "metric registered twice with different kinds: " + name);
  return Counter(it->second.slots.get());
}

Gauge Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Entry e;
    e.kind = Kind::Gauge;
    e.slots = std::make_unique<std::atomic<std::uint64_t>[]>(1);
    e.slots[0].store(detail::pack_double(0.0));
    it = impl_->entries.emplace(name, std::move(e)).first;
  }
  CHOREO_REQUIRE_MSG(it->second.kind == Kind::Gauge,
                     "metric registered twice with different kinds: " + name);
  return Gauge(it->second.slots.get());
}

Hist Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Entry e;
    e.kind = Kind::Hist;
    const std::size_t n = static_cast<std::size_t>(shards_) * Hist::kBuckets;
    e.slots = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) e.slots[i].store(0);
    e.minmax = std::make_unique<std::atomic<std::uint64_t>[]>(2);
    e.minmax[0].store(detail::pack_double(std::numeric_limits<double>::infinity()));
    e.minmax[1].store(detail::pack_double(-std::numeric_limits<double>::infinity()));
    it = impl_->entries.emplace(name, std::move(e)).first;
  }
  CHOREO_REQUIRE_MSG(it->second.kind == Kind::Hist,
                     "metric registered twice with different kinds: " + name);
  return Hist(it->second.slots.get(), it->second.minmax.get());
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::uint64_t> merged(Hist::kBuckets);
  for (const auto& [name, e] : impl_->entries) {  // map order == name order
    switch (e.kind) {
      case Kind::Counter: {
        std::uint64_t total = 0;  // integer adds: shard order is immaterial
        for (std::uint32_t s = 0; s < shards_; ++s) {
          total += e.slots[s].load(std::memory_order_relaxed);
        }
        out.counters.push_back({name, total});
        break;
      }
      case Kind::Gauge:
        out.gauges.push_back(
            {name, detail::unpack_double(e.slots[0].load(std::memory_order_relaxed))});
        break;
      case Kind::Hist: {
        std::fill(merged.begin(), merged.end(), 0);
        std::uint64_t count = 0;
        for (std::uint32_t s = 0; s < shards_; ++s) {
          const auto* base =
              e.slots.get() + static_cast<std::size_t>(s) * Hist::kBuckets;
          for (std::size_t b = 0; b < Hist::kBuckets; ++b) {
            const std::uint64_t v = base[b].load(std::memory_order_relaxed);
            merged[b] += v;
            count += v;
          }
        }
        MetricsSnapshot::HistValue h;
        h.name = name;
        h.count = count;
        if (count > 0) {
          h.min = detail::unpack_double(e.minmax[0].load(std::memory_order_relaxed));
          h.max = detail::unpack_double(e.minmax[1].load(std::memory_order_relaxed));
          h.p50 = hist_quantile(merged.data(), merged.size(), count, 0.50);
          h.p90 = hist_quantile(merged.data(), merged.size(), count, 0.90);
          h.p99 = hist_quantile(merged.data(), merged.size(), count, 0.99);
        }
        out.hists.push_back(std::move(h));
        break;
      }
    }
  }
  return out;
}

// --- Snapshot export -------------------------------------------------------

const MetricsSnapshot::CounterValue* MetricsSnapshot::find_counter(
    const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::HistValue* MetricsSnapshot::find_hist(
    const std::string& name) const {
  for (const auto& h : hists) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\n  \"kind\": \"choreo_metrics\",\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i ? ", " : "") << util::json_quote(counters[i].name) << ": "
        << counters[i].value;
  }
  out << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i ? ", " : "") << util::json_quote(gauges[i].name) << ": "
        << util::json_number(gauges[i].value);
  }
  out << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < hists.size(); ++i) {
    const HistValue& h = hists[i];
    out << (i ? ",\n    " : "\n    ") << util::json_quote(h.name) << ": {\"count\": "
        << h.count << ", \"min\": " << util::json_number(h.min)
        << ", \"max\": " << util::json_number(h.max)
        << ", \"p50\": " << util::json_number(h.p50)
        << ", \"p90\": " << util::json_number(h.p90)
        << ", \"p99\": " << util::json_number(h.p99) << "}";
  }
  out << (hists.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

void MetricsSnapshot::write_json(const std::string& path) const {
  std::ofstream out(path);
  out << to_json();
  std::cout << "wrote " << path << "\n";
}

}  // namespace choreo::obs

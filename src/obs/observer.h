#pragma once

// The plumbing half of the observability plane: a POD `Observer` handle
// that configuration structs carry into every plane, plus the macro layer
// instrumentation sites go through.
//
// Two off switches, by design:
//   * runtime-off: a default Observer has null registry/tracer pointers —
//     handles resolved from it are inert and every macro is a branch on a
//     null pointer (bench/tbl_obs_overhead pins this path allocation-free
//     and indistinguishable from baseline);
//   * compile-time off: building with -DCHOREO_OBS_DISABLED (CMake option
//     CHOREO_OBS_DISABLED) expands every macro to nothing, so the
//     instrumented planes carry zero observability code at all.

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace choreo::obs {

/// Passed by value through configuration structs. `shard` selects the
/// registry shard counters accumulate into; `lane` is the tracer lane
/// (rendered as the Chrome `tid`). Multi-tenant drivers hand each tenant
/// `with_lane(tenant, tenant % registry->shards())` so per-tenant activity
/// separates in the trace while counter totals stay mergeable.
struct Observer {
  Registry* metrics = nullptr;
  Tracer* tracer = nullptr;
  std::uint32_t shard = 0;
  std::uint32_t lane = 0;

  bool enabled() const { return metrics != nullptr || tracer != nullptr; }

  Observer with_lane(std::uint32_t lane_, std::uint32_t shard_) const {
    Observer o = *this;
    o.lane = lane_;
    o.shard = shard_;
    return o;
  }

  /// Handle resolution, null-safe: with no registry attached the returned
  /// handles are inert no-ops.
  Counter counter(const char* name) const {
    return metrics ? metrics->counter(name) : Counter{};
  }
  Gauge gauge(const char* name) const {
    return metrics ? metrics->gauge(name) : Gauge{};
  }
  Hist histogram(const char* name) const {
    return metrics ? metrics->histogram(name) : Hist{};
  }
};

}  // namespace choreo::obs

// --- Instrumentation macros ------------------------------------------------
//
// CHOREO_OBS_SPAN(var, obs, "plane.op", "plane")  — RAII span `var`
// CHOREO_OBS_ADD(counter, obs, delta)             — sharded counter add
// CHOREO_OBS_INC(counter, obs)                    — add 1
// CHOREO_OBS_SET(gauge, value)                    — gauge store
// CHOREO_OBS_OBSERVE(hist, obs, value)            — histogram sample
//
// `var.arg(...)`/`var.sim(...)` compile against both SpanGuard and the
// disabled path's NullSpan.

// Macro parameters deliberately avoid the token `obs` — it would be
// substituted into the `::choreo::obs::` qualification.
#if defined(CHOREO_OBS_DISABLED)

#define CHOREO_OBS_SPAN(var, obsv, name, cat) \
  ::choreo::obs::NullSpan var {}
#define CHOREO_OBS_ADD(counter, obsv, delta) ((void)0)
#define CHOREO_OBS_INC(counter, obsv) ((void)0)
#define CHOREO_OBS_SET(gauge, value) ((void)0)
#define CHOREO_OBS_OBSERVE(hist, obsv, value) ((void)0)

#else

#define CHOREO_OBS_SPAN(var, obsv, name, cat) \
  ::choreo::obs::SpanGuard var((obsv).tracer, (obsv).lane, (name), (cat))
#define CHOREO_OBS_ADD(counter, obsv, delta) (counter).add((delta), (obsv).shard)
#define CHOREO_OBS_INC(counter, obsv) (counter).inc((obsv).shard)
#define CHOREO_OBS_SET(gauge, value) (gauge).set(value)
#define CHOREO_OBS_OBSERVE(hist, obsv, value) (hist).observe((value), (obsv).shard)

#endif

#pragma once

// Tracing half of the observability plane: a Tracer collecting complete
// ("ph":"X") spans into a preallocated ring and emitting Chrome trace-event
// JSON — loadable in chrome://tracing or https://ui.perfetto.dev (open the
// file directly; docs/ARCHITECTURE.md has the span-naming conventions).
//
// Spans are stamped in both wall-time (microseconds since the Tracer was
// constructed — the Chrome `ts`/`dur` fields) and, where the caller runs
// under a simulation clock, sim-time (seconds, attached as `sim_ts_s` /
// `sim_dur_s` args). The sink is lossless until capacity: the first
// `capacity` spans are all kept, later ones are dropped and counted —
// never silently.
//
// Hot-path cost: one relaxed fetch_add to claim a slot plus a POD store.
// Recording never allocates (names/categories must be string literals or
// otherwise outlive the tracer).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace choreo::obs {

/// One complete span. POD so ring slots are assignable without allocation;
/// name/cat/arg keys must point at storage outliving the tracer (string
/// literals at every call site in this repo).
struct TraceEvent {
  static constexpr int kMaxArgs = 4;
  const char* name = nullptr;
  const char* cat = nullptr;
  double ts_us = 0.0;   ///< wall-clock start, us since tracer construction
  double dur_us = 0.0;  ///< wall-clock duration
  double sim_ts_s = -1.0;  ///< sim-time start; < 0 means "no sim clock here"
  double sim_dur_s = 0.0;
  std::uint32_t lane = 0;  ///< rendered as the Chrome `tid`
  std::uint32_t n_args = 0;
  const char* arg_keys[kMaxArgs] = {};
  double arg_vals[kMaxArgs] = {};
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 16);

  /// Wall-clock microseconds since construction (the span timebase).
  double now_us() const;

  /// Stores one finished span; thread-safe, allocation-free. Spans beyond
  /// capacity are dropped and counted.
  void commit(const TraceEvent& ev);

  /// Names a lane for the trace viewer (emitted as a thread_name metadata
  /// event). Cold path; takes a lock.
  void set_lane_name(std::uint32_t lane, const std::string& name);

  std::size_t size() const;
  std::size_t capacity() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Chrome trace-event JSON. Spans are sorted by wall ts, which makes `ts`
  /// monotone within every lane — the property check_bench_json.py gates.
  /// Call after recording threads have quiesced.
  std::string to_json() const;
  void write_json(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::pair<std::uint32_t, std::string>> lane_names_;
};

/// RAII span: construction stamps the wall start, destruction stamps the
/// duration and commits. A null tracer makes every method a no-op — that is
/// the runtime-off branch, and it performs no clock reads either.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, std::uint32_t lane, const char* name, const char* cat)
      : tracer_(tracer) {
    if (!tracer_) return;
    ev_.name = name;
    ev_.cat = cat;
    ev_.lane = lane;
    ev_.ts_us = tracer_->now_us();
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() {
    if (!tracer_) return;
    ev_.dur_us = tracer_->now_us() - ev_.ts_us;
    tracer_->commit(ev_);
  }

  /// Attaches a numeric argument (first kMaxArgs stick; extras are dropped).
  void arg(const char* key, double value) {
    if (!tracer_ || ev_.n_args >= TraceEvent::kMaxArgs) return;
    ev_.arg_keys[ev_.n_args] = key;
    ev_.arg_vals[ev_.n_args] = value;
    ++ev_.n_args;
  }

  /// Stamps the span in sim-time as well (start + duration, seconds).
  void sim(double start_s, double dur_s) {
    if (!tracer_) return;
    ev_.sim_ts_s = start_s;
    ev_.sim_dur_s = dur_s;
  }

 private:
  Tracer* tracer_;
  TraceEvent ev_;
};

/// The compile-time no-op stand-in for SpanGuard when the obs plane is
/// compiled out (CHOREO_OBS_DISABLED); same surface, zero code.
struct NullSpan {
  void arg(const char*, double) const {}
  void sim(double, double) const {}
};

}  // namespace choreo::obs

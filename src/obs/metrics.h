#pragma once

// Metrics half of the observability plane: a Registry of named counters,
// gauges, and log-bucketed histograms with shard-local accumulation.
//
// Determinism contract: counter adds and histogram bucket increments are
// unsigned-integer additions — commutative and associative — so the merged
// totals in a snapshot are bit-identical for every thread count and every
// interleaving, as long as the *set* of recorded events is deterministic
// (which the deterministic planes pin separately). Gauges are last-write
// and wall-clock-derived metrics are inherently nondeterministic; by
// convention their names carry "wall", and determinism comparisons skip
// them (see docs/ARCHITECTURE.md).
//
// Hot-path cost: one relaxed fetch_add on a pre-resolved slot pointer.
// Components resolve handles (Counter/Gauge/Hist) once at set_observer
// time; a default-constructed handle is a no-op, which is the runtime-off
// branch. Registration is the cold path (mutex + allocation); recording
// never allocates.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace choreo::obs {

class Registry;

namespace detail {
/// Bit-casts between double and the uint64 atomics store (gauges, and the
/// histogram min/max CAS slots).
std::uint64_t pack_double(double v);
double unpack_double(std::uint64_t bits);
}  // namespace detail

/// Handle to a sharded counter. Default-constructed handles drop adds on
/// the floor — instrument unconditionally, attach a registry optionally.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta, std::uint32_t shard = 0) const {
    if (slots_) slots_[shard].fetch_add(delta, std::memory_order_relaxed);
  }
  void inc(std::uint32_t shard = 0) const { add(1, shard); }
  explicit operator bool() const { return slots_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(std::atomic<std::uint64_t>* slots) : slots_(slots) {}
  std::atomic<std::uint64_t>* slots_ = nullptr;  // one slot per shard
};

/// Handle to a gauge (last write wins; one global slot, not sharded —
/// gauges are excluded from the cross-thread determinism contract).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const {
    if (slot_) slot_->store(detail::pack_double(value), std::memory_order_relaxed);
  }
  explicit operator bool() const { return slot_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<std::uint64_t>* slot) : slot_(slot) {}
  std::atomic<std::uint64_t>* slot_ = nullptr;
};

/// Log-bucketed histogram handle. Buckets are power-of-two octaves split
/// into kSubBuckets linear sub-buckets (worst-case relative bucket width
/// 1/kSubBuckets), so p50/p90/p99 extraction lands within one bucket of the
/// exact sorted-sample quantile. Bucket counts are integer adds (merge is
/// deterministic); min/max are maintained by CAS on the packed double
/// (max/min are commutative, so they are deterministic too). There is no
/// floating-point sum — FP addition does not commute bit-for-bit.
class Hist {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExp = -64;  // frexp exponent clamp (~5e-20)
  static constexpr int kMaxExp = 63;   //                      (~9e18)
  static constexpr std::size_t kBuckets =
      1 + static_cast<std::size_t>(kMaxExp - kMinExp + 1) * kSubBuckets;

  Hist() = default;
  void observe(double value, std::uint32_t shard = 0) const;
  explicit operator bool() const { return base_ != nullptr; }

  /// Bucket index for a value: 0 is the v <= 0 underflow bucket.
  static std::size_t bucket_of(double value);
  /// Representative value (bucket midpoint) and width of a bucket.
  static double bucket_mid(std::size_t bucket);
  static double bucket_width(std::size_t bucket);

 private:
  friend class Registry;
  Hist(std::atomic<std::uint64_t>* base, std::atomic<std::uint64_t>* minmax)
      : base_(base), minmax_(minmax) {}
  // Per shard: kBuckets counts at base_[shard * kBuckets + b].
  std::atomic<std::uint64_t>* base_ = nullptr;
  // Two global slots: packed min at [0], packed max at [1].
  std::atomic<std::uint64_t>* minmax_ = nullptr;
};

/// One merged, immutable view of a Registry, suitable for comparison across
/// runs and for JSON export. Metrics are sorted by name, so the document is
/// independent of registration order.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistValue {
    std::string name;
    std::uint64_t count = 0;
    double min = 0.0;  ///< exact extremes (CAS-maintained, deterministic)
    double max = 0.0;
    double p50 = 0.0;  ///< bucket midpoints — within one bucket of exact
    double p90 = 0.0;
    double p99 = 0.0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistValue> hists;

  /// Serializes via util/json.h — the same escaping rules as BenchJson, so
  /// the strict parser in the test suite and check_bench_json.py both read
  /// it. Shape: {"kind":"choreo_metrics","counters":{...},"gauges":{...},
  /// "histograms":{name:{count,min,max,p50,p90,p99},...}}.
  std::string to_json() const;
  void write_json(const std::string& path) const;

  const CounterValue* find_counter(const std::string& name) const;
  const HistValue* find_hist(const std::string& name) const;
};

/// Quantile extraction from raw bucket counts (exposed for the serve-QPS
/// bench, which wants p50/p99 from one merged histogram). Returns the
/// midpoint of the bucket containing the ceil(q * count)-th sample.
double hist_quantile(const std::uint64_t* buckets, std::size_t n_buckets,
                     std::uint64_t count, double q);

/// The metric store. Thread-safety: registration takes a mutex and may
/// allocate; recording through handles is lock-free, allocation-free, and
/// safe from any thread. Registering the same name twice returns the same
/// storage (and requires the same kind). `shards` is fixed at construction;
/// handle methods take the shard index so one handle serves every shard.
class Registry {
 public:
  explicit Registry(std::uint32_t shards = 1);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Hist histogram(const std::string& name);

  std::uint32_t shards() const { return shards_; }

  /// Merges every shard (in index order) into one snapshot. Do not call
  /// concurrently with recording if bit-stable output matters — totals read
  /// mid-update are merely torn in time, never corrupted.
  MetricsSnapshot snapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint32_t shards_;
};

}  // namespace choreo::obs

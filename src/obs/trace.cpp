#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/json.h"

namespace choreo::obs {

Tracer::Tracer(std::size_t capacity)
    : events_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::commit(const TraceEvent& ev) {
  const std::size_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= events_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_[idx] = ev;
}

void Tracer::set_lane_name(std::uint32_t lane, const std::string& name) {
  lane_names_.emplace_back(lane, name);
}

std::size_t Tracer::size() const {
  return std::min(cursor_.load(std::memory_order_relaxed), events_.size());
}

std::string Tracer::to_json() const {
  // Snapshot and order by wall start time. A stable sort keeps the claim
  // order for identical stamps, so the document is reproducible for a given
  // recording; sorting globally by ts makes ts monotone within every lane.
  std::vector<TraceEvent> sorted(events_.begin(),
                                 events_.begin() + static_cast<std::ptrdiff_t>(size()));
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  std::ostringstream out;
  out << "{\n\"displayTimeUnit\": \"ms\",\n\"droppedEvents\": " << dropped()
      << ",\n\"traceEvents\": [\n";
  bool first = true;
  out << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
         "\"args\": {\"name\": \"choreo\"}}";
  first = false;
  for (const auto& [lane, name] : lane_names_) {
    out << ",\n {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
        << lane << ", \"args\": {\"name\": " << util::json_quote(name) << "}}";
  }
  for (const TraceEvent& ev : sorted) {
    out << (first ? "" : ",\n") << " {\"name\": " << util::json_quote(ev.name)
        << ", \"cat\": " << util::json_quote(ev.cat)
        << ", \"ph\": \"X\", \"pid\": 1, \"tid\": " << ev.lane
        << ", \"ts\": " << util::json_number(ev.ts_us)
        << ", \"dur\": " << util::json_number(ev.dur_us) << ", \"args\": {";
    bool first_arg = true;
    if (ev.sim_ts_s >= 0.0) {
      out << "\"sim_ts_s\": " << util::json_number(ev.sim_ts_s)
          << ", \"sim_dur_s\": " << util::json_number(ev.sim_dur_s);
      first_arg = false;
    }
    for (std::uint32_t i = 0; i < ev.n_args; ++i) {
      out << (first_arg ? "" : ", ") << util::json_quote(ev.arg_keys[i]) << ": "
          << util::json_number(ev.arg_vals[i]);
      first_arg = false;
    }
    out << "}}";
    first = false;
  }
  out << "\n]\n}\n";
  return out.str();
}

void Tracer::write_json(const std::string& path) const {
  std::ofstream out(path);
  out << to_json();
  std::cout << "wrote " << path << " (" << size() << " spans, " << dropped()
            << " dropped)\n";
}

}  // namespace choreo::obs

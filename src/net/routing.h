#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/topology.h"

namespace choreo::net {

/// A concrete path through the network: the node sequence and the directed
/// links traversed, in order.
struct Route {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  /// Number of links traversed; what traceroute's hop count reports for
  /// host-to-host paths between distinct machines.
  std::size_t hop_count() const { return links.size(); }
  bool empty() const { return links.empty(); }
};

/// Shortest-path router with deterministic ECMP.
///
/// Among equal-cost shortest paths, the next hop is chosen by a hash of
/// (src, dst, flow_key, link), mirroring flow-hash ECMP (§8.1 "a flow's path
/// is selected based on a hash of various header fields"). A given flow key
/// therefore always takes the same path, but two different flows between the
/// same subtrees may traverse different aggregate/core switches — the effect
/// §3.3.2 rule 2 warns about.
///
/// Thread safety: `route` and `hop_count` may be called concurrently from
/// multiple threads (the measurement plane runs one round's packet trains on
/// a worker pool); the BFS distance cache is guarded by a mutex and entries
/// are reference-stable once inserted.
class Router {
 public:
  explicit Router(const Topology& topo);

  /// Shortest route from src to dst; `flow_key` selects among ECMP paths.
  /// Throws PreconditionError if dst is unreachable from src.
  Route route(NodeId src, NodeId dst, std::uint64_t flow_key = 0) const;

  /// Link count of the shortest path (independent of ECMP choice).
  std::size_t hop_count(NodeId src, NodeId dst) const;

 private:
  /// BFS distances from every node to `dst` (computed on demand, cached).
  const std::vector<std::uint32_t>& distances_to(NodeId dst) const;

  const Topology& topo_;
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<NodeId, std::vector<std::uint32_t>> dist_cache_;
};

}  // namespace choreo::net

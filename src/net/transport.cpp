#include "net/transport.h"

#include <algorithm>

#include "util/require.h"
#include "util/rng.h"

namespace choreo::net {

namespace {

// splitmix64-style finalizer: decorrelates (seed, msg id) into an Rng seed so
// consecutive message ids do not produce correlated fault draws.
std::uint64_t mix(std::uint64_t seed, std::uint64_t msg) {
  std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (msg + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

SimTransport::SimTransport(std::size_t endpoints, TransportOptions options)
    : opts_(options), queues_(endpoints) {
  CHOREO_REQUIRE_MSG(endpoints >= 2, "SimTransport needs at least two endpoints");
  CHOREO_REQUIRE_MSG(opts_.fault.loss >= 0.0 && opts_.fault.loss <= 1.0, "loss probability out of [0, 1]");
  CHOREO_REQUIRE_MSG(opts_.fault.duplicate >= 0.0 && opts_.fault.duplicate <= 1.0, "duplicate probability out of [0, 1]");
  CHOREO_REQUIRE_MSG(opts_.fault.delay_min_cycles <= opts_.fault.delay_max_cycles, "delay_min_cycles > delay_max_cycles");
}

void SimTransport::enqueue(Endpoint from, Endpoint to, const Bytes& bytes,
                           std::uint64_t cycle, std::uint64_t delay) {
  if (delay > 0) ++stats_.delayed;
  queues_[to].push_back(InFlight{cycle + delay, next_msg_++, from, bytes});
}

void SimTransport::send(Endpoint from, Endpoint to, Bytes bytes, std::uint64_t cycle) {
  CHOREO_REQUIRE_MSG(from < queues_.size() && to < queues_.size(), "SimTransport endpoint out of range");
  ++stats_.sent;
  stats_.bytes_sent += bytes.size();

  const FaultProfile& f = opts_.fault;
  if (f.lossless_zero_delay()) {
    // Fast path doubles as the oracle guarantee: no RNG is consulted at all,
    // so the lossless configuration cannot perturb anything downstream.
    enqueue(from, to, bytes, cycle, 0);
    return;
  }

  // One Rng per message, keyed by (seed, global send index): the draw
  // sequence for message k is fixed no matter what happened to messages
  // 0..k-1, which keeps fault schedules stable under replay.
  Rng rng(mix(opts_.seed, next_msg_));
  if (f.loss > 0.0 && rng.chance(f.loss)) {
    ++stats_.dropped;
    ++next_msg_;  // keep the id sequence aligned with send order
    return;
  }
  const auto draw_delay = [&]() -> std::uint64_t {
    if (f.delay_max_cycles == 0) return 0;
    return static_cast<std::uint64_t>(rng.uniform_int(f.delay_min_cycles, f.delay_max_cycles));
  };
  enqueue(from, to, bytes, cycle, draw_delay());
  if (f.duplicate > 0.0 && rng.chance(f.duplicate)) {
    ++stats_.duplicated;
    enqueue(from, to, bytes, cycle, draw_delay());
  }
}

std::vector<SimTransport::Delivery> SimTransport::receive(Endpoint at, std::uint64_t cycle) {
  CHOREO_REQUIRE_MSG(at < queues_.size(), "SimTransport endpoint out of range");
  auto& queue = queues_[at];
  // Move the due messages to the front, keep the rest queued.
  auto split = std::stable_partition(
      queue.begin(), queue.end(),
      [cycle](const InFlight& m) { return m.deliver_cycle <= cycle; });
  std::vector<InFlight> ready(std::make_move_iterator(queue.begin()),
                              std::make_move_iterator(split));
  queue.erase(queue.begin(), split);
  std::sort(ready.begin(), ready.end(), [](const InFlight& a, const InFlight& b) {
    if (a.deliver_cycle != b.deliver_cycle) return a.deliver_cycle < b.deliver_cycle;
    return a.order < b.order;
  });
  std::vector<Delivery> out;
  out.reserve(ready.size());
  for (auto& m : ready) {
    ++stats_.delivered;
    stats_.bytes_delivered += m.bytes.size();
    out.push_back(Delivery{m.from, std::move(m.bytes)});
  }
  return out;
}

}  // namespace choreo::net

#include "net/topology.h"

#include <sstream>

namespace choreo::net {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::Host: return "host";
    case NodeKind::Tor: return "tor";
    case NodeKind::Agg: return "agg";
    case NodeKind::Core: return "core";
  }
  return "?";
}

NodeId Topology::add_node(NodeKind kind, std::string name, int rack, int pod) {
  const NodeId id = nodes_.size();
  nodes_.push_back(Node{id, kind, std::move(name), rack, pod, -1});
  out_.emplace_back();
  return id;
}

LinkId Topology::add_duplex_link(NodeId a, NodeId b, double capacity_bps, double delay_s) {
  CHOREO_REQUIRE(a < nodes_.size() && b < nodes_.size());
  CHOREO_REQUIRE(a != b);
  CHOREO_REQUIRE(capacity_bps > 0.0);
  CHOREO_REQUIRE(delay_s >= 0.0);
  const LinkId fwd = links_.size();
  const LinkId rev = fwd + 1;
  links_.push_back(Link{fwd, a, b, capacity_bps, delay_s, rev});
  links_.push_back(Link{rev, b, a, capacity_bps, delay_s, fwd});
  out_[a].push_back(fwd);
  out_[b].push_back(rev);
  return fwd;
}

std::vector<NodeId> Topology::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.kind == kind) out.push_back(n.id);
  }
  return out;
}

Topology make_multi_rooted_tree(const TreeParams& p) {
  CHOREO_REQUIRE(p.pods >= 1 && p.racks_per_pod >= 1 && p.hosts_per_rack >= 1);
  CHOREO_REQUIRE(p.aggs_per_pod >= 1 && p.cores >= 1);
  Topology t;

  std::vector<NodeId> cores;
  for (std::size_t c = 0; c < p.cores; ++c) {
    std::ostringstream name;
    name << "core" << c;
    cores.push_back(t.add_node(NodeKind::Core, name.str()));
  }

  int rack_index = 0;
  for (std::size_t pod = 0; pod < p.pods; ++pod) {
    std::vector<NodeId> aggs;
    for (std::size_t a = 0; a < p.aggs_per_pod; ++a) {
      std::ostringstream name;
      name << "agg" << pod << "." << a;
      const NodeId agg = t.add_node(NodeKind::Agg, name.str(), -1, static_cast<int>(pod));
      aggs.push_back(agg);
      for (NodeId core : cores) {
        t.add_duplex_link(agg, core, p.core_link_bps, p.link_delay_s);
      }
    }
    for (std::size_t r = 0; r < p.racks_per_pod; ++r, ++rack_index) {
      std::ostringstream name;
      name << "tor" << pod << "." << r;
      const NodeId tor = t.add_node(NodeKind::Tor, name.str(), rack_index, static_cast<int>(pod));
      for (NodeId agg : aggs) {
        t.add_duplex_link(tor, agg, p.agg_link_bps, p.link_delay_s);
      }
      for (std::size_t h = 0; h < p.hosts_per_rack; ++h) {
        std::ostringstream hname;
        hname << "host" << pod << "." << r << "." << h;
        const NodeId host =
            t.add_node(NodeKind::Host, hname.str(), rack_index, static_cast<int>(pod));
        t.add_duplex_link(host, tor, p.host_link_bps, p.link_delay_s);
      }
    }
  }
  return t;
}

Topology make_regional_tree(const RegionalTreeParams& p) {
  CHOREO_REQUIRE(p.regions >= 1 && p.super_cores >= 1);
  const TreeParams& rp = p.region;
  CHOREO_REQUIRE(rp.pods >= 1 && rp.racks_per_pod >= 1 && rp.hosts_per_rack >= 1);
  CHOREO_REQUIRE(rp.aggs_per_pod >= 1 && rp.cores >= 1);
  Topology t;

  std::vector<NodeId> super_cores;
  if (p.regions > 1) {
    for (std::size_t s = 0; s < p.super_cores; ++s) {
      std::ostringstream name;
      name << "super" << s;
      super_cores.push_back(t.add_node(NodeKind::Core, name.str()));
    }
  }

  int rack_index = 0;
  int pod_index = 0;
  for (std::size_t region = 0; region < p.regions; ++region) {
    std::vector<NodeId> cores;
    for (std::size_t c = 0; c < rp.cores; ++c) {
      std::ostringstream name;
      name << "core" << region << "." << c;
      const NodeId core = t.add_node(NodeKind::Core, name.str());
      cores.push_back(core);
      for (NodeId sc : super_cores) {
        t.add_duplex_link(core, sc, p.super_link_bps, rp.link_delay_s);
      }
    }
    for (std::size_t pod = 0; pod < rp.pods; ++pod, ++pod_index) {
      std::vector<NodeId> aggs;
      for (std::size_t a = 0; a < rp.aggs_per_pod; ++a) {
        std::ostringstream name;
        name << "agg" << region << "." << pod << "." << a;
        const NodeId agg = t.add_node(NodeKind::Agg, name.str(), -1, pod_index);
        aggs.push_back(agg);
        for (NodeId core : cores) {
          t.add_duplex_link(agg, core, rp.core_link_bps, rp.link_delay_s);
        }
      }
      for (std::size_t r = 0; r < rp.racks_per_pod; ++r, ++rack_index) {
        std::ostringstream name;
        name << "tor" << region << "." << pod << "." << r;
        const NodeId tor =
            t.add_node(NodeKind::Tor, name.str(), rack_index, pod_index);
        for (NodeId agg : aggs) {
          t.add_duplex_link(tor, agg, rp.agg_link_bps, rp.link_delay_s);
        }
        for (std::size_t h = 0; h < rp.hosts_per_rack; ++h) {
          std::ostringstream hname;
          hname << "host" << region << "." << pod << "." << r << "." << h;
          const NodeId host =
              t.add_node(NodeKind::Host, hname.str(), rack_index, pod_index);
          t.add_duplex_link(host, tor, rp.host_link_bps, rp.link_delay_s);
        }
      }
    }
  }
  // Stamp regions on pod-bearing nodes (hosts, ToRs, aggs).
  const int pods_per_region = static_cast<int>(rp.pods);
  for (const Node& n : t.nodes()) {
    if (n.pod >= 0) t.set_node_region(n.id, n.pod / pods_per_region);
  }
  return t;
}

SharedLinkTopology make_shared_link(std::size_t pairs, double link_bps, double delay_s) {
  CHOREO_REQUIRE(pairs >= 1);
  SharedLinkTopology out;
  Topology& t = out.topo;
  const NodeId left = t.add_node(NodeKind::Tor, "L", 0);
  const NodeId right = t.add_node(NodeKind::Tor, "R", 1);
  out.shared_link = t.add_duplex_link(left, right, link_bps, delay_s);
  for (std::size_t i = 0; i < pairs; ++i) {
    std::ostringstream sn, rn;
    sn << "S" << (i + 1);
    rn << "R" << (i + 1);
    const NodeId s = t.add_node(NodeKind::Host, sn.str(), 0);
    const NodeId r = t.add_node(NodeKind::Host, rn.str(), 1);
    t.add_duplex_link(s, left, link_bps, delay_s);
    t.add_duplex_link(r, right, link_bps, delay_s);
    out.senders.push_back(s);
    out.receivers.push_back(r);
  }
  return out;
}

TwoRackTopology make_two_rack_cloud(std::size_t pairs, double host_bps, double agg_bps,
                                    double delay_s) {
  CHOREO_REQUIRE(pairs >= 1);
  TwoRackTopology out;
  Topology& t = out.topo;
  const NodeId agg = t.add_node(NodeKind::Agg, "A");
  const NodeId tor_s = t.add_node(NodeKind::Tor, "torS", 0, 0);
  const NodeId tor_r = t.add_node(NodeKind::Tor, "torR", 1, 1);
  out.sender_uplink = t.add_duplex_link(tor_s, agg, agg_bps, delay_s);
  out.receiver_downlink = t.add_duplex_link(tor_r, agg, agg_bps, delay_s);
  for (std::size_t i = 0; i < pairs; ++i) {
    std::ostringstream sn, rn;
    sn << "S" << (i + 1);
    rn << "R" << (i + 1);
    const NodeId s = t.add_node(NodeKind::Host, sn.str(), 0, 0);
    const NodeId r = t.add_node(NodeKind::Host, rn.str(), 1, 1);
    t.add_duplex_link(s, tor_s, host_bps, delay_s);
    t.add_duplex_link(r, tor_r, host_bps, delay_s);
    out.senders.push_back(s);
    out.receivers.push_back(r);
  }
  return out;
}

}  // namespace choreo::net

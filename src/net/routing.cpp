#include "net/routing.h"

#include <deque>
#include <limits>

namespace choreo::net {
namespace {

constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// SplitMix64: cheap, well-mixed deterministic hash for ECMP choices.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Router::Router(const Topology& topo) : topo_(topo) {}

const std::vector<std::uint32_t>& Router::distances_to(NodeId dst) const {
  // unordered_map node storage keeps returned references stable across later
  // insertions, so callers may keep reading after the lock is released.
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = dist_cache_.find(dst);
  if (it != dist_cache_.end()) return it->second;

  std::vector<std::uint32_t> dist(topo_.node_count(), kUnreachable);
  dist[dst] = 0;
  std::deque<NodeId> queue{dst};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    // Walk incoming edges by scanning the reverse direction of out-links:
    // every duplex link has a twin, so out_links(u) covers all neighbours.
    for (LinkId lid : topo_.out_links(u)) {
      const Link& l = topo_.link(lid);
      const NodeId v = l.dst;
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist_cache_.emplace(dst, std::move(dist)).first->second;
}

Route Router::route(NodeId src, NodeId dst, std::uint64_t flow_key) const {
  CHOREO_REQUIRE(src < topo_.node_count() && dst < topo_.node_count());
  const auto& dist = distances_to(dst);
  CHOREO_REQUIRE_MSG(dist[src] != kUnreachable, "destination unreachable");

  Route r;
  r.nodes.push_back(src);
  NodeId cur = src;
  while (cur != dst) {
    // Candidate next hops: neighbours strictly closer to dst.
    LinkId best_link = 0;
    std::uint64_t best_hash = 0;
    bool found = false;
    for (LinkId lid : topo_.out_links(cur)) {
      const Link& l = topo_.link(lid);
      if (dist[l.dst] + 1 != dist[cur]) continue;
      const std::uint64_t h = mix(mix(flow_key ^ (static_cast<std::uint64_t>(src) << 32 | dst)) ^
                                  static_cast<std::uint64_t>(lid));
      if (!found || h < best_hash) {
        found = true;
        best_hash = h;
        best_link = lid;
      }
    }
    CHOREO_ASSERT(found);
    r.links.push_back(best_link);
    cur = topo_.link(best_link).dst;
    r.nodes.push_back(cur);
  }
  return r;
}

std::size_t Router::hop_count(NodeId src, NodeId dst) const {
  CHOREO_REQUIRE(src < topo_.node_count() && dst < topo_.node_count());
  const auto& dist = distances_to(dst);
  CHOREO_REQUIRE_MSG(dist[src] != kUnreachable, "destination unreachable");
  return dist[src];
}

}  // namespace choreo::net

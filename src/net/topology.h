#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/require.h"

namespace choreo::net {

using NodeId = std::size_t;
using LinkId = std::size_t;

/// Role of a node in the multi-tier datacenter tree (Fig 5 of the paper).
enum class NodeKind { Host, Tor, Agg, Core };

const char* to_string(NodeKind kind);

struct Node {
  NodeId id = 0;
  NodeKind kind = NodeKind::Host;
  std::string name;
  /// Rack index for hosts and ToR switches (-1 for agg/core).
  int rack = -1;
  /// Pod / subtree index (-1 when not applicable).
  int pod = -1;
  /// Region index for two-tier-core topologies (-1 when not applicable).
  int region = -1;
};

/// A directed capacitated link. Physical cables are represented as two
/// directed links (one per direction) so that full-duplex traffic does not
/// contend with itself.
struct Link {
  LinkId id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  double capacity_bps = 0.0;
  double delay_s = 0.0;
  /// The opposite-direction twin created by add_duplex_link.
  LinkId reverse = 0;
};

/// A datacenter network graph: nodes (hosts and switches) and directed links.
///
/// The topology is static once built; simulators and routers hold references
/// to it. Background load and rate limits live in higher layers (flowsim,
/// cloud) — the topology only describes physical connectivity and capacity.
class Topology {
 public:
  NodeId add_node(NodeKind kind, std::string name, int rack = -1, int pod = -1);

  /// Stamps the region of an existing node (used by multi-region builders).
  void set_node_region(NodeId id, int region) {
    CHOREO_REQUIRE(id < nodes_.size());
    nodes_[id].region = region;
  }

  /// Adds a pair of directed links (a->b and b->a) with the same capacity and
  /// delay. Returns the id of the a->b direction; its twin is `reverse`.
  LinkId add_duplex_link(NodeId a, NodeId b, double capacity_bps, double delay_s);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const Node& node(NodeId id) const {
    CHOREO_REQUIRE(id < nodes_.size());
    return nodes_[id];
  }
  const Link& link(LinkId id) const {
    CHOREO_REQUIRE(id < links_.size());
    return links_[id];
  }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }

  /// Links departing from `node`.
  const std::vector<LinkId>& out_links(NodeId node) const {
    CHOREO_REQUIRE(node < out_.size());
    return out_[node];
  }

  /// All node ids of a given kind, in creation order.
  std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
};

/// Parameters for the generic multi-rooted tree of Fig 5.
struct TreeParams {
  std::size_t pods = 2;            ///< aggregation subtrees
  std::size_t racks_per_pod = 2;   ///< ToR switches per pod
  std::size_t hosts_per_rack = 4;  ///< physical machines per rack
  std::size_t aggs_per_pod = 2;    ///< aggregation switches per pod (ECMP width)
  std::size_t cores = 2;           ///< core switches (every agg uplinks to all)
  double host_link_bps = 1e9;      ///< host <-> ToR
  double agg_link_bps = 10e9;      ///< ToR <-> agg
  double core_link_bps = 10e9;     ///< agg <-> core
  double link_delay_s = 20e-6;     ///< per-link propagation delay
};

/// Builds a multi-rooted tree: hosts -> ToR -> agg (per pod) -> core.
/// Shortest host-to-host routes then have link counts 2 (same rack),
/// 4 (same pod) or 6 (across pods), matching the even hop counts the paper
/// observes (§3.3.1); VM co-location adds the 1-hop case at the cloud layer.
Topology make_multi_rooted_tree(const TreeParams& p);

/// A datacenter with two core tiers: `regions` copies of the Fig 5 tree whose
/// core switches are joined through super-core switches. Shortest
/// host-to-host routes have link counts 2 (same rack), 4 (same pod),
/// 6 (same region) or 8 (across regions) — exactly the even hop counts the
/// paper measures on EC2 in Fig 8 (the 1-hop case is VM co-location, which
/// the cloud layer adds).
struct RegionalTreeParams {
  std::size_t regions = 2;
  std::size_t super_cores = 2;
  TreeParams region;             ///< shape of each region's subtree
  double super_link_bps = 40e9;  ///< region core <-> super-core links
};
Topology make_regional_tree(const RegionalTreeParams& p);

/// Fig 3(a): n sender/receiver pairs sharing one bottleneck link.
/// Senders attach to switch L, receivers to switch R, L->R is the shared
/// link. Every link is `link_bps` (1 Gbit/s in the paper).
struct SharedLinkTopology {
  Topology topo;
  std::vector<NodeId> senders;
  std::vector<NodeId> receivers;
  LinkId shared_link = 0;  ///< the L->R bottleneck
};
SharedLinkTopology make_shared_link(std::size_t pairs, double link_bps = 1e9,
                                    double delay_s = 20e-6);

/// Fig 3(b): senders on one rack, receivers on another, ToRs joined through
/// an aggregate switch. Host links are `host_bps` (1 Gbit/s), ToR<->agg links
/// are `agg_bps` (10 Gbit/s).
struct TwoRackTopology {
  Topology topo;
  std::vector<NodeId> senders;
  std::vector<NodeId> receivers;
  LinkId sender_uplink = 0;  ///< sender ToR -> aggregate
  LinkId receiver_downlink = 0;
};
TwoRackTopology make_two_rack_cloud(std::size_t pairs, double host_bps = 1e9,
                                    double agg_bps = 10e9, double delay_s = 20e-6);

}  // namespace choreo::net

#pragma once

#include <cstdint>
#include <vector>

namespace choreo::net {

/// Fault model of a SimTransport, applied independently to every message
/// from the draw keyed by (seed, message id) — so whether a given message is
/// lost, delayed, or duplicated depends only on its position in the send
/// sequence, never on when (or whether) receivers poll. That keying is what
/// makes fault schedules replayable: the same seed over the same send
/// sequence produces the same loss/delay/duplicate pattern every run.
struct FaultProfile {
  /// Probability a message is silently dropped (never delivered).
  double loss = 0.0;
  /// Probability a duplicate copy is enqueued with its own delay draw — the
  /// copy can arrive in the same cycle or cycles later than the original.
  double duplicate = 0.0;
  /// Delivery delay in whole cycles, uniform in [min, max]. Different draws
  /// for messages in flight are what reorders them: a slow message sent at
  /// cycle c surfaces after a fast one sent at c+1.
  std::uint32_t delay_min_cycles = 0;
  std::uint32_t delay_max_cycles = 0;

  bool lossless_zero_delay() const {
    return loss == 0.0 && duplicate == 0.0 && delay_max_cycles == 0;
  }
};

struct TransportOptions {
  std::uint64_t seed = 1;
  FaultProfile fault;
};

/// A simulated unreliable datagram transport between a fixed set of
/// endpoints, advancing in discrete cycles (the agent plane's measurement
/// cycles). send() applies the fault pipeline and enqueues the surviving
/// copies; receive() drains everything due at the caller's endpoint by the
/// given cycle, ordered by (delivery cycle, send order).
///
/// With the default FaultProfile (lossless, zero delay) every message is
/// delivered exactly once, in send order, in the cycle it was sent — the
/// configuration under which the agent plane is pinned bit-identical to the
/// in-process measurement path.
class SimTransport {
 public:
  using Endpoint = std::uint32_t;
  using Bytes = std::vector<std::uint8_t>;

  struct Delivery {
    Endpoint from = 0;
    Bytes bytes;
  };

  struct Stats {
    std::uint64_t sent = 0;        ///< send() calls
    std::uint64_t delivered = 0;   ///< deliveries handed to receive() callers
    std::uint64_t dropped = 0;     ///< messages lost to the fault pipeline
    std::uint64_t duplicated = 0;  ///< extra copies enqueued
    std::uint64_t delayed = 0;     ///< copies scheduled later than their send cycle
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_delivered = 0;
  };

  SimTransport(std::size_t endpoints, TransportOptions options);

  std::size_t endpoint_count() const { return queues_.size(); }
  const TransportOptions& options() const { return opts_; }

  /// Sends one message at `cycle`. Faults are drawn here; the message (and
  /// any duplicate) lands in the destination queue with its delivery cycle.
  void send(Endpoint from, Endpoint to, Bytes bytes, std::uint64_t cycle);

  /// Drains every message due at `at` by `cycle` (delivery cycle <= cycle),
  /// ordered by (delivery cycle, send order). Messages scheduled for later
  /// cycles stay queued.
  std::vector<Delivery> receive(Endpoint at, std::uint64_t cycle);

  /// Messages still in flight to `at` (due later than the last receive).
  std::size_t in_flight(Endpoint at) const { return queues_[at].size(); }

  const Stats& stats() const { return stats_; }

 private:
  struct InFlight {
    std::uint64_t deliver_cycle = 0;
    std::uint64_t order = 0;  ///< global send counter: the in-cycle tie-break
    Endpoint from = 0;
    Bytes bytes;
  };

  void enqueue(Endpoint from, Endpoint to, const Bytes& bytes, std::uint64_t cycle,
               std::uint64_t delay);

  TransportOptions opts_;
  std::vector<std::vector<InFlight>> queues_;  ///< per destination endpoint
  std::uint64_t next_msg_ = 0;
  Stats stats_;
};

}  // namespace choreo::net

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace choreo::forecast {

/// One epoch-stamped rate observation for an ordered VM pair.
struct RateSample {
  std::uint64_t epoch = 0;
  double rate_bps = 0.0;
};

/// Read-only window over one pair's retained samples, oldest first. The
/// window is a view into the RateHistory's ring storage; it is invalidated
/// by the next record()/resize() on the history.
class PairSeries {
 public:
  PairSeries() = default;
  PairSeries(const RateSample* ring, std::size_t capacity, std::size_t head,
             std::size_t count)
      : ring_(ring), capacity_(capacity), head_(head), count_(count) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// k-th retained sample, oldest first (k in [0, size())).
  const RateSample& at(std::size_t k) const;
  /// k-th retained sample, newest first (k = 0 is the latest observation).
  const RateSample& from_newest(std::size_t k) const { return at(count_ - 1 - k); }
  const RateSample& newest() const { return from_newest(0); }

 private:
  const RateSample* ring_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  ///< ring slot holding the oldest retained sample
  std::size_t count_ = 0;
};

/// Per-ordered-pair rate history: a fixed-capacity ring buffer of
/// epoch-stamped probe results for every ordered pair of an n-VM fleet.
/// Memory is O(n^2 * capacity) regardless of session length — the forecast
/// plane's raw material. Every probe result the measurement plane stores
/// into the ViewCache is mirrored here (the cache keeps only the latest two
/// estimates; predictors need the recent window).
class RateHistory {
 public:
  RateHistory() = default;
  RateHistory(std::size_t vm_count, std::size_t capacity);

  /// Grows (or shrinks) the fleet, preserving the retained samples of
  /// surviving VM indices — mirrors ViewCache::resize so the two stay in
  /// lockstep across allocations.
  void resize(std::size_t vm_count);

  std::size_t vm_count() const { return vm_count_; }
  std::size_t capacity() const { return capacity_; }

  /// Records one probe result for (src, dst) at `epoch`, evicting the
  /// oldest retained sample once the pair's ring is full. O(1).
  void record(std::size_t src, std::size_t dst, double rate_bps, std::uint64_t epoch);

  /// Retained samples of one pair, oldest first.
  PairSeries series(std::size_t src, std::size_t dst) const;

  /// Number of retained samples for one pair (0..capacity).
  std::size_t sample_count(std::size_t src, std::size_t dst) const;

  /// Total samples ever recorded for one pair (not capped by capacity).
  std::uint64_t observations(std::size_t src, std::size_t dst) const;

 private:
  std::size_t pair_index(std::size_t src, std::size_t dst) const {
    return src * vm_count_ + dst;
  }

  std::size_t vm_count_ = 0;
  std::size_t capacity_ = 0;
  /// Ring storage, pair-major: samples_[pair * capacity_ + slot].
  std::vector<RateSample> samples_;
  std::vector<std::size_t> head_;         ///< per pair: slot of the oldest sample
  std::vector<std::size_t> count_;        ///< per pair: retained samples
  std::vector<std::uint64_t> recorded_;   ///< per pair: lifetime observations
};

}  // namespace choreo::forecast

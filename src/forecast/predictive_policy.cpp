#include "forecast/predictive_policy.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"
#include "util/stats.h"

namespace choreo::forecast {
namespace {

/// Denominator floor shared by every relative-error computation here (the
/// same floor ViewCache::is_volatile uses), so zero-rate observations do not
/// blow up the error tracks.
inline double error_base(double bps) { return std::max(bps, 1.0); }

}  // namespace

PredictivePolicy::PredictivePolicy(ForecastOptions options)
    : options_(std::move(options)),
      history_(0, options_.history_capacity),
      predictors_(default_predictor_set(options_.predictors)) {
  CHOREO_REQUIRE(options_.history_capacity >= 2);
  CHOREO_REQUIRE(options_.error_window >= 1);
  CHOREO_REQUIRE(options_.error_ewma_alpha > 0.0 && options_.error_ewma_alpha <= 1.0);
  CHOREO_REQUIRE(options_.probe_budget_fraction >= 0.0 &&
                 options_.probe_budget_fraction <= 1.0);
  CHOREO_REQUIRE(options_.discount_quantile >= 0.0 && options_.discount_quantile <= 1.0);
}

void PredictivePolicy::resize(std::size_t vm_count) {
  if (vm_count == vm_count_) return;
  const std::size_t pairs = vm_count * vm_count;
  const std::size_t P = predictors_.size();
  std::vector<double> ewma(pairs * P, -1.0);
  std::vector<double> recent(pairs * options_.error_window, 0.0);
  std::vector<std::size_t> rhead(pairs, 0), rcount(pairs, 0);
  std::vector<double> base(pairs, -1.0);
  std::vector<CusumDetector> cusum(pairs, CusumDetector(options_.cusum));
  std::vector<std::uint8_t> flag(pairs, 0);
  const std::size_t keep = std::min(vm_count, vm_count_);
  for (std::size_t i = 0; i < keep; ++i) {
    for (std::size_t j = 0; j < keep; ++j) {
      const std::size_t oldp = i * vm_count_ + j;
      const std::size_t newp = i * vm_count + j;
      for (std::size_t p = 0; p < P; ++p) {
        ewma[newp * P + p] = error_ewma_[oldp * P + p];
      }
      for (std::size_t w = 0; w < options_.error_window; ++w) {
        recent[newp * options_.error_window + w] =
            recent_errors_[oldp * options_.error_window + w];
      }
      rhead[newp] = recent_head_[oldp];
      rcount[newp] = recent_count_[oldp];
      base[newp] = baseline_[oldp];
      cusum[newp] = cusum_[oldp];
      flag[newp] = changepoint_[oldp];
    }
  }
  vm_count_ = vm_count;
  history_.resize(vm_count);
  error_ewma_ = std::move(ewma);
  recent_errors_ = std::move(recent);
  recent_head_ = std::move(rhead);
  recent_count_ = std::move(rcount);
  baseline_ = std::move(base);
  cusum_ = std::move(cusum);
  changepoint_ = std::move(flag);
}

measure::RefreshPlan PredictivePolicy::plan_refresh(const measure::ViewCache& cache,
                                                    std::uint64_t epoch,
                                                    const measure::RefreshPolicy& fixed) {
  last_plan_ = PlanStats{};
  if (!options_.enabled) {
    // The oracle path: verbatim fixed-policy planning, zero forecast state.
    return cache.plan_refresh(epoch, fixed);
  }
  resize(cache.vm_count());
  const std::size_t n = vm_count_;
  CHOREO_REQUIRE(n >= 2);

  // Regime alarm: when most of last cycle's scored probes fired the CUSUM,
  // the whole network likely shifted — forecasts are stale everywhere, so
  // probe everything once and start the next regime's tracks from fresh
  // observations.
  const bool sweep =
      cycle_scored_ >= options_.changepoint_sweep_min_probes &&
      static_cast<double>(cycle_fired_) >=
          options_.changepoint_sweep_fraction * static_cast<double>(cycle_scored_);
  cycle_scored_ = 0;
  cycle_fired_ = 0;

  measure::RefreshPlan plan;
  struct Candidate {
    double score = 0.0;
    std::size_t src = 0;
    std::size_t dst = 0;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const measure::PairEstimate& e = cache.at(i, j);
      if (!e.valid()) {
        ++plan.never_measured;
      } else if (sweep) {
        last_plan_.full_sweep = true;
        ++last_plan_.changepoints;
      } else if (e.epoch + fixed.max_age_epochs < epoch) {
        // The fixed policy's staleness rule stays as the safety net: even a
        // perfectly predicted pair is re-grounded every max_age_epochs.
        ++plan.stale;
      } else if (changepoint_flagged(i, j)) {
        ++last_plan_.changepoints;
      } else if (history_.observations(i, j) < options_.min_observations) {
        ++last_plan_.warmup;
      } else {
        // In control: competes for the probe budget by predictability score.
        candidates.push_back({predictability_error(i, j), i, j});
        continue;
      }
      plan.pairs.push_back({i, j});
    }
  }

  // Budget goes to the pairs the best predictor is worst at; the rest coast
  // on forecasts this cycle. Deterministic: score desc, then pair asc.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.score != b.score) return a.score > b.score;
                     if (a.src != b.src) return a.src < b.src;
                     return a.dst < b.dst;
                   });
  std::size_t budget = static_cast<std::size_t>(
      options_.probe_budget_fraction * static_cast<double>(candidates.size()));
  budget = std::min(candidates.size(),
                    std::max(budget, options_.min_probes_per_cycle));
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    if (k < budget) {
      plan.pairs.push_back({candidates[k].src, candidates[k].dst});
      ++last_plan_.unpredictable;
    } else {
      ++last_plan_.predictable;
    }
  }
  return plan;
}

void PredictivePolicy::observe(std::size_t src, std::size_t dst, double rate_bps,
                               std::uint64_t epoch) {
  if (!options_.enabled) return;
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_ && src != dst);
  const std::size_t pair = pair_index(src, dst);
  const std::size_t P = predictors_.size();
  const PairSeries series = history_.series(src, dst);
  if (!series.empty()) {
    // Score every predictor against its pre-probe forecast.
    std::vector<double> err(P, 0.0);
    for (std::size_t p = 0; p < P; ++p) {
      const double pred = predictors_[p]->predict(series, epoch);
      err[p] = std::abs(pred - rate_bps) / error_base(rate_bps);
      double& track = error_ewma_[pair * P + p];
      track = track < 0.0 ? err[p]
                          : options_.error_ewma_alpha * err[p] +
                                (1.0 - options_.error_ewma_alpha) * track;
    }
    // Recent-error ring feeds the discount quantile with the error of the
    // pair's (post-update) best predictor.
    const std::size_t best_now = best_predictor(src, dst);
    const std::size_t W = options_.error_window;
    double* ring = &recent_errors_[pair * W];
    if (recent_count_[pair] < W) {
      ring[(recent_head_[pair] + recent_count_[pair]) % W] = err[best_now];
      ++recent_count_[pair];
    } else {
      ring[recent_head_[pair]] = err[best_now];
      recent_head_[pair] = (recent_head_[pair] + 1) % W;
    }
    // CUSUM on the signed residual against the slow per-pair baseline. The
    // baseline deliberately lags the one-step forecasts — which adapt to a
    // new regime after a single sample and would hide any drift — and
    // snaps to the observed level when the alarm fires. A firing flags the
    // pair until its next probe.
    const double prev_base =
        baseline_[pair] >= 0.0 ? baseline_[pair] : series.newest().rate_bps;
    const double residual = (rate_bps - prev_base) / error_base(prev_base);
    const bool fired = cusum_[pair].update(residual);
    if (fired) {
      baseline_[pair] = rate_bps;  // the new regime's level
    } else {
      baseline_[pair] =
          prev_base + options_.changepoint_baseline_alpha * (rate_bps - prev_base);
    }
    changepoint_[pair] = fired ? 1 : 0;
    ++cycle_scored_;
    if (fired) ++cycle_fired_;
  }
  history_.record(src, dst, rate_bps, epoch);
}

double PredictivePolicy::predict(std::size_t src, std::size_t dst,
                                 std::uint64_t target_epoch) const {
  const PairSeries series = history_.series(src, dst);
  CHOREO_REQUIRE_MSG(!series.empty(), "no history for pair");
  return predictors_[best_predictor(src, dst)]->predict(series, target_epoch);
}

std::size_t PredictivePolicy::best_predictor(std::size_t src, std::size_t dst) const {
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_);
  const std::size_t pair = pair_index(src, dst);
  std::size_t best = 0;  // last-value until anything is scored
  double best_err = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < predictors_.size(); ++p) {
    const double e = tracked_error(pair, p);
    if (e >= 0.0 && e < best_err) {
      best_err = e;
      best = p;
    }
  }
  return best;
}

double PredictivePolicy::predictability_error(std::size_t src, std::size_t dst) const {
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_);
  const std::size_t pair = pair_index(src, dst);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < predictors_.size(); ++p) {
    const double e = tracked_error(pair, p);
    if (e >= 0.0) best = std::min(best, e);
  }
  return best;
}

double PredictivePolicy::error_quantile(std::size_t src, std::size_t dst) const {
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_);
  const std::size_t pair = pair_index(src, dst);
  if (recent_count_[pair] == 0) return 0.0;
  const std::size_t W = options_.error_window;
  std::vector<double> errs(recent_count_[pair]);
  for (std::size_t k = 0; k < recent_count_[pair]; ++k) {
    errs[k] = recent_errors_[pair * W + (recent_head_[pair] + k) % W];
  }
  return percentile(std::move(errs), options_.discount_quantile);
}

bool PredictivePolicy::changepoint_flagged(std::size_t src, std::size_t dst) const {
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_);
  return changepoint_[pair_index(src, dst)] != 0;
}

void PredictivePolicy::apply_to_view(place::ClusterView& view,
                                     const measure::ViewCache& cache,
                                     const measure::RefreshPlan& plan,
                                     std::uint64_t epoch) {
  if (!options_.enabled) return;
  if (!options_.use_predictions_in_view && !options_.discount_rates) return;
  const std::size_t n = view.machine_count();
  CHOREO_REQUIRE(cache.vm_count() == n && vm_count_ == n);
  std::vector<std::uint8_t> probed(n * n, 0);
  for (const measure::ProbePair& p : plan.pairs) probed[p.src * n + p.dst] = 1;
  if (options_.use_predictions_in_view) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || probed[i * n + j] || !cache.at(i, j).valid()) continue;
        if (history_.sample_count(i, j) == 0) continue;
        view.rate_bps(i, j) = predict(i, j, epoch);
        ++last_plan_.predicted;
      }
    }
  }
  if (options_.discount_rates) {
    DoubleMatrix factor(n, n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || !cache.at(i, j).valid()) continue;
        factor(i, j) = 1.0 / (1.0 + error_quantile(i, j));
      }
    }
    place::apply_rate_discount(view, factor);
  }
}

}  // namespace choreo::forecast

#include "forecast/rate_history.h"

#include <algorithm>

#include "util/require.h"

namespace choreo::forecast {

const RateSample& PairSeries::at(std::size_t k) const {
  CHOREO_REQUIRE(k < count_);
  return ring_[(head_ + k) % capacity_];
}

RateHistory::RateHistory(std::size_t vm_count, std::size_t capacity)
    : capacity_(capacity) {
  CHOREO_REQUIRE(capacity >= 2);
  resize(vm_count);
}

void RateHistory::resize(std::size_t vm_count) {
  CHOREO_REQUIRE(capacity_ >= 2);
  if (vm_count == vm_count_) return;
  const std::size_t pairs = vm_count * vm_count;
  std::vector<RateSample> samples(pairs * capacity_);
  std::vector<std::size_t> head(pairs, 0), count(pairs, 0);
  std::vector<std::uint64_t> recorded(pairs, 0);
  const std::size_t keep = std::min(vm_count, vm_count_);
  for (std::size_t i = 0; i < keep; ++i) {
    for (std::size_t j = 0; j < keep; ++j) {
      const std::size_t old_pair = i * vm_count_ + j;
      const std::size_t new_pair = i * vm_count + j;
      for (std::size_t s = 0; s < capacity_; ++s) {
        samples[new_pair * capacity_ + s] = samples_[old_pair * capacity_ + s];
      }
      head[new_pair] = head_[old_pair];
      count[new_pair] = count_[old_pair];
      recorded[new_pair] = recorded_[old_pair];
    }
  }
  vm_count_ = vm_count;
  samples_ = std::move(samples);
  head_ = std::move(head);
  count_ = std::move(count);
  recorded_ = std::move(recorded);
}

void RateHistory::record(std::size_t src, std::size_t dst, double rate_bps,
                         std::uint64_t epoch) {
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_ && src != dst);
  CHOREO_REQUIRE(rate_bps >= 0.0);
  const std::size_t pair = pair_index(src, dst);
  RateSample* ring = &samples_[pair * capacity_];
  if (count_[pair] < capacity_) {
    ring[(head_[pair] + count_[pair]) % capacity_] = {epoch, rate_bps};
    ++count_[pair];
  } else {
    // Full: overwrite the oldest slot and advance the head.
    ring[head_[pair]] = {epoch, rate_bps};
    head_[pair] = (head_[pair] + 1) % capacity_;
  }
  ++recorded_[pair];
}

PairSeries RateHistory::series(std::size_t src, std::size_t dst) const {
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_);
  const std::size_t pair = pair_index(src, dst);
  return PairSeries(&samples_[pair * capacity_], capacity_, head_[pair], count_[pair]);
}

std::size_t RateHistory::sample_count(std::size_t src, std::size_t dst) const {
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_);
  return count_[pair_index(src, dst)];
}

std::uint64_t RateHistory::observations(std::size_t src, std::size_t dst) const {
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_);
  return recorded_[pair_index(src, dst)];
}

}  // namespace choreo::forecast

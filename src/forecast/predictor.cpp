#include "forecast/predictor.h"

#include <algorithm>

#include "util/require.h"

namespace choreo::forecast {

double LastValuePredictor::predict(const PairSeries& series,
                                   std::uint64_t /*target_epoch*/) const {
  CHOREO_REQUIRE(!series.empty());
  return series.newest().rate_bps;
}

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {
  CHOREO_REQUIRE(alpha > 0.0 && alpha <= 1.0);
}

double EwmaPredictor::predict(const PairSeries& series,
                              std::uint64_t /*target_epoch*/) const {
  CHOREO_REQUIRE(!series.empty());
  double e = series.at(0).rate_bps;
  for (std::size_t k = 1; k < series.size(); ++k) {
    e = alpha_ * series.at(k).rate_bps + (1.0 - alpha_) * e;
  }
  return e;
}

TimeOfDayPredictor::TimeOfDayPredictor(std::uint64_t period_epochs)
    : period_(period_epochs) {
  CHOREO_REQUIRE(period_epochs >= 1);
}

double TimeOfDayPredictor::predict(const PairSeries& series,
                                   std::uint64_t target_epoch) const {
  CHOREO_REQUIRE(!series.empty());
  // Newest-to-oldest, matching workload::score_time_of_day's accumulation
  // order (back = P, 2P, ...) bit for bit on dense series.
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t k = 0; k < series.size(); ++k) {
    const RateSample& s = series.from_newest(k);
    if (s.epoch % period_ == target_epoch % period_ && s.epoch != target_epoch) {
      sum += s.rate_bps;
      ++n;
    }
  }
  if (n == 0) return series.newest().rate_bps;  // no same-phase history yet
  return sum / static_cast<double>(n);
}

BlendPredictor::BlendPredictor(std::uint64_t period_epochs) : tod_(period_epochs) {}

double BlendPredictor::predict(const PairSeries& series,
                               std::uint64_t target_epoch) const {
  CHOREO_REQUIRE(!series.empty());
  return 0.5 * (last_.predict(series, target_epoch) + tod_.predict(series, target_epoch));
}

const char* to_string(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::LastValue:
      return "last-value";
    case PredictorKind::Ewma:
      return "ewma";
    case PredictorKind::TimeOfDay:
      return "time-of-day";
    case PredictorKind::Blend:
      return "blend";
  }
  return "?";
}

std::unique_ptr<Predictor> make_predictor(PredictorKind kind,
                                          const PredictorParams& params) {
  switch (kind) {
    case PredictorKind::LastValue:
      return std::make_unique<LastValuePredictor>();
    case PredictorKind::Ewma:
      return std::make_unique<EwmaPredictor>(params.ewma_alpha);
    case PredictorKind::TimeOfDay:
      return std::make_unique<TimeOfDayPredictor>(params.time_of_day_period);
    case PredictorKind::Blend:
      return std::make_unique<BlendPredictor>(params.time_of_day_period);
  }
  CHOREO_REQUIRE_MSG(false, "unknown predictor kind");
  return nullptr;
}

std::vector<std::unique_ptr<Predictor>> default_predictor_set(
    const PredictorParams& params) {
  std::vector<std::unique_ptr<Predictor>> out;
  out.push_back(make_predictor(PredictorKind::LastValue, params));
  out.push_back(make_predictor(PredictorKind::Ewma, params));
  out.push_back(make_predictor(PredictorKind::TimeOfDay, params));
  out.push_back(make_predictor(PredictorKind::Blend, params));
  return out;
}

bool CusumDetector::update(double relative_residual) {
  g_pos_ = std::max(0.0, g_pos_ + relative_residual - params_.slack);
  g_neg_ = std::max(0.0, g_neg_ - relative_residual - params_.slack);
  if (g_pos_ > params_.threshold || g_neg_ > params_.threshold) {
    reset();
    return true;
  }
  return false;
}

void CusumDetector::reset() {
  g_pos_ = 0.0;
  g_neg_ = 0.0;
}

}  // namespace choreo::forecast

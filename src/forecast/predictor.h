#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "forecast/rate_history.h"

namespace choreo::forecast {

/// One next-epoch rate predictor over a pair's retained history. Stateless
/// strategy objects: all per-pair state lives in the RateHistory window the
/// caller passes in, so one predictor instance serves every pair of the
/// fleet and the set of predictors is O(1) memory.
///
/// The built-in set mirrors the §2.1 predictability analysis ("data from the
/// previous hour and the time-of-day are good predictors of the number of
/// bytes transferred in the next hour"): last-value, time-of-day, their
/// blend — plus an EWMA for noise-dominated pairs. The predictors reproduce
/// the arithmetic of workload::score_prev_hour / score_time_of_day /
/// score_blend exactly (same fold order), which is what lets the offline
/// trace scorers serve as the differential oracle in test_forecast.
class Predictor {
 public:
  virtual ~Predictor() = default;
  virtual std::string name() const = 0;
  /// Predicted rate at `target_epoch`; requires a non-empty series.
  virtual double predict(const PairSeries& series, std::uint64_t target_epoch) const = 0;
};

/// h[t] = h[t-1]: the paper's "previous hour" predictor at the pair level.
class LastValuePredictor : public Predictor {
 public:
  std::string name() const override { return "last-value"; }
  double predict(const PairSeries& series, std::uint64_t target_epoch) const override;
};

/// Exponentially weighted moving average folded oldest-to-newest:
/// e <- alpha * sample + (1 - alpha) * e.
class EwmaPredictor : public Predictor {
 public:
  explicit EwmaPredictor(double alpha = 0.5);
  std::string name() const override { return "ewma"; }
  double predict(const PairSeries& series, std::uint64_t target_epoch) const override;

 private:
  double alpha_;
};

/// Mean of the retained samples whose epoch falls at the same phase of the
/// diurnal period as the target epoch (epoch % period). Falls back to the
/// last value when no retained sample shares the target's phase. The sum
/// folds newest-to-oldest — the literal order workload::score_time_of_day
/// accumulates in, so the two stay bit-identical on dense series.
class TimeOfDayPredictor : public Predictor {
 public:
  explicit TimeOfDayPredictor(std::uint64_t period_epochs = 24);
  std::string name() const override { return "time-of-day"; }
  double predict(const PairSeries& series, std::uint64_t target_epoch) const override;

 private:
  std::uint64_t period_;
};

/// 0.5 * (last value + time-of-day): the §2.1 blended predictor.
class BlendPredictor : public Predictor {
 public:
  explicit BlendPredictor(std::uint64_t period_epochs = 24);
  std::string name() const override { return "blend"; }
  double predict(const PairSeries& series, std::uint64_t target_epoch) const override;

 private:
  LastValuePredictor last_;
  TimeOfDayPredictor tod_;
};

enum class PredictorKind { LastValue, Ewma, TimeOfDay, Blend };

const char* to_string(PredictorKind kind);

/// Knobs shared by the factory-built predictors.
struct PredictorParams {
  double ewma_alpha = 0.5;
  /// Epochs per "day" for the time-of-day and blend predictors. Epochs are
  /// the measurement plane's clock; sessions that measure hourly make this
  /// the paper's 24-hour diurnal period.
  std::uint64_t time_of_day_period = 24;
};

std::unique_ptr<Predictor> make_predictor(PredictorKind kind, const PredictorParams& params);

/// The default competing set the PredictivePolicy races per pair, in a fixed
/// deterministic order: last-value, EWMA, time-of-day, blend.
std::vector<std::unique_ptr<Predictor>> default_predictor_set(const PredictorParams& params);

/// CUSUM-style change-point detector over a stream of relative prediction
/// residuals r = (observed - predicted) / predicted. Two one-sided
/// cumulative sums catch sustained drifts in either direction that
/// per-sample volatility thresholds miss: g+ accumulates positive residual
/// mass above the slack, g- negative mass, and a change-point fires (and
/// resets both sums) when either exceeds the threshold. Tracks the §3
/// observation that cloud rates are stable for long stretches and then
/// shift regime — exactly the event that should invalidate a forecast.
class CusumDetector {
 public:
  struct Params {
    /// Per-step residual magnitude absorbed before anything accumulates
    /// (measurement noise allowance).
    double slack = 0.15;
    /// Cumulative drift (in relative-rate units) that fires the alarm.
    double threshold = 0.75;
  };

  CusumDetector() = default;
  explicit CusumDetector(Params params) : params_(params) {}

  /// Feeds one relative residual; returns true when a change-point fires
  /// (both sums reset so the next regime starts clean).
  bool update(double relative_residual);

  void reset();
  double positive_sum() const { return g_pos_; }
  double negative_sum() const { return g_neg_; }

 private:
  Params params_;
  double g_pos_ = 0.0;
  double g_neg_ = 0.0;
};

}  // namespace choreo::forecast

#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "forecast/predictor.h"
#include "forecast/rate_history.h"
#include "measure/view_cache.h"
#include "place/cluster.h"

namespace choreo::forecast {

/// Configuration of the forecast plane. The default-constructed options are
/// DISABLED: planning delegates verbatim to the fixed ViewCache policy and
/// the Choreo pipeline stays bit-identical to the pre-forecast system
/// (pinned by test_forecast_differential).
struct ForecastOptions {
  /// Master switch. Off: plan_refresh() == ViewCache::plan_refresh() and no
  /// history, scoring, or view rewriting happens anywhere.
  bool enabled = false;
  /// Retained probe results per ordered pair (the RateHistory ring size).
  std::size_t history_capacity = 16;
  /// Knobs of the competing predictor set (EWMA alpha, diurnal period).
  PredictorParams predictors;
  /// Smoothing of each predictor's per-pair relative-error track.
  double error_ewma_alpha = 0.4;
  /// Recent best-predictor errors kept per pair for the discount quantile.
  std::size_t error_window = 8;
  /// Pairs with fewer lifetime probes than this are always re-probed
  /// (warm-up: no meaningful error track yet).
  std::uint64_t min_observations = 3;
  /// Share of the in-control measured pairs re-probed per cycle, spent on
  /// the pairs the best predictor is WORST at (§2.1 turned into a probe
  /// budget: predictable pairs coast on forecasts, unpredictable ones get
  /// the trains).
  double probe_budget_fraction = 0.25;
  std::size_t min_probes_per_cycle = 1;
  /// Change-point detection: CUSUM over each pair's residuals against a
  /// slow-moving rate baseline. (Residuals against the one-step forecast
  /// would vanish immediately — the last-value predictor adapts to a new
  /// regime after a single sample — so drift is measured against an EWMA
  /// baseline that deliberately lags, and snaps to the new level when the
  /// alarm fires.)
  CusumDetector::Params cusum;
  double changepoint_baseline_alpha = 0.25;
  /// When at least this fraction of a cycle's scored probes fire the CUSUM
  /// (and at least changepoint_sweep_min_probes were scored), the next plan
  /// is a full sweep: the network shifted regime, all forecasts are suspect.
  double changepoint_sweep_fraction = 0.5;
  std::size_t changepoint_sweep_min_probes = 4;
  /// Rewrite unprobed measured pairs of the refreshed view with the best
  /// predictor's forecast (instead of the last, possibly stale, sample).
  bool use_predictions_in_view = true;
  /// Uncertainty-aware placement: scale every measured pair's view rate by
  /// 1 / (1 + q) where q is the discount_quantile of the pair's recent
  /// prediction errors — placers stop trusting point estimates on pairs the
  /// forecast plane keeps getting wrong.
  bool discount_rates = false;
  double discount_quantile = 0.9;
};

/// The forecast plane's refresh planner: replaces the ViewCache's fixed
/// two-sample volatility heuristic with predictability-score-driven probe
/// budgeting, and augments the refreshed ClusterView with forecasts and
/// uncertainty discounts.
///
/// Lifecycle per measurement cycle (what core::Choreo drives):
///   1. plan_refresh(cache, epoch, fixed)  — which pairs to probe and why;
///   2. measure_rate_pairs(...) probes them (the measurement plane's job);
///   3. observe(src, dst, rate, epoch) per probe result — scores every
///      predictor against its pre-probe forecast, updates the per-pair
///      error tracks and CUSUM, then records the sample into the history;
///   4. apply_to_view(view, cache, plan, epoch) — forecasts for unprobed
///      pairs, error-quantile rate discounts for placement.
///
/// With options.enabled == false, step 1 delegates to the fixed policy
/// verbatim and steps 3-4 are no-ops — the bit-identical oracle path.
class PredictivePolicy {
 public:
  PredictivePolicy() = default;
  explicit PredictivePolicy(ForecastOptions options);

  const ForecastOptions& options() const { return options_; }
  const RateHistory& history() const { return history_; }

  /// Grows (or shrinks) the fleet, preserving state of surviving indices.
  void resize(std::size_t vm_count);

  /// Forecast-plane accounting of the most recent plan (all zero when
  /// disabled). `predicted` is filled in by apply_to_view.
  struct PlanStats {
    std::size_t predictable = 0;    ///< measured pairs skipped on forecast confidence
    std::size_t unpredictable = 0;  ///< probed: budget went to the worst-predicted
    std::size_t changepoints = 0;   ///< probed: CUSUM flagged a regime shift
    std::size_t warmup = 0;         ///< probed: not enough history to score yet
    std::size_t predicted = 0;      ///< view entries filled from forecasts
    bool full_sweep = false;        ///< regime alarm forced probing everything
  };

  /// Plans one measurement cycle. Disabled: exactly
  /// cache.plan_refresh(epoch, fixed). Enabled: never-measured and stale
  /// pairs (fixed.max_age_epochs is kept as the staleness safety net) plus
  /// change-point-flagged, warm-up, and the budgeted worst-predicted pairs.
  measure::RefreshPlan plan_refresh(const measure::ViewCache& cache, std::uint64_t epoch,
                                    const measure::RefreshPolicy& fixed);

  const PlanStats& last_plan() const { return last_plan_; }

  /// Scores the predictor set against one fresh probe result, updates the
  /// pair's error tracks / CUSUM / change-point flag, then records the
  /// sample. No-op when disabled.
  void observe(std::size_t src, std::size_t dst, double rate_bps, std::uint64_t epoch);

  /// Best-predictor forecast for one pair at `target_epoch`; requires
  /// recorded history for the pair.
  double predict(std::size_t src, std::size_t dst, std::uint64_t target_epoch) const;

  /// Index into the predictor set of the pair's current best predictor
  /// (lowest tracked error; ties to the earlier predictor), or the
  /// last-value predictor before any scoring happened.
  std::size_t best_predictor(std::size_t src, std::size_t dst) const;
  const Predictor& predictor(std::size_t index) const { return *predictors_[index]; }
  std::size_t predictor_count() const { return predictors_.size(); }

  /// Tracked relative error of the pair's best predictor; +infinity before
  /// any scored observation (maximally unpredictable).
  double predictability_error(std::size_t src, std::size_t dst) const;

  /// The discount_quantile of the pair's recent best-predictor errors; 0
  /// before any scored observation.
  double error_quantile(std::size_t src, std::size_t dst) const;

  /// True when the pair's last scored probe fired the CUSUM and the pair
  /// has not been re-probed since.
  bool changepoint_flagged(std::size_t src, std::size_t dst) const;

  /// Post-refresh view rewrite: unprobed measured pairs get the forecast
  /// (options.use_predictions_in_view), every measured pair's rate is
  /// discounted by its error quantile (options.discount_rates). `plan` must
  /// be the plan this cycle probed. No-op when disabled.
  void apply_to_view(place::ClusterView& view, const measure::ViewCache& cache,
                     const measure::RefreshPlan& plan, std::uint64_t epoch);

 private:
  std::size_t pair_index(std::size_t src, std::size_t dst) const {
    return src * vm_count_ + dst;
  }
  double tracked_error(std::size_t pair, std::size_t predictor) const {
    return error_ewma_[pair * predictors_.size() + predictor];
  }

  ForecastOptions options_;
  std::size_t vm_count_ = 0;
  RateHistory history_;
  std::vector<std::unique_ptr<Predictor>> predictors_;

  /// Per (pair, predictor): EWMA of |prediction - observed| / observed;
  /// negative means "not scored yet".
  std::vector<double> error_ewma_;
  /// Per pair: ring of the last error_window best-predictor errors.
  std::vector<double> recent_errors_;
  std::vector<std::size_t> recent_head_;
  std::vector<std::size_t> recent_count_;
  /// Per pair: slow rate baseline, CUSUM detector, and the sticky flag.
  std::vector<double> baseline_;  ///< negative means "not initialized"
  std::vector<CusumDetector> cusum_;
  std::vector<std::uint8_t> changepoint_;

  /// Scored probes / CUSUM alarms since the last plan (the regime alarm).
  std::size_t cycle_scored_ = 0;
  std::size_t cycle_fired_ = 0;

  PlanStats last_plan_;
};

}  // namespace choreo::forecast

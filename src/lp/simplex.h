#pragma once

#include "lp/model.h"

namespace choreo::lp {

struct SimplexOptions {
  std::size_t max_iterations = 200000;
  double tolerance = 1e-9;
  /// Variable bound overrides used by branch-and-bound; empty means "use the
  /// model's own bounds". Sizes must equal the model's variable count.
  std::vector<double> lower_override;
  std::vector<double> upper_override;
};

/// Solves the LP relaxation of `model` (integrality flags ignored) with a
/// dense two-phase primal simplex using Bland's anti-cycling rule.
///
/// The method is textbook rather than industrial: the placement ILPs the
/// paper formulates (Appendix) are small enough that a dense tableau is
/// simpler and entirely adequate — and "solving ILPs can be slow in
/// practice" is itself one of the paper's observations that motivates the
/// greedy algorithm (§2.3, §5).
Solution solve_lp(const Model& model, const SimplexOptions& options = {});

struct IlpOptions {
  SimplexOptions simplex;
  std::size_t max_nodes = 200000;
  double integrality_tol = 1e-6;
  /// Objective value of a known feasible solution (e.g., from the greedy
  /// placement); lets branch-and-bound prune aggressively. NaN disables.
  double warm_start_objective = std::numeric_limits<double>::quiet_NaN();
};

/// Branch-and-bound over the model's integer variables; depth-first with
/// most-fractional branching. Returns NodeLimit with the best incumbent
/// found when the node budget is exhausted.
Solution solve_ilp(const Model& model, const IlpOptions& options = {});

}  // namespace choreo::lp

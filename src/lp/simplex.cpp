#include "lp/simplex.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace choreo::lp {
namespace {

/// Dense simplex tableau: `a` holds B^{-1}A with the rhs in the last column;
/// `basis[i]` is the column basic in row i.
struct Tableau {
  std::vector<std::vector<double>> a;
  std::vector<std::size_t> basis;
  std::size_t cols = 0;  // structural + slack + artificial (rhs excluded)

  void pivot(std::size_t prow, std::size_t pcol) {
    std::vector<double>& pr = a[prow];
    const double pv = pr[pcol];
    CHOREO_ASSERT(std::abs(pv) > 1e-12);
    for (double& v : pr) v /= pv;
    for (std::size_t r = 0; r < a.size(); ++r) {
      if (r == prow) continue;
      const double factor = a[r][pcol];
      if (factor == 0.0) continue;
      std::vector<double>& row = a[r];
      for (std::size_t c = 0; c <= cols; ++c) row[c] -= factor * pr[c];
    }
    basis[prow] = pcol;
  }
};

struct PhaseResult {
  bool optimal = false;
  bool unbounded = false;
  bool iteration_limit = false;
  std::size_t iterations = 0;
};

/// Runs primal simplex minimizing `cost` (a value per column). Columns with
/// `blocked[j]` true may not enter the basis (used to freeze artificials in
/// phase 2). Bland's rule throughout for anti-cycling.
PhaseResult run_simplex(Tableau& t, const std::vector<double>& cost,
                        const std::vector<bool>& blocked, std::size_t max_iters,
                        double tol) {
  PhaseResult res;
  const std::size_t m = t.a.size();
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    // Reduced costs: r_j = c_j - sum_i c_basis(i) * a[i][j].
    std::size_t entering = t.cols;
    for (std::size_t j = 0; j < t.cols; ++j) {
      if (blocked[j]) continue;
      double r = cost[j];
      for (std::size_t i = 0; i < m; ++i) {
        const double cb = cost[t.basis[i]];
        if (cb != 0.0) r -= cb * t.a[i][j];
      }
      if (r < -tol) {
        entering = j;  // Bland: smallest index with negative reduced cost
        break;
      }
    }
    if (entering == t.cols) {
      res.optimal = true;
      res.iterations = iter;
      return res;
    }
    // Ratio test (Bland tie-break: smallest basis column index).
    std::size_t leaving = m;
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double aij = t.a[i][entering];
      if (aij > tol) {
        const double ratio = t.a[i][t.cols] / aij;
        if (leaving == m || ratio < best_ratio - tol ||
            (std::abs(ratio - best_ratio) <= tol && t.basis[i] < t.basis[leaving])) {
          leaving = i;
          best_ratio = ratio;
        }
      }
    }
    if (leaving == m) {
      res.unbounded = true;
      res.iterations = iter;
      return res;
    }
    t.pivot(leaving, entering);
  }
  res.iteration_limit = true;
  res.iterations = max_iters;
  return res;
}

}  // namespace

Solution solve_lp(const Model& model, const SimplexOptions& options) {
  const std::size_t n = model.variable_count();
  CHOREO_REQUIRE(n > 0);

  std::vector<double> lower(n), upper(n);
  for (std::size_t j = 0; j < n; ++j) {
    lower[j] = options.lower_override.empty() ? model.lower(j) : options.lower_override[j];
    upper[j] = options.upper_override.empty() ? model.upper(j) : options.upper_override[j];
    CHOREO_REQUIRE(lower[j] >= 0.0);
    if (lower[j] > upper[j]) {
      return Solution{SolveStatus::Infeasible, 0.0, {}, 0};
    }
  }

  // Shift variables: y_j = x_j - lower_j >= 0.
  // Gather rows: model constraints plus finite upper bounds as y_j <= u-l.
  struct Row {
    std::vector<double> coeffs;  // dense over structural variables
    Sense sense;
    double rhs;
  };
  std::vector<Row> rows;
  for (const Constraint& c : model.constraints()) {
    Row row{std::vector<double>(n, 0.0), c.sense, c.rhs};
    for (const Term& t : c.terms) row.coeffs[t.var] += t.coeff;
    for (std::size_t j = 0; j < n; ++j) row.rhs -= row.coeffs[j] * lower[j];
    rows.push_back(std::move(row));
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (std::isfinite(upper[j])) {
      Row row{std::vector<double>(n, 0.0), Sense::LessEq, upper[j] - lower[j]};
      row.coeffs[j] = 1.0;
      rows.push_back(std::move(row));
    }
  }

  // Normalize: rhs >= 0.
  for (Row& r : rows) {
    if (r.rhs < 0.0) {
      for (double& v : r.coeffs) v = -v;
      r.rhs = -r.rhs;
      if (r.sense == Sense::LessEq) {
        r.sense = Sense::GreaterEq;
      } else if (r.sense == Sense::GreaterEq) {
        r.sense = Sense::LessEq;
      }
    }
  }

  const std::size_t m = rows.size();
  std::size_t n_slack = 0, n_art = 0;
  for (const Row& r : rows) {
    if (r.sense != Sense::Equal) ++n_slack;
    if (r.sense != Sense::LessEq) ++n_art;
  }
  const std::size_t cols = n + n_slack + n_art;

  Tableau t;
  t.cols = cols;
  t.a.assign(m, std::vector<double>(cols + 1, 0.0));
  t.basis.assign(m, 0);

  std::size_t slack_at = n;
  std::size_t art_at = n + n_slack;
  std::vector<bool> is_artificial(cols, false);
  for (std::size_t i = 0; i < m; ++i) {
    const Row& r = rows[i];
    for (std::size_t j = 0; j < n; ++j) t.a[i][j] = r.coeffs[j];
    t.a[i][cols] = r.rhs;
    switch (r.sense) {
      case Sense::LessEq:
        t.a[i][slack_at] = 1.0;
        t.basis[i] = slack_at++;
        break;
      case Sense::GreaterEq:
        t.a[i][slack_at] = -1.0;
        ++slack_at;
        t.a[i][art_at] = 1.0;
        is_artificial[art_at] = true;
        t.basis[i] = art_at++;
        break;
      case Sense::Equal:
        t.a[i][art_at] = 1.0;
        is_artificial[art_at] = true;
        t.basis[i] = art_at++;
        break;
    }
  }

  Solution sol;
  const std::vector<bool> none_blocked(cols, false);

  // Phase 1: minimize the sum of artificials.
  std::size_t total_iters = 0;
  if (n_art > 0) {
    std::vector<double> cost1(cols, 0.0);
    for (std::size_t j = 0; j < cols; ++j) {
      if (is_artificial[j]) cost1[j] = 1.0;
    }
    const PhaseResult p1 =
        run_simplex(t, cost1, none_blocked, options.max_iterations, options.tolerance);
    total_iters += p1.iterations;
    if (p1.iteration_limit) {
      sol.status = SolveStatus::IterationLimit;
      sol.iterations = total_iters;
      return sol;
    }
    double art_sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (is_artificial[t.basis[i]]) art_sum += t.a[i][cols];
    }
    if (art_sum > 1e-6) {
      sol.status = SolveStatus::Infeasible;
      sol.iterations = total_iters;
      return sol;
    }
    // Drive degenerate artificials (basic at level zero) out of the basis:
    // if one stayed basic into phase 2, later pivots could push it positive
    // again and the "optimal" solution would violate the original rows.
    for (std::size_t i = 0; i < m; ++i) {
      if (!is_artificial[t.basis[i]]) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        if (is_artificial[j]) continue;
        if (std::abs(t.a[i][j]) > 1e-9) {
          t.pivot(i, j);  // rhs is zero, so feasibility is unaffected
          break;
        }
      }
      // No eligible column: the row is vacuous over the real variables and
      // can never change the artificial's (zero) value — safe to leave.
    }
  }

  // Phase 2: minimize the real objective with artificials blocked.
  std::vector<double> cost2(cols, 0.0);
  const double sign = model.maximize() ? -1.0 : 1.0;
  for (std::size_t j = 0; j < n; ++j) cost2[j] = sign * model.objective_coeff(j);
  const PhaseResult p2 =
      run_simplex(t, cost2, is_artificial, options.max_iterations, options.tolerance);
  total_iters += p2.iterations;
  sol.iterations = total_iters;
  if (p2.iteration_limit) {
    sol.status = SolveStatus::IterationLimit;
    return sol;
  }
  if (p2.unbounded) {
    sol.status = SolveStatus::Unbounded;
    return sol;
  }

  sol.status = SolveStatus::Optimal;
  sol.values.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis[i] < n) sol.values[t.basis[i]] = t.a[i][cols];
  }
  for (std::size_t j = 0; j < n; ++j) {
    sol.values[j] = std::max(0.0, sol.values[j]) + lower[j];
  }
  sol.objective = model.objective_value(sol.values);
  return sol;
}

Solution solve_ilp(const Model& model, const IlpOptions& options) {
  const std::size_t n = model.variable_count();
  CHOREO_REQUIRE(n > 0);

  struct Node {
    std::vector<double> lower;
    std::vector<double> upper;
  };

  std::vector<double> lower0(n), upper0(n);
  for (std::size_t j = 0; j < n; ++j) {
    lower0[j] = model.lower(j);
    upper0[j] = model.upper(j);
  }

  const double sign = model.maximize() ? -1.0 : 1.0;
  Solution best;
  best.status = SolveStatus::Infeasible;
  double incumbent = std::isnan(options.warm_start_objective)
                         ? std::numeric_limits<double>::infinity()
                         : sign * options.warm_start_objective;

  std::vector<Node> stack;
  stack.push_back(Node{lower0, upper0});
  std::size_t nodes = 0;
  bool exhausted_budget = false;

  while (!stack.empty()) {
    if (nodes >= options.max_nodes) {
      exhausted_budget = true;
      break;
    }
    ++nodes;
    Node node = std::move(stack.back());
    stack.pop_back();

    SimplexOptions so = options.simplex;
    so.lower_override = node.lower;
    so.upper_override = node.upper;
    const Solution relax = solve_lp(model, so);
    if (relax.status != SolveStatus::Optimal) continue;
    const double bound = sign * relax.objective;
    if (bound >= incumbent - 1e-9) continue;  // cannot beat the incumbent

    // Find the most fractional integer variable.
    std::size_t frac_var = n;
    double frac_dist = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!model.is_integer(j)) continue;
      const double v = relax.values[j];
      const double d = std::abs(v - std::round(v));
      if (d > options.integrality_tol && d > frac_dist) {
        frac_dist = d;
        frac_var = j;
      }
    }

    if (frac_var == n) {
      // Integral: new incumbent.
      incumbent = bound;
      best.status = SolveStatus::Optimal;
      best.values = relax.values;
      for (std::size_t j = 0; j < n; ++j) {
        if (model.is_integer(j)) best.values[j] = std::round(best.values[j]);
      }
      best.objective = model.objective_value(best.values);
      continue;
    }

    const double v = relax.values[frac_var];
    // Branch down then up; push "down" last so it is explored first
    // (depth-first toward zero tends to find placements quickly).
    Node up = node;
    up.lower[frac_var] = std::ceil(v);
    Node down = std::move(node);
    down.upper[frac_var] = std::floor(v);
    if (up.lower[frac_var] <= up.upper[frac_var]) stack.push_back(std::move(up));
    if (down.lower[frac_var] <= down.upper[frac_var]) stack.push_back(std::move(down));
  }

  best.iterations = nodes;
  if (exhausted_budget && best.status != SolveStatus::Optimal) {
    best.status = SolveStatus::NodeLimit;
  } else if (exhausted_budget) {
    best.status = SolveStatus::NodeLimit;  // incumbent exists but not proven
  }
  return best;
}

}  // namespace choreo::lp

#include "lp/model.h"

#include <cmath>

namespace choreo::lp {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterationLimit: return "iteration-limit";
    case SolveStatus::NodeLimit: return "node-limit";
  }
  return "?";
}

std::size_t Model::add_variable(double obj, double lower, double upper, bool integer,
                                std::string name) {
  CHOREO_REQUIRE(lower <= upper);
  CHOREO_REQUIRE(lower >= 0.0);  // the solver assumes non-negative variables
  obj_.push_back(obj);
  lower_.push_back(lower);
  upper_.push_back(upper);
  integer_.push_back(integer);
  names_.push_back(std::move(name));
  return obj_.size() - 1;
}

void Model::add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                           std::string name) {
  for (const Term& t : terms) CHOREO_REQUIRE(t.var < obj_.size());
  constraints_.push_back(Constraint{std::move(terms), sense, rhs, std::move(name)});
}

double Model::objective_value(const std::vector<double>& x) const {
  CHOREO_REQUIRE(x.size() == obj_.size());
  double v = 0.0;
  for (std::size_t i = 0; i < obj_.size(); ++i) v += obj_[i] * x[i];
  return v;
}

bool Model::feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != obj_.size()) return false;
  for (std::size_t i = 0; i < obj_.size(); ++i) {
    if (x[i] < lower_[i] - tol || x[i] > upper_[i] + tol) return false;
    if (integer_[i] && std::abs(x[i] - std::round(x[i])) > tol) return false;
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coeff * x[t.var];
    switch (c.sense) {
      case Sense::LessEq:
        if (lhs > c.rhs + tol) return false;
        break;
      case Sense::GreaterEq:
        if (lhs < c.rhs - tol) return false;
        break;
      case Sense::Equal:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace choreo::lp

#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/require.h"

namespace choreo::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { LessEq, GreaterEq, Equal };

/// A linear term: coefficient * variable.
struct Term {
  std::size_t var = 0;
  double coeff = 0.0;
};

struct Constraint {
  std::vector<Term> terms;
  Sense sense = Sense::LessEq;
  double rhs = 0.0;
  std::string name;
};

/// A linear (or 0/1 integer) optimization model.
///
/// Variables are non-negative by default; finite upper bounds and
/// integrality flags are per-variable. The Appendix of the paper builds its
/// task-placement ILP with exactly these ingredients: binary X (task on
/// machine) and z (pair co-assignment) variables, a continuous makespan
/// variable, and <=/== rows.
class Model {
 public:
  /// Adds a variable with objective coefficient `obj`; returns its index.
  std::size_t add_variable(double obj, double lower = 0.0, double upper = kInf,
                           bool integer = false, std::string name = {});

  /// Convenience for 0/1 variables.
  std::size_t add_binary(double obj, std::string name = {}) {
    return add_variable(obj, 0.0, 1.0, true, std::move(name));
  }

  void add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                      std::string name = {});

  /// Minimization is the default; call this to maximize instead.
  void set_maximize(bool maximize) { maximize_ = maximize; }
  bool maximize() const { return maximize_; }

  std::size_t variable_count() const { return obj_.size(); }
  std::size_t constraint_count() const { return constraints_.size(); }

  double objective_coeff(std::size_t v) const { return obj_.at(v); }
  double lower(std::size_t v) const { return lower_.at(v); }
  double upper(std::size_t v) const { return upper_.at(v); }
  bool is_integer(std::size_t v) const { return integer_.at(v); }
  const std::string& variable_name(std::size_t v) const { return names_.at(v); }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Objective value of an assignment (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// True if `x` satisfies all constraints and bounds within `tol`.
  bool feasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<double> obj_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<bool> integer_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
  bool maximize_ = false;
};

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit, NodeLimit };

const char* to_string(SolveStatus s);

struct Solution {
  SolveStatus status = SolveStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> values;
  std::size_t iterations = 0;  ///< simplex pivots (LP) or nodes explored (ILP)
};

}  // namespace choreo::lp

#include "serve/batch.h"

#include "place/greedy.h"
#include "place/ilp.h"
#include "util/require.h"

namespace choreo::serve {

std::vector<place::Placement> split_placement(
    const std::vector<const place::Application*>& apps, const place::Placement& joint) {
  std::vector<place::Placement> out;
  out.reserve(apps.size());
  std::size_t offset = 0;
  for (const place::Application* app : apps) {
    place::Placement p;
    p.machine_of_task.assign(joint.machine_of_task.begin() + static_cast<std::ptrdiff_t>(offset),
                             joint.machine_of_task.begin() +
                                 static_cast<std::ptrdiff_t>(offset + app->task_count()));
    out.push_back(std::move(p));
    offset += app->task_count();
  }
  CHOREO_REQUIRE_MSG(offset == joint.machine_of_task.size(),
                     "joint placement does not cover the batch");
  return out;
}

BatchPlan plan_batch(const std::vector<const place::Application*>& apps,
                     const place::ClusterState& state, place::RateModel model,
                     const BatchArrivalOptions& opts) {
  CHOREO_REQUIRE(!apps.empty());
  std::vector<place::Application> copies;
  copies.reserve(apps.size());
  for (const place::Application* app : apps) copies.push_back(*app);
  const place::Application joint_app = place::combine(copies);

  BatchPlan plan;
  plan.used_ilp =
      opts.ilp_task_limit > 0 && joint_app.task_count() <= opts.ilp_task_limit;
  if (plan.used_ilp) {
    place::IlpPlacer ilp(model);
    plan.joint = ilp.place(joint_app, state);
  } else {
    place::GreedyPlacer greedy(model);
    plan.joint = greedy.place(joint_app, state);
  }
  plan.placements = split_placement(apps, plan.joint);
  return plan;
}

}  // namespace choreo::serve

#include "serve/service.h"

#include <utility>

#include "util/require.h"

namespace choreo::serve {

PlacementService::PlacementService(place::ClusterView view, place::RateModel model)
    : PlacementService(place::ClusterState(std::move(view)), model) {}

PlacementService::PlacementService(place::ClusterState state, place::RateModel model)
    : model_(model),
      snap_(std::make_shared<const ClusterSnapshot>(1, std::move(state))) {}

PlacementService::Result PlacementService::place(const place::Application& app,
                                                 Scratch& scratch) const {
  CHOREO_OBS_SPAN(span, scratch.obs_, "serve.place", "serve");
  const std::shared_ptr<const ClusterSnapshot> snap = snapshot();
  if (scratch.base_ != snap) {
    // The epoch moved (or this arena is fresh): rebuild it from the new
    // snapshot. clone() copies the O(n^2) indexes without re-validating or
    // re-sorting; in the steady state (no swap between queries) this branch
    // is never taken and a query costs only the pointer compare.
    scratch.state_.emplace(snap->state.clone());
    scratch.base_ = snap;
    ++scratch.refreshes_;
    CHOREO_OBS_INC(scratch.refreshes_ctr_, scratch.obs_);
  }
  CHOREO_OBS_INC(scratch.queries_, scratch.obs_);
  place::GreedyPlacer greedy(model_);
  Result out;
  out.placement = greedy.place(app, *scratch.state_);
  out.epoch = snap->epoch;
  span.arg("epoch", static_cast<double>(snap->epoch));
  span.arg("tasks", static_cast<double>(app.task_count()));
  return out;
}

void PlacementService::set_observer(const obs::Observer& o) {
  obs_ = o;
  publishes_ = o.counter("serve.publishes");
  epoch_gauge_ = o.gauge("serve.epoch");
  CHOREO_OBS_SET(epoch_gauge_, static_cast<double>(epoch()));
}

void PlacementService::swap_in(place::ClusterState next) {
  const std::shared_ptr<const ClusterSnapshot> cur = snapshot();
  const std::uint64_t next_epoch = cur->epoch + 1;
  snap_.store(std::make_shared<const ClusterSnapshot>(next_epoch, std::move(next)),
              std::memory_order_release);
  CHOREO_OBS_INC(publishes_, obs_);
  CHOREO_OBS_SET(epoch_gauge_, static_cast<double>(next_epoch));
}

void PlacementService::publish_view(place::ClusterView view) {
  const std::shared_ptr<const ClusterSnapshot> cur = snapshot();
  CHOREO_REQUIRE_MSG(view.machine_count() == cur->state.machine_count(),
                     "publish_view needs the same fleet");
  place::ClusterState next = cur->state.clone();
  next.update_view(std::move(view));
  swap_in(std::move(next));
}

void PlacementService::commit(const place::Application& app,
                              const place::Placement& placement) {
  place::ClusterState next = snapshot()->state.clone();
  next.commit(app, placement);
  swap_in(std::move(next));
}

void PlacementService::release(const place::Application& app,
                               const place::Placement& placement) {
  place::ClusterState next = snapshot()->state.clone();
  next.release(app, placement);
  swap_in(std::move(next));
}

}  // namespace choreo::serve

#pragma once

#include <cstddef>
#include <vector>

#include "place/app.h"
#include "place/cluster.h"

namespace choreo::serve {

/// Opt-in knobs for the batched arrival path: instead of draining the FIFO
/// retry queue one application at a time, the runtime dequeues up to
/// `max_batch` waiting applications and places them *jointly* — the fig10a
/// all-at-once mechanism (place::combine + one placement of the union of
/// transfers) applied online to whatever is queued. Disabled by default; the
/// disabled path (and enabled with max_batch == 1) is bit-identical to the
/// historical one-at-a-time drain, pinned by test_serve.
struct BatchArrivalOptions {
  bool enabled = false;
  /// Most waiting applications planned in one joint placement. On joint
  /// infeasibility the batch is halved down to 1 (one-at-a-time semantics).
  std::size_t max_batch = 4;
  /// Combined task count at or below which the §5.2 ILP places the joint
  /// application instead of the greedy — the fig09-style quality oracle for
  /// small instances. 0 (default) keeps every batch on the greedy.
  std::size_t ilp_task_limit = 0;
};

/// A planned batch: the joint placement of combine(apps) split back into
/// one placement per input application (input order preserved).
struct BatchPlan {
  std::vector<place::Placement> placements;
  place::Placement joint;
  bool used_ilp = false;
};

/// Splits a placement of combine(apps) back into per-app placements by the
/// task offsets combine() concatenated at.
std::vector<place::Placement> split_placement(
    const std::vector<const place::Application*>& apps, const place::Placement& joint);

/// Places `apps` jointly on `state` (never mutating it — commit is the
/// caller's decision, like any Placer): combine the traffic matrices, CPU
/// vectors, and (offset-shifted) constraints into one application, place it
/// with the greedy — or with the ILP when the combined task count is within
/// opts.ilp_task_limit — and split the result per app. Throws
/// place::PlacementError when the joint application is infeasible.
BatchPlan plan_batch(const std::vector<const place::Application*>& apps,
                     const place::ClusterState& state, place::RateModel model,
                     const BatchArrivalOptions& opts);

}  // namespace choreo::serve
